package fivm_test

import (
	"fmt"

	"fivm"
)

// The catalog shared by the examples: two base relations joined on A.
func exampleCatalog() fivm.SQLCatalog {
	return fivm.SQLCatalog{
		"R": fivm.NewSchema("A", "B"),
		"S": fivm.NewSchema("A", "C"),
	}
}

func ExampleOpen() {
	d, err := fivm.Open(exampleCatalog(), fivm.DBOptions{})
	if err != nil {
		panic(err)
	}
	defer d.Close()
	fmt.Println(d.Relations())
	// Output: [R S]
}

func ExampleCreateView() {
	d, _ := fivm.Open(exampleCatalog(), fivm.DBOptions{})
	defer d.Close()

	// A COUNT view grouped by A, in the Z ring. The nil order lets the
	// cost-based optimizer pick the variable order.
	q := fivm.MustQuery("byA", fivm.NewSchema("A"),
		fivm.Rel("R", fivm.NewSchema("A", "B")),
		fivm.Rel("S", fivm.NewSchema("A", "C")))
	v, err := fivm.CreateView[int64](d, "byA", q, fivm.IntRing{}, fivm.CountLift, fivm.ViewOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(v.Name(), d.Views())
	// Output: byA [byA]
}

func ExampleDB_Apply() {
	d, _ := fivm.Open(exampleCatalog(), fivm.DBOptions{})
	defer d.Close()
	q := fivm.MustQuery("byA", fivm.NewSchema("A"),
		fivm.Rel("R", fivm.NewSchema("A", "B")),
		fivm.Rel("S", fivm.NewSchema("A", "C")))
	fivm.CreateView[int64](d, "byA", q, fivm.IntRing{}, fivm.CountLift, fivm.ViewOptions{})

	// One Apply ingests the batch once and maintains every registered view;
	// deletions are updates with negative multiplicity.
	d.Apply([]fivm.DBUpdate{
		fivm.InsertInto("R", fivm.Tuple{fivm.Int(1), fivm.Int(10)}, fivm.Tuple{fivm.Int(1), fivm.Int(11)}),
		fivm.InsertInto("S", fivm.Tuple{fivm.Int(1), fivm.Int(7)}),
	})
	d.Apply([]fivm.DBUpdate{
		fivm.DeleteFrom("R", fivm.Tuple{fivm.Int(1), fivm.Int(11)}),
	})

	s := fivm.ViewSnapshotOf[int64](d.Epoch(), "byA")
	cnt, _ := s.Result().Get(fivm.Tuple{fivm.Int(1)})
	fmt.Println(cnt)
	// Output: 1
}

func ExampleViewReader() {
	d, _ := fivm.Open(exampleCatalog(), fivm.DBOptions{})
	defer d.Close()

	// Views can be defined in SQL; Exec drives CREATE VIEW / DROP VIEW.
	if _, err := d.Exec("CREATE VIEW sums AS SELECT A, SUM(B * C) FROM R NATURAL JOIN S GROUP BY A"); err != nil {
		panic(err)
	}
	d.Apply([]fivm.DBUpdate{
		fivm.InsertInto("R", fivm.Tuple{fivm.Int(1), fivm.Int(3)}),
		fivm.InsertInto("S", fivm.Tuple{fivm.Int(1), fivm.Int(5)}),
	})

	// A reader pins the latest cross-view epoch and reads lock-free from
	// any goroutine; Refresh advances it after later batches.
	rd, err := fivm.ViewReader[float64](d, "sums")
	if err != nil {
		panic(err)
	}
	sum, ok := rd.Lookup(fivm.Tuple{fivm.Int(1)})
	fmt.Println(sum, ok)
	// Output: 15 true
}
