#!/usr/bin/env bash
# Loopback end-to-end smoke test for `fivm serve` / `fivm follow`:
# two real processes over TCP — a durable primary shipping its WAL and a
# durable follower serving read-only HTTP. Asserts epoch convergence,
# byte-identical lookups, follower restart mid-stream, and graceful
# signal shutdown on both sides. Run from the repo root; CI runs it after
# the unit tests.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=$(mktemp /tmp/fivm-smoke.XXXXXX)
WORK=$(mktemp -d /tmp/fivm-smoke-dir.XXXXXX)
PRIMARY_PID=""
FOLLOWER_PID=""
cleanup() {
  [ -n "$FOLLOWER_PID" ] && kill "$FOLLOWER_PID" 2>/dev/null || true
  [ -n "$PRIMARY_PID" ] && kill "$PRIMARY_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/fivm

HTTP_P=$((20000 + RANDOM % 10000))
HTTP_F=$((HTTP_P + 1))
REPL=$((HTTP_P + 2))
CATALOG="R(A,B);S(A,C)"
P="http://127.0.0.1:$HTTP_P"
F="http://127.0.0.1:$HTTP_F"

wait_healthy() { # url
  for _ in $(seq 1 100); do
    curl -sf "$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "FAIL: $1 never became healthy" >&2
  exit 1
}

applied_of() { # url
  curl -sf "$1/stats" | grep -o '"applied":[0-9]*' | grep -o '[0-9]*'
}

wait_converged() { # follower_url want_applied
  for _ in $(seq 1 100); do
    [ "$(applied_of "$1")" = "$2" ] && return 0
    sleep 0.1
  done
  echo "FAIL: follower stuck at applied=$(applied_of "$1"), want $2" >&2
  exit 1
}

start_follower() {
  "$BIN" follow -primary "127.0.0.1:$REPL" -listen "127.0.0.1:$HTTP_F" \
    -wal-dir "$WORK/follower" -catalog "$CATALOG" &
  FOLLOWER_PID=$!
  wait_healthy "$F"
}

echo "--- starting primary"
"$BIN" serve -listen "127.0.0.1:$HTTP_P" -replication-listen "127.0.0.1:$REPL" \
  -wal-dir "$WORK/primary" -catalog "$CATALOG" &
PRIMARY_PID=$!
wait_healthy "$P"

echo "--- starting follower"
start_follower

echo "--- DDL + writes on the primary"
curl -sf -X POST -d '{"sql":"CREATE VIEW sums AS SELECT A, SUM(B * C) FROM R NATURAL JOIN S GROUP BY A"}' "$P/exec" >/dev/null
curl -sf -X POST -d '{"updates":[{"rel":"R","mult":1,"tuples":[[1,2],[2,3]]}]}' "$P/apply" >/dev/null
curl -sf -X POST -d '{"updates":[{"rel":"S","mult":1,"tuples":[[1,10],[2,20]]}]}' "$P/apply" >/dev/null

echo "--- follower converges"
wait_converged "$F" "$(applied_of "$P")"

echo "--- lookups agree"
PV=$(curl -sf "$P/view/sums/lookup?key=1")
FV=$(curl -sf "$F/view/sums/lookup?key=1")
[ "$PV" = "$FV" ] || { echo "FAIL: lookup mismatch: primary=$PV follower=$FV" >&2; exit 1; }
echo "$PV" | grep -q '"value":20' || { echo "FAIL: wrong value: $PV" >&2; exit 1; }

echo "--- follower writes are rejected"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{"updates":[{"rel":"R","tuples":[[9,9]]}]}' "$F/apply")
[ "$CODE" = "403" ] || { echo "FAIL: follower /apply returned $CODE, want 403" >&2; exit 1; }

echo "--- restart follower mid-stream"
kill -TERM "$FOLLOWER_PID"
wait "$FOLLOWER_PID" || { echo "FAIL: follower did not exit cleanly on SIGTERM" >&2; exit 1; }
FOLLOWER_PID=""
curl -sf -X POST -d '{"updates":[{"rel":"R","mult":1,"tuples":[[3,5]]}]}' "$P/apply" >/dev/null
curl -sf -X POST -d '{"updates":[{"rel":"S","mult":1,"tuples":[[3,7]]}]}' "$P/apply" >/dev/null
start_follower
wait_converged "$F" "$(applied_of "$P")"
PV=$(curl -sf "$P/view/sums/lookup?key=3")
FV=$(curl -sf "$F/view/sums/lookup?key=3")
[ "$PV" = "$FV" ] || { echo "FAIL: post-restart lookup mismatch: primary=$PV follower=$FV" >&2; exit 1; }
echo "$PV" | grep -q '"value":35' || { echo "FAIL: wrong post-restart value: $PV" >&2; exit 1; }

echo "--- graceful shutdown"
kill -TERM "$FOLLOWER_PID"
wait "$FOLLOWER_PID" || { echo "FAIL: follower shutdown" >&2; exit 1; }
FOLLOWER_PID=""
kill -TERM "$PRIMARY_PID"
wait "$PRIMARY_PID" || { echo "FAIL: primary shutdown" >&2; exit 1; }
PRIMARY_PID=""

echo "e2e smoke OK"
