// Package fivm is F-IVM: factorized incremental view maintenance for
// analytics over normalized data, reproducing "Incremental View Maintenance
// with Triple Lock Factorization Benefits" (Nikolic & Olteanu, SIGMOD 2018).
//
// Analytical tasks are expressed as group-by aggregate queries over
// relations that map keys to payloads in a task-specific ring. One view-tree
// maintenance machinery serves every task; tasks differ only in the ring and
// the lifting functions:
//
//   - counts and sums: the Z or R rings (IntRing, FloatRing),
//   - gradient computation for linear regression over joins: the degree-m
//     matrix ring of (count, sums, cofactor matrix) triples (CofactorRing),
//   - conjunctive query results in listing or factorized form: the
//     relational data ring (RelRing).
//
// The package is a facade re-exporting the library's public surface; the
// implementation lives under internal/. The database-style top level is
// fivm.DB — base relations owned once, any number of maintained views over
// them, one ingest per batch, cross-view epochs for lock-free readers:
//
//	d, _ := fivm.Open(fivm.SQLCatalog{
//	    "R": fivm.NewSchema("A", "B"),
//	    "S": fivm.NewSchema("A", "C"),
//	}, fivm.DBOptions{})
//	q := fivm.MustQuery("byA", fivm.NewSchema("A"),
//	    fivm.Rel("R", fivm.NewSchema("A", "B")),
//	    fivm.Rel("S", fivm.NewSchema("A", "C")))
//	v, _ := fivm.CreateView[int64](d, "byA", q, fivm.IntRing{}, fivm.CountLift, fivm.ViewOptions{})
//	_ = d.Apply([]fivm.DBUpdate{fivm.InsertInto("R", fivm.Ints(1, 10))})
//	// read via d.Epoch() + fivm.ViewSnapshotOf / fivm.ViewReader; views can
//	// be created (with backfill) and dropped mid-stream, also via SQL DDL
//	// (d.Exec("CREATE VIEW ... AS SELECT ...")).
//	_ = v
//
// The per-engine layer underneath (fivm.NewEngine and friends) remains
// fully supported; feed deltas with eng.ApplyDeltas and read via
// eng.Snapshot() or a fivm.NewReader handle for concurrent serving —
// eng.Result() is a deprecated live handle, only safe quiescently on the
// maintenance goroutine.
package fivm

import (
	"fivm/internal/data"
	"fivm/internal/datasets"
	"fivm/internal/db"
	"fivm/internal/factorized"
	"fivm/internal/ivm"
	"fivm/internal/matrix"
	"fivm/internal/mcm"
	"fivm/internal/netserve"
	"fivm/internal/query"
	"fivm/internal/regression"
	"fivm/internal/replica"
	"fivm/internal/ring"
	"fivm/internal/serve"
	"fivm/internal/sqlparse"
	"fivm/internal/viewtree"
	"fivm/internal/vorder"
	"fivm/internal/wal"
)

// --- data model ---------------------------------------------------------

// Value is a single key attribute value (int64, float64, or string).
type Value = data.Value

// Tuple is an ordered list of values over a schema.
type Tuple = data.Tuple

// Schema is an ordered list of distinct variable names.
type Schema = data.Schema

// Relation maps key tuples to ring payloads with finite support.
type Relation[P any] = data.Relation[P]

// Entry is one key/payload pair.
type Entry[P any] = data.Entry[P]

// Multiset is a relation over Z: the element type of the relational ring.
type Multiset = data.Multiset

// LiftFunc maps a variable's value into the payload ring.
type LiftFunc[P any] = data.LiftFunc[P]

// Value constructors and helpers.
var (
	Int       = data.Int
	Float     = data.Float
	String    = data.String
	Ints      = data.Ints
	Floats    = data.Floats
	NewSchema = data.NewSchema
)

// NewRelation creates an empty relation over a ring and schema.
func NewRelation[P any](r Ring[P], schema Schema) *Relation[P] {
	return data.NewRelation[P](r, schema)
}

// --- rings ----------------------------------------------------------------

// Ring is the payload algebra interface.
type Ring[T any] = ring.Ring[T]

// IntRing is Z; FloatRing is R.
type (
	IntRing   = ring.Int
	FloatRing = ring.Float
)

// CofactorRing is the degree-m matrix ring of regression triples.
type CofactorRing = ring.Cofactor

// Triple is a (count, sums, cofactor matrix) compound aggregate.
type Triple = ring.Triple

// DegreeMapRing is the degree-indexed aggregate encoding (SQL-OPT).
type DegreeMapRing = ring.DegreeMap

// RelRing is the relational data ring F[Z].
type RelRing = data.RelRing

// LiftValue is the regression lifting g_j(x) = (1, s_j=x, Q_jj=x²).
var LiftValue = ring.LiftValue

// CountLift lifts every value to 1 in the Z ring (COUNT queries).
func CountLift(string, Value) int64 { return 1 }

// --- queries and variable orders -------------------------------------------

// Query is a natural join with group-by (free) variables.
type Query = query.Query

// RelDef names a relation and its schema.
type RelDef = query.RelDef

// Rel builds a relation definition.
func Rel(name string, schema Schema) RelDef { return RelDef{Name: name, Schema: schema} }

// NewQuery and MustQuery build queries.
var (
	NewQuery  = query.New
	MustQuery = query.MustNew
)

// SQLCatalog maps relation names to schemas for the SQL front-end.
type SQLCatalog = sqlparse.Catalog

// ParsedSQL is a parsed SQL query: the join-aggregate query plus liftings.
type ParsedSQL = sqlparse.Parsed

// ParseSQL parses the paper's SQL dialect (natural joins, one SUM over a
// product of columns, GROUP BY) against a catalog of relation schemas.
// Parse failures are *SQLError values carrying the offending offset and
// token.
var ParseSQL = sqlparse.Parse

// SQLError is a SQL parse failure with its position (byte offset and the
// offending token).
type SQLError = sqlparse.ParseError

// SQLStatement is one parsed statement: a SELECT query or a CREATE VIEW /
// DROP VIEW DDL command; SQLStmtKind discriminates.
type (
	SQLStatement = sqlparse.Statement
	SQLStmtKind  = sqlparse.StmtKind
)

// Statement kinds.
const (
	StmtSelect     = sqlparse.StmtSelect
	StmtCreateView = sqlparse.StmtCreateView
	StmtDropView   = sqlparse.StmtDropView
)

// ParseSQLStatement parses one statement of the dialect: SELECT ...,
// CREATE VIEW <name> AS SELECT ..., or DROP VIEW <name>.
var ParseSQLStatement = sqlparse.ParseStatement

// Order is a variable order (the F-IVM analogue of a query plan).
type Order = vorder.Order

// OrderNode is one variable in an order.
type OrderNode = vorder.Node

// Variable order constructors: V builds nodes, Chain builds paths,
// MustOrder assembles orders, BuildOrder derives one heuristically.
var (
	V          = vorder.V
	Chain      = vorder.Chain
	MustOrder  = vorder.MustNew
	NewOrder   = vorder.New
	BuildOrder = vorder.Build
)

// --- statistics and the cost-based optimizer --------------------------------

// Stats is the database statistics collector the optimizer consumes:
// per-relation cardinalities, per-variable distinct-count sketches, and
// observed delta rates, maintained incrementally by relations and engines.
type Stats = data.Stats

// RelStats is one relation's statistics.
type RelStats = data.RelStats

// NewStats creates an empty collector.
var NewStats = data.NewStats

// AnalyzeRelation bulk-observes a relation's contents into a collector (the
// ANALYZE path used to seed self-planning engines).
func AnalyzeRelation[P any](st *Stats, name string, r *Relation[P]) {
	data.ObserveRelation(st, name, r)
}

// CostModel estimates view sizes and per-update maintenance costs for
// candidate variable orders; OrderCost is its per-order breakdown.
type (
	CostModel = vorder.CostModel
	OrderCost = vorder.OrderCost
)

// NewCostModel builds a cost model from collected statistics.
var NewCostModel = vorder.NewCostModel

// OrderChooseOptions configures ChooseOrder.
type OrderChooseOptions = vorder.ChooseOptions

// ChooseOrder selects a variable order for a query with the cost-based
// optimizer. Engines also accept a nil Order and plan for themselves —
// EngineOptions.Stats seeds the decision, EngineOptions.CostMaterialize
// enables cost-based materialization, and EngineOptions.AutoReoptimize adds
// mid-stream re-planning with state migration.
var ChooseOrder = vorder.Choose

// ViewNode is one view in a view tree.
type ViewNode = viewtree.Node

// --- the engine -------------------------------------------------------------

// Engine is the F-IVM maintainer.
type Engine[P any] = ivm.Engine[P]

// EngineOptions configures materialization, chain composition, indicator
// projections, and payload transforms.
type EngineOptions[P any] = ivm.Options[P]

// Maintainer is the interface all maintenance strategies implement. Besides
// single-relation ApplyDelta, every strategy supports batched updates via
// ApplyDeltas, which coalesces same-relation deltas and traverses each
// maintenance path once per batch.
type Maintainer[P any] = ivm.Maintainer[P]

// NamedDelta is one element of a batched update: a relation name and its
// delta. Feed a slice of these to a Maintainer's ApplyDeltas.
type NamedDelta[P any] = ivm.NamedDelta[P]

// FactoredDelta is an update expressed as a product of factors.
type FactoredDelta[P any] = ivm.FactoredDelta[P]

// NewEngine builds an F-IVM engine.
func NewEngine[P any](q Query, o *Order, r Ring[P], lift LiftFunc[P], opts EngineOptions[P]) (*Engine[P], error) {
	return ivm.New[P](q, o, r, lift, opts)
}

// ParallelEngine is the sharded parallel maintainer: it hash-partitions the
// database by the join variable covered by the most relations, runs one
// inner maintainer per shard on a fixed worker pool, and reduces shard
// results key-wise. Build one with NewParallel; call Close when done to
// stop the pool.
type ParallelEngine[P any] = ivm.Parallel[P]

// NewParallel builds a sharded parallel maintainer over `workers` shards,
// each an independent maintainer produced by factory. With workers <= 1 (or
// a query with nothing to shard on) it degenerates to a zero-overhead
// sequential delegate.
func NewParallel[P any](q Query, r Ring[P], workers int, factory func() (Maintainer[P], error)) (*ParallelEngine[P], error) {
	return ivm.NewParallel[P](q, r, workers, factory)
}

// MutableRing is the optional ring extension for allocation-free in-place
// payload accumulation (implemented by IntRing, FloatRing, CofactorRing,
// DegreeMapRing, and products of them). Relations detect it automatically
// and switch to owned, zero-alloc payload accumulation.
type MutableRing[T any] = ring.Mutable[T]

// ShardedRelation is a relation hash-partitioned on one column; shards of
// relations partitioned on a shared join column join shard-locally.
type ShardedRelation[P any] = data.Sharded[P]

// NewShardedRelation creates an empty n-way sharded relation partitioned on
// column col.
func NewShardedRelation[P any](r Ring[P], schema Schema, col string, n int) (*ShardedRelation[P], error) {
	return data.NewSharded[P](r, schema, col, n)
}

// SplitRelation partitions a relation's contents into n fresh relations by
// the hash of column col.
func SplitRelation[P any](r *Relation[P], col string, n int) ([]*Relation[P], error) {
	return data.Split(r, col, n)
}

// --- serving reads: epoch-based snapshots -----------------------------------

// RelationSnapshot is an immutable point-in-time copy of a Relation,
// readable lock-free from any number of goroutines: point lookups by key,
// ordered iteration, and prefix scans over leading variables.
type RelationSnapshot[P any] = data.RelationSnapshot[P]

// ViewSnapshot is one published epoch of a maintainer's state: the query
// result plus a named catalog of materialized views, all mutually
// consistent — exactly the state after some whole applied batch. Every
// Maintainer publishes one per batch once serving is enabled (first
// Snapshot call), via a single atomic epoch-pointer swap.
type ViewSnapshot[P any] = ivm.ViewSnapshot[P]

// SnapshotSource is anything that publishes view snapshots; every
// Maintainer qualifies.
type SnapshotSource[P any] = serve.Source[P]

// Reader is a lock-free read handle pinned to one snapshot epoch: point
// lookups by group-by key, prefix scans, view-catalog access, and explicit
// Refresh with monotonic (never regressing) epochs. One Reader per reading
// goroutine.
type Reader[P any] = serve.Reader[P]

// NewReader pins the source's current epoch. Enable publication first by
// calling Snapshot once from the maintenance goroutine (after Init);
// NewReader itself may then be called from any goroutine.
func NewReader[P any](src SnapshotSource[P]) *Reader[P] {
	return serve.NewReader[P](src)
}

// CQResultSnapshot is an epoch-pinned conjunctive query result: counting and
// (factorized) enumeration against one consistent snapshot, safe under
// concurrent maintenance. Obtain one from CQResult.Snapshot.
type CQResultSnapshot = factorized.ResultSnapshot

// Competitor strategies (first-order IVM, DBToaster-style recursive IVM,
// and re-evaluation), exposed for benchmarking and comparison.
func NewFirstOrder[P any](q Query, o *Order, r Ring[P], lift LiftFunc[P]) (Maintainer[P], error) {
	return ivm.NewFirstOrder[P](q, o, r, lift)
}

// NewRecursive builds DBToaster-style fully recursive IVM.
func NewRecursive[P any](q Query, r Ring[P], lift LiftFunc[P], updatable []string) (Maintainer[P], error) {
	return ivm.NewRecursive[P](q, r, lift, updatable)
}

// NewReEval builds the re-evaluation baseline.
func NewReEval[P any](q Query, o *Order, r Ring[P], lift LiftFunc[P]) (Maintainer[P], error) {
	return ivm.NewReEval[P](q, o, r, lift)
}

// --- the database surface: fivm.DB -------------------------------------------

// DB is the database-style top level: it owns the base relations once,
// maintains any number of registered views over them (each with its own
// ring, lifting, variable order, and maintenance strategy), ingests every
// update batch exactly once via Apply, and publishes one consistent
// cross-view Epoch per batch for lock-free readers. Views can be created
// (with backfill from the current bases) and dropped mid-stream.
//
// Open/CreateView/Apply/DropView/Exec are single-writer (one maintenance
// goroutine); Epoch, snapshots, and readers are safe from any goroutine.
type DB = db.DB

// DBOptions configures Open.
type DBOptions = db.Options

// ViewOptions configures one registered view: its variable order (nil uses
// the cost-based optimizer), Workers for sharded parallel maintenance, and
// the engine's optimizer flags.
type ViewOptions = db.ViewOptions

// View is the typed handle CreateView returns: Snapshot/Reader for reads,
// plus introspection.
type View[P any] = db.View[P]

// DBEpoch is one published cross-view state: an immutable set of per-view
// snapshots all reflecting the same applied prefix of the update stream.
type DBEpoch = db.Epoch

// DBUpdate is one element of an applied batch: tuples of a base relation
// with a signed multiplicity (negative deletes; zero means +1). Tuple
// storage is adopted by the DB; callers must not mutate it after Apply.
type DBUpdate = db.Update

// ViewMaintStats is a view's cumulative maintenance accounting inside a DB.
type ViewMaintStats = db.ViewStats

// Open creates a DB over the cataloged base relations.
func Open(cat SQLCatalog, opts DBOptions) (*DB, error) { return db.Open(cat, opts) }

// InsertInto and DeleteFrom build insertion / deletion updates for DB.Apply.
var (
	InsertInto = db.Insert
	DeleteFrom = db.Delete
)

// CreateView registers a maintained view on the DB: a group-by aggregate
// query over its base relations with the view's own payload ring and
// lifting. Created views are backfilled from the current base contents, so
// mid-stream registration yields exactly the state a from-the-start view
// would have. (A package function, not a method: each view carries its own
// payload type.)
func CreateView[P any](d *DB, name string, q Query, r Ring[P], lift LiftFunc[P], opts ViewOptions) (*View[P], error) {
	return db.CreateView[P](d, name, q, r, lift, opts)
}

// CreateSQLView registers a float-ring view from SQL text: either
// "CREATE VIEW <name> AS SELECT ..." or a bare SELECT plus an explicit
// name. DB.Exec drives the same path from DDL statements.
func CreateSQLView(d *DB, name, sql string, opts ViewOptions) (*View[float64], error) {
	return db.CreateViewSQL(d, name, sql, opts)
}

// ViewSnapshotOf returns the named view's snapshot within a cross-view
// epoch, or nil when the epoch does not carry it (or the payload type does
// not match).
func ViewSnapshotOf[P any](e *DBEpoch, view string) *ViewSnapshot[P] {
	return db.SnapshotOf[P](e, view)
}

// ViewReader returns a serve.Reader over the named DB view pinned at the
// latest cross-view epoch; Refresh advances through the view's live
// publications. One reader per reading goroutine.
func ViewReader[P any](d *DB, view string) (*Reader[P], error) {
	return db.ReaderFor[P](d, view)
}

// NewReaderAt pins a reader to an explicitly chosen snapshot of a source
// (how cross-view consistent read sets are assembled).
func NewReaderAt[P any](src SnapshotSource[P], snap *ViewSnapshot[P]) *Reader[P] {
	return serve.NewReaderAt[P](src, snap)
}

// --- durability: WAL, checkpoints, recovery -----------------------------------

// DurabilityOptions enables the DB's write-ahead log: every applied batch is
// logged before any in-memory state advances, SQL-defined views persist in
// the on-disk catalog, and Open recovers the exact pre-crash state (latest
// checkpoint + replayed tail). Set DBOptions.Durability; nil keeps the DB
// purely in-memory.
type DurabilityOptions = db.DurabilityOptions

// RecoveryInfo reports what Open recovered from the WAL directory; read it
// via DB.Recovery (nil when durability is off or nothing was recovered).
type RecoveryInfo = db.RecoveryInfo

// FsyncPolicy controls when logged batches are forced to stable storage.
type FsyncPolicy = wal.FsyncPolicy

// Fsync policies: every record, at most once per interval, or left to the OS.
const (
	FsyncAlways   = wal.FsyncAlways
	FsyncInterval = wal.FsyncInterval
	FsyncNever    = wal.FsyncNever
)

// ParseFsync parses a policy name ("always", "interval", "never").
var ParseFsync = wal.ParseFsync

// WALFS is the filesystem interface the WAL writes through; implement it (or
// wrap an existing one) to intercept durability I/O.
type WALFS = wal.VFS

// MemWALFS is the in-memory filesystem with crash simulation (Crash keeps
// only synced bytes); FaultWALFS injects write/sync/create/close failures
// into any WALFS. Both are how the durability test-suite — and yours — crash
// a database on purpose.
type (
	MemWALFS   = wal.MemVFS
	FaultWALFS = wal.FaultFS
)

// In-memory and fault-injecting filesystem constructors.
var (
	NewMemWALFS   = wal.NewMemFS
	NewFaultWALFS = wal.NewFaultFS
)

// --- network serving & replication --------------------------------------------

// ApplyQueue is the bounded single-consumer ingest queue in front of a DB's
// maintenance goroutine: TryApply fails fast with ErrQueueFull when the
// queue is full (the HTTP layer maps it to 429 + Retry-After), Apply blocks,
// and Do runs an arbitrary function on the maintenance goroutine (DDL).
type ApplyQueue = db.ApplyQueue

// NewApplyQueue starts a queue of the given depth over the DB; Close drains
// and stops it.
var NewApplyQueue = db.NewApplyQueue

// Queue and follower sentinel errors.
var (
	// ErrQueueFull is TryApply's backpressure signal.
	ErrQueueFull = db.ErrQueueFull
	// ErrQueueClosed reports an enqueue after Close.
	ErrQueueClosed = db.ErrQueueClosed
	// ErrFollower rejects direct writes on a follower-mode DB — its state
	// advances only through the replication stream.
	ErrFollower = db.ErrFollower
)

// ServeConfig configures the stdlib HTTP server over a DB: point lookups,
// prefix scans, one-shot SELECT, DDL, batch ingest with backpressure, and
// epoch/staleness headers (X-Fivm-Epoch, X-Fivm-Applied, X-Fivm-Lag) on
// every response. A nil Queue makes the server read-only (followers).
type ServeConfig = netserve.Config

// HTTPServer is the serving front end; Serve on a listener, Shutdown for
// graceful drain.
type HTTPServer = netserve.Server

// NewHTTPServer builds the server. The DB field is a func so followers can
// swap instances after a checkpoint re-bootstrap.
var NewHTTPServer = netserve.New

// ReplicationPrimary streams a durable DB's WAL frames verbatim to
// follower connections: catchup-from-LSN handshake, live tail fan-out, and
// checkpoint transfer when the requested position was pruned.
type ReplicationPrimary = replica.Primary

// NewReplicationPrimary builds a primary over a durable DB and a listener;
// Serve accepts followers until Close.
var NewReplicationPrimary = replica.NewPrimary

// ReplicationFollower maintains a follower-mode DB from a primary's stream:
// it applies shipped records through the normal apply/DDL paths, publishes
// the same epoch sequence, reconnects with backoff, resumes from its last
// LSN, and re-bootstraps from a transferred checkpoint when behind a prune.
type ReplicationFollower = replica.Follower

// FollowerOptions configures NewReplicationFollower: primary address,
// catalog, and (for durable followers that survive restarts) a WAL
// directory.
type FollowerOptions = replica.FollowerConfig

// NewReplicationFollower opens the follower DB; Run drives the stream until
// the context ends, DB returns the current instance for serving reads.
var NewReplicationFollower = replica.NewFollower

// --- applications -------------------------------------------------------------

// CofactorModel maintains regression aggregates over a join; Model is a
// trained linear model.
type (
	CofactorModel = regression.CofactorModel
	TrainOptions  = regression.TrainOptions
	Model         = regression.Model
)

// NewCofactorModel builds a cofactor maintenance engine.
var NewCofactorModel = regression.NewCofactorModel

// Matrix chain multiplication over F-IVM and dense backends.
type (
	HashChain  = mcm.HashChain
	DenseChain = mcm.DenseChain
	Dense      = matrix.Dense
	RankOne    = matrix.RankOne
)

// Matrix chain constructors and helpers.
var (
	NewHashChain    = mcm.NewHashChain
	NewDenseChain   = mcm.NewDenseChain
	NewDense        = matrix.NewDense
	RandomDense     = matrix.Random
	DecomposeMatrix = matrix.Decompose
)

// Conjunctive query results in the three representations of Section 6.3.
type (
	CQResult = factorized.Result
	CQMode   = factorized.Mode
)

// Result representation modes.
const (
	ListKeys     = factorized.ListKeys
	ListPayloads = factorized.ListPayloads
	FactPayloads = factorized.FactPayloads
)

// NewCQResult builds a maintained conjunctive query result.
var NewCQResult = factorized.New

// --- datasets ----------------------------------------------------------------

// Dataset bundles a generated workload; Batch is one stream update;
// WindowedBatch marks sliding-window deletions.
type (
	Dataset       = datasets.Dataset
	Batch         = datasets.Batch
	WindowedBatch = datasets.WindowedBatch
)

// WindowedStream turns one relation into a sliding-window insert/delete
// stream.
var WindowedStream = datasets.WindowedStream

// Dataset configuration types.
type (
	RetailerConfig = datasets.RetailerConfig
	HousingConfig  = datasets.HousingConfig
	TwitterConfig  = datasets.TwitterConfig
)

// Dataset generators and stream synthesis.
var (
	GenRetailer      = datasets.GenRetailer
	GenHousing       = datasets.GenHousing
	GenTwitter       = datasets.GenTwitter
	DefaultRetailer  = datasets.DefaultRetailer
	DefaultHousing   = datasets.DefaultHousing
	DefaultTwitter   = datasets.DefaultTwitter
	RoundRobinStream = datasets.RoundRobinStream
	SingleRelStream  = datasets.SingleRelationStream
	RetailerQuery    = datasets.RetailerQuery
	HousingQuery     = datasets.HousingQuery
	TriangleQuery    = datasets.TriangleQuery
	RetailerOrder    = datasets.RetailerOrder
	HousingOrder     = datasets.HousingOrder
	TriangleOrder    = datasets.TriangleOrder
)
