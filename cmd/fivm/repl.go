package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"fivm/internal/data"
	"fivm/internal/datasets"
	"fivm/internal/db"
	"fivm/internal/sqlparse"
)

// repl is the serve-style interactive mode: a db.DB over a dataset's
// catalog, view DDL (CREATE VIEW / DROP VIEW / one-shot SELECT) driving the
// maintenance machinery, and dot-commands to play the dataset's update
// stream and inspect views between batches.
func repl(ds *datasets.Dataset, in io.Reader, out io.Writer, batchSize, workers int, dur *db.DurabilityOptions) error {
	cat := db.Catalog{}
	for _, rd := range ds.Query.Rels {
		cat[rd.Name] = rd.Schema
	}
	d, err := db.Open(cat, db.Options{Durability: dur})
	if err != nil {
		return err
	}
	defer d.Close()

	// Ctrl-C (or SIGTERM) must not lose the WAL tail buffered under
	// fsync=interval/never: the session always exits through d.Close (final
	// sync included). The busy/stopped pair decides who closes: a signal at
	// the idle prompt lets the handler close directly; mid-operation it only
	// requests a stop, and the loop exits through the deferred Close once
	// the operation finishes. Every return path holds `busy`, so the two
	// sides can never close concurrently.
	var busy, stopped atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer func() { signal.Stop(sigc); close(sigc) }()
	go func() {
		if _, ok := <-sigc; !ok {
			return
		}
		stopped.Store(true)
		if busy.CompareAndSwap(false, true) {
			fmt.Fprintln(out, "\ninterrupt: syncing WAL and closing")
			d.Close()
			os.Exit(130)
		}
	}()
	// acquire claims the DB for one operation; if the signal handler won the
	// race it is already closing and exiting, so just wait for the exit.
	acquire := func() {
		if !busy.CompareAndSwap(false, true) {
			select {}
		}
	}

	stream := datasets.RoundRobinStream(ds, ds.Query.RelNames(), batchSize)
	// A recovered session resumes the deterministic stream where the logged
	// batches left off, so .play continues rather than re-applies.
	at := min(int(d.Applied()), len(stream))
	tempViews := 0
	vopts := db.ViewOptions{Workers: workers}

	if ri := d.Recovery(); ri != nil {
		fmt.Fprintf(out, "recovered %d applied batches from %s", d.Applied(), dur.Dir)
		if ri.FromCheckpoint {
			fmt.Fprintf(out, " (checkpoint at batch %d, %d replayed)", ri.CheckpointApplied, ri.ReplayedBatches)
		}
		if len(ri.Views) > 0 {
			fmt.Fprintf(out, "; views: %s", strings.Join(ri.Views, ", "))
		}
		if ri.TornBytes > 0 {
			fmt.Fprintf(out, "; discarded %dB torn tail", ri.TornBytes)
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "fivm repl — dataset %s (%d stream batches of ~%d tuples; %d applied)\n",
		ds.Name, len(stream), batchSize, at)
	fmt.Fprintf(out, "SQL: CREATE VIEW v AS SELECT ...; DROP VIEW v; SELECT ... (one-shot)\n")
	fmt.Fprintf(out, "commands: .play [n] .views .show v [limit] .stats .checkpoint .help .quit\n")

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() { fmt.Fprint(out, "fivm> ") }
	prompt()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" && pending.Len() == 0:
			prompt()
			continue
		case strings.HasPrefix(line, ".") && pending.Len() == 0:
			acquire()
			quit := replCommand(d, out, line, stream, &at, &stopped)
			if quit || stopped.Load() {
				return nil // busy stays held: the deferred Close owns the DB
			}
			busy.Store(false)
			prompt()
			continue
		}
		// SQL accumulates until a terminating semicolon (or a blank line).
		pending.WriteString(line)
		pending.WriteString(" ")
		if !strings.HasSuffix(line, ";") && line != "" {
			continue
		}
		sql := strings.TrimSpace(pending.String())
		pending.Reset()
		if sql != "" {
			acquire()
			replSQL(d, out, sql, vopts, &tempViews)
			if stopped.Load() {
				return nil
			}
			busy.Store(false)
		}
		prompt()
	}
	acquire() // hold the DB so the deferred Close cannot race the handler
	return sc.Err()
}

// replSQL executes one SQL statement against the DB.
func replSQL(d *db.DB, out io.Writer, sql string, vopts db.ViewOptions, tempViews *int) {
	st, err := sqlparse.ParseStatement(sql, replCatalog(d))
	if err != nil {
		fmt.Fprintln(out, err)
		return
	}
	switch st.Kind {
	case sqlparse.StmtCreateView:
		start := time.Now()
		if _, err := db.CreateViewSQL(d, "", sql, vopts); err != nil {
			fmt.Fprintln(out, err)
			return
		}
		fmt.Fprintf(out, "created view %s (backfilled in %v)\n", st.ViewName, time.Since(start).Round(time.Microsecond))
	case sqlparse.StmtDropView:
		if err := d.DropView(st.ViewName); err != nil {
			fmt.Fprintln(out, err)
			return
		}
		fmt.Fprintf(out, "dropped view %s\n", st.ViewName)
	case sqlparse.StmtSelect:
		// One-shot query: a temporary view backfilled from the current
		// bases answers it, then retires.
		*tempViews++
		name := fmt.Sprintf("q#%d", *tempViews)
		v, err := db.CreateViewSQL(d, name, sql, vopts)
		if err != nil {
			fmt.Fprintln(out, err)
			return
		}
		showSnapshot(out, v.Snapshot().Result(), 20)
		if err := d.DropView(name); err != nil {
			fmt.Fprintln(out, err)
		}
	}
}

// replCommand handles one dot-command; it reports whether to quit. stop is
// polled between .play batches so an interrupt lands between whole batches.
func replCommand(d *db.DB, out io.Writer, line string, stream []datasets.Batch, at *int, stop *atomic.Bool) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".quit", ".exit":
		return true
	case ".help":
		fmt.Fprintln(out, "SQL: CREATE VIEW v AS SELECT ...; DROP VIEW v; SELECT ... (one-shot)")
		fmt.Fprintln(out, ".play [n]      apply the next n stream batches (default 10)")
		fmt.Fprintln(out, ".views         list registered views")
		fmt.Fprintln(out, ".show v [k]    print up to k groups of view v (default 20)")
		fmt.Fprintln(out, ".stats         ingest and per-view maintenance statistics")
		fmt.Fprintln(out, ".checkpoint    write a durability checkpoint and prune the WAL (-wal-dir)")
		fmt.Fprintln(out, ".quit          leave")
	case ".play":
		n := 10
		if len(fields) > 1 {
			if k, err := strconv.Atoi(fields[1]); err == nil && k > 0 {
				n = k
			}
		}
		tuples := 0
		start := time.Now()
		for i := 0; i < n && *at < len(stream); i++ {
			if stop.Load() {
				fmt.Fprintln(out, "interrupted")
				break
			}
			b := stream[*at]
			*at++
			tuples += len(b.Tuples)
			if err := d.Apply([]db.Update{{Rel: b.Rel, Tuples: b.Tuples, Mult: 1}}); err != nil {
				fmt.Fprintln(out, err)
				return false
			}
		}
		el := time.Since(start)
		fmt.Fprintf(out, "applied %d tuples in %v (%.0f tuples/s); %d/%d batches done, epoch %d\n",
			tuples, el.Round(time.Microsecond), float64(tuples)/el.Seconds(), *at, len(stream), d.Epoch().Seq)
	case ".views":
		names := d.Views()
		if len(names) == 0 {
			fmt.Fprintln(out, "no views; CREATE VIEW v AS SELECT ...")
		}
		for _, name := range names {
			st := d.ViewStatsOf(name)
			fmt.Fprintf(out, "  %-16s %d inner views, %s, %d batches, maintain %v\n",
				name, st.ViewCount, fmtBytes(st.MemoryBytes), st.Batches, st.Maintain.Round(time.Microsecond))
		}
	case ".show":
		if len(fields) < 2 {
			fmt.Fprintln(out, "usage: .show <view> [limit]")
			return false
		}
		limit := 20
		if len(fields) > 2 {
			if k, err := strconv.Atoi(fields[2]); err == nil && k > 0 {
				limit = k
			}
		}
		s := db.SnapshotOf[float64](d.Epoch(), fields[1])
		if s == nil {
			fmt.Fprintf(out, "unknown view %q (SQL-created views only)\n", fields[1])
			return false
		}
		showSnapshot(out, s.Result(), limit)
	case ".stats":
		fmt.Fprintf(out, "applied batches: %d, epoch %d, base tuples: %d, memory %s\n",
			d.Applied(), d.Epoch().Seq, baseTuples(d), fmtBytes(d.MemoryBytes()))
		if lsn, ok := d.WALStats(); ok {
			fmt.Fprintf(out, "wal: lsn %d\n", lsn)
		}
	case ".checkpoint":
		start := time.Now()
		if err := d.Checkpoint(); err != nil {
			fmt.Fprintln(out, err)
			return false
		}
		lsn, _ := d.WALStats()
		fmt.Fprintf(out, "checkpoint written at lsn %d in %v (older WAL pruned)\n",
			lsn, time.Since(start).Round(time.Microsecond))
	default:
		fmt.Fprintf(out, "unknown command %s (.help)\n", fields[0])
	}
	return false
}

func replCatalog(d *db.DB) sqlparse.Catalog {
	cat := sqlparse.Catalog{}
	for _, rel := range d.Relations() {
		sch, _ := d.Schema(rel)
		cat[rel] = sch
	}
	return cat
}

func baseTuples(d *db.DB) int {
	n := 0
	for _, rel := range d.Relations() {
		n += d.Base(rel).Len()
	}
	return n
}

func fmtBytes(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func showSnapshot(out io.Writer, s *data.RelationSnapshot[float64], limit int) {
	fmt.Fprintf(out, "(%d groups)\n", s.Len())
	es := s.SortedEntries() // already in encoded-key order
	for i, e := range es {
		if i >= limit {
			fmt.Fprintf(out, "  ... (%d more)\n", len(es)-limit)
			return
		}
		fmt.Fprintf(out, "  %v -> %g\n", e.Tuple, e.Payload)
	}
}
