package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fivm/internal/data"
	"fivm/internal/db"
	"fivm/internal/netserve"
	"fivm/internal/replica"
)

// parseCatalog reads a "R(A,B);S(A,C)" base-relation specification.
func parseCatalog(spec string) (db.Catalog, error) {
	cat := db.Catalog{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		open, close := strings.Index(part, "("), strings.LastIndex(part, ")")
		if open <= 0 || close != len(part)-1 {
			return nil, fmt.Errorf("bad catalog entry %q (want Name(Col,...))", part)
		}
		name := strings.TrimSpace(part[:open])
		var cols []string
		for _, c := range strings.Split(part[open+1:close], ",") {
			c = strings.TrimSpace(c)
			if c == "" {
				return nil, fmt.Errorf("bad catalog entry %q: empty column", part)
			}
			cols = append(cols, c)
		}
		cat[name] = data.NewSchema(cols...)
	}
	if len(cat) == 0 {
		return nil, fmt.Errorf("empty catalog %q", spec)
	}
	return cat, nil
}

// serveCmd runs `fivm serve`: an HTTP read/write server over a DB, and —
// with -replication-listen — a WAL-shipping replication primary. SIGINT and
// SIGTERM drain in-flight requests, flush and fsync the WAL, and close the
// DB before exiting.
func serveCmd(listen, replListen string, cat db.Catalog, dur *db.DurabilityOptions, queueDepth int) error {
	d, err := db.Open(cat, db.Options{Durability: dur})
	if err != nil {
		return err
	}
	if ri := d.Recovery(); ri != nil {
		fmt.Printf("recovered %d applied batches", d.Applied())
		if len(ri.Views) > 0 {
			fmt.Printf("; views: %s", strings.Join(ri.Views, ", "))
		}
		fmt.Println()
	}
	q := db.NewApplyQueue(d, queueDepth)
	srv, err := netserve.New(netserve.Config{DB: func() *db.DB { return d }, Queue: q})
	if err != nil {
		d.Close()
		return err
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		d.Close()
		return err
	}

	var prim *replica.Primary
	if replListen != "" {
		if dur == nil {
			l.Close()
			d.Close()
			return fmt.Errorf("serve: -replication-listen requires -wal-dir (the WAL is the replication stream)")
		}
		rl, err := net.Listen("tcp", replListen)
		if err != nil {
			l.Close()
			d.Close()
			return err
		}
		if prim, err = replica.NewPrimary(d, rl); err != nil {
			rl.Close()
			l.Close()
			d.Close()
			return err
		}
		go prim.Serve()
		fmt.Printf("replication primary on %s\n", prim.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	fmt.Printf("serving HTTP on %s (catalog: %d relations)\n", l.Addr(), len(cat))

	select {
	case err := <-serveErr:
		d.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Println("\nshutting down: draining requests, syncing WAL")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "drain:", err)
	}
	if prim != nil {
		prim.Close()
	}
	q.Close()
	if err := d.Sync(); err != nil {
		fmt.Fprintln(os.Stderr, "sync:", err)
	}
	return d.Close()
}

// followCmd runs `fivm follow`: a read replica streaming from a primary's
// replication listener and serving read-only HTTP. With -wal-dir the
// follower is durable and resumes from its local WAL after restarts.
func followCmd(primary, listen string, cat db.Catalog, dur *db.DurabilityOptions) error {
	f, err := replica.NewFollower(replica.FollowerConfig{
		Primary:    primary,
		Catalog:    cat,
		Durability: dur,
	})
	if err != nil {
		return err
	}
	srv, err := netserve.New(netserve.Config{DB: f.DB}) // no queue: read-only
	if err != nil {
		f.Close()
		return err
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		f.Close()
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	runDone := make(chan struct{})
	go func() { defer close(runDone); f.Run(ctx) }()
	fmt.Printf("following %s; serving read-only HTTP on %s\n", primary, l.Addr())

	select {
	case err := <-serveErr:
		f.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Println("\nshutting down: draining requests, syncing WAL")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "drain:", err)
	}
	<-runDone
	return f.Close() // final WAL sync happens in the DB close
}
