package main

import (
	"fmt"
	"time"

	"fivm/internal/data"
	"fivm/internal/datasets"
	"fivm/internal/ivm"
	"fivm/internal/ring"
	"fivm/internal/sqlparse"
	"fivm/internal/vorder"
)

func pickDataset(name string, retailer datasets.RetailerConfig, housing datasets.HousingConfig, twitter datasets.TwitterConfig) *datasets.Dataset {
	switch name {
	case "housing":
		return datasets.GenHousing(housing)
	case "twitter":
		return datasets.GenTwitter(twitter)
	default:
		return datasets.GenRetailer(retailer)
	}
}

// runSQL parses an ad-hoc query against a dataset's catalog, maintains it
// over the dataset's update stream with F-IVM (driving the batched
// ApplyDeltas API group-wise), and prints the result with throughput
// statistics.
func runSQL(ds *datasets.Dataset, sql string, batchSize, group int) error {
	cat := sqlparse.Catalog{}
	for _, rd := range ds.Query.Rels {
		cat[rd.Name] = rd.Schema
	}
	parsed, err := sqlparse.Parse(sql, cat)
	if err != nil {
		return err
	}
	order, err := vorder.Build(parsed.Query)
	if err != nil {
		return err
	}
	fmt.Printf("variable order: %v (width %d)\n", order, order.Width(parsed.Query))

	eng, err := ivm.New[float64](parsed.Query, order, ring.Float{}, parsed.LiftFloat(),
		ivm.Options[float64]{ComposeChains: true})
	if err != nil {
		return err
	}
	if err := eng.Init(); err != nil {
		return err
	}

	if group <= 0 {
		group = 1
	}
	stream := datasets.RoundRobinStream(ds, parsed.Query.RelNames(), batchSize)
	tuples := 0
	start := time.Now()
	batch := make([]ivm.NamedDelta[float64], 0, group)
	for at := 0; at < len(stream); at += group {
		batch = batch[:0]
		for _, b := range stream[at:min(at+group, len(stream))] {
			rd, _ := parsed.Query.Rel(b.Rel)
			d := data.NewRelation[float64](ring.Float{}, rd.Schema)
			d.Reserve(len(b.Tuples))
			for _, t := range b.Tuples {
				d.Merge(t, 1)
			}
			batch = append(batch, ivm.NamedDelta[float64]{Rel: b.Rel, Delta: d})
			tuples += len(b.Tuples)
		}
		if err := eng.ApplyDeltas(batch); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("maintained %d tuples in %v (%.0f tuples/sec) across %d views\n",
		tuples, elapsed.Round(time.Microsecond), float64(tuples)/elapsed.Seconds(), eng.ViewCount())
	res := eng.Snapshot().Result()
	fmt.Printf("result (%d groups):\n", res.Len())
	shown := 0
	for _, e := range res.SortedEntries() {
		fmt.Printf("  %v -> %g\n", e.Tuple, e.Payload)
		if shown++; shown >= 20 {
			fmt.Printf("  ... (%d more)\n", res.Len()-shown)
			break
		}
	}
	return nil
}
