// Command fivm regenerates the paper's evaluation tables and figures
// (Section 7 and Appendix C) on scaled-down synthetic workloads.
//
// Usage:
//
//	fivm <experiment> [flags]
//
// Experiments: fig6left, fig6right, fig7, fig8, fig11, fig12, fig13,
// triangle-indicator, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fivm/internal/bench"
	"fivm/internal/datasets"
	"fivm/internal/db"
	"fivm/internal/wal"
)

func usage() {
	fmt.Fprintf(os.Stderr, `fivm — F-IVM experiment driver

Usage: fivm <experiment> [flags]

Experiments (paper artifact each regenerates):
  fig6left            matrix chain, one-row updates (Figure 6 left)
  fig6right           matrix chain, rank-r updates (Figure 6 right)
  fig7                cofactor maintenance, throughput + memory (Figure 7)
  fig8                join result representations (Figure 8)
  fig11               SUM-aggregate throughput table (Appendix C)
  fig12               batch size sweep (Figure 12)
  fig13               cofactor over the triangle query (Figure 13)
  triangle-indicator  indicator projections on the triangle (Appendix B)
  ablations           engine design-choice ablations (chain composition,
                      materialization rule, payload encoding)
  autoorder           optimizer ablation: handpicked vs cost-chosen orders
                      (and cost-based materialization) on fig7/fig13 queries
  explain             print the optimizer's plan for a dataset: chosen
                      order, width, estimated vs actual view sizes, and
                      materialization decisions
  views               print a dataset's view tree and materialization
  sql "SELECT ..."    maintain an ad-hoc query over a dataset's stream
  repl                interactive DB session over a dataset: CREATE VIEW /
                      DROP VIEW / one-shot SELECT, with .play to stream
                      update batches into every registered view at once;
                      -wal-dir makes the session durable (segmented WAL +
                      .checkpoint, recovered on restart)
  multiview           shared-ingest DB vs N separate engines over one
                      stream (-views N concurrent views)
  serve               HTTP server over a DB: lookups, scans, one-shot
                      SELECT, DDL, backpressured writes (-listen); with
                      -wal-dir + -replication-listen it is a replication
                      primary shipping WAL records to followers
  follow              read replica: streams a primary's WAL
                      (-primary host:port), serves read-only HTTP
                      (-listen); -wal-dir makes it durable across restarts
  bench               continuous-benchmark suite: fig7/fig13/mixed/fig7wal/
                      multiview at CI scale plus hot-path microbenchmarks, as
                      machine-readable JSON (-o, default BENCH_6.json) for
                      cmd/benchdiff; -cpuprofile/-memprofile for pprof
  all                 everything above at default scale

Flags:
`)
	flag.PrintDefaults()
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	dataset := fs.String("dataset", "retailer", "dataset for fig7/fig8: retailer or housing")
	batch := fs.Int("batch", 1000, "update batch size")
	group := fs.Int("group", 1, "stream batches applied per batched ApplyDeltas call")
	workers := fs.Int("workers", 1, "shard/worker count for parallel maintenance (fig7, fig13)")
	readers := fs.Int("readers", 0, "concurrent snapshot-reader goroutines served while maintenance streams (fig7, fig13)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-strategy timeout (the paper's 1h limit, scaled)")
	scale := fs.Int("scale", 1, "dataset scale multiplier")
	noScalar := fs.Bool("no-scalar", false, "skip the per-aggregate scalar competitors (DBT, 1-IVM)")
	autoOrder := fs.Bool("auto-order", false, "let the cost-based optimizer choose variable orders (fig7, fig13, explain) instead of the handpicked ones")
	views := fs.Int("views", 4, "concurrent views for the multiview experiment")
	benchOut := fs.String("o", "BENCH_6.json", "output path for the bench report (bench)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the bench suite to this file (bench)")
	memprofile := fs.String("memprofile", "", "write a heap profile taken after the bench suite to this file (bench)")
	noMicro := fs.Bool("no-micro", false, "skip the hot-path microbenchmarks (bench)")
	walDir := fs.String("wal-dir", "", "enable durability: segmented WAL and checkpoints in this directory, recovered on start (repl); parent dir for the fig7wal scenario's WAL (bench)")
	fsyncName := fs.String("fsync", "never", "WAL fsync policy: always, interval, or never")
	ckptEvery := fs.Uint64("checkpoint-every", 0, "write an automatic checkpoint every N applied batches (repl; 0 = manual .checkpoint only)")
	listen := fs.String("listen", "127.0.0.1:8080", "HTTP listen address (serve, follow)")
	replListen := fs.String("replication-listen", "", "replication listener address for followers (serve; requires -wal-dir)")
	primaryAddr := fs.String("primary", "", "primary's replication address to stream from (follow)")
	catalogSpec := fs.String("catalog", "", `base relations as "R(A,B);S(A,C)" (serve, follow); default: the -dataset's catalog`)
	queueDepth := fs.Int("queue-depth", 256, "bounded ingest queue depth; a full queue returns 429 (serve)")
	fs.Parse(os.Args[2:])
	flagSet := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { flagSet[f.Name] = true })

	fsync, err := wal.ParseFsync(*fsyncName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// durability is nil — a purely in-memory DB — unless -wal-dir is given.
	var durability *db.DurabilityOptions
	if *walDir != "" {
		durability = &db.DurabilityOptions{Dir: *walDir, Fsync: fsync, CheckpointEvery: *ckptEvery}
	}

	retailer := datasets.DefaultRetailer()
	retailer.Dates *= *scale
	housing := datasets.DefaultHousing()
	housing.Scale *= *scale
	twitter := datasets.DefaultTwitter()
	twitter.Edges *= *scale

	print := func(ts ...*bench.Table) {
		for _, t := range ts {
			fmt.Println(t.Format())
		}
	}

	runFig7 := func(ds string) {
		cfg := bench.DefaultFig7(ds)
		cfg.BatchSize = *batch
		cfg.Timeout = *timeout
		cfg.Group = *group
		cfg.Workers = *workers
		cfg.Readers = *readers
		cfg.Retailer = retailer
		cfg.Housing = housing
		cfg.IncludeScalar = !*noScalar
		cfg.AutoOrder = *autoOrder
		print(bench.Fig7(cfg)...)
	}
	runFig8 := func(ds string) {
		cfg := bench.DefaultFig8(ds)
		cfg.BatchSize = *batch
		cfg.Timeout = *timeout
		cfg.Retailer = retailer
		if ds == "housing" {
			print(bench.Fig8Housing(cfg))
		} else {
			print(bench.Fig8Retailer(cfg)...)
		}
	}

	switch cmd {
	case "fig6left":
		cfg := bench.DefaultFig6()
		if *scale > 1 {
			cfg.Ns = append(cfg.Ns, 128**scale, 256**scale)
		}
		print(bench.Fig6Left(cfg))
	case "fig6right":
		cfg := bench.DefaultFig6()
		cfg.N *= *scale
		print(bench.Fig6Right(cfg))
	case "fig7":
		runFig7(*dataset)
	case "fig8":
		runFig8(*dataset)
	case "fig11":
		cfg := bench.DefaultFig11()
		cfg.BatchSize = *batch
		cfg.Timeout = *timeout
		cfg.Retailer = retailer
		cfg.Housing = housing
		print(bench.Fig11(cfg))
	case "fig12":
		cfg := bench.DefaultFig12()
		cfg.Timeout = *timeout
		cfg.Retailer = retailer
		cfg.Housing = housing
		cfg.Twitter = twitter
		print(bench.Fig12(cfg))
	case "fig13":
		cfg := bench.DefaultFig13()
		cfg.BatchSize = *batch
		cfg.Timeout = *timeout
		cfg.Workers = *workers
		cfg.Readers = *readers
		cfg.Twitter = twitter
		cfg.AutoOrder = *autoOrder
		cfg.IncludeScalar = !*noScalar
		print(bench.Fig13(cfg)...)
	case "triangle-indicator":
		cfg := bench.DefaultFig13()
		cfg.BatchSize = *batch
		cfg.Timeout = *timeout
		cfg.Twitter = twitter
		print(bench.TriangleIndicator(cfg))
	case "ablations":
		cfg := bench.DefaultAblation()
		cfg.Timeout = *timeout
		cfg.Retailer = retailer
		print(bench.Ablations(cfg))
	case "autoorder":
		cfg := bench.DefaultAutoOrder()
		cfg.BatchSize = *batch
		cfg.Timeout = *timeout
		cfg.Retailer = retailer
		cfg.Housing = housing
		cfg.Twitter = twitter
		print(bench.AutoOrder(cfg)...)
	case "explain":
		ds := pickDataset(*dataset, retailer, housing, twitter)
		fmt.Print(bench.ExplainReport(ds, *autoOrder))
	case "views":
		ds := pickDataset(*dataset, retailer, housing, twitter)
		print(bench.ViewTreeReport(ds, nil))
		print(bench.ViewTreeReport(ds, []string{ds.Largest}))
	case "repl":
		ds := pickDataset(*dataset, retailer, housing, twitter)
		if err := repl(ds, os.Stdin, os.Stdout, *batch, *workers, durability); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "serve", "follow":
		cat := db.Catalog{}
		if *catalogSpec != "" {
			if cat, err = parseCatalog(*catalogSpec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		} else {
			ds := pickDataset(*dataset, retailer, housing, twitter)
			for _, rd := range ds.Query.Rels {
				cat[rd.Name] = rd.Schema
			}
		}
		var err error
		if cmd == "serve" {
			err = serveCmd(*listen, *replListen, cat, durability, *queueDepth)
		} else {
			if *primaryAddr == "" {
				fmt.Fprintln(os.Stderr, "follow: -primary host:port is required")
				os.Exit(2)
			}
			err = followCmd(*primaryAddr, *listen, cat, durability)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "bench":
		if err := runBench(*benchOut, *cpuprofile, *memprofile, func(cfg *bench.SuiteConfig) {
			// The committed baseline uses DefaultSuite verbatim; flags only
			// override when explicitly set so plain `fivm bench` stays
			// comparable to it.
			if flagSet["batch"] {
				cfg.BatchSize = *batch
			}
			if flagSet["timeout"] {
				cfg.Timeout = *timeout
			}
			if flagSet["workers"] {
				cfg.Workers = *workers
			}
			if flagSet["readers"] {
				cfg.Readers = *readers
			}
			if flagSet["views"] {
				cfg.Views = *views
			}
			if flagSet["wal-dir"] {
				cfg.WALDir = *walDir
			}
			if flagSet["fsync"] {
				cfg.WALFsync = fsync
			}
			if *noMicro {
				cfg.Micro = false
			}
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "multiview":
		cfg := bench.DefaultMultiView()
		cfg.Views = *views
		cfg.BatchSize = *batch
		cfg.Group = *group
		cfg.Workers = *workers
		cfg.Retailer = retailer
		print(bench.MultiView(cfg)...)
	case "sql":
		if fs.NArg() < 1 {
			fmt.Fprintln(os.Stderr, `usage: fivm sql [-dataset retailer|housing] "SELECT ..."`)
			os.Exit(2)
		}
		ds := pickDataset(*dataset, retailer, housing, twitter)
		if err := runSQL(ds, fs.Arg(0), *batch, *group); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "all":
		print(bench.Fig6Left(bench.DefaultFig6()))
		print(bench.Fig6Right(bench.DefaultFig6()))
		runFig7("retailer")
		runFig7("housing")
		runFig8("retailer")
		runFig8("housing")
		cfg11 := bench.DefaultFig11()
		cfg11.Timeout = *timeout
		print(bench.Fig11(cfg11))
		cfg12 := bench.DefaultFig12()
		cfg12.Timeout = *timeout
		print(bench.Fig12(cfg12))
		cfg13 := bench.DefaultFig13()
		cfg13.Timeout = *timeout
		print(bench.Fig13(cfg13)...)
		print(bench.TriangleIndicator(bench.DefaultFig13()))
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
}
