package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"fivm/internal/bench"
)

// runBench executes the continuous-benchmark suite and writes the report to
// out, optionally wrapping the run in a CPU profile and dumping a heap
// profile afterwards.
func runBench(out, cpuprofile, memprofile string, tune func(*bench.SuiteConfig)) error {
	cfg := bench.DefaultSuite()
	tune(&cfg)

	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	start := time.Now()
	rep := bench.RunSuite(cfg)
	el := time.Since(start)
	if err := rep.WriteFile(out); err != nil {
		return err
	}

	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // profile live state, not garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}

	fmt.Printf("bench: %d scenario rows, %d microbenchmarks in %s -> %s\n",
		len(rep.Scenarios), len(rep.Micro), el.Round(time.Millisecond), out)
	for _, s := range rep.Scenarios {
		fmt.Printf("  %-10s %-18s %12.0f tuples/s  %s\n", s.Scenario, s.Case, s.ThroughputTPS, s.Status)
	}
	for _, m := range rep.Micro {
		fmt.Printf("  micro      %-26s %10.1f ns/op  %d allocs/op\n", m.Name, m.NsPerOp, m.AllocsPerOp)
	}
	return nil
}
