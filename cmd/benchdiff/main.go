// Command benchdiff compares two BENCH JSON reports produced by
// `fivm bench` and exits nonzero when the second regresses the first:
// scenario throughput down, microbenchmark ns/op or bytes/op up beyond the
// threshold, or any allocs/op increase at all. Regression lines carry the
// baseline and current values plus the worsening factor. CI runs it against
// the committed baseline at the repo root.
//
// Usage:
//
//	benchdiff [-threshold 0.10] baseline.json current.json
package main

import (
	"flag"
	"fmt"
	"os"

	"fivm/internal/bench"
)

func main() {
	threshold := flag.Float64("threshold", 0.10,
		"relative slowdown tolerated before a metric counts as a regression (0.10 = 10%); allocs/op increases are always regressions")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] baseline.json current.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	base, err := bench.ReadReport(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := bench.ReadReport(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	regs := bench.Compare(base, cur, *threshold)
	if len(regs) == 0 {
		fmt.Printf("benchdiff: ok, no regressions beyond %.0f%% (%d scenario rows, %d microbenchmarks compared)\n",
			*threshold*100, len(base.Scenarios), len(base.Micro))
		fmt.Print(bench.DeltaSummary(base, cur))
		return
	}
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "REGRESSION:", r.String())
	}
	fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond %.0f%%\n", len(regs), *threshold*100)
	os.Exit(1)
}
