module fivm

go 1.24
