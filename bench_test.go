// Benchmarks regenerating the per-update costs behind every table and
// figure of the paper's evaluation. Each benchmark prepares a strategy's
// state outside the timer and then measures update application. The full
// experiment tables (throughput/memory traces over whole streams) come from
// `go run ./cmd/fivm <experiment>`; these benches expose the same
// comparisons to `go test -bench`.
package fivm

import (
	"fmt"
	"math/rand"
	"testing"

	"fivm/internal/data"
	"fivm/internal/datasets"
	"fivm/internal/factorized"
	"fivm/internal/ivm"
	"fivm/internal/matrix"
	"fivm/internal/mcm"
	"fivm/internal/query"
	"fivm/internal/ring"
	"fivm/internal/vorder"
)

// --- shared helpers ----------------------------------------------------------

func tripleDeltaOf(q query.Query, b datasets.Batch) *data.Relation[ring.Triple] {
	cf := ring.Cofactor{}
	rd, _ := q.Rel(b.Rel)
	d := data.NewRelation[ring.Triple](cf, rd.Schema)
	one := cf.One()
	for _, t := range b.Tuples {
		d.Merge(t, one)
	}
	return d
}

func floatDeltaOf(q query.Query, b datasets.Batch) *data.Relation[float64] {
	rd, _ := q.Rel(b.Rel)
	d := data.NewRelation[float64](ring.Float{}, rd.Schema)
	for _, t := range b.Tuples {
		d.Merge(t, 1)
	}
	return d
}

func tripleLiftOf(vars data.Schema) data.LiftFunc[ring.Triple] {
	idx := make(map[string]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	return func(v string, x data.Value) ring.Triple {
		return ring.LiftValue(idx[v], x.AsFloat())
	}
}

func degMapLiftOf(vars data.Schema) data.LiftFunc[ring.DegMap] {
	idx := make(map[string]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	return func(v string, x data.Value) ring.DegMap {
		return ring.LiftDegMap(idx[v], x.AsFloat())
	}
}

func benchRetailer() *datasets.Dataset {
	return datasets.GenRetailer(datasets.RetailerConfig{
		Locations: 10, Dates: 30, Items: 60, ItemsPerLocDate: 10, Seed: 1,
	})
}

func benchHousing() *datasets.Dataset {
	return datasets.GenHousing(datasets.HousingConfig{Postcodes: 200, Scale: 1, Seed: 2})
}

func benchTwitter() *datasets.Dataset {
	return datasets.GenTwitter(datasets.TwitterConfig{Users: 200, Edges: 3000, Seed: 3})
}

// --- Figure 6 (left): one-row updates to A2 in A1·A2·A3 ------------------------

func BenchmarkFig6LeftRowUpdate(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		rng := rand.New(rand.NewSource(1))
		ms := []*matrix.Dense{matrix.Random(n, n, rng), matrix.Random(n, n, rng), matrix.Random(n, n, rng)}
		rowOf := func() (int, []float64) {
			i := rng.Intn(n)
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64()*2 - 1
			}
			return i, row
		}

		b.Run(fmt.Sprintf("F-IVM/n=%d", n), func(b *testing.B) {
			hc, err := mcm.NewHashChain(3, 2, ms)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx, row := rowOf()
				_, r1 := mcm.RowUpdate(n, idx, row)
				if err := hc.ApplyRank1(r1.U, r1.V); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("DenseF-IVM/n=%d", n), func(b *testing.B) {
			dc, _ := mcm.NewDenseChain(2, ms)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx, row := rowOf()
				_, r1 := mcm.RowUpdate(n, idx, row)
				dc.ApplyRank1FIVM(r1.U, r1.V)
			}
		})
		b.Run(fmt.Sprintf("Dense1-IVM/n=%d", n), func(b *testing.B) {
			dc, _ := mcm.NewDenseChain(2, ms)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx, row := rowOf()
				d, _ := mcm.RowUpdate(n, idx, row)
				dc.ApplyFirstOrder(d)
			}
		})
		b.Run(fmt.Sprintf("DenseRE-EVAL/n=%d", n), func(b *testing.B) {
			dc, _ := mcm.NewDenseChain(2, ms)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx, row := rowOf()
				d, _ := mcm.RowUpdate(n, idx, row)
				dc.ApplyReEval(d)
			}
		})
	}
}

// --- Figure 6 (right): rank-r updates ------------------------------------------

func BenchmarkFig6RightRankUpdate(b *testing.B) {
	const n = 64
	rng := rand.New(rand.NewSource(2))
	ms := []*matrix.Dense{matrix.Random(n, n, rng), matrix.Random(n, n, rng), matrix.Random(n, n, rng)}
	for _, r := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("DenseF-IVM/r=%d", r), func(b *testing.B) {
			dc, _ := mcm.NewDenseChain(2, ms)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, terms := matrix.RandomRank(n, n, r, rng)
				dc.ApplyRankRFIVM(terms)
			}
		})
	}
	b.Run("DenseRE-EVAL", func(b *testing.B) {
		dc, _ := mcm.NewDenseChain(2, ms)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d, _ := matrix.RandomRank(n, n, 4, rng)
			dc.ApplyReEval(d)
		}
	})
}

// --- Figure 7: cofactor maintenance ---------------------------------------------

// benchCofactorUpdates measures batch application against a warm strategy.
func benchCofactorUpdates[P any](b *testing.B, m ivm.Maintainer[P], ds *datasets.Dataset,
	toDelta func(q query.Query, bt datasets.Batch) *data.Relation[P], batchSize int) {
	b.Helper()
	stream := datasets.RoundRobinStream(ds, ds.Query.RelNames(), batchSize)
	if err := m.Init(); err != nil {
		b.Fatal(err)
	}
	tuples := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt := stream[i%len(stream)]
		if err := m.ApplyDelta(bt.Rel, toDelta(ds.Query, bt)); err != nil {
			b.Fatal(err)
		}
		tuples += len(bt.Tuples)
	}
	b.ReportMetric(float64(tuples)/b.Elapsed().Seconds(), "tuples/sec")
}

func benchFig7(b *testing.B, ds *datasets.Dataset) {
	vars := ds.Query.Vars()
	b.Run("F-IVM", func(b *testing.B) {
		m, err := ivm.New[ring.Triple](ds.Query, ds.NewOrder(), ring.Cofactor{}, tripleLiftOf(vars),
			ivm.Options[ring.Triple]{ComposeChains: true})
		if err != nil {
			b.Fatal(err)
		}
		benchCofactorUpdates[ring.Triple](b, m, ds, tripleDeltaOf, 100)
	})
	b.Run("SQL-OPT", func(b *testing.B) {
		m, err := ivm.New[ring.DegMap](ds.Query, ds.NewOrder(), ring.DegreeMap{}, degMapLiftOf(vars),
			ivm.Options[ring.DegMap]{ComposeChains: true})
		if err != nil {
			b.Fatal(err)
		}
		benchCofactorUpdates[ring.DegMap](b, m, ds, func(q query.Query, bt datasets.Batch) *data.Relation[ring.DegMap] {
			rd, _ := q.Rel(bt.Rel)
			dm := ring.DegreeMap{}
			d := data.NewRelation[ring.DegMap](dm, rd.Schema)
			for _, t := range bt.Tuples {
				d.Merge(t, dm.One())
			}
			return d
		}, 100)
	})
	b.Run("DBT-RING", func(b *testing.B) {
		m, err := ivm.NewRecursive[ring.Triple](ds.Query, ring.Cofactor{}, tripleLiftOf(vars), nil)
		if err != nil {
			b.Fatal(err)
		}
		benchCofactorUpdates[ring.Triple](b, m, ds, tripleDeltaOf, 100)
	})
	b.Run("DBT-scalar", func(b *testing.B) {
		m, err := ivm.NewMultiRecursive(ds.Query, ivm.CofactorAggSpecs(vars), nil)
		if err != nil {
			b.Fatal(err)
		}
		benchCofactorUpdates[float64](b, m, ds, floatDeltaOf, 100)
	})
	b.Run("1-IVM-scalar", func(b *testing.B) {
		m, err := ivm.NewMultiFirstOrder(ds.Query, ds.NewOrder(), ivm.CofactorAggSpecs(vars))
		if err != nil {
			b.Fatal(err)
		}
		benchCofactorUpdates[float64](b, m, ds, floatDeltaOf, 100)
	})
}

func BenchmarkFig7Retailer(b *testing.B) { benchFig7(b, benchRetailer()) }
func BenchmarkFig7Housing(b *testing.B)  { benchFig7(b, benchHousing()) }

// --- Figure 8: result representations -------------------------------------------

func BenchmarkFig8Representations(b *testing.B) {
	ds := benchHousing()
	jq := query.MustNew("join", ds.Query.Vars(), ds.Query.Rels...)
	for _, mode := range []factorized.Mode{factorized.FactPayloads, factorized.ListPayloads, factorized.ListKeys} {
		b.Run(mode.String(), func(b *testing.B) {
			r, err := factorized.New(mode, jq, ds.NewOrder(), nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := r.Init(); err != nil {
				b.Fatal(err)
			}
			stream := datasets.RoundRobinStream(ds, ds.Query.RelNames(), 100)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bt := stream[i%len(stream)]
				rd, _ := jq.Rel(bt.Rel)
				d := data.NewRelation[int64](ring.Int{}, rd.Schema)
				for _, t := range bt.Tuples {
					d.Merge(t, 1)
				}
				if err := r.ApplyDelta(bt.Rel, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 11: SUM-aggregate strategies -----------------------------------------

func BenchmarkFig11Sum(b *testing.B) {
	ds := benchRetailer()
	lift := func(v string, x data.Value) float64 {
		if v == "inventoryunits" {
			return x.AsFloat()
		}
		return 1
	}
	mk := map[string]func() ivm.Maintainer[float64]{
		"F-IVM": func() ivm.Maintainer[float64] {
			m, err := ivm.New[float64](ds.Query, ds.NewOrder(), ring.Float{}, lift,
				ivm.Options[float64]{ComposeChains: true})
			if err != nil {
				b.Fatal(err)
			}
			return m
		},
		"DBT": func() ivm.Maintainer[float64] {
			m, err := ivm.NewRecursive[float64](ds.Query, ring.Float{}, lift, nil)
			if err != nil {
				b.Fatal(err)
			}
			return m
		},
		"1-IVM": func() ivm.Maintainer[float64] {
			m, err := ivm.NewFirstOrder[float64](ds.Query, ds.NewOrder(), ring.Float{}, lift)
			if err != nil {
				b.Fatal(err)
			}
			return m
		},
		"F-RE": func() ivm.Maintainer[float64] {
			m, err := ivm.NewReEval[float64](ds.Query, ds.NewOrder(), ring.Float{}, lift)
			if err != nil {
				b.Fatal(err)
			}
			return m
		},
		"DBT-RE": func() ivm.Maintainer[float64] {
			return ivm.NewNaiveReEval[float64](ds.Query, ring.Float{}, lift)
		},
	}
	for _, name := range []string{"F-IVM", "DBT", "1-IVM", "F-RE", "DBT-RE"} {
		b.Run(name, func(b *testing.B) {
			benchCofactorUpdates[float64](b, mk[name](), ds, floatDeltaOf, 100)
		})
	}
}

// --- Figure 12: batch sizes -------------------------------------------------------

func BenchmarkFig12BatchSize(b *testing.B) {
	ds := benchRetailer()
	vars := ds.Query.Vars()
	for _, bs := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("F-IVM/bs=%d", bs), func(b *testing.B) {
			m, err := ivm.New[ring.Triple](ds.Query, ds.NewOrder(), ring.Cofactor{}, tripleLiftOf(vars),
				ivm.Options[ring.Triple]{ComposeChains: true})
			if err != nil {
				b.Fatal(err)
			}
			benchCofactorUpdates[ring.Triple](b, m, ds, tripleDeltaOf, bs)
		})
	}
}

// --- Figure 13: triangle query -----------------------------------------------------

func BenchmarkFig13Triangle(b *testing.B) {
	ds := benchTwitter()
	vars := ds.Query.Vars()
	b.Run("F-IVM", func(b *testing.B) {
		m, err := ivm.New[ring.Triple](ds.Query, ds.NewOrder(), ring.Cofactor{}, tripleLiftOf(vars),
			ivm.Options[ring.Triple]{})
		if err != nil {
			b.Fatal(err)
		}
		benchCofactorUpdates[ring.Triple](b, m, ds, tripleDeltaOf, 100)
	})
	b.Run("DBT-RING", func(b *testing.B) {
		m, err := ivm.NewRecursive[ring.Triple](ds.Query, ring.Cofactor{}, tripleLiftOf(vars), nil)
		if err != nil {
			b.Fatal(err)
		}
		benchCofactorUpdates[ring.Triple](b, m, ds, tripleDeltaOf, 100)
	})
	b.Run("1-IVM-scalar", func(b *testing.B) {
		m, err := ivm.NewMultiFirstOrder(ds.Query, ds.NewOrder(), ivm.CofactorAggSpecs(vars))
		if err != nil {
			b.Fatal(err)
		}
		benchCofactorUpdates[float64](b, m, ds, floatDeltaOf, 100)
	})
	b.Run("Indicator", func(b *testing.B) {
		m, err := ivm.New[int64](ds.Query, ds.NewOrder(), ring.Int{},
			func(string, data.Value) int64 { return 1 },
			ivm.Options[int64]{Indicators: true})
		if err != nil {
			b.Fatal(err)
		}
		benchCofactorUpdates[int64](b, m, ds, func(q query.Query, bt datasets.Batch) *data.Relation[int64] {
			rd, _ := q.Rel(bt.Rel)
			d := data.NewRelation[int64](ring.Int{}, rd.Schema)
			for _, t := range bt.Tuples {
				d.Merge(t, 1)
			}
			return d
		}, 100)
	})
}

// --- core micro-benchmarks ----------------------------------------------------------

func BenchmarkCofactorRingMul(b *testing.B) {
	cf := ring.Cofactor{}
	x := cf.Add(ring.LiftValue(0, 2), ring.LiftValue(0, 3))
	for j := 1; j < 10; j++ {
		x = cf.Mul(x, ring.LiftValue(j, float64(j)))
	}
	y := ring.LiftValue(11, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cf.Mul(x, y)
	}
}

func BenchmarkRelationMerge(b *testing.B) {
	r := data.NewRelation[int64](ring.Int{}, data.NewSchema("A", "B"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Merge(data.Ints(int64(i%1000), int64(i%97)), 1)
	}
}

func BenchmarkEngineSingleTupleUpdate(b *testing.B) {
	// The O(1) path: single-tuple updates to S in the paper query fix all
	// variables along the leaf-to-root path.
	q := query.MustNew("Q", nil,
		query.RelDef{Name: "R", Schema: data.NewSchema("A", "B")},
		query.RelDef{Name: "S", Schema: data.NewSchema("A", "C", "E")},
		query.RelDef{Name: "T", Schema: data.NewSchema("C", "D")},
	)
	o := vorder.MustNew(vorder.V("A", vorder.V("B"), vorder.V("C", vorder.V("D"), vorder.V("E"))))
	m, err := ivm.New[int64](q, o, ring.Int{}, func(string, data.Value) int64 { return 1 }, ivm.Options[int64]{})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Init(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := data.NewRelation[int64](ring.Int{}, data.NewSchema("A", "C", "E"))
		d.Merge(data.Ints(int64(rng.Intn(100)), int64(rng.Intn(100)), int64(rng.Intn(10))), 1)
		if err := m.ApplyDelta("S", d); err != nil {
			b.Fatal(err)
		}
	}
}
