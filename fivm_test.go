// Public API tests: everything a downstream user touches goes through the
// facade, exercised here the way the README shows it.
package fivm_test

import (
	"math"
	"testing"

	"fivm"
)

func TestQuickstartFlow(t *testing.T) {
	q := fivm.MustQuery("Q", fivm.NewSchema("A", "C"),
		fivm.Rel("R", fivm.NewSchema("A", "B")),
		fivm.Rel("S", fivm.NewSchema("A", "C", "E")),
		fivm.Rel("T", fivm.NewSchema("C", "D")))
	ord := fivm.MustOrder(fivm.V("A", fivm.V("B"), fivm.V("C", fivm.V("D"), fivm.V("E"))))
	lift := func(v string, x fivm.Value) int64 {
		switch v {
		case "B", "D", "E":
			return x.AsInt()
		default:
			return 1
		}
	}
	eng, err := fivm.NewEngine[int64](q, ord, fivm.IntRing{}, lift, fivm.EngineOptions[int64]{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Init(); err != nil {
		t.Fatal(err)
	}

	ins := func(rel string, schema fivm.Schema, rows ...fivm.Tuple) {
		d := fivm.NewRelation[int64](fivm.IntRing{}, schema)
		for _, tup := range rows {
			d.Merge(tup, 1)
		}
		if err := eng.ApplyDelta(rel, d); err != nil {
			t.Fatal(err)
		}
	}
	ins("R", fivm.NewSchema("A", "B"), fivm.Ints(1, 10))
	ins("S", fivm.NewSchema("A", "C", "E"), fivm.Ints(1, 7, 3))
	ins("T", fivm.NewSchema("C", "D"), fivm.Ints(7, 100))

	if p, ok := eng.Result().Get(fivm.Ints(1, 7)); !ok || p != 3000 {
		t.Fatalf("SUM(B*D*E) = %v,%v, want 3000", p, ok)
	}

	// Delete the S tuple: the group disappears.
	d := fivm.NewRelation[int64](fivm.IntRing{}, fivm.NewSchema("A", "C", "E"))
	d.Merge(fivm.Ints(1, 7, 3), -1)
	if err := eng.ApplyDelta("S", d); err != nil {
		t.Fatal(err)
	}
	if eng.Result().Len() != 0 {
		t.Errorf("result not empty after delete: %v", eng.Result())
	}
}

func TestSQLToEngineFlow(t *testing.T) {
	cat := fivm.SQLCatalog{
		"R": fivm.NewSchema("A", "B"),
		"S": fivm.NewSchema("A", "C"),
	}
	p, err := fivm.ParseSQL("SELECT A, SUM(B * C) FROM R NATURAL JOIN S GROUP BY A", cat)
	if err != nil {
		t.Fatal(err)
	}
	ord, err := fivm.BuildOrder(p.Query)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := fivm.NewEngine[int64](p.Query, ord, fivm.IntRing{}, p.LiftInt(), fivm.EngineOptions[int64]{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Init(); err != nil {
		t.Fatal(err)
	}
	dr := fivm.NewRelation[int64](fivm.IntRing{}, cat["R"])
	dr.Merge(fivm.Ints(1, 4), 1)
	ds := fivm.NewRelation[int64](fivm.IntRing{}, cat["S"])
	ds.Merge(fivm.Ints(1, 5), 1)
	if err := eng.ApplyDelta("R", dr); err != nil {
		t.Fatal(err)
	}
	if err := eng.ApplyDelta("S", ds); err != nil {
		t.Fatal(err)
	}
	if p, _ := eng.Result().Get(fivm.Ints(1)); p != 20 {
		t.Fatalf("SUM(B*C) = %d, want 20", p)
	}
}

func TestCofactorModelFlow(t *testing.T) {
	q := fivm.MustQuery("train", nil,
		fivm.Rel("R1", fivm.NewSchema("id", "x")),
		fivm.Rel("R2", fivm.NewSchema("id", "y")))
	ord := fivm.MustOrder(fivm.V("id", fivm.V("x"), fivm.V("y")))
	m, err := fivm.NewCofactorModel(q, ord, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	var r1, r2 []fivm.Tuple
	for i := int64(0); i < 20; i++ {
		x := i % 7
		r1 = append(r1, fivm.Ints(i, x))
		r2 = append(r2, fivm.Ints(i, 2*x+1))
	}
	if err := m.Insert("R1", r1); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("R2", r2); err != nil {
		t.Fatal(err)
	}
	model, err := m.Train("y", []string{"x"}, fivm.TrainOptions{MaxIters: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(model.Theta[1]-2) > 1e-3 || math.Abs(model.Theta[0]-1) > 1e-3 {
		t.Errorf("theta = %v, want [1 2]", model.Theta)
	}
}

func TestMatrixChainFlow(t *testing.T) {
	n := 6
	ms := []*fivm.Dense{fivm.NewDense(n, n), fivm.NewDense(n, n), fivm.NewDense(n, n)}
	for _, m := range ms {
		for i := 0; i < n; i++ {
			m.Set(i, i, 2) // 2·I each; product is 8·I
		}
	}
	hc, err := fivm.NewHashChain(3, 2, ms)
	if err != nil {
		t.Fatal(err)
	}
	got := hc.ResultMatrix(n, n)
	for i := 0; i < n; i++ {
		if got.At(i, i) != 8 {
			t.Fatalf("A[%d,%d] = %v, want 8", i, i, got.At(i, i))
		}
	}
	// Rank-1 bump of the middle matrix.
	u := make([]float64, n)
	v := make([]float64, n)
	u[0], v[0] = 1, 1
	if err := hc.ApplyRank1(u, v); err != nil {
		t.Fatal(err)
	}
	if got := hc.ResultMatrix(n, n).At(0, 0); got != 12 { // 2*(2+1)*2
		t.Fatalf("A[0,0] after rank-1 = %v, want 12", got)
	}
}

func TestCQResultFlow(t *testing.T) {
	q := fivm.MustQuery("cq", fivm.NewSchema("A", "B"),
		fivm.Rel("R", fivm.NewSchema("A", "B")))
	ord := fivm.MustOrder(fivm.V("A", fivm.V("B")))
	r, err := fivm.NewCQResult(fivm.FactPayloads, q, ord, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Init(); err != nil {
		t.Fatal(err)
	}
	d := fivm.NewRelation[int64](fivm.IntRing{}, fivm.NewSchema("A", "B"))
	d.Merge(fivm.Ints(1, 2), 1)
	d.Merge(fivm.Ints(1, 3), 1)
	if err := r.ApplyDelta("R", d); err != nil {
		t.Fatal(err)
	}
	if r.Count() != 2 {
		t.Errorf("Count = %d", r.Count())
	}
	seen := 0
	r.Enumerate(func(fivm.Tuple) bool { seen++; return true })
	if seen != 2 {
		t.Errorf("enumerated %d tuples", seen)
	}
}

func TestDatasetFacade(t *testing.T) {
	ds := fivm.GenHousing(fivm.HousingConfig{Postcodes: 5, Scale: 1, Seed: 1})
	if ds.TotalTuples() == 0 {
		t.Fatal("empty dataset")
	}
	stream := fivm.RoundRobinStream(ds, ds.Query.RelNames(), 3)
	if len(stream) == 0 {
		t.Fatal("empty stream")
	}
	if len(fivm.SingleRelStream(ds, ds.Largest, 4)) == 0 {
		t.Fatal("empty single-relation stream")
	}
}

func TestNilOrderFacade(t *testing.T) {
	q := fivm.MustQuery("Q", fivm.NewSchema("A"),
		fivm.Rel("R", fivm.NewSchema("A", "B")),
		fivm.Rel("S", fivm.NewSchema("A", "C")))

	// Order: nil self-plans; results must match an engine over an explicit
	// order.
	auto, err := fivm.NewEngine[int64](q, nil, fivm.IntRing{}, fivm.CountLift, fivm.EngineOptions[int64]{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := fivm.NewEngine[int64](q, fivm.MustOrder(fivm.V("A", fivm.V("B"), fivm.V("C"))),
		fivm.IntRing{}, fivm.CountLift, fivm.EngineOptions[int64]{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []*fivm.Engine[int64]{auto, ref} {
		if err := e.Init(); err != nil {
			t.Fatal(err)
		}
	}
	dR := fivm.NewRelation[int64](fivm.IntRing{}, fivm.NewSchema("A", "B"))
	dR.Merge(fivm.Ints(1, 2), 1)
	dR.Merge(fivm.Ints(2, 2), 1)
	dS := fivm.NewRelation[int64](fivm.IntRing{}, fivm.NewSchema("A", "C"))
	dS.Merge(fivm.Ints(1, 7), 1)
	for _, e := range []*fivm.Engine[int64]{auto, ref} {
		if err := e.ApplyDelta("R", dR.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := e.ApplyDelta("S", dS.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := auto.Result().String(), ref.Result().String(); got != want {
		t.Errorf("self-planned %s vs explicit %s", got, want)
	}
	if auto.Order() == nil {
		t.Error("no order chosen")
	}
	if auto.Explain() == "" {
		t.Error("empty explain")
	}
}

func TestChooseOrderFacade(t *testing.T) {
	q := fivm.MustQuery("Q", nil,
		fivm.Rel("R", fivm.NewSchema("A", "B")),
		fivm.Rel("S", fivm.NewSchema("B", "C")))
	st := fivm.NewStats()
	r := fivm.NewRelation[int64](fivm.IntRing{}, fivm.NewSchema("A", "B"))
	for i := int64(0); i < 20; i++ {
		r.Merge(fivm.Ints(i%5, i), 1)
	}
	fivm.AnalyzeRelation(st, "R", r)
	o, err := fivm.ChooseOrder(q, fivm.OrderChooseOptions{Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(q); err != nil {
		t.Fatal(err)
	}
	m := fivm.NewCostModel(q, st, nil)
	if c := m.Cost(o).Total(); c <= 0 {
		t.Errorf("cost = %v", c)
	}
}

// TestServingReads exercises the snapshot read path through the facade the
// way the README "Serving reads" section shows it: enable publication, pin
// a reader, stream updates concurrently, and read consistent epochs.
func TestServingReads(t *testing.T) {
	q := fivm.MustQuery("Q", fivm.NewSchema("A"),
		fivm.Rel("R", fivm.NewSchema("A", "B")),
		fivm.Rel("S", fivm.NewSchema("A", "C")))
	eng, err := fivm.NewEngine[int64](q, fivm.MustOrder(fivm.V("A", fivm.V("B"), fivm.V("C"))),
		fivm.IntRing{}, fivm.CountLift, fivm.EngineOptions[int64]{})
	if err != nil {
		t.Fatal(err)
	}
	base := fivm.NewRelation[int64](fivm.IntRing{}, fivm.NewSchema("A", "B"))
	for a := int64(0); a < 10; a++ {
		base.Merge(fivm.Ints(a, a%3), 1)
	}
	if err := eng.Load("R", base); err != nil {
		t.Fatal(err)
	}
	sbase := fivm.NewRelation[int64](fivm.IntRing{}, fivm.NewSchema("A", "C"))
	for a := int64(0); a < 10; a++ {
		sbase.Merge(fivm.Ints(a, 1), 1)
	}
	if err := eng.Load("S", sbase); err != nil {
		t.Fatal(err)
	}
	if err := eng.Init(); err != nil {
		t.Fatal(err)
	}

	// Enable publication (maintenance side), pin a reader, and read.
	rd := fivm.NewReader[int64](eng)
	if rd.Epoch() != 0 {
		t.Fatalf("epoch = %d, want 0", rd.Epoch())
	}
	if p, ok := rd.Lookup(fivm.Ints(3)); !ok || p != 1 {
		t.Fatalf("Lookup(3) = %d,%v, want 1", p, ok)
	}

	// Stream a batch; the pinned reader is isolated until Refresh.
	d := fivm.NewRelation[int64](fivm.IntRing{}, fivm.NewSchema("A", "B"))
	d.Merge(fivm.Ints(3, 9), 1)
	if err := eng.ApplyDeltas([]fivm.NamedDelta[int64]{{Rel: "R", Delta: d}}); err != nil {
		t.Fatal(err)
	}
	if p, _ := rd.Lookup(fivm.Ints(3)); p != 1 {
		t.Fatalf("pinned reader moved: %d", p)
	}
	if !rd.Refresh() || rd.Epoch() != 1 {
		t.Fatalf("Refresh: epoch = %d, want 1", rd.Epoch())
	}
	if p, _ := rd.Lookup(fivm.Ints(3)); p != 2 {
		t.Fatalf("Lookup(3) after refresh = %d, want 2", p)
	}

	// Scans and the view catalog round-trip through the facade types.
	var scanned int
	rd.Scan(nil, func(fivm.Tuple, int64) bool { scanned++; return true })
	if scanned != rd.Len() {
		t.Fatalf("scan visited %d of %d", scanned, rd.Len())
	}
	var snap *fivm.ViewSnapshot[int64] = rd.Snapshot()
	for _, name := range snap.Views() {
		if snap.View(name) == nil || eng.ViewByName(name) == nil {
			t.Fatalf("catalog name %q does not resolve", name)
		}
	}
	if got, want := len(eng.ViewNames()), len(snap.Views()); got != want {
		t.Fatalf("ViewNames %d != snapshot catalog %d", got, want)
	}
}

func TestDurabilityFacade(t *testing.T) {
	fs := fivm.NewMemWALFS()
	opts := fivm.DBOptions{Durability: &fivm.DurabilityOptions{
		Dir: "wal", FS: fs, Fsync: fivm.FsyncAlways,
	}}
	d, err := fivm.Open(exampleCatalog(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fivm.CreateSQLView(d, "byA",
		"SELECT A, COUNT(*) FROM R NATURAL JOIN S GROUP BY A", fivm.ViewOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := d.Apply([]fivm.DBUpdate{
		fivm.InsertInto("R", fivm.Ints(1, 10), fivm.Ints(1, 11)),
		fivm.InsertInto("S", fivm.Ints(1, 100)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Apply([]fivm.DBUpdate{fivm.DeleteFrom("R", fivm.Ints(1, 11))}); err != nil {
		t.Fatal(err)
	}

	// Power cut: only synced bytes survive; fsync=always synced everything.
	fs.Crash()
	d2, err := fivm.Open(exampleCatalog(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	var ri *fivm.RecoveryInfo = d2.Recovery()
	if ri == nil || !ri.FromCheckpoint || ri.ReplayedBatches != 1 {
		t.Fatalf("unexpected recovery info: %+v", ri)
	}
	s := fivm.ViewSnapshotOf[float64](d2.Epoch(), "byA")
	if s == nil {
		t.Fatal("recovered epoch missing the persisted view")
	}
	if got, ok := s.Result().Get(fivm.Ints(1)); !ok || got != 1 {
		t.Fatalf("recovered byA(1) = %v,%v, want 1", got, ok)
	}

	if _, err := fivm.ParseFsync("interval"); err != nil {
		t.Fatal(err)
	}
	var _ fivm.WALFS = fivm.NewFaultWALFS(fs)
}
