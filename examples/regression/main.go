// Regression: learn a linear model of house prices over the Housing star
// join (paper Section 6.2 and the Figure 7 workload) while the data streams
// in. The cofactor matrix — count, sums, and all pairwise sums of products
// over the 27 join variables — is maintained incrementally as one compound
// ring aggregate; training afterwards never touches the data again.
package main

import (
	"fmt"

	"fivm"
)

func main() {
	cfg := fivm.DefaultHousing()
	cfg.Postcodes = 300
	ds := fivm.GenHousing(cfg)

	model, err := fivm.NewCofactorModel(ds.Query, fivm.HousingOrder(), nil)
	if err != nil {
		panic(err)
	}
	if err := model.Init(); err != nil {
		panic(err)
	}

	// Stream the dataset in batches of 500, as the paper's experiments do.
	stream := fivm.RoundRobinStream(ds, ds.Query.RelNames(), 500)
	for _, b := range stream {
		if err := model.Insert(b.Rel, b.Tuples); err != nil {
			panic(err)
		}
	}
	agg := model.Aggregate()
	fmt.Printf("training tuples in join: %.0f\n", agg.Count())
	fmt.Printf("maintained views: %d\n", model.Engine().ViewCount())

	// Train price ~ livingarea + nbbedrooms + averagesalary from the
	// cofactor matrix alone (any label/feature subset works — the paper's
	// model-reuse point).
	m, err := model.Train("price", []string{"livingarea", "nbbedrooms", "averagesalary"},
		fivm.TrainOptions{MaxIters: 50000})
	if err != nil {
		panic(err)
	}
	fmt.Printf("model after %d gradient steps (grad=%.2e):\n", m.Iters, m.GradNorm)
	fmt.Printf("  intercept: %.4f\n", m.Theta[0])
	for i, f := range m.Features[1:] {
		fmt.Printf("  %-14s %.4f\n", f+":", m.Theta[i+1])
	}

	// The model keeps tracking the data: insert a batch, retrain, compare.
	extra := ds.Tuples["House"][:200]
	if err := model.Insert("House", extra); err != nil {
		panic(err)
	}
	m2, err := model.Train("price", []string{"livingarea", "nbbedrooms", "averagesalary"},
		fivm.TrainOptions{MaxIters: 50000})
	if err != nil {
		panic(err)
	}
	fmt.Printf("after 200 more House tuples, intercept moved %.4f -> %.4f\n", m.Theta[0], m2.Theta[0])
	fmt.Printf("prediction for livingarea=80, nbbedrooms=3, averagesalary=50: %.2f\n",
		m2.Predict(map[string]float64{"livingarea": 80, "nbbedrooms": 3, "averagesalary": 50}))
}
