// SQL: parse the paper's SQL dialect and maintain the query with F-IVM.
// The front-end turns `SELECT ..., SUM(...) FROM ... NATURAL JOIN ... GROUP
// BY ...` into the internal join-aggregate form plus lifting functions; a
// variable order is derived automatically.
package main

import (
	"fmt"

	"fivm"
)

func main() {
	catalog := fivm.SQLCatalog{
		"Orders":    fivm.NewSchema("customer", "item", "quantity"),
		"Items":     fivm.NewSchema("item", "price"),
		"Customers": fivm.NewSchema("customer", "region"),
	}
	parsed, err := fivm.ParseSQL(`
		SELECT region, SUM(quantity * price)
		FROM Orders NATURAL JOIN Items NATURAL JOIN Customers
		GROUP BY region;`, catalog)
	if err != nil {
		panic(err)
	}

	// Derive a variable order heuristically and build the engine over Z.
	ord, err := fivm.BuildOrder(parsed.Query)
	if err != nil {
		panic(err)
	}
	eng, err := fivm.NewEngine[int64](parsed.Query, ord, fivm.IntRing{}, parsed.LiftInt(),
		fivm.EngineOptions[int64]{})
	if err != nil {
		panic(err)
	}
	if err := eng.Init(); err != nil {
		panic(err)
	}

	insert := func(rel string, rows ...fivm.Tuple) {
		d := fivm.NewRelation[int64](fivm.IntRing{}, catalog[rel])
		for _, t := range rows {
			d.Merge(t, 1)
		}
		if err := eng.ApplyDelta(rel, d); err != nil {
			panic(err)
		}
	}
	insert("Items", fivm.Ints(1, 10), fivm.Ints(2, 25))
	insert("Customers", fivm.Ints(100, 1), fivm.Ints(101, 2))
	insert("Orders",
		fivm.Ints(100, 1, 3), // region 1: 3×10
		fivm.Ints(100, 2, 1), // region 1: 1×25
		fivm.Ints(101, 2, 4), // region 2: 4×25
	)

	fmt.Println("revenue per region:")
	for _, e := range eng.Snapshot().Result().SortedEntries() {
		fmt.Printf("  region %v -> %d\n", e.Tuple, e.Payload)
	}

	// A price change is a delete+insert pair on Items; the views absorb it.
	upd := fivm.NewRelation[int64](fivm.IntRing{}, catalog["Items"])
	upd.Merge(fivm.Ints(2, 25), -1)
	upd.Merge(fivm.Ints(2, 30), 1)
	if err := eng.ApplyDelta("Items", upd); err != nil {
		panic(err)
	}
	fmt.Println("after repricing item 2 to 30:")
	for _, e := range eng.Snapshot().Result().SortedEntries() {
		fmt.Printf("  region %v -> %d\n", e.Tuple, e.Payload)
	}
}
