// Quickstart: maintain the paper's running example (Example 1.1) — the
// query
//
//	SELECT S.A, S.C, SUM(R.B * T.D * S.E)
//	FROM R NATURAL JOIN S NATURAL JOIN T GROUP BY S.A, S.C
//
// under inserts and deletes, with F-IVM's view tree doing O(1) work for
// single-tuple updates to S.
package main

import (
	"fmt"

	"fivm"
)

func main() {
	// The query: R(A,B) ⋈ S(A,C,E) ⋈ T(C,D), group by A and C,
	// SUM(B*D*E) in the Z ring.
	q := fivm.MustQuery("Q", fivm.NewSchema("A", "C"),
		fivm.Rel("R", fivm.NewSchema("A", "B")),
		fivm.Rel("S", fivm.NewSchema("A", "C", "E")),
		fivm.Rel("T", fivm.NewSchema("C", "D")),
	)

	// The variable order of Figure 2a: A on top, B and C below it, D and E
	// under C. It dictates which partial aggregates are pushed past joins.
	ord := fivm.MustOrder(fivm.V("A", fivm.V("B"), fivm.V("C", fivm.V("D"), fivm.V("E"))))

	// Lifting: bound variables B, D, E contribute their value to the sum;
	// everything else lifts to 1.
	lift := func(v string, x fivm.Value) int64 {
		switch v {
		case "B", "D", "E":
			return x.AsInt()
		default:
			return 1
		}
	}

	eng, err := fivm.NewEngine[int64](q, ord, fivm.IntRing{}, lift, fivm.EngineOptions[int64]{})
	if err != nil {
		panic(err)
	}
	if err := eng.Init(); err != nil {
		panic(err)
	}

	// Insert some tuples. Deltas are relations: keys map to multiplicities
	// (negative = delete).
	insert := func(rel string, schema fivm.Schema, rows ...fivm.Tuple) {
		d := fivm.NewRelation[int64](fivm.IntRing{}, schema)
		for _, t := range rows {
			d.Merge(t, 1)
		}
		if err := eng.ApplyDelta(rel, d); err != nil {
			panic(err)
		}
	}
	insert("R", fivm.NewSchema("A", "B"), fivm.Ints(1, 10), fivm.Ints(2, 20))
	insert("S", fivm.NewSchema("A", "C", "E"), fivm.Ints(1, 7, 3), fivm.Ints(2, 8, 5))
	insert("T", fivm.NewSchema("C", "D"), fivm.Ints(7, 100), fivm.Ints(8, 200))

	// Read through the snapshot API: every applied batch publishes a
	// consistent epoch, and a Reader pins one — safe even while another
	// goroutine keeps applying deltas (eng.Result() would be a live,
	// unsynchronized handle).
	reader := fivm.NewReader[int64](eng)
	fmt.Printf("after inserts (epoch %d):\n", reader.Epoch())
	for _, e := range reader.Snapshot().Result().SortedEntries() {
		fmt.Printf("  (A,C)=%v -> SUM(B*D*E)=%d\n", e.Tuple, e.Payload)
	}

	// Delete one S tuple: same mechanism, negative payload.
	del := fivm.NewRelation[int64](fivm.IntRing{}, fivm.NewSchema("A", "C", "E"))
	del.Merge(fivm.Ints(1, 7, 3), -1)
	if err := eng.ApplyDelta("S", del); err != nil {
		panic(err)
	}

	// The pinned reader still serves the pre-delete epoch; Refresh moves it
	// to the freshest published state.
	if p, ok := reader.Lookup(fivm.Ints(1, 7)); ok {
		fmt.Printf("pinned epoch %d still serves (1,7) -> %d\n", reader.Epoch(), p)
	}
	reader.Refresh()
	fmt.Printf("after deleting S(1,7,3) (epoch %d):\n", reader.Epoch())
	for _, e := range reader.Snapshot().Result().SortedEntries() {
		fmt.Printf("  (A,C)=%v -> SUM(B*D*E)=%d\n", e.Tuple, e.Payload)
	}
	fmt.Printf("materialized views: %d\n", eng.ViewCount())
}
