// DB quickstart: the database-style surface. One fivm.DB owns the base
// relations; any number of maintained views — each with its own ring and
// group-by — register against it; every Apply ingests a batch exactly once
// and fans it out to all of them, publishing one consistent cross-view
// epoch. Views can be created (backfilled) and dropped mid-stream.
package main

import (
	"fmt"

	"fivm"
)

func main() {
	// The base relations, registered once at Open.
	d, err := fivm.Open(fivm.SQLCatalog{
		"R": fivm.NewSchema("A", "B"),
		"S": fivm.NewSchema("A", "C", "E"),
		"T": fivm.NewSchema("C", "D"),
	}, fivm.DBOptions{})
	if err != nil {
		panic(err)
	}
	defer d.Close()

	// View 1: COUNT grouped by A, in the Z ring, order auto-chosen by the
	// cost-based optimizer (nil Order).
	qCnt := fivm.MustQuery("cntByA", fivm.NewSchema("A"),
		fivm.Rel("R", fivm.NewSchema("A", "B")),
		fivm.Rel("S", fivm.NewSchema("A", "C", "E")))
	if _, err := fivm.CreateView[int64](d, "cntByA", qCnt, fivm.IntRing{}, fivm.CountLift, fivm.ViewOptions{}); err != nil {
		panic(err)
	}

	// View 2: the paper's running example as SQL DDL, maintained in R.
	if _, err := d.Exec(`CREATE VIEW sums AS
		SELECT S.A, S.C, SUM(R.B * T.D * S.E)
		FROM R NATURAL JOIN S NATURAL JOIN T
		GROUP BY S.A, S.C`); err != nil {
		panic(err)
	}

	// Stream updates: each Apply is ingested once for every view.
	ins := func(rel string, rows ...[]int64) fivm.DBUpdate {
		ts := make([]fivm.Tuple, len(rows))
		for i, r := range rows {
			ts[i] = fivm.Ints(r...)
		}
		return fivm.InsertInto(rel, ts...)
	}
	must(d.Apply([]fivm.DBUpdate{
		ins("R", []int64{1, 10}, []int64{2, 20}),
		ins("S", []int64{1, 5, 2}, []int64{2, 5, 3}),
		ins("T", []int64{5, 4}),
	}))

	// A late view backfills from the current bases: it starts life exactly
	// as if it had been registered before the stream began.
	qByC := fivm.MustQuery("cntByC", fivm.NewSchema("C"),
		fivm.Rel("S", fivm.NewSchema("A", "C", "E")),
		fivm.Rel("T", fivm.NewSchema("C", "D")))
	if _, err := fivm.CreateView[int64](d, "cntByC", qByC, fivm.IntRing{}, fivm.CountLift, fivm.ViewOptions{}); err != nil {
		panic(err)
	}

	must(d.Apply([]fivm.DBUpdate{
		ins("R", []int64{1, 11}),
		fivm.DeleteFrom("R", fivm.Ints(2, 20)),
	}))

	// Read everything from one cross-view epoch: all views at the same
	// applied prefix, lock-free, while maintenance could keep streaming.
	e := d.Epoch()
	fmt.Printf("epoch after %d batches, views %v\n", e.Applied, e.Views())
	cnt := fivm.ViewSnapshotOf[int64](e, "cntByA").Result()
	for _, en := range cnt.SortedEntries() {
		fmt.Printf("  cntByA%v = %d\n", en.Tuple, en.Payload)
	}
	sums := fivm.ViewSnapshotOf[float64](e, "sums").Result()
	for _, en := range sums.SortedEntries() {
		fmt.Printf("  sums%v = %g\n", en.Tuple, en.Payload)
	}
	byC := fivm.ViewSnapshotOf[int64](e, "cntByC").Result()
	for _, en := range byC.SortedEntries() {
		fmt.Printf("  cntByC%v = %d\n", en.Tuple, en.Payload)
	}

	// Typed readers serve point lookups; DropView retires a view while
	// pinned epochs stay readable.
	rd, err := fivm.ViewReader[float64](d, "sums")
	if err != nil {
		panic(err)
	}
	if sum, ok := rd.Lookup(fivm.Ints(1, 5)); ok {
		fmt.Printf("reader: sums[1,5] = %g\n", sum)
	}
	must(d.DropView("cntByA"))
	fmt.Printf("after drop: views %v\n", d.Epoch().Views())
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
