// Triangle: maintain the triangle count of a social graph (paper Appendix
// B). The cyclic query defeats plain factorization — the intermediate view
// S ⋈ T has up to N² keys — but an indicator projection ∃_{A,B} R bounds it
// by |R| while preserving the result.
package main

import (
	"fmt"

	"fivm"
)

func main() {
	cfg := fivm.DefaultTwitter()
	cfg.Users, cfg.Edges = 300, 6000
	ds := fivm.GenTwitter(cfg)

	build := func(indicators bool) *fivm.Engine[int64] {
		eng, err := fivm.NewEngine[int64](ds.Query, fivm.TriangleOrder(), fivm.IntRing{},
			fivm.CountLift, fivm.EngineOptions[int64]{Indicators: indicators})
		if err != nil {
			panic(err)
		}
		if err := eng.Init(); err != nil {
			panic(err)
		}
		return eng
	}
	plain := build(false)
	indexed := build(true)

	// Stream the three edge relations in round-robin batches.
	for _, b := range fivm.RoundRobinStream(ds, ds.Query.RelNames(), 500) {
		rd, _ := ds.Query.Rel(b.Rel)
		d := fivm.NewRelation[int64](fivm.IntRing{}, rd.Schema)
		for _, t := range b.Tuples {
			d.Merge(t, 1)
		}
		if err := plain.ApplyDelta(b.Rel, d.Clone()); err != nil {
			panic(err)
		}
		if err := indexed.ApplyDelta(b.Rel, d); err != nil {
			panic(err)
		}
	}

	// Read through published snapshots (Result()/ViewOf() are live handles;
	// snapshots are the concurrency-safe read path).
	cPlain, _ := plain.Snapshot().Result().Get(fivm.Tuple{})
	cInd, _ := indexed.Snapshot().Result().Get(fivm.Tuple{})
	fmt.Printf("triangles: %d (plain) = %d (with indicator): %v\n", cPlain, cInd, cPlain == cInd)

	// The indicator bounds the intermediate view at C.
	sizeAt := func(e *fivm.Engine[int64], v string) int {
		size := -1
		snap := e.Snapshot()
		e.Tree().Walk(func(n *fivm.ViewNode) {
			if n.Var == v {
				if rel := snap.ViewOf(n); rel != nil {
					size = rel.Len()
				}
			}
		})
		return size
	}
	fmt.Printf("|V@C| plain:          %d keys (S⋈T pairs)\n", sizeAt(plain, "C"))
	fmt.Printf("|V@C| with indicator: %d keys (bounded by |R|)\n", sizeAt(indexed, "C"))
	fmt.Printf("memory: %d KiB plain vs %d KiB with indicator\n",
		plain.MemoryBytes()/1024, indexed.MemoryBytes()/1024)
}
