// Matrixchain: maintain A = A1·A2·A3 under rank-1 changes to A2 (paper
// Section 6.1, recovering LINVIEW). A row update factorizes as δA2 = u vᵀ
// and propagates through the view tree as a product of vectors — O(n²)
// instead of the O(n³) matrix-matrix multiplications that first-order IVM
// and re-evaluation pay.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"fivm"
)

func main() {
	const n = 128
	rng := rand.New(rand.NewSource(1))
	ms := []*fivm.Dense{
		fivm.RandomDense(n, n, rng),
		fivm.RandomDense(n, n, rng),
		fivm.RandomDense(n, n, rng),
	}

	// F-IVM over hash relations: matrices as relations Ai[Xi, Xi+1] with
	// value payloads, updates to A2 (the middle matrix).
	hash, err := fivm.NewHashChain(3, 2, ms)
	if err != nil {
		panic(err)
	}
	// The dense backend runs the same three strategies over arrays.
	dense, err := fivm.NewDenseChain(2, ms)
	if err != nil {
		panic(err)
	}

	// One row update: row i of A2 changes to fresh values.
	i := rng.Intn(n)
	row := make([]float64, n)
	for j := range row {
		row[j] = rng.Float64()*2 - 1
	}
	u := make([]float64, n)
	u[i] = 1

	t0 := time.Now()
	if err := hash.ApplyRank1(u, row); err != nil {
		panic(err)
	}
	tHash := time.Since(t0)

	t0 = time.Now()
	dense.ApplyRank1FIVM(u, row)
	tDense := time.Since(t0)

	// Verify against a from-scratch recomputation.
	check, _ := fivm.NewDenseChain(2, dense.Ms)
	diff := hash.ResultMatrix(n, n).MaxAbsDiff(check.A)
	fmt.Printf("n=%d row update: F-IVM hash %v, F-IVM dense %v, max err vs recompute %.2e\n",
		n, tHash, tDense, diff)

	// A rank-5 update decomposes into five rank-1 propagations; an
	// arbitrary update matrix is decomposed automatically.
	delta := fivm.RandomDense(n, n, rng)
	terms := fivm.DecomposeMatrix(delta, 5, 1e-12) // keep the top-5 skeleton terms
	fmt.Printf("decomposed a dense update into %d rank-1 terms\n", len(terms))
	for _, t := range terms {
		if err := hash.ApplyRank1(t.U, t.V); err != nil {
			panic(err)
		}
		dense.ApplyRank1FIVM(t.U, t.V)
	}
	diff = hash.ResultMatrix(n, n).MaxAbsDiff(dense.A)
	fmt.Printf("hash and dense backends agree to %.2e after rank-5 update\n", diff)
}
