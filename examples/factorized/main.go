// Factorized: maintain a conjunctive query result in listing and factorized
// representations (paper Section 6.3, Figure 8). On a star join whose
// listing result grows multiplicatively, the factorized payloads stay
// linear while supporting enumeration of the same tuples.
package main

import (
	"fmt"

	"fivm"
)

func main() {
	// Q(P, X, Y, Z) = R1(P,X), R2(P,Y), R3(P,Z): a star join on P.
	q := fivm.MustQuery("star", fivm.NewSchema("P", "X", "Y", "Z"),
		fivm.Rel("R1", fivm.NewSchema("P", "X")),
		fivm.Rel("R2", fivm.NewSchema("P", "Y")),
		fivm.Rel("R3", fivm.NewSchema("P", "Z")),
	)
	mkOrder := func() *fivm.Order {
		return fivm.MustOrder(fivm.V("P", fivm.V("X"), fivm.V("Y"), fivm.V("Z")))
	}

	mkResult := func(mode fivm.CQMode) *fivm.CQResult {
		r, err := fivm.NewCQResult(mode, q, mkOrder(), nil)
		if err != nil {
			panic(err)
		}
		if err := r.Init(); err != nil {
			panic(err)
		}
		return r
	}
	fact := mkResult(fivm.FactPayloads)
	list := mkResult(fivm.ListPayloads)

	// Stream inserts: 25 values of X, Y, Z under each of 5 join keys. The
	// listing result is 5 * 25³ = 78,125 tuples; the factorization stores
	// 5 * (1 + 3*25) values.
	apply := func(r *fivm.CQResult, rel string, schema fivm.Schema, rows ...fivm.Tuple) {
		d := fivm.NewRelation[int64](fivm.IntRing{}, schema)
		for _, t := range rows {
			d.Merge(t, 1)
		}
		if err := r.ApplyDelta(rel, d); err != nil {
			panic(err)
		}
	}
	for p := int64(0); p < 5; p++ {
		for v := int64(0); v < 25; v++ {
			for i, rel := range []string{"R1", "R2", "R3"} {
				schema := fivm.NewSchema("P", q.Rels[i].Schema[1])
				apply(fact, rel, schema, fivm.Ints(p, v))
				apply(list, rel, schema, fivm.Ints(p, v))
			}
		}
	}

	// Pin one epoch of each representation: all counting and enumeration
	// below reads that consistent snapshot (safe even if another goroutine
	// kept streaming updates).
	factSnap, listSnap := fact.Snapshot(), list.Snapshot()
	fmt.Printf("result tuples:      %d (both representations agree: %v)\n",
		factSnap.Count(), factSnap.Count() == listSnap.Count())
	fmt.Printf("listing memory:     ~%d KiB\n", list.MemoryBytes()/1024)
	fmt.Printf("factorized memory:  ~%d KiB\n", fact.MemoryBytes()/1024)

	// The factorization still enumerates the exact tuples, constant delay
	// per tuple; print the first three.
	printed := 0
	factSnap.Enumerate(func(t fivm.Tuple) bool {
		fmt.Printf("  tuple %v\n", t)
		printed++
		return printed < 3
	})

	// Deletion shrinks the factorization in place.
	d := fivm.NewRelation[int64](fivm.IntRing{}, fivm.NewSchema("P", "X"))
	for v := int64(0); v < 25; v++ {
		d.Merge(fivm.Ints(0, v), -1)
	}
	if err := fact.ApplyDelta("R1", d); err != nil {
		panic(err)
	}
	fmt.Printf("after deleting key 0's R1 tuples: %d tuples (pinned epoch still had %d)\n",
		fact.Snapshot().Count(), factSnap.Count())
}
