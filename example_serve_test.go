package fivm_test

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"

	"fivm"
)

// Serving a DB over HTTP: a bounded apply queue feeds the maintenance
// goroutine, and the server exposes lookups, scans, SQL, and ingest with an
// epoch header on every response.
func ExampleNewHTTPServer() {
	d, _ := fivm.Open(exampleCatalog(), fivm.DBOptions{})
	q := fivm.NewApplyQueue(d, 64)
	defer d.Close()
	defer q.Close()

	srv, err := fivm.NewHTTPServer(fivm.ServeConfig{
		DB:    func() *fivm.DB { return d },
		Queue: q,
	})
	if err != nil {
		panic(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go srv.Serve(l)
	base := "http://" + l.Addr().String()

	// DDL and ingest over the wire; the epoch headers on the ingest
	// response name the batch that made these writes visible.
	http.Post(base+"/exec", "application/json", strings.NewReader(
		`{"sql":"CREATE VIEW sums AS SELECT A, SUM(B * C) FROM R NATURAL JOIN S GROUP BY A"}`))
	resp, err := http.Post(base+"/apply", "application/json", strings.NewReader(
		`{"updates":[
			{"rel":"R","mult":1,"tuples":[[1,3]]},
			{"rel":"S","mult":1,"tuples":[[1,5]]}]}`))
	if err != nil {
		panic(err)
	}
	resp.Body.Close()
	fmt.Println("applied:", resp.Header.Get("X-Fivm-Applied"))

	// A point lookup; all reads within one request see one epoch.
	resp, err = http.Get(base + "/view/sums/lookup?key=1")
	if err != nil {
		panic(err)
	}
	var out struct {
		Value float64 `json:"value"`
		Found bool    `json:"found"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	fmt.Println("sum:", out.Value, out.Found)
	// Output:
	// applied: 1
	// sum: 15 true
}
