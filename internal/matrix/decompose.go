package matrix

// RankOne is one term u vᵀ of a low-rank decomposition.
type RankOne struct {
	U, V []float64
}

// Decompose factors an update matrix into a sum of rank-1 terms using
// pivoted cross (skeleton) decomposition: repeatedly pick the largest
// remaining element as pivot, emit (column × row / pivot), and subtract. For
// a matrix of exact rank r it terminates with r terms; maxRank caps the
// output, and tol stops early once the residual's largest element is at or
// below tol. This realizes the paper's Section 5 observation that arbitrary
// updates decompose into sums of rank-1 tensors, each a product of vectors.
func Decompose(m *Dense, maxRank int, tol float64) []RankOne {
	res := m.Clone()
	var out []RankOne
	for r := 0; r < maxRank; r++ {
		// Find the pivot: the largest absolute element of the residual.
		pi, pj, pv := -1, -1, tol
		for i := 0; i < res.Rows; i++ {
			row := res.Data[i*res.Cols : (i+1)*res.Cols]
			for j, v := range row {
				av := v
				if av < 0 {
					av = -av
				}
				if av > pv {
					pi, pj, pv = i, j, av
				}
			}
		}
		if pi < 0 {
			break // residual is (near-)zero
		}
		pivot := res.At(pi, pj)
		u := res.Col(pj)
		v := res.Row(pi)
		for i := range u {
			u[i] /= pivot
		}
		out = append(out, RankOne{U: u, V: v})
		// res -= u vᵀ
		for i, x := range u {
			if x == 0 {
				continue
			}
			row := res.Data[i*res.Cols : (i+1)*res.Cols]
			for j, y := range v {
				row[j] -= x * y
			}
		}
	}
	return out
}

// Recompose sums the rank-1 terms back into a dense matrix of the given
// shape.
func Recompose(terms []RankOne, rows, cols int) *Dense {
	out := NewDense(rows, cols)
	for _, t := range terms {
		out.AddOuterInPlace(t.U, t.V)
	}
	return out
}

// RandomRank builds a random matrix of exact rank at most r as a sum of r
// outer products of random vectors — the shape of the paper's rank-r update
// workload in Figure 6 (right).
func RandomRank(rows, cols, r int, rng interface{ Float64() float64 }) (*Dense, []RankOne) {
	terms := make([]RankOne, r)
	for t := range terms {
		u := make([]float64, rows)
		v := make([]float64, cols)
		for i := range u {
			u[i] = rng.Float64()*2 - 1
		}
		for j := range v {
			v[j] = rng.Float64()*2 - 1
		}
		terms[t] = RankOne{U: u, V: v}
	}
	return Recompose(terms, rows, cols), terms
}
