package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func naiveMul(a, b *Dense) *Dense {
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{3, 4, 5}, {64, 64, 64}, {70, 33, 91}, {1, 7, 1}} {
		a := Random(dims[0], dims[1], rng)
		b := Random(dims[1], dims[2], rng)
		got := a.Mul(b)
		want := naiveMul(a, b)
		if !got.EqualApprox(want, 1e-9) {
			t.Fatalf("Mul %v: max diff %g", dims, got.MaxAbsDiff(want))
		}
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch should panic")
		}
	}()
	NewDense(2, 3).Mul(NewDense(2, 3))
}

func TestMulVecAndVecMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Random(6, 4, rng)
	v := []float64{1, -2, 3, 0.5}
	got := a.MulVec(v)
	for i := 0; i < a.Rows; i++ {
		want := 0.0
		for j := range v {
			want += a.At(i, j) * v[j]
		}
		if math.Abs(got[i]-want) > 1e-12 {
			t.Fatalf("MulVec[%d] = %g, want %g", i, got[i], want)
		}
	}
	u := []float64{2, 0, -1, 1, 0.25, -3}
	got = a.VecMul(u)
	for j := 0; j < a.Cols; j++ {
		want := 0.0
		for i := range u {
			want += u[i] * a.At(i, j)
		}
		if math.Abs(got[j]-want) > 1e-12 {
			t.Fatalf("VecMul[%d] = %g, want %g", j, got[j], want)
		}
	}
}

func TestOuterAndAddOuter(t *testing.T) {
	u := []float64{1, 2}
	v := []float64{3, 4, 5}
	o := Outer(u, v)
	if o.At(1, 2) != 10 || o.At(0, 0) != 3 {
		t.Fatalf("Outer = %v", o.Data)
	}
	m := NewDense(2, 3)
	m.AddOuterInPlace(u, v)
	if !m.EqualApprox(o, 0) {
		t.Error("AddOuterInPlace != Outer")
	}
}

func TestAddSubScaleTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Random(4, 5, rng)
	b := Random(4, 5, rng)
	if d := a.Add(b).Sub(b).MaxAbsDiff(a); d > 1e-12 {
		t.Errorf("Add/Sub roundtrip diff %g", d)
	}
	if d := a.Scale(2).Sub(a).MaxAbsDiff(a); d > 1e-12 {
		t.Errorf("Scale diff %g", d)
	}
	tt := a.Transpose().Transpose()
	if !tt.EqualApprox(a, 0) {
		t.Error("double transpose != identity")
	}
	at := a.Transpose()
	if at.Rows != a.Cols || at.At(2, 3) != a.At(3, 2) {
		t.Error("Transpose wrong")
	}
}

func TestRowColClone(t *testing.T) {
	a := NewDense(2, 3)
	a.Set(1, 2, 7)
	if a.Row(1)[2] != 7 || a.Col(2)[1] != 7 {
		t.Error("Row/Col")
	}
	c := a.Clone()
	c.Set(0, 0, 9)
	if a.At(0, 0) != 0 {
		t.Error("Clone shares storage")
	}
}

// --- chain ----------------------------------------------------------------

func TestChainOrderCLRS(t *testing.T) {
	// CLRS example: dimensions 30x35, 35x15, 15x5, 5x10, 10x20, 20x25 has
	// optimal cost 15125.
	cost, _ := ChainOrder([]int{30, 35, 15, 5, 10, 20, 25})
	if cost != 15125 {
		t.Errorf("ChainOrder cost = %d, want 15125", cost)
	}
}

func TestMulChainOptimalMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ms := []*Dense{Random(8, 3, rng), Random(3, 9, rng), Random(9, 2, rng), Random(2, 6, rng)}
	naive := MulChain(ms...)
	opt := MulChainOptimal(ms...)
	if !opt.EqualApprox(naive, 1e-9) {
		t.Errorf("optimal order result differs: %g", opt.MaxAbsDiff(naive))
	}
}

func TestChainOrderTrivial(t *testing.T) {
	if cost, _ := ChainOrder([]int{5, 7}); cost != 0 {
		t.Errorf("single matrix cost = %d", cost)
	}
}

// --- decompose --------------------------------------------------------------

func TestDecomposeExactRank(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, r := range []int{1, 2, 5} {
		m, _ := RandomRank(20, 16, r, rng)
		terms := Decompose(m, 20, 1e-10)
		if len(terms) > r {
			t.Errorf("rank-%d matrix decomposed into %d terms", r, len(terms))
		}
		back := Recompose(terms, 20, 16)
		if d := back.MaxAbsDiff(m); d > 1e-8 {
			t.Errorf("rank-%d recompose diff %g", r, d)
		}
	}
}

func TestDecomposeRespectsMaxRank(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := Random(10, 10, rng) // full rank almost surely
	terms := Decompose(m, 3, 0)
	if len(terms) != 3 {
		t.Errorf("maxRank not respected: %d terms", len(terms))
	}
}

func TestDecomposeZeroMatrix(t *testing.T) {
	if terms := Decompose(NewDense(4, 4), 4, 0); len(terms) != 0 {
		t.Errorf("zero matrix produced %d terms", len(terms))
	}
}

func TestNormAndEqualApprox(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 3)
	m.Set(1, 1, 4)
	if math.Abs(m.Norm()-5) > 1e-12 {
		t.Errorf("Norm = %g", m.Norm())
	}
	o := m.Clone()
	o.Set(0, 1, 1e-13)
	if !m.EqualApprox(o, 1e-12) {
		t.Error("EqualApprox tolerance")
	}
	if m.EqualApprox(NewDense(3, 3), 1) {
		t.Error("shape mismatch should not be equal")
	}
}

func TestStrassenMatchesClassical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 7, 64, 130, 257} {
		a := Random(n, n, rng)
		b := Random(n, n, rng)
		got := a.MulStrassen(b)
		want := a.Mul(b)
		if !got.EqualApprox(want, 1e-7*float64(n)) {
			t.Fatalf("n=%d: Strassen diff %g", n, got.MaxAbsDiff(want))
		}
	}
}

func TestStrassenShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-square Strassen should panic")
		}
	}()
	NewDense(2, 3).MulStrassen(NewDense(3, 2))
}
