package matrix

// strassenCutoff is the dimension below which MulStrassen falls back to the
// blocked classical multiplication; recursion overhead dominates under it.
const strassenCutoff = 128

// MulStrassen multiplies square matrices with Strassen's algorithm
// (O(n^2.8074), the sub-cubic exponent the paper quotes for its dense
// baselines), padding to the next even dimension at each level and falling
// back to the blocked classical kernel below a cutoff. Shapes must be
// square and equal.
func (m *Dense) MulStrassen(o *Dense) *Dense {
	if m.Rows != m.Cols || o.Rows != o.Cols || m.Cols != o.Rows {
		panic("matrix: MulStrassen requires equal square matrices")
	}
	return strassen(m, o)
}

func strassen(a, b *Dense) *Dense {
	n := a.Rows
	if n <= strassenCutoff {
		return a.Mul(b)
	}
	if n%2 == 1 {
		// Pad to even dimension with a zero row/column.
		ap, bp := pad(a, n+1), pad(b, n+1)
		return crop(strassen(ap, bp), n)
	}
	h := n / 2
	a11, a12, a21, a22 := quad(a, h)
	b11, b12, b21, b22 := quad(b, h)

	m1 := strassen(a11.Add(a22), b11.Add(b22))
	m2 := strassen(a21.Add(a22), b11)
	m3 := strassen(a11, b12.Sub(b22))
	m4 := strassen(a22, b21.Sub(b11))
	m5 := strassen(a11.Add(a12), b22)
	m6 := strassen(a21.Sub(a11), b11.Add(b12))
	m7 := strassen(a12.Sub(a22), b21.Add(b22))

	c11 := m1.Add(m4).Sub(m5).Add(m7)
	c12 := m3.Add(m5)
	c21 := m2.Add(m4)
	c22 := m1.Sub(m2).Add(m3).Add(m6)

	out := NewDense(n, n)
	paste(out, c11, 0, 0)
	paste(out, c12, 0, h)
	paste(out, c21, h, 0)
	paste(out, c22, h, h)
	return out
}

func pad(m *Dense, n int) *Dense {
	out := NewDense(n, n)
	for i := 0; i < m.Rows; i++ {
		copy(out.Data[i*n:i*n+m.Cols], m.Data[i*m.Cols:(i+1)*m.Cols])
	}
	return out
}

func crop(m *Dense, n int) *Dense {
	out := NewDense(n, n)
	for i := 0; i < n; i++ {
		copy(out.Data[i*n:(i+1)*n], m.Data[i*m.Cols:i*m.Cols+n])
	}
	return out
}

// quad splits m into four h×h quadrants.
func quad(m *Dense, h int) (a11, a12, a21, a22 *Dense) {
	a11, a12, a21, a22 = NewDense(h, h), NewDense(h, h), NewDense(h, h), NewDense(h, h)
	n := m.Cols
	for i := 0; i < h; i++ {
		copy(a11.Data[i*h:(i+1)*h], m.Data[i*n:i*n+h])
		copy(a12.Data[i*h:(i+1)*h], m.Data[i*n+h:i*n+2*h])
		copy(a21.Data[i*h:(i+1)*h], m.Data[(i+h)*n:(i+h)*n+h])
		copy(a22.Data[i*h:(i+1)*h], m.Data[(i+h)*n+h:(i+h)*n+2*h])
	}
	return
}

func paste(dst *Dense, src *Dense, r0, c0 int) {
	for i := 0; i < src.Rows; i++ {
		copy(dst.Data[(r0+i)*dst.Cols+c0:(r0+i)*dst.Cols+c0+src.Cols], src.Data[i*src.Cols:(i+1)*src.Cols])
	}
}
