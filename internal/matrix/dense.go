// Package matrix is a dense linear-algebra substrate: row-major float64
// matrices with blocked multiplication, vector operations, the textbook
// matrix-chain-order dynamic program, and low-rank decomposition of update
// matrices. It stands in for the paper's Octave/BLAS runtime in the matrix
// chain experiments (Figure 6): same asymptotics, ordinary constants.
package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a dense row-major matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense allocates a zero matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Random fills a matrix with uniform values in (-1, 1), as the paper's
// synthetic matrices.
func Random(rows, cols int, rng *rand.Rand) *Dense {
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

// At returns m[i,j].
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns an independent copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Add returns m + o.
func (m *Dense) Add(o *Dense) *Dense {
	m.mustSameShape(o)
	out := m.Clone()
	for i, v := range o.Data {
		out.Data[i] += v
	}
	return out
}

// AddInPlace accumulates o into m.
func (m *Dense) AddInPlace(o *Dense) {
	m.mustSameShape(o)
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// Sub returns m - o.
func (m *Dense) Sub(o *Dense) *Dense {
	m.mustSameShape(o)
	out := m.Clone()
	for i, v := range o.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns c * m.
func (m *Dense) Scale(c float64) *Dense {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= c
	}
	return out
}

// Transpose returns mᵀ.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

const mulBlock = 64

// Mul returns m * o using cache-blocked triple loops (the Octave stand-in's
// GEMM).
func (m *Dense) Mul(o *Dense) *Dense {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("matrix: Mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := NewDense(m.Rows, o.Cols)
	for ii := 0; ii < m.Rows; ii += mulBlock {
		iMax := min(ii+mulBlock, m.Rows)
		for kk := 0; kk < m.Cols; kk += mulBlock {
			kMax := min(kk+mulBlock, m.Cols)
			for jj := 0; jj < o.Cols; jj += mulBlock {
				jMax := min(jj+mulBlock, o.Cols)
				for i := ii; i < iMax; i++ {
					for k := kk; k < kMax; k++ {
						a := m.Data[i*m.Cols+k]
						if a == 0 {
							continue
						}
						orow := o.Data[k*o.Cols:]
						crow := out.Data[i*out.Cols:]
						for j := jj; j < jMax; j++ {
							crow[j] += a * orow[j]
						}
					}
				}
			}
		}
	}
	return out
}

// MulVec returns m * v for a column vector v.
func (m *Dense) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("matrix: MulVec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// VecMul returns vᵀ * m for a row vector v.
func (m *Dense) VecMul(v []float64) []float64 {
	if m.Rows != len(v) {
		panic(fmt.Sprintf("matrix: VecMul shape mismatch %d * %dx%d", len(v), m.Rows, m.Cols))
	}
	out := make([]float64, m.Cols)
	for i, x := range v {
		if x == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, y := range row {
			out[j] += x * y
		}
	}
	return out
}

// Outer returns the outer product u vᵀ.
func Outer(u, v []float64) *Dense {
	out := NewDense(len(u), len(v))
	for i, x := range u {
		if x == 0 {
			continue
		}
		row := out.Data[i*len(v):]
		for j, y := range v {
			row[j] = x * y
		}
	}
	return out
}

// AddOuterInPlace accumulates u vᵀ into m.
func (m *Dense) AddOuterInPlace(u, v []float64) {
	if m.Rows != len(u) || m.Cols != len(v) {
		panic("matrix: AddOuterInPlace shape mismatch")
	}
	for i, x := range u {
		if x == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, y := range v {
			row[j] += x * y
		}
	}
}

// MaxAbsDiff returns the largest absolute element-wise difference.
func (m *Dense) MaxAbsDiff(o *Dense) float64 {
	m.mustSameShape(o)
	best := 0.0
	for i, v := range m.Data {
		if d := math.Abs(v - o.Data[i]); d > best {
			best = d
		}
	}
	return best
}

// EqualApprox reports element-wise equality within eps.
func (m *Dense) EqualApprox(o *Dense, eps float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	return m.MaxAbsDiff(o) <= eps
}

// Norm returns the Frobenius norm.
func (m *Dense) Norm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := range out {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

func (m *Dense) mustSameShape(o *Dense) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("matrix: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
}
