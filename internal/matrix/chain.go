package matrix

import "fmt"

// ChainOrder solves the textbook Matrix Chain Multiplication problem
// (CLRS §15.2, cited by the paper in Section 6.1): given dimensions
// p[0..n] of a chain of n matrices where A_i is p[i-1]×p[i], it returns the
// minimal scalar-multiplication cost and the split table for reconstructing
// the optimal parenthesization. The optimal variable order for the matrix
// chain query corresponds exactly to this parenthesization.
func ChainOrder(p []int) (cost int64, split [][]int) {
	n := len(p) - 1
	if n < 1 {
		return 0, nil
	}
	dp := make([][]int64, n+1)
	split = make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int64, n+1)
		split[i] = make([]int, n+1)
	}
	for length := 2; length <= n; length++ {
		for i := 1; i+length-1 <= n; i++ {
			j := i + length - 1
			dp[i][j] = 1 << 62
			for k := i; k < j; k++ {
				c := dp[i][k] + dp[k+1][j] + int64(p[i-1])*int64(p[k])*int64(p[j])
				if c < dp[i][j] {
					dp[i][j] = c
					split[i][j] = k
				}
			}
		}
	}
	return dp[1][n], split
}

// MulChain multiplies the chain left to right (the naive order).
func MulChain(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		panic("matrix: empty chain")
	}
	out := ms[0]
	for _, m := range ms[1:] {
		out = out.Mul(m)
	}
	return out
}

// MulChainOptimal multiplies the chain in the cost-optimal parenthesization
// from ChainOrder.
func MulChainOptimal(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		panic("matrix: empty chain")
	}
	p := make([]int, len(ms)+1)
	p[0] = ms[0].Rows
	for i, m := range ms {
		if m.Rows != p[i] {
			panic(fmt.Sprintf("matrix: chain dimension mismatch at %d", i))
		}
		p[i+1] = m.Cols
	}
	_, split := ChainOrder(p)
	var rec func(i, j int) *Dense
	rec = func(i, j int) *Dense {
		if i == j {
			return ms[i-1]
		}
		k := split[i][j]
		return rec(i, k).Mul(rec(k+1, j))
	}
	return rec(1, len(ms))
}
