package ring

import "testing"

// benchTriple builds a k-variable triple with dense S and Q blocks, the
// shape of an upper-view cofactor payload.
func benchTriple(k int) Triple {
	t := Triple{C: 2}
	for i := 0; i < k; i++ {
		t.Vars = append(t.Vars, int32(i))
		t.S = append(t.S, float64(i+1))
	}
	for i := 0; i < k*k; i++ {
		t.Q = append(t.Q, float64(i%7))
	}
	return t
}

// BenchmarkTripleAdd measures the immutable payload sum on 16-variable
// triples: the pre-optimization accumulation cost (fresh S and Q per call).
func BenchmarkTripleAdd(b *testing.B) {
	cf := Cofactor{}
	acc, d := benchTriple(16), benchTriple(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acc = cf.Add(acc, d)
	}
	_ = acc
}

// BenchmarkTripleAddInto measures steady-state in-place accumulation: the
// accumulator covers the operand's variables, so no allocation occurs.
func BenchmarkTripleAddInto(b *testing.B) {
	acc, d := benchTriple(16), benchTriple(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acc.AddInto(&d)
	}
}

// BenchmarkTripleMul measures the immutable ring product of an 8-variable
// payload with a 1-variable lifting, the dominant product shape on delta
// paths.
func BenchmarkTripleMul(b *testing.B) {
	cf := Cofactor{}
	p, l := benchTriple(8), LiftValue(9, 3)
	b.ReportAllocs()
	var out Triple
	for i := 0; i < b.N; i++ {
		out = cf.Mul(p, l)
	}
	_ = out
}

// BenchmarkTripleMulInto measures the same product computed into a reused
// destination.
func BenchmarkTripleMulInto(b *testing.B) {
	cf := Cofactor{}
	p, l := benchTriple(8), LiftValue(9, 3)
	var dst Triple
	cf.MulInto(&dst, &p, &l) // warm capacity
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cf.MulInto(&dst, &p, &l)
	}
}

// BenchmarkTripleMulAddInto measures the fused multiply-accumulate used by
// view merges: dst += p * lift, fully in place.
func BenchmarkTripleMulAddInto(b *testing.B) {
	p, l := benchTriple(8), LiftValue(9, 3)
	var dst Triple
	dst.MulAddInto(&p, &l) // warm coverage
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst.MulAddInto(&p, &l)
	}
}
