package ring

// Scalar reference kernels for the dense cofactor inner loops.
//
// These are the semantic ground truth: the optimized variants in kernels.go
// must produce bit-identical float64 results, including the zero-skip rules
// of the rank-1 updates (skipping a zero operand also skips the Inf/NaN it
// would otherwise spread through the product). The reference forms are always
// compiled — under the `purego` build tag they are also the production
// kernels, and the property tests in kernels_test.go diff the two builds'
// outputs byte for byte.

// addToRef accumulates src into dst elementwise: dst[i] += src[i].
// len(dst) must be >= len(src).
func addToRef(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

// axpyRef accumulates a scaled vector: dst[i] += scale * src[i].
// len(dst) must be >= len(src).
func axpyRef(dst, src []float64, scale float64) {
	for i, v := range src {
		dst[i] += scale * v
	}
}

// scatterAxpyRef adds scale*src into a destination with remapped variable
// positions: dstS[idx[i]] += scale*srcS[i] and the k×k destination matrix
// dstQ[idx[i]*k+idx[j]] += scale*srcQ[i*ks+j], where ks = len(srcS) and
// len(idx) = ks. idx values must be distinct positions < k.
func scatterAxpyRef(dstS, dstQ, srcS, srcQ []float64, idx []int, k int) {
	scatterAxpyScaleRef(dstS, dstQ, srcS, srcQ, idx, k, 1)
}

func scatterAxpyScaleRef(dstS, dstQ, srcS, srcQ []float64, idx []int, k int, scale float64) {
	ks := len(srcS)
	for i := 0; i < ks; i++ {
		dstS[idx[i]] += scale * srcS[i]
		row := idx[i] * k
		srow := srcQ[i*ks : (i+1)*ks]
		for j := 0; j < ks; j++ {
			dstQ[row+idx[j]] += scale * srow[j]
		}
	}
}

// rank1SymUpdateRef accumulates the symmetrized outer product
// sa·sbᵀ + sb·saᵀ into the k×k matrix q, where len(sa) = len(sb) = k
// (the position-remap-free case: both operands cover exactly the
// destination's variables). Zero entries are skipped per term, matching
// rank1ScatterUpdateRef with identity index maps.
func rank1SymUpdateRef(q, sa, sb []float64, k int) {
	rank1ScatterUpdateRef(q, sa, sb, nil, nil, k)
}

// rank1ScatterUpdateRef accumulates sa·sbᵀ + sb·saᵀ into the k×k matrix q
// with operand positions remapped through ia and ib (nil means identity).
// For each (i, j) with sa[i] != 0 and sb[j] != 0, the product p = sa[i]*sb[j]
// is added at (ri, rj) and mirrored at (rj, ri), preserving the exact
// accumulation order of the historical double loop.
func rank1ScatterUpdateRef(q, sa, sb []float64, ia, ib []int, k int) {
	for i, si := range sa {
		if si == 0 {
			continue
		}
		ri := i
		if ia != nil {
			ri = ia[i]
		}
		for j, sj := range sb {
			if sj == 0 {
				continue
			}
			rj := j
			if ib != nil {
				rj = ib[j]
			}
			p := si * sj
			q[ri*k+rj] += p
			q[rj*k+ri] += p
		}
	}
}
