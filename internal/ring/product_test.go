package ring

import (
	"math/rand"
	"testing"
)

func TestProductRingAxioms(t *testing.T) {
	r := NewProduct[int64, float64](Int{}, Float{})
	gen := func(rng *rand.Rand) PairVal[int64, float64] {
		return PairVal[int64, float64]{
			A: int64(rng.Intn(21) - 10),
			B: float64(rng.Intn(21) - 10),
		}
	}
	eq := func(a, b PairVal[int64, float64]) bool { return a.A == b.A && a.B == b.B }
	checkRingAxioms[PairVal[int64, float64]](t, r, gen, eq)
}

func TestProductOfCofactorAndInt(t *testing.T) {
	// A compound (multiplicity, triple) payload: both components evolve
	// consistently under shared ring operations.
	r := NewProduct[int64, Triple](Int{}, Cofactor{})
	a := PairVal[int64, Triple]{A: 1, B: LiftValue(0, 2)}
	b := PairVal[int64, Triple]{A: 1, B: LiftValue(1, 3)}
	p := r.Mul(a, b)
	if p.A != 1 {
		t.Errorf("count component = %d", p.A)
	}
	if p.B.QuadOf(0, 1) != 6 {
		t.Errorf("Q(0,1) = %v, want 6", p.B.QuadOf(0, 1))
	}
	s := r.Add(p, r.Neg(p))
	if !r.IsZero(s) {
		t.Errorf("p - p = %+v", s)
	}
}

func TestProductBytes(t *testing.T) {
	r := NewProduct[int64, Triple](Int{}, Cofactor{})
	v := PairVal[int64, Triple]{A: 1, B: LiftValue(0, 2)}
	if r.Bytes(v) <= 16 {
		t.Error("Bytes should include both components")
	}
}
