package ring

import (
	"math/rand"
	"testing"
)

// TestMutableOf checks which rings advertise the in-place extension.
func TestMutableOf(t *testing.T) {
	if MutableOf[int64](Int{}) == nil {
		t.Error("Int should be Mutable")
	}
	if MutableOf[float64](Float{}) == nil {
		t.Error("Float should be Mutable")
	}
	if MutableOf[Triple](Cofactor{}) == nil {
		t.Error("Cofactor should be Mutable")
	}
	if MutableOf[DegMap](DegreeMap{}) == nil {
		t.Error("DegreeMap should be Mutable")
	}
	if MutableOf[PairVal[int64, Triple]](NewProduct[int64, Triple](Int{}, Cofactor{})) == nil {
		t.Error("Product should be Mutable")
	}
}

// checkMutableMatchesImmutable drives the in-place operations of a ring
// against their immutable counterparts on random values, including repeated
// accumulation into one destination (the steady-state pattern of view
// payload maintenance).
func checkMutableMatchesImmutable[T any](t *testing.T, r Ring[T], gen func(*rand.Rand) T, eq func(a, b T) bool) {
	t.Helper()
	m := MutableOf(r)
	if m == nil {
		t.Fatal("ring is not Mutable")
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		a, b := gen(rng), gen(rng)

		var cp T
		m.CopyInto(&cp, a)
		if !eq(cp, a) {
			t.Fatalf("CopyInto: %v != %v", cp, a)
		}

		// IsOne detects exactly the multiplicative identity value.
		one := r.One()
		if !m.IsOne(&one) {
			t.Fatalf("IsOne(One()) = false")
		}

		// AddInto on an owned copy matches Add.
		m.AddInto(&cp, b)
		if want := r.Add(a, b); !eq(cp, want) {
			t.Fatalf("AddInto(%v, %v) = %v, want %v", a, b, cp, want)
		}

		// MulInto matches Mul.
		var mp T
		m.MulInto(&mp, &a, &b)
		if want := r.Mul(a, b); !eq(mp, want) {
			t.Fatalf("MulInto(%v, %v) = %v, want %v", a, b, mp, want)
		}

		// MulAddInto matches Add(dst, Mul(a, b)), reusing the dirty mp as a
		// fresh accumulation base.
		c := gen(rng)
		var acc T
		m.CopyInto(&acc, c)
		m.MulAddInto(&acc, &a, &b)
		if want := r.Add(c, r.Mul(a, b)); !eq(acc, want) {
			t.Fatalf("MulAddInto(%v; %v, %v) = %v, want %v", c, a, b, acc, want)
		}

		// A long accumulation chain into one destination matches the
		// immutable fold.
		var chain T
		z := r.Zero()
		m.CopyInto(&chain, z)
		want := r.Zero()
		for j := 0; j < 6; j++ {
			x, y := gen(rng), gen(rng)
			m.MulAddInto(&chain, &x, &y)
			want = r.Add(want, r.Mul(x, y))
		}
		if !eq(chain, want) {
			t.Fatalf("accumulation chain = %v, want %v", chain, want)
		}
	}
}

func TestCofactorMutableMatchesImmutable(t *testing.T) {
	checkMutableMatchesImmutable[Triple](t, Cofactor{}, genTriple, tripleEq)
}

func TestIntMutableMatchesImmutable(t *testing.T) {
	checkMutableMatchesImmutable[int64](t, Int{},
		func(r *rand.Rand) int64 { return int64(r.Intn(9) - 4) },
		func(a, b int64) bool { return a == b })
}

func TestFloatMutableMatchesImmutable(t *testing.T) {
	checkMutableMatchesImmutable[float64](t, Float{},
		func(r *rand.Rand) float64 { return float64(r.Intn(9) - 4) },
		func(a, b float64) bool { return a == b })
}

func TestDegreeMapMutableMatchesImmutable(t *testing.T) {
	checkMutableMatchesImmutable[DegMap](t, DegreeMap{}, genDegMap, degMapEq)
}

func TestProductMutableMatchesImmutable(t *testing.T) {
	r := NewProduct[int64, Triple](Int{}, Cofactor{})
	checkMutableMatchesImmutable[PairVal[int64, Triple]](t, r,
		func(rng *rand.Rand) PairVal[int64, Triple] {
			return PairVal[int64, Triple]{A: int64(rng.Intn(9) - 4), B: genTriple(rng)}
		},
		func(a, b PairVal[int64, Triple]) bool { return a.A == b.A && tripleEq(a.B, b.B) })
}

// TestCopyIntoIsDeep checks that mutating a copy leaves the source intact —
// the ownership guarantee relations rely on.
func TestCopyIntoIsDeep(t *testing.T) {
	cf := Cofactor{}
	src := LiftValue(1, 3)
	var cp Triple
	cf.CopyInto(&cp, src)
	cf.AddInto(&cp, LiftValue(2, 5))
	if !tripleEq(src, LiftValue(1, 3)) {
		t.Fatalf("source triple mutated through copy: %v", src)
	}

	dm := DegreeMap{}
	srcM := LiftDegMap(0, 2)
	var cpM DegMap
	dm.CopyInto(&cpM, srcM)
	dm.AddInto(&cpM, LiftDegMap(1, 3))
	if !degMapEq(srcM, LiftDegMap(0, 2)) {
		t.Fatalf("source map mutated through copy: %v", srcM)
	}
}

// TestTripleAddIntoSteadyStateNoAlloc checks the headline property: once the
// accumulator covers the operand's variables, AddInto and MulAddInto do not
// allocate.
func TestTripleAddIntoSteadyStateNoAlloc(t *testing.T) {
	cf := Cofactor{}
	acc := cf.Zero()
	b := cf.Mul(LiftValue(0, 2), cf.Mul(LiftValue(1, 3), LiftValue(2, 4)))
	acc.AddInto(&b) // warm: acc now covers b's variables
	if n := testing.AllocsPerRun(100, func() { acc.AddInto(&b) }); n != 0 {
		t.Errorf("steady-state AddInto allocates %.1f/op", n)
	}
	x, y := LiftValue(0, 2), cf.Mul(LiftValue(1, 3), LiftValue(2, 4))
	if n := testing.AllocsPerRun(100, func() { acc.MulAddInto(&x, &y) }); n != 0 {
		t.Errorf("steady-state MulAddInto allocates %.1f/op", n)
	}
	var dst Triple
	cf.MulInto(&dst, &x, &y) // warm dst capacity
	if n := testing.AllocsPerRun(100, func() { cf.MulInto(&dst, &x, &y) }); n != 0 {
		t.Errorf("steady-state MulInto allocates %.1f/op", n)
	}
}
