package ring

import (
	"math"
	"math/rand"
	"testing"
)

// Property tests diffing the build's kernels against the scalar reference
// forms in kernels_ref.go, byte for byte. Under the default build this
// verifies the unrolled/half-mirror kernels; under -tags purego the kernels
// ARE the references and the tests pin the wrappers to them.

// kernelWidths covers the dispatch boundaries: the tiny inline paths (0-3),
// the unroll tail cases, both sides of scatterBufLen (48), and a width large
// enough that every loop runs many full unroll iterations.
var kernelWidths = []int{0, 1, 2, 3, 4, 7, 16, 47, 48, 49, 200}

// kernelModes name the entry distributions of generated vectors: dense
// normals, zero-heavy (exercising the rank-1 zero-skip rules), and a mix of
// ±Inf/NaN/zero (exercising non-finite propagation through the skips).
var kernelModes = []string{"random", "zero-heavy", "special"}

func genVec(rng *rand.Rand, n int, mode string) []float64 {
	v := make([]float64, n)
	for i := range v {
		switch mode {
		case "zero-heavy":
			if rng.Float64() < 0.7 {
				v[i] = 0
			} else {
				v[i] = rng.NormFloat64()
			}
		case "special":
			switch rng.Intn(6) {
			case 0:
				v[i] = 0
			case 1:
				v[i] = math.Inf(1)
			case 2:
				v[i] = math.Inf(-1)
			case 3:
				v[i] = math.NaN()
			default:
				v[i] = rng.NormFloat64()
			}
		default:
			v[i] = rng.NormFloat64()
		}
	}
	return v
}

// subPositions returns m sorted distinct positions in [0, k): a random
// partial-coverage scatter map.
func subPositions(rng *rand.Rand, k, m int) []int {
	idx := rng.Perm(k)[:m]
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j-1] > idx[j]; j-- {
			idx[j-1], idx[j] = idx[j], idx[j-1]
		}
	}
	return idx
}

// sameBits compares two float64s bit for bit, except that any NaN matches
// any NaN: when two different NaN payloads meet in an add, which payload
// survives depends on the machine operand order, and the compiler is free to
// commute float adds per call site — so NaN payloads are not a stable part
// of the kernel contract. A kernel that wrongly skipped a NaN term would
// still fail: the result would be finite where the reference is NaN.
func sameBits(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

func bitsEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len = %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if !sameBits(got[i], want[i]) {
			t.Fatalf("%s: [%d] = %v (%#x), want %v (%#x)",
				name, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func TestAddToMatchesReference(t *testing.T) {
	for _, mode := range kernelModes {
		for _, n := range kernelWidths {
			rng := rand.New(rand.NewSource(int64(n)*31 + 1))
			dst := genVec(rng, n, mode)
			src := genVec(rng, n, mode)
			got := append([]float64(nil), dst...)
			want := append([]float64(nil), dst...)
			addTo(got, src)
			addToRef(want, src)
			bitsEqual(t, mode, got, want)
		}
	}
}

func TestAxpyMatchesReference(t *testing.T) {
	scales := []float64{2.5, -1, 0.03125, math.Inf(1), math.NaN()}
	for _, mode := range kernelModes {
		for _, n := range kernelWidths {
			for _, scale := range scales {
				rng := rand.New(rand.NewSource(int64(n)*37 + 2))
				dst := genVec(rng, n, mode)
				src := genVec(rng, n, mode)
				got := append([]float64(nil), dst...)
				want := append([]float64(nil), dst...)
				axpy(got, src, scale)
				axpyRef(want, src, scale)
				bitsEqual(t, mode, got, want)
			}
		}
	}
}

func TestScatterAxpyMatchesReference(t *testing.T) {
	for _, mode := range kernelModes {
		for _, k := range kernelWidths {
			for _, ks := range []int{0, 1, k / 2, k} {
				if ks > k {
					continue
				}
				rng := rand.New(rand.NewSource(int64(k)*41 + int64(ks)))
				idx := subPositions(rng, k, ks)
				srcS := genVec(rng, ks, mode)
				srcQ := genVec(rng, ks*ks, mode)
				dstS := genVec(rng, k, mode)
				dstQ := genVec(rng, k*k, mode)
				for _, scale := range []float64{1, -3.25} {
					gotS := append([]float64(nil), dstS...)
					gotQ := append([]float64(nil), dstQ...)
					wantS := append([]float64(nil), dstS...)
					wantQ := append([]float64(nil), dstQ...)
					if scale == 1 {
						scatterAxpy(gotS, gotQ, srcS, srcQ, idx, k)
						scatterAxpyRef(wantS, wantQ, srcS, srcQ, idx, k)
					} else {
						scatterAxpyScale(gotS, gotQ, srcS, srcQ, idx, k, scale)
						scatterAxpyScaleRef(wantS, wantQ, srcS, srcQ, idx, k, scale)
					}
					bitsEqual(t, mode+"/S", gotS, wantS)
					bitsEqual(t, mode+"/Q", gotQ, wantQ)
				}
			}
		}
	}
}

func TestRank1SymUpdateMatchesReference(t *testing.T) {
	for _, mode := range kernelModes {
		for _, k := range kernelWidths {
			rng := rand.New(rand.NewSource(int64(k)*43 + 5))
			sa := genVec(rng, k, mode)
			sb := genVec(rng, k, mode)
			q := genVec(rng, k*k, mode)
			got := append([]float64(nil), q...)
			want := append([]float64(nil), q...)
			rank1SymUpdate(got, sa, sb, k)
			rank1SymUpdateRef(want, sa, sb, k)
			bitsEqual(t, mode, got, want)
		}
	}
}

func TestRank1ScatterUpdateMatchesReference(t *testing.T) {
	for _, mode := range kernelModes {
		for _, k := range kernelWidths {
			rng := rand.New(rand.NewSource(int64(k)*47 + 7))
			full := make([]int, k)
			for i := range full {
				full[i] = i
			}
			partA := subPositions(rng, k, k/2)
			partB := subPositions(rng, k, (k+1)/2)
			cases := []struct {
				name   string
				ia, ib []int
			}{
				{"nil-nil", nil, nil},
				{"part-nil", partA, nil},
				{"nil-part", nil, partB},
				{"part-part", partA, partB},
				{"full-full", full, full},
			}
			for _, c := range cases {
				na, nb := k, k
				if c.ia != nil {
					na = len(c.ia)
				}
				if c.ib != nil {
					nb = len(c.ib)
				}
				sa := genVec(rng, na, mode)
				sb := genVec(rng, nb, mode)
				q := genVec(rng, k*k, mode)
				got := append([]float64(nil), q...)
				want := append([]float64(nil), q...)
				rank1ScatterUpdate(got, sa, sb, c.ia, c.ib, k)
				rank1ScatterUpdateRef(want, sa, sb, c.ia, c.ib, k)
				bitsEqual(t, mode+"/"+c.name, got, want)
			}
		}
	}
}

// --- triple-level reference ---------------------------------------------------

// refScaleScatterAdd mirrors Triple.scaleScatterAdd's dispatch with the
// reference kernels substituted, so a divergence in the optimized dispatch
// (tiny inline paths, sameVars shortcuts) shows up as a byte diff.
func refScaleScatterAdd(d, src *Triple, scale float64) {
	if sameVars(d.Vars, src.Vars) {
		if scale == 1 {
			addToRef(d.S, src.S)
			addToRef(d.Q, src.Q)
			return
		}
		axpyRef(d.S, src.S, scale)
		axpyRef(d.Q, src.Q, scale)
		return
	}
	idx := varPositions(d.Vars, src.Vars, nil)
	if scale == 1 {
		scatterAxpyRef(d.S, d.Q, src.S, src.Q, idx, len(d.Vars))
		return
	}
	scatterAxpyScaleRef(d.S, d.Q, src.S, src.Q, idx, len(d.Vars), scale)
}

func refAddInto(a, b *Triple) {
	a.C += b.C
	if len(b.Vars) == 0 {
		return
	}
	a.ensureVars(b.Vars, nil)
	refScaleScatterAdd(a, b, 1)
}

func refMulAddInto(d, a, b *Triple) {
	switch {
	case len(a.Vars) == 0:
		if a.C == 0 {
			return
		}
		d.C += a.C * b.C
		if len(b.Vars) != 0 {
			d.ensureVars(b.Vars, nil)
			refScaleScatterAdd(d, b, a.C)
		}
	case len(b.Vars) == 0:
		if b.C == 0 {
			return
		}
		d.C += a.C * b.C
		d.ensureVars(a.Vars, nil)
		refScaleScatterAdd(d, a, b.C)
	default:
		d.ensureVars(a.Vars, b.Vars)
		d.C += a.C * b.C
		refScaleScatterAdd(d, a, b.C)
		refScaleScatterAdd(d, b, a.C)
		k := len(d.Vars)
		var ia, ib []int
		if !sameVars(d.Vars, a.Vars) {
			ia = varPositions(d.Vars, a.Vars, nil)
		}
		if !sameVars(d.Vars, b.Vars) {
			ib = varPositions(d.Vars, b.Vars, nil)
		}
		rank1ScatterUpdateRef(d.Q, a.S, b.S, ia, ib, k)
	}
}

// genKTriple builds a triple over w sorted variables drawn from a universe of
// size uni, with entries from the given mode. w may be 0 (scalar triple).
func genKTriple(rng *rand.Rand, w, uni int, mode string) Triple {
	vars := make([]int32, 0, w)
	for _, p := range subPositions(rng, uni, w) {
		vars = append(vars, int32(p))
	}
	tr := Triple{C: rng.NormFloat64(), Vars: vars}
	tr.S = genVec(rng, w, mode)
	tr.Q = genVec(rng, w*w, mode)
	return tr
}

func cloneTriple(t Triple) Triple {
	return Triple{
		C:    t.C,
		Vars: append([]int32(nil), t.Vars...),
		S:    append([]float64(nil), t.S...),
		Q:    append([]float64(nil), t.Q...),
	}
}

func tripleBitsEqual(t *testing.T, name string, got, want Triple) {
	t.Helper()
	if !sameBits(got.C, want.C) {
		t.Fatalf("%s: C = %v, want %v", name, got.C, want.C)
	}
	if len(got.Vars) != len(want.Vars) {
		t.Fatalf("%s: vars = %v, want %v", name, got.Vars, want.Vars)
	}
	for i := range got.Vars {
		if got.Vars[i] != want.Vars[i] {
			t.Fatalf("%s: vars = %v, want %v", name, got.Vars, want.Vars)
		}
	}
	bitsEqual(t, name+"/S", got.S, want.S)
	bitsEqual(t, name+"/Q", got.Q, want.Q)
}

// TestTripleOpsMatchReference drives AddInto and MulAddInto over adversarial
// triples — zero-heavy and ±Inf/NaN entries, widths spanning the tiny inline
// paths and both sides of scatterBufLen, equal/subset/disjoint variable
// coverage — and requires byte-identical results against the reference-kernel
// versions of the same operations.
func TestTripleOpsMatchReference(t *testing.T) {
	widths := []int{0, 1, 2, 3, 4, 7, 16, 47, 48, 49, 60}
	for _, mode := range kernelModes {
		for _, wd := range widths {
			for _, wa := range []int{0, 1, wd / 2, wd} {
				rng := rand.New(rand.NewSource(int64(wd)*53 + int64(wa)*59 + 11))
				uni := wd + 8
				d0 := genKTriple(rng, wd, uni, mode)
				// a's variables are drawn from the same universe, so coverage
				// relative to d varies from disjoint to identical.
				a := genKTriple(rng, wa, uni, mode)
				b := genKTriple(rng, wd, uni, mode)

				got, want := cloneTriple(d0), cloneTriple(d0)
				got.AddInto(&a)
				refAddInto(&want, &a)
				tripleBitsEqual(t, "AddInto", got, want)

				got, want = cloneTriple(d0), cloneTriple(d0)
				got.MulAddInto(&a, &b)
				refMulAddInto(&want, &a, &b)
				tripleBitsEqual(t, "MulAddInto", got, want)
			}
		}
	}
}

// TestMulAddIntoWideOperand pins the fallback for operands wider than the
// stack position buffers (scatterBufLen = 48): results must still match the
// reference, and the only allocations allowed in steady state are the heap
// position slices themselves — never payload storage.
func TestMulAddIntoWideOperand(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const uni = 70
	d := genKTriple(rng, uni, uni, "random") // covers the whole universe
	a := genKTriple(rng, scatterBufLen+2, uni, "random")
	b := genKTriple(rng, scatterBufLen+12, uni, "random")

	got, want := cloneTriple(d), cloneTriple(d)
	got.MulAddInto(&a, &b)
	refMulAddInto(&want, &a, &b)
	tripleBitsEqual(t, "wide MulAddInto", got, want)

	// Steady state: d already covers both operands. Four varPositions calls
	// exceed the stack buffers (two in scaleScatterAdd, two for the rank-1
	// index maps), so up to four index-slice allocations are expected; any
	// more means payload storage is being reallocated per call.
	acc := cloneTriple(d)
	allocs := testing.AllocsPerRun(50, func() {
		acc.MulAddInto(&a, &b)
	})
	if allocs > 4 {
		t.Errorf("wide MulAddInto allocs/op = %v, want <= 4 (index slices only)", allocs)
	}

	// Operands at the buffer boundary must stay fully stack-indexed.
	aN := genKTriple(rng, scatterBufLen, uni, "random")
	bN := genKTriple(rng, scatterBufLen, uni, "random")
	acc2 := cloneTriple(d)
	acc2.MulAddInto(&aN, &bN)
	narrow := testing.AllocsPerRun(50, func() {
		acc2.MulAddInto(&aN, &bN)
	})
	if narrow != 0 {
		t.Errorf("width-%d MulAddInto allocs/op = %v, want 0", scatterBufLen, narrow)
	}
}
