//go:build purego

package ring

// Under the purego build tag the scalar reference kernels are the production
// kernels: the simplest possible loops, no unrolling, no hoisting. This build
// is CI's guarantee that the reference path cannot rot, and the baseline the
// property tests diff the optimized kernels against.

// pureGoKernels reports which kernel set this binary runs.
const pureGoKernels = true

func addTo(dst, src []float64)               { addToRef(dst, src) }
func axpy(dst, src []float64, scale float64) { axpyRef(dst, src, scale) }

func scatterAxpy(dstS, dstQ, srcS, srcQ []float64, idx []int, k int) {
	scatterAxpyRef(dstS, dstQ, srcS, srcQ, idx, k)
}

func scatterAxpyScale(dstS, dstQ, srcS, srcQ []float64, idx []int, k int, scale float64) {
	scatterAxpyScaleRef(dstS, dstQ, srcS, srcQ, idx, k, scale)
}

func rank1SymUpdate(q, sa, sb []float64, k int) {
	rank1SymUpdateRef(q, sa, sb, k)
}

func rank1ScatterUpdate(q, sa, sb []float64, ia, ib []int, k int) {
	rank1ScatterUpdateRef(q, sa, sb, ia, ib, k)
}
