package ring

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// --- helpers ------------------------------------------------------------

func quickCfg(seed int64) *quick.Config {
	return &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(seed))}
}

// checkRingAxioms exercises the ring laws on randomly generated values.
func checkRingAxioms[T any](t *testing.T, r Ring[T], gen func(*rand.Rand) T, eq func(a, b T) bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		a, b, c := gen(rng), gen(rng), gen(rng)

		if !eq(r.Add(a, b), r.Add(b, a)) {
			t.Fatalf("Add not commutative: %v + %v", a, b)
		}
		if !eq(r.Add(r.Add(a, b), c), r.Add(a, r.Add(b, c))) {
			t.Fatalf("Add not associative: %v %v %v", a, b, c)
		}
		if !eq(r.Add(a, r.Zero()), a) || !eq(r.Add(r.Zero(), a), a) {
			t.Fatalf("Zero not additive identity for %v", a)
		}
		if !r.IsZero(r.Add(a, r.Neg(a))) {
			t.Fatalf("Neg not additive inverse for %v: %v", a, r.Add(a, r.Neg(a)))
		}
		if !eq(r.Mul(r.Mul(a, b), c), r.Mul(a, r.Mul(b, c))) {
			t.Fatalf("Mul not associative: %v %v %v", a, b, c)
		}
		if !eq(r.Mul(a, r.One()), a) || !eq(r.Mul(r.One(), a), a) {
			t.Fatalf("One not multiplicative identity for %v", a)
		}
		left := r.Mul(a, r.Add(b, c))
		right := r.Add(r.Mul(a, b), r.Mul(a, c))
		if !eq(left, right) {
			t.Fatalf("Mul does not left-distribute: a=%v b=%v c=%v\n got %v\nwant %v", a, b, c, left, right)
		}
		left = r.Mul(r.Add(a, b), c)
		right = r.Add(r.Mul(a, c), r.Mul(b, c))
		if !eq(left, right) {
			t.Fatalf("Mul does not right-distribute: a=%v b=%v c=%v", a, b, c)
		}
		if !r.IsZero(r.Mul(a, r.Zero())) || !r.IsZero(r.Mul(r.Zero(), a)) {
			t.Fatalf("Zero not annihilating for %v", a)
		}
		if !r.IsZero(r.Zero()) {
			t.Fatal("Zero is not IsZero")
		}
	}
}

// --- Int / Float ---------------------------------------------------------

func TestIntRingAxioms(t *testing.T) {
	checkRingAxioms[int64](t, Int{},
		func(r *rand.Rand) int64 { return int64(r.Intn(201) - 100) },
		func(a, b int64) bool { return a == b })
}

func TestIntRingQuickProperties(t *testing.T) {
	r := Int{}
	if err := quick.Check(func(a, b int64) bool {
		return r.Add(a, b) == a+b && r.Mul(a, b) == a*b && r.Neg(a) == -a
	}, quickCfg(1)); err != nil {
		t.Fatal(err)
	}
}

func TestFloatRingAxioms(t *testing.T) {
	// Small integral floats keep floating-point arithmetic exact, so the
	// ring laws hold exactly.
	checkRingAxioms[float64](t, Float{},
		func(r *rand.Rand) float64 { return float64(r.Intn(41) - 20) },
		func(a, b float64) bool { return a == b })
}

func TestFloatSubPowSum(t *testing.T) {
	r := Float{}
	if got := Sub[float64](r, 10, 4); got != 6 {
		t.Errorf("Sub = %v, want 6", got)
	}
	if got := Pow[float64](r, 2, 10); got != 1024 {
		t.Errorf("Pow = %v, want 1024", got)
	}
	if got := Sum[float64](r, 1, 2, 3, 4); got != 10 {
		t.Errorf("Sum = %v, want 10", got)
	}
	if got := Prod[float64](r, 2, 3, 4); got != 24 {
		t.Errorf("Prod = %v, want 24", got)
	}
	if got := Pow[float64](r, 5, 0); got != 1 {
		t.Errorf("Pow(_,0) = %v, want 1", got)
	}
}

// --- Cofactor ring -------------------------------------------------------

// genTriple builds a random sparse triple over variables 0..3 with small
// integral values (exact in float64).
func genTriple(r *rand.Rand) Triple {
	switch r.Intn(4) {
	case 0:
		return Triple{} // zero
	case 1:
		return Triple{C: float64(r.Intn(9) - 4)} // scalar
	}
	// 1-3 lifted variables combined via ring ops to stay well-formed.
	out := LiftValue(r.Intn(4), float64(r.Intn(7)-3))
	n := r.Intn(3)
	cf := Cofactor{}
	for i := 0; i < n; i++ {
		next := LiftValue(r.Intn(4), float64(r.Intn(7)-3))
		if r.Intn(2) == 0 {
			out = cf.Add(out, next)
		} else {
			out = cf.Mul(out, next)
		}
	}
	return out
}

// tripleEq compares triples by their dense expansion over 4 variables.
func tripleEq(a, b Triple) bool {
	if a.C != b.C {
		return false
	}
	const m = 4
	as, bs := a.ExpandSum(m), b.ExpandSum(m)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	aq, bq := a.ExpandQ(m), b.ExpandQ(m)
	for i := range aq {
		if aq[i] != bq[i] {
			return false
		}
	}
	return true
}

func TestCofactorRingAxioms(t *testing.T) {
	checkRingAxioms[Triple](t, Cofactor{}, genTriple, tripleEq)
}

func TestCofactorMulCommutative(t *testing.T) {
	// The degree-m matrix ring of Definition 6.2 is commutative.
	cf := Cofactor{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a, b := genTriple(rng), genTriple(rng)
		if !tripleEq(cf.Mul(a, b), cf.Mul(b, a)) {
			t.Fatalf("Mul not commutative: %v * %v", a, b)
		}
	}
}

func TestCofactorLiftValue(t *testing.T) {
	l := LiftValue(2, 3)
	if l.C != 1 {
		t.Errorf("count = %v, want 1", l.C)
	}
	if got := l.SumOf(2); got != 3 {
		t.Errorf("SumOf(2) = %v, want 3", got)
	}
	if got := l.QuadOf(2, 2); got != 9 {
		t.Errorf("QuadOf(2,2) = %v, want 9", got)
	}
	if got := l.SumOf(1); got != 0 {
		t.Errorf("SumOf(1) = %v, want 0", got)
	}
}

func TestCofactorMulMatchesDefinition(t *testing.T) {
	// Check Definition 6.2 on a hand-computed example resembling the
	// paper's Example 6.3: (2, s, Q) * (1, s', Q').
	cf := Cofactor{}
	a := cf.Add(LiftValue(0, 2), LiftValue(0, 3)) // two D-values 2 and 3
	b := LiftValue(1, 5)                          // one E-value 5

	got := cf.Mul(a, b)
	if got.C != 2 {
		t.Errorf("count = %v, want 2", got.C)
	}
	// s = cb*sa + ca*sb = 1*(2+3) at var0, 2*5 at var1.
	if got.SumOf(0) != 5 || got.SumOf(1) != 10 {
		t.Errorf("sums = %v/%v, want 5/10", got.SumOf(0), got.SumOf(1))
	}
	// Q(0,0) = 1*(4+9) = 13; Q(1,1) = 2*25 = 50; Q(0,1) = sa0*sb1 = 5*5 = 25.
	if got.QuadOf(0, 0) != 13 {
		t.Errorf("Q(0,0) = %v, want 13", got.QuadOf(0, 0))
	}
	if got.QuadOf(1, 1) != 50 {
		t.Errorf("Q(1,1) = %v, want 50", got.QuadOf(1, 1))
	}
	if got.QuadOf(0, 1) != 25 || got.QuadOf(1, 0) != 25 {
		t.Errorf("Q(0,1)/Q(1,0) = %v/%v, want 25/25", got.QuadOf(0, 1), got.QuadOf(1, 0))
	}
}

func TestCofactorSymmetry(t *testing.T) {
	cf := Cofactor{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		a := genTriple(rng)
		k := len(a.Vars)
		for x := 0; x < k; x++ {
			for y := 0; y < k; y++ {
				if a.Q[x*k+y] != a.Q[y*k+x] {
					t.Fatalf("Q not symmetric: %v", a)
				}
			}
		}
		_ = cf
	}
}

func TestCofactorExpand(t *testing.T) {
	a := LiftValue(1, 4)
	s := a.ExpandSum(3)
	if !reflect.DeepEqual(s, []float64{0, 4, 0}) {
		t.Errorf("ExpandSum = %v", s)
	}
	q := a.ExpandQ(3)
	want := make([]float64, 9)
	want[1*3+1] = 16
	if !reflect.DeepEqual(q, want) {
		t.Errorf("ExpandQ = %v, want %v", q, want)
	}
}

func TestCofactorIsZeroDetectsResidues(t *testing.T) {
	cf := Cofactor{}
	// A triple with zero count but non-zero sums must not be zero.
	a := cf.Add(LiftValue(0, 2), cf.Neg(LiftValue(0, 3)))
	if a.C != 0 {
		t.Fatalf("count = %v, want 0", a.C)
	}
	if cf.IsZero(a) {
		t.Error("IsZero = true for triple with non-zero sums")
	}
	// Exact cancellation must be detected.
	b := cf.Add(LiftValue(0, 2), cf.Neg(LiftValue(0, 2)))
	if !cf.IsZero(b) {
		t.Errorf("IsZero = false for cancelled triple %v", b)
	}
}

func TestCofactorBytes(t *testing.T) {
	cf := Cofactor{}
	if cf.Bytes(Triple{}) <= 0 {
		t.Error("Bytes of zero triple should be positive (headers)")
	}
	a := LiftValue(0, 1)
	if cf.Bytes(a) <= cf.Bytes(Triple{}) {
		t.Error("Bytes should grow with payload size")
	}
}

// --- DegreeMap ring ------------------------------------------------------

func genDegMap(r *rand.Rand) DegMap {
	dm := DegreeMap{}
	switch r.Intn(4) {
	case 0:
		return dm.Zero()
	case 1:
		return DegMap{CountDeg: float64(r.Intn(9) - 4)}
	}
	out := LiftDegMap(r.Intn(4), float64(r.Intn(7)-3))
	n := r.Intn(3)
	for i := 0; i < n; i++ {
		next := LiftDegMap(r.Intn(4), float64(r.Intn(7)-3))
		if r.Intn(2) == 0 {
			out = dm.Add(out, next)
		} else {
			out = dm.Mul(out, next)
		}
	}
	return out
}

func degMapEq(a, b DegMap) bool {
	if len(a) != len(b) {
		// Allow zero-valued entries to be absent on either side.
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		for k, v := range b {
			if a[k] != v {
				return false
			}
		}
		return true
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestDegreeMapRingAxioms(t *testing.T) {
	// Note: Mul truncates above degree 2, which preserves the ring laws on
	// the tracked degree-≤2 subspace because degrees only grow under Mul.
	checkRingAxioms[DegMap](t, DegreeMap{}, genDegMap, degMapEq)
}

func TestDegreeMapMatchesCofactor(t *testing.T) {
	// The degree-map encoding and the cofactor ring compute the same
	// aggregates on the view-tree usage pattern, where each variable is
	// lifted exactly once per product (the two rings intentionally differ
	// on same-variable products, which never occur in view trees).
	// Cross-check them over random sum-of-lifts products with disjoint
	// variables per factor.
	cf := Cofactor{}
	dm := DegreeMap{}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		type pair struct {
			t Triple
			d DegMap
		}
		cur := pair{t: cf.One(), d: dm.One()}
		vars := rng.Perm(4)
		n := 1 + rng.Intn(4)
		for _, j := range vars[:n] {
			// factor = sum of 1-3 lifted values of variable j, as a view
			// produces when marginalizing j over several tuples.
			k := 1 + rng.Intn(3)
			factor := pair{t: cf.Zero(), d: dm.Zero()}
			for i := 0; i < k; i++ {
				x := float64(rng.Intn(7) - 3)
				factor = pair{t: cf.Add(factor.t, LiftValue(j, x)), d: dm.Add(factor.d, LiftDegMap(j, x))}
			}
			cur = pair{t: cf.Mul(cur.t, factor.t), d: dm.Mul(cur.d, factor.d)}
		}
		if got, want := cur.d[CountDeg], cur.t.C; got != want {
			t.Fatalf("trial %d: count %v vs %v", trial, got, want)
		}
		for j := 0; j < 3; j++ {
			if got, want := cur.d[LinDeg(j)], cur.t.SumOf(j); got != want {
				t.Fatalf("trial %d: lin(%d) %v vs %v", trial, j, got, want)
			}
			for k := j; k < 3; k++ {
				if got, want := cur.d[QuadDeg(j, k)], cur.t.QuadOf(j, k); got != want {
					t.Fatalf("trial %d: quad(%d,%d) %v vs %v", trial, j, k, got, want)
				}
			}
		}
	}
}

func TestDegreeCombine(t *testing.T) {
	if d, ok := CountDeg.combine(CountDeg); !ok || d != CountDeg {
		t.Errorf("count*count = %v,%v", d, ok)
	}
	if d, ok := LinDeg(2).combine(LinDeg(1)); !ok || d != QuadDeg(1, 2) {
		t.Errorf("lin*lin = %v,%v, want quad(1,2)", d, ok)
	}
	if d, ok := LinDeg(1).combine(CountDeg); !ok || d != LinDeg(1) {
		t.Errorf("lin*count = %v,%v", d, ok)
	}
	if _, ok := QuadDeg(1, 1).combine(LinDeg(2)); ok {
		t.Error("quad*lin should truncate")
	}
	if _, ok := QuadDeg(0, 1).combine(QuadDeg(2, 3)); ok {
		t.Error("quad*quad should truncate")
	}
}

func TestLiftDegMap(t *testing.T) {
	l := LiftDegMap(3, 2)
	if l[CountDeg] != 1 || l[LinDeg(3)] != 2 || l[QuadDeg(3, 3)] != 4 {
		t.Errorf("LiftDegMap = %v", l)
	}
}

func TestDegMapBytesMonotone(t *testing.T) {
	dm := DegreeMap{}
	if dm.Bytes(nil) >= dm.Bytes(LiftDegMap(0, 1)) {
		t.Error("Bytes should grow with entries")
	}
}

func TestTripleNaNSafety(t *testing.T) {
	// IsZero must not treat NaN as zero.
	cf := Cofactor{}
	a := Triple{C: math.NaN()}
	if cf.IsZero(a) {
		t.Error("IsZero(NaN) = true")
	}
}
