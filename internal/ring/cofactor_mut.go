package ring

// In-place triple arithmetic: the Mutable extension of the Cofactor ring.
//
// The immutable Add/Mul allocate fresh Vars/S/Q slices on every call, which
// dominates the allocation profile of cofactor maintenance (every payload
// merge on every view of every delta path). The In-place forms below mutate
// a destination triple the caller exclusively owns, growing its sparse
// variable coverage monotonically; once a destination has seen the variable
// set of its view (after the first few merges), accumulation is
// allocation-free.

// Reset sets the triple to zero, keeping the slice capacity for reuse.
func (a *Triple) Reset() {
	a.C = 0
	a.Vars = a.Vars[:0]
	a.S = a.S[:0]
	a.Q = a.Q[:0]
}

// CopyFrom sets a to a deep copy of src, reusing a's storage. a must not
// share storage with any live triple other than src itself.
func (a *Triple) CopyFrom(src *Triple) {
	a.C = src.C
	a.Vars = append(a.Vars[:0], src.Vars...)
	k := len(src.Vars)
	if cap(a.S) < k || cap(a.Q) < k*k {
		a.allocSQ(k)
	} else {
		a.S = a.S[:k]
		a.Q = a.Q[:k*k]
	}
	copy(a.S, src.S)
	copy(a.Q, src.Q)
}

// allocSQ allocates the linear and quadratic blocks for k variables as one
// backing array (S capped at k so appends never bleed into Q), halving the
// allocation count of fresh triples.
func (a *Triple) allocSQ(k int) {
	buf := make([]float64, k+k*k)
	a.S = buf[:k:k]
	a.Q = buf[k:]
}

// newSQ returns zeroed k-length and k²-length blocks sharing one backing
// array, for freshly built triples.
func newSQ(k int) (s, q []float64) {
	buf := make([]float64, k+k*k)
	return buf[:k:k], buf[k:]
}

// AddInto accumulates b into a in place: a += b. a must be exclusively
// owned by the caller. When a already covers b's variables — the steady
// state for a payload accumulating deltas of a fixed view — no allocation
// occurs.
func (a *Triple) AddInto(b *Triple) {
	a.C += b.C
	if len(b.Vars) == 0 {
		return
	}
	if sameVars(a.Vars, b.Vars) {
		// Tiny triples: the kernel call costs more than it saves, so widths
		// up to 3 get straight-line inline adds (no loops, no bounds checks).
		if k := len(b.Vars); k <= 3 {
			as, bs := a.S[:k], b.S[:k]
			aq, bq := a.Q[:k*k], b.Q[:k*k]
			switch k {
			case 1:
				as[0] += bs[0]
				aq[0] += bq[0]
			case 2:
				as[0] += bs[0]
				as[1] += bs[1]
				aq[0] += bq[0]
				aq[1] += bq[1]
				aq[2] += bq[2]
				aq[3] += bq[3]
			case 3:
				as[0] += bs[0]
				as[1] += bs[1]
				as[2] += bs[2]
				aq[0] += bq[0]
				aq[1] += bq[1]
				aq[2] += bq[2]
				aq[3] += bq[3]
				aq[4] += bq[4]
				aq[5] += bq[5]
				aq[6] += bq[6]
				aq[7] += bq[7]
				aq[8] += bq[8]
			}
			return
		}
		addTo(a.S, b.S)
		addTo(a.Q, b.Q)
		return
	}
	a.ensureVars(b.Vars, nil)
	a.scaleScatterAdd(b, 1)
}

// MulAddInto accumulates a product into d in place: d += a * b, with the
// ring product of Definition 6.2 computed directly in d's sparse variable
// space. Once d covers the union of a's and b's variables the operation is
// allocation-free.
func (d *Triple) MulAddInto(a, b *Triple) {
	switch {
	case len(a.Vars) == 0:
		if a.C == 0 {
			return
		}
		d.C += a.C * b.C
		if len(b.Vars) != 0 {
			d.ensureVars(b.Vars, nil)
			d.scaleScatterAdd(b, a.C)
		}
	case len(b.Vars) == 0:
		if b.C == 0 {
			return
		}
		d.C += a.C * b.C
		d.ensureVars(a.Vars, nil)
		d.scaleScatterAdd(a, b.C)
	default:
		d.ensureVars(a.Vars, b.Vars)
		d.C += a.C * b.C
		d.scaleScatterAdd(a, b.C)
		d.scaleScatterAdd(b, a.C)
		// Outer products sa sbᵀ + sb saᵀ in d's variable space. Operands
		// covering exactly d's variables use identity positions (no lookups)
		// and the half+mirror symmetric kernel.
		k := len(d.Vars)
		var bufA, bufB [scatterBufLen]int
		var ia, ib []int
		if !sameVars(d.Vars, a.Vars) {
			ia = varPositions(d.Vars, a.Vars, bufA[:0])
		}
		if !sameVars(d.Vars, b.Vars) {
			ib = varPositions(d.Vars, b.Vars, bufB[:0])
		}
		rank1ScatterUpdate(d.Q, a.S, b.S, ia, ib, k)
	}
}

// AddInto accumulates src into *dst: the Mutable extension of Cofactor.
func (Cofactor) AddInto(dst *Triple, src Triple) { dst.AddInto(&src) }

// MulInto sets *dst = *a * *b, reusing dst's storage.
func (Cofactor) MulInto(dst, a, b *Triple) {
	dst.Reset()
	dst.MulAddInto(a, b)
}

// MulAddInto accumulates *dst += *a * *b.
func (Cofactor) MulAddInto(dst, a, b *Triple) { dst.MulAddInto(a, b) }

// CopyInto sets *dst to a deep copy of src.
func (Cofactor) CopyInto(dst *Triple, src Triple) { dst.CopyFrom(&src) }

// IsOne reports whether *a is the multiplicative identity (1, 0, 0).
func (Cofactor) IsOne(a *Triple) bool { return a.C == 1 && len(a.Vars) == 0 }

// AddIntoRef accumulates *src into *dst: the pointer-source form of AddInto
// (MutableRef), skipping the 80-byte header copy at the interface boundary.
func (Cofactor) AddIntoRef(dst, src *Triple) { dst.AddInto(src) }

// CopyIntoRef sets *dst to a deep copy of *src.
func (Cofactor) CopyIntoRef(dst, src *Triple) { dst.CopyFrom(src) }

// IsZeroRef reports whether *a is the zero triple (see IsZero).
func (Cofactor) IsZeroRef(a *Triple) bool {
	if a.C != 0 {
		return false
	}
	for _, v := range a.S {
		if v != 0 {
			return false
		}
	}
	for _, v := range a.Q {
		if v != 0 {
			return false
		}
	}
	return true
}

// scatterBufLen bounds the stack-allocated position buffers; triples wider
// than this fall back to a heap-allocated index slice.
const scatterBufLen = 48

// varPositions appends, for each variable of sub, its position in vars
// (which must cover sub) to buf and returns the extended slice. Both lists
// are sorted, so a single merge scan finds every position in one pass over
// vars instead of a binary search per variable.
func varPositions(vars, sub []int32, buf []int) []int {
	i := 0
	for _, v := range sub {
		for vars[i] != v {
			i++
		}
		buf = append(buf, i)
		i++
	}
	return buf
}

// containsVars reports whether the sorted list vars covers every variable of
// the sorted list sub.
func containsVars(vars, sub []int32) bool {
	if len(sub) > len(vars) {
		return false
	}
	i := 0
	for _, v := range sub {
		for i < len(vars) && vars[i] < v {
			i++
		}
		if i >= len(vars) || vars[i] != v {
			return false
		}
		i++
	}
	return true
}

// unionInto merges the sorted variable lists a and b into dst (append,
// duplicates collapsed) and returns the extended slice.
func unionInto(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			dst = append(dst, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// zeroedFloats returns a length-k all-zero slice, reusing s's capacity.
func zeroedFloats(s []float64, k int) []float64 {
	if cap(s) < k {
		return make([]float64, k)
	}
	s = s[:k]
	for i := range s {
		s[i] = 0
	}
	return s
}

// ensureVars grows d's variable coverage to include av and bv (either may be
// nil), realigning S and Q. A zero d reuses its slice capacity; a non-zero d
// whose coverage must grow reallocates (this happens at most once per new
// variable, so accumulation cost amortizes to zero allocations).
func (d *Triple) ensureVars(av, bv []int32) {
	if containsVars(d.Vars, av) && containsVars(d.Vars, bv) {
		return
	}
	if len(d.Vars) == 0 {
		d.Vars = unionInto(d.Vars[:0], av, bv)
		k := len(d.Vars)
		if cap(d.S) < k || cap(d.Q) < k*k {
			d.allocSQ(k)
			return
		}
		d.S = zeroedFloats(d.S, k)
		d.Q = zeroedFloats(d.Q, k*k)
		return
	}
	u := unionInto(make([]int32, 0, len(d.Vars)+len(av)+len(bv)), d.Vars, av)
	if len(bv) > 0 {
		u = unionInto(make([]int32, 0, len(u)+len(bv)), u, bv)
	}
	k := len(u)
	s, q := newSQ(k)
	old := len(d.Vars)
	for i, v := range d.Vars {
		ri := findVar(u, v)
		s[ri] = d.S[i]
		row := d.Q[i*old : (i+1)*old]
		for j, w := range d.Vars {
			q[ri*k+findVar(u, w)] = row[j]
		}
	}
	d.Vars, d.S, d.Q = u, s, q
}

// scaleScatterAdd adds scale*src into d, which must already cover src's
// variables. Identical variable sets — the steady state once a payload has
// grown to its view's coverage — take a dense position-free path.
func (d *Triple) scaleScatterAdd(src *Triple, scale float64) {
	if sameVars(d.Vars, src.Vars) {
		if scale == 1 {
			addTo(d.S, src.S)
			addTo(d.Q, src.Q)
			return
		}
		axpy(d.S, src.S, scale)
		axpy(d.Q, src.Q, scale)
		return
	}
	k := len(d.Vars)
	var buf [scatterBufLen]int
	idx := varPositions(d.Vars, src.Vars, buf[:0])
	if scale == 1 {
		scatterAxpy(d.S, d.Q, src.S, src.Q, idx, k)
		return
	}
	scatterAxpyScale(d.S, d.Q, src.S, src.Q, idx, k, scale)
}
