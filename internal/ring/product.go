package ring

// PairVal is an element of a product ring: a pair of payloads maintained
// simultaneously.
type PairVal[A, B any] struct {
	A A
	B B
}

// Product is the component-wise product of two rings: (a,b) + (a',b') =
// (a+a', b+b') and likewise for multiplication. It lets one view tree
// maintain two different analytics in a single pass — for example a COUNT
// alongside a cofactor triple, or a scalar aggregate alongside a relational
// payload — sharing all key-side computation, in the spirit of the paper's
// compound aggregates.
type Product[A, B any] struct {
	RA Ring[A]
	RB Ring[B]

	// ma and mb cache the components' Mutable extensions so the in-place
	// operations don't pay two interface type assertions per payload merge.
	// NewProduct fills them; the accessors fall back to asserting lazily for
	// literal-constructed values.
	ma Mutable[A]
	mb Mutable[B]
}

// NewProduct builds the product of two rings.
func NewProduct[A, B any](ra Ring[A], rb Ring[B]) Product[A, B] {
	return Product[A, B]{RA: ra, RB: rb, ma: MutableOf(ra), mb: MutableOf(rb)}
}

// mutA returns the cached Mutable extension of the A component.
func (r Product[A, B]) mutA() Mutable[A] {
	if r.ma != nil {
		return r.ma
	}
	return MutableOf(r.RA)
}

// mutB returns the cached Mutable extension of the B component.
func (r Product[A, B]) mutB() Mutable[B] {
	if r.mb != nil {
		return r.mb
	}
	return MutableOf(r.RB)
}

// Zero returns (0, 0).
func (r Product[A, B]) Zero() PairVal[A, B] {
	return PairVal[A, B]{A: r.RA.Zero(), B: r.RB.Zero()}
}

// One returns (1, 1).
func (r Product[A, B]) One() PairVal[A, B] {
	return PairVal[A, B]{A: r.RA.One(), B: r.RB.One()}
}

// Add adds component-wise.
func (r Product[A, B]) Add(a, b PairVal[A, B]) PairVal[A, B] {
	return PairVal[A, B]{A: r.RA.Add(a.A, b.A), B: r.RB.Add(a.B, b.B)}
}

// Neg negates component-wise.
func (r Product[A, B]) Neg(a PairVal[A, B]) PairVal[A, B] {
	return PairVal[A, B]{A: r.RA.Neg(a.A), B: r.RB.Neg(a.B)}
}

// Mul multiplies component-wise.
func (r Product[A, B]) Mul(a, b PairVal[A, B]) PairVal[A, B] {
	return PairVal[A, B]{A: r.RA.Mul(a.A, b.A), B: r.RB.Mul(a.B, b.B)}
}

// IsZero reports whether both components are zero.
func (r Product[A, B]) IsZero(a PairVal[A, B]) bool {
	return r.RA.IsZero(a.A) && r.RB.IsZero(a.B)
}

// AddInto accumulates component-wise, in place for components whose rings
// support it and via immutable Add otherwise (an immutable component is then
// reassigned, never mutated, so sharing its storage stays safe).
func (r Product[A, B]) AddInto(dst *PairVal[A, B], src PairVal[A, B]) {
	if ma := r.mutA(); ma != nil {
		ma.AddInto(&dst.A, src.A)
	} else {
		dst.A = r.RA.Add(dst.A, src.A)
	}
	if mb := r.mutB(); mb != nil {
		mb.AddInto(&dst.B, src.B)
	} else {
		dst.B = r.RB.Add(dst.B, src.B)
	}
}

// MulInto sets *dst = a * b component-wise.
func (r Product[A, B]) MulInto(dst, a, b *PairVal[A, B]) {
	if ma := r.mutA(); ma != nil {
		ma.MulInto(&dst.A, &a.A, &b.A)
	} else {
		dst.A = r.RA.Mul(a.A, b.A)
	}
	if mb := r.mutB(); mb != nil {
		mb.MulInto(&dst.B, &a.B, &b.B)
	} else {
		dst.B = r.RB.Mul(a.B, b.B)
	}
}

// MulAddInto accumulates *dst += a * b component-wise.
func (r Product[A, B]) MulAddInto(dst, a, b *PairVal[A, B]) {
	if ma := r.mutA(); ma != nil {
		ma.MulAddInto(&dst.A, &a.A, &b.A)
	} else {
		dst.A = r.RA.Add(dst.A, r.RA.Mul(a.A, b.A))
	}
	if mb := r.mutB(); mb != nil {
		mb.MulAddInto(&dst.B, &a.B, &b.B)
	} else {
		dst.B = r.RB.Add(dst.B, r.RB.Mul(a.B, b.B))
	}
}

// CopyInto sets *dst = src, deep-copying components whose rings support it.
// Components of immutable rings are shared, which is safe because AddInto
// and MulAddInto never mutate them in place.
func (r Product[A, B]) CopyInto(dst *PairVal[A, B], src PairVal[A, B]) {
	if ma := r.mutA(); ma != nil {
		ma.CopyInto(&dst.A, src.A)
	} else {
		dst.A = src.A
	}
	if mb := r.mutB(); mb != nil {
		mb.CopyInto(&dst.B, src.B)
	} else {
		dst.B = src.B
	}
}

// IsOne reports whether both components are their rings' identities; a
// component of a ring without Mutable makes IsOne conservatively false.
func (r Product[A, B]) IsOne(a *PairVal[A, B]) bool {
	ma, mb := r.mutA(), r.mutB()
	return ma != nil && mb != nil && ma.IsOne(&a.A) && mb.IsOne(&a.B)
}

// AddIntoRef accumulates component-wise with pointer sources, preferring each
// component's MutableRef, then Mutable, then immutable Add.
func (r Product[A, B]) AddIntoRef(dst, src *PairVal[A, B]) {
	if ra := MutableRefOf(r.RA); ra != nil {
		ra.AddIntoRef(&dst.A, &src.A)
	} else if ma := r.mutA(); ma != nil {
		ma.AddInto(&dst.A, src.A)
	} else {
		dst.A = r.RA.Add(dst.A, src.A)
	}
	if rb := MutableRefOf(r.RB); rb != nil {
		rb.AddIntoRef(&dst.B, &src.B)
	} else if mb := r.mutB(); mb != nil {
		mb.AddInto(&dst.B, src.B)
	} else {
		dst.B = r.RB.Add(dst.B, src.B)
	}
}

// CopyIntoRef sets *dst = *src component-wise, deep-copying components whose
// rings support it (see CopyInto for why sharing immutable components is safe).
func (r Product[A, B]) CopyIntoRef(dst, src *PairVal[A, B]) {
	if ra := MutableRefOf(r.RA); ra != nil {
		ra.CopyIntoRef(&dst.A, &src.A)
	} else if ma := r.mutA(); ma != nil {
		ma.CopyInto(&dst.A, src.A)
	} else {
		dst.A = src.A
	}
	if rb := MutableRefOf(r.RB); rb != nil {
		rb.CopyIntoRef(&dst.B, &src.B)
	} else if mb := r.mutB(); mb != nil {
		mb.CopyInto(&dst.B, src.B)
	} else {
		dst.B = src.B
	}
}

// IsZeroRef reports whether both components are zero, reading through the
// pointer to avoid copying wide payloads.
func (r Product[A, B]) IsZeroRef(p *PairVal[A, B]) bool {
	if ra := MutableRefOf(r.RA); ra != nil {
		if !ra.IsZeroRef(&p.A) {
			return false
		}
	} else if !r.RA.IsZero(p.A) {
		return false
	}
	if rb := MutableRefOf(r.RB); rb != nil {
		return rb.IsZeroRef(&p.B)
	}
	return r.RB.IsZero(p.B)
}

// Bytes sums the component footprints when both rings are Sized.
func (r Product[A, B]) Bytes(a PairVal[A, B]) int {
	n := 16
	if sa, ok := r.RA.(Sized[A]); ok {
		n += sa.Bytes(a.A)
	}
	if sb, ok := r.RB.(Sized[B]); ok {
		n += sb.Bytes(a.B)
	}
	return n
}
