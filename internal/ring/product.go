package ring

// PairVal is an element of a product ring: a pair of payloads maintained
// simultaneously.
type PairVal[A, B any] struct {
	A A
	B B
}

// Product is the component-wise product of two rings: (a,b) + (a',b') =
// (a+a', b+b') and likewise for multiplication. It lets one view tree
// maintain two different analytics in a single pass — for example a COUNT
// alongside a cofactor triple, or a scalar aggregate alongside a relational
// payload — sharing all key-side computation, in the spirit of the paper's
// compound aggregates.
type Product[A, B any] struct {
	RA Ring[A]
	RB Ring[B]
}

// NewProduct builds the product of two rings.
func NewProduct[A, B any](ra Ring[A], rb Ring[B]) Product[A, B] {
	return Product[A, B]{RA: ra, RB: rb}
}

// Zero returns (0, 0).
func (r Product[A, B]) Zero() PairVal[A, B] {
	return PairVal[A, B]{A: r.RA.Zero(), B: r.RB.Zero()}
}

// One returns (1, 1).
func (r Product[A, B]) One() PairVal[A, B] {
	return PairVal[A, B]{A: r.RA.One(), B: r.RB.One()}
}

// Add adds component-wise.
func (r Product[A, B]) Add(a, b PairVal[A, B]) PairVal[A, B] {
	return PairVal[A, B]{A: r.RA.Add(a.A, b.A), B: r.RB.Add(a.B, b.B)}
}

// Neg negates component-wise.
func (r Product[A, B]) Neg(a PairVal[A, B]) PairVal[A, B] {
	return PairVal[A, B]{A: r.RA.Neg(a.A), B: r.RB.Neg(a.B)}
}

// Mul multiplies component-wise.
func (r Product[A, B]) Mul(a, b PairVal[A, B]) PairVal[A, B] {
	return PairVal[A, B]{A: r.RA.Mul(a.A, b.A), B: r.RB.Mul(a.B, b.B)}
}

// IsZero reports whether both components are zero.
func (r Product[A, B]) IsZero(a PairVal[A, B]) bool {
	return r.RA.IsZero(a.A) && r.RB.IsZero(a.B)
}

// Bytes sums the component footprints when both rings are Sized.
func (r Product[A, B]) Bytes(a PairVal[A, B]) int {
	n := 16
	if sa, ok := r.RA.(Sized[A]); ok {
		n += sa.Bytes(a.A)
	}
	if sb, ok := r.RB.(Sized[B]); ok {
		n += sb.Bytes(a.B)
	}
	return n
}
