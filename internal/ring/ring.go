// Package ring defines the payload algebra used by F-IVM.
//
// In F-IVM, a relation maps keys (tuples of data values) to payloads, which
// are elements of a task-specific ring (D, +, *, 0, 1). The computation over
// keys — joins, unions, marginalization — is identical for all tasks; tasks
// differ only in the choice of ring and of the lifting functions that map key
// values into the ring. This package provides the ring abstraction and the
// concrete rings used by the paper's applications:
//
//   - Int and Float: the Z and R rings for COUNT/SUM-style aggregates.
//   - Cofactor: the degree-m matrix ring of (count, sum-vector, cofactor
//     matrix) triples used for gradient computation in linear regression
//     (paper Definition 6.2).
//   - DegreeMap: an explicit degree-indexed aggregate encoding equivalent to
//     the paper's SQL-OPT competitor.
//
// The relational data ring F[Z] (paper Definition 6.4) lives in package
// internal/data because its elements are relations.
package ring

// Ring is a commutative-enough ring over payload type T. Implementations
// must satisfy the ring axioms (associativity and commutativity of Add,
// associativity of Mul, distributivity of Mul over Add, identities, and
// additive inverses). Mul need not be commutative (the matrix ring is not in
// general), but all rings used by the engine are.
//
// Implementations must treat payload values as immutable: Add, Mul, and Neg
// must not modify their arguments, because views share payload values. Rings
// may additionally implement Mutable for in-place accumulation; those
// operations mutate only a destination the caller exclusively owns.
type Ring[T any] interface {
	// Zero returns the additive identity.
	Zero() T
	// One returns the multiplicative identity.
	One() T
	// Add returns a + b.
	Add(a, b T) T
	// Neg returns the additive inverse -a.
	Neg(a T) T
	// Mul returns a * b.
	Mul(a, b T) T
	// IsZero reports whether a equals the additive identity. Relations use
	// it to drop keys whose payloads vanish, keeping supports finite.
	IsZero(a T) bool
}

// Mutable is an optional extension implemented by rings whose payloads can
// be accumulated in place without allocating. The immutable Ring operations
// return fresh values on every call, which on hot maintenance paths means a
// fresh slice (or map) per payload merge; the Mutable forms instead write
// into a destination the caller exclusively owns, reusing its storage.
//
// Contract: *dst must be exclusively owned by the caller (no other live
// value shares its backing storage), and after the call *dst still shares no
// storage with src, a, or b. Relations detect Mutable at construction and
// switch to owned accumulation: stored payloads are deep copies (CopyInto)
// mutated in place by later merges (AddInto/MulAddInto), so payloads read
// out of a relation are snapshots only until its next update.
// All operands are passed by pointer: payloads can be wide (a cofactor
// triple is 80 bytes of header plus its blocks), and the point of these
// operations is to avoid moving payloads around. Operands are never written
// through — only *dst is.
type Mutable[T any] interface {
	// AddInto accumulates src into *dst in place: *dst += src. src is taken
	// by value: merge sources usually arrive as by-value parameters, and
	// passing their address through an interface call would force them to
	// escape (one heap allocation per merge).
	AddInto(dst *T, src T)
	// MulInto sets *dst = *a * *b, reusing dst's storage where possible.
	// dst must not alias a or b.
	MulInto(dst, a, b *T)
	// MulAddInto accumulates a product: *dst += *a * *b. dst must not alias
	// a or b.
	MulAddInto(dst, a, b *T)
	// CopyInto sets *dst to a deep copy of src, reusing dst's storage (by
	// value for the same escape reason as AddInto).
	CopyInto(dst *T, src T)
	// IsOne reports whether *a is the multiplicative identity, letting hot
	// paths skip products by one entirely (sharing the other operand is
	// always safe: values are never mutated through reads).
	IsOne(a *T) bool
}

// MutableOf returns the ring's Mutable extension, or nil if the ring only
// supports immutable operations.
func MutableOf[T any](r Ring[T]) Mutable[T] {
	m, _ := r.(Mutable[T])
	return m
}

// MutableRef is an optional refinement of Mutable for rings with wide
// payloads: the same operations with source operands passed by pointer,
// skipping the by-value copy at the interface boundary (an 80-byte header
// copy per call for cofactor triples). Sources are only read.
//
// Callers must only pass sources that are already heap-resident — another
// relation entry's stored payload, an owned accumulator field — because
// taking the address of a local variable for one of these calls forces it to
// escape, which is exactly the per-merge allocation Mutable's by-value forms
// exist to avoid.
type MutableRef[T any] interface {
	// AddIntoRef accumulates *src into *dst in place: *dst += *src.
	AddIntoRef(dst, src *T)
	// CopyIntoRef sets *dst to a deep copy of *src, reusing dst's storage.
	CopyIntoRef(dst, src *T)
	// IsZeroRef reports whether *p is the additive identity.
	IsZeroRef(p *T) bool
}

// MutableRefOf returns the ring's pointer-source extension, or nil.
func MutableRefOf[T any](r Ring[T]) MutableRef[T] {
	m, _ := r.(MutableRef[T])
	return m
}

// Sub returns a - b, a convenience over Add and Neg.
func Sub[T any](r Ring[T], a, b T) T { return r.Add(a, r.Neg(b)) }

// Sum folds Add over the given values, starting from Zero.
func Sum[T any](r Ring[T], vs ...T) T {
	acc := r.Zero()
	for _, v := range vs {
		acc = r.Add(acc, v)
	}
	return acc
}

// Prod folds Mul over the given values, starting from One.
func Prod[T any](r Ring[T], vs ...T) T {
	acc := r.One()
	for _, v := range vs {
		acc = r.Mul(acc, v)
	}
	return acc
}

// Pow returns a multiplied by itself n times; Pow(a, 0) is One.
func Pow[T any](r Ring[T], a T, n int) T {
	acc := r.One()
	for i := 0; i < n; i++ {
		acc = r.Mul(acc, a)
	}
	return acc
}

// Sized is implemented by rings that can estimate the in-memory footprint of
// a payload. The benchmark harness uses it for memory accounting.
type Sized[T any] interface {
	// Bytes returns an estimate of the heap bytes held by the payload.
	Bytes(a T) int
}
