// Package ring defines the payload algebra used by F-IVM.
//
// In F-IVM, a relation maps keys (tuples of data values) to payloads, which
// are elements of a task-specific ring (D, +, *, 0, 1). The computation over
// keys — joins, unions, marginalization — is identical for all tasks; tasks
// differ only in the choice of ring and of the lifting functions that map key
// values into the ring. This package provides the ring abstraction and the
// concrete rings used by the paper's applications:
//
//   - Int and Float: the Z and R rings for COUNT/SUM-style aggregates.
//   - Cofactor: the degree-m matrix ring of (count, sum-vector, cofactor
//     matrix) triples used for gradient computation in linear regression
//     (paper Definition 6.2).
//   - DegreeMap: an explicit degree-indexed aggregate encoding equivalent to
//     the paper's SQL-OPT competitor.
//
// The relational data ring F[Z] (paper Definition 6.4) lives in package
// internal/data because its elements are relations.
package ring

// Ring is a commutative-enough ring over payload type T. Implementations
// must satisfy the ring axioms (associativity and commutativity of Add,
// associativity of Mul, distributivity of Mul over Add, identities, and
// additive inverses). Mul need not be commutative (the matrix ring is not in
// general), but all rings used by the engine are.
//
// Implementations must treat payload values as immutable: Add, Mul, and Neg
// must not modify their arguments, because views share payload values.
type Ring[T any] interface {
	// Zero returns the additive identity.
	Zero() T
	// One returns the multiplicative identity.
	One() T
	// Add returns a + b.
	Add(a, b T) T
	// Neg returns the additive inverse -a.
	Neg(a T) T
	// Mul returns a * b.
	Mul(a, b T) T
	// IsZero reports whether a equals the additive identity. Relations use
	// it to drop keys whose payloads vanish, keeping supports finite.
	IsZero(a T) bool
}

// Sub returns a - b, a convenience over Add and Neg.
func Sub[T any](r Ring[T], a, b T) T { return r.Add(a, r.Neg(b)) }

// Sum folds Add over the given values, starting from Zero.
func Sum[T any](r Ring[T], vs ...T) T {
	acc := r.Zero()
	for _, v := range vs {
		acc = r.Add(acc, v)
	}
	return acc
}

// Prod folds Mul over the given values, starting from One.
func Prod[T any](r Ring[T], vs ...T) T {
	acc := r.One()
	for _, v := range vs {
		acc = r.Mul(acc, v)
	}
	return acc
}

// Pow returns a multiplied by itself n times; Pow(a, 0) is One.
func Pow[T any](r Ring[T], a T, n int) T {
	acc := r.One()
	for i := 0; i < n; i++ {
		acc = r.Mul(acc, a)
	}
	return acc
}

// Sized is implemented by rings that can estimate the in-memory footprint of
// a payload. The benchmark harness uses it for memory accounting.
type Sized[T any] interface {
	// Bytes returns an estimate of the heap bytes held by the payload.
	Bytes(a T) int
}
