package ring

// Degree identifies one regression aggregate by the variables it multiplies:
// the count aggregate SUM(1) has no variables, a linear aggregate SUM(X_i)
// has one, and a quadratic aggregate SUM(X_i*X_j) has two (i <= j). Unused
// slots hold -1.
type Degree struct {
	I, J int16
}

// CountDeg is the degree key of the count aggregate SUM(1).
var CountDeg = Degree{-1, -1}

// LinDeg returns the degree key of the linear aggregate SUM(X_i).
func LinDeg(i int) Degree { return Degree{int16(i), -1} }

// QuadDeg returns the degree key of the quadratic aggregate SUM(X_i*X_j).
func QuadDeg(i, j int) Degree {
	if i > j {
		i, j = j, i
	}
	return Degree{int16(i), int16(j)}
}

func (d Degree) arity() int {
	switch {
	case d.I < 0:
		return 0
	case d.J < 0:
		return 1
	default:
		return 2
	}
}

// combine merges two degree keys into the degree of their product aggregate.
// It reports ok=false when the product exceeds degree two and therefore falls
// outside the tracked aggregate set (such terms can never feed a tracked
// aggregate again, since degrees only grow under multiplication).
func (d Degree) combine(e Degree) (Degree, bool) {
	n := d.arity() + e.arity()
	if n > 2 {
		return Degree{}, false
	}
	var vs [2]int16
	k := 0
	for _, x := range []Degree{d, e} {
		if x.I >= 0 {
			vs[k] = x.I
			k++
		}
		if x.J >= 0 {
			vs[k] = x.J
			k++
		}
	}
	switch n {
	case 0:
		return CountDeg, true
	case 1:
		return Degree{vs[0], -1}, true
	default:
		if vs[0] > vs[1] {
			vs[0], vs[1] = vs[1], vs[0]
		}
		return Degree{vs[0], vs[1]}, true
	}
}

// DegMap is a payload mapping aggregate degree keys to values. It is the
// explicit, degree-indexed encoding of the regression aggregates that the
// paper's SQL-OPT competitor uses: a single aggregate column indexed by the
// degree of each query variable. It computes the same aggregates as the
// Cofactor ring but pays hash-map costs instead of dense vector/matrix
// arithmetic, which is exactly the constant-factor gap the paper reports
// between SQL-OPT and F-IVM.
type DegMap map[Degree]float64

// DegreeMap is the ring over DegMap payloads.
type DegreeMap struct{}

// Zero returns an empty aggregate map.
func (DegreeMap) Zero() DegMap { return nil }

// One returns the map holding only the count aggregate with value 1.
func (DegreeMap) One() DegMap { return DegMap{CountDeg: 1} }

// IsZero reports whether the map holds no non-zero aggregate.
func (DegreeMap) IsZero(a DegMap) bool { return len(a) == 0 }

// Add returns the entry-wise sum; entries canceling to zero are dropped.
func (DegreeMap) Add(a, b DegMap) DegMap {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(DegMap, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		s := out[k] + v
		if s == 0 {
			delete(out, k)
		} else {
			out[k] = s
		}
	}
	return out
}

// Neg returns the entry-wise negation.
func (DegreeMap) Neg(a DegMap) DegMap {
	out := make(DegMap, len(a))
	for k, v := range a {
		out[k] = -v
	}
	return out
}

// Mul multiplies the aggregate maps as formal sums of degree terms,
// truncating products above degree two (see Degree.combine).
func (DegreeMap) Mul(a, b DegMap) DegMap {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make(DegMap, len(a)+len(b))
	for ka, va := range a {
		for kb, vb := range b {
			k, ok := ka.combine(kb)
			if !ok {
				continue
			}
			s := out[k] + va*vb
			if s == 0 {
				delete(out, k)
			} else {
				out[k] = s
			}
		}
	}
	return out
}

// Bytes estimates the heap footprint of the payload map.
func (DegreeMap) Bytes(a DegMap) int { return 48 + len(a)*28 }

// AddInto accumulates src into *dst in place, dropping entries that cancel.
func (DegreeMap) AddInto(dst *DegMap, src DegMap) {
	if len(src) == 0 {
		return
	}
	if *dst == nil {
		*dst = make(DegMap, len(src))
	}
	m := *dst
	for k, v := range src {
		if s := m[k] + v; s == 0 {
			delete(m, k)
		} else {
			m[k] = s
		}
	}
}

// MulAddInto accumulates *dst += *a * *b, truncating above degree two.
func (DegreeMap) MulAddInto(dst, a, b *DegMap) {
	if len(*a) == 0 || len(*b) == 0 {
		return
	}
	if *dst == nil {
		*dst = make(DegMap, len(*a)+len(*b))
	}
	m := *dst
	for ka, va := range *a {
		for kb, vb := range *b {
			k, ok := ka.combine(kb)
			if !ok {
				continue
			}
			if s := m[k] + va*vb; s == 0 {
				delete(m, k)
			} else {
				m[k] = s
			}
		}
	}
}

// MulInto sets *dst = *a * *b, reusing dst's map storage.
func (r DegreeMap) MulInto(dst, a, b *DegMap) {
	clear(*dst)
	r.MulAddInto(dst, a, b)
}

// IsOne reports whether *a holds only the count aggregate with value 1.
func (DegreeMap) IsOne(a *DegMap) bool { return len(*a) == 1 && (*a)[CountDeg] == 1 }

// CopyInto sets *dst to a deep copy of src.
func (DegreeMap) CopyInto(dst *DegMap, src DegMap) {
	clear(*dst)
	if len(src) == 0 {
		return
	}
	if *dst == nil {
		*dst = make(DegMap, len(src))
	}
	m := *dst
	for k, v := range src {
		m[k] = v
	}
}

// AddIntoRef accumulates *src into *dst (MutableRef; a map header copy is
// cheap, so this simply delegates).
func (r DegreeMap) AddIntoRef(dst, src *DegMap) { r.AddInto(dst, *src) }

// CopyIntoRef sets *dst to a deep copy of *src.
func (r DegreeMap) CopyIntoRef(dst, src *DegMap) { r.CopyInto(dst, *src) }

// IsZeroRef reports whether *p holds no non-zero aggregate.
func (DegreeMap) IsZeroRef(p *DegMap) bool { return len(*p) == 0 }

// LiftDegMap returns the lifting of value x for variable j:
// {SUM(1): 1, SUM(X_j): x, SUM(X_j*X_j): x²}.
func LiftDegMap(j int, x float64) DegMap {
	return DegMap{CountDeg: 1, LinDeg(j): x, QuadDeg(j, j): x * x}
}
