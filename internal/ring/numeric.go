package ring

// Int is the ring Z of integers with the usual arithmetic. It is the payload
// ring for COUNT queries and for multiplicity bookkeeping.
type Int struct{}

// Zero returns 0.
func (Int) Zero() int64 { return 0 }

// One returns 1.
func (Int) One() int64 { return 1 }

// Add returns a + b.
func (Int) Add(a, b int64) int64 { return a + b }

// Neg returns -a.
func (Int) Neg(a int64) int64 { return -a }

// Mul returns a * b.
func (Int) Mul(a, b int64) int64 { return a * b }

// IsZero reports a == 0.
func (Int) IsZero(a int64) bool { return a == 0 }

// Bytes reports the payload footprint (8 bytes for an int64).
func (Int) Bytes(int64) int { return 8 }

// AddInto accumulates src into *dst.
func (Int) AddInto(dst *int64, src int64) { *dst += src }

// MulInto sets *dst = *a * *b.
func (Int) MulInto(dst, a, b *int64) { *dst = *a * *b }

// MulAddInto accumulates *dst += *a * *b.
func (Int) MulAddInto(dst, a, b *int64) { *dst += *a * *b }

// CopyInto sets *dst = src.
func (Int) CopyInto(dst *int64, src int64) { *dst = src }

// IsOne reports *a == 1.
func (Int) IsOne(a *int64) bool { return *a == 1 }

// AddIntoRef accumulates *src into *dst (MutableRef).
func (Int) AddIntoRef(dst, src *int64) { *dst += *src }

// CopyIntoRef sets *dst = *src.
func (Int) CopyIntoRef(dst, src *int64) { *dst = *src }

// IsZeroRef reports *p == 0.
func (Int) IsZeroRef(p *int64) bool { return *p == 0 }

// Float is the ring R of float64 values with the usual arithmetic. Strictly
// a ring only up to floating-point rounding; the engine relies on exact
// cancellation only for payloads produced by matching insert/delete pairs,
// which cancel exactly in IEEE 754.
type Float struct{}

// Zero returns 0.
func (Float) Zero() float64 { return 0 }

// One returns 1.
func (Float) One() float64 { return 1 }

// Add returns a + b.
func (Float) Add(a, b float64) float64 { return a + b }

// Neg returns -a.
func (Float) Neg(a float64) float64 { return -a }

// Mul returns a * b.
func (Float) Mul(a, b float64) float64 { return a * b }

// IsZero reports a == 0 (exact).
func (Float) IsZero(a float64) bool { return a == 0 }

// Bytes reports the payload footprint (8 bytes for a float64).
func (Float) Bytes(float64) int { return 8 }

// AddInto accumulates src into *dst.
func (Float) AddInto(dst *float64, src float64) { *dst += src }

// MulInto sets *dst = *a * *b.
func (Float) MulInto(dst, a, b *float64) { *dst = *a * *b }

// MulAddInto accumulates *dst += *a * *b.
func (Float) MulAddInto(dst, a, b *float64) { *dst += *a * *b }

// CopyInto sets *dst = src.
func (Float) CopyInto(dst *float64, src float64) { *dst = src }

// IsOne reports *a == 1.
func (Float) IsOne(a *float64) bool { return *a == 1 }

// AddIntoRef accumulates *src into *dst (MutableRef).
func (Float) AddIntoRef(dst, src *float64) { *dst += *src }

// CopyIntoRef sets *dst = *src.
func (Float) CopyIntoRef(dst, src *float64) { *dst = *src }

// IsZeroRef reports *p == 0 (exact).
func (Float) IsZeroRef(p *float64) bool { return *p == 0 }
