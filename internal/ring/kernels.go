//go:build !purego

package ring

// Optimized dense kernels for the cofactor inner loops: 4-wide manual
// unrolling, slice-length hoisting so the compiler can eliminate bounds
// checks, row-slice hoisting in the matrix updates, and a half+mirror
// traversal for the symmetric rank-1 update. Every kernel is bit-identical
// to its reference in kernels_ref.go — same per-element expression shapes,
// same per-element accumulation order, same zero-skip rules — which the
// property tests verify byte for byte. Build with `-tags purego` to select
// the reference implementations instead.

// pureGoKernels reports which kernel set this binary runs.
const pureGoKernels = false

// addTo accumulates src into dst elementwise: dst[i] += src[i].
func addTo(dst, src []float64) {
	n := len(src)
	if n == 0 {
		return
	}
	dst = dst[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := dst[i] + src[i]
		d1 := dst[i+1] + src[i+1]
		d2 := dst[i+2] + src[i+2]
		d3 := dst[i+3] + src[i+3]
		dst[i] = d0
		dst[i+1] = d1
		dst[i+2] = d2
		dst[i+3] = d3
	}
	for ; i < n; i++ {
		dst[i] += src[i]
	}
}

// axpy accumulates a scaled vector: dst[i] += scale * src[i].
func axpy(dst, src []float64, scale float64) {
	n := len(src)
	if n == 0 {
		return
	}
	dst = dst[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := dst[i] + scale*src[i]
		d1 := dst[i+1] + scale*src[i+1]
		d2 := dst[i+2] + scale*src[i+2]
		d3 := dst[i+3] + scale*src[i+3]
		dst[i] = d0
		dst[i+1] = d1
		dst[i+2] = d2
		dst[i+3] = d3
	}
	for ; i < n; i++ {
		dst[i] += scale * src[i]
	}
}

// scatterAxpy adds src into a destination with remapped variable positions
// (scale 1 shortcut of scatterAxpyScale).
func scatterAxpy(dstS, dstQ, srcS, srcQ []float64, idx []int, k int) {
	scatterAxpyScale(dstS, dstQ, srcS, srcQ, idx, k, 1)
}

// scatterAxpyScale adds scale*src into remapped destination positions:
// dstS[idx[i]] += scale*srcS[i], dstQ[idx[i]*k+idx[j]] += scale*srcQ[i*ks+j].
func scatterAxpyScale(dstS, dstQ, srcS, srcQ []float64, idx []int, k int, scale float64) {
	ks := len(srcS)
	if ks == 0 {
		return
	}
	idx = idx[:ks]
	for i := 0; i < ks; i++ {
		ri := idx[i]
		dstS[ri] += scale * srcS[i]
		row := dstQ[ri*k : ri*k+k]
		srow := srcQ[i*ks : i*ks+ks]
		for j := 0; j < ks; j++ {
			row[idx[j]] += scale * srow[j]
		}
	}
}

// rank1SymUpdate accumulates sa·sbᵀ + sb·saᵀ into the k×k matrix q for the
// position-remap-free case len(sa) = len(sb) = k, visiting each (i, j) pair
// once per half and mirroring. Per-element accumulation order and zero-skip
// rules match the reference double loop exactly: element (i, j) with i < j
// receives sa[i]*sb[j] before sa[j]*sb[i] on both halves, and the diagonal
// receives its product twice.
func rank1SymUpdate(q, sa, sb []float64, k int) {
	if k == 0 {
		return
	}
	sa = sa[:k]
	sb = sb[:k]
	for i := 0; i < k; i++ {
		sai, sbi := sa[i], sb[i]
		rowI := q[i*k : i*k+k]
		if sai != 0 && sbi != 0 {
			p := sai * sbi
			rowI[i] += p
			rowI[i] += p
		}
		if sai == 0 && sbi == 0 {
			continue
		}
		for j := i + 1; j < k; j++ {
			saj, sbj := sa[j], sb[j]
			if sai != 0 && sbj != 0 {
				p := sai * sbj
				rowI[j] += p
				q[j*k+i] += p
			}
			if saj != 0 && sbi != 0 {
				p := saj * sbi
				q[j*k+i] += p
				rowI[j] += p
			}
		}
	}
}

// rank1ScatterUpdate accumulates sa·sbᵀ + sb·saᵀ into the k×k matrix q with
// operand positions remapped through ia and ib (nil means identity). The
// remapped rows are hoisted as subslices; traversal order matches the
// reference.
func rank1ScatterUpdate(q, sa, sb []float64, ia, ib []int, k int) {
	if ia == nil && ib == nil {
		rank1SymUpdate(q, sa, sb, k)
		return
	}
	for i, si := range sa {
		if si == 0 {
			continue
		}
		ri := i
		if ia != nil {
			ri = ia[i]
		}
		row := q[ri*k : ri*k+k]
		for j, sj := range sb {
			if sj == 0 {
				continue
			}
			rj := j
			if ib != nil {
				rj = ib[j]
			}
			p := si * sj
			row[rj] += p
			q[rj*k+ri] += p
		}
	}
}
