package ring

// Triple is an element of the degree-m matrix ring from paper Definition 6.2:
// a compound aggregate (c, s, Q) where c is a scalar count aggregate
// (SUM(1)), s is a vector of linear aggregates (SUM(X_i)), and Q is a
// symmetric matrix of quadratic aggregates (SUM(X_i * X_j)).
//
// Triples are stored sparsely, following the paper's note that "in practice
// we only store as payloads blocks of matrices with non-zero values and
// assemble larger matrices as the computation progresses towards the root":
// Vars lists the variable indices with possibly non-zero entries, and S and Q
// hold only those rows/columns. In a view tree each variable is lifted
// exactly once, so payloads stay small in the leaves and grow toward the
// root, where they cover all m variables.
//
// Triples are immutable: ring operations return fresh values.
type Triple struct {
	// C is the scalar count aggregate.
	C float64
	// Vars holds the sorted variable indices covered by S and Q.
	Vars []int32
	// S holds the linear aggregates; S[i] corresponds to Vars[i].
	S []float64
	// Q holds the quadratic aggregates in row-major order over Vars;
	// Q[i*len(Vars)+j] is SUM(X_{Vars[i]} * X_{Vars[j]}). Q is symmetric.
	Q []float64
}

// Cofactor is the degree-m matrix ring over Triple values. The degree m (the
// total number of query variables) bounds the variable indices but does not
// affect the sparse representation, so a single Cofactor value works for any
// query; m is only needed when expanding a triple to dense form.
type Cofactor struct{}

// Zero returns the triple (0, 0, 0).
func (Cofactor) Zero() Triple { return Triple{} }

// One returns the triple (1, 0, 0), the multiplicative identity.
func (Cofactor) One() Triple { return Triple{C: 1} }

// IsZero reports whether every component of the triple is zero. A triple can
// have a zero count but non-zero sums (for example, a delta combining an
// insert and a delete of tuples that agree on some variables), so every
// entry must be inspected.
func (Cofactor) IsZero(a Triple) bool {
	if a.C != 0 {
		return false
	}
	for _, v := range a.S {
		if v != 0 {
			return false
		}
	}
	for _, v := range a.Q {
		if v != 0 {
			return false
		}
	}
	return true
}

// Neg returns the additive inverse, negating every component.
func (Cofactor) Neg(a Triple) Triple {
	out := Triple{C: -a.C, Vars: a.Vars}
	out.S, out.Q = newSQ(len(a.Vars))
	for i, v := range a.S {
		out.S[i] = -v
	}
	for i, v := range a.Q {
		out.Q[i] = -v
	}
	return out
}

// Add returns the component-wise sum of two triples, aligning their sparse
// variable sets.
func (Cofactor) Add(a, b Triple) Triple {
	// Fast paths: a zero operand contributes nothing; triples are immutable
	// so sharing the other operand is safe.
	if a.C == 0 && len(a.Vars) == 0 {
		return b
	}
	if b.C == 0 && len(b.Vars) == 0 {
		return a
	}
	if sameVars(a.Vars, b.Vars) {
		k := len(a.Vars)
		out := Triple{C: a.C + b.C, Vars: a.Vars}
		out.S, out.Q = newSQ(k)
		for i := range out.S {
			out.S[i] = a.S[i] + b.S[i]
		}
		for i := range out.Q {
			out.Q[i] = a.Q[i] + b.Q[i]
		}
		return out
	}
	vars, ia, ib := mergeVars(a.Vars, b.Vars)
	k := len(vars)
	out := Triple{C: a.C + b.C, Vars: vars}
	out.S, out.Q = newSQ(k)
	scatterAdd(&out, a, ia, 1)
	scatterAdd(&out, b, ib, 1)
	return out
}

// Mul returns the ring product from Definition 6.2:
//
//	c  = ca*cb
//	s  = cb*sa + ca*sb
//	Q  = cb*Qa + ca*Qb + sa sbᵀ + sb saᵀ
//
// computed in the merged sparse variable space. In view trees the operand
// variable sets are disjoint (each variable is lifted once), but Mul handles
// overlap correctly as required by the ring axioms.
func (Cofactor) Mul(a, b Triple) Triple {
	// Fast paths for scalar-only operands, which are the overwhelmingly
	// common case at the leaves of a view tree.
	if len(a.Vars) == 0 {
		if a.C == 1 {
			return b
		}
		return scaleTriple(b, a.C)
	}
	if len(b.Vars) == 0 {
		if b.C == 1 {
			return a
		}
		return scaleTriple(a, b.C)
	}
	vars, ia, ib := mergeVars(a.Vars, b.Vars)
	k := len(vars)
	out := Triple{C: a.C * b.C, Vars: vars}
	out.S, out.Q = newSQ(k)
	// Scale-and-scatter the linear and quadratic blocks.
	scatterAdd(&out, a, ia, b.C)
	scatterAdd(&out, b, ib, a.C)
	// Outer products sa sbᵀ + sb saᵀ in the merged space.
	for i, si := range a.S {
		if si == 0 {
			continue
		}
		ri := ia[i]
		for j, sj := range b.S {
			if sj == 0 {
				continue
			}
			rj := ib[j]
			p := si * sj
			out.Q[ri*k+rj] += p
			out.Q[rj*k+ri] += p
		}
	}
	return out
}

// Bytes estimates the heap footprint of a triple.
func (Cofactor) Bytes(a Triple) int {
	return 8 + 3*24 + 4*len(a.Vars) + 8*len(a.S) + 8*len(a.Q)
}

// LiftValue returns the lifting g_j(x) = (1, s_j = x, Q_{jj} = x²) for the
// variable with index j (paper Section 6.2).
func LiftValue(j int, x float64) Triple {
	out := Triple{C: 1, Vars: []int32{int32(j)}}
	out.S, out.Q = newSQ(1)
	out.S[0] = x
	out.Q[0] = x * x
	return out
}

// Count returns the scalar count aggregate of the triple.
func (a Triple) Count() float64 { return a.C }

// SumOf returns the linear aggregate SUM(X_j), or 0 if j is not covered.
func (a Triple) SumOf(j int) float64 {
	i := findVar(a.Vars, int32(j))
	if i < 0 {
		return 0
	}
	return a.S[i]
}

// QuadOf returns the quadratic aggregate SUM(X_i * X_j), or 0 if either
// variable is not covered.
func (a Triple) QuadOf(i, j int) float64 {
	ri := findVar(a.Vars, int32(i))
	rj := findVar(a.Vars, int32(j))
	if ri < 0 || rj < 0 {
		return 0
	}
	return a.Q[ri*len(a.Vars)+rj]
}

// ExpandSum returns the dense m-length vector of linear aggregates.
func (a Triple) ExpandSum(m int) []float64 {
	out := make([]float64, m)
	for i, v := range a.Vars {
		out[v] = a.S[i]
	}
	return out
}

// ExpandQ returns the dense m×m row-major cofactor matrix.
func (a Triple) ExpandQ(m int) []float64 {
	out := make([]float64, m*m)
	k := len(a.Vars)
	for i := 0; i < k; i++ {
		ri := int(a.Vars[i])
		for j := 0; j < k; j++ {
			out[ri*m+int(a.Vars[j])] = a.Q[i*k+j]
		}
	}
	return out
}

func scaleTriple(a Triple, c float64) Triple {
	if c == 0 {
		return Triple{}
	}
	out := Triple{C: a.C * c, Vars: a.Vars}
	out.S, out.Q = newSQ(len(a.Vars))
	for i, v := range a.S {
		out.S[i] = v * c
	}
	for i, v := range a.Q {
		out.Q[i] = v * c
	}
	return out
}

// scatterAdd adds scale*src into dst, mapping src row i to dst row idx[i].
func scatterAdd(dst *Triple, src Triple, idx []int, scale float64) {
	k := len(dst.Vars)
	ks := len(src.Vars)
	for i := 0; i < ks; i++ {
		dst.S[idx[i]] += scale * src.S[i]
		for j := 0; j < ks; j++ {
			dst.Q[idx[i]*k+idx[j]] += scale * src.Q[i*ks+j]
		}
	}
}

func sameVars(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) > 0 && &a[0] == &b[0] {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mergeVars merges two sorted variable index lists and returns the merged
// list plus, for each input, the mapping from input positions to merged
// positions.
func mergeVars(a, b []int32) (merged []int32, ia, ib []int) {
	merged = make([]int32, 0, len(a)+len(b))
	ia = make([]int, len(a))
	ib = make([]int, len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			ia[i] = len(merged)
			merged = append(merged, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			ib[j] = len(merged)
			merged = append(merged, b[j])
			j++
		default: // equal
			ia[i] = len(merged)
			ib[j] = len(merged)
			merged = append(merged, a[i])
			i++
			j++
		}
	}
	return merged, ia, ib
}

func findVar(vars []int32, v int32) int {
	lo, hi := 0, len(vars)
	for lo < hi {
		mid := (lo + hi) / 2
		if vars[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(vars) && vars[lo] == v {
		return lo
	}
	return -1
}
