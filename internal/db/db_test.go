package db

import (
	"fmt"
	"strings"
	"testing"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/ring"
)

func testCatalog() Catalog {
	return Catalog{
		"R": data.NewSchema("A", "B"),
		"S": data.NewSchema("A", "C"),
		"T": data.NewSchema("C", "D"),
	}
}

func testQuery(name string, free ...string) query.Query {
	return query.MustNew(name, data.NewSchema(free...),
		query.RelDef{Name: "R", Schema: data.NewSchema("A", "B")},
		query.RelDef{Name: "S", Schema: data.NewSchema("A", "C")},
		query.RelDef{Name: "T", Schema: data.NewSchema("C", "D")})
}

func countLift(string, data.Value) int64 { return 1 }

func tup(vals ...int64) data.Tuple {
	t := make(data.Tuple, len(vals))
	for i, v := range vals {
		t[i] = data.Int(v)
	}
	return t
}

func fpEntries[P any](es []data.Entry[P]) string {
	var b strings.Builder
	for _, e := range es {
		fmt.Fprintf(&b, "%v->%v;", e.Tuple, e.Payload)
	}
	return b.String()
}

func TestDBBasicLifecycle(t *testing.T) {
	d, err := Open(testCatalog(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	v, err := CreateView[int64](d, "cnt", testQuery("cnt", "A"), ring.Int{}, countLift, ViewOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CreateView[int64](d, "cnt", testQuery("cnt", "A"), ring.Int{}, countLift, ViewOptions{}); err == nil {
		t.Fatal("duplicate view name should fail")
	}

	if err := d.Apply([]Update{
		Insert("R", tup(1, 10), tup(2, 20)),
		Insert("S", tup(1, 5), tup(2, 6)),
		Insert("T", tup(5, 100), tup(6, 200)),
	}); err != nil {
		t.Fatal(err)
	}

	e := d.Epoch()
	if e.Applied != 1 {
		t.Errorf("Applied = %d", e.Applied)
	}
	s := SnapshotOf[int64](e, "cnt")
	if s == nil {
		t.Fatal("no snapshot for cnt")
	}
	if got, _ := s.Result().Get(tup(1)); got != 1 {
		t.Errorf("cnt[1] = %d, want 1", got)
	}

	// Typed reader pinned at the epoch.
	rd, err := ReaderFor[int64](d, "cnt")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := rd.Lookup(tup(2)); !ok || got != 1 {
		t.Errorf("reader cnt[2] = %d,%v", got, ok)
	}
	if _, err := ReaderFor[float64](d, "cnt"); err == nil {
		t.Error("payload type mismatch should fail")
	}
	if _, err := ReaderFor[int64](d, "nope"); err == nil {
		t.Error("unknown view should fail")
	}

	// Deletion via negative multiplicity.
	if err := d.Apply([]Update{Delete("R", tup(1, 10))}); err != nil {
		t.Fatal(err)
	}
	if got, ok := SnapshotOf[int64](d.Epoch(), "cnt").Result().Get(tup(1)); ok {
		t.Errorf("cnt[1] still %d after delete", got)
	}

	// The reader advances monotonically.
	if !rd.Refresh() {
		t.Error("reader did not advance")
	}

	// Drop: epoch no longer carries the view; pinned snapshots keep working.
	pinned := SnapshotOf[int64](d.Epoch(), "cnt")
	if err := d.DropView("cnt"); err != nil {
		t.Fatal(err)
	}
	if d.Epoch().Has("cnt") {
		t.Error("dropped view still in epoch")
	}
	if pinned.Result().Len() == 0 {
		t.Error("pinned snapshot lost its entries")
	}
	if err := d.DropView("cnt"); err == nil {
		t.Error("double drop should fail")
	}
	_ = v
}

func TestDBValidation(t *testing.T) {
	if _, err := Open(Catalog{}, Options{}); err == nil {
		t.Error("empty catalog should fail")
	}
	d, err := Open(testCatalog(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	bad := query.MustNew("bad", data.NewSchema("A"),
		query.RelDef{Name: "Z", Schema: data.NewSchema("A")})
	if _, err := CreateView[int64](d, "bad", bad, ring.Int{}, countLift, ViewOptions{}); err == nil {
		t.Error("unknown relation should fail")
	}
	mismatch := query.MustNew("bad2", data.NewSchema("A"),
		query.RelDef{Name: "R", Schema: data.NewSchema("A", "X")})
	if _, err := CreateView[int64](d, "bad2", mismatch, ring.Int{}, countLift, ViewOptions{}); err == nil {
		t.Error("schema mismatch should fail")
	}
	if err := d.Apply([]Update{Insert("Z", tup(1))}); err == nil {
		t.Error("unknown relation in Apply should fail")
	}
	if err := d.Apply([]Update{Insert("R", tup(1))}); err == nil {
		t.Error("arity mismatch in Apply should fail")
	}
}

func TestDBSQLViews(t *testing.T) {
	d, err := Open(testCatalog(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	msg, err := d.Exec("CREATE VIEW sums AS SELECT A, SUM(B * D) FROM R NATURAL JOIN S NATURAL JOIN T GROUP BY A")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "sums") {
		t.Errorf("msg = %q", msg)
	}
	if err := d.Apply([]Update{
		Insert("R", tup(1, 3)),
		Insert("S", tup(1, 7)),
		Insert("T", tup(7, 5)),
	}); err != nil {
		t.Fatal(err)
	}
	s := SnapshotOf[float64](d.Epoch(), "sums")
	if s == nil {
		t.Fatal("no snapshot for sums")
	}
	if got, _ := s.Result().Get(tup(1)); got != 15 {
		t.Errorf("sums[1] = %g, want 15", got)
	}
	if _, err := d.Exec("SELECT SUM(B) FROM R"); err == nil {
		t.Error("bare SELECT through Exec should fail")
	}
	if _, err := d.Exec("DROP VIEW sums"); err != nil {
		t.Fatal(err)
	}
	if d.HasView("sums") {
		t.Error("sums still registered")
	}

	// CreateViewSQL with a bare SELECT and an explicit name.
	if _, err := CreateViewSQL(d, "cnt", "SELECT A, COUNT(*) FROM R NATURAL JOIN S GROUP BY A", ViewOptions{}); err != nil {
		t.Fatal(err)
	}
	if got, _ := SnapshotOf[float64](d.Epoch(), "cnt").Result().Get(tup(1)); got != 1 {
		t.Errorf("cnt[1] = %g, want 1 (backfilled)", got)
	}
}

// TestDBMultiRingViews is the acceptance shape: one DB maintaining views of
// different rings over one shared stream.
func TestDBMultiRingViews(t *testing.T) {
	d, err := Open(testCatalog(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if _, err := CreateView[int64](d, "cnt", testQuery("cnt", "A"), ring.Int{}, countLift, ViewOptions{}); err != nil {
		t.Fatal(err)
	}
	sumLift := func(v string, x data.Value) float64 {
		if v == "B" {
			return x.AsFloat()
		}
		return 1
	}
	if _, err := CreateView[float64](d, "sumB", testQuery("sumB", "C"), ring.Float{}, sumLift, ViewOptions{}); err != nil {
		t.Fatal(err)
	}
	vars := data.NewSchema("A", "B", "C", "D")
	cofLift := func(v string, x data.Value) ring.Triple {
		idx := map[string]int{"A": 0, "B": 1, "C": 2, "D": 3}
		_ = vars
		return ring.LiftValue(idx[v], x.AsFloat())
	}
	if _, err := CreateView[ring.Triple](d, "cof", testQuery("cof"), ring.Cofactor{}, cofLift, ViewOptions{}); err != nil {
		t.Fatal(err)
	}

	for i := int64(0); i < 20; i++ {
		if err := d.Apply([]Update{
			Insert("R", tup(i%4, i)),
			Insert("S", tup(i%4, i%3)),
			Insert("T", tup(i%3, i*2)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	e := d.Epoch()
	if len(e.Views()) != 3 {
		t.Fatalf("views = %v", e.Views())
	}
	if SnapshotOf[int64](e, "cnt") == nil ||
		SnapshotOf[float64](e, "sumB") == nil ||
		SnapshotOf[ring.Triple](e, "cof") == nil {
		t.Fatal("missing typed snapshots")
	}
	st := d.ViewStatsOf("cnt")
	if st.Batches != 20 || st.Keys == 0 || st.Maintain <= 0 {
		t.Errorf("stats = %+v", st)
	}
}
