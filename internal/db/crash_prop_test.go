package db

import (
	"math/rand"
	"sort"
	"testing"

	"fivm/internal/data"
	"fivm/internal/ring"
	"fivm/internal/wal"
)

// Crash-recovery equivalence property: for a random update stream with
// deletes, maintained across {Int, Cofactor} rings (plus a persisted SQL
// view), crash the filesystem at every WAL record boundary — and mid-record
// — recover, and require the recovered DB's published epoch to be
// byte-identical to an uninterrupted oracle run at the same batch prefix.
// With fsync=always, "the same batch prefix" is pinned down exactly: every
// acknowledged batch survives, the unacknowledged one never partially
// applies.

const crashSegCap = int64(1) << 40 // one segment: boundaries are file offsets

func crashDurOpts(fs wal.VFS) *DurabilityOptions {
	return &DurabilityOptions{Dir: "wal", FS: fs, Fsync: wal.FsyncAlways, SegmentBytes: crashSegCap}
}

// driveCrashScenario runs the full scenario against fs, stopping at the
// first error (the injected crash). It returns how many batches were
// acknowledged (Apply returned nil).
func driveCrashScenario(fs wal.VFS, batches [][]Update) int {
	d, err := Open(testCatalog(), Options{Durability: crashDurOpts(fs)})
	if err != nil {
		return 0
	}
	defer d.Close()
	if _, err := CreateViewSQL(d, "sql", durSQL, ViewOptions{}); err != nil {
		return 0
	}
	if !crashCreateTypedViews(d) {
		return 0
	}
	n := 0
	for _, b := range batches {
		if err := d.Apply(b); err != nil {
			return n
		}
		n++
	}
	return n
}

// crashCreateTypedViews registers the Int and Cofactor typed views. These
// are NOT persisted (code-defined lifts); after recovery the test re-creates
// them, relying on backfill equivalence for byte-identity.
func crashCreateTypedViews(d *DB) bool {
	if _, err := CreateView[int64](d, "cnt", testQuery("cnt", "A"), ring.Int{}, countLift, ViewOptions{}); err != nil {
		return false
	}
	if _, err := CreateView[ring.Triple](d, "cof", testQuery("cof"), ring.Cofactor{}, propCofLift, ViewOptions{}); err != nil {
		return false
	}
	return true
}

// epochFP fingerprints the three views' published contents at the DB's
// current epoch.
func epochFP(t *testing.T, d *DB) string {
	t.Helper()
	e := d.Epoch()
	sSQL := SnapshotOf[float64](e, "sql")
	sCnt := SnapshotOf[int64](e, "cnt")
	sCof := SnapshotOf[ring.Triple](e, "cof")
	if sSQL == nil || sCnt == nil || sCof == nil {
		t.Fatal("missing view snapshot in epoch")
	}
	return "sql:" + fpEntries(sSQL.Result().SortedEntries()) +
		"|cnt:" + fpEntries(sCnt.Result().SortedEntries()) +
		"|cof:" + fpEntries(sCof.Result().SortedEntries())
}

func TestCrashRecoveryEveryRecordBoundary(t *testing.T) {
	// Deterministic random stream mixing inserts and deletes over R, S, T.
	rng := rand.New(rand.NewSource(7))
	live := map[string][]data.Tuple{}
	const nBatches = 10
	batches := make([][]Update, nBatches)
	for i := range batches {
		batches[i] = randomUpdates(rng, live)
	}

	// Oracle: uninterrupted in-memory runs, fingerprinted at every prefix.
	oracleFP := make([]string, nBatches+1)
	{
		d, err := Open(testCatalog(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		if _, err := CreateViewSQL(d, "sql", durSQL, ViewOptions{}); err != nil {
			t.Fatal(err)
		}
		if !crashCreateTypedViews(d) {
			t.Fatal("oracle view creation failed")
		}
		oracleFP[0] = epochFP(t, d)
		for i, b := range batches {
			if err := d.Apply(b); err != nil {
				t.Fatal(err)
			}
			oracleFP[i+1] = epochFP(t, d)
		}
	}

	// Reference run on a clean MemVFS to learn the exact on-disk record
	// boundaries (the write sequence is deterministic, so byte budgets in
	// the crash runs line up with these offsets).
	ref := wal.NewMemFS()
	if got := driveCrashScenario(ref, batches); got != nBatches {
		t.Fatalf("reference run acknowledged %d/%d batches", got, nBatches)
	}
	segBytes, err := ref.ReadFile("wal/wal-00000001.seg")
	if err != nil {
		t.Fatal(err)
	}
	bounds := wal.RecordBoundaries(segBytes)
	// 1 create-view record + nBatches batch records.
	if len(bounds) != nBatches+1 {
		t.Fatalf("reference segment has %d records, want %d", len(bounds), nBatches+1)
	}

	// Crash points: every record boundary exactly, a few bytes short of it
	// (mid-record tear), and a few bytes past it (mid-header of the next).
	pts := map[int64]bool{0: true, 5: true}
	for _, b := range bounds {
		pts[b] = true
		pts[b-3] = true
		pts[b+4] = true
	}
	var crashPoints []int64
	for p := range pts {
		if p >= 0 {
			crashPoints = append(crashPoints, p)
		}
	}
	sort.Slice(crashPoints, func(i, j int) bool { return crashPoints[i] < crashPoints[j] })

	for _, cut := range crashPoints {
		mem := wal.NewMemFS()
		ffs := wal.NewFaultFS(mem)
		ffs.CrashAfterBytes(cut)
		acked := driveCrashScenario(ffs, batches)
		mem.Crash() // power cut: only synced bytes survive

		d2, err := Open(testCatalog(), Options{Durability: crashDurOpts(mem)})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}

		// No acknowledged batch lost, no unacknowledged batch applied.
		if got := d2.Applied(); got != uint64(acked) {
			t.Fatalf("cut %d: recovered applied=%d, acknowledged=%d", cut, got, acked)
		}

		// Re-create whatever did not survive: the SQL view if its DDL
		// record was cut, and the typed views always (not persisted).
		if !d2.HasView("sql") {
			if _, err := CreateViewSQL(d2, "sql", durSQL, ViewOptions{}); err != nil {
				t.Fatalf("cut %d: re-create sql view: %v", cut, err)
			}
		}
		if !crashCreateTypedViews(d2) {
			t.Fatalf("cut %d: re-create typed views failed", cut)
		}

		if got, want := epochFP(t, d2), oracleFP[acked]; got != want {
			t.Fatalf("cut %d: recovered epoch diverges from oracle at prefix %d:\n got  %s\n want %s",
				cut, acked, got, want)
		}
		d2.Close()
	}
}
