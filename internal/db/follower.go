package db

import (
	"fmt"

	"fivm/internal/wal"
)

// Follower mode: a DB whose only write path is ApplyReplicated, fed with
// records shipped from a primary's WAL (internal/replica is the transport).
// The records drive the same applyBase / CreateViewSQL / DropView machinery
// an uninterrupted primary runs, so the follower publishes the same epoch
// sequence — its snapshots are byte-identical to the primary's at the same
// applied count — and serves them through the ordinary Epoch / serve.Reader
// read path.

// ErrFollower is wrapped by every write rejected on a follower.
var ErrFollower = fmt.Errorf("db: follower is read-only (writes arrive via replication)")

// writable rejects direct writes on a follower. Replication and recovery
// temporarily lift the guard: they are the paths writes legitimately arrive
// through.
func (d *DB) writable() error {
	if d.opts.Follower && !d.replicating && !d.recovering {
		return ErrFollower
	}
	return nil
}

// Follower reports whether the DB is in follower mode.
func (d *DB) Follower() bool { return d.opts.Follower }

// ReplLSN returns the last replicated LSN (0 before any record). Safe from
// any goroutine; the replication handshake sends it to resume the stream.
func (d *DB) ReplLSN() uint64 { return d.replLSN.Load() }

// ApplyReplicated applies one WAL record shipped from the primary, on the
// follower's maintenance goroutine. Records must arrive in LSN order: an
// already-covered LSN is skipped (the reconnect handshake may replay a
// suffix), a gap is an error — the caller reconnects and the handshake
// falls back to checkpoint transfer.
//
// A durable follower re-logs the record to its own WAL before in-memory
// state advances, under the same LSN the primary assigned, so a restarted
// follower recovers locally and resumes the stream where it left off.
func (d *DB) ApplyReplicated(rec wal.Record) error {
	if !d.opts.Follower {
		return fmt.Errorf("db: ApplyReplicated on a non-follower DB")
	}
	last := d.replLSN.Load()
	if rec.LSN <= last {
		return nil // duplicate delivery after reconnect
	}
	if rec.LSN != last+1 {
		return fmt.Errorf("db: replication gap: record LSN %d after %d", rec.LSN, last)
	}
	d.replicating = true
	defer func() { d.replicating = false }()
	switch {
	case rec.Create != nil:
		def := *rec.Create
		if _, err := CreateViewSQL(d, def.Name, def.SQL, ViewOptions{
			Workers:         def.Workers,
			ComposeChains:   def.ComposeChains,
			CostMaterialize: def.CostMaterialize,
			AutoReoptimize:  def.AutoReoptimize,
		}); err != nil {
			return err
		}
	case rec.Drop != "":
		if err := d.DropView(rec.Drop); err != nil {
			return err
		}
	default:
		if rec.Applied != d.applied+1 {
			return fmt.Errorf("db: replication: batch record applied=%d, expected %d", rec.Applied, d.applied+1)
		}
		if err := d.applyBase(rec.Batch, true); err != nil {
			return err
		}
	}
	d.replLSN.Store(rec.LSN)
	return nil
}

// Sync forces any WAL tail buffered under fsync=interval/never to stable
// storage (a no-op without durability). Graceful shutdown calls it before
// Close so an acknowledged batch survives the exit.
func (d *DB) Sync() error {
	if d.log == nil {
		return nil
	}
	return d.log.Sync()
}

// WAL exposes the underlying log for the replication sender (nil without
// durability). The log stays owned by the DB: callers only subscribe to
// frames and read segments back, never append.
func (d *DB) WAL() *wal.Log { return d.log }
