package db

import (
	"fmt"

	"fivm/internal/ring"
	"fivm/internal/sqlparse"
	"fivm/internal/wal"
)

// CreateViewSQL registers a view from SQL text — either a full
// "CREATE VIEW <name> AS SELECT ..." statement or a bare SELECT (the name
// argument then supplies the view name; for CREATE VIEW text, name must be
// empty or agree with the statement). The view is maintained in the R ring
// (float64 payloads) with the lifting the aggregate requires, and behaves
// exactly like a CreateView-registered view: backfilled, epoch-published,
// droppable.
func CreateViewSQL(d *DB, name, sql string, opts ViewOptions) (*View[float64], error) {
	st, err := sqlparse.ParseStatement(sql, d.catalog())
	if err != nil {
		return nil, err
	}
	switch st.Kind {
	case sqlparse.StmtCreateView:
		if name != "" && name != st.ViewName {
			return nil, fmt.Errorf("db: view name %q conflicts with CREATE VIEW %s", name, st.ViewName)
		}
		name = st.ViewName
	case sqlparse.StmtSelect:
		if name == "" {
			return nil, fmt.Errorf("db: a bare SELECT needs an explicit view name")
		}
		st.Select.Query.Name = name
	default:
		return nil, fmt.Errorf("db: %s is not a view definition", st.Kind)
	}
	v, err := CreateView[float64](d, name, st.Select.Query, ring.Float{}, st.Select.LiftFloat(), opts)
	if err != nil {
		return nil, err
	}
	if d.log != nil {
		def := wal.ViewDef{
			Name:            name,
			SQL:             sql,
			Workers:         opts.Workers,
			ComposeChains:   opts.ComposeChains,
			CostMaterialize: opts.CostMaterialize,
			AutoReoptimize:  opts.AutoReoptimize,
		}
		if !d.recovering {
			// Log the creation; if the append fails the view cannot be made
			// durable, so undo it rather than let memory and log diverge.
			if err := d.log.AppendCreateView(def); err != nil {
				_ = d.DropView(name)
				return nil, fmt.Errorf("db: wal append: %w", err)
			}
		}
		d.sqlViews[name] = def
	}
	return v, nil
}

// Exec executes one DDL statement — CREATE VIEW ... AS SELECT ... or
// DROP VIEW ... — against the DB and returns a short status line. Bare
// SELECTs are rejected (they carry no view name); use CreateViewSQL.
// SQL-created views use default ViewOptions; register via CreateView /
// CreateViewSQL directly to configure workers or the optimizer flags.
func (d *DB) Exec(sql string) (string, error) {
	st, err := sqlparse.ParseStatement(sql, d.catalog())
	if err != nil {
		return "", err
	}
	switch st.Kind {
	case sqlparse.StmtCreateView:
		// Route through CreateViewSQL so the view is persisted in the WAL
		// catalog exactly like any other SQL-defined view.
		if _, err := CreateViewSQL(d, st.ViewName, sql, ViewOptions{}); err != nil {
			return "", err
		}
		return fmt.Sprintf("created view %s", st.ViewName), nil
	case sqlparse.StmtDropView:
		if err := d.DropView(st.ViewName); err != nil {
			return "", err
		}
		return fmt.Sprintf("dropped view %s", st.ViewName), nil
	default:
		return "", fmt.Errorf("db: bare SELECT has no view name; use CREATE VIEW <name> AS SELECT ...")
	}
}

// catalog rebuilds the SQL catalog view of the base store.
func (d *DB) catalog() Catalog {
	cat := make(Catalog, len(d.store.Relations()))
	for _, rel := range d.store.Relations() {
		sch, _ := d.store.Schema(rel)
		cat[rel] = sch
	}
	return cat
}
