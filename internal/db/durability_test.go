package db

import (
	"errors"
	"fmt"
	"testing"

	"fivm/internal/data"
	"fivm/internal/ring"
	"fivm/internal/wal"
)

func durOpts(fs wal.VFS) *DurabilityOptions {
	return &DurabilityOptions{Dir: "wal", FS: fs, Fsync: wal.FsyncAlways}
}

func applyN(t *testing.T, d *DB, batches [][]Update) {
	t.Helper()
	for i, b := range batches {
		if err := d.Apply(b); err != nil {
			t.Fatalf("apply batch %d: %v", i, err)
		}
	}
}

func viewFP(t *testing.T, d *DB, name string) string {
	t.Helper()
	s := SnapshotOf[float64](d.Epoch(), name)
	if s == nil {
		t.Fatalf("no snapshot for %s", name)
	}
	return fpEntries(s.Result().SortedEntries())
}

func durBatches() [][]Update {
	return [][]Update{
		{Insert("R", tup(1, 2), tup(2, 3)), Insert("S", tup(1, 10))},
		{Insert("S", tup(2, 20)), Insert("T", tup(10, 7))},
		{Delete("R", tup(1, 2)), Insert("R", tup(1, 5))},
		{Insert("R", tup(3, 1)), Delete("S", tup(2, 20))},
		{Insert("S", tup(3, 30)), Insert("T", tup(30, 9))},
	}
}

const durSQL = "SELECT A, COUNT(*) FROM R NATURAL JOIN S GROUP BY A"

// A durable DB closed cleanly and reopened must come back with the same
// applied count, the same SQL views, and byte-identical view contents.
func TestDurableRestartRoundTrip(t *testing.T) {
	fs := wal.NewMemFS()
	d, err := Open(testCatalog(), Options{Durability: durOpts(fs)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CreateViewSQL(d, "cnt", durSQL, ViewOptions{}); err != nil {
		t.Fatal(err)
	}
	applyN(t, d, durBatches())
	wantFP := viewFP(t, d, "cnt")
	wantApplied := d.Applied()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(testCatalog(), Options{Durability: durOpts(fs)})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Applied() != wantApplied {
		t.Fatalf("recovered applied = %d, want %d", d2.Applied(), wantApplied)
	}
	if !d2.HasView("cnt") {
		t.Fatal("SQL view not recovered")
	}
	if got := viewFP(t, d2, "cnt"); got != wantFP {
		t.Fatalf("recovered view diverges:\n got  %s\n want %s", got, wantFP)
	}
	info := d2.Recovery()
	if info == nil || len(info.Views) != 1 || info.Views[0] != "cnt" {
		t.Fatalf("recovery info %+v", info)
	}
	if info.ReplayedBatches != len(durBatches()) {
		t.Errorf("replayed %d batches, want %d", info.ReplayedBatches, len(durBatches()))
	}

	// The recovered DB keeps working: more batches, identical to a fresh
	// in-memory run of the full stream.
	extra := []Update{Insert("R", tup(9, 9)), Insert("S", tup(9, 90))}
	if err := d2.Apply(extra); err != nil {
		t.Fatal(err)
	}

	ref, err := Open(testCatalog(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := CreateViewSQL(ref, "cnt", durSQL, ViewOptions{}); err != nil {
		t.Fatal(err)
	}
	applyN(t, ref, durBatches())
	if err := ref.Apply(extra); err != nil {
		t.Fatal(err)
	}
	if got, want := viewFP(t, d2, "cnt"), viewFP(t, ref, "cnt"); got != want {
		t.Fatalf("post-recovery stream diverges:\n got  %s\n want %s", got, want)
	}
}

// Checkpoints must truncate replay: recovery loads the checkpoint and
// replays only the tail, ending in the same state.
func TestCheckpointThenTailReplay(t *testing.T) {
	fs := wal.NewMemFS()
	d, err := Open(testCatalog(), Options{Durability: durOpts(fs)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CreateViewSQL(d, "cnt", durSQL, ViewOptions{}); err != nil {
		t.Fatal(err)
	}
	batches := durBatches()
	applyN(t, d, batches[:3])
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	applyN(t, d, batches[3:])
	wantFP := viewFP(t, d, "cnt")
	d.Close()

	d2, err := Open(testCatalog(), Options{Durability: durOpts(fs)})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	info := d2.Recovery()
	if info == nil || !info.FromCheckpoint {
		t.Fatalf("recovery info %+v, want checkpoint", info)
	}
	if info.CheckpointApplied != 3 || info.ReplayedBatches != 2 {
		t.Errorf("checkpoint at %d + %d replayed, want 3 + 2", info.CheckpointApplied, info.ReplayedBatches)
	}
	if got := viewFP(t, d2, "cnt"); got != wantFP {
		t.Fatalf("checkpoint recovery diverges:\n got  %s\n want %s", got, wantFP)
	}
	if d2.Applied() != uint64(len(batches)) {
		t.Errorf("applied = %d, want %d", d2.Applied(), len(batches))
	}
}

// Automatic checkpoints fire on the configured cadence.
func TestAutoCheckpoint(t *testing.T) {
	fs := wal.NewMemFS()
	opts := durOpts(fs)
	opts.CheckpointEvery = 2
	d, err := Open(testCatalog(), Options{Durability: opts})
	if err != nil {
		t.Fatal(err)
	}
	applyN(t, d, durBatches()) // 5 batches -> checkpoints after 2 and 4
	d.Close()

	d2, err := Open(testCatalog(), Options{Durability: durOpts(fs)})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	info := d2.Recovery()
	if info == nil || !info.FromCheckpoint || info.CheckpointApplied != 4 {
		t.Fatalf("recovery info %+v, want checkpoint at applied=4", info)
	}
	if info.ReplayedBatches != 1 {
		t.Errorf("replayed %d batches, want 1", info.ReplayedBatches)
	}
	if d2.Applied() != 5 {
		t.Errorf("applied = %d, want 5", d2.Applied())
	}
}

// Dropped views stay dropped after recovery; drops logged mid-stream replay
// at their position.
func TestDropViewSurvivesRestart(t *testing.T) {
	fs := wal.NewMemFS()
	d, err := Open(testCatalog(), Options{Durability: durOpts(fs)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec("CREATE VIEW cnt AS " + durSQL); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec("CREATE VIEW cnt2 AS " + durSQL); err != nil {
		t.Fatal(err)
	}
	applyN(t, d, durBatches()[:2])
	if _, err := d.Exec("DROP VIEW cnt2"); err != nil {
		t.Fatal(err)
	}
	applyN(t, d, durBatches()[2:])
	d.Close()

	d2, err := Open(testCatalog(), Options{Durability: durOpts(fs)})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if !d2.HasView("cnt") || d2.HasView("cnt2") {
		t.Fatalf("recovered views %v, want just cnt", d2.Views())
	}
}

// Satellite: a failure injected after the WAL append but before the view
// fan-out completes must leave the applied counter, the statistics, and the
// published epoch untouched — no half-applied epoch is ever observable.
func TestApplyMidFanoutFailureConsistency(t *testing.T) {
	fs := wal.NewMemFS()
	d, err := Open(testCatalog(), Options{Durability: durOpts(fs)})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := CreateViewSQL(d, "cnt", durSQL, ViewOptions{}); err != nil {
		t.Fatal(err)
	}
	applyN(t, d, durBatches()[:2])

	// Inject the failure through a store observer attached BEFORE the point
	// views would see the batch on the next Apply: the store fans out in
	// attach order, so making the failing observer error first models an
	// engine-side fault mid-apply.
	boom := errors.New("boom")
	fail := true
	d.store.Attach("fault", nil, func([]data.BaseUpdate) error {
		if fail {
			return boom
		}
		return nil
	})
	// Re-attach the view after the failing observer so the fault hits
	// before any view advances.
	d.store.Detach("cnt")
	d.mu.RLock()
	v := d.views["cnt"]
	d.mu.RUnlock()
	d.store.Attach("cnt", v.queryRels(), v.observe)

	preApplied := d.Applied()
	preEpoch := d.Epoch()
	preFP := viewFP(t, d, "cnt")
	preStats := d.ViewStatsOf("cnt")
	preLSN, _ := d.WALStats()

	if err := d.Apply([]Update{Insert("R", tup(7, 7)), Insert("S", tup(7, 70))}); !errors.Is(err, boom) {
		t.Fatalf("Apply returned %v, want injected fault", err)
	}

	if d.Applied() != preApplied {
		t.Errorf("applied advanced to %d on failed batch", d.Applied())
	}
	e := d.Epoch()
	if e.Seq != preEpoch.Seq || e.Applied != preEpoch.Applied {
		t.Errorf("epoch advanced to seq=%d applied=%d on failed batch", e.Seq, e.Applied)
	}
	if got := viewFP(t, d, "cnt"); got != preFP {
		t.Errorf("published view contents changed on failed batch")
	}
	if st := d.ViewStatsOf("cnt"); st.Batches != preStats.Batches || st.Keys != preStats.Keys {
		t.Errorf("view stats advanced on failed batch: %+v -> %+v", preStats, st)
	}
	// Log-first ordering: the batch WAS logged (it precedes the fan-out),
	// so recovery replays it — the log is the source of truth.
	if lsn, _ := d.WALStats(); lsn != preLSN+1 {
		t.Errorf("WAL LSN %d, want %d (batch logged before fan-out)", lsn, preLSN+1)
	}
}

// Satellite: a WAL append failure must surface from Apply without advancing
// the epoch or diverging any view, and the log refuses further appends.
func TestApplyWALFailureConsistency(t *testing.T) {
	mem := wal.NewMemFS()
	ffs := wal.NewFaultFS(mem)
	opts := durOpts(ffs)
	d, err := Open(testCatalog(), Options{Durability: opts})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := CreateViewSQL(d, "cnt", durSQL, ViewOptions{}); err != nil {
		t.Fatal(err)
	}
	applyN(t, d, durBatches()[:2])

	preApplied := d.Applied()
	preEpoch := d.Epoch()
	preFP := viewFP(t, d, "cnt")

	ffs.CrashAfterBytes(5) // tear the next append mid-record
	if err := d.Apply([]Update{Insert("R", tup(8, 8))}); !errors.Is(err, wal.ErrInjected) {
		t.Fatalf("Apply returned %v, want injected WAL failure", err)
	}
	if d.Applied() != preApplied || d.Epoch().Seq != preEpoch.Seq {
		t.Error("state advanced past a failed WAL append")
	}
	if got := viewFP(t, d, "cnt"); got != preFP {
		t.Error("view contents diverged past a failed WAL append")
	}
	// The log is poisoned: subsequent appends surface ErrClosed.
	if err := d.Apply([]Update{Insert("R", tup(9, 9))}); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("Apply after WAL failure returned %v, want ErrClosed", err)
	}

	// Recovery from the survivor bytes: only the two acknowledged batches.
	mem.Crash()
	d2, err := Open(testCatalog(), Options{Durability: durOpts(mem)})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Applied() != 2 {
		t.Fatalf("recovered applied = %d, want 2", d2.Applied())
	}
	if got := viewFP(t, d2, "cnt"); got != preFP {
		t.Fatalf("recovered view diverges:\n got  %s\n want %s", got, preFP)
	}
}

// Typed views cannot be persisted (their lift functions are code, not
// data); recovery proceeds without them and the caller re-creates.
func TestTypedViewNotPersisted(t *testing.T) {
	fs := wal.NewMemFS()
	d, err := Open(testCatalog(), Options{Durability: durOpts(fs)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CreateView[int64](d, "typed", testQuery("typed", "A"), ring.Int{}, countLift, ViewOptions{}); err != nil {
		t.Fatal(err)
	}
	applyN(t, d, durBatches()[:2])
	d.Close()

	d2, err := Open(testCatalog(), Options{Durability: durOpts(fs)})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.HasView("typed") {
		t.Fatal("typed view unexpectedly persisted")
	}
	// Backfill equivalence: re-creating it now equals a from-the-start run.
	if _, err := CreateView[int64](d2, "typed", testQuery("typed", "A"), ring.Int{}, countLift, ViewOptions{}); err != nil {
		t.Fatal(err)
	}
	ref, err := Open(testCatalog(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := CreateView[int64](ref, "typed", testQuery("typed", "A"), ring.Int{}, countLift, ViewOptions{}); err != nil {
		t.Fatal(err)
	}
	applyN(t, ref, durBatches()[:2])
	got := fpEntries(SnapshotOf[int64](d2.Epoch(), "typed").Result().SortedEntries())
	want := fpEntries(SnapshotOf[int64](ref.Epoch(), "typed").Result().SortedEntries())
	if got != want {
		t.Fatalf("re-created typed view diverges:\n got  %s\n want %s", got, want)
	}
}

// Durability disabled: Checkpoint errors cleanly, WALStats reports off.
func TestDurabilityDisabled(t *testing.T) {
	d, err := Open(testCatalog(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Checkpoint(); err == nil {
		t.Error("Checkpoint without durability should fail")
	}
	if _, on := d.WALStats(); on {
		t.Error("WALStats reports enabled without durability")
	}
	if d.Recovery() != nil {
		t.Error("Recovery non-nil without durability")
	}
}

// fsync=never loses unsynced batches on crash but recovery still lands on a
// consistent earlier prefix — never a torn or half-applied state.
func TestFsyncNeverCrashLosesTailOnly(t *testing.T) {
	fs := wal.NewMemFS()
	opts := &DurabilityOptions{Dir: "wal", FS: fs, Fsync: wal.FsyncNever}
	d, err := Open(testCatalog(), Options{Durability: opts})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CreateViewSQL(d, "cnt", durSQL, ViewOptions{}); err != nil {
		t.Fatal(err)
	}
	batches := durBatches()
	applyN(t, d, batches[:3])
	if err := d.log.Sync(); err != nil { // make the prefix durable
		t.Fatal(err)
	}
	applyN(t, d, batches[3:]) // unsynced: lost on crash
	fs.Crash()

	d2, err := Open(testCatalog(), Options{Durability: opts})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Applied() != 3 {
		t.Fatalf("recovered applied = %d, want the 3 synced batches", d2.Applied())
	}
	// Identical to an uninterrupted run over the same 3-batch prefix.
	ref, err := Open(testCatalog(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := CreateViewSQL(ref, "cnt", durSQL, ViewOptions{}); err != nil {
		t.Fatal(err)
	}
	applyN(t, ref, batches[:3])
	if got, want := viewFP(t, d2, "cnt"), viewFP(t, ref, "cnt"); got != want {
		t.Fatalf("recovered prefix diverges:\n got  %s\n want %s", got, want)
	}
}

// Exhaustive per-batch restart: stop after every batch count, recover, and
// compare against an uninterrupted oracle at the same prefix.
func TestRecoveryEveryBatchPrefix(t *testing.T) {
	batches := durBatches()
	for n := 0; n <= len(batches); n++ {
		t.Run(fmt.Sprintf("prefix=%d", n), func(t *testing.T) {
			fs := wal.NewMemFS()
			d, err := Open(testCatalog(), Options{Durability: durOpts(fs)})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := CreateViewSQL(d, "cnt", durSQL, ViewOptions{}); err != nil {
				t.Fatal(err)
			}
			applyN(t, d, batches[:n])
			d.Close()

			d2, err := Open(testCatalog(), Options{Durability: durOpts(fs)})
			if err != nil {
				t.Fatal(err)
			}
			defer d2.Close()

			ref, err := Open(testCatalog(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			if _, err := CreateViewSQL(ref, "cnt", durSQL, ViewOptions{}); err != nil {
				t.Fatal(err)
			}
			applyN(t, ref, batches[:n])

			if d2.Applied() != uint64(n) {
				t.Fatalf("recovered applied = %d, want %d", d2.Applied(), n)
			}
			if got, want := viewFP(t, d2, "cnt"), viewFP(t, ref, "cnt"); got != want {
				t.Fatalf("prefix %d diverges:\n got  %s\n want %s", n, got, want)
			}
		})
	}
}
