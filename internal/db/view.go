package db

import (
	"fmt"
	"reflect"
	"time"

	"fivm/internal/data"
	"fivm/internal/ivm"
	"fivm/internal/query"
	"fivm/internal/ring"
	"fivm/internal/serve"
	"fivm/internal/vorder"
)

// ViewOptions configures one registered view.
type ViewOptions struct {
	// Order supplies a fresh variable order per maintainer instance (orders
	// hold per-query state; with Workers > 1 every shard needs its own).
	// Nil lets the cost-based optimizer choose, seeded from the DB's shared
	// statistics at creation time.
	Order func() *vorder.Order
	// Workers > 1 maintains the view with the sharded parallel engine over
	// that many shards (clamped to the host's cores).
	Workers int
	// Updatable restricts which base relations this view expects deltas
	// from (ivm.Options.Updatable); empty means all of the query's.
	Updatable []string
	// ComposeChains, CostMaterialize, and AutoReoptimize are the engine's
	// corresponding options.
	ComposeChains   bool
	CostMaterialize bool
	AutoReoptimize  bool
}

// View is the typed handle of one registered view: its maintainer plus the
// conversion machinery that turns shared base deltas into ring payloads.
// Reads go through Snapshot/Reader (any goroutine); everything else is
// maintenance-goroutine only.
type View[P any] struct {
	db   *DB
	name string
	q    query.Query
	ring ring.Ring[P]
	m    ivm.Maintainer[P]

	ringKey any      // conversion-sharing identity: the ring value, or a per-view sentinel
	rels    []string // the query's relations (backfill set)
	updRels []string // relations observed for deltas (Updatable or all)
	scratch []ivm.NamedDelta[P]
	seen    map[string]bool // per-observe relation dedup, reused across batches

	vstats ViewStats
}

// convCache shares converted deltas across views: within one applied batch,
// every view over the same payload ring receives the identical delta
// relation for a given base relation, so the conversion (key re-encoding and
// payload lifting) runs once per (ring, relation) instead of once per view.
// Entries persist across batches as cleared scratch; seq tags which batch a
// conversion belongs to.
type convCache struct {
	m   map[convKey]*convEntry
	seq uint64
}

// convKey identifies a shared conversion: the ring VALUE (not just its
// type — a parameterized ring with different field values must not share)
// and the base relation. Rings whose dynamic type is not comparable get a
// per-view sentinel key instead, opting out of sharing.
type convKey struct {
	ring any
	rel  string
}

type convEntry struct {
	rel any // *data.Relation[P]
	seq uint64
}

// CreateView registers a maintained view under name: a group-by aggregate
// query over the DB's base relations with its own payload ring and lifting.
// The view is backfilled from the current base relations — creating it
// mid-stream yields exactly the state it would have had from the start — and
// begins receiving every subsequent Apply. A fresh cross-view epoch carrying
// it is published before CreateView returns.
//
// CreateView is a package function rather than a method because each view
// carries its own payload type (Go methods cannot add type parameters).
func CreateView[P any](d *DB, name string, q query.Query, r ring.Ring[P], lift data.LiftFunc[P], opts ViewOptions) (*View[P], error) {
	if name == "" {
		return nil, fmt.Errorf("db: empty view name")
	}
	if err := d.writable(); err != nil {
		return nil, err
	}
	if d.HasView(name) {
		return nil, fmt.Errorf("db: view %q already exists", name)
	}
	if len(q.Rels) == 0 {
		return nil, fmt.Errorf("db: view %q query has no relations", name)
	}
	for _, rd := range q.Rels {
		sch, ok := d.store.Schema(rd.Name)
		if !ok {
			return nil, fmt.Errorf("db: view %q references unknown relation %q", name, rd.Name)
		}
		if !sch.SameSet(rd.Schema) {
			return nil, fmt.Errorf("db: view %q declares %q with schema %v, catalog has %v",
				name, rd.Name, rd.Schema, sch)
		}
	}

	factory := func() (ivm.Maintainer[P], error) {
		var o *vorder.Order
		if opts.Order != nil {
			o = opts.Order()
		}
		eopts := ivm.Options[P]{
			Updatable:       opts.Updatable,
			ComposeChains:   opts.ComposeChains,
			CostMaterialize: opts.CostMaterialize,
			AutoReoptimize:  opts.AutoReoptimize,
			// The DB observes the coalesced stream once for every view, so
			// per-view engines plan from it and then stop collecting
			// (unless adaptive re-optimization needs a live feed).
			NoLiveStats: !opts.AutoReoptimize,
		}
		if d.stats != nil {
			// Seed self-planning and the cost policies from the DB's shared
			// collector; every maintainer instance owns its clone.
			eopts.Stats = d.stats.Clone()
		}
		return ivm.New[P](q, o, r, lift, eopts)
	}
	var m ivm.Maintainer[P]
	var err error
	if opts.Workers > 1 {
		m, err = ivm.NewParallel[P](q, r, opts.Workers, factory)
	} else {
		m, err = factory()
	}
	if err != nil {
		return nil, err
	}

	v := &View[P]{
		db:      d,
		name:    name,
		q:       q,
		ring:    r,
		m:       m,
		rels:    q.RelNames(),
		updRels: q.RelNames(),
	}
	if rt := reflect.TypeOf(r); rt != nil && rt.Comparable() {
		v.ringKey = r
	} else {
		v.ringKey = v // unique sentinel: no cross-view sharing for this ring
	}
	if len(opts.Updatable) > 0 {
		v.updRels = opts.Updatable
	}

	// Backfill from the shared base store: lift each base relation's
	// multiplicities into the view's ring and hand the fresh relation over
	// owned, so Init adopts it without another copy.
	for _, rel := range v.rels {
		base := d.store.Base(rel)
		if base == nil || base.Len() == 0 {
			continue
		}
		conv := data.NewRelation[P](r, base.Schema())
		conv.Reserve(base.Len())
		fillLifted(conv, base, r)
		if err := loadOwned(m, rel, conv); err != nil {
			closeMaintainer(m)
			return nil, err
		}
	}
	if err := m.Init(); err != nil {
		closeMaintainer(m)
		return nil, err
	}
	// Enable snapshot publication: every applied batch now publishes an
	// epoch, which the DB's cross-view Epoch picks up.
	m.Snapshot()

	d.registerView(v)
	return v, nil
}

// loadOwned hands a relation to the maintainer with ownership transfer when
// it supports adoption (Engine and Parallel do), falling back to Load.
func loadOwned[P any](m ivm.Maintainer[P], rel string, r *data.Relation[P]) error {
	if a, ok := m.(ivm.BaseAdopter[P]); ok {
		return a.LoadOwned(rel, r)
	}
	return m.Load(rel, r)
}

func closeMaintainer(m any) {
	if c, ok := m.(interface{ Close() error }); ok {
		c.Close()
	}
}

// fillLifted writes src's tuples into dst with payload n·1 in dst's ring,
// sharing src's encoded keys (no re-encoding on the fan-out path).
func fillLifted[P any](dst *data.Relation[P], src *data.Relation[int64], r ring.Ring[P]) {
	one := r.One()
	negOne := r.Neg(one)
	data.LiftFrom(dst, src, func(n int64) P {
		switch n {
		case 1:
			return one
		case -1:
			return negOne
		default:
			return scalePayload(r, n)
		}
	})
}

// scalePayload returns n·1 in the ring (n != 0), by binary doubling on Add
// so high multiplicities cost O(log n) ring operations.
func scalePayload[P any](r ring.Ring[P], n int64) P {
	neg := n < 0
	if neg {
		n = -n
	}
	var acc P
	have := false
	pow := r.One() // 2^i · 1
	for n > 0 {
		if n&1 == 1 {
			if have {
				acc = r.Add(acc, pow)
			} else {
				acc, have = pow, true
			}
		}
		if n >>= 1; n > 0 {
			pow = r.Add(pow, pow)
		}
	}
	if neg {
		acc = r.Neg(acc)
	}
	return acc
}

// --- the ring-erased side the DB drives -------------------------------------

func (v *View[P]) viewName() string    { return v.name }
func (v *View[P]) queryRels() []string { return v.updRels }
func (v *View[P]) viewCount() int      { return v.m.ViewCount() }
func (v *View[P]) memoryBytes() int    { return v.m.MemoryBytes() }
func (v *View[P]) stats() ViewStats    { return v.vstats }

func (v *View[P]) closeView() { closeMaintainer(v.m) }

// observe is the view's base-store hook: lift the batch's raw updates into
// this ring — once per distinct ring across all of the DB's views, via the
// shared conversion cache — and drive the maintainer once.
func (v *View[P]) observe(batch []data.BaseUpdate) error {
	start := time.Now()
	v.scratch = v.scratch[:0]
	if v.seen == nil {
		v.seen = make(map[string]bool, 4)
	}
	clear(v.seen)
	tuples := uint64(0)
	for _, u := range batch {
		// The first occurrence of each relation converts every update of
		// that relation in the batch (coalesced in-ring); later occurrences
		// are already folded in.
		if !v.seen[u.Rel] {
			v.seen[u.Rel] = true
			v.scratch = append(v.scratch, ivm.NamedDelta[P]{Rel: u.Rel, Delta: v.convert(u.Rel, batch)})
		}
		tuples += uint64(len(u.Tuples))
	}
	err := v.m.ApplyDeltas(v.scratch)
	v.vstats.Batches++
	v.vstats.Keys += tuples
	v.vstats.Maintain += time.Since(start)
	return err
}

// convert lifts one relation's updates of the batch into the view's ring,
// sharing the result with every other view over the same ring type via the
// DB's conversion cache.
func (v *View[P]) convert(rel string, batch []data.BaseUpdate) *data.Relation[P] {
	if v.db.conv.m == nil {
		v.db.conv.m = make(map[convKey]*convEntry)
	}
	key := convKey{ring: v.ringKey, rel: rel}
	e := v.db.conv.m[key]
	if e != nil && e.seq == v.db.conv.seq {
		return e.rel.(*data.Relation[P])
	}
	n := 0
	for _, u := range batch {
		if u.Rel == rel {
			n += len(u.Tuples)
		}
	}
	var out *data.Relation[P]
	if e == nil {
		sch, _ := v.db.store.Schema(rel)
		out = data.NewRelation[P](v.ring, sch)
		out.RecycleCleared()
		e = &convEntry{rel: out}
		v.db.conv.m[key] = e
	} else {
		out = e.rel.(*data.Relation[P])
		out.Clear()
	}
	out.Reserve(n)
	one := v.ring.One()
	negOne := v.ring.Neg(one)
	for _, u := range batch {
		if u.Rel != rel {
			continue
		}
		var p P
		switch u.Mult {
		case 0, 1:
			p = one
		case -1:
			p = negOne
		default:
			p = scalePayload(v.ring, u.Mult)
		}
		for _, t := range u.Tuples {
			out.Merge(t, p)
		}
	}
	e.seq = v.db.conv.seq
	return out
}

// --- typed reads -------------------------------------------------------------

// Name returns the view's registered name.
func (v *View[P]) Name() string { return v.name }

// Query returns the view's defining query.
func (v *View[P]) Query() query.Query { return v.q }

// Maintainer exposes the underlying maintenance strategy (for Explain-style
// introspection). Maintenance-goroutine only.
func (v *View[P]) Maintainer() ivm.Maintainer[P] { return v.m }

// Snapshot returns the view's latest published snapshot (safe from any
// goroutine). For a set of views consistent at one applied batch, go through
// DB.Epoch and SnapshotOf instead.
func (v *View[P]) Snapshot() *ivm.ViewSnapshot[P] { return v.m.Snapshot() }

// Reader returns a serve.Reader pinned to the view's snapshot in the DB's
// latest cross-view epoch (falling back to the view's own latest snapshot if
// the epoch predates the view). One reader per reading goroutine.
func (v *View[P]) Reader() *serve.Reader[P] {
	return serve.NewReaderAt[P](v.m, SnapshotOf[P](v.db.Epoch(), v.name))
}

// SnapshotOf returns the named view's snapshot in a cross-view epoch, or nil
// when the epoch does not carry it (unknown name, dropped view, or a payload
// type mismatch).
func SnapshotOf[P any](e *Epoch, view string) *ivm.ViewSnapshot[P] {
	if e == nil {
		return nil
	}
	s, _ := e.snaps[view].(*ivm.ViewSnapshot[P])
	return s
}

// ReaderFor returns a serve.Reader over the named view pinned at the DB's
// latest cross-view epoch. Safe from any goroutine; Refresh advances through
// the view's live publications. The payload type must match the view's.
func ReaderFor[P any](d *DB, view string) (*serve.Reader[P], error) {
	d.mu.RLock()
	rv := d.views[view]
	d.mu.RUnlock()
	if rv == nil {
		return nil, fmt.Errorf("db: unknown view %q", view)
	}
	v, ok := rv.(*View[P])
	if !ok {
		return nil, fmt.Errorf("db: view %q has payload type %T, not the requested one", view, rv)
	}
	return serve.NewReaderAt[P](v.m, SnapshotOf[P](d.Epoch(), view)), nil
}

// latestSnapshot implements registeredView.
func (v *View[P]) latestSnapshot() any { return v.m.Snapshot() }
