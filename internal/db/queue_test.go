package db

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestApplyQueueAppliesInOrder(t *testing.T) {
	d, err := Open(testCatalog(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	q := NewApplyQueue(d, 8)
	defer q.Close()

	if err := q.Do(func(d *DB) error {
		_, err := d.Exec("CREATE VIEW sums AS SELECT A, SUM(B * C) FROM R NATURAL JOIN S GROUP BY A")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := int64(1); i <= 20; i++ {
		wg.Add(1)
		go func(i int64) {
			defer wg.Done()
			if err := q.Apply([]Update{Insert("R", tup(i, i)), Insert("S", tup(i, 1))}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := d.Epoch().Applied; got != 20 {
		t.Fatalf("applied %d, want 20", got)
	}
	s := SnapshotOf[float64](d.Epoch(), "sums")
	if s == nil || s.Result().Len() != 20 {
		t.Fatalf("view has %v groups", s)
	}
}

// TryApply sheds load when the queue is full instead of blocking.
func TestApplyQueueBackpressure(t *testing.T) {
	d, err := Open(testCatalog(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	q := NewApplyQueue(d, 1)
	defer q.Close()

	// Stall the maintenance goroutine so the queue fills.
	release := make(chan struct{})
	started := make(chan struct{})
	stallDone := make(chan error, 1)
	go func() {
		stallDone <- q.Do(func(*DB) error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started

	// Fill the single slot (the filler blocks on its result until the worker
	// resumes), then the next TryApply must fail fast.
	fillDone := make(chan error, 1)
	go func() { fillDone <- q.TryApply([]Update{Insert("R", tup(1, 1))}) }()
	for q.Len() < q.Cap() {
		time.Sleep(time.Millisecond)
	}
	if err := q.TryApply([]Update{Insert("R", tup(2, 2))}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	close(release)
	if err := <-stallDone; err != nil {
		t.Fatal(err)
	}
	if err := <-fillDone; err != nil {
		t.Fatal(err)
	}
	if d.Epoch().Applied != 1 {
		t.Fatalf("applied %d, want 1", d.Epoch().Applied)
	}
}

func TestApplyQueueCloseDrains(t *testing.T) {
	d, err := Open(testCatalog(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	q := NewApplyQueue(d, 16)

	res := make(chan error, 10)
	for i := int64(0); i < 10; i++ {
		i := i
		go func() { res <- q.Apply([]Update{Insert("R", tup(i, i))}) }()
	}
	// Give the senders a moment to enqueue, then close: everything already
	// queued must still apply.
	time.Sleep(10 * time.Millisecond)
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	closedErrs := 0
	for i := 0; i < 10; i++ {
		if err := <-res; err != nil {
			if !errors.Is(err, ErrQueueClosed) {
				t.Fatal(err)
			}
			closedErrs++
		}
	}
	if int(d.Applied())+closedErrs != 10 {
		t.Fatalf("applied %d + rejected %d != 10", d.Applied(), closedErrs)
	}
	// After close, enqueues are rejected outright.
	if err := q.TryApply([]Update{Insert("R", tup(99, 99))}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("post-close TryApply: %v", err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
}
