// Package db is the database-style top level of F-IVM: one DB owns the base
// relations, maintains any number of registered views over them, and serves
// epoch-consistent reads — the paper's "one view-tree machinery for every
// analytical task" turned into a system surface.
//
// A DB inverts the library's original data ownership. Instead of every
// maintainer privately ingesting (and copying) the same update stream, the
// DB ingests each delta batch exactly once into a shared base-relation store
// (data.BaseStore) and fans the coalesced per-relation deltas out to every
// registered view through the store's observe hooks. Views are registered
// with CreateView — each with its own payload ring, lifting, variable order
// (auto-chosen by the cost-based optimizer when omitted) and maintenance
// strategy (a sharded parallel engine when Workers > 1) — and may be created
// or dropped mid-stream: a late CreateView backfills from the current base
// relations, so its state is exactly as if it had been registered from the
// start.
//
// After every applied batch the DB publishes one cross-view Epoch: an
// immutable set of per-view snapshots all reflecting the same prefix of the
// update stream. Readers pin an Epoch (or a per-view serve.Reader on one)
// and read lock-free while maintenance streams on.
//
// Concurrency contract: Open, CreateView, Apply, DropView, and Exec are
// single-writer — call them from one maintenance goroutine. Epoch, the
// package-level snapshot/reader accessors, and everything reachable from an
// Epoch are safe from any goroutine at any time.
package db

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fivm/internal/data"
	"fivm/internal/sqlparse"
	"fivm/internal/wal"
)

// Catalog maps base relation names to their schemas; it is the same type
// the SQL front-end consumes.
type Catalog = sqlparse.Catalog

// Options configures a DB.
type Options struct {
	// DisableStats turns off the shared statistics collector. Views created
	// without an explicit variable order then plan from structural defaults
	// instead of observed cardinalities, and AutoReoptimize views start
	// cold. The collector costs one observation per stored base tuple per
	// batch; leave it on unless ingest is the only thing that matters.
	DisableStats bool
	// Durability, when non-nil, enables the write-ahead log: batches are
	// logged before they advance any in-memory state, SQL views persist in
	// the catalog, and Open recovers checkpoint + tail from the directory.
	Durability *DurabilityOptions
	// Follower opens the DB in replica mode: direct Apply / CreateView /
	// DropView / Exec are rejected, and state advances only through
	// ApplyReplicated with records shipped from a primary's WAL. A durable
	// follower re-logs each record to its own WAL under the primary's LSN
	// sequence, so restart resumes from the local log.
	Follower bool
	// Bootstrap seeds an in-memory follower from a transferred primary
	// checkpoint (Durability must be nil; durable followers materialize the
	// shipped checkpoint file into their WAL directory instead).
	Bootstrap *wal.Checkpoint
}

// Update is one element of an applied batch: tuples of a base relation with
// a signed multiplicity (negative deletes; zero defaults to +1). Tuple
// storage is adopted by the DB — the shared store's log and the views keep
// the slices — so callers must not mutate tuples (or reuse their backing
// arrays) after Apply.
type Update struct {
	Rel    string
	Tuples []data.Tuple
	// Mult is the signed multiplicity applied per tuple; 0 means +1.
	Mult int64
}

// Insert builds an insertion update.
func Insert(rel string, tuples ...data.Tuple) Update {
	return Update{Rel: rel, Tuples: tuples, Mult: 1}
}

// Delete builds a deletion update.
func Delete(rel string, tuples ...data.Tuple) Update {
	return Update{Rel: rel, Tuples: tuples, Mult: -1}
}

// DB is the top-level database: shared base relations, registered maintained
// views, and cross-view epoch publication.
type DB struct {
	opts  Options
	store *data.BaseStore
	stats *data.Stats

	// registry of views; mu guards it for cross-goroutine readers
	// (ReaderFor), while all mutations stay on the maintenance goroutine.
	mu    sync.RWMutex
	views map[string]registeredView
	order []string

	cur     atomic.Pointer[Epoch]
	seq     uint64 // published epochs (bumped by Apply and view DDL)
	applied uint64 // applied update batches

	conv convCache
	// convSeq tags conversion-cache entries per fan-out attempt. It is
	// deliberately independent of the applied counter: a batch that fails
	// mid-fan-out does not advance applied, and a retry must not reuse the
	// failed attempt's cached conversions.
	convSeq uint64

	// Apply scratch, reused across calls (the store copies what it keeps).
	baseBatch []data.BaseUpdate

	// Durability state (nil/zero when Options.Durability is nil).
	log       *wal.Log
	ckptEvery uint64
	sinceCkpt uint64
	sqlViews  map[string]wal.ViewDef // persisted catalog: SQL-defined views
	recovery  *RecoveryInfo
	// recovering suppresses WAL writes while Open replays the log (replayed
	// operations are already in it); closing suppresses drop logging while
	// Close tears views down (they must survive restart).
	recovering bool
	closing    bool

	// Follower-mode state: replicating lifts the read-only guard while
	// ApplyReplicated drives a shipped record through the normal write paths
	// (maintenance goroutine only); replLSN is the last replicated LSN,
	// readable from any goroutine (the replication handshake reports it).
	replicating bool
	replLSN     atomic.Uint64
}

// registeredView is the ring-erased handle the DB keeps per view; the typed
// side lives in View[P].
type registeredView interface {
	viewName() string
	queryRels() []string
	observe(batch []data.BaseUpdate) error
	latestSnapshot() any // *ivm.ViewSnapshot[P]
	stats() ViewStats
	viewCount() int
	memoryBytes() int
	closeView()
}

// Open creates a DB over the cataloged base relations (registered in sorted
// name order, so iteration order is deterministic). The catalog is fixed at
// Open; views come and go afterwards via CreateView / DropView.
//
// With Options.Durability set, Open also opens the write-ahead log and
// recovers whatever the directory holds: the latest valid checkpoint seeds
// the base relations, persisted SQL views are re-created through the
// ordinary backfill path, and the WAL tail replays batch-by-batch — so the
// recovered epochs are exactly the uninterrupted run's. Recovery() reports
// what was restored.
func Open(cat Catalog, opts Options) (*DB, error) {
	if len(cat) == 0 {
		return nil, fmt.Errorf("db: empty catalog")
	}
	d := &DB{
		opts:  opts,
		store: data.NewBaseStore(),
		views: make(map[string]registeredView),
	}
	names := make([]string, 0, len(cat))
	for name := range cat {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if len(cat[name]) == 0 {
			return nil, fmt.Errorf("db: relation %q has an empty schema", name)
		}
		if err := d.store.Register(name, cat[name]); err != nil {
			return nil, err
		}
	}
	if !opts.DisableStats {
		// Cardinalities, sketches, and delta rates are observed from the
		// coalesced batch stream in Apply (the store's merged contents are
		// compacted lazily, so there is no eager merge path to hook).
		d.stats = data.NewStats()
	}
	d.publish()
	if du := opts.Durability; du != nil {
		d.sqlViews = make(map[string]wal.ViewDef)
		d.ckptEvery = du.CheckpointEvery
		log, rec, err := wal.Open(wal.Options{
			Dir:          du.Dir,
			FS:           du.FS,
			Fsync:        du.Fsync,
			SyncInterval: du.SyncInterval,
			SegmentBytes: du.SegmentBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("db: open wal: %w", err)
		}
		d.log = log
		if err := d.recoverFrom(rec); err != nil {
			_ = log.Close()
			return nil, err
		}
	}
	if opts.Follower {
		if opts.Bootstrap != nil {
			if opts.Durability != nil {
				return nil, fmt.Errorf("db: Bootstrap is for in-memory followers; durable followers recover from their WAL directory")
			}
			if err := d.recoverFrom(&wal.Recovery{Checkpoint: opts.Bootstrap}); err != nil {
				return nil, err
			}
			d.replLSN.Store(opts.Bootstrap.LSN)
		} else if d.log != nil {
			// A restarted durable follower resumes at its local log position;
			// local LSNs mirror the primary's (each shipped record is re-logged
			// under the same sequence).
			d.replLSN.Store(d.log.LSN())
		}
	} else if opts.Bootstrap != nil {
		return nil, fmt.Errorf("db: Bootstrap requires Follower mode")
	}
	return d, nil
}

// Relations returns the base relation names in registration (sorted) order.
func (d *DB) Relations() []string { return d.store.Relations() }

// Schema returns the canonical schema of a base relation.
func (d *DB) Schema(rel string) (data.Schema, bool) { return d.store.Schema(rel) }

// Base returns the shared multiplicity relation of a base relation,
// compacting the store's pending delta log for it first. It is owned by the
// DB: safe to read only from the maintenance goroutine between Apply calls,
// never to mutate.
func (d *DB) Base(rel string) *data.Relation[int64] { return d.store.Base(rel) }

// Stats returns the shared statistics collector (nil when disabled). Owned
// by the maintenance goroutine.
func (d *DB) Stats() *data.Stats { return d.stats }

// Views returns the registered view names in creation order.
func (d *DB) Views() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// HasView reports whether a view is registered.
func (d *DB) HasView(name string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.views[name]
	return ok
}

// ViewStats is a view's cumulative maintenance accounting inside this DB.
type ViewStats struct {
	// Batches is the number of applied batches that reached the view.
	Batches uint64
	// Keys is the total number of update tuples fanned to the view (raw
	// count, before in-ring coalescing; duplicates and deletions included).
	Keys uint64
	// Maintain is the total wall time spent maintaining the view (delta
	// conversion plus strategy propagation plus snapshot publication).
	Maintain time.Duration
	// ViewCount and MemoryBytes describe the materialized state.
	ViewCount   int
	MemoryBytes int
}

// ViewStatsOf returns a view's maintenance accounting (zero value for
// unknown names). Maintenance-goroutine only: it reads live state.
func (d *DB) ViewStatsOf(name string) ViewStats {
	d.mu.RLock()
	v := d.views[name]
	d.mu.RUnlock()
	if v == nil {
		return ViewStats{}
	}
	st := v.stats()
	st.ViewCount = v.viewCount()
	st.MemoryBytes = v.memoryBytes()
	return st
}

// Applied returns the number of update batches applied so far.
func (d *DB) Applied() uint64 { return d.applied }

// MemoryBytes estimates the bytes held by the shared base store plus every
// registered view's materialized state. Maintenance-goroutine only.
func (d *DB) MemoryBytes() int {
	total := d.store.MemoryBytes()
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, v := range d.views {
		total += v.memoryBytes()
	}
	return total
}

// Apply ingests one batch of updates: it is validated, logged to the WAL
// (when durability is enabled — before any in-memory state advances, so a
// failed or torn append changes nothing and recovery never sees a state the
// log does not), appended to the shared base store's update log exactly once
// (tuple storage shared, no per-tuple work; the merged bases compact lazily
// on demand), fanned out to every registered view — which lift it into their
// rings once per distinct ring, not once per view — and one cross-view Epoch
// is published at the end. It is the DB's only write path; deletions are
// updates with negative Mult.
//
// Failure atomicity: on any error the applied counter, the statistics, and
// the published epoch are untouched — a reader on serve.Reader can never
// observe a half-applied epoch. A WAL append error additionally poisons the
// log (ErrClosed on further appends): the on-disk tail is no longer trusted,
// and the caller should close and re-open to recover. A view-maintenance
// error mid-fan-out leaves the *unpublished* view states torn (some views
// ahead of others); treat it as fatal and rebuild from the log.
func (d *DB) Apply(batch []Update) error {
	if err := d.writable(); err != nil {
		return err
	}
	d.baseBatch = d.baseBatch[:0]
	for _, u := range batch {
		if len(u.Tuples) == 0 {
			continue
		}
		sch, ok := d.store.Schema(u.Rel)
		if !ok {
			return fmt.Errorf("db: unknown relation %q", u.Rel)
		}
		// Validate arity up front, so a rejected batch leaves the log, the
		// applied counter, and the statistics untouched.
		for _, t := range u.Tuples {
			if len(t) != len(sch) {
				return fmt.Errorf("db: %q tuple %v does not match schema %v", u.Rel, t, sch)
			}
		}
		d.baseBatch = append(d.baseBatch, data.BaseUpdate{Rel: u.Rel, Tuples: u.Tuples, Mult: u.Mult})
	}
	return d.applyBase(d.baseBatch, true)
}

// applyBase is the shared tail of Apply and WAL replay: log (optional), fan
// out, then — only after full success — advance the counters, observe the
// statistics, and publish the next epoch.
func (d *DB) applyBase(batch []data.BaseUpdate, logIt bool) error {
	if logIt && d.log != nil {
		if err := d.log.AppendBatch(d.applied+1, batch); err != nil {
			return fmt.Errorf("db: wal append: %w", err)
		}
	}
	d.convSeq++
	d.conv.seq = d.convSeq
	// Advance the shared store once, then fan out to the views through the
	// store's observe hooks.
	if err := d.store.ApplyBatch(batch); err != nil {
		return err
	}
	d.applied++
	if d.stats != nil {
		for _, u := range batch {
			sch, _ := d.store.Schema(u.Rel)
			mult := u.Mult
			if mult == 0 {
				mult = 1
			}
			data.ObserveDeltaTuples(d.stats, u.Rel, sch, u.Tuples, mult)
		}
	}
	d.publish()
	if d.ckptEvery > 0 && !d.recovering {
		// The batch above is applied and durable regardless: a checkpoint
		// failure here reports the checkpoint's error, not the batch's.
		if d.sinceCkpt++; d.sinceCkpt >= d.ckptEvery {
			if err := d.Checkpoint(); err != nil {
				return err
			}
		}
	}
	return nil
}

// DropView unregisters a view: it is detached from the base stream, its
// worker pool (if any) is stopped, and the next published Epoch no longer
// carries it. Readers pinned on earlier epochs keep reading their snapshots.
func (d *DB) DropView(name string) error {
	if !d.closing {
		if err := d.writable(); err != nil {
			return err
		}
	}
	d.mu.RLock()
	v := d.views[name]
	d.mu.RUnlock()
	if v == nil {
		return fmt.Errorf("db: unknown view %q", name)
	}
	if d.log != nil && !d.recovering && !d.closing {
		// Log the drop before tearing down, so a crash between the two
		// re-creates and immediately drops rather than resurrecting.
		if err := d.log.AppendDropView(name); err != nil {
			return fmt.Errorf("db: wal append: %w", err)
		}
		delete(d.sqlViews, name)
	}
	d.store.Detach(name)
	v.closeView()
	d.mu.Lock()
	delete(d.views, name)
	for i, n := range d.order {
		if n == name {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	d.mu.Unlock()
	d.publish()
	return nil
}

// Close drops every view (stopping worker pools) without logging the drops
// — the catalog survives restart — and closes the WAL (final sync included).
// The DB must not be used afterwards.
func (d *DB) Close() error {
	d.closing = true
	for _, name := range d.Views() {
		if err := d.DropView(name); err != nil {
			return err
		}
	}
	if d.log != nil {
		return d.log.Close()
	}
	return nil
}

// registerView installs a backfilled view under its name and publishes a
// fresh epoch carrying it.
func (d *DB) registerView(v registeredView) {
	d.mu.Lock()
	d.views[v.viewName()] = v
	d.order = append(d.order, v.viewName())
	d.mu.Unlock()
	d.store.Attach(v.viewName(), v.queryRels(), v.observe)
	d.publish()
}

// publish assembles and swaps in the next cross-view Epoch from every
// registered view's latest snapshot. Called at the end of Open, Apply, and
// view DDL, on the maintenance goroutine.
func (d *DB) publish() {
	d.mu.RLock()
	snaps := make(map[string]any, len(d.views))
	names := make([]string, len(d.order))
	copy(names, d.order)
	for name, v := range d.views {
		snaps[name] = v.latestSnapshot()
	}
	d.mu.RUnlock()
	d.seq++
	d.cur.Store(&Epoch{
		Seq:     d.seq,
		Applied: d.applied,
		At:      time.Now(),
		snaps:   snaps,
		names:   names,
	})
}

// Epoch returns the latest published cross-view epoch: one consistent
// snapshot per registered view, all reflecting the same applied prefix of
// the update stream. Safe from any goroutine; pin it and read lock-free.
func (d *DB) Epoch() *Epoch { return d.cur.Load() }

// Epoch is one published cross-view state: an immutable set of per-view
// snapshots taken after the same applied batch (plus the DDL operations up
// to it). Within one DB, Seq is strictly monotonic.
type Epoch struct {
	// Seq counts published epochs (Apply and view DDL each publish one).
	Seq uint64
	// Applied is the number of update batches this epoch reflects.
	Applied uint64
	// At is the publication wall time.
	At time.Time

	snaps map[string]any
	names []string
}

// Views returns the epoch's view names in creation order (a copy: epochs
// are immutable and shared across goroutines).
func (e *Epoch) Views() []string {
	out := make([]string, len(e.names))
	copy(out, e.names)
	return out
}

// Has reports whether the epoch carries the named view.
func (e *Epoch) Has(name string) bool {
	_, ok := e.snaps[name]
	return ok
}
