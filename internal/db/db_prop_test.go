package db

import (
	"fmt"
	"math/rand"
	"testing"

	"fivm/internal/data"
	"fivm/internal/ivm"
	"fivm/internal/query"
	"fivm/internal/ring"
)

// The DB property: a DB with K registered views over one shared update
// stream must be byte-identical, per view and per epoch, to K independently
// built engines fed the same batches. Exercised for {sequential engine,
// parallel-8} × views over the {Int, Cofactor} (and Float) rings, with
// inserts and deletes; run under -race in CI.

// oracle pairs an independent maintainer with the delta builder replicating
// the DB's multiplicity lifting for its ring.
type oracle[P any] struct {
	m    ivm.Maintainer[P]
	q    query.Query
	ring ring.Ring[P]
}

func (o *oracle[P]) apply(t *testing.T, ups []Update) {
	t.Helper()
	// Coalesce exactly as the DB does: per-relation signed multiplicities,
	// then lift n -> n·1.
	byRel := map[string]*data.Relation[int64]{}
	var order []string
	for _, u := range ups {
		rd, ok := o.q.Rel(u.Rel)
		if !ok {
			continue
		}
		mult := u.Mult
		if mult == 0 {
			mult = 1
		}
		dr := byRel[u.Rel]
		if dr == nil {
			dr = data.NewRelation[int64](ring.Int{}, rd.Schema)
			byRel[u.Rel] = dr
			order = append(order, u.Rel)
		}
		for _, tp := range u.Tuples {
			dr.Merge(tp, mult)
		}
	}
	var batch []ivm.NamedDelta[P]
	for _, rel := range order {
		src := byRel[rel]
		if src.Len() == 0 {
			continue
		}
		d := data.NewRelation[P](o.ring, src.Schema())
		src.Iterate(func(tp data.Tuple, n int64) bool {
			d.Set(tp, scalePayload(o.ring, n))
			return true
		})
		batch = append(batch, ivm.NamedDelta[P]{Rel: rel, Delta: d})
	}
	if err := o.m.ApplyDeltas(batch); err != nil {
		t.Fatal(err)
	}
}

func propCofLift(v string, x data.Value) ring.Triple {
	idx := map[string]int{"A": 0, "B": 1, "C": 2, "D": 3}
	return ring.LiftValue(idx[v], x.AsFloat())
}

func propSumLift(v string, x data.Value) float64 {
	if v == "D" {
		return x.AsFloat()
	}
	return 1
}

// randomUpdates builds one multi-relation batch mixing inserts and deletes.
// Deletes target previously inserted tuples so supports stay sensible.
func randomUpdates(rng *rand.Rand, live map[string][]data.Tuple) []Update {
	rels := []string{"R", "S", "T"}
	n := 1 + rng.Intn(4)
	var out []Update
	for i := 0; i < n; i++ {
		rel := rels[rng.Intn(len(rels))]
		if prev := live[rel]; len(prev) > 0 && rng.Intn(4) == 0 {
			k := rng.Intn(len(prev))
			out = append(out, Delete(rel, prev[k]))
			live[rel] = append(prev[:k:k], prev[k+1:]...)
			continue
		}
		m := 1 + rng.Intn(3)
		ts := make([]data.Tuple, m)
		for j := range ts {
			ts[j] = tup(int64(rng.Intn(5)), int64(rng.Intn(4)))
		}
		out = append(out, Insert(rel, ts...))
		live[rel] = append(live[rel], ts...)
	}
	return out
}

func TestDBMatchesIndependentEngines(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			d, err := Open(testCatalog(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()

			vopts := ViewOptions{Workers: workers}

			// Three views of different rings and group-bys over one stream.
			qCnt, qCof, qSum := testQuery("cnt", "A"), testQuery("cof"), testQuery("sum", "C")
			if _, err := CreateView[int64](d, "cnt", qCnt, ring.Int{}, countLift, vopts); err != nil {
				t.Fatal(err)
			}
			if _, err := CreateView[ring.Triple](d, "cof", qCof, ring.Cofactor{}, propCofLift, vopts); err != nil {
				t.Fatal(err)
			}
			if _, err := CreateView[float64](d, "sum", qSum, ring.Float{}, propSumLift, vopts); err != nil {
				t.Fatal(err)
			}

			// Independent engines with identical configurations.
			oCnt := newOracle[int64](t, qCnt, ring.Int{}, countLift, workers)
			defer closeMaintainer(oCnt.m)
			oCof := newOracle[ring.Triple](t, qCof, ring.Cofactor{}, propCofLift, workers)
			defer closeMaintainer(oCof.m)
			oSum := newOracle[float64](t, qSum, ring.Float{}, propSumLift, workers)
			defer closeMaintainer(oSum.m)

			rng := rand.New(rand.NewSource(int64(workers) * 7919))
			live := map[string][]data.Tuple{}
			for step := 0; step < 40; step++ {
				ups := randomUpdates(rng, live)
				if err := d.Apply(ups); err != nil {
					t.Fatal(err)
				}
				oCnt.apply(t, ups)
				oCof.apply(t, ups)
				oSum.apply(t, ups)

				e := d.Epoch()
				if e.Applied != uint64(step+1) {
					t.Fatalf("epoch applied = %d at step %d", e.Applied, step)
				}
				checkView(t, step, "cnt", SnapshotOf[int64](e, "cnt"), oCnt)
				checkView(t, step, "cof", SnapshotOf[ring.Triple](e, "cof"), oCof)
				checkView(t, step, "sum", SnapshotOf[float64](e, "sum"), oSum)
			}
		})
	}
}

func newOracle[P any](t *testing.T, q query.Query, r ring.Ring[P], lift data.LiftFunc[P], workers int) *oracle[P] {
	t.Helper()
	factory := func() (ivm.Maintainer[P], error) {
		return ivm.New[P](q, nil, r, lift, ivm.Options[P]{Stats: data.NewStats().Clone()})
	}
	var m ivm.Maintainer[P]
	var err error
	if workers > 1 {
		m, err = ivm.NewParallel[P](q, r, workers, factory)
	} else {
		m, err = factory()
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	m.Snapshot()
	return &oracle[P]{m: m, q: q, ring: r}
}

func checkView[P any](t *testing.T, step int, name string, snap *ivm.ViewSnapshot[P], o *oracle[P]) {
	t.Helper()
	if snap == nil {
		t.Fatalf("step %d: no snapshot for %s", step, name)
	}
	got := fpEntries(snap.Result().SortedEntries())
	want := fpEntries(o.m.Snapshot().Result().SortedEntries())
	if got != want {
		t.Fatalf("step %d view %s:\n db    %s\n solo  %s", step, name, got, want)
	}
}

// TestDBBackfillMidStream: a view created after a stream prefix must be
// byte-identical, from its first epoch on, to one registered from the start.
func TestDBBackfillMidStream(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			d, err := Open(testCatalog(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()

			q := testQuery("late", "A")
			o := newOracle[int64](t, q, ring.Int{}, countLift, workers)
			defer closeMaintainer(o.m)

			rng := rand.New(rand.NewSource(42))
			live := map[string][]data.Tuple{}
			var batches [][]Update
			for i := 0; i < 30; i++ {
				batches = append(batches, randomUpdates(rng, live))
			}

			// First half: only the oracle maintains the view; the DB just
			// ingests (no views registered at all).
			for _, ups := range batches[:15] {
				if err := d.Apply(ups); err != nil {
					t.Fatal(err)
				}
				o.apply(t, ups)
			}

			// Mid-stream registration backfills from the shared bases.
			if _, err := CreateView[int64](d, "late", q, ring.Int{}, countLift, ViewOptions{Workers: workers}); err != nil {
				t.Fatal(err)
			}
			checkView(t, 15, "late(backfill)", SnapshotOf[int64](d.Epoch(), "late"), o)

			// Second half: both maintain; identical at every epoch.
			for i, ups := range batches[15:] {
				if err := d.Apply(ups); err != nil {
					t.Fatal(err)
				}
				o.apply(t, ups)
				checkView(t, 15+i, "late", SnapshotOf[int64](d.Epoch(), "late"), o)
			}
		})
	}
}
