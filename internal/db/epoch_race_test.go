package db

import (
	"sync"
	"sync/atomic"
	"testing"

	"fivm/internal/ring"
)

// TestDBEpochCrossViewConsistency registers two views with identical
// definitions and races readers against the maintenance goroutine: within
// any pinned cross-view epoch the two views must be byte-identical (they
// reflect the same applied prefix), and epoch sequence numbers must be
// observed monotonically per reader. Run under -race in CI.
func TestDBEpochCrossViewConsistency(t *testing.T) {
	d, err := Open(testCatalog(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	q1, q2 := testQuery("twinA", "A"), testQuery("twinB", "A")
	if _, err := CreateView[int64](d, "twinA", q1, ring.Int{}, countLift, ViewOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := CreateView[int64](d, "twinB", q2, ring.Int{}, countLift, ViewOptions{}); err != nil {
		t.Fatal(err)
	}

	const readers = 4
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSeq uint64
			for !stop.Load() {
				e := d.Epoch()
				if e.Seq < lastSeq {
					errs <- "epoch sequence regressed"
					return
				}
				lastSeq = e.Seq
				a := SnapshotOf[int64](e, "twinA")
				b := SnapshotOf[int64](e, "twinB")
				if a == nil || b == nil {
					continue
				}
				if ga, gb := fpEntries(a.Result().SortedEntries()), fpEntries(b.Result().SortedEntries()); ga != gb {
					errs <- "twin views diverged within one epoch: " + ga + " vs " + gb
					return
				}
			}
		}()
	}

	for i := int64(0); i < 120; i++ {
		if err := d.Apply([]Update{
			Insert("R", tup(i%6, i)),
			Insert("S", tup(i%6, i%5)),
			Insert("T", tup(i%5, i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}
