package db

import (
	"errors"
	"testing"

	"fivm/internal/wal"
)

// followerCatalog matches testCatalog so primary records replay cleanly.
func followerPair(t *testing.T) (primary *DB, primaryFS *wal.MemVFS, follower *DB) {
	t.Helper()
	primaryFS = wal.NewMemFS()
	p, err := Open(testCatalog(), Options{Durability: &DurabilityOptions{Dir: "p", FS: primaryFS}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Open(testCatalog(), Options{Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close(); f.Close() })
	return p, primaryFS, f
}

// shipAll scans the primary's WAL from the follower's position and applies
// every record — an in-process stand-in for the network transport.
func shipAll(t *testing.T, primaryFS *wal.MemVFS, f *DB) {
	t.Helper()
	_, gap, err := wal.ScanFramesAfter(primaryFS, "p", f.ReplLSN(), func(lsn uint64, frame []byte) error {
		rec, _, err := wal.DecodeFrame(frame)
		if err != nil {
			return err
		}
		return f.ApplyReplicated(rec)
	})
	if err != nil || gap {
		t.Fatalf("ship: err=%v gap=%v", err, gap)
	}
}

func TestFollowerRejectsDirectWrites(t *testing.T) {
	f, err := Open(testCatalog(), Options{Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Apply([]Update{Insert("R", tup(1, 2))}); !errors.Is(err, ErrFollower) {
		t.Fatalf("Apply on follower: %v", err)
	}
	if _, err := f.Exec("CREATE VIEW v AS SELECT A, SUM(B) FROM R GROUP BY A"); !errors.Is(err, ErrFollower) {
		t.Fatalf("Exec on follower: %v", err)
	}
	if err := f.DropView("v"); !errors.Is(err, ErrFollower) {
		t.Fatalf("DropView on follower: %v", err)
	}
}

// A follower fed the primary's WAL records — batches, CREATE VIEW, DROP VIEW
// — converges to byte-identical view contents at the same applied count.
func TestFollowerMirrorsPrimary(t *testing.T) {
	p, pfs, f := followerPair(t)

	if err := p.Apply([]Update{Insert("R", tup(1, 2), tup(2, 3)), Insert("S", tup(2, 4))}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec("CREATE VIEW sums AS SELECT A, SUM(B * C) FROM R NATURAL JOIN S GROUP BY A"); err != nil {
		t.Fatal(err)
	}
	if err := p.Apply([]Update{Insert("S", tup(3, 5)), Delete("R", tup(1, 2))}); err != nil {
		t.Fatal(err)
	}

	shipAll(t, pfs, f)

	pe, fe := p.Epoch(), f.Epoch()
	if pe.Applied != fe.Applied {
		t.Fatalf("applied: primary %d, follower %d", pe.Applied, fe.Applied)
	}
	ps := SnapshotOf[float64](pe, "sums")
	fs := SnapshotOf[float64](fe, "sums")
	if ps == nil || fs == nil {
		t.Fatal("sums missing on a side")
	}
	if got, want := fpEntries(fs.Result().SortedEntries()), fpEntries(ps.Result().SortedEntries()); got != want {
		t.Fatalf("follower state %q != primary %q", got, want)
	}
	if f.ReplLSN() != p.WAL().LSN() {
		t.Fatalf("replLSN %d != primary LSN %d", f.ReplLSN(), p.WAL().LSN())
	}

	// DROP VIEW replicates too.
	if _, err := p.Exec("DROP VIEW sums"); err != nil {
		t.Fatal(err)
	}
	shipAll(t, pfs, f)
	if f.HasView("sums") {
		t.Fatal("dropped view survives on follower")
	}
}

// Duplicate records are skipped; a gap is an error.
func TestFollowerDupAndGap(t *testing.T) {
	p, pfs, f := followerPair(t)
	for i := 0; i < 3; i++ {
		if err := p.Apply([]Update{Insert("R", tup(int64(i), int64(i)))}); err != nil {
			t.Fatal(err)
		}
	}
	var recs []wal.Record
	_, _, err := wal.ScanFramesAfter(pfs, "p", 0, func(_ uint64, frame []byte) error {
		rec, _, err := wal.DecodeFrame(frame)
		recs = append(recs, rec)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ApplyReplicated(recs[0]); err != nil {
		t.Fatal(err)
	}
	// Duplicate: silently skipped, state unchanged.
	if err := f.ApplyReplicated(recs[0]); err != nil {
		t.Fatalf("dup: %v", err)
	}
	if f.Applied() != 1 || f.ReplLSN() != 1 {
		t.Fatalf("after dup: applied=%d lsn=%d", f.Applied(), f.ReplLSN())
	}
	// Gap: LSN 3 after 1.
	if err := f.ApplyReplicated(recs[2]); err == nil {
		t.Fatal("gap not detected")
	}
}

// An in-memory follower bootstraps from a transferred checkpoint, then
// resumes the stream at the checkpoint's LSN.
func TestFollowerBootstrapFromCheckpoint(t *testing.T) {
	p, pfs, _ := followerPair(t)
	if err := p.Apply([]Update{Insert("R", tup(1, 2)), Insert("S", tup(2, 7))}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec("CREATE VIEW sums AS SELECT A, SUM(B * C) FROM R NATURAL JOIN S GROUP BY A"); err != nil {
		t.Fatal(err)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p.Apply([]Update{Insert("R", tup(2, 4))}); err != nil {
		t.Fatal(err)
	}

	raw, ck, err := wal.LatestCheckpointBytes(pfs, "p")
	if err != nil || ck == nil {
		t.Fatalf("checkpoint: %v %v", ck, err)
	}
	ck2, err := wal.DecodeCheckpointBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Open(testCatalog(), Options{Follower: true, Bootstrap: ck2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.ReplLSN() != ck.LSN {
		t.Fatalf("bootstrap lsn %d, want %d", f.ReplLSN(), ck.LSN)
	}
	shipAll(t, pfs, f)

	ps := SnapshotOf[float64](p.Epoch(), "sums")
	fs := SnapshotOf[float64](f.Epoch(), "sums")
	if got, want := fpEntries(fs.Result().SortedEntries()), fpEntries(ps.Result().SortedEntries()); got != want {
		t.Fatalf("bootstrapped follower %q != primary %q", got, want)
	}
	if f.Applied() != p.Applied() {
		t.Fatalf("applied %d != %d", f.Applied(), p.Applied())
	}

	// Bootstrap without Follower mode is rejected; so is durable+Bootstrap.
	if _, err := Open(testCatalog(), Options{Bootstrap: ck2}); err == nil {
		t.Fatal("Bootstrap without Follower accepted")
	}
	if _, err := Open(testCatalog(), Options{
		Follower:   true,
		Bootstrap:  ck2,
		Durability: &DurabilityOptions{Dir: "x", FS: wal.NewMemFS()},
	}); err == nil {
		t.Fatal("durable Bootstrap accepted")
	}
}

// A durable follower re-logs shipped records under the primary's LSNs, so a
// restart recovers locally and resumes exactly where it stopped.
func TestFollowerDurableRestartResumes(t *testing.T) {
	p, pfs, _ := followerPair(t)
	ffs := wal.NewMemFS()
	fopts := Options{Follower: true, Durability: &DurabilityOptions{Dir: "f", FS: ffs}}
	f, err := Open(testCatalog(), fopts)
	if err != nil {
		t.Fatal(err)
	}

	if err := p.Apply([]Update{Insert("R", tup(1, 2)), Insert("S", tup(2, 3))}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec("CREATE VIEW sums AS SELECT A, SUM(B * C) FROM R NATURAL JOIN S GROUP BY A"); err != nil {
		t.Fatal(err)
	}
	shipAll(t, pfs, f)
	lsnBefore := f.ReplLSN()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// More primary traffic while the follower is down.
	if err := p.Apply([]Update{Insert("R", tup(3, 4))}); err != nil {
		t.Fatal(err)
	}

	f2, err := Open(testCatalog(), fopts)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.ReplLSN() != lsnBefore {
		t.Fatalf("restarted follower at lsn %d, want %d", f2.ReplLSN(), lsnBefore)
	}
	if !f2.HasView("sums") {
		t.Fatal("view lost across restart")
	}
	shipAll(t, pfs, f2)

	ps := SnapshotOf[float64](p.Epoch(), "sums")
	fs := SnapshotOf[float64](f2.Epoch(), "sums")
	if got, want := fpEntries(fs.Result().SortedEntries()), fpEntries(ps.Result().SortedEntries()); got != want {
		t.Fatalf("restarted follower %q != primary %q", got, want)
	}
}
