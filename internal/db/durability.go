package db

import (
	"fmt"
	"time"

	"fivm/internal/data"
	"fivm/internal/ring"
	"fivm/internal/wal"
)

// DurabilityOptions enables the write-ahead log: every applied batch is
// logged (before any in-memory state advances) and SQL-defined views are
// persisted in the catalog, so db.Open recovers the exact state — latest
// checkpoint, re-created views, replayed tail. Zero value = disabled (leave
// Options.Durability nil for a purely in-memory DB).
type DurabilityOptions struct {
	// Dir is the WAL directory (created if missing).
	Dir string
	// FS overrides the filesystem (fault injection, in-memory tests); nil
	// means the real one.
	FS wal.VFS
	// Fsync is the sync policy for logged batches (see wal.FsyncPolicy).
	Fsync wal.FsyncPolicy
	// SyncInterval spaces syncs under wal.FsyncInterval (default 50ms).
	SyncInterval time.Duration
	// SegmentBytes caps a log segment before rotation (default 64 MiB).
	SegmentBytes int64
	// CheckpointEvery writes an automatic checkpoint after that many
	// applied batches (0 = manual Checkpoint calls only).
	CheckpointEvery uint64
}

// RecoveryInfo reports what db.Open recovered from the WAL directory.
type RecoveryInfo struct {
	// FromCheckpoint is true when a checkpoint seeded the base relations
	// (otherwise everything came from batch replay).
	FromCheckpoint bool
	// CheckpointApplied is the applied-batch counter the checkpoint covered.
	CheckpointApplied uint64
	// ReplayedBatches and ReplayedDDL count the WAL tail records replayed
	// after the checkpoint.
	ReplayedBatches int
	ReplayedDDL     int
	// TornBytes is the size of the torn WAL tail discarded on open (an
	// in-flight record cut short by the crash; never an acknowledged one
	// under fsync=always).
	TornBytes int64
	// Views are the SQL view names re-created from the persisted catalog,
	// in re-creation order. Views registered through the typed CreateView
	// API are not persisted (their lift functions cannot be serialized) and
	// must be re-created by the caller; backfill equivalence makes their
	// contents identical to an uninterrupted run.
	Views []string
}

// Recovery returns what Open recovered, or nil when durability is disabled
// or the WAL directory was empty.
func (d *DB) Recovery() *RecoveryInfo { return d.recovery }

// WALStats reports the log's position for introspection.
func (d *DB) WALStats() (lsn uint64, enabled bool) {
	if d.log == nil {
		return 0, false
	}
	return d.log.LSN(), true
}

// Checkpoint serializes the current base relations and the persisted SQL
// view catalog into a checkpoint file, then prunes the WAL records it
// covers. The DB must be at a batch boundary (maintenance goroutine).
// Recovery after a checkpoint loads it and replays only the tail.
func (d *DB) Checkpoint() error {
	if d.log == nil {
		return fmt.Errorf("db: durability not enabled")
	}
	ck := &wal.Checkpoint{
		Applied: d.applied,
		Seq:     d.seq,
		Views:   d.sqlViewDefs(),
		Bases:   d.baseTables(),
	}
	if err := d.log.WriteCheckpoint(ck); err != nil {
		return fmt.Errorf("db: checkpoint: %w", err)
	}
	d.sinceCkpt = 0
	return nil
}

// sqlViewDefs returns the persisted catalog: every live SQL-defined view in
// creation order.
func (d *DB) sqlViewDefs() []wal.ViewDef {
	d.mu.RLock()
	defer d.mu.RUnlock()
	defs := make([]wal.ViewDef, 0, len(d.sqlViews))
	for _, name := range d.order {
		if def, ok := d.sqlViews[name]; ok {
			defs = append(defs, def)
		}
	}
	return defs
}

// baseTables serializes every base relation's merged contents in sorted-key
// order (deterministic bytes for identical states).
func (d *DB) baseTables() []wal.BaseTable {
	rels := d.store.Relations()
	tables := make([]wal.BaseTable, 0, len(rels))
	for _, rel := range rels {
		base := d.store.Base(rel)
		entries := base.SortedEntries()
		t := wal.BaseTable{
			Rel:    rel,
			Schema: base.Schema(),
			Rows:   make([]data.Tuple, len(entries)),
			Mults:  make([]int64, len(entries)),
		}
		for i := range entries {
			t.Rows[i] = entries[i].Tuple
			t.Mults[i] = entries[i].Payload
		}
		tables = append(tables, t)
	}
	return tables
}

// recover seeds the DB from what wal.Open found: adopt the checkpoint's
// base relations, re-create its SQL views (each backfills from the adopted
// bases), then replay the WAL tail batch-by-batch, interleaving the DDL
// records at their logged positions. Runs inside Open, before the DB is
// returned.
func (d *DB) recoverFrom(rec *wal.Recovery) error {
	info := &RecoveryInfo{TornBytes: rec.Truncated}
	d.recovering = true
	defer func() { d.recovering = false }()

	if ck := rec.Checkpoint; ck != nil {
		info.FromCheckpoint = true
		info.CheckpointApplied = ck.Applied
		for _, t := range ck.Bases {
			r := data.NewRelation[int64](ring.Int{}, t.Schema)
			r.Reserve(len(t.Rows))
			for i, row := range t.Rows {
				r.Merge(row, t.Mults[i])
			}
			if err := d.store.AdoptBase(t.Rel, r); err != nil {
				return fmt.Errorf("db: recover checkpoint: %w", err)
			}
		}
		d.applied = ck.Applied
		d.seq = ck.Seq
		d.publish() // re-seed the epoch at the recovered applied count
		for _, def := range ck.Views {
			if err := d.recoverView(def); err != nil {
				return fmt.Errorf("db: recover view %q: %w", def.Name, err)
			}
			info.Views = append(info.Views, def.Name)
		}
	}

	for _, r := range rec.Records {
		switch {
		case r.Create != nil:
			if err := d.recoverView(*r.Create); err != nil {
				return fmt.Errorf("db: recover view %q: %w", r.Create.Name, err)
			}
			info.Views = append(info.Views, r.Create.Name)
			info.ReplayedDDL++
		case r.Drop != "":
			// A drop may name a typed view that was never persisted; those
			// are already absent.
			if d.HasView(r.Drop) {
				if err := d.DropView(r.Drop); err != nil {
					return fmt.Errorf("db: recover drop %q: %w", r.Drop, err)
				}
			}
			for i, n := range info.Views {
				if n == r.Drop {
					info.Views = append(info.Views[:i], info.Views[i+1:]...)
					break
				}
			}
			info.ReplayedDDL++
		default:
			if r.Applied != d.applied+1 {
				return fmt.Errorf("db: recover: batch record applied=%d, expected %d", r.Applied, d.applied+1)
			}
			if err := d.applyBase(r.Batch, false); err != nil {
				return fmt.Errorf("db: recover: replay batch %d: %w", r.Applied, err)
			}
			info.ReplayedBatches++
		}
	}

	if info.FromCheckpoint || info.ReplayedBatches > 0 || info.ReplayedDDL > 0 || info.TornBytes > 0 {
		d.recovery = info
	}
	return nil
}

// recoverView re-creates one persisted SQL view. CreateViewSQL re-parses the
// stored statement against the live catalog and backfills from the current
// base relations — the same LoadOwned path a mid-stream CreateView takes, so
// the recovered contents equal an uninterrupted run's.
func (d *DB) recoverView(def wal.ViewDef) error {
	_, err := CreateViewSQL(d, def.Name, def.SQL, ViewOptions{
		Workers:         def.Workers,
		ComposeChains:   def.ComposeChains,
		CostMaterialize: def.CostMaterialize,
		AutoReoptimize:  def.AutoReoptimize,
	})
	return err
}
