package db

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrQueueFull is returned by ApplyQueue.TryApply when the bounded queue is
// at capacity: the caller should shed load (the HTTP layer turns it into
// 429 + Retry-After).
var ErrQueueFull = errors.New("db: apply queue full")

// ErrQueueClosed is returned by enqueues after Close.
var ErrQueueClosed = errors.New("db: apply queue closed")

// ApplyQueue serializes writes from any number of producer goroutines onto
// the DB's single-writer contract: a bounded channel feeds one maintenance
// goroutine that owns every Apply and DDL call. The bound is the
// backpressure mechanism — when the maintenance goroutine cannot keep up,
// TryApply fails fast with ErrQueueFull instead of queueing unbounded work.
//
// Each enqueued operation carries a result channel; the producer blocks
// until its operation has been applied (or rejected), so a nil return means
// the batch is applied, its epoch published, and — with durability — logged
// per the fsync policy.
type ApplyQueue struct {
	d     *DB
	items chan queueItem

	// mu (held shared by enqueues, exclusively by Close) makes "check closed,
	// then send" atomic against channel close.
	mu     sync.RWMutex
	closed bool
	done   chan struct{}
}

type queueItem struct {
	batch []Update
	fn    func(*DB) error
	res   chan error
}

// NewApplyQueue starts the maintenance goroutine over d with a queue of the
// given depth (minimum 1). The queue owns all writes from here on: apply
// through it, run DDL via Do, and stop it with Close before closing the DB.
func NewApplyQueue(d *DB, depth int) *ApplyQueue {
	if depth < 1 {
		depth = 1
	}
	q := &ApplyQueue{
		d:     d,
		items: make(chan queueItem, depth),
		done:  make(chan struct{}),
	}
	go q.run()
	return q
}

// run is the maintenance goroutine: it drains the queue in order, so every
// DB write happens here and nowhere else.
func (q *ApplyQueue) run() {
	defer close(q.done)
	for it := range q.items {
		var err error
		if it.fn != nil {
			err = it.fn(q.d)
		} else {
			err = q.d.Apply(it.batch)
		}
		it.res <- err
	}
}

// enqueue places one item without blocking; ErrQueueFull when at capacity.
func (q *ApplyQueue) enqueue(it queueItem) error {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		return ErrQueueClosed
	}
	select {
	case q.items <- it:
		return nil
	default:
		return ErrQueueFull
	}
}

// TryApply enqueues a batch if the queue has room — ErrQueueFull otherwise —
// and waits for it to be applied. This is the backpressure write path.
func (q *ApplyQueue) TryApply(batch []Update) error {
	it := queueItem{batch: batch, res: make(chan error, 1)}
	if err := q.enqueue(it); err != nil {
		return err
	}
	return <-it.res
}

// Apply enqueues a batch, waiting for room if the queue is full, and then
// for the batch to be applied. Use TryApply to shed load instead.
func (q *ApplyQueue) Apply(batch []Update) error {
	return q.wait(queueItem{batch: batch, res: make(chan error, 1)})
}

// Do runs fn on the maintenance goroutine, after everything enqueued before
// it — the path for DDL (Exec, CreateView, DropView) and any other
// single-writer operation (checkpoints, one-shot SELECT views). fn's
// side effects are visible to the caller when Do returns.
func (q *ApplyQueue) Do(fn func(*DB) error) error {
	return q.wait(queueItem{fn: fn, res: make(chan error, 1)})
}

// wait enqueues blocking-ly: it retries with a small backoff rather than
// holding the closed-check lock across a blocked channel send (which would
// deadlock Close).
func (q *ApplyQueue) wait(it queueItem) error {
	for backoff := 50 * time.Microsecond; ; {
		err := q.enqueue(it)
		if err == nil {
			return <-it.res
		}
		if err != ErrQueueFull {
			return err
		}
		time.Sleep(backoff)
		if backoff < 2*time.Millisecond {
			backoff *= 2
		}
	}
}

// Len reports the operations currently queued (monitoring).
func (q *ApplyQueue) Len() int { return len(q.items) }

// Cap reports the queue depth.
func (q *ApplyQueue) Cap() int { return cap(q.items) }

// Close stops accepting work, waits for everything already queued to be
// applied, and stops the maintenance goroutine. The DB itself stays open
// (and is now safe to use from the caller's goroutine again).
func (q *ApplyQueue) Close() error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		<-q.done
		return nil
	}
	q.closed = true
	q.mu.Unlock()
	close(q.items)
	<-q.done
	return nil
}

// String describes the queue state (diagnostics).
func (q *ApplyQueue) String() string {
	return fmt.Sprintf("ApplyQueue(%d/%d)", q.Len(), q.Cap())
}
