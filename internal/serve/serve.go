// Package serve is the read path over live-maintained views: epoch-pinned
// reader handles with snapshot isolation.
//
// The maintenance strategies in internal/ivm keep their views continuously
// up to date, but their Result/ViewOf accessors hand out live relations that
// are unsafe to read while deltas stream in. serve closes that gap: once a
// maintainer's snapshot publication is enabled (one Snapshot call from the
// maintenance goroutine, typically right after Init), every applied batch
// publishes an immutable ViewSnapshot with an atomic pointer swap, and any
// number of Reader goroutines can pin an epoch and read it lock-free — point
// lookups by group-by key, ordered prefix scans, and whole-view iteration —
// each read observing exactly the state after some whole batch, never a
// torn mid-batch state.
//
// Readers never block maintenance and maintenance never blocks readers; the
// only coordination is the atomic epoch-pointer load in Refresh. A pinned
// epoch stays valid indefinitely (snapshots are immutable and garbage
// collected once no reader holds them); freshness is the reader's choice of
// when to Refresh, and Lag reports how far behind the pinned epoch is.
package serve

import (
	"time"

	"fivm/internal/data"
	"fivm/internal/ivm"
)

// Source publishes view snapshots; every ivm.Maintainer is a Source.
type Source[P any] interface {
	Snapshot() *ivm.ViewSnapshot[P]
}

// Reader is a handle over one pinned epoch of a Source's published views.
// It is owned by a single goroutine (it carries key-encoding scratch); spawn
// one Reader per reading goroutine. All reads between two Refresh calls
// observe one consistent epoch.
type Reader[P any] struct {
	src    Source[P]
	snap   *ivm.ViewSnapshot[P]
	keyBuf []byte
}

// NewReader pins the source's current epoch and returns a reader over it.
// Publication must already be enabled on the source (the maintenance side
// calls Snapshot once after Init); NewReader itself may then be called from
// any goroutine.
func NewReader[P any](src Source[P]) *Reader[P] {
	return &Reader[P]{src: src, snap: src.Snapshot()}
}

// NewReaderAt pins a reader to an explicitly chosen epoch of the source
// instead of its latest one. This is how cross-view consistent read sets are
// assembled: a coordinator that owns several sources (db.DB) captures one
// snapshot per view at the same applied batch and hands each out via
// NewReaderAt, so every reader of the set observes the same prefix of the
// update stream. Refresh still advances through the live source (and never
// regresses). A nil snapshot falls back to the source's current epoch.
func NewReaderAt[P any](src Source[P], snap *ivm.ViewSnapshot[P]) *Reader[P] {
	if snap == nil {
		return NewReader(src)
	}
	return &Reader[P]{src: src, snap: snap}
}

// NewPinned returns a reader pinned to an explicit snapshot with no live
// source behind it: Refresh is a no-op and the pin moves only through PinAt.
// This is the network-serving shape — a connection-scoped reader (keeping
// its key-encoding scratch warm across requests) re-pinned once per request
// to that request's epoch.
func NewPinned[P any](snap *ivm.ViewSnapshot[P]) *Reader[P] {
	return &Reader[P]{snap: snap}
}

// PinAt re-pins the reader to an explicitly chosen snapshot (nil keeps the
// current pin). Unlike Refresh it may move backwards: the caller owns the
// epoch choice.
func (r *Reader[P]) PinAt(snap *ivm.ViewSnapshot[P]) {
	if snap != nil {
		r.snap = snap
	}
}

// Epoch returns the pinned epoch number. Epochs are strictly monotonic per
// source; within one Reader they never regress.
func (r *Reader[P]) Epoch() uint64 { return r.snap.Epoch }

// Snapshot returns the pinned snapshot itself.
func (r *Reader[P]) Snapshot() *ivm.ViewSnapshot[P] { return r.snap }

// Refresh re-pins the reader to the latest published epoch and reports
// whether it advanced. A reader never moves backwards: if the loaded
// snapshot is not newer than the pinned one, the pin is kept.
func (r *Reader[P]) Refresh() bool {
	if r.src == nil {
		return false
	}
	if s := r.src.Snapshot(); s != nil && s.Epoch > r.snap.Epoch {
		r.snap = s
		return true
	}
	return false
}

// Lag returns the age of the pinned snapshot: the time since its
// publication. It bounds how stale this reader's view of the result is.
func (r *Reader[P]) Lag() time.Duration { return time.Since(r.snap.At) }

// Result returns the pinned snapshot of the query result.
func (r *Reader[P]) Result() *data.RelationSnapshot[P] { return r.snap.Result() }

// View returns the pinned snapshot of a named materialized view, or nil.
func (r *Reader[P]) View(name string) *data.RelationSnapshot[P] { return r.snap.View(name) }

// Views returns the pinned epoch's view catalog.
func (r *Reader[P]) Views() []string { return r.snap.Views() }

// Lookup returns the result payload of a group-by key tuple (over the
// result schema, in schema order) and whether it is present. Steady-state
// lookups do not allocate.
func (r *Reader[P]) Lookup(group data.Tuple) (P, bool) {
	return r.lookupIn(r.snap.Result(), group)
}

// LookupView is Lookup against a named materialized view. The bool result is
// false for unknown view names.
func (r *Reader[P]) LookupView(view string, key data.Tuple) (P, bool) {
	v := r.snap.View(view)
	if v == nil {
		var zero P
		return zero, false
	}
	return r.lookupIn(v, key)
}

func (r *Reader[P]) lookupIn(s *data.RelationSnapshot[P], key data.Tuple) (P, bool) {
	r.keyBuf = key.AppendKey(r.keyBuf[:0])
	if e := s.Lookup(r.keyBuf); e != nil {
		return e.Payload, true
	}
	var zero P
	return zero, false
}

// Scan visits, in key order, every result entry whose leading group-by
// variables equal the prefix tuple (an empty prefix scans the whole
// result), until f returns false. The prefix binds values for the first
// len(prefix) variables of the result schema.
func (r *Reader[P]) Scan(prefix data.Tuple, f func(t data.Tuple, p P) bool) {
	r.scanIn(r.snap.Result(), prefix, f)
}

// ScanView is Scan against a named materialized view; unknown names visit
// nothing.
func (r *Reader[P]) ScanView(view string, prefix data.Tuple, f func(t data.Tuple, p P) bool) {
	if v := r.snap.View(view); v != nil {
		r.scanIn(v, prefix, f)
	}
}

func (r *Reader[P]) scanIn(s *data.RelationSnapshot[P], prefix data.Tuple, f func(t data.Tuple, p P) bool) {
	r.keyBuf = prefix.AppendKey(r.keyBuf[:0])
	s.ScanPrefix(r.keyBuf, func(e *data.Entry[P]) bool {
		return f(e.Tuple, e.Payload)
	})
}

// Len returns the number of result groups in the pinned epoch.
func (r *Reader[P]) Len() int { return r.snap.Result().Len() }
