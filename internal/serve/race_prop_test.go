package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"fivm/internal/data"
	"fivm/internal/ivm"
	"fivm/internal/query"
	"fivm/internal/ring"
	"fivm/internal/vorder"
)

// The concurrent-reader property: K readers racing a streaming maintainer
// must each observe, at every refresh, a state byte-identical to the
// sequential oracle after some whole batch prefix — identified exactly by
// the snapshot epoch — and epochs must never regress within one reader.
// Exercised for F-IVM, 1-IVM, and RE-EVAL over the Z and cofactor rings,
// plus the 8-worker sharded parallel maintainer. Run under -race in CI.

// propQuery is R(A,B) ⋈ S(A,C) ⋈ T(C,D) with free [A]: a join with both a
// shardable variable (A covers R and S; T is broadcast) and a non-trivial
// group-by result.
func propQuery() query.Query {
	return query.MustNew("Q", data.NewSchema("A"),
		query.RelDef{Name: "R", Schema: data.NewSchema("A", "B")},
		query.RelDef{Name: "S", Schema: data.NewSchema("A", "C")},
		query.RelDef{Name: "T", Schema: data.NewSchema("C", "D")})
}

// fpEntries renders sorted entries deterministically; oracle relations and
// reader snapshots share it, so equality is byte-identity of rendered state.
func fpEntries[P any](es []data.Entry[P]) string {
	out := ""
	for _, e := range es {
		out += fmt.Sprintf("%v->%v;", e.Tuple, e.Payload)
	}
	return out
}

func fpRel[P any](r *data.Relation[P]) string          { return fpEntries(r.SortedEntries()) }
func fpSnap[P any](s *data.RelationSnapshot[P]) string { return fpEntries(s.SortedEntries()) }

// intLift counts; cofLift is the regression lifting over the query's four
// variables (integral inputs keep float arithmetic exact, so rendered
// states are bit-stable across maintainers and shard reductions).
func intLift(string, data.Value) int64 { return 1 }

func cofLift(vars data.Schema) data.LiftFunc[ring.Triple] {
	idx := map[string]int{}
	for i, v := range vars {
		idx[v] = i
	}
	return func(v string, x data.Value) ring.Triple { return ring.LiftValue(idx[v], x.AsFloat()) }
}

// randomBatch builds one multi-relation batch of inserts and deletes.
func randomBatch[P any](rng *rand.Rand, q query.Query, one P, neg func(P) P) []ivm.NamedDelta[P] {
	rels := q.RelNames()
	n := 1 + rng.Intn(3)
	batch := make([]ivm.NamedDelta[P], 0, n)
	for i := 0; i < n; i++ {
		rd, _ := q.Rel(rels[rng.Intn(len(rels))])
		d := data.NewRelation[P](ringFor[P](), rd.Schema)
		for j := 0; j < 5+rng.Intn(10); j++ {
			tu := make(data.Tuple, len(rd.Schema))
			for k := range tu {
				tu[k] = data.Int(int64(rng.Intn(6)))
			}
			p := one
			if rng.Intn(4) == 0 {
				p = neg(p)
			}
			d.Merge(tu, p)
		}
		batch = append(batch, ivm.NamedDelta[P]{Rel: rd.Name, Delta: d})
	}
	return batch
}

// ringFor is a tiny helper so randomBatch can build relations generically;
// specialized below per payload type.
func ringFor[P any]() ring.Ring[P] {
	var p P
	switch any(p).(type) {
	case int64:
		return any(ring.Int{}).(ring.Ring[P])
	case float64:
		return any(ring.Float{}).(ring.Ring[P])
	case ring.Triple:
		return any(ring.Cofactor{}).(ring.Ring[P])
	}
	panic("unsupported payload")
}

// runConcurrentReaderProperty drives two identical maintainers — a
// sequential oracle recording the state fingerprint after every batch
// prefix, and a serving instance streamed concurrently with K readers — and
// checks every reader observation against the oracle prefix its epoch
// names.
func runConcurrentReaderProperty[P any](t *testing.T, mk func() (ivm.Maintainer[P], error), one P, neg func(P) P) {
	t.Helper()
	const (
		nBatches = 60
		readers  = 4
	)
	q := propQuery()
	rng := rand.New(rand.NewSource(1234))
	batches := make([][]ivm.NamedDelta[P], nBatches)
	for i := range batches {
		batches[i] = randomBatch(rng, q, one, neg)
	}
	bases := map[string]*data.Relation[P]{}
	for _, rd := range q.Rels {
		b := data.NewRelation[P](ringFor[P](), rd.Schema)
		for j := 0; j < 30; j++ {
			tu := make(data.Tuple, len(rd.Schema))
			for k := range tu {
				tu[k] = data.Int(int64(rng.Intn(6)))
			}
			b.Merge(tu, one)
		}
		bases[rd.Name] = b
	}

	build := func() ivm.Maintainer[P] {
		m, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		for rel, b := range bases {
			if err := m.Load(rel, b.Clone()); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Init(); err != nil {
			t.Fatal(err)
		}
		return m
	}

	// Sequential oracle: fingerprint after Init and after each batch prefix.
	oracle := build()
	fps := make([]string, nBatches+1)
	fps[0] = fpRel(oracle.Result())
	for k, b := range batches {
		if err := oracle.ApplyDeltas(b); err != nil {
			t.Fatal(err)
		}
		fps[k+1] = fpRel(oracle.Result())
	}

	// Serving instance: enable publication from the maintenance goroutine,
	// then stream with concurrent readers.
	serving := build()
	if c, ok := any(serving).(interface{ Close() error }); ok {
		defer c.Close()
	}
	if e := serving.Snapshot().Epoch; e != 0 {
		t.Fatalf("epoch after enable = %d, want 0", e)
	}

	var (
		done    atomic.Bool
		wg      sync.WaitGroup
		failMu  sync.Mutex
		failure string
	)
	fail := func(msg string) {
		failMu.Lock()
		if failure == "" {
			failure = msg
		}
		failMu.Unlock()
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rd := NewReader[P](serving)
			last := uint64(0)
			checks := 0
			for {
				finished := done.Load()
				rd.Refresh()
				e := rd.Epoch()
				if e < last {
					fail(fmt.Sprintf("reader %d: epoch regressed %d -> %d", id, last, e))
					return
				}
				if e > nBatches {
					fail(fmt.Sprintf("reader %d: epoch %d beyond %d applied batches", id, e, nBatches))
					return
				}
				if got := fpSnap(rd.Result()); got != fps[e] {
					fail(fmt.Sprintf("reader %d: torn state at epoch %d:\n got %s\nwant %s", id, e, got, fps[e]))
					return
				}
				// Point lookups must agree with the pinned iteration state.
				rd.Result().Iterate(func(tu data.Tuple, p P) bool {
					got, ok := rd.Lookup(tu)
					if !ok || fmt.Sprint(got) != fmt.Sprint(p) {
						fail(fmt.Sprintf("reader %d: Lookup(%v) = %v,%v want %v", id, tu, got, ok, p))
						return false
					}
					return true
				})
				last = e
				checks++
				if finished && e == nBatches {
					return
				}
			}
		}(i)
	}
	for _, b := range batches {
		if err := serving.ApplyDeltas(b); err != nil {
			t.Fatal(err)
		}
	}
	done.Store(true)
	wg.Wait()
	if failure != "" {
		t.Fatal(failure)
	}
	if e := serving.Snapshot().Epoch; e != nBatches {
		t.Fatalf("final epoch = %d, want %d", e, nBatches)
	}
}

func negInt(p int64) int64 { return -p }

func negTriple(p ring.Triple) ring.Triple { return ring.Cofactor{}.Neg(p) }

func TestConcurrentReadersFIVMInt(t *testing.T) {
	runConcurrentReaderProperty[int64](t, func() (ivm.Maintainer[int64], error) {
		return ivm.New[int64](propQuery(), mustOrder(), ring.Int{}, intLift, ivm.Options[int64]{})
	}, 1, negInt)
}

func TestConcurrentReadersFIVMCofactor(t *testing.T) {
	q := propQuery()
	lift := cofLift(q.Vars())
	runConcurrentReaderProperty[ring.Triple](t, func() (ivm.Maintainer[ring.Triple], error) {
		return ivm.New[ring.Triple](propQuery(), mustOrder(), ring.Cofactor{}, lift, ivm.Options[ring.Triple]{})
	}, ring.Cofactor{}.One(), negTriple)
}

func TestConcurrentReadersFirstOrderInt(t *testing.T) {
	runConcurrentReaderProperty[int64](t, func() (ivm.Maintainer[int64], error) {
		return ivm.NewFirstOrder[int64](propQuery(), mustOrder(), ring.Int{}, intLift)
	}, 1, negInt)
}

func TestConcurrentReadersFirstOrderCofactor(t *testing.T) {
	q := propQuery()
	lift := cofLift(q.Vars())
	runConcurrentReaderProperty[ring.Triple](t, func() (ivm.Maintainer[ring.Triple], error) {
		return ivm.NewFirstOrder[ring.Triple](propQuery(), mustOrder(), ring.Cofactor{}, lift)
	}, ring.Cofactor{}.One(), negTriple)
}

func TestConcurrentReadersReEvalInt(t *testing.T) {
	runConcurrentReaderProperty[int64](t, func() (ivm.Maintainer[int64], error) {
		return ivm.NewReEval[int64](propQuery(), mustOrder(), ring.Int{}, intLift)
	}, 1, negInt)
}

func TestConcurrentReadersReEvalCofactor(t *testing.T) {
	q := propQuery()
	lift := cofLift(q.Vars())
	runConcurrentReaderProperty[ring.Triple](t, func() (ivm.Maintainer[ring.Triple], error) {
		return ivm.NewReEval[ring.Triple](propQuery(), mustOrder(), ring.Cofactor{}, lift)
	}, ring.Cofactor{}.One(), negTriple)
}

func TestConcurrentReadersRecursiveInt(t *testing.T) {
	runConcurrentReaderProperty[int64](t, func() (ivm.Maintainer[int64], error) {
		return ivm.NewRecursive[int64](propQuery(), ring.Int{}, intLift, nil)
	}, 1, negInt)
}

func TestConcurrentReadersRecursiveCofactor(t *testing.T) {
	q := propQuery()
	lift := cofLift(q.Vars())
	runConcurrentReaderProperty[ring.Triple](t, func() (ivm.Maintainer[ring.Triple], error) {
		return ivm.NewRecursive[ring.Triple](propQuery(), ring.Cofactor{}, lift, nil)
	}, ring.Cofactor{}.One(), negTriple)
}

func TestConcurrentReadersMultiFirstOrder(t *testing.T) {
	q := propQuery()
	runConcurrentReaderProperty[float64](t, func() (ivm.Maintainer[float64], error) {
		return ivm.NewMultiFirstOrder(q, mustOrder(), ivm.CofactorAggSpecs(q.Vars()))
	}, 1, func(p float64) float64 { return -p })
}

func TestConcurrentReadersParallelInt(t *testing.T) {
	runConcurrentReaderProperty[int64](t, func() (ivm.Maintainer[int64], error) {
		return ivm.NewParallel[int64](propQuery(), ring.Int{}, 8, func() (ivm.Maintainer[int64], error) {
			return ivm.New[int64](propQuery(), mustOrder(), ring.Int{}, intLift, ivm.Options[int64]{})
		})
	}, 1, negInt)
}

func TestConcurrentReadersParallelCofactor(t *testing.T) {
	q := propQuery()
	lift := cofLift(q.Vars())
	runConcurrentReaderProperty[ring.Triple](t, func() (ivm.Maintainer[ring.Triple], error) {
		return ivm.NewParallel[ring.Triple](propQuery(), ring.Cofactor{}, 8, func() (ivm.Maintainer[ring.Triple], error) {
			return ivm.New[ring.Triple](propQuery(), mustOrder(), ring.Cofactor{}, lift, ivm.Options[ring.Triple]{})
		})
	}, ring.Cofactor{}.One(), negTriple)
}

// mustOrder builds the heuristic order for propQuery (panicking variant for
// factory closures).
func mustOrder() *vorder.Order {
	o, err := vorder.Build(propQuery())
	if err != nil {
		panic(err)
	}
	return o
}
