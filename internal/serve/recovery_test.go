// Recovery semantics at the serving layer: readers pinned on a DB that
// crashes keep their epoch (immutable snapshots), and readers over the
// recovered DB serve exactly the pre-crash acknowledged state. This lives in
// an external test package so it can drive the full db + wal stack without
// an import cycle (db imports serve).
package serve_test

import (
	"testing"

	"fivm/internal/data"
	"fivm/internal/db"
	"fivm/internal/serve"
	"fivm/internal/wal"
)

func recCatalog() db.Catalog {
	return db.Catalog{
		"R": data.NewSchema("A", "B"),
		"S": data.NewSchema("A", "C"),
	}
}

func recTup(vals ...int64) data.Tuple {
	t := make(data.Tuple, len(vals))
	for i, v := range vals {
		t[i] = data.Int(v)
	}
	return t
}

const recSQL = "SELECT A, COUNT(*) FROM R NATURAL JOIN S GROUP BY A"

func TestReaderOverRecoveredDB(t *testing.T) {
	fs := wal.NewMemFS()
	dopts := db.Options{Durability: &db.DurabilityOptions{
		Dir: "wal", FS: fs, Fsync: wal.FsyncAlways,
	}}
	d, err := db.Open(recCatalog(), dopts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateViewSQL(d, "cnt", recSQL, db.ViewOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := d.Apply([]db.Update{
		db.Insert("R", recTup(1, 10), recTup(1, 11), recTup(2, 20)),
		db.Insert("S", recTup(1, 100), recTup(2, 200)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Apply([]db.Update{db.Delete("R", recTup(1, 11))}); err != nil {
		t.Fatal(err)
	}

	r1, err := db.ReaderFor[float64](d, "cnt")
	if err != nil {
		t.Fatal(err)
	}
	want1, ok1 := r1.Lookup(recTup(1))
	want2, ok2 := r1.Lookup(recTup(2))
	if !ok1 || !ok2 {
		t.Fatalf("pre-crash lookups missing: %v %v", ok1, ok2)
	}
	preEpoch := r1.Epoch()

	// Crash. The pinned reader keeps serving its immutable snapshot.
	fs.Crash()
	if got, ok := r1.Lookup(recTup(1)); !ok || got != want1 {
		t.Fatalf("pinned reader lost its snapshot after crash: %v %v", got, ok)
	}
	if r1.Epoch() != preEpoch {
		t.Fatal("pinned reader's epoch moved")
	}

	// Recover and serve: a fresh reader over the recovered DB returns the
	// exact acknowledged state.
	d2, err := db.Open(recCatalog(), dopts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	var r2 *serve.Reader[float64]
	r2, err = db.ReaderFor[float64](d2, "cnt")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := r2.Lookup(recTup(1)); !ok || got != want1 {
		t.Fatalf("recovered lookup(1) = %v,%v want %v", got, ok, want1)
	}
	if got, ok := r2.Lookup(recTup(2)); !ok || got != want2 {
		t.Fatalf("recovered lookup(2) = %v,%v want %v", got, ok, want2)
	}

	// The recovered DB publishes onward; Refresh picks the new epochs up.
	if err := d2.Apply([]db.Update{db.Insert("R", recTup(2, 21))}); err != nil {
		t.Fatal(err)
	}
	// A reader constructed before the batch sees it only after Refresh.
	if !r2.Refresh() {
		t.Fatal("Refresh did not advance after a post-recovery batch")
	}
	if got, ok := r2.Lookup(recTup(2)); !ok || got != want2+1 {
		t.Fatalf("post-recovery lookup(2) = %v,%v want %v", got, ok, want2+1)
	}

	// Scan consistency on the recovered epoch.
	n := 0
	r2.Scan(nil, func(tp data.Tuple, p float64) bool { n++; return true })
	if n != r2.Len() {
		t.Fatalf("scan visited %d of %d entries", n, r2.Len())
	}
}
