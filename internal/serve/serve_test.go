package serve

import (
	"fmt"
	"testing"

	"fivm/internal/data"
	"fivm/internal/ivm"
	"fivm/internal/query"
	"fivm/internal/ring"
	"fivm/internal/vorder"
)

// testEngine builds a small F-IVM engine over R(A,B) ⋈ S(A,C) with free
// [A, B], loaded with a few tuples.
func testEngine(t *testing.T) *ivm.Engine[int64] {
	t.Helper()
	q := query.MustNew("Q", data.NewSchema("A", "B"),
		query.RelDef{Name: "R", Schema: data.NewSchema("A", "B")},
		query.RelDef{Name: "S", Schema: data.NewSchema("A", "C")})
	o, err := vorder.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ivm.New[int64](q, o, ring.Int{}, func(string, data.Value) int64 { return 1 }, ivm.Options[int64]{})
	if err != nil {
		t.Fatal(err)
	}
	r := data.NewRelation[int64](ring.Int{}, data.NewSchema("A", "B"))
	s := data.NewRelation[int64](ring.Int{}, data.NewSchema("A", "C"))
	for a := int64(0); a < 4; a++ {
		for b := int64(0); b < 3; b++ {
			r.Merge(data.Ints(a, b), 1)
		}
		s.Merge(data.Ints(a, a*10), 1)
	}
	must(t, eng.Load("R", r))
	must(t, eng.Load("S", s))
	must(t, eng.Init())
	return eng
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func delta(schema data.Schema, tuples ...data.Tuple) *data.Relation[int64] {
	d := data.NewRelation[int64](ring.Int{}, schema)
	for _, tu := range tuples {
		d.Merge(tu, 1)
	}
	return d
}

// TestReaderPinsEpoch: a pinned reader keeps observing its epoch while the
// maintainer advances; Refresh moves it forward, never backwards.
func TestReaderPinsEpoch(t *testing.T) {
	eng := testEngine(t)
	rd := NewReader[int64](eng)
	if rd.Epoch() != 0 {
		t.Fatalf("initial epoch = %d, want 0", rd.Epoch())
	}
	before, ok := rd.Lookup(data.Ints(1, 1))
	if !ok || before != 1 {
		t.Fatalf("Lookup(1,1) = %d,%v want 1,true", before, ok)
	}

	// Apply a batch that doubles (1,1)'s multiplicity through R.
	must(t, eng.ApplyDelta("R", delta(data.NewSchema("A", "B"), data.Ints(1, 1))))

	// The pinned reader still sees the old state.
	if p, _ := rd.Lookup(data.Ints(1, 1)); p != 1 {
		t.Fatalf("pinned reader saw new state: %d", p)
	}
	if !rd.Refresh() {
		t.Fatalf("Refresh did not advance")
	}
	if rd.Epoch() != 1 {
		t.Fatalf("epoch after refresh = %d, want 1", rd.Epoch())
	}
	if p, _ := rd.Lookup(data.Ints(1, 1)); p != 2 {
		t.Fatalf("refreshed reader Lookup = %d, want 2", p)
	}
	if rd.Refresh() {
		t.Fatalf("Refresh advanced without a new batch")
	}
}

// TestReaderScanPrefix: ordered prefix scans over the result's leading
// group-by variable.
func TestReaderScanPrefix(t *testing.T) {
	eng := testEngine(t)
	rd := NewReader[int64](eng)
	got := map[string]int64{}
	rd.Scan(data.Ints(2), func(tu data.Tuple, p int64) bool {
		if tu[0].AsInt() != 2 {
			t.Fatalf("scan A=2 yielded %v", tu)
		}
		got[tu.Key()] = p
		return true
	})
	if len(got) != 3 {
		t.Fatalf("scan A=2 visited %d groups, want 3", len(got))
	}
	// Empty prefix = full result scan.
	n := 0
	rd.Scan(nil, func(data.Tuple, int64) bool { n++; return true })
	if n != rd.Len() || n != 12 {
		t.Fatalf("full scan visited %d, Len=%d, want 12", n, rd.Len())
	}
}

// TestReaderViewCatalog: every cataloged view is readable through the
// snapshot and matches the engine's live view after quiescence; ViewByName
// resolves the same names live.
func TestReaderViewCatalog(t *testing.T) {
	eng := testEngine(t)
	rd := NewReader[int64](eng)
	names := rd.Views()
	if len(names) == 0 {
		t.Fatalf("empty view catalog")
	}
	if got, want := fmt.Sprint(names), fmt.Sprint(eng.ViewNames()); got != want {
		t.Fatalf("snapshot catalog %v != engine catalog %v", got, want)
	}
	for _, name := range names {
		snap := rd.View(name)
		live := eng.ViewByName(name)
		if snap == nil || live == nil {
			t.Fatalf("view %q: snapshot=%v live=%v", name, snap, live)
		}
		if snap.Len() != live.Len() {
			t.Fatalf("view %q: snapshot Len %d != live Len %d", name, snap.Len(), live.Len())
		}
		snap.Iterate(func(tu data.Tuple, p int64) bool {
			if lp, ok := live.Get(tu); !ok || lp != p {
				t.Fatalf("view %q: tuple %v snapshot=%d live=%d,%v", name, tu, p, lp, ok)
			}
			return true
		})
	}
	if eng.ViewByName("no-such-view") != nil {
		t.Fatalf("ViewByName of unknown name is non-nil")
	}
	if rd.View("no-such-view") != nil {
		t.Fatalf("View of unknown name is non-nil")
	}
}

// TestReaderLookupView: point lookups against every cataloged view agree
// with the view's own iteration.
func TestReaderLookupView(t *testing.T) {
	eng := testEngine(t)
	rd := NewReader[int64](eng)
	checked := 0
	for _, name := range rd.Views() {
		rd.View(name).Iterate(func(tu data.Tuple, want int64) bool {
			got, ok := rd.LookupView(name, tu)
			if !ok || got != want {
				t.Fatalf("LookupView(%s, %v) = %d,%v want %d", name, tu, got, ok, want)
			}
			checked++
			return true
		})
	}
	if checked == 0 {
		t.Fatalf("no view entries checked; catalog %v", rd.Views())
	}
	if _, ok := rd.LookupView("no-such-view", data.Ints(0)); ok {
		t.Fatalf("LookupView on unknown view reported ok")
	}
}
