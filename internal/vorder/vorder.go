// Package vorder implements variable orders (paper Definition 3.1): rooted
// forests with one node per query variable, plus the dependency sets dep(X)
// that determine view schemas. Variable orders play the role of query plans
// in F-IVM — they dictate the order in which join variables are solved and
// which marginalizations are pushed past joins.
package vorder

import (
	"fmt"
	"sort"
	"strings"

	"fivm/internal/data"
	"fivm/internal/query"
)

// Node is one variable in a variable order.
type Node struct {
	// Var is the variable name.
	Var string
	// Children are the variables directly below this one.
	Children []*Node
	// Dep is dep(Var): the ancestors on which the variables in the subtree
	// rooted here depend (they co-occur in some relation with a subtree
	// variable). Populated by ComputeDeps / Build.
	Dep data.Schema
	// Rels names the relations anchored at this node: those whose lowest
	// variable in the order is Var. Populated by anchorRels / Build.
	Rels []string

	parent *Node
}

// Order is a variable order: a rooted forest over the query variables.
type Order struct {
	Roots []*Node

	nodes map[string]*Node
}

// Parent returns the node's parent, or nil for roots.
func (n *Node) Parent() *Node { return n.parent }

// New assembles an order from its roots, wiring parent pointers and
// checking that variable names are unique.
func New(roots ...*Node) (*Order, error) {
	o := &Order{Roots: roots, nodes: make(map[string]*Node)}
	var walk func(n, parent *Node) error
	walk = func(n, parent *Node) error {
		if _, dup := o.nodes[n.Var]; dup {
			return fmt.Errorf("vorder: duplicate variable %q", n.Var)
		}
		o.nodes[n.Var] = n
		n.parent = parent
		for _, c := range n.Children {
			if err := walk(c, n); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := walk(r, nil); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// MustNew is New that panics on error.
func MustNew(roots ...*Node) *Order {
	o, err := New(roots...)
	if err != nil {
		panic(err)
	}
	return o
}

// V builds a node with children, a convenience for literal orders:
// V("A", V("B"), V("C", V("D"))).
func V(name string, children ...*Node) *Node {
	return &Node{Var: name, Children: children}
}

// Chain builds a single-path order node: Chain("A","B","C") is A-B-C.
func Chain(vars ...string) *Node {
	if len(vars) == 0 {
		return nil
	}
	root := V(vars[0])
	cur := root
	for _, v := range vars[1:] {
		c := V(v)
		cur.Children = append(cur.Children, c)
		cur = c
	}
	return root
}

// NodeOf returns the node of a variable, or nil.
func (o *Order) NodeOf(v string) *Node { return o.nodes[v] }

// Vars returns all variables in depth-first order.
func (o *Order) Vars() []string {
	var out []string
	o.Walk(func(n *Node) { out = append(out, n.Var) })
	return out
}

// Walk visits every node in depth-first preorder.
func (o *Order) Walk(f func(n *Node)) {
	var rec func(n *Node)
	rec = func(n *Node) {
		f(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	for _, r := range o.Roots {
		rec(r)
	}
}

// Ancestors returns the variables strictly above n, nearest first.
func (o *Order) Ancestors(n *Node) data.Schema {
	var out data.Schema
	for p := n.parent; p != nil; p = p.parent {
		out = append(out, p.Var)
	}
	return out
}

// subtreeVars collects the variables of the subtree rooted at n.
func subtreeVars(n *Node, out map[string]bool) {
	out[n.Var] = true
	for _, c := range n.Children {
		subtreeVars(c, out)
	}
}

// Prepare validates the order against the query, anchors relations at their
// lowest variables, and computes all dependency sets. It must be called (or
// the order built via Build) before constructing view trees.
func (o *Order) Prepare(q query.Query) error {
	if err := o.Validate(q); err != nil {
		return err
	}
	o.anchorRels(q)
	o.computeDeps(q)
	return nil
}

// Validate checks Definition 3.1: for each relation, its variables must lie
// along a single root-to-leaf path, and every query variable must appear in
// the order exactly once.
func (o *Order) Validate(q query.Query) error {
	for _, v := range q.Vars() {
		if o.nodes[v] == nil {
			return fmt.Errorf("vorder: query variable %q missing from order", v)
		}
	}
	if extra := len(o.nodes) - len(q.Vars()); extra != 0 {
		for v := range o.nodes {
			if !q.Vars().Contains(v) {
				return fmt.Errorf("vorder: variable %q not in query", v)
			}
		}
	}
	for _, r := range q.Rels {
		// All of r's variables lie on one path iff the deepest of them has
		// every other one among its ancestors (or itself).
		deepest := o.deepestOf(r.Schema)
		anc := map[string]bool{deepest.Var: true}
		for p := deepest.parent; p != nil; p = p.parent {
			anc[p.Var] = true
		}
		for _, v := range r.Schema {
			if !anc[v] {
				return fmt.Errorf("vorder: relation %s: variables %v not on one root-to-leaf path", r.Name, r.Schema)
			}
		}
	}
	return nil
}

func (o *Order) depth(n *Node) int {
	d := 0
	for p := n.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

func (o *Order) deepestOf(vars data.Schema) *Node {
	var best *Node
	bestDepth := -1
	for _, v := range vars {
		if n := o.nodes[v]; n != nil {
			if d := o.depth(n); d > bestDepth {
				best, bestDepth = n, d
			}
		}
	}
	return best
}

// anchorRels assigns each relation to the node of its deepest variable.
func (o *Order) anchorRels(q query.Query) {
	o.Walk(func(n *Node) { n.Rels = nil })
	for _, r := range q.Rels {
		n := o.deepestOf(r.Schema)
		n.Rels = append(n.Rels, r.Name)
	}
}

// computeDeps fills in dep(X) for every node: the ancestors of X that
// co-occur in some relation with a variable in X's subtree.
func (o *Order) computeDeps(q query.Query) {
	o.Walk(func(n *Node) {
		sub := make(map[string]bool)
		subtreeVars(n, sub)
		anc := o.Ancestors(n)
		var dep data.Schema
		for _, a := range anc {
			co := false
			for _, r := range q.Rels {
				if !r.Schema.Contains(a) {
					continue
				}
				for _, v := range r.Schema {
					if sub[v] {
						co = true
						break
					}
				}
				if co {
					break
				}
			}
			if co {
				dep = append(dep, a)
			}
		}
		// Keep dep in root-to-node order for readable view schemas.
		for i, j := 0, len(dep)-1; i < j; i, j = i+1, j-1 {
			dep[i], dep[j] = dep[j], dep[i]
		}
		n.Dep = dep
	})
}

// Build constructs an order for query q using a greedy decomposition
// heuristic: choose the variable occurring in the most relations as the
// root, remove it, split the remaining relations into connected components,
// and recurse per component. Free variables are preferred at each step so
// they sit above bound variables, which the paper requires for group-by
// queries. The result satisfies Definition 3.1 for any query, cyclic or not.
func Build(q query.Query) (*Order, error) {
	var edges []edge
	for _, r := range q.Rels {
		vs := make(map[string]bool, len(r.Schema))
		for _, v := range r.Schema {
			vs[v] = true
		}
		edges = append(edges, edge{name: r.Name, vars: vs})
	}

	free := make(map[string]bool, len(q.Free))
	for _, v := range q.Free {
		free[v] = true
	}

	var decompose func(es []edge) []*Node
	decompose = func(es []edge) []*Node {
		// Gather remaining variables and their relation counts.
		count := make(map[string]int)
		for _, e := range es {
			for v := range e.vars {
				count[v]++
			}
		}
		if len(count) == 0 {
			return nil
		}
		// Pick the best variable: free before bound, then by descending
		// relation count, then by name for determinism.
		vars := make([]string, 0, len(count))
		for v := range count {
			vars = append(vars, v)
		}
		sort.Slice(vars, func(i, j int) bool {
			vi, vj := vars[i], vars[j]
			if free[vi] != free[vj] {
				return free[vi]
			}
			if count[vi] != count[vj] {
				return count[vi] > count[vj]
			}
			return vi < vj
		})
		pick := vars[0]

		// Remove the picked variable from all edges.
		next := make([]edge, 0, len(es))
		for _, e := range es {
			vs := make(map[string]bool, len(e.vars))
			for v := range e.vars {
				if v != pick {
					vs[v] = true
				}
			}
			next = append(next, edge{name: e.name, vars: vs})
		}

		// Split into connected components by shared variables.
		comps := components(next)
		node := V(pick)
		for _, comp := range comps {
			node.Children = append(node.Children, decompose(comp)...)
		}
		return []*Node{node}
	}

	roots := decompose(edges)
	o, err := New(roots...)
	if err != nil {
		return nil, err
	}
	if err := o.Prepare(q); err != nil {
		return nil, err
	}
	return o, nil
}

// edge is a relation viewed as a hypergraph edge during Build.
type edge struct {
	name string
	vars map[string]bool
}

// components splits edges into connected components; edges with no
// remaining variables are dropped (their relations are fully anchored).
func components(es []edge) [][]edge {
	// Union-find over edge indices connected through shared variables.
	parent := make([]int, len(es))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	byVar := make(map[string]int)
	for i, e := range es {
		for v := range e.vars {
			if j, ok := byVar[v]; ok {
				union(i, j)
			} else {
				byVar[v] = i
			}
		}
	}
	groups := make(map[int][]edge)
	var order []int
	for i, e := range es {
		if len(e.vars) == 0 {
			continue
		}
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], e)
	}
	out := make([][]edge, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

// Width returns the width of the prepared order: the largest view key size
// the order induces, max over variables of |dep(X) ∪ free-vars-below|. For
// queries without free variables this is the factorization width that
// bounds view sizes as |D|^width (paper Section 3, citing the size bounds
// of factorized representations); smaller widths mean smaller views and
// cheaper maintenance, so Width is the natural cost to compare candidate
// orders with.
func (o *Order) Width(q query.Query) int {
	free := make(map[string]bool, len(q.Free))
	for _, v := range q.Free {
		free[v] = true
	}
	width := 0
	o.Walk(func(n *Node) {
		keys := len(n.Dep)
		if free[n.Var] {
			keys++ // the variable itself is retained
		}
		if keys > width {
			width = keys
		}
	})
	return width
}

// String renders the order as nested parentheses for debugging.
func (o *Order) String() string {
	var b strings.Builder
	var rec func(n *Node)
	rec = func(n *Node) {
		b.WriteString(n.Var)
		if len(n.Rels) > 0 {
			fmt.Fprintf(&b, "{%s}", strings.Join(n.Rels, ","))
		}
		if len(n.Children) > 0 {
			b.WriteString("(")
			for i, c := range n.Children {
				if i > 0 {
					b.WriteString(" ")
				}
				rec(c)
			}
			b.WriteString(")")
		}
	}
	for i, r := range o.Roots {
		if i > 0 {
			b.WriteString(" ")
		}
		rec(r)
	}
	return b.String()
}
