package vorder

import (
	"testing"

	"fivm/internal/data"
	"fivm/internal/query"
)

// seedStats fills a collector with synthetic per-relation shapes:
// cards[name] tuples whose column i cycles through dist[name][i] values.
func seedStats(t *testing.T, q query.Query, cards map[string]int, dists map[string][]int) *data.Stats {
	t.Helper()
	st := data.NewStats()
	for _, rd := range q.Rels {
		rs := st.Rel(rd.Name, rd.Schema)
		n := cards[rd.Name]
		ds := dists[rd.Name]
		for i := 0; i < n; i++ {
			tup := make(data.Tuple, len(rd.Schema))
			for j := range tup {
				d := n
				if ds != nil && j < len(ds) {
					d = ds[j]
				}
				tup[j] = data.Int(int64(i % d))
			}
			rs.ObserveInsert(tup)
		}
	}
	return st
}

func triQuery() query.Query {
	return query.MustNew("triangle", nil,
		query.RelDef{Name: "R", Schema: data.NewSchema("A", "B")},
		query.RelDef{Name: "S", Schema: data.NewSchema("B", "C")},
		query.RelDef{Name: "T", Schema: data.NewSchema("C", "A")},
	)
}

func TestCostModelViewSize(t *testing.T) {
	q := triQuery()
	st := seedStats(t, q, map[string]int{"R": 1000, "S": 1000, "T": 1000},
		map[string][]int{"R": {100, 200}, "S": {200, 50}, "T": {50, 100}})
	m := NewCostModel(q, st, nil)

	// Distinct counts come from the most selective relation per variable.
	if dA := m.Distinct("A"); dA < 70 || dA > 140 {
		t.Fatalf("Distinct(A) = %v, want ~100", dA)
	}
	if dC := m.Distinct("C"); dC < 35 || dC > 70 {
		t.Fatalf("Distinct(C) = %v, want ~50", dC)
	}

	// A view over [B,C] is capped by |S| which covers it.
	bc := m.ViewSize(data.NewSchema("B", "C"))
	if bc > 1100 {
		t.Fatalf("ViewSize(B,C) = %v not capped by |S|", bc)
	}
	// Bigger key schemas estimate at least as large as their subsets.
	if ab, a := m.ViewSize(data.NewSchema("A", "B")), m.ViewSize(data.NewSchema("A")); ab < a {
		t.Fatalf("ViewSize monotonicity: [A,B]=%v < [A]=%v", ab, a)
	}
}

func TestCostModelDeltaSize(t *testing.T) {
	q := triQuery()
	st := seedStats(t, q, map[string]int{"R": 1000, "S": 1000, "T": 1000}, nil)
	m := NewCostModel(q, st, nil)

	keys := data.NewSchema("A", "B")
	// An update binding every key variable has delta size 1 (the paper's
	// O(1) single-tuple maintenance).
	if d := m.DeltaSize(keys, data.NewSchema("A", "B")); d != 1 {
		t.Fatalf("fully-bound DeltaSize = %v", d)
	}
	// Unbound key variables inflate the delta.
	if d := m.DeltaSize(keys, data.NewSchema("B", "C")); d <= 1 {
		t.Fatalf("unbound DeltaSize = %v, want > 1", d)
	}
}

func TestCostModelRates(t *testing.T) {
	q := triQuery()
	st := seedStats(t, q, map[string]int{"R": 100, "S": 100, "T": 100}, nil)
	// Observed traffic goes all to R.
	st.Rel("R", data.NewSchema("A", "B")).DeltaTuples = 10000
	m := NewCostModel(q, st, nil)
	if m.Rate("R") < 0.8 {
		t.Fatalf("Rate(R) = %v with all observed traffic", m.Rate("R"))
	}
	// Non-updatable relations have rate 0.
	m2 := NewCostModel(q, st, []string{"S"})
	if m2.Rate("R") != 0 || m2.Rate("S") == 0 {
		t.Fatalf("updatable filter: R=%v S=%v", m2.Rate("R"), m2.Rate("S"))
	}
}

func TestCostPrefersNarrowOrder(t *testing.T) {
	// Q = R(A,B) ⋈ S(B,C): the order B(A,C) has width 1; A above B above C
	// forces C's view to carry [A] unnecessarily... cost must agree with the
	// structural ranking even without stats.
	q := query.MustNew("q", nil,
		query.RelDef{Name: "R", Schema: data.NewSchema("A", "B")},
		query.RelDef{Name: "S", Schema: data.NewSchema("B", "C")},
	)
	m := NewCostModel(q, nil, nil)

	good := MustNew(V("B", V("A"), V("C")))
	if err := good.Prepare(q); err != nil {
		t.Fatal(err)
	}
	bad := MustNew(V("A", V("B", V("C"))))
	if err := bad.Prepare(q); err != nil {
		t.Fatal(err)
	}
	if gc, bc := m.Cost(good).Total(), m.Cost(bad).Total(); gc >= bc {
		t.Fatalf("cost(good)=%v >= cost(bad)=%v", gc, bc)
	}
}

func TestChooseMatchesHandpickedShapeOnPaperWorkloads(t *testing.T) {
	// Star join on one variable: the chosen order must root at the join
	// variable with one chain per relation (the Housing handpicked shape).
	q := query.MustNew("star", nil,
		query.RelDef{Name: "R", Schema: data.NewSchema("K", "a1", "a2")},
		query.RelDef{Name: "S", Schema: data.NewSchema("K", "b1")},
		query.RelDef{Name: "T", Schema: data.NewSchema("K", "c1", "c2")},
	)
	o, err := Choose(q, ChooseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Roots) != 1 || o.Roots[0].Var != "K" {
		t.Fatalf("star root = %v", o.String())
	}
	if len(o.Roots[0].Children) != 3 {
		t.Fatalf("star branches = %d: %s", len(o.Roots[0].Children), o.String())
	}
	if err := o.Validate(q); err != nil {
		t.Fatal(err)
	}
}

func TestChooseTriangleRanksRotationsByStats(t *testing.T) {
	q := triQuery()
	// C is by far the widest variable: the best rotation marginalizes C
	// deepest so the stored pairwise view is keyed by the two narrow
	// variables [A,B].
	st := seedStats(t, q, map[string]int{"R": 2000, "S": 2000, "T": 2000},
		map[string][]int{"R": {50, 60}, "S": {60, 1000}, "T": {1000, 50}})
	o, err := Choose(q, ChooseOptions{Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Prepare(q); err != nil {
		t.Fatal(err)
	}
	// The deepest variable of a triangle order is the one marginalized at
	// the pairwise-join view.
	deepest := o.Roots[0]
	for len(deepest.Children) > 0 {
		deepest = deepest.Children[0]
	}
	if deepest.Var != "C" {
		t.Fatalf("chosen order %s does not marginalize the wide variable C deepest", o.String())
	}

	// And the chosen rotation must cost no more than the other two.
	m := NewCostModel(q, st, nil)
	chosenCost := m.Cost(o).Total()
	for _, alt := range []*Order{
		MustNew(V("A", V("B", V("C")))),
		MustNew(V("B", V("C", V("A")))),
		MustNew(V("C", V("A", V("B")))),
	} {
		if err := alt.Prepare(q); err != nil {
			t.Fatal(err)
		}
		if ac := m.Cost(alt).Total(); chosenCost > ac*1.0001 {
			t.Fatalf("chosen cost %v exceeds rotation %s cost %v", chosenCost, alt.String(), ac)
		}
	}
}

func TestChooseFreeVariablesStayAboveBound(t *testing.T) {
	q := query.MustNew("grp", data.NewSchema("A"),
		query.RelDef{Name: "R", Schema: data.NewSchema("A", "B")},
		query.RelDef{Name: "S", Schema: data.NewSchema("B", "C")},
	)
	o, err := Choose(q, ChooseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := o.NodeOf("A")
	for p := n.Parent(); p != nil; p = p.Parent() {
		if !q.Free.Contains(p.Var) {
			t.Fatalf("free variable A below bound %s in %s", p.Var, o.String())
		}
	}
}

func TestChooseBudgetFallsBackToGreedy(t *testing.T) {
	q := triQuery()
	o, err := Choose(q, ChooseOptions{Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(q); err != nil {
		t.Fatalf("fallback order invalid: %v", err)
	}
}

func TestChooseNeverWorseThanGreedy(t *testing.T) {
	queries := []query.Query{
		triQuery(),
		query.MustNew("snow", nil,
			query.RelDef{Name: "F", Schema: data.NewSchema("l", "d", "k", "u")},
			query.RelDef{Name: "I", Schema: data.NewSchema("k", "s", "c")},
			query.RelDef{Name: "W", Schema: data.NewSchema("l", "d", "r")},
			query.RelDef{Name: "L", Schema: data.NewSchema("l", "z", "x")},
			query.RelDef{Name: "C", Schema: data.NewSchema("z", "p")},
		),
	}
	for _, q := range queries {
		cards := map[string]int{}
		for i, rd := range q.Rels {
			cards[rd.Name] = 100 * (i + 1)
		}
		st := seedStats(t, q, cards, nil)
		m := NewCostModel(q, st, nil)
		chosen, err := Choose(q, ChooseOptions{Model: m})
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		greedy, err := Build(q)
		if err != nil {
			t.Fatal(err)
		}
		cc, gc := m.Cost(chosen).Total(), m.Cost(greedy).Total()
		if cc > gc*1.0001 {
			t.Fatalf("%s: chosen %v worse than greedy %v", q.Name, cc, gc)
		}
		if w := chosen.Width(q); w > greedy.Width(q)+1 {
			t.Fatalf("%s: chosen width %d far above greedy %d", q.Name, w, greedy.Width(q))
		}
	}
}
