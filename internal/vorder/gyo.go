package vorder

import (
	"sort"

	"fivm/internal/data"
)

// Hyperedge is a named set of variables, one per relation (or per child view
// schema) in a hypergraph.
type Hyperedge struct {
	Name string
	Vars data.Schema
}

// GYO runs the GYO (Graham / Yu–Özsoyoğlu) reduction, Fagin et al. variant,
// on the hypergraph: it repeatedly removes ear vertices (variables occurring
// in exactly one edge) and edges contained in other edges. It returns the
// residual edges — the cyclic core. An empty residue means the hypergraph is
// α-acyclic. The paper's indicator-projection algorithm (Figure 10) uses the
// residue to decide which relations participate in a cycle at a view; the
// order enumerator uses the same ear/join-variable distinction to pick its
// branch candidates.
//
// Edge cases, pinned by tests:
//
//   - Duplicate variables within one hyperedge are deduplicated before the
//     reduction (a set semantics; data.Schema invariants normally rule them
//     out, but hand-built edges may carry them). Without deduplication a
//     variable repeated inside a single edge would count as "shared" and
//     incorrectly survive ear removal.
//   - A single-edge hypergraph is always α-acyclic: every variable is an
//     ear, the emptied edge is then removed, and the residue is empty.
//   - A fully cyclic core (triangle, chordless cycles) has no ears at all:
//     the reduction leaves every edge untouched and returns them all,
//     sorted by name.
func GYO(edges []Hyperedge) []Hyperedge {
	// Work on deduplicated copies so callers' edges are untouched and
	// within-edge duplicates cannot masquerade as shared variables.
	work := make([]Hyperedge, len(edges))
	for i, e := range edges {
		var vars data.Schema
		for _, v := range e.Vars {
			if !vars.Contains(v) {
				vars = append(vars, v)
			}
		}
		work[i] = Hyperedge{Name: e.Name, Vars: vars}
	}
	alive := make([]bool, len(work))
	for i := range alive {
		alive[i] = true
	}

	changed := true
	for changed {
		changed = false

		// Count occurrences of each variable among live edges.
		count := make(map[string]int)
		for i, e := range work {
			if !alive[i] {
				continue
			}
			for _, v := range e.Vars {
				count[v]++
			}
		}

		// Remove ear vertices: variables occurring in exactly one edge.
		for i := range work {
			if !alive[i] {
				continue
			}
			var kept data.Schema
			for _, v := range work[i].Vars {
				if count[v] > 1 {
					kept = append(kept, v)
				}
			}
			if len(kept) != len(work[i].Vars) {
				work[i].Vars = kept
				changed = true
			}
		}

		// Remove edges whose variable set is contained in another live edge
		// (including empty edges).
		for i := range work {
			if !alive[i] {
				continue
			}
			if len(work[i].Vars) == 0 {
				alive[i] = false
				changed = true
				continue
			}
			for j := range work {
				if i == j || !alive[j] {
					continue
				}
				if work[j].Vars.ContainsAll(work[i].Vars) &&
					(len(work[j].Vars) > len(work[i].Vars) || j < i) {
					alive[i] = false
					changed = true
					break
				}
			}
		}
	}

	var out []Hyperedge
	for i, e := range edges {
		if alive[i] {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// IsAcyclic reports whether the hypergraph is α-acyclic.
func IsAcyclic(edges []Hyperedge) bool { return len(GYO(edges)) == 0 }
