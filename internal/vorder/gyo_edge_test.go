package vorder

import (
	"testing"

	"fivm/internal/data"
)

// TestGYODuplicateVarsWithinEdge pins the set semantics: a variable
// repeated inside a single hyperedge must not count as shared. R(A,A,B)
// alone is a single-relation hypergraph and therefore acyclic.
func TestGYODuplicateVarsWithinEdge(t *testing.T) {
	edges := []Hyperedge{{Name: "R", Vars: data.Schema{"A", "A", "B"}}}
	if core := GYO(edges); len(core) != 0 {
		t.Fatalf("duplicate-var single edge reported cyclic: %v", core)
	}
	// Duplicates must also not change the verdict when the variable is
	// genuinely shared with another edge.
	edges = []Hyperedge{
		{Name: "R", Vars: data.Schema{"A", "A", "B"}},
		{Name: "S", Vars: data.Schema{"B", "C"}},
	}
	if !IsAcyclic(edges) {
		t.Fatal("path R-S with an internal duplicate reported cyclic")
	}
	// And the caller's slices stay untouched.
	if len(edges[0].Vars) != 3 {
		t.Fatal("GYO mutated the caller's edge")
	}
}

// TestGYOSingleEdge pins that any one-edge hypergraph is acyclic: all its
// variables are ears, after which the empty edge is removed.
func TestGYOSingleEdge(t *testing.T) {
	for _, vars := range []data.Schema{
		data.NewSchema("A"),
		data.NewSchema("A", "B", "C", "D"),
	} {
		if core := GYO([]Hyperedge{{Name: "R", Vars: vars}}); len(core) != 0 {
			t.Fatalf("single edge %v reported cyclic: %v", vars, core)
		}
	}
}

// TestGYOFullyCyclicCoreIsFixpoint pins that a chordless cycle has no ears:
// the reduction removes nothing and returns every edge, sorted by name.
func TestGYOFullyCyclicCoreIsFixpoint(t *testing.T) {
	square := []Hyperedge{
		{Name: "R4", Vars: data.NewSchema("D", "A")},
		{Name: "R1", Vars: data.NewSchema("A", "B")},
		{Name: "R2", Vars: data.NewSchema("B", "C")},
		{Name: "R3", Vars: data.NewSchema("C", "D")},
	}
	core := GYO(square)
	if len(core) != 4 {
		t.Fatalf("4-cycle core = %v", core)
	}
	for i, want := range []string{"R1", "R2", "R3", "R4"} {
		if core[i].Name != want {
			t.Fatalf("core order = %v, want sorted by name", core)
		}
		if len(core[i].Vars) != 2 {
			t.Fatalf("core edge %s lost variables: %v", core[i].Name, core[i].Vars)
		}
	}
	// A triangle with an attached ear path reduces to exactly the triangle.
	tri := []Hyperedge{
		{Name: "R", Vars: data.NewSchema("A", "B")},
		{Name: "S", Vars: data.NewSchema("B", "C")},
		{Name: "T", Vars: data.NewSchema("C", "A")},
		{Name: "Tail", Vars: data.NewSchema("C", "X", "Y")},
	}
	core = GYO(tri)
	if len(core) != 3 {
		t.Fatalf("triangle+tail core = %v", core)
	}
}
