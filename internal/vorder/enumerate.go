package vorder

import (
	"errors"
	"sort"
	"strings"

	"fivm/internal/data"
	"fivm/internal/query"
)

// ChooseOptions configures the cost-based order search.
type ChooseOptions struct {
	// Stats supplies cardinalities, distinct counts, and delta rates; nil
	// falls back to structural defaults.
	Stats *data.Stats
	// Updatable lists the relations that receive deltas (nil/empty = all);
	// only their maintenance paths contribute update cost.
	Updatable []string
	// Model overrides the cost model built from Stats/Updatable (used to
	// share one model across repeated calls).
	Model *CostModel
	// Budget caps the number of distinct subproblems the enumerator expands
	// (default 20000); on exhaustion Choose falls back to the greedy Build
	// heuristic.
	Budget int
}

// defaultChooseBudget bounds the memoized search; realistic queries have a
// handful of join variables and use a tiny fraction of it.
const defaultChooseBudget = 20000

var errBudget = errors.New("vorder: enumeration budget exhausted")

// Choose selects a variable order for the query by enumerating canonical
// candidates and ranking them with the cost model — the system's replacement
// for caller-supplied handpicked orders.
//
// The enumeration is GYO-guided: variables occurring in two or more
// hyperedges (the ones GYO's ear removal cannot immediately eliminate) are
// the only branch candidates, enumerated top-down over the connected
// components of the join hypergraph exactly as Build decomposes it; a
// relation's private variables — GYO ears — are placed as a canonical chain
// below the relation's anchor, where every candidate order would put them
// anyway. Free variables are placed above bound ones, as group-by queries
// require. Subproblems are memoized on the residual hypergraph (component
// costs are context-independent: a view's key schema is determined by the
// variables already removed from its component's relations), so shared
// sub-orders are solved once and reused across candidates.
//
// The returned order is prepared for q. Choose never returns an order that
// the model ranks worse than the greedy Build heuristic.
func Choose(q query.Query, opts ChooseOptions) (*Order, error) {
	m := opts.Model
	if m == nil {
		m = NewCostModel(q, opts.Stats, opts.Updatable)
	}
	greedy, gerr := Build(q)
	if len(q.Rels) == 0 {
		return greedy, gerr
	}

	en := &enumerator{
		m:      m,
		free:   q.Free,
		budget: opts.Budget,
		memo:   make(map[string]memoEntry),
	}
	if en.budget <= 0 {
		en.budget = defaultChooseBudget
	}

	edges := make([]hedge, 0, len(q.Rels))
	for _, rd := range q.Rels {
		edges = append(edges, hedge{name: rd.Name, orig: rd.Schema, rem: rd.Schema})
	}

	var builders []func() *Node
	for _, comp := range splitHedges(edges) {
		entry, err := en.solve(comp)
		if err != nil {
			return greedy, gerr // budget exhausted: greedy fallback
		}
		builders = append(builders, entry.build)
	}
	roots := make([]*Node, 0, len(builders))
	for _, b := range builders {
		roots = append(roots, b())
	}
	chosen, err := New(roots...)
	if err != nil {
		return greedy, gerr
	}
	if err := chosen.Prepare(q); err != nil {
		return greedy, gerr
	}
	// Safety net: if the exact walk over the assembled order disagrees with
	// the additive DP estimate and ranks the greedy order lower, prefer it.
	if gerr == nil && m.Cost(greedy).Total() < m.Cost(chosen).Total() {
		return greedy, nil
	}
	return chosen, nil
}

// hedge is a relation during enumeration: its original schema and the
// variables not yet consumed by ancestors.
type hedge struct {
	name string
	orig data.Schema
	rem  data.Schema
}

type memoEntry struct {
	cost float64
	// build constructs a fresh subtree (nodes carry parent pointers, so a
	// memoized result must be re-instantiated at every use site).
	build func() *Node
}

type enumerator struct {
	m          *CostModel
	free       data.Schema
	memo       map[string]memoEntry
	budget     int
	expansions int
}

// key canonicalizes a component for memoization.
func componentKey(es []hedge) string {
	names := make([]string, len(es))
	for i, e := range es {
		names[i] = e.name + ":" + strings.Join(e.rem, ",")
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}

// splitHedges partitions edges into connected components by shared remaining
// variables, preserving first-edge order; edges with no remaining variables
// are dropped (they are anchored above).
func splitHedges(es []hedge) [][]hedge {
	parent := make([]int, len(es))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	byVar := make(map[string]int)
	for i, e := range es {
		for _, v := range e.rem {
			if j, ok := byVar[v]; ok {
				parent[find(i)] = find(j)
			} else {
				byVar[v] = i
			}
		}
	}
	groups := make(map[int][]hedge)
	var order []int
	for i, e := range es {
		if len(e.rem) == 0 {
			continue
		}
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], e)
	}
	out := make([][]hedge, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

// nodeCost estimates the cost contribution of the view at variable v rooted
// over component es (v must still be remaining): an amortized storage term
// plus the rate-weighted delta sizes of the component's updatable relations.
// It also returns the view's estimated key schema.
func (en *enumerator) nodeCost(es []hedge, v string) (float64, data.Schema) {
	var removed, remaining data.Schema
	for _, e := range es {
		removed = removed.Union(e.orig.Minus(e.rem))
		remaining = remaining.Union(e.rem)
	}
	keys := removed.Union(en.free.Intersect(remaining))
	if !en.free.Contains(v) {
		keys = keys.Minus(data.Schema{v})
	}
	rels := make([]string, len(es))
	for i, e := range es {
		rels[i] = e.name
	}
	size := en.m.ViewSizeOver(keys, rels)
	cost := en.m.memW * size
	for _, e := range es {
		if r := en.m.Rate(e.name); r > 0 {
			cost += r * en.m.DeltaSizeOver(keys, e.orig, rels)
		}
	}
	return cost, keys
}

// solve returns the cheapest subtree for a connected component.
func (en *enumerator) solve(es []hedge) (memoEntry, error) {
	key := componentKey(es)
	if entry, ok := en.memo[key]; ok {
		return entry, nil
	}
	en.expansions++
	if en.expansions > en.budget {
		return memoEntry{}, errBudget
	}

	// Candidate roots: free variables first (they must sit above bound
	// ones), then the join variables — those in >= 2 edges, which GYO's ear
	// removal cannot eliminate. A component with neither is a single
	// relation's private chain.
	count := make(map[string]int)
	var varOrder data.Schema
	for _, e := range es {
		for _, v := range e.rem {
			if count[v] == 0 {
				varOrder = append(varOrder, v)
			}
			count[v]++
		}
	}
	var cands []string
	for _, v := range varOrder {
		if en.free.Contains(v) {
			cands = append(cands, v)
		}
	}
	if len(cands) == 0 {
		for _, v := range varOrder {
			if count[v] >= 2 {
				cands = append(cands, v)
			}
		}
	}
	if len(cands) == 0 {
		entry := en.chain(es[0])
		en.memo[key] = entry
		return entry, nil
	}
	// Deterministic exploration: prefer higher coverage, then name.
	sort.Slice(cands, func(i, j int) bool {
		if count[cands[i]] != count[cands[j]] {
			return count[cands[i]] > count[cands[j]]
		}
		return cands[i] < cands[j]
	})

	best := memoEntry{cost: -1}
	for _, v := range cands {
		cost, _ := en.nodeCost(es, v)
		next := make([]hedge, len(es))
		for i, e := range es {
			next[i] = hedge{name: e.name, orig: e.orig, rem: e.rem.Minus(data.Schema{v})}
		}
		var childBuilders []func() *Node
		ok := true
		for _, comp := range splitHedges(next) {
			entry, err := en.solve(comp)
			if err != nil {
				return memoEntry{}, err
			}
			cost += entry.cost
			childBuilders = append(childBuilders, entry.build)
			if best.cost >= 0 && cost >= best.cost {
				ok = false
				break
			}
		}
		if !ok || (best.cost >= 0 && cost >= best.cost) {
			continue
		}
		v := v
		builders := childBuilders
		best = memoEntry{cost: cost, build: func() *Node {
			n := V(v)
			for _, b := range builders {
				n.Children = append(n.Children, b())
			}
			return n
		}}
	}
	en.memo[key] = best
	return best, nil
}

// chain places a single relation's private variables as a canonical
// root-to-leaf chain (free variables first, otherwise schema order) and
// sums the per-node costs.
func (en *enumerator) chain(e hedge) memoEntry {
	var vars data.Schema
	for _, v := range e.rem {
		if en.free.Contains(v) {
			vars = append(vars, v)
		}
	}
	for _, v := range e.rem {
		if !en.free.Contains(v) {
			vars = append(vars, v)
		}
	}
	cost := 0.0
	cur := e
	for _, v := range vars {
		c, _ := en.nodeCost([]hedge{cur}, v)
		cost += c
		cur = hedge{name: cur.name, orig: cur.orig, rem: cur.rem.Minus(data.Schema{v})}
	}
	chainVars := vars
	return memoEntry{cost: cost, build: func() *Node { return Chain(chainVars...) }}
}
