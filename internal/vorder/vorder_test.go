package vorder

import (
	"strings"
	"testing"

	"fivm/internal/data"
	"fivm/internal/query"
)

// paperQuery is the running example: R(A,B) ⋈ S(A,C,E) ⋈ T(C,D).
func paperQuery(free ...string) query.Query {
	return query.MustNew("Q", data.Schema(free),
		query.RelDef{Name: "R", Schema: data.NewSchema("A", "B")},
		query.RelDef{Name: "S", Schema: data.NewSchema("A", "C", "E")},
		query.RelDef{Name: "T", Schema: data.NewSchema("C", "D")},
	)
}

// paperOrder is the variable order of Figure 2a: A(B, C(D, E)).
func paperOrder() *Order {
	return MustNew(V("A", V("B"), V("C", V("D"), V("E"))))
}

func TestPaperOrderDeps(t *testing.T) {
	q := paperQuery()
	o := paperOrder()
	if err := o.Prepare(q); err != nil {
		t.Fatal(err)
	}
	// Figure 2a: dep(A)=∅, dep(B)={A}, dep(C)={A}, dep(D)={C}, dep(E)={A,C}.
	want := map[string][]string{
		"A": nil,
		"B": {"A"},
		"C": {"A"},
		"D": {"C"},
		"E": {"A", "C"},
	}
	for v, deps := range want {
		n := o.NodeOf(v)
		if n == nil {
			t.Fatalf("missing node %q", v)
		}
		if !n.Dep.SameSet(data.Schema(deps)) {
			t.Errorf("dep(%s) = %v, want %v", v, n.Dep, deps)
		}
	}
}

func TestPaperOrderAnchors(t *testing.T) {
	q := paperQuery()
	o := paperOrder()
	if err := o.Prepare(q); err != nil {
		t.Fatal(err)
	}
	// R's deepest variable is B, T's is D, S's is E.
	for v, rel := range map[string]string{"B": "R", "D": "T", "E": "S"} {
		n := o.NodeOf(v)
		if len(n.Rels) != 1 || n.Rels[0] != rel {
			t.Errorf("rels(%s) = %v, want [%s]", v, n.Rels, rel)
		}
	}
	if len(o.NodeOf("A").Rels) != 0 || len(o.NodeOf("C").Rels) != 0 {
		t.Error("inner nodes should anchor no relations")
	}
}

func TestValidateRejectsSplitRelation(t *testing.T) {
	q := paperQuery()
	// B and A on different branches: R(A,B) violates the path constraint.
	o := MustNew(V("C", V("A", V("E")), V("B"), V("D")))
	if err := o.Validate(q); err == nil {
		t.Error("expected path-constraint violation")
	} else if !strings.Contains(err.Error(), "R") {
		t.Errorf("error should name relation R: %v", err)
	}
}

func TestValidateRejectsMissingVariable(t *testing.T) {
	q := paperQuery()
	o := MustNew(V("A", V("B"), V("C", V("D"))))
	if err := o.Validate(q); err == nil {
		t.Error("expected missing-variable error")
	}
}

func TestValidateRejectsExtraVariable(t *testing.T) {
	q := paperQuery()
	o := MustNew(V("A", V("B"), V("C", V("D"), V("E"), V("Z"))))
	if err := o.Validate(q); err == nil {
		t.Error("expected extra-variable error")
	}
}

func TestChainOrderIsAlwaysValid(t *testing.T) {
	q := paperQuery()
	o := MustNew(Chain("A", "C", "B", "D", "E"))
	if err := o.Prepare(q); err != nil {
		t.Fatalf("chain order should be valid: %v", err)
	}
}

func TestDuplicateVariableRejected(t *testing.T) {
	if _, err := New(V("A", V("B"), V("B"))); err == nil {
		t.Error("expected duplicate-variable error")
	}
}

func TestBuildPaperQuery(t *testing.T) {
	q := paperQuery()
	o, err := Build(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(q); err != nil {
		t.Errorf("Build produced invalid order: %v", err)
	}
	// A and C occur in two relations each; they should sit above B, D, E.
	for _, v := range []string{"B", "D", "E"} {
		n := o.NodeOf(v)
		anc := o.Ancestors(n)
		if len(anc) == 0 {
			t.Errorf("%s should not be a root", v)
		}
	}
}

func TestBuildPutsFreeVariablesOnTop(t *testing.T) {
	q := paperQuery("E", "D")
	o, err := Build(q)
	if err != nil {
		t.Fatal(err)
	}
	// Free variables must not have bound ancestors.
	for _, v := range []string{"E", "D"} {
		for _, a := range o.Ancestors(o.NodeOf(v)) {
			if !q.Free.Contains(a) {
				t.Errorf("free variable %s below bound variable %s", v, a)
			}
		}
	}
}

func TestBuildTriangleQuery(t *testing.T) {
	q := query.MustNew("tri", nil,
		query.RelDef{Name: "R", Schema: data.NewSchema("A", "B")},
		query.RelDef{Name: "S", Schema: data.NewSchema("B", "C")},
		query.RelDef{Name: "T", Schema: data.NewSchema("C", "A")},
	)
	o, err := Build(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(q); err != nil {
		t.Errorf("triangle order invalid: %v", err)
	}
}

func TestBuildStarQuery(t *testing.T) {
	q := query.MustNew("star", nil,
		query.RelDef{Name: "R1", Schema: data.NewSchema("P", "X1")},
		query.RelDef{Name: "R2", Schema: data.NewSchema("P", "X2")},
		query.RelDef{Name: "R3", Schema: data.NewSchema("P", "X3")},
	)
	o, err := Build(q)
	if err != nil {
		t.Fatal(err)
	}
	// P occurs in all three relations: it must be the root.
	if len(o.Roots) != 1 || o.Roots[0].Var != "P" {
		t.Errorf("root = %v, want P", o.Roots[0].Var)
	}
	// Each Xi hangs below P independently.
	if got := len(o.Roots[0].Children); got != 3 {
		t.Errorf("children = %d, want 3", got)
	}
}

func TestOrderString(t *testing.T) {
	q := paperQuery()
	o := paperOrder()
	if err := o.Prepare(q); err != nil {
		t.Fatal(err)
	}
	s := o.String()
	for _, frag := range []string{"A(", "B{R}", "D{T}", "E{S}"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q, missing %q", s, frag)
		}
	}
}

// --- GYO -------------------------------------------------------------------

func TestGYOAcyclicPath(t *testing.T) {
	edges := []Hyperedge{
		{Name: "R", Vars: data.NewSchema("A", "B")},
		{Name: "S", Vars: data.NewSchema("B", "C")},
		{Name: "T", Vars: data.NewSchema("C", "D")},
	}
	if !IsAcyclic(edges) {
		t.Error("path join should be acyclic")
	}
}

func TestGYOTriangleIsCyclic(t *testing.T) {
	edges := []Hyperedge{
		{Name: "R", Vars: data.NewSchema("A", "B")},
		{Name: "S", Vars: data.NewSchema("B", "C")},
		{Name: "T", Vars: data.NewSchema("C", "A")},
	}
	core := GYO(edges)
	if len(core) != 3 {
		t.Errorf("triangle core = %d edges, want 3", len(core))
	}
}

func TestGYOSnowflakeIsAcyclic(t *testing.T) {
	edges := []Hyperedge{
		{Name: "Inv", Vars: data.NewSchema("locn", "dateid", "ksn")},
		{Name: "Item", Vars: data.NewSchema("ksn")},
		{Name: "Weather", Vars: data.NewSchema("locn", "dateid")},
		{Name: "Loc", Vars: data.NewSchema("locn", "zip")},
		{Name: "Census", Vars: data.NewSchema("zip")},
	}
	if !IsAcyclic(edges) {
		t.Error("snowflake should be acyclic")
	}
}

func TestGYOLoop4WithChord(t *testing.T) {
	// Loop of 4 with a chord: the chord closes two triangles; the core is
	// non-empty.
	edges := []Hyperedge{
		{Name: "R1", Vars: data.NewSchema("A", "B")},
		{Name: "R2", Vars: data.NewSchema("B", "C")},
		{Name: "R3", Vars: data.NewSchema("C", "D")},
		{Name: "R4", Vars: data.NewSchema("D", "A")},
		{Name: "Chord", Vars: data.NewSchema("A", "C")},
	}
	core := GYO(edges)
	if len(core) == 0 {
		t.Error("loop-4 with chord should have a cyclic core")
	}
}

func TestGYOContainedEdgeRemoved(t *testing.T) {
	edges := []Hyperedge{
		{Name: "Big", Vars: data.NewSchema("A", "B", "C")},
		{Name: "Small", Vars: data.NewSchema("A", "B")},
	}
	if !IsAcyclic(edges) {
		t.Error("contained edges reduce away")
	}
}

func TestGYODoesNotMutateInput(t *testing.T) {
	edges := []Hyperedge{
		{Name: "R", Vars: data.NewSchema("A", "B")},
		{Name: "S", Vars: data.NewSchema("B", "C")},
	}
	GYO(edges)
	if len(edges[0].Vars) != 2 || len(edges[1].Vars) != 2 {
		t.Error("GYO mutated its input")
	}
}

func TestWidth(t *testing.T) {
	q := paperQuery()
	// The bushy paper order has width 2 (dep(E) = {A,C}).
	bushy := paperOrder()
	if err := bushy.Prepare(q); err != nil {
		t.Fatal(err)
	}
	if got := bushy.Width(q); got != 2 {
		t.Errorf("bushy width = %d, want 2", got)
	}
	// A chain order has at least that width; often more.
	chain := MustNew(Chain("B", "A", "E", "D", "C"))
	if err := chain.Prepare(q); err != nil {
		t.Fatal(err)
	}
	if chain.Width(q) < bushy.Width(q) {
		t.Errorf("chain width %d below bushy %d", chain.Width(q), bushy.Width(q))
	}
}

func TestWidthCountsFreeVariables(t *testing.T) {
	q := paperQuery("A", "C")
	o := paperOrder()
	if err := o.Prepare(q); err != nil {
		t.Fatal(err)
	}
	// E keeps dep {A,C} and is bound; C is free with dep {A}: width 2.
	if got := o.Width(q); got != 2 {
		t.Errorf("width = %d, want 2", got)
	}
}
