package vorder

import (
	"fmt"

	"fivm/internal/data"
	"fivm/internal/query"
)

// Default estimates used for relations and variables with no collected
// statistics. Their absolute values barely matter — candidate orders are
// compared against each other under the same defaults, so with no stats the
// cost model degenerates to a structural ranking that generalizes Width
// (smaller view key schemas and shorter shared paths win).
const (
	defaultCard     = 1024
	defaultDistinct = 32
	minStreamLen    = 1024
)

// CostModel estimates view sizes and per-update maintenance costs for
// candidate variable orders from collected statistics (data.Stats). It
// replaces the width-only ranking of Order.Width: where width bounds every
// view by |D|^k, the model estimates each view's actual size from
// per-variable distinct counts and per-relation cardinalities, and weights
// each updatable relation's leaf-to-root delta path by its observed share of
// the update stream.
type CostModel struct {
	q     query.Query
	stats *data.Stats

	card map[string]float64 // per relation
	dist map[string]float64 // per variable: min across containing relations
	rate map[string]float64 // per relation: share of update traffic (0 if not updatable)
	memW float64            // amortized cost of one stored view entry, in update-ops
}

// NewCostModel builds a cost model for the query from collected statistics
// (st may be nil: structural defaults apply) and the set of updatable
// relations (nil or empty means all).
func NewCostModel(q query.Query, st *data.Stats, updatable []string) *CostModel {
	m := &CostModel{
		q:     q,
		stats: st,
		card:  make(map[string]float64, len(q.Rels)),
		dist:  make(map[string]float64),
		rate:  make(map[string]float64, len(q.Rels)),
	}

	for _, rd := range q.Rels {
		c := float64(0)
		if rs := st.Lookup(rd.Name); rs != nil {
			c = rs.Card()
		}
		if c <= 0 {
			c = defaultCard
		}
		m.card[rd.Name] = c
	}

	// Distinct counts: the join binds each variable at least as tightly as
	// its most selective relation, so take the min across containing
	// relations, clamped to [1, card].
	for _, v := range q.Vars() {
		best := 0.0
		for _, rd := range q.Rels {
			if !rd.Schema.Contains(v) {
				continue
			}
			d := 0.0
			if rs := st.Lookup(rd.Name); rs != nil {
				d = rs.Distinct(v)
			}
			if d <= 0 {
				d = defaultDistinct
			}
			if c := m.card[rd.Name]; d > c {
				d = c
			}
			if best == 0 || d < best {
				best = d
			}
		}
		if best < 1 {
			best = 1
		}
		m.dist[v] = best
	}

	// Update-rate shares: observed delta traffic with a cardinality-
	// proportional prior (round-robin streams feed relations until they
	// exhaust, so larger relations see more updates). Non-updatable
	// relations get rate 0 — their paths are never exercised.
	upd := make(map[string]bool, len(updatable))
	for _, r := range updatable {
		upd[r] = true
	}
	totalCard := 0.0
	for _, rd := range q.Rels {
		if len(upd) == 0 || upd[rd.Name] {
			totalCard += m.card[rd.Name]
		}
	}
	var totalDeltas float64
	for _, rd := range q.Rels {
		if rs := st.Lookup(rd.Name); rs != nil {
			totalDeltas += float64(rs.DeltaTuples)
		}
	}
	const priorWeight = 1024
	for _, rd := range q.Rels {
		if len(upd) > 0 && !upd[rd.Name] {
			continue
		}
		observed := 0.0
		if rs := st.Lookup(rd.Name); rs != nil {
			observed = float64(rs.DeltaTuples)
		}
		prior := 0.0
		if totalCard > 0 {
			prior = m.card[rd.Name] / totalCard
		}
		m.rate[rd.Name] = (observed + priorWeight*prior) / (totalDeltas + priorWeight)
	}

	// One stored entry costs one merge to build; amortized over the expected
	// stream length it becomes the per-update price of materialized state.
	horizon := totalCard
	if st != nil {
		if d := float64(st.TotalDeltaTuples()); d > horizon {
			horizon = d
		}
	}
	if horizon < minStreamLen {
		horizon = minStreamLen
	}
	m.memW = 1 / horizon
	return m
}

// Distinct returns the estimated distinct count of a variable in the join.
func (m *CostModel) Distinct(v string) float64 {
	if d, ok := m.dist[v]; ok {
		return d
	}
	return defaultDistinct
}

// RelCard returns the estimated cardinality of a relation.
func (m *CostModel) RelCard(name string) float64 {
	if c, ok := m.card[name]; ok {
		return c
	}
	return defaultCard
}

// Rate returns a relation's estimated share of the update stream (0 for
// non-updatable relations).
func (m *CostModel) Rate(name string) float64 { return m.rate[name] }

// ViewSizeOver estimates the cardinality of a view with the given key
// schema, defined over the named relations: the product of the keys'
// distinct counts, capped by any single participating relation whose schema
// covers all the keys (a view cannot have more keys than a relation it
// joins in and projects from). rels == nil means all query relations.
func (m *CostModel) ViewSizeOver(keys data.Schema, rels []string) float64 {
	size := 1.0
	for _, v := range keys {
		size *= m.Distinct(v)
	}
	for _, rd := range m.q.Rels {
		if rels != nil && !containsStr(rels, rd.Name) {
			continue
		}
		if rd.Schema.ContainsAll(keys) {
			if c := m.RelCard(rd.Name); c < size {
				size = c
			}
		}
	}
	if size < 1 {
		size = 1
	}
	return size
}

// ViewSize is ViewSizeOver across all query relations.
func (m *CostModel) ViewSize(keys data.Schema) float64 { return m.ViewSizeOver(keys, nil) }

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// varFanout estimates how many values of v join with one already-bound
// tuple: the per-tuple degree of v's most selective relation, capped by v's
// distinct count.
func (m *CostModel) varFanout(v string) float64 {
	f := m.Distinct(v)
	for _, rd := range m.q.Rels {
		if !rd.Schema.Contains(v) {
			continue
		}
		co := 1.0
		for _, w := range rd.Schema {
			if w != v {
				co *= m.Distinct(w)
			}
		}
		deg := m.RelCard(rd.Name) / co
		if deg < 1 {
			deg = 1
		}
		if deg < f {
			f = deg
		}
	}
	return f
}

// DeltaSize estimates the number of entries in the delta of a view with the
// given keys caused by a single-tuple update to a relation with schema
// relSchema: one entry per combination of key variables the update does not
// bind, each weighted by its join fanout, capped by the view size. This is
// the quantity the paper's O(1)-vs-O(N) update-cost distinction measures —
// orders that keep an updatable relation's variables covering its path have
// DeltaSize 1 all the way to the root.
func (m *CostModel) DeltaSize(keys data.Schema, relSchema data.Schema) float64 {
	return m.DeltaSizeOver(keys, relSchema, nil)
}

// DeltaSizeOver is DeltaSize with the view's defining relations known, so
// the view-size cap is not polluted by unrelated covering relations.
func (m *CostModel) DeltaSizeOver(keys, relSchema data.Schema, rels []string) float64 {
	size := 1.0
	for _, v := range keys {
		if !relSchema.Contains(v) {
			size *= m.varFanout(v)
		}
	}
	if vs := m.ViewSizeOver(keys, rels); vs < size {
		size = vs
	}
	if size < 1 {
		size = 1
	}
	return size
}

// DeltaSizeFor is DeltaSizeOver for a named relation of the model's query.
func (m *CostModel) DeltaSizeFor(keys data.Schema, rel string, over []string) float64 {
	rd, ok := m.q.Rel(rel)
	if !ok {
		return 1
	}
	return m.DeltaSizeOver(keys, rd.Schema, over)
}

// Amortized converts a stored-entry count into per-update cost units.
func (m *CostModel) Amortized(entries float64) float64 { return entries * m.memW }

// JoinFanout estimates the work of joining one tuple with the bound
// variables against views with the given key schemas in sequence (the cost
// of computing a probed view inline from its children instead of storing
// it): probes is the total number of index probes issued, fanout the number
// of output tuples. Each probe's expansion is the ratio of the probed view's
// size to the bound portion of its key — the average bucket size of the
// probe index.
func (m *CostModel) JoinFanout(bound data.Schema, others []data.Schema) (probes, fanout float64) {
	acc := bound.Clone()
	work := 1.0
	probes = 0
	for _, keys := range others {
		probes += work
		boundPart := 1.0
		for _, v := range keys {
			if acc.Contains(v) {
				boundPart *= m.Distinct(v)
			}
		}
		f := m.ViewSize(keys) / boundPart
		if f < 1 {
			f = 1
		}
		work *= f
		acc = acc.Union(keys)
	}
	return probes, work
}

// OrderCost is the estimated cost breakdown of one prepared variable order.
type OrderCost struct {
	// Update is the expected number of join/merge operations per update
	// tuple, summed over the updatable relations' delta paths weighted by
	// their rates.
	Update float64
	// ViewEntries is the estimated total number of stored view entries.
	ViewEntries float64
	// Memory is ViewEntries amortized over the expected stream length, in
	// the same per-update units as Update.
	Memory float64
}

// Total is the scalar the optimizer minimizes.
func (c OrderCost) Total() float64 { return c.Update + c.Memory }

func (c OrderCost) String() string {
	return fmt.Sprintf("total %.3f (update %.3f + mem %.3f, ~%.0f view entries)",
		c.Total(), c.Update, c.Memory, c.ViewEntries)
}

// Cost estimates the cost of a prepared variable order for the model's
// query: for every view the order induces, an amortized storage term plus,
// for each updatable relation anchored below it, the estimated delta size at
// that view weighted by the relation's update rate. The order must have been
// prepared (or built by Build/Choose) for the same query.
func (m *CostModel) Cost(o *Order) OrderCost {
	free := m.q.Free
	var cost OrderCost

	// viewKeys mirrors the viewtree key rule: dep(X) plus retained free
	// variables from below, plus X itself when free.
	var keysOf func(n *Node) data.Schema
	keyMemo := make(map[*Node]data.Schema)
	keysOf = func(n *Node) data.Schema {
		if k, ok := keyMemo[n]; ok {
			return k
		}
		keys := n.Dep.Clone()
		for _, c := range n.Children {
			keys = keys.Union(free.Intersect(keysOf(c)))
		}
		for _, rel := range n.Rels {
			if rd, ok := m.q.Rel(rel); ok {
				keys = keys.Union(free.Intersect(rd.Schema))
			}
		}
		if free.Contains(n.Var) {
			keys = keys.Union(data.Schema{n.Var})
		} else {
			keys = keys.Minus(data.Schema{n.Var})
		}
		keyMemo[n] = keys
		return keys
	}

	// relsBelow accumulates, per node, the relations anchored in its subtree
	// (the relations whose delta paths pass through the node's view).
	var walk func(n *Node) []string
	walk = func(n *Node) []string {
		rels := append([]string(nil), n.Rels...)
		for _, c := range n.Children {
			rels = append(rels, walk(c)...)
		}
		keys := keysOf(n)
		size := m.ViewSizeOver(keys, rels)
		cost.ViewEntries += size
		cost.Memory += m.memW * size
		for _, rel := range rels {
			r := m.rate[rel]
			if r == 0 {
				continue
			}
			rd, _ := m.q.Rel(rel)
			cost.Update += r * m.DeltaSizeOver(keys, rd.Schema, rels)
		}
		return rels
	}
	for _, root := range o.Roots {
		walk(root)
	}
	return cost
}
