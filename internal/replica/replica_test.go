package replica

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"fivm/internal/data"
	"fivm/internal/db"
	"fivm/internal/wal"
)

func testCatalog() db.Catalog {
	return db.Catalog{
		"R": data.NewSchema("A", "B"),
		"S": data.NewSchema("A", "C"),
	}
}

func tup(vals ...int64) data.Tuple {
	t := make(data.Tuple, len(vals))
	for i, v := range vals {
		t[i] = data.Int(v)
	}
	return t
}

const sumsSQL = "CREATE VIEW sums AS SELECT A, SUM(B * C) FROM R NATURAL JOIN S GROUP BY A"

// newPrimary opens a durable primary on an in-memory FS and starts its
// replication listener on a loopback port.
func newPrimary(t *testing.T, dur *db.DurabilityOptions) (*db.DB, *Primary) {
	t.Helper()
	d, err := db.Open(testCatalog(), db.Options{Durability: dur})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		d.Close()
		t.Fatal(err)
	}
	p, err := NewPrimary(d, lis)
	if err != nil {
		d.Close()
		t.Fatal(err)
	}
	go p.Serve()
	t.Cleanup(func() { p.Close(); d.Close() })
	return d, p
}

func startFollower(t *testing.T, cfg FollowerConfig) (*Follower, context.CancelFunc) {
	t.Helper()
	if cfg.Catalog == nil {
		cfg.Catalog = testCatalog()
	}
	if cfg.RedialWait == 0 {
		cfg.RedialWait = 10 * time.Millisecond
	}
	f, err := NewFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		f.Close()
		<-done
	})
	return f, cancel
}

// waitConverged polls until the follower reflects the primary's applied
// count (reads via the race-safe Epoch pointer only).
func waitConverged(t *testing.T, p *db.DB, f *Follower) {
	t.Helper()
	want := p.Epoch().Applied
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if f.DB().Epoch().Applied >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("follower stuck at applied=%d, want %d", f.DB().Epoch().Applied, want)
}

// viewString renders a view's sorted contents for byte-identity checks.
func viewString(e *db.Epoch, name string) string {
	s := db.SnapshotOf[float64](e, name)
	if s == nil {
		return "<missing>"
	}
	var b strings.Builder
	for _, en := range s.Result().SortedEntries() {
		fmt.Fprintf(&b, "%v->%v;", en.Tuple, en.Payload)
	}
	return b.String()
}

// assertIdentical compares every view of the primary's epoch with the
// follower's at the same applied count.
func assertIdentical(t *testing.T, p *db.DB, f *Follower) {
	t.Helper()
	pe, fe := p.Epoch(), f.DB().Epoch()
	if pe.Applied != fe.Applied {
		t.Fatalf("applied: primary %d, follower %d", pe.Applied, fe.Applied)
	}
	pv, fv := pe.Views(), fe.Views()
	if fmt.Sprint(pv) != fmt.Sprint(fv) {
		t.Fatalf("view catalogs differ: primary %v, follower %v", pv, fv)
	}
	for _, name := range pv {
		if got, want := viewString(fe, name), viewString(pe, name); got != want {
			t.Fatalf("view %s: follower %q != primary %q", name, got, want)
		}
	}
}

func TestReplicationConverges(t *testing.T) {
	p, pr := newPrimary(t, &db.DurabilityOptions{Dir: "p", FS: wal.NewMemFS()})
	f, _ := startFollower(t, FollowerConfig{Primary: pr.Addr().String()})

	if err := p.Apply([]db.Update{db.Insert("R", tup(1, 2), tup(2, 3)), db.Insert("S", tup(1, 10))}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec(sumsSQL); err != nil {
		t.Fatal(err)
	}
	if err := p.Apply([]db.Update{db.Insert("S", tup(2, 20)), db.Delete("R", tup(1, 2))}); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, p, f)
	assertIdentical(t, p, f)
	if f.DB().ReplLSN() != p.WAL().LSN() {
		t.Fatalf("follower LSN %d != primary %d", f.DB().ReplLSN(), p.WAL().LSN())
	}
}

// A follower connecting after the primary pruned its WAL bootstraps from a
// shipped checkpoint, then follows the tail.
func TestCheckpointTransferBootstrap(t *testing.T) {
	p, pr := newPrimary(t, &db.DurabilityOptions{Dir: "p", FS: wal.NewMemFS()})
	if err := p.Apply([]db.Update{db.Insert("R", tup(1, 2)), db.Insert("S", tup(1, 7))}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec(sumsSQL); err != nil {
		t.Fatal(err)
	}
	if err := p.Checkpoint(); err != nil { // prunes the segments behind it
		t.Fatal(err)
	}
	if err := p.Apply([]db.Update{db.Insert("R", tup(2, 4))}); err != nil {
		t.Fatal(err)
	}

	f, _ := startFollower(t, FollowerConfig{Primary: pr.Addr().String()})
	waitConverged(t, p, f)
	assertIdentical(t, p, f)
	if !f.DB().HasView("sums") {
		t.Fatal("view missing after checkpoint bootstrap")
	}
}

// A durable follower restarted mid-stream resumes from its local WAL
// without re-applying (LSN parity), picking up what it missed.
func TestDurableFollowerRestartResumes(t *testing.T) {
	p, pr := newPrimary(t, &db.DurabilityOptions{Dir: "p", FS: wal.NewMemFS()})
	ffs := wal.NewMemFS()
	fcfg := FollowerConfig{
		Primary:    pr.Addr().String(),
		Durability: &db.DurabilityOptions{Dir: "f", FS: ffs},
	}

	f, cancel := startFollower(t, fcfg)
	if err := p.Apply([]db.Update{db.Insert("R", tup(1, 2)), db.Insert("S", tup(1, 3))}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec(sumsSQL); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, p, f)
	lsn := f.DB().ReplLSN()
	cancel()
	f.Close()

	// Primary keeps going while the follower is down.
	if err := p.Apply([]db.Update{db.Insert("R", tup(2, 5)), db.Insert("S", tup(2, 6))}); err != nil {
		t.Fatal(err)
	}

	f2, _ := startFollower(t, fcfg)
	if got := f2.DB().ReplLSN(); got < lsn {
		t.Fatalf("restarted follower regressed to LSN %d (had %d)", got, lsn)
	}
	waitConverged(t, p, f2)
	assertIdentical(t, p, f2)
}

// A durable follower so far behind that the primary pruned past it is
// rebuilt from a shipped checkpoint — local WAL wiped and reseeded — and
// still resumes durable operation afterwards.
func TestDurableFollowerCheckpointRebootstrap(t *testing.T) {
	p, pr := newPrimary(t, &db.DurabilityOptions{Dir: "p", FS: wal.NewMemFS()})
	ffs := wal.NewMemFS()
	fcfg := FollowerConfig{
		Primary:    pr.Addr().String(),
		Durability: &db.DurabilityOptions{Dir: "f", FS: ffs},
	}
	f, cancel := startFollower(t, fcfg)
	if err := p.Apply([]db.Update{db.Insert("R", tup(1, 2))}); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, p, f)
	cancel()
	f.Close()

	// While down: more batches, a view, and a pruning checkpoint.
	if err := p.Apply([]db.Update{db.Insert("S", tup(1, 4)), db.Insert("R", tup(3, 3))}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec(sumsSQL); err != nil {
		t.Fatal(err)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p.Apply([]db.Update{db.Insert("S", tup(3, 9))}); err != nil {
		t.Fatal(err)
	}

	f2, _ := startFollower(t, fcfg)
	waitConverged(t, p, f2)
	assertIdentical(t, p, f2)
	if f2.DB().ReplLSN() != p.WAL().LSN() {
		t.Fatalf("LSN parity lost: %d != %d", f2.DB().ReplLSN(), p.WAL().LSN())
	}
}

// Property test: a random insert/delete stream with mid-stream DDL, the
// follower's connection torn down at random points (plus one full durable
// restart), must still converge to byte-identical epochs without gaps.
func TestReplicationRandomStreamWithKills(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p, pr := newPrimary(t, &db.DurabilityOptions{Dir: "p", FS: wal.NewMemFS()})
	ffs := wal.NewMemFS()
	fcfg := FollowerConfig{
		Primary:    pr.Addr().String(),
		Durability: &db.DurabilityOptions{Dir: "f", FS: ffs},
	}
	f, cancel := startFollower(t, fcfg)

	// Track live tuples so deletes always hit existing ones (full removal
	// keeps payloads non-zero: groups either exist or are annihilated
	// identically on both sides).
	var liveR, liveS []data.Tuple
	views := 0
	rounds := 60
	if testing.Short() {
		rounds = 20
	}
	for i := 0; i < rounds; i++ {
		switch {
		case i == rounds/3 || i == rounds/2:
			name := fmt.Sprintf("v%d", views)
			views++
			sql := fmt.Sprintf("CREATE VIEW %s AS SELECT A, SUM(B * C) FROM R NATURAL JOIN S GROUP BY A", name)
			if _, err := p.Exec(sql); err != nil {
				t.Fatal(err)
			}
		default:
			var batch []db.Update
			n := 1 + rng.Intn(3)
			for j := 0; j < n; j++ {
				a, v := int64(1+rng.Intn(8)), int64(1+rng.Intn(9))
				if rng.Intn(4) == 0 && len(liveR) > 0 {
					k := rng.Intn(len(liveR))
					batch = append(batch, db.Delete("R", liveR[k]))
					liveR = append(liveR[:k], liveR[k+1:]...)
				} else if rng.Intn(2) == 0 {
					tu := tup(a, v)
					liveR = append(liveR, tu)
					batch = append(batch, db.Insert("R", tu))
				} else {
					tu := tup(a, v)
					liveS = append(liveS, tu)
					batch = append(batch, db.Insert("S", tu))
				}
			}
			if err := p.Apply(batch); err != nil {
				t.Fatal(err)
			}
		}
		// Tear the connection down at random points mid-stream.
		if rng.Intn(5) == 0 {
			f.dropConn()
		}
		// Once, kill the whole follower process-style and restart it.
		if i == 2*rounds/3 {
			cancel()
			f.Close()
			f, cancel = startFollower(t, fcfg)
		}
	}
	waitConverged(t, p, f)
	assertIdentical(t, p, f)
	if f.DB().ReplLSN() != p.WAL().LSN() {
		t.Fatalf("LSN parity lost: %d != %d", f.DB().ReplLSN(), p.WAL().LSN())
	}
}
