package replica

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fivm/internal/db"
	"fivm/internal/wal"
)

// Primary streams the DB's WAL to any number of followers. Each accepted
// connection is served by its own goroutine that never touches DB state —
// it only subscribes to live WAL frames and reads segments back from disk —
// so replication adds no work to the maintenance goroutine's apply path.
type Primary struct {
	d   *db.DB
	lis net.Listener

	handshakeTimeout time.Duration
	writeTimeout     time.Duration

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed atomic.Bool
	done   chan struct{}
	wg     sync.WaitGroup
}

// NewPrimary wraps a durable DB (the WAL is the replication stream; an
// in-memory DB has nothing to ship) and a listener for follower
// connections. Call Serve to start accepting.
func NewPrimary(d *db.DB, lis net.Listener) (*Primary, error) {
	if d.WAL() == nil {
		return nil, errors.New("replica: primary requires a durable DB (WAL enabled)")
	}
	return &Primary{
		d:                d,
		lis:              lis,
		handshakeTimeout: 10 * time.Second,
		writeTimeout:     30 * time.Second,
		conns:            make(map[net.Conn]struct{}),
		done:             make(chan struct{}),
	}, nil
}

// Addr returns the listener's address (tests bind port 0).
func (p *Primary) Addr() net.Addr { return p.lis.Addr() }

// Serve accepts follower connections until Close. It always returns a
// non-nil error; after Close it is net.ErrClosed.
func (p *Primary) Serve() error {
	for {
		conn, err := p.lis.Accept()
		if err != nil {
			return err
		}
		p.mu.Lock()
		if p.closed.Load() {
			p.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		p.conns[conn] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer func() {
				p.mu.Lock()
				delete(p.conns, conn)
				p.mu.Unlock()
				conn.Close()
			}()
			p.serveConn(conn)
		}()
	}
}

// Close stops accepting, severs every follower connection, and waits for
// the per-connection goroutines to exit. The DB stays open.
func (p *Primary) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	close(p.done)
	err := p.lis.Close()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

// firstFrameLSN probes the first WAL frame past afterLSN (0 when none).
func firstFrameLSN(fs wal.VFS, dir string, afterLSN uint64) (uint64, error) {
	var first uint64
	_, _, err := wal.ScanFramesAfter(fs, dir, afterLSN, func(lsn uint64, _ []byte) error {
		first = lsn
		return errStopScan
	})
	if err != nil && !errors.Is(err, errStopScan) {
		return 0, err
	}
	return first, nil
}

// serveConn runs one follower: handshake (catch-up or checkpoint
// transfer), then stream frames forever — disk scan to catch up, live
// subscription once caught up, falling back to the disk scan whenever the
// subscription overflows.
func (p *Primary) serveConn(conn net.Conn) {
	l := p.d.WAL()
	fs, dir := l.FS(), l.Dir()

	conn.SetReadDeadline(time.Now().Add(p.handshakeTimeout))
	last, err := readHandshake(conn)
	if err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})

	bw := bufio.NewWriterSize(conn, 64<<10)
	flush := func() error {
		conn.SetWriteDeadline(time.Now().Add(p.writeTimeout))
		return bw.Flush()
	}

	// Handshake decision: frame catch-up from `last`, or checkpoint
	// transfer when the frames right after `last` were pruned.
	first, err := firstFrameLSN(fs, dir, last)
	if err != nil {
		return
	}
	raw, ck, err := wal.LatestCheckpointBytes(fs, dir)
	if err != nil {
		return
	}
	needCkpt := ck != nil && ck.LSN > last &&
		(first == 0 || first != last+1)
	if needCkpt {
		var hdr [5]byte
		hdr[0] = modeCheckpoint
		binary.LittleEndian.PutUint32(hdr[1:], uint32(len(raw)))
		if _, err := bw.Write(hdr[:]); err != nil {
			return
		}
		if _, err := bw.Write(raw); err != nil {
			return
		}
		last = ck.LSN
	} else if err := bw.WriteByte(modeFrames); err != nil {
		return
	}
	if err := flush(); err != nil {
		return
	}

	send := func(_ uint64, frame []byte) error {
		_, err := bw.Write(frame)
		return err
	}
	for !p.closed.Load() {
		// Subscribe before scanning so nothing falls between disk and live.
		sub := l.SubscribeFrames(256)
		scanLast, gap, err := wal.ScanFramesAfter(fs, dir, last, send)
		last = scanLast
		if err != nil || gap {
			// gap: a checkpoint pruned records mid-stream; the follower
			// reconnects and the next handshake ships the checkpoint.
			sub.Close()
			return
		}
		if err := flush(); err != nil {
			sub.Close()
			return
		}
		rescan := false
		for !rescan {
			select {
			case f, ok := <-sub.C():
				if !ok {
					// Overflow (fall back to the disk scan) or log closed.
					if !sub.Overflowed() {
						return
					}
					rescan = true
					continue
				}
				if f.LSN <= last {
					continue // already sent by the disk scan
				}
				if f.LSN > last+1 {
					rescan = true // defensive: refill from disk
					continue
				}
				if err := send(f.LSN, f.Bytes); err != nil {
					sub.Close()
					return
				}
				last = f.LSN
				if len(sub.C()) == 0 {
					if err := flush(); err != nil {
						sub.Close()
						return
					}
				}
			case <-p.done:
				sub.Close()
				return
			}
		}
		sub.Close()
	}
}

// String describes the primary (diagnostics).
func (p *Primary) String() string {
	return fmt.Sprintf("replica.Primary(%s)", p.lis.Addr())
}
