package replica

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"path"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fivm/internal/db"
	"fivm/internal/wal"
)

// FollowerConfig configures a replication follower.
type FollowerConfig struct {
	// Primary is the primary's replication listener address.
	Primary string
	// Catalog is the base-relation catalog; it must match the primary's
	// (the shipped records replay against it).
	Catalog db.Catalog
	// Durability, when set, makes the follower re-log shipped records to
	// its own WAL under the primary's LSNs: a restarted follower recovers
	// locally and resumes the stream where it stopped. nil keeps the
	// follower in memory (restart = full re-sync via checkpoint transfer).
	Durability *db.DurabilityOptions
	// RedialWait spaces reconnect attempts (default 250ms).
	RedialWait time.Duration
	// Dial overrides the dialer (tests); nil uses net.Dialer.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
}

// Follower is a read replica: a follower-mode db.DB kept in sync by
// streaming the primary's WAL. Reads go through the ordinary epoch read
// path on DB(); the handle is swapped atomically when a checkpoint
// transfer rebuilds state, so hold the result of DB() only per-request.
type Follower struct {
	cfg FollowerConfig
	cur atomic.Pointer[db.DB]

	mu     sync.Mutex
	conn   net.Conn
	closed atomic.Bool
}

// NewFollower opens the follower's DB (recovering a durable one from its
// local WAL) without contacting the primary yet; Run starts the stream.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Primary == "" {
		return nil, fmt.Errorf("replica: FollowerConfig.Primary is required")
	}
	if cfg.RedialWait <= 0 {
		cfg.RedialWait = 250 * time.Millisecond
	}
	d, err := db.Open(cfg.Catalog, db.Options{Follower: true, Durability: cfg.Durability})
	if err != nil {
		return nil, err
	}
	f := &Follower{cfg: cfg}
	f.cur.Store(d)
	return f, nil
}

// DB returns the current follower DB for reading. After a checkpoint
// transfer it is a different instance; re-call per request (netserve's
// Config.DB takes exactly this function).
func (f *Follower) DB() *db.DB { return f.cur.Load() }

// Run streams from the primary until ctx is cancelled or Close is called,
// redialing after disconnects. It returns nil on orderly shutdown.
func (f *Follower) Run(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() { f.dropConn() })
	defer stop()
	for {
		if f.closed.Load() || ctx.Err() != nil {
			return nil
		}
		f.stream(ctx)
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(f.cfg.RedialWait):
		}
	}
}

// Close severs the connection and closes the follower DB. Run (if active)
// returns.
func (f *Follower) Close() error {
	if f.closed.Swap(true) {
		return nil
	}
	f.dropConn()
	return f.cur.Load().Close()
}

func (f *Follower) dropConn() {
	f.mu.Lock()
	if f.conn != nil {
		f.conn.Close()
	}
	f.mu.Unlock()
}

// setConn registers the live connection for Close/ctx interruption; false
// means the follower is already shutting down.
func (f *Follower) setConn(c net.Conn) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed.Load() {
		return false
	}
	f.conn = c
	return true
}

// stream runs one connection: handshake at the current LSN, optional
// checkpoint bootstrap, then apply frames until the connection breaks.
func (f *Follower) stream(ctx context.Context) {
	dial := f.cfg.Dial
	if dial == nil {
		var d net.Dialer
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	conn, err := dial(ctx, f.cfg.Primary)
	if err != nil {
		return
	}
	defer conn.Close()
	if !f.setConn(conn) {
		return
	}
	defer f.setConn(nil)

	d := f.cur.Load()
	if err := writeHandshake(conn, d.ReplLSN()); err != nil {
		return
	}
	var mode [1]byte
	if _, err := io.ReadFull(conn, mode[:]); err != nil {
		return
	}
	switch mode[0] {
	case modeCheckpoint:
		var lenBuf [4]byte
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		raw := make([]byte, binary.LittleEndian.Uint32(lenBuf[:]))
		if _, err := io.ReadFull(conn, raw); err != nil {
			return
		}
		if d, err = f.rebootstrap(raw); err != nil {
			return
		}
	case modeFrames:
	default:
		return
	}

	var frame []byte
	for {
		if frame, err = readFrame(conn, frame); err != nil {
			return
		}
		rec, _, err := wal.DecodeFrame(frame)
		if err != nil {
			return
		}
		if err := d.ApplyReplicated(rec); err != nil {
			// A gap means this stream cannot continue; reconnect and let
			// the handshake decide (typically checkpoint transfer).
			return
		}
	}
}

// rebootstrap replaces the follower DB with one seeded from a shipped
// checkpoint: the local state (behind the primary's pruned WAL) is
// discarded, exactly like a fresh follower starting from that checkpoint.
func (f *Follower) rebootstrap(raw []byte) (*db.DB, error) {
	ck, err := wal.DecodeCheckpointBytes(raw)
	if err != nil {
		return nil, err
	}
	old := f.cur.Load()
	if err := old.Close(); err != nil {
		return nil, err
	}
	var d *db.DB
	if dur := f.cfg.Durability; dur != nil {
		// Install the shipped checkpoint as the local WAL's only content,
		// then reopen: recovery seeds from it and appends resume at its
		// LSN, keeping the local log in LSN parity with the primary.
		fs := dur.FS
		if fs == nil {
			fs = wal.OSFS{}
		}
		if err := wipeWALDir(fs, dur.Dir); err != nil {
			return nil, err
		}
		file, err := fs.Create(path.Join(dur.Dir, wal.CheckpointFileName(ck.LSN)))
		if err != nil {
			return nil, err
		}
		if _, err := file.Write(raw); err != nil {
			file.Close()
			return nil, err
		}
		if err := file.Sync(); err != nil {
			file.Close()
			return nil, err
		}
		if err := file.Close(); err != nil {
			return nil, err
		}
		d, err = db.Open(f.cfg.Catalog, db.Options{Follower: true, Durability: dur})
		if err != nil {
			return nil, err
		}
	} else {
		if d, err = db.Open(f.cfg.Catalog, db.Options{Follower: true, Bootstrap: ck}); err != nil {
			return nil, err
		}
	}
	f.cur.Store(d)
	return d, nil
}

// wipeWALDir removes every WAL segment and checkpoint in dir.
func wipeWALDir(fs wal.VFS, dir string) error {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil // nothing to wipe (Open will create the directory)
	}
	for _, n := range names {
		isSeg := strings.HasPrefix(n, "wal-") && strings.HasSuffix(n, ".seg")
		isCk := strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ".ck")
		if !isSeg && !isCk {
			continue
		}
		if err := fs.Remove(path.Join(dir, n)); err != nil {
			return err
		}
	}
	return nil
}
