// Package replica ships WAL records from a durable primary db.DB to
// read-only followers over TCP, epoch by epoch.
//
// Wire protocol (all integers little-endian):
//
//	follower → primary: "FIVMREP1" magic (8 bytes) | u64 lastLSN
//	primary → follower: mode byte
//	    'F': framed WAL records with LSN > lastLSN follow, in order
//	    'C': u32 length | checkpoint file bytes, then framed records
//	         with LSN > checkpoint.LSN follow
//
// The framed records on the wire are byte-for-byte the primary's WAL
// frames — u32 length | u32 crc32c | body — reusing the WAL's record codec
// and CRC as the wire format, so the follower validates integrity with the
// same code path recovery uses, and a durable follower re-logs the exact
// frames it received.
//
// The primary answers 'C' (checkpoint transfer) when the follower's
// lastLSN falls before its retained WAL tail (the records in between were
// pruned by a checkpoint). A mid-stream prune gap closes the connection;
// the follower reconnects, presents its LSN, and the handshake picks
// catch-up or checkpoint transfer again. Streams therefore resume gap-free
// after any disconnect.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const (
	magic = "FIVMREP1"

	modeFrames     = 'F'
	modeCheckpoint = 'C'

	// maxFrameBytes mirrors the WAL's own record bound.
	maxFrameBytes = 1 << 30
)

// writeHandshake sends the follower's resume position.
func writeHandshake(w io.Writer, lastLSN uint64) error {
	var buf [16]byte
	copy(buf[:8], magic)
	binary.LittleEndian.PutUint64(buf[8:], lastLSN)
	_, err := w.Write(buf[:])
	return err
}

// readHandshake validates the magic and returns the follower's position.
func readHandshake(r io.Reader) (lastLSN uint64, err error) {
	var buf [16]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	if string(buf[:8]) != magic {
		return 0, fmt.Errorf("replica: bad handshake magic %q", buf[:8])
	}
	return binary.LittleEndian.Uint64(buf[8:]), nil
}

// readFrame reads one framed WAL record (header + body) into buf, growing
// it as needed, and returns the filled slice.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return buf, err
	}
	ln := binary.LittleEndian.Uint32(hdr[:4])
	if ln == 0 || ln > maxFrameBytes {
		return buf, fmt.Errorf("replica: implausible frame length %d", ln)
	}
	need := 8 + int(ln)
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[8:]); err != nil {
		return buf, err
	}
	return buf, nil
}

// errStopScan aborts a probe scan after its first frame.
var errStopScan = errors.New("replica: stop scan")
