// Package viewtree constructs the view trees at the core of F-IVM.
//
// A view tree (paper Figure 3) is built over a variable order: each
// variable's node defines a view joining its children's views, and — when
// the variable is bound — marginalizing it with a lifting function. The view
// at the root is the query result. The package also implements the
// materialization decision µ(τ, U) (Figure 5), chain composition for wide
// relations, indicator projections for cyclic queries (Figure 10), and the
// static delta plans that the IVM engine executes for updates (Figure 4).
package viewtree

import (
	"fmt"
	"strings"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/vorder"
)

// Node is one view in a view tree. Exactly one of Var/Rel is set: inner
// nodes are views at a variable, leaves are input relations (or indicator
// projections of input relations).
type Node struct {
	// Var is the variable this view sits at; "" for leaves.
	Var string
	// Rel is the input relation name for leaves; "" for inner nodes.
	Rel string
	// Indicator marks a leaf that is an indicator projection ∃_Keys Rel
	// rather than the relation itself.
	Indicator bool
	// Keys is the view's key schema.
	Keys data.Schema
	// Marg lists the bound variables marginalized at this node (empty for
	// free variables and leaves). More than one variable appears here when
	// chains are composed.
	Marg data.Schema
	// Rels names the input relations this view is defined over.
	Rels []string
	// Children are the argument views.
	Children []*Node

	parent *Node
}

// Parent returns the node's parent view, or nil at the root.
func (n *Node) Parent() *Node { return n.parent }

// IsLeaf reports whether the node is an input relation or indicator leaf.
func (n *Node) IsLeaf() bool { return n.Rel != "" }

// Name returns a stable human-readable identifier such as V@C[A,B] or R.
func (n *Node) Name() string {
	if n.IsLeaf() {
		if n.Indicator {
			return "Ind(" + n.Rel + ")" + n.Keys.String()
		}
		return n.Rel
	}
	return "V@" + n.Var + n.Keys.String()
}

// HasRel reports whether relation name occurs in the subtree.
func (n *Node) HasRel(name string) bool {
	for _, r := range n.Rels {
		if r == name {
			return true
		}
	}
	return false
}

// Walk visits the subtree in depth-first preorder.
func (n *Node) Walk(f func(*Node)) {
	f(n)
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// Leaves returns the leaves of the subtree in depth-first order.
func (n *Node) Leaves() []*Node {
	var out []*Node
	n.Walk(func(m *Node) {
		if m.IsLeaf() {
			out = append(out, m)
		}
	})
	return out
}

// LeafOf returns the (non-indicator) leaf of relation name, or nil.
func (n *Node) LeafOf(name string) *Node {
	var found *Node
	n.Walk(func(m *Node) {
		if m.IsLeaf() && !m.Indicator && m.Rel == name {
			found = m
		}
	})
	return found
}

// String renders the subtree one view per line, indented by depth.
func (n *Node) String() string {
	var b strings.Builder
	var rec func(m *Node, depth int)
	rec = func(m *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(m.Name())
		if len(m.Marg) > 0 {
			fmt.Fprintf(&b, " marg%v", m.Marg)
		}
		b.WriteString("\n")
		for _, c := range m.Children {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return b.String()
}

// Build constructs the view tree τ(ω, F) of Figure 3 for a prepared
// variable order and the query's free variables. Relations are placed as
// leaf children of the node where the order anchored them. For a variable
// order forest (disconnected query), a synthetic root joins the component
// views.
func Build(o *vorder.Order, q query.Query) (*Node, error) {
	if err := o.Validate(q); err != nil {
		return nil, err
	}
	free := q.Free

	var build func(vn *vorder.Node) *Node
	build = func(vn *vorder.Node) *Node {
		n := &Node{Var: vn.Var}
		// Child views from the variable order, then relation leaves.
		for _, c := range vn.Children {
			cn := build(c)
			cn.parent = n
			n.Children = append(n.Children, cn)
		}
		for _, relName := range vn.Rels {
			rd, ok := q.Rel(relName)
			if !ok {
				panic(fmt.Sprintf("viewtree: unknown relation %q", relName))
			}
			leaf := &Node{Rel: relName, Keys: rd.Schema.Clone(), Rels: []string{relName}, parent: n}
			n.Children = append(n.Children, leaf)
		}
		// keys = dep(X) ∪ (F ∩ ⋃ child keys); rels = ⋃ child rels.
		keys := vn.Dep.Clone()
		for _, c := range n.Children {
			keys = keys.Union(free.Intersect(c.Keys))
			n.Rels = append(n.Rels, c.Rels...)
		}
		n.Rels = dedup(n.Rels)
		if free.Contains(vn.Var) {
			// Free variable: retained in the schema, no marginalization.
			if !keys.Contains(vn.Var) {
				keys = keys.Union(data.Schema{vn.Var})
			}
			n.Keys = keys
		} else {
			n.Keys = keys.Minus(data.Schema{vn.Var})
			n.Marg = data.Schema{vn.Var}
		}
		return n
	}

	roots := make([]*Node, 0, len(o.Roots))
	for _, r := range o.Roots {
		roots = append(roots, build(r))
	}
	if len(roots) == 1 {
		return roots[0], nil
	}
	// Disconnected query: a synthetic root joins the component views.
	top := &Node{Var: ""}
	var keys data.Schema
	for _, r := range roots {
		r.parent = top
		top.Children = append(top.Children, r)
		top.Rels = append(top.Rels, r.Rels...)
		keys = keys.Union(r.Keys)
	}
	top.Rels = dedup(top.Rels)
	top.Keys = keys
	return top, nil
}

// ComposeChains collapses chains of single-child bound marginalizations
// into one view that marginalizes several variables at a time — the paper's
// practical optimization for wide relations, whose local variables would
// otherwise each get their own view. The transformation preserves the root
// view's contents.
func ComposeChains(root *Node) *Node {
	var rec func(n *Node)
	rec = func(n *Node) {
		// Collapse repeatedly: n absorbs single inner children that
		// marginalize bound variables, as long as both views cover the same
		// relations (automatic with a single child).
		for len(n.Children) == 1 && !n.Children[0].IsLeaf() && len(n.Marg) > 0 && len(n.Children[0].Marg) > 0 {
			c := n.Children[0]
			// n = ⊕_{n.Marg} c and c = ⊕_{c.Marg} (join of c's children):
			// compose to n = ⊕_{c.Marg ∪ n.Marg} (join of c's children).
			n.Marg = append(c.Marg.Clone(), n.Marg...)
			n.Children = c.Children
			for _, gc := range n.Children {
				gc.parent = n
			}
			if n.Var == "" {
				n.Var = c.Var
			}
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(root)
	return root
}

// CollapseIdentical removes inner nodes whose view is identical to their
// single child (free variables whose keys match the child's keys), keeping
// only the top view of each identical group as the paper prescribes.
func CollapseIdentical(root *Node) *Node {
	var rec func(n *Node) *Node
	rec = func(n *Node) *Node {
		for i, c := range n.Children {
			n.Children[i] = rec(c)
			n.Children[i].parent = n
		}
		if !n.IsLeaf() && len(n.Children) == 1 && len(n.Marg) == 0 &&
			!n.Children[0].IsLeaf() && n.Keys.SameSet(n.Children[0].Keys) {
			c := n.Children[0]
			c.parent = n.parent
			return c
		}
		return n
	}
	out := rec(root)
	out.parent = nil
	return out
}

func dedup(ss []string) []string {
	seen := make(map[string]bool, len(ss))
	out := ss[:0]
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
