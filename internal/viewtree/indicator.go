package viewtree

import (
	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/vorder"
)

// AddIndicators implements algorithm I(τ) from paper Figure 10: it walks
// the view tree and extends each inner view with indicator projections
// ∃_pk R of relations R that (a) are not among the view's own relations,
// (b) share variables pk with the view's keys, and (c) form a cycle with the
// view's children (detected by the GYO reduction). Indicator projections do
// not change the query result but constrain cyclic views — for the triangle
// query they shrink the O(N²) intermediate view to O(N).
//
// It returns the relations for which indicator leaves were added (a relation
// can feed several indicator leaves at different views).
func AddIndicators(root *Node, q query.Query) []*Node {
	var added []*Node
	var rec func(n *Node)
	rec = func(n *Node) {
		for _, c := range n.Children {
			rec(c)
		}
		if n.IsLeaf() {
			return
		}
		in := make(map[string]bool, len(n.Rels))
		for _, r := range n.Rels {
			in[r] = true
		}
		// Candidate indicators: outside relations overlapping our keys.
		var cands []query.RelDef
		for _, r := range q.Rels {
			if in[r.Name] {
				continue
			}
			pk := r.Schema.Intersect(n.Keys)
			if len(pk) > 0 {
				cands = append(cands, query.RelDef{Name: r.Name, Schema: pk})
			}
		}
		if len(cands) == 0 {
			return
		}
		// Build the hypergraph of child view schemas plus candidates; the
		// GYO residue identifies the edges participating in a cycle.
		var edges []vorder.Hyperedge
		for _, c := range n.Children {
			edges = append(edges, vorder.Hyperedge{Name: "child:" + c.Name(), Vars: c.Keys})
		}
		for _, cd := range cands {
			edges = append(edges, vorder.Hyperedge{Name: "ind:" + cd.Name, Vars: cd.Schema})
		}
		core := vorder.GYO(edges)
		inCore := make(map[string]bool, len(core))
		for _, e := range core {
			inCore[e.Name] = true
		}
		for _, cd := range cands {
			if !inCore["ind:"+cd.Name] {
				continue
			}
			leaf := &Node{
				Rel:       cd.Name,
				Indicator: true,
				Keys:      cd.Schema.Clone(),
				Rels:      nil, // indicators do not count as covered relations
				parent:    n,
			}
			n.Children = append(n.Children, leaf)
			added = append(added, leaf)
		}
	}
	rec(root)
	return added
}

// IndicatorTracker maintains one indicator projection ∃_A R incrementally.
// It counts, per projected key, how many base tuples with non-zero payload
// project onto it (paper Example B.2); the indicator's delta is non-empty
// only when a count crosses zero, so |δ(∃_A R)| ≤ |δR|.
type IndicatorTracker struct {
	keys   data.Schema
	proj   data.Projector
	counts map[string]int64
	tuples map[string]data.Tuple
}

// NewIndicatorTracker creates a tracker projecting relation tuples over
// relSchema onto the indicator keys.
func NewIndicatorTracker(relSchema, keys data.Schema) *IndicatorTracker {
	return &IndicatorTracker{
		keys:   keys,
		proj:   data.MustProjector(relSchema, keys),
		counts: make(map[string]int64),
		tuples: make(map[string]data.Tuple),
	}
}

// Keys returns the indicator's key schema.
func (tr *IndicatorTracker) Keys() data.Schema { return tr.keys }

// Len returns the number of live indicator keys.
func (tr *IndicatorTracker) Len() int { return len(tr.counts) }

// Update records that the base tuple t appeared (delta +1) or disappeared
// (delta -1) and returns the indicator delta payload: +1 when the projected
// key becomes live, -1 when it dies, 0 otherwise.
func (tr *IndicatorTracker) Update(t data.Tuple, delta int64) (data.Tuple, int64) {
	key := tr.proj.Key(t)
	old := tr.counts[key]
	now := old + delta
	pt, ok := tr.tuples[key]
	if !ok {
		pt = tr.proj.Apply(t)
	}
	switch {
	case now == 0:
		delete(tr.counts, key)
		delete(tr.tuples, key)
	default:
		tr.counts[key] = now
		tr.tuples[key] = pt
	}
	switch {
	case old == 0 && now != 0:
		return pt, 1
	case old != 0 && now == 0:
		return pt, -1
	default:
		return pt, 0
	}
}
