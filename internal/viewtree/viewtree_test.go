package viewtree

import (
	"strings"
	"testing"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/vorder"
)

func paperQuery(free ...string) query.Query {
	return query.MustNew("Q", data.Schema(free),
		query.RelDef{Name: "R", Schema: data.NewSchema("A", "B")},
		query.RelDef{Name: "S", Schema: data.NewSchema("A", "C", "E")},
		query.RelDef{Name: "T", Schema: data.NewSchema("C", "D")},
	)
}

func paperOrder(t *testing.T, q query.Query) *vorder.Order {
	t.Helper()
	o := vorder.MustNew(vorder.V("A", vorder.V("B"), vorder.V("C", vorder.V("D"), vorder.V("E"))))
	if err := o.Prepare(q); err != nil {
		t.Fatal(err)
	}
	return o
}

// TestBuildFigure2b checks the view tree of Figure 2b: the COUNT query with
// no free variables.
func TestBuildFigure2b(t *testing.T) {
	q := paperQuery()
	o := paperOrder(t, q)
	root, err := Build(o, q)
	if err != nil {
		t.Fatal(err)
	}

	// Root: V@A over {R,S,T} with empty keys.
	if root.Var != "A" || len(root.Keys) != 0 {
		t.Fatalf("root = %s keys %v", root.Name(), root.Keys)
	}
	if len(root.Rels) != 3 {
		t.Errorf("root rels = %v", root.Rels)
	}
	// Children: V@B (over R, keys [A]) and V@C (over S,T, keys [A]).
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d", len(root.Children))
	}
	vb, vc := root.Children[0], root.Children[1]
	if vb.Var != "B" || !vb.Keys.SameSet(data.NewSchema("A")) {
		t.Errorf("V@B keys = %v", vb.Keys)
	}
	if vc.Var != "C" || !vc.Keys.SameSet(data.NewSchema("A")) {
		t.Errorf("V@C keys = %v", vc.Keys)
	}
	// V@D has keys [C], V@E keys [A,C].
	var vd, ve *Node
	for _, c := range vc.Children {
		switch c.Var {
		case "D":
			vd = c
		case "E":
			ve = c
		}
	}
	if vd == nil || !vd.Keys.SameSet(data.NewSchema("C")) {
		t.Errorf("V@D = %v", vd)
	}
	if ve == nil || !ve.Keys.SameSet(data.NewSchema("A", "C")) {
		t.Errorf("V@E = %v", ve)
	}
	// Leaves.
	if root.LeafOf("R") == nil || root.LeafOf("S") == nil || root.LeafOf("T") == nil {
		t.Error("missing leaves")
	}
}

// TestBuildExample11 checks the view tree of Example 1.1 / Figure 1: free
// variables A and C.
func TestBuildExample11(t *testing.T) {
	q := paperQuery("A", "C")
	o := paperOrder(t, q)
	root, err := Build(o, q)
	if err != nil {
		t.Fatal(err)
	}
	root = CollapseIdentical(root)
	// The root view keeps keys [A,C] (free variables retained).
	if !root.Keys.SameSet(data.NewSchema("A", "C")) {
		t.Errorf("root keys = %v", root.Keys)
	}
	// No marginalization of free variables anywhere.
	root.Walk(func(n *Node) {
		for _, m := range n.Marg {
			if m == "A" || m == "C" {
				t.Errorf("free variable %s marginalized at %s", m, n.Name())
			}
		}
	})
}

func TestMaterializeFigure5(t *testing.T) {
	// Example 4.2: for updates to T only, materialize the root, V@E (=VS)
	// and V@B (=VR); V@C and V@D are not needed.
	q := paperQuery()
	o := paperOrder(t, q)
	root, err := Build(o, q)
	if err != nil {
		t.Fatal(err)
	}
	mat := Materialize(root, []string{"T"})

	byName := map[string]*Node{}
	root.Walk(func(n *Node) { byName[n.Var] = n })

	if !mat[root] {
		t.Error("root must be materialized")
	}
	if !mat[byName["B"]] {
		t.Error("V@B must be materialized for updates to T")
	}
	if !mat[byName["E"]] {
		t.Error("V@E must be materialized for updates to T")
	}
	if mat[byName["D"]] {
		t.Error("V@D must not be materialized for updates to T")
	}
	// The T leaf itself is not needed (stream not stored).
	leafT := root.LeafOf("T")
	if mat[leafT] {
		t.Error("leaf T should not be stored for updates to T only")
	}
	// Count: root, V@B, V@E, plus the C-subtree sibling checks.
	if got := MaterializedCount(mat); got < 3 {
		t.Errorf("materialized = %d, want >= 3", got)
	}
}

func TestMaterializeAllUpdatable(t *testing.T) {
	q := paperQuery()
	o := paperOrder(t, q)
	root, _ := Build(o, q)
	mat := Materialize(root, []string{"R", "S", "T"})
	// Every inner view is materialized when all relations change. The raw
	// leaves are not: each is the only child relation of its parent, so no
	// delta ever probes it (the aggregated view above it is what siblings
	// join with).
	root.Walk(func(n *Node) {
		if n.IsLeaf() {
			if mat[n] {
				t.Errorf("leaf %s should not be materialized", n.Name())
			}
			return
		}
		if !mat[n] {
			t.Errorf("%s should be materialized", n.Name())
		}
	})
}

func TestMaterializeNoUpdates(t *testing.T) {
	q := paperQuery()
	o := paperOrder(t, q)
	root, _ := Build(o, q)
	mat := Materialize(root, nil)
	if got := MaterializedCount(mat); got != 1 {
		t.Errorf("materialized = %d, want only the root", got)
	}
}

func TestComposeChains(t *testing.T) {
	// A wide relation W(A,B,C,D) under a chain order A-B-C-D produces a
	// chain of single-child marginalization views; composition collapses
	// them into one multi-variable marginalization.
	q := query.MustNew("wide", nil,
		query.RelDef{Name: "W", Schema: data.NewSchema("A", "B", "C", "D")})
	o := vorder.MustNew(vorder.Chain("A", "B", "C", "D"))
	if err := o.Prepare(q); err != nil {
		t.Fatal(err)
	}
	root, err := Build(o, q)
	if err != nil {
		t.Fatal(err)
	}
	depthBefore := treeDepth(root)
	root = ComposeChains(root)
	if got := treeDepth(root); got >= depthBefore {
		t.Errorf("depth %d not reduced from %d", got, depthBefore)
	}
	// The composed root marginalizes all four variables over the leaf.
	if !data.Schema(root.Marg).SameSet(data.NewSchema("A", "B", "C", "D")) {
		t.Errorf("root marg = %v", root.Marg)
	}
	if len(root.Children) != 1 || !root.Children[0].IsLeaf() {
		t.Errorf("composed root should sit directly on the leaf")
	}
}

func treeDepth(n *Node) int {
	best := 0
	for _, c := range n.Children {
		if d := treeDepth(c); d > best {
			best = d
		}
	}
	return best + 1
}

func TestCollapseIdentical(t *testing.T) {
	// With free variables A and C on top of the order A-C-(B,D,E), the
	// views at A and C can be identical; only the top one is kept.
	q := paperQuery("A", "C")
	o := vorder.MustNew(vorder.V("A", vorder.V("C", vorder.V("B"), vorder.V("D"), vorder.V("E"))))
	if err := o.Prepare(q); err != nil {
		t.Fatal(err)
	}
	root, err := Build(o, q)
	if err != nil {
		t.Fatal(err)
	}
	before := countNodes(root)
	root = CollapseIdentical(root)
	after := countNodes(root)
	if after >= before {
		t.Errorf("CollapseIdentical: %d -> %d nodes", before, after)
	}
	if !root.Keys.SameSet(data.NewSchema("A", "C")) {
		t.Errorf("root keys = %v", root.Keys)
	}
}

func countNodes(n *Node) int {
	c := 1
	for _, ch := range n.Children {
		c += countNodes(ch)
	}
	return c
}

// --- indicator projections -------------------------------------------------

func triangleSetup(t *testing.T) (query.Query, *Node) {
	t.Helper()
	q := query.MustNew("tri", nil,
		query.RelDef{Name: "R", Schema: data.NewSchema("A", "B")},
		query.RelDef{Name: "S", Schema: data.NewSchema("B", "C")},
		query.RelDef{Name: "T", Schema: data.NewSchema("C", "A")},
	)
	o := vorder.MustNew(vorder.V("A", vorder.V("B", vorder.V("C"))))
	if err := o.Prepare(q); err != nil {
		t.Fatal(err)
	}
	root, err := Build(o, q)
	if err != nil {
		t.Fatal(err)
	}
	return q, root
}

// TestAddIndicatorsTriangle reproduces Appendix B / Figure 9: the view at C
// over S and T gets the indicator projection ∃_{A,B} R.
func TestAddIndicatorsTriangle(t *testing.T) {
	q, root := triangleSetup(t)
	added := AddIndicators(root, q)
	if len(added) != 1 {
		t.Fatalf("added %d indicators, want 1", len(added))
	}
	ind := added[0]
	if ind.Rel != "R" || !ind.Indicator {
		t.Errorf("indicator = %+v", ind)
	}
	if !ind.Keys.SameSet(data.NewSchema("A", "B")) {
		t.Errorf("indicator keys = %v", ind.Keys)
	}
	// It must hang below the view at C.
	if ind.Parent().Var != "C" {
		t.Errorf("indicator parent = %s, want V@C", ind.Parent().Name())
	}
	if !strings.Contains(ind.Name(), "Ind(R)") {
		t.Errorf("Name() = %q", ind.Name())
	}
}

func TestAddIndicatorsAcyclicNoOp(t *testing.T) {
	q := paperQuery()
	o := paperOrder(t, q)
	root, _ := Build(o, q)
	if added := AddIndicators(root, q); len(added) != 0 {
		t.Errorf("acyclic query got %d indicators", len(added))
	}
}

// --- IndicatorTracker (paper Example B.2) -----------------------------------

func TestIndicatorTrackerExampleB2(t *testing.T) {
	relSchema := data.NewSchema("A", "B")
	tr := NewIndicatorTracker(relSchema, data.NewSchema("A"))

	// Load R = {(a1,b1), (a1,b2), (a2,b3)}.
	for _, tup := range []data.Tuple{data.Ints(1, 1), data.Ints(1, 2), data.Ints(2, 3)} {
		tr.Update(tup, 1)
	}
	if tr.Len() != 2 {
		t.Fatalf("live keys = %d, want 2", tr.Len())
	}

	// Removing (a1,b2) leaves a1 still covered: no indicator change.
	if _, flip := tr.Update(data.Ints(1, 2), -1); flip != 0 {
		t.Errorf("flip = %d, want 0", flip)
	}
	// Removing (a1,b1) drops the count to 0: delta {(a1) -> -1}.
	pt, flip := tr.Update(data.Ints(1, 1), -1)
	if flip != -1 || !pt.Equal(data.Ints(1)) {
		t.Errorf("flip = %d at %v, want -1 at (1)", flip, pt)
	}
	// Inserting a fresh a3 creates {(a3) -> +1}.
	pt, flip = tr.Update(data.Ints(3, 9), 1)
	if flip != 1 || !pt.Equal(data.Ints(3)) {
		t.Errorf("flip = %d at %v, want +1 at (3)", flip, pt)
	}
}

func TestNodeHelpers(t *testing.T) {
	q := paperQuery()
	o := paperOrder(t, q)
	root, _ := Build(o, q)
	if !root.HasRel("S") || root.HasRel("Z") {
		t.Error("HasRel")
	}
	if got := len(root.Leaves()); got != 3 {
		t.Errorf("leaves = %d", got)
	}
	s := root.String()
	if !strings.Contains(s, "V@A[]") || !strings.Contains(s, "T") {
		t.Errorf("String() = %q", s)
	}
}

// --- delta trees (Figure 4) --------------------------------------------------

// TestDeltaTreeExample41 reproduces the delta propagation structure of
// paper Example 4.1: updates to T flow through δV@D and δV@C to δV@A, with
// V@E and V@B as non-delta join partners.
func TestDeltaTreeExample41(t *testing.T) {
	q := paperQuery()
	o := paperOrder(t, q)
	root, err := Build(o, q)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := DeltaTree(root, "T")
	if err != nil {
		t.Fatal(err)
	}
	path := dt.Path()
	// Leaf T, V@D, V@C, V@A: four delta nodes bottom-up.
	if len(path) != 4 {
		t.Fatalf("path length = %d, want 4", len(path))
	}
	wantOrder := []string{"T", "D", "C", "A"}
	for i, dn := range path {
		got := dn.View.Var
		if dn.View.IsLeaf() {
			got = dn.View.Rel
		}
		if got != wantOrder[i] {
			t.Errorf("path[%d] = %s, want %s", i, got, wantOrder[i])
		}
	}
	// The delta expression at C joins δV@D with the plain V@E.
	var exprC string
	for _, dn := range path {
		if dn.View.Var == "C" {
			exprC = dn.Expr()
		}
	}
	for _, frag := range []string{"δV@C[A]", "δV@D[C]", "V@E[A,C]", "⊕[C]"} {
		if !strings.Contains(exprC, frag) {
			t.Errorf("Expr = %q, missing %q", exprC, frag)
		}
	}
	// Rendering marks exactly the path nodes with δ.
	s := dt.String()
	if strings.Count(s, "δ") != 4 {
		t.Errorf("String marks %d deltas, want 4:\n%s", strings.Count(s, "δ"), s)
	}
}

func TestDeltaTreeUnknownRelation(t *testing.T) {
	q := paperQuery()
	o := paperOrder(t, q)
	root, _ := Build(o, q)
	if _, err := DeltaTree(root, "Nope"); err == nil {
		t.Error("expected error for unknown relation")
	}
}
