package viewtree

import (
	"fivm/internal/data"
	"fivm/internal/vorder"
)

// Materialize implements µ(τ, U) from paper Figure 5: it decides which
// views of the tree must be materialized to support updates to the
// relations in updatable. The root is always materialized (it is the query
// result); any other view V is materialized exactly when it is needed to
// compute the delta of its parent for updates to a relation V is not
// defined over: (rels(parent) \ rels(V)) ∩ U ≠ ∅.
//
// µ is purely structural. CostMaterialize refines it with statistics: a
// probed view may be cheaper to compute inline from its children than to
// keep stored.
func Materialize(root *Node, updatable []string) map[*Node]bool {
	u := make(map[string]bool, len(updatable))
	for _, r := range updatable {
		u[r] = true
	}
	out := make(map[*Node]bool)
	root.Walk(func(n *Node) {
		if n.parent == nil {
			out[n] = true
			return
		}
		in := make(map[string]bool, len(n.Rels))
		for _, r := range n.Rels {
			in[r] = true
		}
		need := false
		for _, r := range n.parent.Rels {
			if !in[r] && u[r] {
				need = true
				break
			}
		}
		out[n] = need
	})
	return out
}

// CostMaterialize turns the structural µ decision into a cost-based one: it
// starts from the required set (the views updates actually probe, as
// computed by the engine's sibling-emits rule or Materialize) and demotes a
// probed inner view to inline computation whenever the estimated saving of
// not maintaining it — the merge traffic it would absorb plus its amortized
// footprint — exceeds the extra join work of probing its children directly.
// Demoting a view makes its children probed, so they are promoted to
// required and themselves become demotion candidates (the decision reaches a
// fixpoint down the tree). Leaves and the root are never demoted: a leaf has
// no children to expand, and the root is the query result.
//
// The canonical beneficiary is a quadratic pairwise join view probed by a
// third relation (the triangle's S⋈T): storing it costs O(N²) memory and
// O(delta·degree) merges per update, while inlining costs the probing
// relation an extra index probe per joined tuple.
//
// updatable is the set of delta-receiving relations; m estimates sizes,
// rates, and fanouts. With a nil model the required set is returned
// unchanged — cost decisions need statistics.
func CostMaterialize(root *Node, required map[*Node]bool, updatable map[string]bool, m *vorder.CostModel) map[*Node]bool {
	out := make(map[*Node]bool, len(required))
	for n, v := range required {
		out[n] = v
	}
	if m == nil {
		return out
	}

	// Parents are considered before children, since demoting a parent
	// promotes its children to probed. Below a demoted view no further
	// demotion is attempted: its children's probe traffic now includes the
	// demoted parent's probers, which demoteWins does not model, so cascading
	// would under-count the inline cost.
	var consider func(n *Node, demotable bool)
	consider = func(n *Node, demotable bool) {
		demoted := false
		if demotable && out[n] && n.Parent() != nil && !n.IsLeaf() && !n.Indicator &&
			demoteWins(n, updatable, m) {
			out[n] = false
			demoted = true
			for _, c := range n.Children {
				out[c] = true
			}
		}
		for _, c := range n.Children {
			consider(c, demotable && !demoted)
		}
	}
	consider(root, true)
	return out
}

// demoteWins compares the per-update cost of storing view n against probing
// its children inline.
func demoteWins(n *Node, updatable map[string]bool, m *vorder.CostModel) bool {
	// Rate of updates that probe n: deltas arriving at the parent through
	// relations outside n's subtree.
	inN := make(map[string]bool, len(n.Rels))
	for _, rel := range n.Rels {
		inN[rel] = true
	}
	probers := 0.0
	for _, rel := range n.Parent().Rels {
		if !inN[rel] && updatable[rel] {
			probers += m.Rate(rel)
		}
	}
	if probers == 0 {
		// Nothing probes it through a delta path; the structural rule wanted
		// it stored for another reason (MaterializeAll, indicator backing).
		return false
	}

	// Storing: every update to one of n's own relations merges its delta
	// into the stored view, plus the view's amortized footprint.
	mergeTraffic := 0.0
	for _, rel := range n.Rels {
		if updatable[rel] {
			mergeTraffic += m.Rate(rel) * m.DeltaSizeFor(n.Keys, rel, n.Rels)
		}
	}
	footprint := m.Amortized(m.ViewSizeOver(n.Keys, n.Rels))
	storeCost := mergeTraffic + footprint

	// Inlining: each probing delta tuple joins n's children in sequence —
	// index probes plus lift-and-marginalize work on the joined tuples —
	// instead of one stored-view lookup; only the surplus counts.
	others := make([]data.Schema, len(n.Children))
	for i, c := range n.Children {
		others[i] = c.Keys
	}
	probes, fanout := m.JoinFanout(n.Keys, others)
	inlineExtra := probers * (probes + fanout - 1)

	// The footprint floor guards against demoting small views on estimation
	// noise: inline expansion only pays off against genuinely large views.
	return inlineExtra < storeCost && footprint > demoteMinFootprint
}

// demoteMinFootprint is the minimum amortized footprint (in per-update ops)
// a view must carry before demotion is considered.
const demoteMinFootprint = 0.05

// MaterializedCount returns how many views µ marks for materialization —
// the paper compares strategies by this count.
func MaterializedCount(m map[*Node]bool) int {
	n := 0
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}
