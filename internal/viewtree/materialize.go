package viewtree

// Materialize implements µ(τ, U) from paper Figure 5: it decides which
// views of the tree must be materialized to support updates to the
// relations in updatable. The root is always materialized (it is the query
// result); any other view V is materialized exactly when it is needed to
// compute the delta of its parent for updates to a relation V is not
// defined over: (rels(parent) \ rels(V)) ∩ U ≠ ∅.
func Materialize(root *Node, updatable []string) map[*Node]bool {
	u := make(map[string]bool, len(updatable))
	for _, r := range updatable {
		u[r] = true
	}
	out := make(map[*Node]bool)
	root.Walk(func(n *Node) {
		if n.parent == nil {
			out[n] = true
			return
		}
		in := make(map[string]bool, len(n.Rels))
		for _, r := range n.Rels {
			in[r] = true
		}
		need := false
		for _, r := range n.parent.Rels {
			if !in[r] && u[r] {
				need = true
				break
			}
		}
		out[n] = need
	})
	return out
}

// MaterializedCount returns how many views µ marks for materialization —
// the paper compares strategies by this count.
func MaterializedCount(m map[*Node]bool) int {
	n := 0
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}
