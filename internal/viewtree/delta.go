package viewtree

import (
	"fmt"
	"strings"

	"fivm/internal/data"
)

// DeltaNode is one node of a delta tree δ(τ, δR) (paper Figure 4): the view
// tree with the views on the path from the updated relation's leaf to the
// root replaced by delta views. The IVM engine compiles this structure into
// executable plans; the symbolic form here backs inspection, testing, and
// documentation.
type DeltaNode struct {
	// View is the underlying view tree node.
	View *Node
	// IsDelta marks nodes on the update path (δV rather than V).
	IsDelta bool
	// Children mirror the view tree's children.
	Children []*DeltaNode
}

// DeltaTree builds the delta tree for an update to relation rel (matching
// indicator leaves are treated as separate update paths; pass the leaf
// explicitly via DeltaTreeAt for those).
func DeltaTree(root *Node, rel string) (*DeltaNode, error) {
	leaf := root.LeafOf(rel)
	if leaf == nil {
		return nil, fmt.Errorf("viewtree: relation %q has no leaf", rel)
	}
	return DeltaTreeAt(root, leaf), nil
}

// DeltaTreeAt builds the delta tree for an update entering at the given
// leaf (a relation leaf or an indicator leaf).
func DeltaTreeAt(root *Node, leaf *Node) *DeltaNode {
	onPath := map[*Node]bool{}
	for n := leaf; n != nil; n = n.Parent() {
		onPath[n] = true
	}
	var build func(n *Node) *DeltaNode
	build = func(n *Node) *DeltaNode {
		dn := &DeltaNode{View: n, IsDelta: onPath[n]}
		for _, c := range n.Children {
			dn.Children = append(dn.Children, build(c))
		}
		return dn
	}
	return build(root)
}

// Expr renders the delta view definition at this node in the paper's
// notation, e.g. "δV@C[A] = ⊕C δV@D[C] ⊗ V@E[A,C]". Non-delta nodes render
// their plain view definition.
func (dn *DeltaNode) Expr() string {
	n := dn.View
	prefix := ""
	if dn.IsDelta {
		prefix = "δ"
	}
	if n.IsLeaf() {
		return prefix + n.Name()
	}
	var parts []string
	for _, c := range dn.Children {
		name := c.View.Name()
		if c.IsDelta {
			name = "δ" + name
		}
		parts = append(parts, name)
	}
	rhs := strings.Join(parts, " ⊗ ")
	if len(n.Marg) > 0 {
		rhs = "⊕" + data.Schema(n.Marg).String() + " " + rhs
	}
	return prefix + n.Name() + " = " + rhs
}

// Path returns the delta views from the leaf to the root, in propagation
// order.
func (dn *DeltaNode) Path() []*DeltaNode {
	var out []*DeltaNode
	var rec func(d *DeltaNode) bool
	rec = func(d *DeltaNode) bool {
		if !d.IsDelta {
			return false
		}
		for _, c := range d.Children {
			rec(c)
		}
		out = append(out, d)
		return true
	}
	rec(dn)
	return out
}

// String renders the whole delta tree, delta nodes marked with δ.
func (dn *DeltaNode) String() string {
	var b strings.Builder
	var rec func(d *DeltaNode, depth int)
	rec = func(d *DeltaNode, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		if d.IsDelta {
			b.WriteString("δ")
		}
		b.WriteString(d.View.Name())
		b.WriteString("\n")
		for _, c := range d.Children {
			rec(c, depth+1)
		}
	}
	rec(dn, 0)
	return b.String()
}
