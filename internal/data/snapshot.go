package data

import (
	"sort"

	"fivm/internal/ring"
)

// Snapshot chunk sizing: published entries are held in key-sorted chunks so a
// publish clones only the chunks containing changed keys. Chunks split at
// snapChunkMax into runs of snapChunkTarget; smaller constants cheapen the
// per-changed-key clone, larger ones cheapen the per-snapshot directory.
const (
	snapChunkTarget = 64
	snapChunkMax    = 128
)

// RelationSnapshot is an immutable point-in-time copy of a Relation: a
// finite map from encoded tuple keys to payloads that is never mutated after
// publication, so any number of goroutines may read it concurrently, with no
// locks, while the source relation keeps changing.
//
// Entries are held in chunks sorted by encoded key. The key encoding
// (Tuple.AppendKey) is self-delimiting and prefix-preserving — the encoding
// of a tuple prefix is a byte-prefix of the full encoding — so the sorted
// order groups every group-by prefix contiguously and ScanPrefix serves
// leading-variable range scans without secondary indexes.
//
// Consecutive snapshots of one relation share the chunks (and the entries)
// of every key range that did not change between publishes: publishing costs
// O(changed keys · chunk size + chunk count), not O(relation size).
type RelationSnapshot[P any] struct {
	schema Schema
	ring   ring.Ring[P]
	n      int
	chunks []snapChunk[P]
}

// snapChunk is one sorted chunk of a snapshot: an entry run plus the arena
// block it lives in (nil for plain allocations), which publication uses to
// pin the run's storage for the snapshot's lifetime (see snaparena.go).
type snapChunk[P any] struct {
	es  []*Entry[P]
	blk *arenaBlock[P]
}

// snapState is the incremental publication machinery a relation carries once
// its first Snapshot has been taken: the keys dirtied since the last publish
// and the last published snapshot, which the next publish patches.
type snapState[P any] struct {
	// dirtyKeys lists the keys changed since the last publish, deduplicated
	// on the hot path by entry generation (one compare per touch) and again
	// at publish after sorting; the slice is reset (capacity kept) per
	// publish, so steady-state dirty tracking does not allocate or hash.
	dirtyKeys []string
	// fullDirty marks wholesale invalidation (Clear): the next publish
	// rebuilds from the live contents instead of patching.
	fullDirty bool
	last      *RelationSnapshot[P]
	// arena allocates chunk entry runs; dirScratch is the reusable buffer
	// the next chunk directory is assembled in before the exact-size copy.
	arena      snapArena[P]
	dirScratch []snapChunk[P]
	// gen is the publish generation, bumped after every published snapshot.
	// An entry whose gen is current has already been recorded dirty this
	// epoch and (for mutable rings) owns private payload storage; an older
	// gen means the entry is untouched since the last publish and its
	// mutable payload storage is shared with it, so publishing never
	// deep-copies payloads — the copy happens on the first re-touch of a
	// sealed key, and not at all for keys written once (insert-heavy
	// streams publish with no payload copying).
	gen uint64
}

// sealEntry returns a snapshot-owned copy of a live entry: a fresh Entry
// struct sharing the (immutable) tuple and the payload. For rings with
// in-place accumulation the shared payload storage is protected by the
// entry's generation — the live side privatizes it on the next touch
// (touchEntry) — so sealing is O(1) regardless of payload size.
func (r *Relation[P]) sealEntry(e *Entry[P]) *Entry[P] {
	return &Entry[P]{key: e.key, Tuple: e.Tuple, Payload: e.Payload}
}

// touchEntry prepares a stored entry for an in-place payload mutation: on
// its first touch per publish epoch it records the key in the dirty list
// and, for rings with in-place accumulation, privatizes payload storage
// shared with the last published snapshot. Later touches in the same epoch
// cost one comparison; relations never snapshotted pay a nil check.
func (r *Relation[P]) touchEntry(e *Entry[P]) {
	s := r.snap
	if s == nil || e.gen == s.gen {
		return
	}
	if r.mut != nil {
		var o P
		r.mut.CopyInto(&o, e.Payload)
		e.Payload = o
	}
	e.gen = s.gen
	s.dirtyKeys = append(s.dirtyKeys, e.key)
}

// markEntry records an entry's key in the dirty list without touching its
// payload storage (removals: the storage stays with the snapshots).
func (r *Relation[P]) markEntry(e *Entry[P]) {
	if s := r.snap; s != nil && e.gen != s.gen {
		e.gen = s.gen
		s.dirtyKeys = append(s.dirtyKeys, e.key)
	}
}

// markInserted records a freshly inserted entry: its key goes in the dirty
// list unconditionally (a recycled entry struct may carry a current gen for
// a different key) and its generation is made current — fresh payload
// storage is writer-owned until the next publish seals it.
func (r *Relation[P]) markInserted(e *Entry[P]) {
	if s := r.snap; s != nil {
		e.gen = s.gen
		s.dirtyKeys = append(s.dirtyKeys, e.key)
	}
}

// Snapshot publishes an immutable copy of the relation's current contents.
// The first call is O(n) and attaches dirty tracking; every later call costs
// O(keys changed since the previous call) and shares all unchanged storage
// with the previous snapshot (a call with no changes returns the previous
// snapshot itself). Snapshot must be called from the goroutine that mutates
// the relation; the returned snapshot may then be read from any goroutine.
func (r *Relation[P]) Snapshot() *RelationSnapshot[P] {
	if r.snap == nil {
		r.snap = &snapState[P]{gen: 1}
		r.snap.last = r.buildSnapshot(true)
		r.snap.arena.publish(r.snap.last)
		r.snap.gen++
		return r.snap.last
	}
	s := r.snap
	switch {
	case s.fullDirty:
		s.fullDirty = false
		s.dirtyKeys = s.dirtyKeys[:0]
		s.last = r.buildSnapshot(true)
		s.arena.publish(s.last)
		s.gen++
	case len(s.dirtyKeys) > 0:
		s.last = s.last.patch(r, s.dirtyKeys)
		s.arena.publish(s.last)
		s.dirtyKeys = s.dirtyKeys[:0]
		s.gen++
	}
	return s.last
}

// Seal wraps a relation that will never be mutated again into a snapshot,
// sharing its entries instead of copying them. It is the cheap publication
// path for results rebuilt wholesale per batch (re-evaluation, parallel
// shard reduction). Mutating the relation after Seal corrupts the snapshot.
func (r *Relation[P]) Seal() *RelationSnapshot[P] {
	return r.buildSnapshot(false)
}

// buildSnapshot constructs a snapshot from the full live contents, copying
// entries when seal is set and sharing them otherwise.
func (r *Relation[P]) buildSnapshot(seal bool) *RelationSnapshot[P] {
	var es []*Entry[P]
	var blk *arenaBlock[P]
	if seal && r.snap != nil {
		es, blk = r.snap.arena.alloc(r.entries.len())
	} else {
		es = make([]*Entry[P], 0, r.entries.len())
	}
	r.entries.all(func(e *Entry[P]) bool {
		if seal {
			e = r.sealEntry(e)
		}
		es = append(es, e)
		return true
	})
	sort.Slice(es, func(i, j int) bool { return es[i].key < es[j].key })
	s := &RelationSnapshot[P]{schema: r.schema, ring: r.ring, n: len(es)}
	s.chunks = appendChunked(nil, es, blk)
	return s
}

// patch publishes the next snapshot from the previous one: chunks covering
// no dirty key are shared, chunks covering dirty keys are re-merged against
// the live contents. The dirty list is sorted and deduplicated in place
// (delete-then-reinsert within one epoch records a key twice).
func (prev *RelationSnapshot[P]) patch(r *Relation[P], keys []string) *RelationSnapshot[P] {
	sort.Strings(keys)
	w := 0
	for i, k := range keys {
		if i == 0 || k != keys[i-1] {
			keys[w] = k
			w++
		}
	}
	keys = keys[:w]

	next := &RelationSnapshot[P]{schema: prev.schema, ring: prev.ring, n: r.entries.len()}
	arena := &r.snap.arena
	if len(prev.chunks) == 0 {
		buf, blk := arena.alloc(len(keys))
		for _, k := range keys {
			if e := r.lookupString(k); e != nil {
				buf = append(buf, r.sealEntry(e))
			}
		}
		arena.trim(buf, blk)
		next.chunks = appendChunked(nil, buf, blk)
		return next
	}
	// The directory is assembled in a reusable scratch buffer, then copied to
	// an exact-size slice the snapshot owns: one small allocation per publish
	// instead of append-doubling churn.
	out := r.snap.dirScratch[:0]
	ki := 0
	for ci, c := range prev.chunks {
		last := ci == len(prev.chunks)-1
		// Chunk ci covers keys up to (not including) the next chunk's first
		// key; the first chunk also absorbs smaller keys, the last all larger.
		lo := ki
		for ki < len(keys) && (last || keys[ki] < prev.chunks[ci+1].es[0].key) {
			ki++
		}
		if lo == ki {
			out = append(out, c)
			continue
		}
		run, blk := mergeChunk(r, c.es, keys[lo:ki])
		out = appendChunked(out, run, blk)
	}
	next.chunks = make([]snapChunk[P], len(out))
	copy(next.chunks, out)
	clear(out[:cap(out)])
	r.snap.dirScratch = out[:0]
	return next
}

// mergeChunk merges a sorted chunk with sorted dirty keys: dirty keys still
// live are replaced by sealed copies of their current entries, dead ones are
// dropped, and untouched entries are carried over by pointer. The merged run
// is arena-allocated; len(c)+len(keys) is a strict upper bound on its size.
func mergeChunk[P any](r *Relation[P], c []*Entry[P], keys []string) ([]*Entry[P], *arenaBlock[P]) {
	arena := &r.snap.arena
	out, blk := arena.alloc(len(c) + len(keys))
	i := 0
	for _, k := range keys {
		for i < len(c) && c[i].key < k {
			out = append(out, c[i])
			i++
		}
		if i < len(c) && c[i].key == k {
			i++ // superseded or deleted
		}
		if e := r.lookupString(k); e != nil {
			out = append(out, r.sealEntry(e))
		}
	}
	out = append(out, c[i:]...)
	arena.trim(out, blk)
	return out, blk
}

// appendChunked appends a sorted entry run to the chunk list, splitting runs
// longer than snapChunkMax into snapChunkTarget-sized chunks (subslices of
// one backing array, immutable after publication, all attributed to the
// run's arena block).
func appendChunked[P any](out []snapChunk[P], es []*Entry[P], blk *arenaBlock[P]) []snapChunk[P] {
	for len(es) > snapChunkMax {
		out = append(out, snapChunk[P]{es: es[:snapChunkTarget:snapChunkTarget], blk: blk})
		es = es[snapChunkTarget:]
	}
	if len(es) > 0 {
		out = append(out, snapChunk[P]{es: es, blk: blk})
	}
	return out
}

// Schema returns the snapshot's schema.
func (s *RelationSnapshot[P]) Schema() Schema { return s.schema }

// Ring returns the payload ring.
func (s *RelationSnapshot[P]) Ring() ring.Ring[P] { return s.ring }

// Len returns the number of keys with non-zero payloads at publication time.
func (s *RelationSnapshot[P]) Len() int { return s.n }

// cmpKey compares an encoded key held as a string with one held as bytes,
// byte-wise, without converting (and therefore without allocating).
func cmpKey(a string, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// findChunk returns the index of the chunk whose key range contains key:
// the last chunk whose first key is <= key (the first chunk also covers
// smaller keys). Only valid when the snapshot has chunks.
func (s *RelationSnapshot[P]) findChunk(key []byte) int {
	i := sort.Search(len(s.chunks), func(i int) bool {
		return cmpKey(s.chunks[i].es[0].key, key) > 0
	})
	if i > 0 {
		i--
	}
	return i
}

// Lookup returns the entry stored under an encoded tuple key, or nil. The
// key bytes may live in a caller-owned scratch buffer; the lookup does not
// allocate or retain them.
func (s *RelationSnapshot[P]) Lookup(key []byte) *Entry[P] {
	if len(s.chunks) == 0 {
		return nil
	}
	c := s.chunks[s.findChunk(key)].es
	i := sort.Search(len(c), func(i int) bool { return cmpKey(c[i].key, key) >= 0 })
	if i < len(c) && cmpKey(c[i].key, key) == 0 {
		return c[i]
	}
	return nil
}

// Get returns the payload of tuple t and whether it is non-zero.
func (s *RelationSnapshot[P]) Get(t Tuple) (P, bool) {
	var buf [96]byte
	if e := s.Lookup(t.AppendKey(buf[:0])); e != nil {
		return e.Payload, true
	}
	var zero P
	return zero, false
}

// GetKey returns the payload stored under a pre-encoded key.
func (s *RelationSnapshot[P]) GetKey(key string) (P, bool) {
	var zero P
	if len(s.chunks) == 0 {
		return zero, false
	}
	c := s.chunks[s.findChunk([]byte(key))].es
	i := sort.Search(len(c), func(i int) bool { return c[i].key >= key })
	if i < len(c) && c[i].key == key {
		return c[i].Payload, true
	}
	return zero, false
}

// ScanPrefix visits, in encoded-key order, every entry whose key starts with
// the given encoded prefix, until f returns false. A prefix is the encoding
// of values for a leading subset of the schema's variables (Tuple.AppendKey
// of a prefix tuple); an empty prefix scans the whole snapshot. The
// self-delimiting key encoding guarantees a byte-prefix match is exactly a
// leading-variable value match.
func (s *RelationSnapshot[P]) ScanPrefix(prefix []byte, f func(e *Entry[P]) bool) {
	if len(s.chunks) == 0 {
		return
	}
	ci := s.findChunk(prefix)
	c := s.chunks[ci].es
	i := sort.Search(len(c), func(i int) bool { return cmpKey(c[i].key, prefix) >= 0 })
	for ; ci < len(s.chunks); ci++ {
		c = s.chunks[ci].es
		for ; i < len(c); i++ {
			e := c[i]
			if len(e.key) < len(prefix) || e.key[:len(prefix)] != string(prefix) {
				return
			}
			if !f(e) {
				return
			}
		}
		i = 0
	}
}

// Iterate calls f for each entry in encoded-key order until f returns false.
func (s *RelationSnapshot[P]) Iterate(f func(t Tuple, p P) bool) {
	for _, c := range s.chunks {
		for _, e := range c.es {
			if !f(e.Tuple, e.Payload) {
				return
			}
		}
	}
}

// IterateEntries calls f for each entry in encoded-key order until f returns
// false. Entries are immutable and must not be modified.
func (s *RelationSnapshot[P]) IterateEntries(f func(e *Entry[P]) bool) {
	for _, c := range s.chunks {
		for _, e := range c.es {
			if !f(e) {
				return
			}
		}
	}
}

// SortedEntries returns copies of the entries in encoded-key order, for
// deterministic comparison in tests and tools.
func (s *RelationSnapshot[P]) SortedEntries() []Entry[P] {
	out := make([]Entry[P], 0, s.n)
	for _, c := range s.chunks {
		for _, e := range c.es {
			out = append(out, *e)
		}
	}
	return out
}
