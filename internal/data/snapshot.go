package data

import (
	"sort"
	"sync/atomic"

	"fivm/internal/ring"
)

// Snapshot chunk sizing: published entries are held in key-sorted chunks so a
// publish clones only the chunks containing changed keys. Chunks split at
// snapChunkMax into runs of snapChunkTarget; smaller constants cheapen the
// per-changed-key clone, larger ones cheapen the per-snapshot directory.
const (
	snapChunkTarget = 64
	snapChunkMax    = 128
)

// RelationSnapshot is an immutable point-in-time copy of a Relation: a
// finite map from encoded tuple keys to payloads that is never mutated after
// publication, so any number of goroutines may read it concurrently, with no
// locks, while the source relation keeps changing.
//
// Entries are held by value in chunks sorted by encoded key. The key
// encoding (Tuple.AppendKey) is self-delimiting and prefix-preserving — the
// encoding of a tuple prefix is a byte-prefix of the full encoding — so the
// sorted order groups every group-by prefix contiguously and ScanPrefix
// serves leading-variable range scans without secondary indexes.
//
// Consecutive snapshots of one relation share the chunks (and their entry
// storage) of every key range that did not change between publishes:
// publishing costs O(changed keys · chunk size + chunk count), not
// O(relation size). Chunk storage is recycled through a block arena (see
// snaparena.go), so entry pointers obtained from a snapshot (Lookup,
// ScanPrefix, IterateEntries) are valid only while the snapshot itself is
// reachable — copy the entry out before dropping the snapshot.
//
// Snapshots are reference counted: call Release when done with a snapshot
// obtained from Relation.Snapshot, and Retain before handing it to an
// additional independent owner. Releasing is optional — forgotten snapshots
// are reclaimed by a GC backstop — but a high-rate publish loop that skips
// Release makes storage reclamation wait on full collection cycles and
// loses the arena's recycling entirely (see snaparena.go).
type RelationSnapshot[P any] struct {
	schema Schema
	ring   ring.Ring[P]
	n      int
	chunks []snapChunk[P]
	// dirBlk is the arena block the chunks directory itself lives in (nil
	// for plain allocations); publication pins it like the run blocks.
	dirBlk *bumpBlock[snapChunk[P]]
	// keep anchors the publish generation this snapshot belongs to: while
	// any snapshot of the generation is reachable, so is the sentinel, and
	// the arena keeps the generation's blocks pinned (see snaparena.go).
	keep *genSentinel
	// refs counts the snapshot's owners (the publishing relation plus one
	// per handle returned by Snapshot); set is the publish generation's pin
	// set the last Release reports to. Both nil/unused for snapshots not
	// backed by the arena (Seal, ReduceSealed).
	refs atomic.Int32
	set  *pinSet[P]
}

// snapChunk is one sorted chunk of a snapshot: an entry run plus the arena
// block it lives in (nil for plain allocations), which publication uses to
// pin the run's storage for the snapshot's lifetime (see snaparena.go).
type snapChunk[P any] struct {
	es  []Entry[P]
	blk *bumpBlock[Entry[P]]
}

// snapState is the incremental publication machinery a relation carries once
// its first Snapshot has been taken: the keys dirtied since the last publish
// and the last published snapshot, which the next publish patches.
type snapState[P any] struct {
	// dirtyKeys lists the keys changed since the last publish, deduplicated
	// on the hot path by entry generation (one compare per touch) and again
	// during the publish radix sort; the slice is reset (capacity kept) per
	// publish, so steady-state dirty tracking does not allocate or hash.
	dirtyKeys []string
	// fullDirty marks wholesale invalidation (Clear): the next publish
	// rebuilds from the live contents instead of patching.
	fullDirty bool
	last      *RelationSnapshot[P]
	// arena allocates chunk entry runs and directories; dirScratch is the
	// reusable buffer the next chunk directory is assembled in before the
	// exact-size arena copy.
	arena      snapArena[P]
	dirScratch []snapChunk[P]
	// refresh is the round-robin chunk-refresh cursor: each patch copies the
	// chunk at this index into a fresh arena run even when it is clean, so
	// every chunk's storage is rewritten at least once per len(chunks)
	// publishes. Without it, one long-clean chunk pins its whole arena block
	// — and each block holds many publishes' runs — so steady-state arena
	// footprint would grow with key-range staleness instead of staying
	// proportional to the relation (observed as unbounded heap growth under
	// a cycling update stream). With it, a block stops collecting new
	// generation pins once the cursor has lapped it and is reclaimed as
	// those generations die.
	refresh int
	// gen is the publish generation, bumped after every published snapshot.
	// An entry whose gen is current has already been recorded dirty this
	// epoch and (for mutable rings) owns private payload storage; an older
	// gen means the entry is untouched since the last publish and its
	// mutable payload storage is shared with it, so publishing never
	// deep-copies payloads — the copy happens on the first re-touch of a
	// sealed key, and not at all for keys written once (insert-heavy
	// streams publish with no payload copying).
	gen uint64
}

// sealed returns the snapshot-owned copy of a live entry: the entry value
// sharing the (immutable) tuple and the payload. For rings with in-place
// accumulation the shared payload storage is protected by the entry's
// generation — the live side privatizes it on the next touch (touchEntry) —
// so sealing is O(1) regardless of payload size, and entry values land
// directly in arena runs instead of individual heap allocations.
func sealed[P any](e *Entry[P]) Entry[P] {
	return Entry[P]{key: e.key, hash: e.hash, Tuple: e.Tuple, Payload: e.Payload}
}

// touchEntry prepares a stored entry for an in-place payload mutation: on
// its first touch per publish epoch it records the key in the dirty list
// and, for rings with in-place accumulation, privatizes payload storage
// shared with the last published snapshot. Later touches in the same epoch
// cost one comparison; relations never snapshotted pay a nil check.
func (r *Relation[P]) touchEntry(e *Entry[P]) {
	s := r.snap
	if s == nil || e.gen == s.gen {
		return
	}
	if r.mut != nil {
		var o P
		r.mut.CopyInto(&o, e.Payload)
		e.Payload = o
	}
	e.gen = s.gen
	s.dirtyKeys = append(s.dirtyKeys, e.key)
}

// markEntry records an entry's key in the dirty list without touching its
// payload storage (removals: the storage stays with the snapshots).
func (r *Relation[P]) markEntry(e *Entry[P]) {
	if s := r.snap; s != nil && e.gen != s.gen {
		e.gen = s.gen
		s.dirtyKeys = append(s.dirtyKeys, e.key)
	}
}

// markInserted records a freshly inserted entry: its key goes in the dirty
// list unconditionally (a recycled entry struct may carry a current gen for
// a different key) and its generation is made current — fresh payload
// storage is writer-owned until the next publish seals it.
func (r *Relation[P]) markInserted(e *Entry[P]) {
	if s := r.snap; s != nil {
		e.gen = s.gen
		s.dirtyKeys = append(s.dirtyKeys, e.key)
	}
}

// Snapshot publishes an immutable copy of the relation's current contents.
// The first call is O(n) and attaches dirty tracking; every later call costs
// O(keys changed since the previous call) and shares all unchanged storage
// with the previous snapshot (a call with no changes returns the previous
// snapshot itself). Snapshot must be called from the goroutine that mutates
// the relation; the returned snapshot may then be read from any goroutine,
// and should be Released when no longer needed so its storage returns to
// the relation's arena instead of waiting on the garbage collector.
func (r *Relation[P]) Snapshot() *RelationSnapshot[P] {
	if r.snap == nil {
		r.snap = &snapState[P]{gen: 1}
		r.snap.arena.init()
		r.snap.last = r.buildSnapshot()
		r.snap.arena.publish(r.snap.last)
		r.snap.gen++
	} else if s := r.snap; s.fullDirty || len(s.dirtyKeys) > 0 {
		var next *RelationSnapshot[P]
		if s.fullDirty {
			s.fullDirty = false
			s.dirtyKeys = s.dirtyKeys[:0]
			next = r.buildSnapshot()
		} else {
			next = s.last.patch(r, s.dirtyKeys)
			s.dirtyKeys = s.dirtyKeys[:0]
		}
		// Publish (pinning the blocks next shares with the previous
		// snapshot) before dropping the relation's reference on it.
		s.arena.publish(next)
		s.last.Release()
		s.last = next
		s.gen++
	}
	last := r.snap.last
	last.refs.Add(1) // the returned handle's reference
	return last
}

// Seal wraps a relation that will never be mutated again into a snapshot,
// copying its entry values (but not tuples or payload storage) into sorted
// chunks. It is the cheap publication path for results rebuilt wholesale per
// batch (re-evaluation, parallel shard reduction). Mutating the relation
// after Seal corrupts the snapshot.
func (r *Relation[P]) Seal() *RelationSnapshot[P] {
	return r.buildSnapshot()
}

// buildSnapshot constructs a snapshot from the full live contents, radix-
// sorting the sealed entry values into one run.
func (r *Relation[P]) buildSnapshot() *RelationSnapshot[P] {
	var es []Entry[P]
	var blk *bumpBlock[Entry[P]]
	if r.snap != nil {
		es, blk = r.snap.arena.runs.alloc(r.entries.len())
	} else {
		es = make([]Entry[P], 0, r.entries.len())
	}
	r.entries.all(func(e *Entry[P]) bool {
		es = append(es, sealed(e))
		return true
	})
	radixSortEntries(es)
	s := &RelationSnapshot[P]{schema: r.schema, ring: r.ring, n: len(es)}
	if r.snap == nil {
		s.chunks = appendChunked(nil, es, blk)
		return s
	}
	r.finishDir(s, appendChunked(r.snap.dirScratch[:0], es, blk))
	return s
}

// finishDir installs an assembled chunk directory into s: an exact-size copy
// allocated from the directory arena, with the scratch buffer cleared and
// handed back for the next publish.
func (r *Relation[P]) finishDir(s *RelationSnapshot[P], out []snapChunk[P]) {
	dir, blk := r.snap.arena.dirs.alloc(len(out))
	s.chunks = append(dir, out...)
	s.dirBlk = blk
	clear(out[:cap(out)])
	r.snap.dirScratch = out[:0]
}

// patch publishes the next snapshot from the previous one: chunks covering
// no dirty key are shared, chunks covering dirty keys are re-merged against
// the live contents. The dirty list is radix-sorted with duplicates dropped
// during the distribution passes (delete-then-reinsert within one epoch
// records a key twice; the merge below must see it once).
func (prev *RelationSnapshot[P]) patch(r *Relation[P], keys []string) *RelationSnapshot[P] {
	keys = radixSortKeysDedup(keys)

	next := &RelationSnapshot[P]{schema: prev.schema, ring: prev.ring, n: r.entries.len()}
	arena := &r.snap.arena
	if len(prev.chunks) == 0 {
		buf, blk := arena.runs.alloc(len(keys))
		for _, k := range keys {
			if e := r.lookupString(k); e != nil {
				buf = append(buf, sealed(e))
			}
		}
		arena.runs.trim(buf, blk)
		r.finishDir(next, appendChunked(r.snap.dirScratch[:0], buf, blk))
		return next
	}
	out := r.snap.dirScratch[:0]
	ki := 0
	cursor := r.snap.refresh % len(prev.chunks)
	r.snap.refresh = cursor + 1
	for ci := range prev.chunks {
		c := prev.chunks[ci]
		last := ci == len(prev.chunks)-1
		// Chunk ci covers keys up to (not including) the next chunk's first
		// key; the first chunk also absorbs smaller keys, the last all larger.
		lo := ki
		for ki < len(keys) && (last || keys[ki] < prev.chunks[ci+1].es[0].key) {
			ki++
		}
		if lo == ki {
			if ci == cursor && c.blk != nil {
				// Refresh turn: rewrite the clean chunk into a fresh run so
				// its old block can eventually drain (see snapState.refresh).
				run, blk := arena.runs.alloc(len(c.es))
				run = append(run, c.es...)
				out = appendChunked(out, run, blk)
				continue
			}
			out = append(out, c)
			continue
		}
		run, blk := mergeChunk(r, c.es, keys[lo:ki])
		out = appendChunked(out, run, blk)
	}
	r.finishDir(next, out)
	return next
}

// mergeChunk merges a sorted chunk with sorted dirty keys: dirty keys still
// live are replaced by sealed copies of their current entries, dead ones are
// dropped, and untouched entries are carried over by value. The merged run
// is arena-allocated; len(c)+len(keys) is a strict upper bound on its size.
func mergeChunk[P any](r *Relation[P], c []Entry[P], keys []string) ([]Entry[P], *bumpBlock[Entry[P]]) {
	arena := &r.snap.arena.runs
	out, blk := arena.alloc(len(c) + len(keys))
	i := 0
	for _, k := range keys {
		for i < len(c) && c[i].key < k {
			out = append(out, c[i])
			i++
		}
		if i < len(c) && c[i].key == k {
			i++ // superseded or deleted
		}
		if e := r.lookupString(k); e != nil {
			out = append(out, sealed(e))
		}
	}
	out = append(out, c[i:]...)
	arena.trim(out, blk)
	return out, blk
}

// appendChunked appends a sorted entry run to the chunk list, splitting runs
// longer than snapChunkMax into snapChunkTarget-sized chunks (subslices of
// one backing array, immutable after publication, all attributed to the
// run's arena block).
func appendChunked[P any](out []snapChunk[P], es []Entry[P], blk *bumpBlock[Entry[P]]) []snapChunk[P] {
	for len(es) > snapChunkMax {
		out = append(out, snapChunk[P]{es: es[:snapChunkTarget:snapChunkTarget], blk: blk})
		es = es[snapChunkTarget:]
	}
	if len(es) > 0 {
		out = append(out, snapChunk[P]{es: es, blk: blk})
	}
	return out
}

// Schema returns the snapshot's schema.
func (s *RelationSnapshot[P]) Schema() Schema { return s.schema }

// Ring returns the payload ring.
func (s *RelationSnapshot[P]) Ring() ring.Ring[P] { return s.ring }

// Len returns the number of keys with non-zero payloads at publication time.
func (s *RelationSnapshot[P]) Len() int { return s.n }

// cmpKey compares an encoded key held as a string with one held as bytes,
// byte-wise, without converting (and therefore without allocating).
func cmpKey(a string, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// findChunk returns the index of the chunk whose key range contains key:
// the last chunk whose first key is <= key (the first chunk also covers
// smaller keys). Only valid when the snapshot has chunks.
func (s *RelationSnapshot[P]) findChunk(key []byte) int {
	i := sort.Search(len(s.chunks), func(i int) bool {
		return cmpKey(s.chunks[i].es[0].key, key) > 0
	})
	if i > 0 {
		i--
	}
	return i
}

// Lookup returns the entry stored under an encoded tuple key, or nil. The
// key bytes may live in a caller-owned scratch buffer; the lookup does not
// allocate or retain them. The returned entry is valid only while the
// snapshot is reachable; copy it out before dropping the snapshot.
func (s *RelationSnapshot[P]) Lookup(key []byte) *Entry[P] {
	if len(s.chunks) == 0 {
		return nil
	}
	c := s.chunks[s.findChunk(key)].es
	i := sort.Search(len(c), func(i int) bool { return cmpKey(c[i].key, key) >= 0 })
	if i < len(c) && cmpKey(c[i].key, key) == 0 {
		return &c[i]
	}
	return nil
}

// Get returns the payload of tuple t and whether it is non-zero.
func (s *RelationSnapshot[P]) Get(t Tuple) (P, bool) {
	var buf [96]byte
	if e := s.Lookup(t.AppendKey(buf[:0])); e != nil {
		return e.Payload, true
	}
	var zero P
	return zero, false
}

// GetKey returns the payload stored under a pre-encoded key.
func (s *RelationSnapshot[P]) GetKey(key string) (P, bool) {
	var zero P
	if len(s.chunks) == 0 {
		return zero, false
	}
	c := s.chunks[s.findChunk([]byte(key))].es
	i := sort.Search(len(c), func(i int) bool { return c[i].key >= key })
	if i < len(c) && c[i].key == key {
		return c[i].Payload, true
	}
	return zero, false
}

// ScanPrefix visits, in encoded-key order, every entry whose key starts with
// the given encoded prefix, until f returns false. A prefix is the encoding
// of values for a leading subset of the schema's variables (Tuple.AppendKey
// of a prefix tuple); an empty prefix scans the whole snapshot. The
// self-delimiting key encoding guarantees a byte-prefix match is exactly a
// leading-variable value match. Entries passed to f are valid only while the
// snapshot is reachable.
func (s *RelationSnapshot[P]) ScanPrefix(prefix []byte, f func(e *Entry[P]) bool) {
	if len(s.chunks) == 0 {
		return
	}
	ci := s.findChunk(prefix)
	c := s.chunks[ci].es
	i := sort.Search(len(c), func(i int) bool { return cmpKey(c[i].key, prefix) >= 0 })
	for ; ci < len(s.chunks); ci++ {
		c = s.chunks[ci].es
		for ; i < len(c); i++ {
			e := &c[i]
			if len(e.key) < len(prefix) || e.key[:len(prefix)] != string(prefix) {
				return
			}
			if !f(e) {
				return
			}
		}
		i = 0
	}
}

// Iterate calls f for each entry in encoded-key order until f returns false.
func (s *RelationSnapshot[P]) Iterate(f func(t Tuple, p P) bool) {
	for _, c := range s.chunks {
		for i := range c.es {
			if !f(c.es[i].Tuple, c.es[i].Payload) {
				return
			}
		}
	}
}

// IterateEntries calls f for each entry in encoded-key order until f returns
// false. Entries are immutable, must not be modified, and are valid only
// while the snapshot is reachable.
func (s *RelationSnapshot[P]) IterateEntries(f func(e *Entry[P]) bool) {
	for _, c := range s.chunks {
		for i := range c.es {
			if !f(&c.es[i]) {
				return
			}
		}
	}
}

// SortedEntries returns copies of the entries in encoded-key order, for
// deterministic comparison in tests and tools.
func (s *RelationSnapshot[P]) SortedEntries() []Entry[P] {
	out := make([]Entry[P], 0, s.n)
	for _, c := range s.chunks {
		out = append(out, c.es...)
	}
	return out
}
