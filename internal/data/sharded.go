package data

import (
	"fmt"

	"fivm/internal/ring"
)

// Sharded is a relation partitioned horizontally into n shards by the hash
// of one column: tuple t lives in shard t[col].Hash() % n. Tuples agreeing
// on the shard column always land in the same shard, so natural joins of
// relations sharded on a common column never cross shards — the property
// the parallel maintainer builds on. Each shard is an ordinary Relation
// that one worker may own privately; Sharded itself is not safe for
// concurrent mutation.
type Sharded[P any] struct {
	col    string
	idx    int
	shards []*Relation[P]
	stats  *RelStats
}

// NewSharded creates an empty n-way sharded relation partitioned on column
// col, which must occur in the schema.
func NewSharded[P any](r ring.Ring[P], schema Schema, col string, n int) (*Sharded[P], error) {
	idx := schema.IndexOf(col)
	if idx < 0 {
		return nil, fmt.Errorf("data: shard column %q not in schema %v", col, schema)
	}
	if n < 1 {
		return nil, fmt.Errorf("data: shard count %d < 1", n)
	}
	s := &Sharded[P]{col: col, idx: idx, shards: make([]*Relation[P], n)}
	for i := range s.shards {
		s.shards[i] = NewRelation(r, schema)
	}
	return s, nil
}

// Column returns the shard column name.
func (s *Sharded[P]) Column() string { return s.col }

// N returns the shard count.
func (s *Sharded[P]) N() int { return len(s.shards) }

// Shard returns the i-th partition.
func (s *Sharded[P]) Shard(i int) *Relation[P] { return s.shards[i] }

// ShardOf returns the shard index tuple t routes to.
func (s *Sharded[P]) ShardOf(t Tuple) int {
	return int(t[s.idx].Hash() % uint64(len(s.shards)))
}

// CollectStats attaches a statistics collector to the routing path: every
// tuple merged through Sharded.Merge is observed as a delta event with its
// column values (ObserveRouted). Cardinality transitions happen inside the
// worker-owned shards and are not tracked here; the collector's Live count
// therefore stays approximate. Must only be attached when Merge is called
// from a single goroutine (true for the parallel maintainer's router).
func (s *Sharded[P]) CollectStats(rs *RelStats) { s.stats = rs }

// Merge routes tuple t to its shard and merges payload p there.
func (s *Sharded[P]) Merge(t Tuple, p P) {
	if s.stats != nil {
		s.stats.ObserveRouted(t)
	}
	s.shards[s.ShardOf(t)].Merge(t, p)
}

// Len returns the total number of entries across shards.
func (s *Sharded[P]) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Clear empties every shard, retaining table capacity for reuse as routing
// scratch.
func (s *Sharded[P]) Clear() {
	for _, sh := range s.shards {
		sh.Clear()
	}
}

// Split partitions a relation's current contents into n fresh relations by
// the hash of column col. The shards share the source's tuples (tuples are
// immutable) but own their payload storage under rings with in-place
// accumulation.
func Split[P any](r *Relation[P], col string, n int) ([]*Relation[P], error) {
	s, err := NewSharded[P](r.Ring(), r.Schema(), col, n)
	if err != nil {
		return nil, err
	}
	for _, sh := range s.shards {
		sh.Reserve(r.Len()/n + 1)
	}
	r.Iterate(func(t Tuple, p P) bool {
		s.Merge(t, p)
		return true
	})
	return s.shards, nil
}
