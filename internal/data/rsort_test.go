package data

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"strings"
	"testing"
)

// Adversarial key generators for the radix sort properties: each returns a
// fresh slice designed to stress a distribution-pass edge — empty keys and
// exhausted buckets, 0x00/0xFF boundary bytes, long shared prefixes (the
// depth-advance fast path), heavy duplication (the dedup compaction), and
// length staircases (prefix-precedes-extension ordering).
var rsortCases = []struct {
	name string
	gen  func(rng *rand.Rand, n int) []string
}{
	{"random_bytes", func(rng *rand.Rand, n int) []string {
		out := make([]string, n)
		for i := range out {
			b := make([]byte, rng.Intn(12))
			rng.Read(b)
			out[i] = string(b)
		}
		return out
	}},
	{"boundary_bytes", func(rng *rand.Rand, n int) []string {
		alphabet := []byte{0x00, 0x01, 0xFE, 0xFF}
		out := make([]string, n)
		for i := range out {
			b := make([]byte, rng.Intn(6))
			for j := range b {
				b[j] = alphabet[rng.Intn(len(alphabet))]
			}
			out[i] = string(b)
		}
		return out
	}},
	{"shared_prefix", func(rng *rand.Rand, n int) []string {
		prefix := strings.Repeat("\x00p\xffq", 40) // far deeper than any cutoff
		out := make([]string, n)
		for i := range out {
			out[i] = prefix + fmt.Sprint(rng.Intn(n))
		}
		return out
	}},
	{"prefix_staircase", func(rng *rand.Rand, n int) []string {
		full := strings.Repeat("ab\x00", 30)
		out := make([]string, n)
		for i := range out {
			out[i] = full[:rng.Intn(len(full)+1)]
		}
		return out
	}},
	{"heavy_dups", func(rng *rand.Rand, n int) []string {
		distinct := []string{"", "\x00", "\x00\x00", "a", "aa", "ab", "\xff", "\xff\xff"}
		out := make([]string, n)
		for i := range out {
			out[i] = distinct[rng.Intn(len(distinct))]
		}
		return out
	}},
	{"encoded_tuples", func(rng *rand.Rand, n int) []string {
		out := make([]string, n)
		for i := range out {
			t := Tuple{Int(int64(rng.Intn(50) - 25)), String(fmt.Sprint(rng.Intn(9))), Float(rng.Float64())}
			out[i] = string(t.AppendKey(nil))
		}
		return out
	}},
}

// rsortSizes crosses the insertion-sort base case (<= radixSortCutoff), the
// first distribution pass, and deep multi-level recursion.
var rsortSizes = []int{0, 1, 2, radixSortCutoff - 1, radixSortCutoff, radixSortCutoff + 1, 500, 4000}

// TestRadixSortKeysMatchesSortStrings is the core equivalence property:
// RadixSortKeys must order any byte-string set exactly as sort.Strings does.
func TestRadixSortKeysMatchesSortStrings(t *testing.T) {
	for _, tc := range rsortCases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for _, n := range rsortSizes {
				keys := tc.gen(rng, n)
				want := slices.Clone(keys)
				sort.Strings(want)
				RadixSortKeys(keys)
				if !slices.Equal(keys, want) {
					t.Fatalf("n=%d: radix order diverges from sort.Strings\n got %q\nwant %q", n, keys, want)
				}
			}
		})
	}
}

// TestRadixSortKeysDedupMatchesCompact checks the in-pass dedup variant
// against the reference sort-then-compact pipeline.
func TestRadixSortKeysDedupMatchesCompact(t *testing.T) {
	for _, tc := range rsortCases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			for _, n := range rsortSizes {
				keys := tc.gen(rng, n)
				want := slices.Clone(keys)
				sort.Strings(want)
				want = slices.Compact(want)
				got := radixSortKeysDedup(keys)
				if !slices.Equal(got, want) {
					t.Fatalf("n=%d: dedup diverges from sort+compact\n got %q\nwant %q", n, got, want)
				}
			}
		})
	}
}

// TestRadixSortEntriesMatchesSortSlice checks the entry-run variant (used by
// buildSnapshot, SortedEntries, and the parallel shard reduce) against a
// comparator sort on the same keys, payload attribution included.
func TestRadixSortEntriesMatchesSortSlice(t *testing.T) {
	for _, tc := range rsortCases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(13))
			for _, n := range rsortSizes {
				keys := tc.gen(rng, n)
				es := make([]Entry[int64], len(keys))
				want := make([]Entry[int64], len(keys))
				for i, k := range keys {
					es[i] = Entry[int64]{key: k, Payload: int64(i)}
					want[i] = es[i]
				}
				sort.SliceStable(want, func(i, j int) bool { return want[i].key < want[j].key })
				radixSortEntries(es)
				for i := range es {
					if es[i].key != want[i].key {
						t.Fatalf("n=%d: entry key order diverges at %d: got %q want %q", n, i, es[i].key, want[i].key)
					}
				}
				// Equal keys may permute payloads (the radix sort is not
				// stable); check the payload multiset per key instead.
				gotP := map[string][]int64{}
				wantP := map[string][]int64{}
				for i := range es {
					gotP[es[i].key] = append(gotP[es[i].key], es[i].Payload)
					wantP[want[i].key] = append(wantP[want[i].key], want[i].Payload)
				}
				for k, ps := range gotP {
					ws := wantP[k]
					slices.Sort(ps)
					slices.Sort(ws)
					if !slices.Equal(ps, ws) {
						t.Fatalf("n=%d: payloads for key %q scrambled: got %v want %v", n, k, ps, ws)
					}
				}
			}
		})
	}
}
