package data

import (
	"bytes"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	tuples := []Tuple{
		Ints(0, 1, -1, 1<<62, -(1 << 62)),
		Floats(0, 3.5, -2.25, 1e300),
		{String(""), String("hello"), String("a\x00b"), Int(7)},
		{Float(-0.0), Int(-9), String("ütf8 ✓")},
	}
	for _, tup := range tuples {
		enc := tup.AppendKey(nil)
		got, n, err := DecodeTuple(enc, len(tup))
		if err != nil {
			t.Fatalf("%v: %v", tup, err)
		}
		if n != len(enc) {
			t.Errorf("%v: consumed %d of %d bytes", tup, n, len(enc))
		}
		if !got.Equal(tup) {
			t.Errorf("round trip %v -> %v", tup, got)
		}
		// Decoded tuples re-encode to identical bytes (keys survive a
		// persistence round trip bit-exactly).
		if re := got.AppendKey(nil); !bytes.Equal(re, enc) {
			t.Errorf("%v: re-encoded bytes differ", tup)
		}
	}
}

func TestCodecTruncatedAndMalformed(t *testing.T) {
	enc := Tuple{Int(12345), String("abc"), Float(2.5)}.AppendKey(nil)
	// Every proper prefix must fail cleanly, never panic.
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeTuple(enc[:cut], 3); err == nil {
			t.Errorf("prefix of %d bytes decoded without error", cut)
		}
	}
	if _, _, err := DecodeValue([]byte{99, 1, 2}); err == nil {
		t.Error("unknown kind decoded without error")
	}
	// A declared string length beyond the buffer must fail.
	bad := append([]byte{byte(KindString)}, 0xff, 0x01)
	if _, _, err := DecodeValue(bad); err == nil {
		t.Error("oversized string length decoded without error")
	}
}
