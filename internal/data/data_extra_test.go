package data

import (
	"strings"
	"testing"

	"fivm/internal/ring"
)

func TestRelationAccessors(t *testing.T) {
	r := NewRelation[int64](ring.Int{}, NewSchema("A", "B"))
	r.Merge(Ints(1, 2), 5)
	r.Merge(Ints(3, 4), 7)

	if r.Ring() == nil {
		t.Error("Ring accessor")
	}
	key := Ints(1, 2).Key()
	if p, ok := r.GetKey(key); !ok || p != 5 {
		t.Errorf("GetKey = %v,%v", p, ok)
	}
	if _, ok := r.GetKey("nope"); ok {
		t.Error("GetKey on absent key")
	}
	if e, ok := r.EntryKey(key); !ok || !e.Tuple.Equal(Ints(1, 2)) || e.Payload != 5 {
		t.Errorf("EntryKey = %+v,%v", e, ok)
	}
	if !r.ContainsKey(key) || r.ContainsKey("nope") {
		t.Error("ContainsKey")
	}
	if got := len(r.Entries()); got != 2 {
		t.Errorf("Entries = %d", got)
	}
	se := r.SortedEntries()
	if len(se) != 2 {
		t.Fatalf("SortedEntries = %d", len(se))
	}
	// Sorted by encoded key: (1,2) before (3,4) for int encodings.
	if !se[0].Tuple.Equal(Ints(1, 2)) {
		t.Errorf("sorted order: %v first", se[0].Tuple)
	}
	s := r.String()
	for _, frag := range []string{"[A,B]", "(1,2)->5", "(3,4)->7"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q: %s", frag, s)
		}
	}
}

func TestMergeAllAndSingleton(t *testing.T) {
	a := Singleton[int64](ring.Int{}, NewSchema("A"), Ints(1), 2)
	b := Singleton[int64](ring.Int{}, NewSchema("A"), Ints(1), 3)
	a.MergeAll(b)
	if p, _ := a.Get(Ints(1)); p != 5 {
		t.Errorf("MergeAll sum = %v", p)
	}
	c := FromEntries[int64](ring.Int{}, NewSchema("A"),
		Entry[int64]{Tuple: Ints(1), Payload: 1}, Entry[int64]{Tuple: Ints(1), Payload: 1})
	if p, _ := c.Get(Ints(1)); p != 2 {
		t.Errorf("FromEntries dedup = %v", p)
	}
}

func TestIterateEarlyStop(t *testing.T) {
	r := NewRelation[int64](ring.Int{}, NewSchema("A"))
	r.Merge(Ints(1), 1)
	r.Merge(Ints(2), 1)
	n := 0
	r.Iterate(func(Tuple, int64) bool { n++; return false })
	if n != 1 {
		t.Errorf("Iterate visited %d, want 1", n)
	}
}

func TestJoinAllSingleAndPanic(t *testing.T) {
	a := Singleton[int64](ring.Int{}, NewSchema("A"), Ints(1), 2)
	if JoinAll(a) != a {
		t.Error("JoinAll of one relation should return it")
	}
	defer func() {
		if recover() == nil {
			t.Error("JoinAll() should panic")
		}
	}()
	JoinAll[int64]()
}

func TestLiftOne(t *testing.T) {
	lift := LiftOne[int64](ring.Int{})
	if lift("X", Int(42)) != 1 {
		t.Error("LiftOne should always return One")
	}
}

func TestIndexAccessors(t *testing.T) {
	ir := NewIndexedRelation(NewRelation[int64](ring.Int{}, NewSchema("A", "B")))
	ir.MergeIndexed(Ints(1, 2), 1)
	ix := ir.EnsureIndex(NewSchema("A"))
	if !ix.On().Equal(NewSchema("A")) {
		t.Error("On")
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d", ix.Len())
	}
	if ir.Lookup(NewSchema("A")) != ix {
		t.Error("Lookup should return the same index")
	}
	if ir.Lookup(NewSchema("B")) != nil {
		t.Error("Lookup of absent index")
	}
	// EnsureIndex twice returns the same instance.
	if ir.EnsureIndex(NewSchema("A")) != ix {
		t.Error("EnsureIndex not idempotent")
	}
}

func TestMergeAllIndexedSchemaPermutation(t *testing.T) {
	ir := NewIndexedRelation(NewRelation[int64](ring.Int{}, NewSchema("A", "B")))
	o := NewRelation[int64](ring.Int{}, NewSchema("B", "A"))
	o.Merge(Ints(2, 1), 7) // (B=2, A=1)
	ir.MergeAllIndexed(o)
	if p, ok := ir.Get(Ints(1, 2)); !ok || p != 7 {
		t.Errorf("permuted MergeAllIndexed = %v,%v", p, ok)
	}
}

func TestMultisetAccessors(t *testing.T) {
	m := MultisetOf(NewSchema("X"), Ints(1), Ints(1), Ints(2))
	if m.TotalMult() != 3 {
		t.Errorf("TotalMult = %d", m.TotalMult())
	}
	if m.Mult(Ints(1)) != 2 || m.Mult(Ints(9)) != 0 {
		t.Error("Mult")
	}
	if got := m.SortedTuples(); len(got) != 2 || !got[0].Equal(Ints(1)) {
		t.Errorf("SortedTuples = %v", got)
	}
	s := m.String()
	if !strings.Contains(s, "(1)->2") {
		t.Errorf("String = %s", s)
	}
	var nilMS *Multiset
	if nilMS.String() != "{}" || nilMS.TotalMult() != 0 || nilMS.Schema() != nil {
		t.Error("nil multiset accessors")
	}
	if nilMS.ProjectOnto(NewSchema("X")) != nil {
		t.Error("nil projection")
	}
	u := UnitMultisetTimes(3)
	if u.Mult(Tuple{}) != 3 {
		t.Errorf("UnitMultisetTimes = %v", u)
	}
	if UnitMultisetTimes(0) != nil {
		t.Error("UnitMultisetTimes(0) should be nil")
	}
	sing := SingletonMultiset("X", Int(5))
	if sing.Len() != 1 || !sing.Schema().Equal(NewSchema("X")) {
		t.Errorf("SingletonMultiset = %v", sing)
	}
}

func TestRelRingScaleFastPath(t *testing.T) {
	rr := RelRing{}
	a := MultisetOf(NewSchema("X"), Ints(1), Ints(2))
	two := UnitMultisetTimes(2)
	p := rr.Mul(two, a)
	if p.Mult(Ints(1)) != 2 || p.Mult(Ints(2)) != 2 {
		t.Errorf("scale by 2 = %v", p)
	}
	if q := rr.Mul(a, two); q.Mult(Ints(1)) != 2 {
		t.Errorf("right scale = %v", q)
	}
	// Scaling by the unit shares the operand (immutability makes it safe).
	if rr.Mul(UnitMultisetTimes(1), a) != a {
		t.Error("unit scale should share")
	}
	if rr.Bytes(a) <= 0 || rr.Bytes(nil) != 0 {
		t.Error("Bytes")
	}
}

func TestSchemaCloneIndependent(t *testing.T) {
	s := NewSchema("A", "B")
	c := s.Clone()
	c[0] = "Z"
	if s[0] != "A" {
		t.Error("Clone shares storage")
	}
	p := MustProjector(s, NewSchema("B"))
	if p.Len() != 1 {
		t.Errorf("Projector Len = %d", p.Len())
	}
}

func TestValueEqualAcrossKinds(t *testing.T) {
	if Int(1) == Float(1) {
		t.Error("Int(1) must differ from Float(1)")
	}
	if String("1") == Int(1) {
		t.Error("String must differ from Int")
	}
	if Int(1) != Int(1) {
		t.Error("equal ints must compare equal")
	}
	if (Tuple{Int(1)}).Equal(Tuple{Int(1), Int(2)}) {
		t.Error("length mismatch")
	}
}

func TestUnionPanicsOnSchemaMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Union of different schemas should panic")
		}
	}()
	Union(NewRelation[int64](ring.Int{}, NewSchema("A")),
		NewRelation[int64](ring.Int{}, NewSchema("B")))
}

func TestMarginalizePanicsOnMissingVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Marginalize of absent variable should panic")
		}
	}()
	Marginalize(NewRelation[int64](ring.Int{}, NewSchema("A")), "Z",
		func(string, Value) int64 { return 1 })
}
