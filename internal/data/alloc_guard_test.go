package data

import (
	"testing"

	"fivm/internal/ring"
)

// Zero-allocation guards for the maintenance hot path. Unlike the
// benchmarks (which report allocs/op but fail nothing), these fail the
// build the moment a "small" change puts an allocation back on the per-
// tuple path — the class of regression that erased an order of magnitude
// in early profiles. AllocsPerRun warms up once, so one-time growth
// (table rehash, scratch buffers) is excluded by design: the guards pin
// steady state.

func guardZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc guards run in the non-race pass")
	}
	if allocs := testing.AllocsPerRun(200, f); allocs != 0 {
		t.Errorf("%s: %.1f allocs/op, want 0", name, allocs)
	}
}

func TestAllocGuardTupleAppendKey(t *testing.T) {
	tup := Tuple{Int(123456), Float(3.5), String("key"), Int(-9)}
	buf := make([]byte, 0, 64)
	guardZeroAllocs(t, "Tuple.AppendKey", func() {
		buf = tup.AppendKey(buf[:0])
	})
}

func TestAllocGuardRelationGet(t *testing.T) {
	r := NewRelation[int64](ring.Int{}, NewSchema("A", "B"))
	tups := make([]Tuple, 512)
	for i := range tups {
		tups[i] = Ints(int64(i), int64(i%13))
		r.Merge(tups[i], int64(i)+1)
	}
	i := 0
	guardZeroAllocs(t, "Relation.Get", func() {
		if _, ok := r.Get(tups[i%len(tups)]); !ok {
			t.Fatal("missing key")
		}
		i++
	})
}

func TestAllocGuardRelationMergeSteady(t *testing.T) {
	r := NewRelation[int64](ring.Int{}, NewSchema("A", "B"))
	tups := make([]Tuple, 512)
	for i := range tups {
		tups[i] = Ints(int64(i), int64(i%13))
		r.Merge(tups[i], int64(i)+1)
	}
	i := 0
	guardZeroAllocs(t, "Relation.Merge steady-state", func() {
		r.Merge(tups[i%len(tups)], 1) // every key already exists
		i++
	})
}

func TestAllocGuardTripleMergeSteady(t *testing.T) {
	cf := ring.Cofactor{}
	r := NewRelation[ring.Triple](cf, NewSchema("A"))
	tup := Ints(1)
	d := cf.Mul(ring.LiftValue(0, 2), cf.Mul(ring.LiftValue(1, 3), ring.LiftValue(2, 4)))
	r.Merge(tup, d)
	guardZeroAllocs(t, "Relation.Merge cofactor steady-state", func() {
		r.Merge(tup, d)
	})
}

func TestAllocGuardTripleAddInto(t *testing.T) {
	cf := ring.Cofactor{}
	acc := cf.Mul(ring.LiftValue(0, 2), cf.Mul(ring.LiftValue(1, 3), ring.LiftValue(2, 4)))
	d := acc
	guardZeroAllocs(t, "Triple.AddInto", func() {
		acc.AddInto(&d)
	})
}

func TestAllocGuardRadixSortKeys(t *testing.T) {
	keys := make([]string, 512)
	scratch := make([]string, len(keys))
	for i := range keys {
		keys[i] = string(Ints(int64(i*37%512), int64(i%7)).AppendKey(nil))
	}
	guardZeroAllocs(t, "RadixSortKeys", func() {
		copy(scratch, keys)
		RadixSortKeys(scratch)
	})
}

// TestAllocGuardSnapshotPublish is the zero-alloc snapshot publish guard:
// a steady-state publish+release cycle must cost at most 2 allocations —
// the snapshot struct itself plus the amortized remainder (generation
// sentinel and backstop registration every genSpan publishes, occasional
// block growth), which AllocsPerRun averages to well under one. Everything
// else (dirty list, entry runs, chunk directory, pin bookkeeping) must come
// from recycled arena storage.
func TestAllocGuardSnapshotPublish(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc guards run in the non-race pass")
	}
	r := NewRelation[int64](ring.Int{}, NewSchema("A", "B"))
	tups := make([]Tuple, 4096)
	for i := range tups {
		tups[i] = Ints(int64(i), int64(i%251))
		r.Merge(tups[i], int64(i)+1)
	}
	r.Snapshot().Release()
	// Warm the arena freelists through a full refresh lap so the guarded
	// window measures steady state, not first-lap block growth.
	for i := 0; i < 400; i++ {
		r.Merge(tups[i%len(tups)], 1)
		r.Snapshot().Release()
	}
	i := 0
	allocs := testing.AllocsPerRun(400, func() {
		r.Merge(tups[i%len(tups)], 1)
		r.Snapshot().Release()
		i++
	})
	if allocs > 2 {
		t.Errorf("snapshot publish: %.2f allocs/op, want <= 2", allocs)
	}
}
