package data

import "fivm/internal/ring"

// ReduceSealed reduces several relations key-wise into one sealed snapshot:
// the disjoint union of their keys where keys do not repeat, the ring sum of
// the payloads where they do. It is the publication path of the sharded
// parallel maintainer — shard results partition the keyspace when the shard
// variable is free (pure concatenation after sorting) and collapse onto the
// same keys when it is aggregated away (payload summation) — and replaces
// the merge-into-a-fresh-hash-relation reduce with one radix sort over the
// gathered entry values: no intermediate relation, no per-key hashing, no
// per-entry allocations beyond the single gathered run.
//
// The inputs must share a schema (same variables in the same order, so equal
// tuples have equal encoded keys) and stay unmodified for the duration of
// the call only: entry values are copied out, and payloads of rings with
// in-place accumulation are deep-copied, so later mutation of the inputs
// never bleeds into the returned snapshot. Keys whose payloads sum to zero
// are dropped, matching Relation.Merge semantics. Where payloads are summed,
// the combination order is sorted-key encounter order, which differs from
// any sequential update order — non-integral float payloads may round
// differently than an unsharded run (see Parallel's floating-point caveat).
func ReduceSealed[P any](rg ring.Ring[P], schema Schema, parts []*Relation[P]) *RelationSnapshot[P] {
	mut := ring.MutableOf(rg)
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	es := make([]Entry[P], 0, total)
	for _, p := range parts {
		p.entries.all(func(e *Entry[P]) bool {
			c := sealed(e)
			if mut != nil {
				var o P
				mut.CopyInto(&o, e.Payload)
				c.Payload = o
			}
			es = append(es, c)
			return true
		})
	}
	radixSortEntries(es)
	w := 0
	for i := 0; i < len(es); {
		j := i + 1
		for j < len(es) && es[j].key == es[i].key {
			if mut != nil {
				mut.AddInto(&es[i].Payload, es[j].Payload)
			} else {
				es[i].Payload = rg.Add(es[i].Payload, es[j].Payload)
			}
			j++
		}
		if j == i+1 || !rg.IsZero(es[i].Payload) {
			es[w] = es[i]
			w++
		}
		i = j
	}
	es = es[:w]
	return &RelationSnapshot[P]{schema: schema, ring: rg, n: len(es), chunks: appendChunked(nil, es, nil)}
}
