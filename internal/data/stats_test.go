package data

import (
	"math"
	"testing"

	"fivm/internal/ring"
)

func TestVarSketchDistinct(t *testing.T) {
	var s VarSketch
	if got := s.Distinct(); got != 0 {
		t.Fatalf("empty sketch distinct = %v", got)
	}
	for i := 0; i < 1000; i++ {
		s.Observe(Int(int64(i)))
	}
	// Repeated observations must not move the estimate.
	before := s.Distinct()
	for i := 0; i < 1000; i++ {
		s.Observe(Int(int64(i)))
	}
	if got := s.Distinct(); got != before {
		t.Fatalf("repeat observation moved estimate %v -> %v", before, got)
	}
	if before < 800 || before > 1250 {
		t.Fatalf("distinct estimate %v for 1000 values out of range", before)
	}
}

func TestVarSketchSaturates(t *testing.T) {
	var s VarSketch
	for i := 0; i < 1_000_000; i++ {
		s.Observe(Int(int64(i)))
	}
	got := s.Distinct()
	if math.IsInf(got, 0) || math.IsNaN(got) || got <= 0 {
		t.Fatalf("saturated sketch returned %v", got)
	}
}

func TestRelationCollectStatsTransitions(t *testing.T) {
	r := NewRelation[int64](ring.Int{}, NewSchema("A", "B"))
	st := NewStats()
	rs := st.Rel("R", r.Schema())
	r.CollectStats(rs)
	if !rs.Exact() {
		t.Fatal("attached collector should be exact")
	}

	r.Merge(Ints(1, 2), 1)
	r.Merge(Ints(1, 3), 1)
	r.Merge(Ints(1, 2), 2) // existing key: no transition
	if rs.Live != 2 || rs.Inserted != 2 {
		t.Fatalf("live=%d inserted=%d after inserts", rs.Live, rs.Inserted)
	}
	r.Merge(Ints(1, 2), -3) // cancels to zero: delete transition
	if rs.Live != 1 {
		t.Fatalf("live=%d after cancellation", rs.Live)
	}
	r.Set(Ints(9, 9), 5)
	r.Set(Ints(9, 9), 0) // Set to zero deletes
	if rs.Live != 1 {
		t.Fatalf("live=%d after set/unset", rs.Live)
	}
	if got := rs.Distinct("A"); got < 1 || got > 4 {
		t.Fatalf("distinct(A)=%v", got)
	}
	r.Clear()
	if rs.Live != 0 {
		t.Fatalf("live=%d after Clear", rs.Live)
	}
}

func TestRelationStatsThroughProjectedAndFusedMerges(t *testing.T) {
	r := NewRelation[int64](ring.Int{}, NewSchema("A"))
	rs := NewRelStats(r.Schema())
	r.CollectStats(rs)
	proj := MustProjector(NewSchema("A", "B"), NewSchema("A"))
	r.MergeProjected(proj, Ints(1, 7), 1)
	r.MergeProjected(proj, Ints(2, 7), 1)
	a, b := int64(1), int64(-1)
	r.MergeMul(Ints(1), &a, &b) // 1 + (1 * -1) = 0: delete
	if rs.Live != 1 {
		t.Fatalf("live=%d after projected+fused merges", rs.Live)
	}
	var zero int64
	r.MergeMul(Ints(5), &zero, &a) // fresh zero product: insert then drop
	if rs.Live != 1 {
		t.Fatalf("live=%d after zero fused merge", rs.Live)
	}
}

func TestIndexedRelationStats(t *testing.T) {
	ir := NewIndexedRelation(NewRelation[int64](ring.Int{}, NewSchema("A", "B")))
	rs := NewRelStats(ir.Schema())
	ir.CollectStats(rs)
	d := NewRelation[int64](ring.Int{}, NewSchema("B", "A")) // permuted schema
	d.Merge(Ints(2, 1), 1)
	ir.MergeAllIndexed(d)
	if rs.Live != 1 {
		t.Fatalf("live=%d after projected indexed merge", rs.Live)
	}
	ir.MergeAllIndexed(d.Negate())
	if rs.Live != 0 {
		t.Fatalf("live=%d after cancelling indexed merge", rs.Live)
	}
}

func TestObserveRelationAndDeltas(t *testing.T) {
	st := NewStats()
	r := NewRelation[int64](ring.Int{}, NewSchema("A", "B"))
	for i := 0; i < 10; i++ {
		r.Merge(Ints(int64(i%3), int64(i)), 1)
	}
	ObserveRelation(st, "R", r)
	rs := st.Lookup("R")
	if rs == nil || rs.Live != 10 {
		t.Fatalf("seeded live = %+v", rs)
	}
	if d := rs.Distinct("A"); d < 2 || d > 5 {
		t.Fatalf("distinct(A)=%v, want ~3", d)
	}

	d := NewRelation[int64](ring.Int{}, NewSchema("A", "B"))
	d.Merge(Ints(7, 7), 1)
	ObserveDeltaRelation(st, "R", r.Schema(), d)
	if rs.DeltaTuples != 1 {
		t.Fatalf("delta tuples = %d", rs.DeltaTuples)
	}
	// Approximate (non-exact) relations also bump Live per delta entry.
	if rs.Live != 11 {
		t.Fatalf("approximate live = %d", rs.Live)
	}
	// Exact relations leave cardinality to the transition feed.
	r.CollectStats(rs)
	ObserveDeltaRelation(st, "R", r.Schema(), d)
	if rs.Live != 11 || rs.DeltaTuples != 2 {
		t.Fatalf("exact live=%d deltas=%d", rs.Live, rs.DeltaTuples)
	}
}

func TestShardedCollectStats(t *testing.T) {
	s, err := NewSharded[int64](ring.Int{}, NewSchema("A", "B"), "A", 4)
	if err != nil {
		t.Fatal(err)
	}
	rs := NewRelStats(NewSchema("A", "B"))
	s.CollectStats(rs)
	for i := 0; i < 8; i++ {
		s.Merge(Ints(int64(i), int64(i)), 1)
	}
	if rs.DeltaTuples != 8 {
		t.Fatalf("routed deltas = %d", rs.DeltaTuples)
	}
	if d := rs.Distinct("A"); d < 6 || d > 10 {
		t.Fatalf("distinct(A)=%v", d)
	}
}

func TestStatsSnapshotDrift(t *testing.T) {
	st := NewStats()
	ra := st.Rel("R", NewSchema("A"))
	rb := st.Rel("S", NewSchema("B"))
	ra.Live, ra.DeltaTuples = 100, 100
	rb.Live, rb.DeltaTuples = 100, 100
	snap := st.Snapshot()

	cf, sd := st.DriftFrom(snap)
	if cf != 1 || sd != 0 {
		t.Fatalf("no-change drift = %v, %v", cf, sd)
	}
	ra.Live = 800
	ra.DeltaTuples = 900
	cf, sd = st.DriftFrom(snap)
	if cf < 4 {
		t.Fatalf("card factor %v after 8x growth", cf)
	}
	if sd < 0.3 {
		t.Fatalf("share delta %v after rate skew", sd)
	}
}
