package data

import (
	"fmt"
	"strings"

	"fivm/internal/ring"
)

// Entry is one key-payload pair of a relation. Relations store entries by
// pointer, so a payload update in place does not reallocate or re-hash; the
// unexported key field caches the encoded tuple key for index maintenance
// and deletion without re-encoding, and hash caches the key's table hash so
// growth and index bucket membership never touch the key bytes again.
type Entry[P any] struct {
	key     string
	hash    uint64
	Tuple   Tuple
	Payload P
	// gen guards snapshot sharing of mutable payload storage: when it is
	// older than the relation's publish generation, the storage is shared
	// with a published snapshot and must be privatized before the next
	// in-place mutation (see Relation.ensureOwned). Zero on relations that
	// were never snapshotted.
	gen uint64
}

// Key returns the entry's encoded tuple key.
func (e *Entry[P]) Key() string { return e.key }

// Relation is a finite-support function from tuples over a schema to
// payloads in a ring D: the paper's relations R : Dom(S) -> D. Keys with
// payload 0 are not stored, so Len is the paper's |R|.
//
// Entries live in an open-addressing, group-probed hash table (see swiss.go)
// specialized for the pointer-entry layout: slots hold entry pointers only,
// keys and hashes are cached inside the entries.
//
// Mutating and probing methods share a per-relation scratch buffer for key
// encoding, so steady-state Get/Merge/Set do zero key allocations; as a
// consequence a Relation must not be accessed concurrently, even for reads
// through keyBuf-using methods (pure entry iteration — Iterate,
// IterateEntries, MergeAll's source side — does not touch the scratch and
// may be shared read-only across goroutines).
//
// When the payload ring implements ring.Mutable, the relation switches to
// owned accumulation: payloads are deep-copied on first store and mutated in
// place by later merges, so steady-state payload accumulation does zero
// allocations. Payloads read out of such a relation are snapshots only
// until its next update.
//
// For concurrent readers, Snapshot publishes an immutable RelationSnapshot
// of the current contents at O(changed-since-last-snapshot) cost; sealed
// snapshot entries are never mutated in place, so pinned snapshots stay
// valid while the live relation keeps changing.
type Relation[P any] struct {
	schema  Schema
	ring    ring.Ring[P]
	mut     ring.Mutable[P]    // non-nil when the ring supports in-place accumulation
	mutRef  ring.MutableRef[P] // non-nil when the ring additionally takes pointer sources
	entries entryTable[P]
	keyBuf  []byte
	// keyHash is the hash of the key most recently encoded into keyBuf (or
	// looked up by string); insertEntry stores it into the fresh entry, so a
	// probe-then-insert pair hashes the key exactly once.
	keyHash uint64
	// recycle marks delta-scratch relations whose entries Clear moves onto
	// the freelist for reuse; see RecycleCleared.
	recycle bool
	// shareProjected lets projected merges store prefix subslices of the
	// source tuple instead of fresh copies; see ShareProjectedTuples.
	shareProjected bool
	free           []*Entry[P]
	// stats, when non-nil, receives every insert/delete transition; see
	// CollectStats.
	stats *RelStats
	// snap, when non-nil, tracks the keys dirtied since the last published
	// snapshot; see Snapshot.
	snap *snapState[P]
}

// NewRelation creates an empty relation over the given ring and schema.
func NewRelation[P any](r ring.Ring[P], schema Schema) *Relation[P] {
	return &Relation[P]{schema: schema, ring: r, mut: ring.MutableOf(r), mutRef: ring.MutableRefOf(r)}
}

// owned returns the payload to store for a fresh entry: a deep copy when the
// ring supports in-place accumulation (so later merges may mutate it), the
// value itself otherwise (immutable by the ring contract).
func (r *Relation[P]) owned(p P) P {
	if r.mut == nil {
		return p
	}
	var o P
	r.mut.CopyInto(&o, p)
	return o
}

// Schema returns the relation's schema.
func (r *Relation[P]) Schema() Schema { return r.schema }

// Ring returns the relation's payload ring.
func (r *Relation[P]) Ring() ring.Ring[P] { return r.ring }

// Len returns the number of keys with non-zero payloads.
func (r *Relation[P]) Len() int { return r.entries.len() }

// Reserve grows the entry table to hold at least n entries without
// rehashing, a capacity hint for bulk loads and delta materialization.
func (r *Relation[P]) Reserve(n int) {
	r.entries.reserve(n)
}

// Clear removes every entry, retaining the table's capacity for reuse in
// steady-state delta scratch relations (and, after RecycleCleared, the
// entry structs and their payload storage too).
func (r *Relation[P]) Clear() {
	if r.recycle && r.snap == nil {
		// Recycling is disabled once the relation publishes snapshots:
		// pinned snapshots may still reference the cleared entries and
		// their payload storage. (Recycling scratch relations are never
		// snapshotted, so this guard changes nothing in practice.)
		r.entries.all(func(e *Entry[P]) bool {
			e.Tuple = nil // tuples may be retained by consumers; never reused
			r.free = append(r.free, e)
			return true
		})
	}
	if r.stats != nil {
		r.stats.Live -= r.entries.len()
	}
	if r.snap != nil {
		// Wholesale invalidation: the next publish rebuilds from scratch.
		r.snap.fullDirty = true
		r.snap.dirtyKeys = r.snap.dirtyKeys[:0]
	}
	r.entries.clear()
}

// ShareProjectedTuples lets MergeProjected and MergeMulProjected store, for
// prefix projections, a subslice of the source tuple instead of a fresh
// copy. Callers must guarantee every projected source tuple's backing array
// is immutable for the relation's lifetime (true for delta-relation tuples,
// false for arena-backed scratch tuples).
func (r *Relation[P]) ShareProjectedTuples() { r.shareProjected = true }

// projApply materializes the projection of t for storage, honoring the
// tuple-sharing mode.
func (r *Relation[P]) projApply(proj Projector, t Tuple) Tuple {
	if r.shareProjected {
		return proj.SharedApply(t)
	}
	return proj.Apply(t)
}

// CollectStats attaches a statistics collector: from now on every insert
// transition (key appearing with non-zero payload) and delete transition
// (payload cancelling to zero) is reported to rs, keeping its cardinality
// exact and its per-column sketches current. Existing contents are not
// re-counted — seed rs first (ObserveRelation) when attaching to a populated
// relation. The overhead is one nil check on unhooked relations and one
// counter-plus-sketch update per transition otherwise. Pass nil to detach.
func (r *Relation[P]) CollectStats(rs *RelStats) {
	r.stats = rs
	if rs != nil {
		rs.exact = true
	}
}

// noteInsert and noteDelete report presence transitions to the attached
// statistics collector, if any.
func (r *Relation[P]) noteInsert(t Tuple) {
	if r.stats != nil {
		r.stats.ObserveInsert(t)
	}
}

func (r *Relation[P]) noteDelete() {
	if r.stats != nil {
		r.stats.ObserveDelete()
	}
}

// RecycleCleared makes Clear feed removed entries into a freelist that
// fresh stores pop from, reusing the Entry struct and (for rings with
// in-place accumulation) its payload storage. Safe only for relations whose
// consumers never hold an *Entry, or a mutable-ring payload read from one,
// across a Clear — the delta-propagation scratch relations qualify: views
// copy what they keep. Stored tuples are never reused.
func (r *Relation[P]) RecycleCleared() { r.recycle = true }

// removeEntry deletes an entry and reports the transition to the
// statistics collector and the snapshot dirty list.
func (r *Relation[P]) removeEntry(e *Entry[P]) {
	r.entries.del(e)
	r.noteDelete()
	r.markEntry(e)
}

// insertEntry stores a fresh entry under key (which must be absent and must
// be the key whose hash a lookup just left in keyHash), reusing a recycled
// entry when available. The caller must set Payload (recycled entries hold
// stale payloads whose storage CopyInto/MulInto may reuse).
func (r *Relation[P]) insertEntry(key string, t Tuple) *Entry[P] {
	var e *Entry[P]
	if n := len(r.free); n > 0 {
		e = r.free[n-1]
		r.free = r.free[:n-1]
		e.key = key
		e.Tuple = t
	} else {
		e = &Entry[P]{key: key, Tuple: t}
	}
	e.hash = r.keyHash
	r.entries.insert(e)
	r.noteInsert(t)
	r.markInserted(e)
	return e
}

// adopt inserts an externally built entry whose key, hash, and payload are
// already set (relation clones and negations).
func (r *Relation[P]) adopt(e *Entry[P]) {
	r.entries.insert(e)
}

// lookup returns the entry stored under tuple t, encoding the key into the
// relation's scratch buffer and leaving its hash in keyHash (no allocation).
func (r *Relation[P]) lookup(t Tuple) *Entry[P] {
	r.keyBuf = t.AppendKey(r.keyBuf[:0])
	r.keyHash = hashBytes(r.keyBuf)
	return r.entries.getBytes(r.keyHash, r.keyBuf)
}

// lookupScratch probes for the key currently encoded in the scratch buffer,
// leaving its hash in keyHash.
func (r *Relation[P]) lookupScratch() *Entry[P] {
	r.keyHash = hashBytes(r.keyBuf)
	return r.entries.getBytes(r.keyHash, r.keyBuf)
}

// lookupString probes for an interned key string, leaving its hash in
// keyHash.
func (r *Relation[P]) lookupString(key string) *Entry[P] {
	r.keyHash = hashString(key)
	return r.entries.getString(r.keyHash, key)
}

// Get returns the payload of tuple t and whether it is non-zero.
func (r *Relation[P]) Get(t Tuple) (P, bool) {
	if e := r.lookup(t); e != nil {
		return e.Payload, true
	}
	var zero P
	return zero, false
}

// GetProjected returns the payload stored under the projection of t by
// proj (which must target r's schema), without materializing the projected
// tuple or its key.
func (r *Relation[P]) GetProjected(proj Projector, t Tuple) (P, bool) {
	r.keyBuf = proj.AppendKey(r.keyBuf[:0], t)
	if e := r.lookupScratch(); e != nil {
		return e.Payload, true
	}
	var zero P
	return zero, false
}

// LookupProjected returns the entry stored under the projection of t by
// proj, or nil. Hot paths use it to reach payloads without copying them;
// the entry is owned by the relation and must not be mutated.
func (r *Relation[P]) LookupProjected(proj Projector, t Tuple) *Entry[P] {
	r.keyBuf = proj.AppendKey(r.keyBuf[:0], t)
	return r.lookupScratch()
}

// GetKey returns the payload stored under an encoded key.
func (r *Relation[P]) GetKey(key string) (P, bool) {
	if e := r.lookupString(key); e != nil {
		return e.Payload, true
	}
	var zero P
	return zero, false
}

// EntryKey returns the full entry stored under an encoded key.
func (r *Relation[P]) EntryKey(key string) (*Entry[P], bool) {
	e := r.lookupString(key)
	return e, e != nil
}

// Contains reports whether tuple t has a non-zero payload.
func (r *Relation[P]) Contains(t Tuple) bool { return r.lookup(t) != nil }

// ContainsKey reports whether the encoded key has a non-zero payload.
func (r *Relation[P]) ContainsKey(key string) bool {
	return r.lookupString(key) != nil
}

// Set assigns payload p to tuple t, deleting the key if p is zero.
func (r *Relation[P]) Set(t Tuple, p P) {
	if e := r.lookup(t); e != nil {
		if r.ring.IsZero(p) {
			r.removeEntry(e)
			return
		}
		if r.mut != nil {
			if s := r.snap; s != nil && e.gen != s.gen {
				// Storage shared with a snapshot: overwrite into fresh storage
				// (no point privatizing the old payload just to discard it).
				var o P
				r.mut.CopyInto(&o, p)
				e.Payload = o
				e.gen = s.gen
				s.dirtyKeys = append(s.dirtyKeys, e.key)
				return
			}
			r.mut.CopyInto(&e.Payload, p) // reuse the owned payload's storage
			return
		}
		r.markEntry(e)
		e.Payload = p
		return
	}
	if r.ring.IsZero(p) {
		return
	}
	key := string(r.keyBuf) // lookup left t's encoding in the scratch buffer
	r.setPayload(r.insertEntry(key, t), p)
}

// setPayload assigns p to a freshly inserted entry, deep-copying into the
// entry's (possibly recycled) storage for rings with in-place accumulation.
func (r *Relation[P]) setPayload(e *Entry[P], p P) {
	if r.mut != nil {
		r.mut.CopyInto(&e.Payload, p)
		return
	}
	e.Payload = p
}

// isZeroRef reports whether *p is zero, reading through the pointer when the
// ring supports it (a by-value IsZero copies the payload header — 80 bytes
// for a cofactor triple — per call).
func (r *Relation[P]) isZeroRef(p *P) bool {
	if r.mutRef != nil {
		return r.mutRef.IsZeroRef(p)
	}
	return r.ring.IsZero(*p)
}

// addIntoEntry accumulates *p into e's payload in place, with a pointer
// source when the ring supports it. p must point at heap-resident storage
// (another entry's payload, an owned accumulator field) — see
// ring.MutableRef. Requires r.mut != nil.
func (r *Relation[P]) addIntoEntry(e *Entry[P], p *P) {
	if r.mutRef != nil {
		r.mutRef.AddIntoRef(&e.Payload, p)
		return
	}
	r.mut.AddInto(&e.Payload, *p)
}

// setPayloadRef is setPayload for a heap-resident source payload.
func (r *Relation[P]) setPayloadRef(e *Entry[P], p *P) {
	if r.mutRef != nil {
		r.mutRef.CopyIntoRef(&e.Payload, p)
		return
	}
	r.setPayload(e, *p)
}

// mergeEntry adds p to the payload of tuple t and reports the affected entry
// together with its presence transition (existed before, exists after), so
// index maintenance can react to appearance and disappearance.
func (r *Relation[P]) mergeEntry(t Tuple, p P) (en *Entry[P], existed, exists bool) {
	if e := r.lookup(t); e != nil {
		if r.mut != nil {
			r.touchEntry(e)
			r.mut.AddInto(&e.Payload, p)
			if r.isZeroRef(&e.Payload) {
				r.removeEntry(e)
				return e, true, false
			}
			return e, true, true
		}
		s := r.ring.Add(e.Payload, p)
		if r.ring.IsZero(s) {
			r.removeEntry(e)
			return e, true, false
		}
		r.markEntry(e)
		e.Payload = s
		return e, true, true
	}
	if r.ring.IsZero(p) {
		return nil, false, false
	}
	key := string(r.keyBuf) // lookup left t's encoding in the scratch buffer
	e := r.insertEntry(key, t)
	r.setPayload(e, p)
	return e, false, true
}

// Merge adds p to the payload of tuple t (the pointwise union operator ⊎
// applied to a single key), deleting the key if the sum vanishes. It returns
// the new payload.
func (r *Relation[P]) Merge(t Tuple, p P) P {
	en, _, exists := r.mergeEntry(t, p)
	if exists {
		return en.Payload
	}
	var zero P
	if en != nil {
		return zero // cancelled to zero
	}
	return p // zero merge into absent key
}

// MergeProjected merges payload p under the projection of t by proj (which
// must target r's schema). The projected tuple is materialized only when a
// new entry is inserted, so steady-state projected merges do zero
// allocations.
func (r *Relation[P]) MergeProjected(proj Projector, t Tuple, p P) {
	r.keyBuf = proj.AppendKey(r.keyBuf[:0], t)
	if e := r.lookupScratch(); e != nil {
		if r.mut != nil {
			r.touchEntry(e)
			r.mut.AddInto(&e.Payload, p)
			if r.isZeroRef(&e.Payload) {
				r.removeEntry(e)
			}
			return
		}
		s := r.ring.Add(e.Payload, p)
		if r.ring.IsZero(s) {
			r.removeEntry(e)
			return
		}
		r.markEntry(e)
		e.Payload = s
		return
	}
	if r.ring.IsZero(p) {
		return
	}
	key := string(r.keyBuf)
	r.setPayload(r.insertEntry(key, r.projApply(proj, t)), p)
}

// MergeMul merges the product (*a)*(*b) under tuple t. For rings with
// in-place accumulation the product is computed directly into the stored
// payload (zero allocations for existing keys); otherwise it falls back to
// Merge(t, a*b). The operands are only read.
func (r *Relation[P]) MergeMul(t Tuple, a, b *P) {
	if r.mut == nil {
		r.Merge(t, r.ring.Mul(*a, *b))
		return
	}
	if e := r.lookup(t); e != nil {
		r.touchEntry(e)
		r.mut.MulAddInto(&e.Payload, a, b)
		if r.isZeroRef(&e.Payload) {
			r.removeEntry(e)
		}
		return
	}
	key := string(r.keyBuf) // lookup left t's encoding in the scratch buffer
	e := r.insertEntry(key, t)
	r.mut.MulInto(&e.Payload, a, b)
	if r.isZeroRef(&e.Payload) {
		r.dropFresh(e)
	}
}

// dropFresh removes an entry that was just inserted but whose payload
// turned out zero, returning it to the freelist when recycling.
func (r *Relation[P]) dropFresh(e *Entry[P]) {
	r.removeEntry(e)
	if r.recycle {
		e.Tuple = nil
		r.free = append(r.free, e)
	}
}

// MergeMulProjected merges the product (*a)*(*b) under the projection of t
// by proj: out[π(t)] += a*b, the innermost operation of delta propagation.
// For rings with in-place accumulation the product lands directly in the
// stored payload, so merges onto existing keys do zero allocations. The
// operands are only read.
func (r *Relation[P]) MergeMulProjected(proj Projector, t Tuple, a, b *P) {
	if r.mut == nil {
		r.MergeProjected(proj, t, r.ring.Mul(*a, *b))
		return
	}
	r.keyBuf = proj.AppendKey(r.keyBuf[:0], t)
	if e := r.lookupScratch(); e != nil {
		r.touchEntry(e)
		r.mut.MulAddInto(&e.Payload, a, b)
		if r.isZeroRef(&e.Payload) {
			r.removeEntry(e)
		}
		return
	}
	key := string(r.keyBuf)
	e := r.insertEntry(key, r.projApply(proj, t))
	r.mut.MulInto(&e.Payload, a, b)
	if r.isZeroRef(&e.Payload) {
		r.dropFresh(e)
	}
}

// MergeProjectedKey is MergeProjected for a caller-encoded key: key must be
// the encoding of proj applied to t (as produced by proj.AppendKey). The
// fused delta-application path encodes every output key once for sorting and
// reuses it here, skipping the re-encode MergeProjected would do. The key
// bytes are copied on insert, never retained. p must point at heap-resident
// storage (the fuser's owned accumulator qualifies) and is only read.
func (r *Relation[P]) MergeProjectedKey(key []byte, proj Projector, t Tuple, p *P) {
	r.keyHash = hashBytes(key)
	if e := r.entries.getBytes(r.keyHash, key); e != nil {
		if r.mut != nil {
			r.touchEntry(e)
			r.addIntoEntry(e, p)
			if r.isZeroRef(&e.Payload) {
				r.removeEntry(e)
			}
			return
		}
		s := r.ring.Add(e.Payload, *p)
		if r.ring.IsZero(s) {
			r.removeEntry(e)
			return
		}
		r.markEntry(e)
		e.Payload = s
		return
	}
	if r.isZeroRef(p) {
		return
	}
	r.setPayloadRef(r.insertEntry(string(key), r.projApply(proj, t)), p)
}

// MergeKey is Merge for a pre-encoded key.
func (r *Relation[P]) MergeKey(key string, t Tuple, p P) {
	if e := r.lookupString(key); e != nil {
		if r.mut != nil {
			r.touchEntry(e)
			r.mut.AddInto(&e.Payload, p)
			if r.isZeroRef(&e.Payload) {
				r.removeEntry(e)
			}
			return
		}
		s := r.ring.Add(e.Payload, p)
		if r.ring.IsZero(s) {
			r.removeEntry(e)
			return
		}
		r.markEntry(e)
		e.Payload = s
		return
	}
	if !r.ring.IsZero(p) {
		r.setPayload(r.insertEntry(key, t), p)
	}
}

// mergeKeyRef is MergeKey for a heap-resident source payload: the source is
// read through its pointer, so wide payloads are never copied at the
// interface boundary. Requires r.mut != nil.
func (r *Relation[P]) mergeKeyRef(key string, t Tuple, p *P) {
	if e := r.lookupString(key); e != nil {
		r.touchEntry(e)
		r.addIntoEntry(e, p)
		if r.isZeroRef(&e.Payload) {
			r.removeEntry(e)
		}
		return
	}
	if !r.isZeroRef(p) {
		r.setPayloadRef(r.insertEntry(key, t), p)
	}
}

// MergeAll merges every entry of o into r: r := r ⊎ o. The relations must
// share a schema (same variables in the same order). Source payloads are
// entry-resident, so rings with pointer-source accumulation merge them
// without copying.
func (r *Relation[P]) MergeAll(o *Relation[P]) {
	if r.mut != nil {
		o.entries.all(func(e *Entry[P]) bool {
			r.mergeKeyRef(e.key, e.Tuple, &e.Payload)
			return true
		})
		return
	}
	o.entries.all(func(e *Entry[P]) bool {
		r.MergeKey(e.key, e.Tuple, e.Payload)
		return true
	})
}

// Iterate calls f for each entry until f returns false. Iteration order is
// unspecified.
func (r *Relation[P]) Iterate(f func(t Tuple, p P) bool) {
	r.entries.all(func(e *Entry[P]) bool {
		return f(e.Tuple, e.Payload)
	})
}

// IterateEntries calls f for each stored entry until f returns false. The
// entries are owned by the relation and must not be mutated.
func (r *Relation[P]) IterateEntries(f func(e *Entry[P]) bool) {
	r.entries.all(f)
}

// Entries returns copies of the entries in unspecified order.
func (r *Relation[P]) Entries() []Entry[P] {
	out := make([]Entry[P], 0, r.entries.len())
	r.entries.all(func(e *Entry[P]) bool {
		out = append(out, *e)
		return true
	})
	return out
}

// SortedEntries returns the entries ordered by encoded key, for
// deterministic output in tests and tools.
func (r *Relation[P]) SortedEntries() []Entry[P] {
	out := make([]Entry[P], 0, r.entries.len())
	r.entries.all(func(e *Entry[P]) bool {
		out = append(out, *e)
		return true
	})
	radixSortEntries(out)
	return out
}

// Clone returns a copy sharing tuples but no entry or table structure.
// Payloads are shared for immutable rings and deep-copied for rings with
// in-place accumulation, so later merges into either relation never bleed
// into the other.
func (r *Relation[P]) Clone() *Relation[P] {
	out := &Relation[P]{schema: r.schema, ring: r.ring, mut: r.mut, mutRef: r.mutRef}
	out.entries.reserve(r.entries.len())
	r.entries.all(func(e *Entry[P]) bool {
		c := *e
		c.gen = 0
		if r.mutRef != nil {
			var o P
			r.mutRef.CopyIntoRef(&o, &e.Payload)
			c.Payload = o
		} else if r.mut != nil {
			var o P
			r.mut.CopyInto(&o, e.Payload)
			c.Payload = o
		}
		out.adopt(&c)
		return true
	})
	return out
}

// Negate returns a relation mapping every key of r to the additive inverse
// of its payload. A deletion of the tuples of r is expressed as merging
// r.Negate().
func (r *Relation[P]) Negate() *Relation[P] {
	out := &Relation[P]{schema: r.schema, ring: r.ring, mut: r.mut, mutRef: r.mutRef}
	out.entries.reserve(r.entries.len())
	r.entries.all(func(e *Entry[P]) bool {
		out.adopt(&Entry[P]{key: e.key, hash: e.hash, Tuple: e.Tuple, Payload: r.ring.Neg(e.Payload)})
		return true
	})
	return out
}

// Equal reports whether two relations have the same schema variables and
// identical key support, comparing payloads with eq.
func (r *Relation[P]) Equal(o *Relation[P], eq func(a, b P) bool) bool {
	if !r.schema.SameSet(o.schema) || r.entries.len() != o.entries.len() {
		return false
	}
	proj := MustProjector(o.schema, r.schema)
	var buf []byte
	equal := true
	o.entries.all(func(e *Entry[P]) bool {
		buf = proj.AppendKey(buf[:0], e.Tuple)
		p := r.entries.getBytes(hashBytes(buf), buf)
		if p == nil || !eq(p.Payload, e.Payload) {
			equal = false
			return false
		}
		return true
	})
	return equal
}

// String renders the relation's sorted contents for debugging.
func (r *Relation[P]) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v{", r.schema)
	for i, e := range r.SortedEntries() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%v->%v", e.Tuple, e.Payload)
	}
	b.WriteString("}")
	return b.String()
}

// FromEntries builds a relation from tuple/payload pairs, merging duplicate
// keys.
func FromEntries[P any](r ring.Ring[P], schema Schema, entries ...Entry[P]) *Relation[P] {
	rel := NewRelation(r, schema)
	for _, e := range entries {
		rel.Merge(e.Tuple, e.Payload)
	}
	return rel
}

// Singleton builds a relation holding one tuple with the given payload.
func Singleton[P any](r ring.Ring[P], schema Schema, t Tuple, p P) *Relation[P] {
	rel := NewRelation(r, schema)
	rel.Set(t, p)
	return rel
}
