package data

import (
	"fmt"
	"sort"
	"strings"

	"fivm/internal/ring"
)

// Entry is one key-payload pair of a relation. Relations store entries by
// pointer, so a payload update in place does not reallocate or re-hash; the
// unexported key field caches the encoded tuple key for index maintenance
// and deletion without re-encoding.
type Entry[P any] struct {
	key     string
	Tuple   Tuple
	Payload P
}

// Key returns the entry's encoded tuple key.
func (e *Entry[P]) Key() string { return e.key }

// Relation is a finite-support function from tuples over a schema to
// payloads in a ring D: the paper's relations R : Dom(S) -> D. Keys with
// payload 0 are not stored, so Len is the paper's |R|.
//
// Mutating and probing methods share a per-relation scratch buffer for key
// encoding, so steady-state Get/Merge/Set do zero key allocations; as a
// consequence a Relation must not be accessed concurrently, even for reads.
type Relation[P any] struct {
	schema  Schema
	ring    ring.Ring[P]
	entries map[string]*Entry[P]
	keyBuf  []byte
}

// NewRelation creates an empty relation over the given ring and schema.
func NewRelation[P any](r ring.Ring[P], schema Schema) *Relation[P] {
	return &Relation[P]{schema: schema, ring: r, entries: make(map[string]*Entry[P])}
}

// Schema returns the relation's schema.
func (r *Relation[P]) Schema() Schema { return r.schema }

// Ring returns the relation's payload ring.
func (r *Relation[P]) Ring() ring.Ring[P] { return r.ring }

// Len returns the number of keys with non-zero payloads.
func (r *Relation[P]) Len() int { return len(r.entries) }

// Reserve grows the entry table to hold at least n entries without
// rehashing, a capacity hint for bulk loads and delta materialization.
func (r *Relation[P]) Reserve(n int) {
	if n <= len(r.entries) {
		return
	}
	if len(r.entries) == 0 {
		r.entries = make(map[string]*Entry[P], n)
		return
	}
	m := make(map[string]*Entry[P], n)
	for k, e := range r.entries {
		m[k] = e
	}
	r.entries = m
}

// Clear removes every entry, retaining the table's capacity for reuse in
// steady-state delta scratch relations.
func (r *Relation[P]) Clear() { clear(r.entries) }

// lookup returns the entry stored under tuple t, encoding the key into the
// relation's scratch buffer (no allocation).
func (r *Relation[P]) lookup(t Tuple) *Entry[P] {
	r.keyBuf = t.AppendKey(r.keyBuf[:0])
	return r.entries[string(r.keyBuf)]
}

// Get returns the payload of tuple t and whether it is non-zero.
func (r *Relation[P]) Get(t Tuple) (P, bool) {
	if e := r.lookup(t); e != nil {
		return e.Payload, true
	}
	var zero P
	return zero, false
}

// GetProjected returns the payload stored under the projection of t by
// proj (which must target r's schema), without materializing the projected
// tuple or its key.
func (r *Relation[P]) GetProjected(proj Projector, t Tuple) (P, bool) {
	r.keyBuf = proj.AppendKey(r.keyBuf[:0], t)
	if e, ok := r.entries[string(r.keyBuf)]; ok {
		return e.Payload, true
	}
	var zero P
	return zero, false
}

// GetKey returns the payload stored under an encoded key.
func (r *Relation[P]) GetKey(key string) (P, bool) {
	e, ok := r.entries[key]
	if !ok {
		var zero P
		return zero, false
	}
	return e.Payload, true
}

// EntryKey returns the full entry stored under an encoded key.
func (r *Relation[P]) EntryKey(key string) (*Entry[P], bool) {
	e, ok := r.entries[key]
	return e, ok
}

// Contains reports whether tuple t has a non-zero payload.
func (r *Relation[P]) Contains(t Tuple) bool { return r.lookup(t) != nil }

// ContainsKey reports whether the encoded key has a non-zero payload.
func (r *Relation[P]) ContainsKey(key string) bool {
	_, ok := r.entries[key]
	return ok
}

// Set assigns payload p to tuple t, deleting the key if p is zero.
func (r *Relation[P]) Set(t Tuple, p P) {
	if e := r.lookup(t); e != nil {
		if r.ring.IsZero(p) {
			delete(r.entries, e.key)
			return
		}
		e.Payload = p
		return
	}
	if r.ring.IsZero(p) {
		return
	}
	key := string(r.keyBuf) // lookup left t's encoding in the scratch buffer
	r.entries[key] = &Entry[P]{key: key, Tuple: t, Payload: p}
}

// mergeEntry adds p to the payload of tuple t and reports the affected entry
// together with its presence transition (existed before, exists after), so
// index maintenance can react to appearance and disappearance.
func (r *Relation[P]) mergeEntry(t Tuple, p P) (en *Entry[P], existed, exists bool) {
	if e := r.lookup(t); e != nil {
		s := r.ring.Add(e.Payload, p)
		if r.ring.IsZero(s) {
			delete(r.entries, e.key)
			return e, true, false
		}
		e.Payload = s
		return e, true, true
	}
	if r.ring.IsZero(p) {
		return nil, false, false
	}
	key := string(r.keyBuf) // lookup left t's encoding in the scratch buffer
	e := &Entry[P]{key: key, Tuple: t, Payload: p}
	r.entries[key] = e
	return e, false, true
}

// Merge adds p to the payload of tuple t (the pointwise union operator ⊎
// applied to a single key), deleting the key if the sum vanishes. It returns
// the new payload.
func (r *Relation[P]) Merge(t Tuple, p P) P {
	en, _, exists := r.mergeEntry(t, p)
	if exists {
		return en.Payload
	}
	var zero P
	if en != nil {
		return zero // cancelled to zero
	}
	return p // zero merge into absent key
}

// MergeProjected merges payload p under the projection of t by proj (which
// must target r's schema). The projected tuple is materialized only when a
// new entry is inserted, so steady-state projected merges do zero
// allocations.
func (r *Relation[P]) MergeProjected(proj Projector, t Tuple, p P) {
	r.keyBuf = proj.AppendKey(r.keyBuf[:0], t)
	if e, ok := r.entries[string(r.keyBuf)]; ok {
		s := r.ring.Add(e.Payload, p)
		if r.ring.IsZero(s) {
			delete(r.entries, e.key)
			return
		}
		e.Payload = s
		return
	}
	if r.ring.IsZero(p) {
		return
	}
	key := string(r.keyBuf)
	r.entries[key] = &Entry[P]{key: key, Tuple: proj.Apply(t), Payload: p}
}

// MergeKey is Merge for a pre-encoded key.
func (r *Relation[P]) MergeKey(key string, t Tuple, p P) {
	if e, ok := r.entries[key]; ok {
		s := r.ring.Add(e.Payload, p)
		if r.ring.IsZero(s) {
			delete(r.entries, key)
			return
		}
		e.Payload = s
		return
	}
	if !r.ring.IsZero(p) {
		r.entries[key] = &Entry[P]{key: key, Tuple: t, Payload: p}
	}
}

// MergeAll merges every entry of o into r: r := r ⊎ o. The relations must
// share a schema (same variables in the same order).
func (r *Relation[P]) MergeAll(o *Relation[P]) {
	for key, e := range o.entries {
		r.MergeKey(key, e.Tuple, e.Payload)
	}
}

// Iterate calls f for each entry until f returns false. Iteration order is
// unspecified.
func (r *Relation[P]) Iterate(f func(t Tuple, p P) bool) {
	for _, e := range r.entries {
		if !f(e.Tuple, e.Payload) {
			return
		}
	}
}

// IterateEntries calls f for each stored entry until f returns false. The
// entries are owned by the relation and must not be mutated.
func (r *Relation[P]) IterateEntries(f func(e *Entry[P]) bool) {
	for _, e := range r.entries {
		if !f(e) {
			return
		}
	}
}

// Entries returns copies of the entries in unspecified order.
func (r *Relation[P]) Entries() []Entry[P] {
	out := make([]Entry[P], 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, *e)
	}
	return out
}

// SortedEntries returns the entries ordered by encoded key, for
// deterministic output in tests and tools.
func (r *Relation[P]) SortedEntries() []Entry[P] {
	keys := make([]string, 0, len(r.entries))
	for k := range r.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Entry[P], 0, len(keys))
	for _, k := range keys {
		out = append(out, *r.entries[k])
	}
	return out
}

// Clone returns a copy sharing tuples and payloads (payloads are immutable
// by the ring contract) but no entry or map structure.
func (r *Relation[P]) Clone() *Relation[P] {
	out := &Relation[P]{schema: r.schema, ring: r.ring, entries: make(map[string]*Entry[P], len(r.entries))}
	for k, e := range r.entries {
		c := *e
		out.entries[k] = &c
	}
	return out
}

// Negate returns a relation mapping every key of r to the additive inverse
// of its payload. A deletion of the tuples of r is expressed as merging
// r.Negate().
func (r *Relation[P]) Negate() *Relation[P] {
	out := &Relation[P]{schema: r.schema, ring: r.ring, entries: make(map[string]*Entry[P], len(r.entries))}
	for k, e := range r.entries {
		out.entries[k] = &Entry[P]{key: e.key, Tuple: e.Tuple, Payload: r.ring.Neg(e.Payload)}
	}
	return out
}

// Equal reports whether two relations have the same schema variables and
// identical key support, comparing payloads with eq.
func (r *Relation[P]) Equal(o *Relation[P], eq func(a, b P) bool) bool {
	if !r.schema.SameSet(o.schema) || len(r.entries) != len(o.entries) {
		return false
	}
	proj := MustProjector(o.schema, r.schema)
	var buf []byte
	for _, e := range o.entries {
		buf = proj.AppendKey(buf[:0], e.Tuple)
		p, ok := r.entries[string(buf)]
		if !ok || !eq(p.Payload, e.Payload) {
			return false
		}
	}
	return true
}

// String renders the relation's sorted contents for debugging.
func (r *Relation[P]) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v{", r.schema)
	for i, e := range r.SortedEntries() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%v->%v", e.Tuple, e.Payload)
	}
	b.WriteString("}")
	return b.String()
}

// FromEntries builds a relation from tuple/payload pairs, merging duplicate
// keys.
func FromEntries[P any](r ring.Ring[P], schema Schema, entries ...Entry[P]) *Relation[P] {
	rel := NewRelation(r, schema)
	for _, e := range entries {
		rel.Merge(e.Tuple, e.Payload)
	}
	return rel
}

// Singleton builds a relation holding one tuple with the given payload.
func Singleton[P any](r ring.Ring[P], schema Schema, t Tuple, p P) *Relation[P] {
	rel := NewRelation(r, schema)
	rel.Set(t, p)
	return rel
}
