package data

import (
	"fmt"
	"sort"
	"strings"

	"fivm/internal/ring"
)

// Entry is one key-payload pair of a relation.
type Entry[P any] struct {
	Tuple   Tuple
	Payload P
}

// Relation is a finite-support function from tuples over a schema to
// payloads in a ring D: the paper's relations R : Dom(S) -> D. Keys with
// payload 0 are not stored, so Len is the paper's |R|.
type Relation[P any] struct {
	schema  Schema
	ring    ring.Ring[P]
	entries map[string]Entry[P]
}

// NewRelation creates an empty relation over the given ring and schema.
func NewRelation[P any](r ring.Ring[P], schema Schema) *Relation[P] {
	return &Relation[P]{schema: schema, ring: r, entries: make(map[string]Entry[P])}
}

// Schema returns the relation's schema.
func (r *Relation[P]) Schema() Schema { return r.schema }

// Ring returns the relation's payload ring.
func (r *Relation[P]) Ring() ring.Ring[P] { return r.ring }

// Len returns the number of keys with non-zero payloads.
func (r *Relation[P]) Len() int { return len(r.entries) }

// Get returns the payload of tuple t and whether it is non-zero.
func (r *Relation[P]) Get(t Tuple) (P, bool) {
	e, ok := r.entries[t.Key()]
	if !ok {
		var zero P
		return zero, false
	}
	return e.Payload, true
}

// GetKey returns the payload stored under an encoded key.
func (r *Relation[P]) GetKey(key string) (P, bool) {
	e, ok := r.entries[key]
	if !ok {
		var zero P
		return zero, false
	}
	return e.Payload, true
}

// EntryKey returns the full entry stored under an encoded key.
func (r *Relation[P]) EntryKey(key string) (Entry[P], bool) {
	e, ok := r.entries[key]
	return e, ok
}

// Contains reports whether tuple t has a non-zero payload.
func (r *Relation[P]) Contains(t Tuple) bool {
	_, ok := r.entries[t.Key()]
	return ok
}

// ContainsKey reports whether the encoded key has a non-zero payload.
func (r *Relation[P]) ContainsKey(key string) bool {
	_, ok := r.entries[key]
	return ok
}

// Set assigns payload p to tuple t, deleting the key if p is zero.
func (r *Relation[P]) Set(t Tuple, p P) {
	key := t.Key()
	if r.ring.IsZero(p) {
		delete(r.entries, key)
		return
	}
	r.entries[key] = Entry[P]{Tuple: t, Payload: p}
}

// Merge adds p to the payload of tuple t (the pointwise union operator ⊎
// applied to a single key), deleting the key if the sum vanishes. It returns
// the new payload.
func (r *Relation[P]) Merge(t Tuple, p P) P {
	key := t.Key()
	if e, ok := r.entries[key]; ok {
		s := r.ring.Add(e.Payload, p)
		if r.ring.IsZero(s) {
			delete(r.entries, key)
			return s
		}
		r.entries[key] = Entry[P]{Tuple: e.Tuple, Payload: s}
		return s
	}
	if !r.ring.IsZero(p) {
		r.entries[key] = Entry[P]{Tuple: t, Payload: p}
	}
	return p
}

// MergeKey is Merge for a pre-encoded key.
func (r *Relation[P]) MergeKey(key string, t Tuple, p P) {
	if e, ok := r.entries[key]; ok {
		s := r.ring.Add(e.Payload, p)
		if r.ring.IsZero(s) {
			delete(r.entries, key)
			return
		}
		r.entries[key] = Entry[P]{Tuple: e.Tuple, Payload: s}
		return
	}
	if !r.ring.IsZero(p) {
		r.entries[key] = Entry[P]{Tuple: t, Payload: p}
	}
}

// MergeAll merges every entry of o into r: r := r ⊎ o. The relations must
// share a schema (same variables in the same order).
func (r *Relation[P]) MergeAll(o *Relation[P]) {
	for key, e := range o.entries {
		r.MergeKey(key, e.Tuple, e.Payload)
	}
}

// Iterate calls f for each entry until f returns false. Iteration order is
// unspecified.
func (r *Relation[P]) Iterate(f func(t Tuple, p P) bool) {
	for _, e := range r.entries {
		if !f(e.Tuple, e.Payload) {
			return
		}
	}
}

// Entries returns the entries in unspecified order.
func (r *Relation[P]) Entries() []Entry[P] {
	out := make([]Entry[P], 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	return out
}

// SortedEntries returns the entries ordered by encoded key, for
// deterministic output in tests and tools.
func (r *Relation[P]) SortedEntries() []Entry[P] {
	keys := make([]string, 0, len(r.entries))
	for k := range r.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Entry[P], 0, len(keys))
	for _, k := range keys {
		out = append(out, r.entries[k])
	}
	return out
}

// Clone returns a copy sharing payloads (payloads are immutable by the ring
// contract) but no map structure.
func (r *Relation[P]) Clone() *Relation[P] {
	out := &Relation[P]{schema: r.schema, ring: r.ring, entries: make(map[string]Entry[P], len(r.entries))}
	for k, e := range r.entries {
		out.entries[k] = e
	}
	return out
}

// Negate returns a relation mapping every key of r to the additive inverse
// of its payload. A deletion of the tuples of r is expressed as merging
// r.Negate().
func (r *Relation[P]) Negate() *Relation[P] {
	out := NewRelation(r.ring, r.schema)
	for k, e := range r.entries {
		out.entries[k] = Entry[P]{Tuple: e.Tuple, Payload: r.ring.Neg(e.Payload)}
	}
	return out
}

// Equal reports whether two relations have the same schema variables and
// identical key support, comparing payloads with eq.
func (r *Relation[P]) Equal(o *Relation[P], eq func(a, b P) bool) bool {
	if !r.schema.SameSet(o.schema) || len(r.entries) != len(o.entries) {
		return false
	}
	proj := MustProjector(o.schema, r.schema)
	for _, e := range o.entries {
		p, ok := r.entries[proj.Key(e.Tuple)]
		if !ok || !eq(p.Payload, e.Payload) {
			return false
		}
	}
	return true
}

// String renders the relation's sorted contents for debugging.
func (r *Relation[P]) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v{", r.schema)
	for i, e := range r.SortedEntries() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%v->%v", e.Tuple, e.Payload)
	}
	b.WriteString("}")
	return b.String()
}

// FromEntries builds a relation from tuple/payload pairs, merging duplicate
// keys.
func FromEntries[P any](r ring.Ring[P], schema Schema, entries ...Entry[P]) *Relation[P] {
	rel := NewRelation(r, schema)
	for _, e := range entries {
		rel.Merge(e.Tuple, e.Payload)
	}
	return rel
}

// Singleton builds a relation holding one tuple with the given payload.
func Singleton[P any](r ring.Ring[P], schema Schema, t Tuple, p P) *Relation[P] {
	rel := NewRelation(r, schema)
	rel.Set(t, p)
	return rel
}
