package data

import (
	"fmt"
	"sort"
	"strings"
)

// Multiset is a relation over the Z ring: a finite map from tuples to
// integer multiplicities. It is the element type of the relational data ring
// F[Z] (paper Definition 6.4), which lets view payloads carry entire
// relations — the listing or factorized representation of conjunctive query
// results. Multisets are immutable once published as payloads.
type Multiset struct {
	schema Schema
	rows   map[string]msRow
}

type msRow struct {
	tuple Tuple
	mult  int64
}

// NewMultiset creates an empty multiset over the given schema.
func NewMultiset(schema Schema) *Multiset {
	return &Multiset{schema: schema, rows: make(map[string]msRow)}
}

// MultisetOf builds a multiset from tuples all with multiplicity 1.
func MultisetOf(schema Schema, tuples ...Tuple) *Multiset {
	m := NewMultiset(schema)
	for _, t := range tuples {
		m.add(t, 1)
	}
	return m
}

// UnitMultiset returns {() -> 1}, the identity of the relational ring.
func UnitMultiset() *Multiset {
	m := NewMultiset(nil)
	m.add(Tuple{}, 1)
	return m
}

// UnitMultisetTimes returns {() -> n}: a multiplicity-n payload, the sum of
// n units (or its negation for n < 0). Returns nil (zero) for n == 0.
func UnitMultisetTimes(n int64) *Multiset {
	if n == 0 {
		return nil
	}
	m := NewMultiset(nil)
	m.add(Tuple{}, n)
	return m
}

// SingletonMultiset returns {(x) -> 1} over schema {variable}: the lifting
// of a free variable's value in the relational ring.
func SingletonMultiset(variable string, v Value) *Multiset {
	m := NewMultiset(Schema{variable})
	m.add(Tuple{v}, 1)
	return m
}

func (m *Multiset) add(t Tuple, mult int64) {
	key := t.Key()
	row, ok := m.rows[key]
	if !ok {
		if mult != 0 {
			m.rows[key] = msRow{tuple: t, mult: mult}
		}
		return
	}
	row.mult += mult
	if row.mult == 0 {
		delete(m.rows, key)
		return
	}
	m.rows[key] = row
}

// Schema returns the multiset's schema; nil for the empty schema.
func (m *Multiset) Schema() Schema {
	if m == nil {
		return nil
	}
	return m.schema
}

// Len returns the number of distinct tuples with non-zero multiplicity.
func (m *Multiset) Len() int {
	if m == nil {
		return 0
	}
	return len(m.rows)
}

// TotalMult returns the sum of multiplicities.
func (m *Multiset) TotalMult() int64 {
	if m == nil {
		return 0
	}
	var n int64
	for _, r := range m.rows {
		n += r.mult
	}
	return n
}

// Mult returns the multiplicity of tuple t.
func (m *Multiset) Mult(t Tuple) int64 {
	if m == nil {
		return 0
	}
	return m.rows[t.Key()].mult
}

// Iterate calls f for each tuple/multiplicity pair until f returns false.
func (m *Multiset) Iterate(f func(t Tuple, mult int64) bool) {
	if m == nil {
		return
	}
	for _, r := range m.rows {
		if !f(r.tuple, r.mult) {
			return
		}
	}
}

// SortedTuples returns the tuples ordered by encoded key.
func (m *Multiset) SortedTuples() []Tuple {
	if m == nil {
		return nil
	}
	keys := make([]string, 0, len(m.rows))
	for k := range m.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Tuple, 0, len(keys))
	for _, k := range keys {
		out = append(out, m.rows[k].tuple)
	}
	return out
}

// scale returns the multiset with every multiplicity multiplied by k;
// multisets are immutable, so k == 1 may share the receiver.
func (m *Multiset) scale(k int64) *Multiset {
	if k == 0 || m.Len() == 0 {
		return nil
	}
	if k == 1 {
		return m
	}
	out := NewMultiset(m.schema)
	for key, r := range m.rows {
		out.rows[key] = msRow{tuple: r.tuple, mult: r.mult * k}
	}
	return out
}

// ProjectOnto returns the multiset projected onto the target schema, with
// multiplicities of merged tuples summed. The factorized representation uses
// it to keep only the view's own marginalized variable in each payload.
func (m *Multiset) ProjectOnto(target Schema) *Multiset {
	if m == nil {
		return nil
	}
	if m.schema.Equal(target) {
		return m
	}
	out := NewMultiset(target)
	proj := MustProjector(m.schema, target)
	for _, r := range m.rows {
		out.add(proj.Apply(r.tuple), r.mult)
	}
	if len(out.rows) == 0 {
		return nil
	}
	return out
}

// String renders the multiset deterministically for debugging.
func (m *Multiset) String() string {
	if m == nil {
		return "{}"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%v{", m.schema)
	for i, t := range m.SortedTuples() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%v->%d", t, m.rows[t.Key()].mult)
	}
	b.WriteString("}")
	return b.String()
}

// RelRing is the relational data ring F[Z]: addition is multiset union,
// multiplication is natural join (Cartesian product concatenation when the
// operand schemas are disjoint), zero is the empty multiset, and one is
// {() -> 1}. Within a view tree the operand schemas of + always agree and
// the operand schemas of * are disjoint, which keeps this a ring for our
// purposes (paper footnote 2).
type RelRing struct{}

// Zero returns the empty multiset (represented as nil).
func (RelRing) Zero() *Multiset { return nil }

// One returns {() -> 1}.
func (RelRing) One() *Multiset { return UnitMultiset() }

// IsZero reports whether the multiset has empty support.
func (RelRing) IsZero(a *Multiset) bool { return a.Len() == 0 }

// Neg negates every multiplicity.
func (RelRing) Neg(a *Multiset) *Multiset {
	if a.Len() == 0 {
		return nil
	}
	out := NewMultiset(a.schema)
	for k, r := range a.rows {
		out.rows[k] = msRow{tuple: r.tuple, mult: -r.mult}
	}
	return out
}

// Add returns the multiset union (multiplicities summed). Operand schemas
// must contain the same variables.
func (RelRing) Add(a, b *Multiset) *Multiset {
	if a.Len() == 0 {
		return b
	}
	if b.Len() == 0 {
		return a
	}
	if !a.schema.SameSet(b.schema) {
		panic(fmt.Sprintf("data: relational ring sum of schemas %v and %v", a.schema, b.schema))
	}
	out := NewMultiset(a.schema)
	for k, r := range a.rows {
		out.rows[k] = r
	}
	proj := MustProjector(b.schema, a.schema)
	for _, r := range b.rows {
		out.add(proj.Apply(r.tuple), r.mult)
	}
	if len(out.rows) == 0 {
		return nil
	}
	return out
}

// Mul returns the natural join with multiplicities multiplied; for disjoint
// schemas this is the Cartesian product that concatenates payload tuples.
func (RelRing) Mul(a, b *Multiset) *Multiset {
	if a.Len() == 0 || b.Len() == 0 {
		return nil
	}
	// Fast paths: a nullary operand {() -> m} scales the other. These
	// dominate in view trees, where bound variables lift to the unit.
	if len(a.schema) == 0 && len(a.rows) == 1 {
		return b.scale(a.rows[""].mult)
	}
	if len(b.schema) == 0 && len(b.rows) == 1 {
		return a.scale(b.rows[""].mult)
	}
	common := a.schema.Intersect(b.schema)
	outSchema := a.schema.Union(b.schema)
	out := NewMultiset(outSchema)

	if len(common) == 0 {
		for _, ra := range a.rows {
			for _, rb := range b.rows {
				out.add(Concat(ra.tuple, rb.tuple), ra.mult*rb.mult)
			}
		}
		return out
	}

	bCommon := MustProjector(b.schema, common)
	bExtra := MustProjector(b.schema, b.schema.Minus(common))
	type bucket struct {
		extra Tuple
		mult  int64
	}
	buckets := make(map[string][]bucket, len(b.rows))
	for _, rb := range b.rows {
		k := bCommon.Key(rb.tuple)
		buckets[k] = append(buckets[k], bucket{extra: bExtra.Apply(rb.tuple), mult: rb.mult})
	}
	aCommon := MustProjector(a.schema, common)
	for _, ra := range a.rows {
		for _, m := range buckets[aCommon.Key(ra.tuple)] {
			out.add(Concat(ra.tuple, m.extra), ra.mult*m.mult)
		}
	}
	if len(out.rows) == 0 {
		return nil
	}
	return out
}

// Bytes estimates the heap footprint of a multiset payload.
func (RelRing) Bytes(a *Multiset) int {
	if a == nil {
		return 0
	}
	n := 48
	for k, r := range a.rows {
		n += len(k) + 16 + len(r.tuple)*32 + 16
	}
	return n
}
