package data

import (
	"testing"

	"fivm/internal/ring"
)

// benchTuples builds n distinct tuples over (A, B) with mixed value kinds,
// exercising every branch of the key codec.
func benchTuples(n int) []Tuple {
	out := make([]Tuple, n)
	for i := 0; i < n; i++ {
		out[i] = Tuple{Int(int64(i % 97)), Int(int64(i / 97)), String("s")}
	}
	return out
}

func BenchmarkTupleKey(b *testing.B) {
	tuples := benchTuples(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tuples[i%len(tuples)].Key()
	}
}

// BenchmarkTupleAppendKey is the allocation-free codec path: encoding into a
// reused scratch buffer.
func BenchmarkTupleAppendKey(b *testing.B) {
	tuples := benchTuples(256)
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tuples[i%len(tuples)].AppendKey(buf[:0])
	}
	_ = buf
}

// BenchmarkRelationMerge measures steady-state Merge into existing keys: the
// hot path of delta propagation once the views have warmed up.
func BenchmarkRelationMerge(b *testing.B) {
	r := NewRelation[int64](ring.Int{}, NewSchema("A", "B", "C"))
	tuples := benchTuples(1024)
	for _, t := range tuples {
		r.Merge(t, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Merge(tuples[i%len(tuples)], 1)
	}
}

// BenchmarkRelationGet measures point lookups by tuple.
func BenchmarkRelationGet(b *testing.B) {
	r := NewRelation[int64](ring.Int{}, NewSchema("A", "B", "C"))
	tuples := benchTuples(1024)
	for _, t := range tuples {
		r.Merge(t, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Get(tuples[i%len(tuples)])
	}
}
