package data

import (
	"testing"

	"fivm/internal/ring"
)

func TestAppendKeyMatchesKey(t *testing.T) {
	tup := Tuple{Int(-7), Float(2.5), String("xy"), Int(1 << 40)}
	var buf []byte
	buf = tup.AppendKey(buf[:0])
	if string(buf) != tup.Key() {
		t.Error("AppendKey and Key disagree")
	}
	// Reusing the buffer across tuples yields the same encodings.
	other := Ints(1, 2, 3)
	buf = other.AppendKey(buf[:0])
	if string(buf) != other.Key() {
		t.Error("AppendKey with reused buffer disagrees with Key")
	}
}

func TestGetAndMergeProjected(t *testing.T) {
	rg := ring.Int{}
	r := NewRelation[int64](rg, NewSchema("B", "A"))
	src := NewSchema("A", "B", "C")
	proj := MustProjector(src, r.Schema())
	wide := Ints(1, 2, 3) // A=1 B=2 C=3 -> (B=2, A=1)

	r.MergeProjected(proj, wide, 5)
	if p, ok := r.Get(Ints(2, 1)); !ok || p != 5 {
		t.Fatalf("MergeProjected stored %v/%v", p, ok)
	}
	if p, ok := r.GetProjected(proj, wide); !ok || p != 5 {
		t.Fatalf("GetProjected = %v/%v", p, ok)
	}
	// Merging the additive inverse deletes the key.
	r.MergeProjected(proj, wide, -5)
	if r.Len() != 0 {
		t.Error("cancelled entry not deleted")
	}
	if _, ok := r.GetProjected(proj, wide); ok {
		t.Error("GetProjected found deleted key")
	}
}

func TestReserveAndClear(t *testing.T) {
	r := NewRelation[int64](ring.Int{}, NewSchema("A"))
	r.Merge(Ints(1), 1)
	r.Reserve(100)
	if p, ok := r.Get(Ints(1)); !ok || p != 1 {
		t.Fatal("Reserve lost an entry")
	}
	r.Merge(Ints(2), 2)
	r.Clear()
	if r.Len() != 0 {
		t.Fatal("Clear left entries")
	}
	r.Merge(Ints(3), 3)
	if p, ok := r.Get(Ints(3)); !ok || p != 3 {
		t.Error("relation unusable after Clear")
	}
}

func TestProjectorAppendTo(t *testing.T) {
	proj := MustProjector(NewSchema("A", "B", "C"), NewSchema("C", "A"))
	dst := Ints(9)
	dst = proj.AppendTo(dst, Ints(1, 2, 3))
	if !dst.Equal(Ints(9, 3, 1)) {
		t.Errorf("AppendTo = %v", dst)
	}
}

func TestIndexProbeYieldsEntries(t *testing.T) {
	ir := NewIndexedRelation(NewRelation[int64](ring.Int{}, NewSchema("A", "B")))
	ir.MergeIndexed(Ints(1, 10), 2)
	ir.MergeIndexed(Ints(1, 20), 3)
	ir.MergeIndexed(Ints(2, 30), 4)
	ix := ir.EnsureIndex(NewSchema("A"))

	var buf []byte
	buf = Ints(1).AppendKey(buf[:0])
	sum := int64(0)
	for en := range ix.ProbeBytes(buf).All() {
		sum += en.Payload
		if en.Key() == "" {
			t.Error("entry key not populated")
		}
	}
	if sum != 5 {
		t.Errorf("probed payload sum = %d, want 5", sum)
	}
	// Payload updates are visible through the index without re-adding.
	ir.MergeIndexed(Ints(1, 10), 5)
	sum = 0
	for en := range ix.ProbeBytes(buf).All() {
		sum += en.Payload
	}
	if sum != 10 {
		t.Errorf("probed payload sum after update = %d, want 10", sum)
	}
}
