package data

import (
	"fmt"
	"strings"
)

// Schema is an ordered list of distinct variable (attribute) names. Tuples
// over a schema lay out their values in schema order.
type Schema []string

// NewSchema builds a schema, panicking on duplicate variables; schemas are
// built from static query definitions, so duplicates are programmer errors.
func NewSchema(vars ...string) Schema {
	s := Schema(vars)
	seen := make(map[string]bool, len(vars))
	for _, v := range vars {
		if seen[v] {
			panic(fmt.Sprintf("data: duplicate variable %q in schema", v))
		}
		seen[v] = true
	}
	return s
}

// IndexOf returns the position of variable v, or -1.
func (s Schema) IndexOf(v string) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

// Contains reports whether v occurs in the schema.
func (s Schema) Contains(v string) bool { return s.IndexOf(v) >= 0 }

// ContainsAll reports whether every variable of o occurs in s.
func (s Schema) ContainsAll(o Schema) bool {
	for _, v := range o {
		if !s.Contains(v) {
			return false
		}
	}
	return true
}

// Equal reports order-sensitive equality.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// SameSet reports whether the two schemas contain the same variables,
// regardless of order.
func (s Schema) SameSet(o Schema) bool {
	return len(s) == len(o) && s.ContainsAll(o)
}

// Union returns s followed by the variables of o not already present,
// preserving first-occurrence order.
func (s Schema) Union(o Schema) Schema {
	out := make(Schema, len(s), len(s)+len(o))
	copy(out, s)
	for _, v := range o {
		if !out.Contains(v) {
			out = append(out, v)
		}
	}
	return out
}

// Intersect returns the variables of s that also occur in o, in s's order.
func (s Schema) Intersect(o Schema) Schema {
	var out Schema
	for _, v := range s {
		if o.Contains(v) {
			out = append(out, v)
		}
	}
	return out
}

// Minus returns the variables of s that do not occur in o, in s's order.
func (s Schema) Minus(o Schema) Schema {
	var out Schema
	for _, v := range s {
		if !o.Contains(v) {
			out = append(out, v)
		}
	}
	return out
}

// Clone returns an independent copy.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// String renders the schema as a bracketed variable list.
func (s Schema) String() string { return "[" + strings.Join(s, ",") + "]" }

// Projector maps tuples over a source schema to tuples over a target schema
// whose variables all occur in the source. Building a Projector once and
// applying it per tuple avoids repeated name lookups on hot paths.
type Projector struct {
	idx []int
	// prefix marks the projection that keeps the first len(idx) columns in
	// order, so its result can be a subslice of the source.
	prefix bool
}

// NewProjector builds a projector from schema from onto schema to. It
// returns an error if some target variable is missing from the source.
func NewProjector(from, to Schema) (Projector, error) {
	idx := make([]int, len(to))
	prefix := true
	for i, v := range to {
		j := from.IndexOf(v)
		if j < 0 {
			return Projector{}, fmt.Errorf("data: projection target %q not in source schema %v", v, from)
		}
		idx[i] = j
		if j != i {
			prefix = false
		}
	}
	return Projector{idx: idx, prefix: prefix}, nil
}

// IsPrefix reports whether the projection keeps a leading subsequence of
// the source columns in order.
func (p Projector) IsPrefix() bool { return p.prefix }

// SharedApply projects the tuple, returning a capacity-capped subslice of t
// for prefix projections (no allocation; the result shares t's backing and
// is safe only while t's storage is immutable) and a fresh tuple otherwise.
func (p Projector) SharedApply(t Tuple) Tuple {
	if p.prefix {
		return t[:len(p.idx):len(p.idx)]
	}
	return p.Apply(t)
}

// MustProjector is NewProjector that panics on error, for statically known
// schemas.
func MustProjector(from, to Schema) Projector {
	p, err := NewProjector(from, to)
	if err != nil {
		panic(err)
	}
	return p
}

// Apply projects the tuple, returning a fresh tuple.
func (p Projector) Apply(t Tuple) Tuple {
	out := make(Tuple, len(p.idx))
	for i, j := range p.idx {
		out[i] = t[j]
	}
	return out
}

// AppendTo appends the projection of src to dst and returns the extended
// tuple, letting callers build a concatenated tuple in one allocation.
func (p Projector) AppendTo(dst, src Tuple) Tuple {
	for _, j := range p.idx {
		dst = append(dst, src[j])
	}
	return dst
}

// AppendKey appends the binary key encoding of the projection of t to b,
// avoiding the intermediate tuple allocation of Apply().Key().
func (p Projector) AppendKey(b []byte, t Tuple) []byte {
	for _, j := range p.idx {
		b = t[j].appendKey(b)
	}
	return b
}

// Key returns the binary key encoding of the projection of t.
func (p Projector) Key(t Tuple) string {
	if len(p.idx) == 0 {
		return ""
	}
	return string(p.AppendKey(make([]byte, 0, 9*len(p.idx)), t))
}

// Len returns the arity of the projection target.
func (p Projector) Len() int { return len(p.idx) }
