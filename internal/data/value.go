// Package data implements the F-IVM data model: relations over rings.
//
// A relation over schema S and ring D is a finite-support function from
// tuples over S (the keys) to ring elements (the payloads). The package
// provides values, tuples, schemas, relations keyed by compact encodings,
// the three query operators — union, join, and marginalization with lifting
// functions — and the relational data ring F[Z] whose elements are
// themselves relations (paper Definition 6.4).
package data

import (
	"encoding/binary"
	"math"
	"strconv"
)

// Kind enumerates the value types supported in keys.
type Kind uint8

// Supported key value kinds.
const (
	KindInt Kind = iota
	KindFloat
	KindString
)

// Value is a single key attribute value: an int64, float64, or string.
// The zero Value is the integer 0. Value is comparable.
type Value struct {
	kind Kind
	num  uint64 // int64 or float64 bits
	str  string
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, num: uint64(v)} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, num: math.Float64bits(v)} }

// String returns a string value.
func String(v string) Value { return Value{kind: KindString, str: v} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// AsInt returns the value as an int64; floats are truncated, strings yield 0.
func (v Value) AsInt() int64 {
	switch v.kind {
	case KindInt:
		return int64(v.num)
	case KindFloat:
		return int64(math.Float64frombits(v.num))
	default:
		return 0
	}
}

// AsFloat returns the value as a float64; strings yield 0. Lifting functions
// for numeric rings use this coercion.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt:
		return float64(int64(v.num))
	case KindFloat:
		return math.Float64frombits(v.num)
	default:
		return 0
	}
}

// AsString returns the string payload of a string value, or "".
func (v Value) AsString() string {
	if v.kind == KindString {
		return v.str
	}
	return ""
}

// String renders the value for debugging and table output.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(int64(v.num), 10)
	case KindFloat:
		return strconv.FormatFloat(math.Float64frombits(v.num), 'g', -1, 64)
	default:
		return v.str
	}
}

// Hash returns a 64-bit FNV-1a hash of the value, stable across processes.
// Shard routing uses it, so partition assignment is deterministic for a
// given shard count.
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h ^= uint64(v.kind)
	h *= prime64
	if v.kind == KindString {
		for i := 0; i < len(v.str); i++ {
			h ^= uint64(v.str[i])
			h *= prime64
		}
		return h
	}
	n := v.num
	for i := 0; i < 8; i++ {
		h ^= n & 0xff
		h *= prime64
		n >>= 8
	}
	return h
}

// appendKey appends a self-delimiting binary encoding of the value to b.
// The encoding is order-preserving for values of the same kind (big-endian
// with the int64 sign bit flipped), so lexicographic key order matches
// numeric order and sorted output reads naturally.
func (v Value) appendKey(b []byte) []byte {
	b = append(b, byte(v.kind))
	switch v.kind {
	case KindString:
		b = binary.AppendUvarint(b, uint64(len(v.str)))
		b = append(b, v.str...)
	case KindInt:
		b = binary.BigEndian.AppendUint64(b, v.num^(1<<63))
	default:
		b = binary.BigEndian.AppendUint64(b, v.num)
	}
	return b
}

// Tuple is an ordered list of values laid out according to some Schema.
type Tuple []Value

// AppendKey appends the compact binary key encoding of the tuple to b and
// returns the extended slice. Callers on hot paths keep a scratch buffer and
// pass buf[:0], so steady-state key construction does zero allocations; the
// resulting bytes are valid as a map probe via string(b) (which the compiler
// compiles to an allocation-free lookup).
func (t Tuple) AppendKey(b []byte) []byte {
	for _, v := range t {
		b = v.appendKey(b)
	}
	return b
}

// Key returns a compact binary encoding of the tuple, usable as a map key.
// Two tuples have equal keys iff they are equal value-wise.
func (t Tuple) Key() string {
	if len(t) == 0 {
		return ""
	}
	return string(t.AppendKey(make([]byte, 0, 9*len(t))))
}

// Equal reports value-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the tuple that shares no backing storage.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Concat returns the concatenation of tuples.
func Concat(ts ...Tuple) Tuple {
	n := 0
	for _, t := range ts {
		n += len(t)
	}
	out := make(Tuple, 0, n)
	for _, t := range ts {
		out = append(out, t...)
	}
	return out
}

// String renders the tuple for debugging.
func (t Tuple) String() string {
	if len(t) == 0 {
		return "()"
	}
	s := "("
	for i, v := range t {
		if i > 0 {
			s += ","
		}
		s += v.String()
	}
	return s + ")"
}

// Ints builds a tuple of integer values, a convenience for tests and
// generators.
func Ints(vs ...int64) Tuple {
	t := make(Tuple, len(vs))
	for i, v := range vs {
		t[i] = Int(v)
	}
	return t
}

// Floats builds a tuple of floating-point values.
func Floats(vs ...float64) Tuple {
	t := make(Tuple, len(vs))
	for i, v := range vs {
		t[i] = Float(v)
	}
	return t
}
