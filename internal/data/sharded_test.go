package data

import (
	"math/rand"
	"testing"

	"fivm/internal/ring"
)

// TestShardedRouting checks that routing is deterministic, covers every
// tuple exactly once, and keeps equal shard-column values together.
func TestShardedRouting(t *testing.T) {
	schema := NewSchema("A", "B")
	s, err := NewSharded[int64](ring.Int{}, schema, "A", 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	total := NewRelation[int64](ring.Int{}, schema)
	for i := 0; i < 200; i++ {
		tup := Ints(int64(rng.Intn(20)), int64(rng.Intn(20)))
		s.Merge(tup, 1)
		total.Merge(tup, 1)
	}
	if s.Len() != total.Len() {
		t.Fatalf("sharded holds %d keys, want %d", s.Len(), total.Len())
	}
	// Every key is in exactly the shard its A-value hashes to, and the
	// shards' union equals the unsharded relation.
	merged := NewRelation[int64](ring.Int{}, schema)
	for i := 0; i < s.N(); i++ {
		s.Shard(i).Iterate(func(tup Tuple, p int64) bool {
			if got := s.ShardOf(tup); got != i {
				t.Fatalf("tuple %v in shard %d, routes to %d", tup, i, got)
			}
			merged.Merge(tup, p)
			return true
		})
	}
	if !merged.Equal(total, func(a, b int64) bool { return a == b }) {
		t.Fatal("shard union diverges from unsharded relation")
	}
}

// TestSplitMatchesSharded checks Split against incremental routing.
func TestSplitMatchesSharded(t *testing.T) {
	schema := NewSchema("A", "B")
	r := NewRelation[int64](ring.Int{}, schema)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		r.Merge(Ints(int64(rng.Intn(10)), int64(rng.Intn(10))), int64(1+rng.Intn(3)))
	}
	shards, err := Split(r, "A", 3)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, sh := range shards {
		n += sh.Len()
	}
	if n != r.Len() {
		t.Fatalf("split holds %d keys, want %d", n, r.Len())
	}
	if _, err := Split(r, "missing", 3); err == nil {
		t.Fatal("Split on a missing column should fail")
	}
}

// TestValueHashStability pins a few hash routings so shard assignment stays
// stable across refactors (a changed hash silently reshuffles partitions).
func TestValueHashStability(t *testing.T) {
	if Int(7).Hash() != Int(7).Hash() {
		t.Fatal("hash not deterministic")
	}
	if Int(7).Hash() == Int(8).Hash() {
		t.Fatal("suspicious collision between adjacent ints")
	}
	if String("x").Hash() == String("y").Hash() {
		t.Fatal("suspicious collision between short strings")
	}
	// Int and Float hashes differ even for equal numeric values: kinds are
	// part of the key encoding, so they must partition apart too.
	if Int(1).Hash() == Float(1).Hash() {
		t.Fatal("Int and Float hash alike")
	}
}

// TestOwnedAccumulationIsolation checks the ownership guarantees the
// in-place accumulation path must provide: stored payloads never alias the
// caller's values, and clones never alias the original.
func TestOwnedAccumulationIsolation(t *testing.T) {
	cf := ring.Cofactor{}
	schema := NewSchema("A")
	r := NewRelation[ring.Triple](cf, schema)

	// The caller's payload must not be mutated by later merges onto the
	// same key.
	mine := ring.LiftValue(0, 2)
	r.Merge(Ints(1), mine)
	r.Merge(Ints(1), ring.LiftValue(0, 3))
	if mine.S[0] != 2 || mine.Q[0] != 4 {
		t.Fatalf("caller payload mutated: %+v", mine)
	}

	// A clone must not see subsequent merges into the original (and vice
	// versa).
	c := r.Clone()
	before, _ := c.Get(Ints(1))
	beforeS := before.S[0]
	r.Merge(Ints(1), ring.LiftValue(0, 10))
	after, _ := c.Get(Ints(1))
	if after.S[0] != beforeS {
		t.Fatalf("clone payload mutated through original: %v -> %v", beforeS, after.S[0])
	}
}

// TestMergeMulProjected checks the fused multiply-merge against the
// two-step equivalent, for both a mutable and an immutable-only ring path.
func TestMergeMulProjected(t *testing.T) {
	cf := ring.Cofactor{}
	from := NewSchema("A", "B")
	to := NewSchema("A")
	proj := MustProjector(from, to)

	fused := NewRelation[ring.Triple](cf, to)
	plain := NewRelation[ring.Triple](cf, to)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		tup := Ints(int64(rng.Intn(4)), int64(rng.Intn(4)))
		a := ring.LiftValue(0, float64(rng.Intn(5)-2))
		b := ring.LiftValue(1, float64(rng.Intn(5)-2))
		fused.MergeMulProjected(proj, tup, &a, &b)
		plain.MergeProjected(proj, tup, cf.Mul(a, b))
	}
	eq := func(x, y ring.Triple) bool {
		if x.Count() != y.Count() {
			return false
		}
		for j := 0; j < 2; j++ {
			if x.SumOf(j) != y.SumOf(j) {
				return false
			}
			for k := 0; k < 2; k++ {
				if x.QuadOf(j, k) != y.QuadOf(j, k) {
					return false
				}
			}
		}
		return true
	}
	if !fused.Equal(plain, eq) {
		t.Fatalf("fused %v != plain %v", fused, plain)
	}
}

// BenchmarkRelationMergeTripleSteady measures payload accumulation onto an
// existing key for the cofactor ring — the operation the in-place path
// makes allocation-free.
func BenchmarkRelationMergeTripleSteady(b *testing.B) {
	cf := ring.Cofactor{}
	r := NewRelation[ring.Triple](cf, NewSchema("A"))
	tup := Ints(1)
	d := cf.Mul(ring.LiftValue(0, 2), cf.Mul(ring.LiftValue(1, 3), ring.LiftValue(2, 4)))
	r.Merge(tup, d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Merge(tup, d)
	}
}
