package data

// MSD byte-string radix sort for the snapshot publish/reduce path. The key
// codec (Tuple.AppendKey) is order-preserving per kind and self-delimiting,
// so byte-lexicographic order on encoded keys IS tuple order — exactly what
// a most-significant-digit radix sort distributes on, one byte per level,
// with no comparator calls at all.
//
// The implementation is American-flag style: one counting pass per level,
// then an in-place cycle permutation that swaps each element directly into
// its bucket region, then recursion into the byte buckets. Two refinements
// keep it allocation-free and robust on adversarial keys:
//
//   - Counts live in per-level stack arrays ([257]int, ~2 KiB) instead of a
//     heap scratch struct, and the permutation is in place, so sorting needs
//     no auxiliary storage at any size. Long shared prefixes do not deepen
//     the recursion either: a level whose keys all continue with the same
//     byte advances the depth iteratively.
//   - Runs at or below radixSortCutoff fall back to insertion sort on the
//     key suffixes (every key in a bucket shares the first depth bytes), the
//     usual MSD base case where distribution overhead exceeds comparison.
//
// Bucket 0 holds the keys exhausted at the current depth (len == depth);
// they sort before every continuing key, matching byte-string order where a
// prefix precedes its extensions. The dedup variant exploits that exhausted
// keys within one bucket are all equal: the dirty-key path drops duplicates
// during the distribution passes instead of a separate sort+compact loop.

// radixSortCutoff is the run length at or below which insertion sort beats
// another distribution pass.
const radixSortCutoff = 32

// RadixSortKeys sorts encoded tuple keys in place into byte-lexicographic
// order, equivalent to sort.Strings but comparator-free and allocation-free.
func RadixSortKeys(keys []string) {
	msdKeys(keys, 0, false)
}

// radixSortKeysDedup sorts keys in place and drops duplicates during the
// distribution passes, returning the sorted unique prefix of the slice.
func radixSortKeysDedup(keys []string) []string {
	return keys[:msdKeys(keys, 0, true)]
}

// keyBucket maps a key to its distribution bucket at the given depth:
// 0 for keys exhausted at depth, 1+b for keys continuing with byte b.
func keyBucket(k string, depth int) int {
	if len(k) == depth {
		return 0
	}
	return 1 + int(k[depth])
}

// msdKeys sorts keys[.] by their suffixes from depth and returns the number
// of keys kept (all of them, or the unique count when dedup is set, in which
// case the kept keys are compacted to the front).
func msdKeys(keys []string, depth int, dedup bool) int {
	for {
		n := len(keys)
		if n < 2 {
			return n
		}
		if n <= radixSortCutoff {
			return insertionKeys(keys, depth, dedup)
		}
		var counts [257]int
		for _, k := range keys {
			counts[keyBucket(k, depth)]++
		}
		if counts[0] == n {
			// Every key ends here, so all n are equal.
			if dedup {
				return 1
			}
			return n
		}
		if counts[0] == 0 {
			// Shared-prefix fast path: all keys continue with one byte —
			// advance the depth without recursing (or permuting).
			single := false
			for b := 1; b <= 256; b++ {
				if counts[b] == n {
					single = true
					break
				}
				if counts[b] != 0 {
					break
				}
			}
			if single {
				depth++
				continue
			}
		}
		// American-flag permutation: pos tracks each bucket's next unplaced
		// slot, ends its region boundary; the element at pos[b] is either
		// already home (advance) or swapped into its own bucket's next slot,
		// so every swap places at least one element — O(n) swaps total.
		var pos, ends [257]int
		at := 0
		for b := 0; b <= 256; b++ {
			pos[b] = at
			at += counts[b]
			ends[b] = at
		}
		starts := pos
		for b := 0; b <= 256; b++ {
			for pos[b] < ends[b] {
				k := keys[pos[b]]
				bb := keyBucket(k, depth)
				if bb == b {
					pos[b]++
					continue
				}
				keys[pos[b]] = keys[pos[bb]]
				keys[pos[bb]] = k
				pos[bb]++
			}
		}
		if !dedup {
			for b := 1; b <= 256; b++ {
				if ends[b]-starts[b] > 1 {
					msdKeys(keys[starts[b]:ends[b]], depth+1, false)
				}
			}
			return n
		}
		// Dedup compaction: the exhausted bucket's keys are all equal (one
		// survives), each byte bucket dedups recursively and its survivors
		// shift left over the dropped slots.
		w := counts[0]
		if w > 1 {
			w = 1
		}
		for b := 1; b <= 256; b++ {
			sub := keys[starts[b]:ends[b]]
			m := msdKeys(sub, depth+1, true)
			copy(keys[w:w+m], sub[:m])
			w += m
		}
		return w
	}
}

// insertionKeys is the insertion-sort base case on key suffixes from depth;
// with dedup set, an element equal to one already placed is dropped during
// its insertion scan. Returns the number of keys kept (compacted in front).
func insertionKeys(keys []string, depth int, dedup bool) int {
	w := 1
	for i := 1; i < len(keys); i++ {
		k := keys[i]
		ks := k[depth:]
		j := w
		for j > 0 && keys[j-1][depth:] > ks {
			j--
		}
		if dedup && j > 0 && keys[j-1][depth:] == ks {
			continue
		}
		copy(keys[j+1:w+1], keys[j:w])
		keys[j] = k
		w++
	}
	if !dedup {
		return len(keys)
	}
	return w
}

// RadixSortKeyedBytes sorts keys in place into byte-lexicographic order,
// permuting vals in tandem so vals[i] still belongs to keys[i] afterwards.
// The fused delta-application path uses it to bring equal output keys
// back-to-back so a whole run accumulates into one owned payload before a
// single merge. Same American-flag structure as RadixSortKeys; the tandem
// moves double the swap cost, which the comparator-free distribution still
// amortizes well past the insertion cutoff.
func RadixSortKeyedBytes[T any](keys [][]byte, vals []T) {
	if len(keys) != len(vals) {
		panic("data: RadixSortKeyedBytes: length mismatch")
	}
	msdKeyed(keys, vals, 0)
}

// keyBucketBytes is keyBucket for []byte keys.
func keyBucketBytes(k []byte, depth int) int {
	if len(k) == depth {
		return 0
	}
	return 1 + int(k[depth])
}

func msdKeyed[T any](keys [][]byte, vals []T, depth int) {
	for {
		n := len(keys)
		if n < 2 {
			return
		}
		if n <= radixSortCutoff {
			insertionKeyed(keys, vals, depth)
			return
		}
		var counts [257]int
		for _, k := range keys {
			counts[keyBucketBytes(k, depth)]++
		}
		if counts[0] == n {
			return // all keys exhausted here, hence equal
		}
		if counts[0] == 0 {
			single := false
			for b := 1; b <= 256; b++ {
				if counts[b] == n {
					single = true
					break
				}
				if counts[b] != 0 {
					break
				}
			}
			if single {
				depth++
				continue
			}
		}
		var pos, ends [257]int
		at := 0
		for b := 0; b <= 256; b++ {
			pos[b] = at
			at += counts[b]
			ends[b] = at
		}
		starts := pos
		for b := 0; b <= 256; b++ {
			for pos[b] < ends[b] {
				k := keys[pos[b]]
				bb := keyBucketBytes(k, depth)
				if bb == b {
					pos[b]++
					continue
				}
				keys[pos[b]] = keys[pos[bb]]
				keys[pos[bb]] = k
				vals[pos[b]], vals[pos[bb]] = vals[pos[bb]], vals[pos[b]]
				pos[bb]++
			}
		}
		for b := 1; b <= 256; b++ {
			if ends[b]-starts[b] > 1 {
				msdKeyed(keys[starts[b]:ends[b]], vals[starts[b]:ends[b]], depth+1)
			}
		}
		return
	}
}

func insertionKeyed[T any](keys [][]byte, vals []T, depth int) {
	for i := 1; i < len(keys); i++ {
		k := keys[i]
		v := vals[i]
		ks := k[depth:]
		j := i
		for j > 0 && string(keys[j-1][depth:]) > string(ks) {
			keys[j] = keys[j-1]
			vals[j] = vals[j-1]
			j--
		}
		keys[j] = k
		vals[j] = v
	}
}

// radixSortEntries sorts an entry run in place by encoded key, the same
// order RadixSortKeys produces. Entries move by value, so the sort is
// allocation-free and leaves the run ready for snapshot chunking.
func radixSortEntries[P any](es []Entry[P]) {
	msdEntries(es, 0)
}

func msdEntries[P any](es []Entry[P], depth int) {
	for {
		n := len(es)
		if n < 2 {
			return
		}
		if n <= radixSortCutoff {
			insertionEntries(es, depth)
			return
		}
		var counts [257]int
		for i := range es {
			counts[keyBucket(es[i].key, depth)]++
		}
		if counts[0] == n {
			return // relation keys are unique, but equal runs are sorted anyway
		}
		if counts[0] == 0 {
			single := false
			for b := 1; b <= 256; b++ {
				if counts[b] == n {
					single = true
					break
				}
				if counts[b] != 0 {
					break
				}
			}
			if single {
				depth++
				continue
			}
		}
		var pos, ends [257]int
		at := 0
		for b := 0; b <= 256; b++ {
			pos[b] = at
			at += counts[b]
			ends[b] = at
		}
		starts := pos
		for b := 0; b <= 256; b++ {
			for pos[b] < ends[b] {
				bb := keyBucket(es[pos[b]].key, depth)
				if bb == b {
					pos[b]++
					continue
				}
				es[pos[b]], es[pos[bb]] = es[pos[bb]], es[pos[b]]
				pos[bb]++
			}
		}
		for b := 1; b <= 256; b++ {
			if ends[b]-starts[b] > 1 {
				msdEntries(es[starts[b]:ends[b]], depth+1)
			}
		}
		return
	}
}

func insertionEntries[P any](es []Entry[P], depth int) {
	for i := 1; i < len(es); i++ {
		e := es[i]
		ks := e.key[depth:]
		j := i
		for j > 0 && es[j-1].key[depth:] > ks {
			es[j] = es[j-1]
			j--
		}
		es[j] = e
	}
}
