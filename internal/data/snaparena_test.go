package data

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"fivm/internal/ring"
)

// churnAndPublish applies n random steady-state merges and publishes a
// snapshot, returning it.
func churnAndPublish(rng *rand.Rand, r *Relation[int64], n int) *RelationSnapshot[int64] {
	for i := 0; i < n; i++ {
		r.Merge(Ints(int64(rng.Intn(600)), int64(rng.Intn(7))), int64(rng.Intn(9)-4))
	}
	return r.Snapshot()
}

// TestArenaRecyclingPreservesPinnedSnapshots churns a relation through many
// epochs while most snapshots are dropped and collected (running the arena's
// release cleanups), with a few pinned: the pinned epochs must keep serving
// their exact published contents even as the blocks around them are wiped
// and reused, and the freshest snapshot must always equal the relation.
func TestArenaRecyclingPreservesPinnedSnapshots(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	r := NewRelation[int64](ring.Int{}, NewSchema("A", "B"))

	type pin struct {
		snap *RelationSnapshot[int64]
		fp   string
	}
	var pins []pin
	for round := 0; round < 120; round++ {
		s := churnAndPublish(rng, r, 80)
		if round%17 == 0 {
			pins = append(pins, pin{snap: s, fp: snapFingerprint(s)})
		}
		if round%25 == 0 {
			runtime.GC() // collect dropped snapshots, run arena cleanups
		}
		if got, want := snapFingerprint(s), relFingerprint(r); got != want {
			t.Fatalf("round %d: fresh snapshot diverges from relation", round)
		}
	}
	runtime.GC()
	for i, p := range pins {
		if got := snapFingerprint(p.snap); got != p.fp {
			t.Fatalf("pin %d mutated after arena recycling:\n got %s\nwant %s", i, got, p.fp)
		}
	}
}

// TestArenaRecyclesBlocks checks the arena actually completes its cycle:
// once dropped snapshots are collected, retired blocks land on the freelist
// for reuse instead of going back to the allocator. The release path runs on
// GC cleanup goroutines, so the test churns and polls under a deadline.
func TestArenaRecyclesBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	r := NewRelation[int64](ring.Int{}, NewSchema("A", "B"))
	churnAndPublish(rng, r, 3000) // build a base and enable sealing

	deadline := time.Now().Add(10 * time.Second)
	for {
		// Keep publishing so filled blocks retire (their writer reference is
		// only dropped at the next publish); drop every snapshot immediately.
		for i := 0; i < 40; i++ {
			churnAndPublish(rng, r, 120)
		}
		runtime.GC()
		time.Sleep(5 * time.Millisecond) // let cleanup goroutines run
		r.snap.arena.mu.Lock()
		free := len(r.snap.arena.free)
		r.snap.arena.mu.Unlock()
		if free > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no arena block was ever recycled onto the freelist")
		}
	}
}

// TestArenaOversizeRunsBypassBlocks pins the fallback contract: runs larger
// than a block are plain allocations with no block attribution, and still
// read back correctly.
func TestArenaOversizeRunsBypassBlocks(t *testing.T) {
	var a snapArena[int64]
	run, blk := a.alloc(arenaBlockCap + 1)
	if blk != nil {
		t.Fatal("oversize run attributed to a block")
	}
	if cap(run) != arenaBlockCap+1 || len(run) != 0 {
		t.Fatalf("oversize run cap %d len %d", cap(run), len(run))
	}
	run2, blk2 := a.alloc(16)
	if blk2 == nil || len(run2) != 0 {
		t.Fatal("small run not block-allocated")
	}
	a.trim(run2[:4], blk2)
	if got := len(blk2.buf); got != 4 {
		t.Fatalf("trim left block at %d pointers, want 4", got)
	}
}
