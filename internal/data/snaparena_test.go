package data

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"fivm/internal/ring"
)

// churnAndPublish applies n random steady-state merges and publishes a
// snapshot, returning it.
func churnAndPublish(rng *rand.Rand, r *Relation[int64], n int) *RelationSnapshot[int64] {
	for i := 0; i < n; i++ {
		r.Merge(Ints(int64(rng.Intn(600)), int64(rng.Intn(7))), int64(rng.Intn(9)-4))
	}
	return r.Snapshot()
}

// TestArenaRecyclingPreservesPinnedSnapshots churns a relation through many
// epochs while most snapshots are dropped and collected (so the publish-path
// sweep releases their blocks), with a few pinned: the pinned epochs must
// keep serving their exact published contents even as the blocks around them
// are wiped and reused, and the freshest snapshot must always equal the
// relation.
func TestArenaRecyclingPreservesPinnedSnapshots(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	r := NewRelation[int64](ring.Int{}, NewSchema("A", "B"))

	type pin struct {
		snap *RelationSnapshot[int64]
		fp   string
	}
	var pins []pin
	for round := 0; round < 120; round++ {
		s := churnAndPublish(rng, r, 80)
		if round%17 == 0 {
			pins = append(pins, pin{snap: s, fp: snapFingerprint(s)})
		}
		if round%25 == 0 {
			runtime.GC() // let dropped snapshots' backstop cleanups fire
		}
		if got, want := snapFingerprint(s), relFingerprint(r); got != want {
			t.Fatalf("round %d: fresh snapshot diverges from relation", round)
		}
	}
	runtime.GC()
	for i, p := range pins {
		if got := snapFingerprint(p.snap); got != p.fp {
			t.Fatalf("pin %d mutated after arena recycling:\n got %s\nwant %s", i, got, p.fp)
		}
	}
}

// TestArenaRecyclesReleased pins the deterministic reclamation contract:
// when every published snapshot is Released, generations die and their
// blocks return to the freelists without any garbage collection at all.
func TestArenaRecyclesReleased(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	r := NewRelation[int64](ring.Int{}, NewSchema("A", "B"))
	for i := 0; i < 3000; i++ {
		r.Merge(Ints(int64(rng.Intn(600)), int64(rng.Intn(7))), int64(rng.Intn(9)-4))
	}
	r.Snapshot().Release()
	// Publish far more than one refresh lap (chunk count) plus one
	// generation span, so carried-over chunks rotate off their original
	// blocks and those blocks' generations all die explicitly.
	for i := 0; i < 2000; i++ {
		r.Merge(Ints(int64(rng.Intn(600)), int64(rng.Intn(7))), int64(rng.Intn(9)-4))
		r.Snapshot().Release()
	}
	a := &r.snap.arena
	if len(a.runs.free) == 0 {
		t.Error("no run block recycled despite every snapshot being released")
	}
	if len(a.dirs.free) == 0 {
		t.Error("no directory block recycled despite every snapshot being released")
	}
	if len(a.freeSets) == 0 {
		t.Error("no generation pin set recycled despite every snapshot being released")
	}
}

// TestArenaConcurrentRelease releases snapshots from reader goroutines while
// the writer keeps publishing — the cross-goroutine path of the reference
// counts and the dead list (meaningful mainly under -race). Every snapshot
// is verified against its fingerprint before release; pinned contents must
// survive the concurrent churn.
func TestArenaConcurrentRelease(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	r := NewRelation[int64](ring.Int{}, NewSchema("A", "B"))
	snaps := make(chan *RelationSnapshot[int64], 64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range snaps {
				_ = snapFingerprint(s)
				s.Release()
			}
		}()
	}
	for round := 0; round < 400; round++ {
		s := churnAndPublish(rng, r, 40)
		if got, want := snapFingerprint(s), relFingerprint(r); got != want {
			t.Errorf("round %d: fresh snapshot diverges from relation", round)
		}
		snaps <- s
	}
	close(snaps)
	wg.Wait()
}

// TestArenaRecyclesBlocks checks the GC backstop completes the cycle for
// snapshots that are dropped without Release: once the garbage collector
// proves them dead, their generations' cleanups fire and the next publish
// returns the blocks to the freelist for reuse. GC completion timing is not
// synchronous, so the test churns and polls under a deadline.
func TestArenaRecyclesBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	r := NewRelation[int64](ring.Int{}, NewSchema("A", "B"))
	churnAndPublish(rng, r, 3000) // build a base and enable dirty tracking

	deadline := time.Now().Add(10 * time.Second)
	for {
		// Keep publishing so filled blocks retire and later sweeps run; every
		// snapshot is dropped immediately.
		for i := 0; i < 40; i++ {
			churnAndPublish(rng, r, 120)
		}
		runtime.GC()
		churnAndPublish(rng, r, 1) // one more publish to sweep after the GC
		if len(r.snap.arena.runs.free) > 0 || len(r.snap.arena.freeSets) > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no arena block was ever recycled onto the freelist")
		}
	}
}

// TestArenaOversizeRunsBypassBlocks pins the fallback contract: runs larger
// than a block are plain allocations with no block attribution, and still
// read back correctly.
func TestArenaOversizeRunsBypassBlocks(t *testing.T) {
	var a snapArena[int64]
	a.init()
	run, blk := a.runs.alloc(runBlockCap + 1)
	if blk != nil {
		t.Fatal("oversize run attributed to a block")
	}
	if cap(run) != runBlockCap+1 || len(run) != 0 {
		t.Fatalf("oversize run cap %d len %d", cap(run), len(run))
	}
	run2, blk2 := a.runs.alloc(16)
	if blk2 == nil || len(run2) != 0 {
		t.Fatal("small run not block-allocated")
	}
	a.runs.trim(run2[:4], blk2)
	if got := len(blk2.buf); got != 4 {
		t.Fatalf("trim left block at %d entries, want 4", got)
	}
}

// TestArenaDirectoryBlocksRecycle covers the directory arena the same way:
// chunk directories are arena runs too, pinned by the snapshot's dirBlk and
// released by the sweep.
func TestArenaDirectoryBlocksRecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	r := NewRelation[int64](ring.Int{}, NewSchema("A", "B"))
	s := churnAndPublish(rng, r, 3000)
	if s.dirBlk == nil {
		t.Fatal("published directory not arena-allocated")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		for i := 0; i < 40; i++ {
			churnAndPublish(rng, r, 120)
		}
		runtime.GC()
		churnAndPublish(rng, r, 1)
		if len(r.snap.arena.dirs.free) > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no directory block was ever recycled onto the freelist")
		}
	}
}
