package data

import (
	"hash/maphash"
	"math/bits"
)

// This file implements the open-addressing hash table backing Relation and
// Index: a swiss-table-style, group-probed map specialized for the pointer
// entry layout the storage hot path already uses. Compared to a built-in
// map[string]*Entry[P] it stores only the entry pointer per slot (the key
// string and its hash live inside the entry, where Get/Merge need them
// anyway), probes eight slots per control-word comparison, re-inserts by the
// entry's cached hash on growth (no key re-hashing), and gives Relation
// exact control over Reserve, Clear-with-recycling, and iteration.
//
// Layout: slots are grouped eight at a time. Each group owns one 64-bit
// control word holding one metadata byte per slot:
//
//	empty    0b1000_0000 — never stored an entry (or reclaimed, see del)
//	deleted  0b1111_1110 — tombstone: entry removed, probe chains continue
//	full     0b0hhh_hhhh — slot holds an entry; low 7 bits of its key hash
//
// A lookup selects a start group from the upper hash bits, then compares the
// whole group against the low 7 hash bits in a handful of word operations;
// candidate slots are confirmed by one key comparison. Groups are probed in
// a triangular sequence (g, g+1, g+3, g+6, ... mod groups), which visits
// every group; the probe stops at the first group containing an empty slot,
// since an insert would have used it.

// tableSeed is the process-wide hash seed. One shared seed keeps an entry's
// cached key hash valid across every table it may move through (relation
// clones, negations, recycled scratch entries).
var tableSeed = maphash.MakeSeed()

// hashBytes and hashString hash an encoded tuple key. They agree on equal
// byte content, so a key encoded into a scratch buffer probes the same slots
// as its interned string form.
func hashBytes(b []byte) uint64  { return maphash.Bytes(tableSeed, b) }
func hashString(s string) uint64 { return maphash.String(tableSeed, s) }

const (
	groupSlots  = 8
	ctrlEmpty   = 0x80
	ctrlDeleted = 0xFE

	emptyWord = 0x8080808080808080
	lsbWord   = 0x0101010101010101
	msbWord   = 0x8080808080808080

	// tableMaxLoad is the numerator of the 7/8 load factor: a table with g
	// groups rehashes once live+deleted slots reach 7g.
	tableMaxLoadNum = 7
)

// h1 selects the start group (upper bits), h2 the 7-bit control byte.
func h1(h uint64) uint64 { return h >> 7 }
func h2(h uint64) uint8  { return uint8(h & 0x7f) }

// bitset marks matching slots of one group: the high bit of byte i is set
// when slot i matched.
type bitset uint64

func (b bitset) first() int   { return bits.TrailingZeros64(uint64(b)) >> 3 }
func (b bitset) next() bitset { return b & (b - 1) }

// matchByte reports the slots of control word w whose byte equals v, which
// must have its high bit clear (true for every h2). The zero-byte trick can
// produce false positives only on full slots (the caller confirms with a key
// comparison), never on empty or deleted ones: those have the high bit set,
// which the &^v term clears.
func matchByte(w uint64, v uint8) bitset {
	x := w ^ (lsbWord * uint64(v))
	return bitset(((x - lsbWord) &^ x) & msbWord)
}

// matchEmpty reports the empty slots of w, exactly: empty (0x80) is the only
// control byte with bit 7 set and bit 6 clear, and the shift moves bit 6 of
// each byte onto its own bit 7 without crossing byte boundaries.
func matchEmpty(w uint64) bitset { return bitset(w &^ (w << 1) & msbWord) }

// matchFree reports slots that can take an insert: empty or deleted, the
// bytes with bit 7 set.
func matchFree(w uint64) bitset { return bitset(w & msbWord) }

// entryTable is the table backing a Relation's primary storage and an
// Index's bucket directory. The zero value is an empty table ready for use.
type entryTable[P any] struct {
	ctrl  []uint64    // one control word per group; len is a power of two
	slots []*Entry[P] // len(ctrl) * groupSlots entries
	live  int         // stored entries
	dead  int         // tombstones
}

func (t *entryTable[P]) len() int { return t.live }

// getBytes returns the entry stored under a key encoded in a caller-owned
// scratch buffer, or nil. h must be hashBytes(key). It never allocates.
func (t *entryTable[P]) getBytes(h uint64, key []byte) *Entry[P] {
	if t.live == 0 {
		return nil
	}
	mask := uint64(len(t.ctrl) - 1)
	g := h1(h) & mask
	hb := h2(h)
	for step := uint64(1); ; step++ {
		w := t.ctrl[g]
		for m := matchByte(w, hb); m != 0; m = m.next() {
			if e := t.slots[int(g)*groupSlots+m.first()]; e.key == string(key) {
				return e
			}
		}
		if matchEmpty(w) != 0 {
			return nil
		}
		g = (g + step) & mask
	}
}

// getString is getBytes for an interned key string.
func (t *entryTable[P]) getString(h uint64, key string) *Entry[P] {
	if t.live == 0 {
		return nil
	}
	mask := uint64(len(t.ctrl) - 1)
	g := h1(h) & mask
	hb := h2(h)
	for step := uint64(1); ; step++ {
		w := t.ctrl[g]
		for m := matchByte(w, hb); m != 0; m = m.next() {
			if e := t.slots[int(g)*groupSlots+m.first()]; e.key == key {
				return e
			}
		}
		if matchEmpty(w) != 0 {
			return nil
		}
		g = (g + step) & mask
	}
}

// insert stores e, whose hash field must be set and whose key must not be
// present (every caller probes first).
func (t *entryTable[P]) insert(e *Entry[P]) {
	if t.live+t.dead >= tableMaxLoadNum*len(t.ctrl) {
		t.rehash()
	}
	t.insertFresh(e)
	t.live++
}

// insertFresh places e into the first free slot of its probe sequence. The
// table must have free capacity.
func (t *entryTable[P]) insertFresh(e *Entry[P]) {
	mask := uint64(len(t.ctrl) - 1)
	g := h1(e.hash) & mask
	for step := uint64(1); ; step++ {
		if m := matchFree(t.ctrl[g]); m != 0 {
			i := m.first()
			if uint8(t.ctrl[g]>>(i*8)) == ctrlDeleted {
				t.dead--
			}
			t.setCtrl(g, i, h2(e.hash))
			t.slots[int(g)*groupSlots+i] = e
			return
		}
		g = (g + step) & mask
	}
}

func (t *entryTable[P]) setCtrl(g uint64, i int, v uint8) {
	shift := uint(i) * 8
	t.ctrl[g] = t.ctrl[g]&^(uint64(0xff)<<shift) | uint64(v)<<shift
}

// del removes e, which must be stored. The slot becomes empty when its group
// still has an empty slot (no probe chain can pass the group, so nothing is
// cut short) and a tombstone otherwise.
func (t *entryTable[P]) del(e *Entry[P]) {
	mask := uint64(len(t.ctrl) - 1)
	g := h1(e.hash) & mask
	hb := h2(e.hash)
	for step := uint64(1); ; step++ {
		w := t.ctrl[g]
		for m := matchByte(w, hb); m != 0; m = m.next() {
			i := m.first()
			slot := int(g)*groupSlots + i
			if t.slots[slot] != e {
				continue
			}
			t.slots[slot] = nil
			t.live--
			if matchEmpty(w) != 0 {
				t.setCtrl(g, i, ctrlEmpty)
			} else {
				t.setCtrl(g, i, ctrlDeleted)
				t.dead++
			}
			return
		}
		if matchEmpty(w) != 0 {
			return // not stored; tolerated for robustness
		}
		g = (g + step) & mask
	}
}

// rehash grows (or, when mostly tombstones, compacts in place at the same
// size) and re-inserts every live entry by its cached hash — no key bytes
// are touched.
func (t *entryTable[P]) rehash() {
	groups := len(t.ctrl)
	switch {
	case groups == 0:
		t.alloc(1)
		return
	case t.live >= tableMaxLoadNum*groups/2:
		groups *= 2
	}
	old := t.slots
	t.alloc(groups)
	for _, e := range old {
		if e != nil {
			t.insertFresh(e)
		}
	}
}

// alloc replaces the backing arrays with empty ones of the given group count
// (a power of two).
func (t *entryTable[P]) alloc(groups int) {
	t.ctrl = make([]uint64, groups)
	for i := range t.ctrl {
		t.ctrl[i] = emptyWord
	}
	t.slots = make([]*Entry[P], groups*groupSlots)
	t.dead = 0
}

// reserve grows the table to hold at least n entries without rehashing
// again. Existing entries are re-inserted by cached hash.
func (t *entryTable[P]) reserve(n int) {
	need := 1
	for need*groupSlots*tableMaxLoadNum/8 < n {
		need *= 2
	}
	if need <= len(t.ctrl) {
		return
	}
	old := t.slots
	t.alloc(need)
	for _, e := range old {
		if e != nil {
			t.insertFresh(e)
		}
	}
}

// clear removes every entry, keeping capacity. O(capacity), like clearing a
// built-in map.
func (t *entryTable[P]) clear() {
	for i := range t.ctrl {
		t.ctrl[i] = emptyWord
	}
	clear(t.slots)
	t.live = 0
	t.dead = 0
}

// all calls f for each stored entry until f returns false. Iteration order
// is unspecified. Deleting entries (including the current one) during
// iteration is safe and exact; inserting during iteration is not supported,
// as growth would move entries under the iterator.
func (t *entryTable[P]) all(f func(e *Entry[P]) bool) {
	for _, e := range t.slots {
		if e != nil && !f(e) {
			return
		}
	}
}
