package data

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Snapshot arena: steady-state publishing produces one entry run per dirty
// chunk plus one chunk directory per epoch, and under a continuous update
// stream those die a few epochs later when the snapshots referencing them
// are dropped — a textbook arena workload. The arena bump-allocates both
// (entry runs and directories are separate typed arenas of the same shape)
// out of fixed-size blocks and recycles a block onto a freelist once no
// snapshot references it, so steady-state Snapshot() publishing hands the
// garbage collector almost nothing but the snapshot struct itself.
//
// Reclamation is reference-counted at block granularity, because snapshot
// lifetime is reader-controlled: a pinned reader may hold an old snapshot
// arbitrarily long (see serve.Registry). Block references are taken per
// publish GENERATION — a group of up to genSpan consecutive publishes — not
// per snapshot: each block referenced by any of the generation's snapshots
// holds one reference for the whole generation, and the generation's pin
// set goes to a lock-guarded dead list (drained by the writer at each
// publish) once every snapshot of the generation is dead. Generations
// amortize the per-publish liveness bookkeeping to 1/genSpan of its cost.
//
// A generation's death is detected two ways, and the distinction is what
// makes the arena actually recycle:
//
//   - Explicitly: every snapshot carries a reference count, Release drops a
//     reference, and the last Release of the generation's last snapshot
//     reports the generation dead immediately. The publishing relation
//     itself holds (and releases, at the next publish) a reference on its
//     previous snapshot, so a steady publish loop whose consumers Release
//     reclaims each generation within genSpan publishes — deterministically,
//     with no garbage collector involvement.
//   - As a GC backstop: when the generation closes, a runtime.AddCleanup on
//     a sentinel object (strongly referenced by every snapshot of the
//     generation) reports death once all unreleased snapshots are collected.
//     Snapshots that are never Released are therefore safe — merely slow to
//     reclaim, because cleanup latency is a full GC cycle, and dead-but-
//     unreclaimed blocks inflate the collector's heap target, which grows
//     the cycle further: a high-rate publish loop relying on the backstop
//     degenerates to plain allocation with extra steps. Release is the fast
//     path, not a nicety.
//
// The backstop is a GC cleanup, not a weak.Pointer poll, for a subtle
// reason beyond cost: polling weak pointers from the publish path resurrects
// the dead. weak.Pointer.Value conjures a strong reference, so a poll that
// lands inside a concurrent mark phase re-marks a dead generation live for
// that whole GC cycle — and a steady publish stream polls far more often
// than collections complete, so every mark phase overlaps a poll and no
// generation is EVER collected (observed as unbounded heap growth in
// exactly the benchmark this arena exists for). Cleanups run strictly after
// the GC has proven death, so they cannot resurrect anything.
//
// The trade: blocks are reclaimed at generation granularity, so one pinned
// reader holds the blocks its whole generation touched (bounded by genSpan
// epochs' worth of runs), and a relation that stops publishing retains its
// dead generations' blocks until it publishes again or becomes unreachable
// itself. Blocks and freelists are writer-goroutine-only (no atomics, no
// locks); the only cross-goroutine state is the snapshot reference counts
// and the dead list guarded by deadMu.
const (
	// runBlockCap is the entry-run block size in entries. Runs larger than a
	// block — wholesale rebuilds, huge dirty ranges — fall back to plain GC
	// allocations with a nil block. Sized so a block of small-payload entries
	// stays under the runtime's 32KB large-object threshold: large objects
	// are zeroed eagerly on allocation, and that memclr dominates the publish
	// profile whenever a fresh block is needed.
	runBlockCap = 512
	// dirBlockCap is the directory block size in chunk descriptors.
	dirBlockCap = 512
	// arenaFreeMax caps each freelist; blocks beyond it go back to the GC.
	// Generation death is explicit-release-driven (genSpan publishes per
	// generation, a handful of blocks each), so the freelist stays small in
	// steady state; the cap only matters when the GC backstop reclaims a
	// burst of generations leaked by callers that never Release.
	arenaFreeMax = 256
	// genSpan is the number of publishes grouped under one liveness sentinel.
	genSpan = 16
)

// bumpBlock is one fixed-capacity allocation block of a bumpArena. rc counts
// the publish generations whose snapshots have runs in buf, plus one for the
// writer while the block is still being filled; mark dedupes the per-publish
// reference bookkeeping. All fields are writer-goroutine owned.
type bumpBlock[T any] struct {
	rc    int
	mark  uint64
	buf   []T
	owner *bumpArena[T]
}

// release drops one reference; the last reference returns the block to the
// owner's freelist. The buffer is NOT wiped: a recycled block is overwritten
// as it is reused and a discarded one is garbage wholesale, so the only cost
// of keeping the stale contents is that a block parked on the freelist
// retains references to the keys and payloads of its dead runs until reuse —
// bounded by arenaFreeMax blocks of entries that in steady state mostly
// still live in the relation anyway.
func (b *bumpBlock[T]) release() {
	b.rc--
	if b.rc != 0 {
		return
	}
	b.buf = b.buf[:0]
	a := b.owner
	if len(a.free) < arenaFreeMax {
		a.free = append(a.free, b)
	}
}

// bumpArena bump-allocates fixed-capacity runs of T out of recycled blocks.
type bumpArena[T any] struct {
	blockCap int
	cur      *bumpBlock[T]
	// pending holds filled blocks whose writer reference is dropped at the
	// next publish — not before, because runs already handed out of them
	// belong to the snapshot still being built.
	pending []*bumpBlock[T]
	// lastBlk/lastStart remember the most recent allocation so trim can give
	// unused capacity back to the bump pointer.
	lastBlk   *bumpBlock[T]
	lastStart int
	free      []*bumpBlock[T]
}

// alloc returns an empty run with the given strict capacity bound and the
// block it lives in (nil for zero-size and oversize runs, which are plain
// allocations). Callers must never append beyond the capacity — that would
// silently move the run out of the block and break reference attribution.
func (a *bumpArena[T]) alloc(capacity int) ([]T, *bumpBlock[T]) {
	if capacity == 0 || capacity > a.blockCap {
		return make([]T, 0, capacity), nil
	}
	b := a.cur
	if b == nil || len(b.buf)+capacity > cap(b.buf) {
		if b != nil {
			a.pending = append(a.pending, b)
		}
		b = a.take()
		a.cur = b
	}
	start := len(b.buf)
	b.buf = b.buf[:start+capacity]
	a.lastBlk, a.lastStart = b, start
	return b.buf[start : start : start+capacity], b
}

// trim gives the unused capacity of the most recent allocation back to the
// block, so a run that ended shorter than its bound does not waste space.
func (a *bumpArena[T]) trim(run []T, blk *bumpBlock[T]) {
	if blk != nil && blk == a.lastBlk {
		blk.buf = blk.buf[:a.lastStart+len(run)]
	}
	a.lastBlk = nil
}

// take pops a recycled block or allocates a fresh one, holding the writer
// reference.
func (a *bumpArena[T]) take() *bumpBlock[T] {
	var b *bumpBlock[T]
	if n := len(a.free); n > 0 {
		b = a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
	} else {
		b = &bumpBlock[T]{owner: a}
		b.buf = make([]T, 0, a.blockCap)
	}
	b.rc = 1
	return b
}

// releasePending drops the writer reference on blocks retired since the last
// publish.
func (a *bumpArena[T]) releasePending() {
	for _, b := range a.pending {
		b.release()
	}
	clear(a.pending)
	a.pending = a.pending[:0]
}

// genSentinel is one publish generation's liveness anchor: every snapshot of
// the generation strongly references it (RelationSnapshot.keep) and carries
// the generation's death cleanup, which fires exactly when the last such
// snapshot is collected. Deliberately non-empty — zero-size allocations
// share one address, fusing every generation's identity — and deliberately
// pointer-typed: a small pointer-free object would go through the runtime's
// tiny allocator, which packs unrelated objects into shared 16-byte slots
// whose storage lives as long as the longest-lived co-resident, so a dead
// generation's cleanup could be deferred indefinitely.
type genSentinel struct{ _ *genSentinel }

// pinSet records the blocks one publish generation holds references on,
// plus the generation's liveness accounting. Sets are pooled: draining a
// dead generation recycles its set (and the set's slice capacity) for a
// later generation.
type pinSet[P any] struct {
	owner *snapArena[P]
	// live counts reasons the generation cannot be reclaimed: one held by
	// the writer while the generation is open, one per published snapshot
	// whose references have not all been dropped. The decrement that reaches
	// zero reports the generation dead (any goroutine).
	live atomic.Int32
	// genID distinguishes incarnations of a recycled set, so a backstop
	// cleanup queued for a previous incarnation cannot kill the current one;
	// dead marks the set as already on the dead list. Both are guarded by
	// owner.deadMu.
	genID uint64
	dead  bool
	// stop cancels the incarnation's backstop cleanup; set at generation
	// close, stopped on drain. Writer-only.
	stop runtime.Cleanup

	runs []*bumpBlock[Entry[P]]
	dirs []*bumpBlock[snapChunk[P]]
}

// deadNote is the backstop cleanup's argument: the generation's pin set and
// the incarnation it was armed for.
type deadNote[P any] struct {
	set *pinSet[P]
	gen uint64
}

// snapArena allocates snapshot storage for one relation: entry runs, chunk
// directories, and the generation bookkeeping that returns their blocks to
// the freelists when every snapshot of a generation dies. Writer-goroutine
// only, except the dead list (see deadMu).
type snapArena[P any] struct {
	runs bumpArena[Entry[P]]
	dirs bumpArena[snapChunk[P]]
	gen  uint64 // current generation id (block mark namespace)
	n    int    // publishes in the current generation

	cur    *genSentinel // open generation's sentinel (nil between generations)
	curSet *pinSet[P]

	// onDead is the generation death backstop, bound once so closing a
	// generation allocates no closure. It runs on the GC's cleanup
	// goroutine and only touches the dead list.
	onDead func(deadNote[P])

	deadMu sync.Mutex
	dead   []*pinSet[P] // generations whose snapshots are all dead

	drainScratch []*pinSet[P]
	freeSets     []*pinSet[P]
}

func (a *snapArena[P]) init() {
	a.runs.blockCap = runBlockCap
	a.dirs.blockCap = dirBlockCap
	a.onDead = func(n deadNote[P]) {
		a.deadMu.Lock()
		if n.set.genID == n.gen && !n.set.dead {
			n.set.dead = true
			a.dead = append(a.dead, n.set)
		}
		a.deadMu.Unlock()
	}
}

// reportDead puts a generation's pin set on the dead list (idempotently) for
// the writer to drain at the next publish. Called from the decrement that
// took the set's live count to zero — any goroutine.
func (a *snapArena[P]) reportDead(set *pinSet[P]) {
	a.deadMu.Lock()
	if !set.dead {
		set.dead = true
		a.dead = append(a.dead, set)
	}
	a.deadMu.Unlock()
}

// takeSet pops a recycled pin set or allocates a fresh one.
func (a *snapArena[P]) takeSet() *pinSet[P] {
	if n := len(a.freeSets); n > 0 {
		s := a.freeSets[n-1]
		a.freeSets[n-1] = nil
		a.freeSets = a.freeSets[:n-1]
		return s
	}
	return &pinSet[P]{owner: a}
}

// drain releases the blocks of generations reported dead since the last
// publish, recycling their sets. The writer swaps the dead list out under
// the mutex — bumping each set's incarnation there, so a straggling backstop
// cleanup cannot re-kill the recycled set — and does the release work
// outside it.
func (a *snapArena[P]) drain() {
	a.deadMu.Lock()
	if len(a.dead) == 0 {
		a.deadMu.Unlock()
		return
	}
	dead := a.dead
	a.dead = a.drainScratch[:0]
	for _, set := range dead {
		set.genID++
		set.dead = false
	}
	a.deadMu.Unlock()
	for i, set := range dead {
		set.stop.Stop()
		set.live.Store(0)
		for _, b := range set.runs {
			b.release()
		}
		clear(set.runs)
		set.runs = set.runs[:0]
		for _, b := range set.dirs {
			b.release()
		}
		clear(set.dirs)
		set.dirs = set.dirs[:0]
		a.freeSets = append(a.freeSets, set)
		dead[i] = nil
	}
	a.drainScratch = dead[:0]
}

// publish enrolls s in the current generation — opening one if needed,
// pinning each block of s not already pinned by this generation, counting s
// against the generation's live count with one reference held by the
// publishing relation — and then drops the writer reference on blocks
// retired while building s. The order matters: retired blocks may hold runs
// that belong to s. Every genSpan publishes the generation closes: the
// backstop cleanup is armed on the sentinel and the writer's live stake is
// dropped, after which the generation dies with its last snapshot.
func (a *snapArena[P]) publish(s *RelationSnapshot[P]) {
	a.drain()
	if a.cur == nil {
		a.gen++
		a.cur = &genSentinel{}
		a.curSet = a.takeSet()
		a.curSet.live.Store(1) // writer stake while the generation is open
	}
	s.keep = a.cur
	s.set = a.curSet
	s.refs.Store(1) // the relation's own reference, dropped at the next publish
	a.curSet.live.Add(1)
	for i := range s.chunks {
		b := s.chunks[i].blk
		if b != nil && b.mark != a.gen {
			b.mark = a.gen
			b.rc++
			a.curSet.runs = append(a.curSet.runs, b)
		}
	}
	if b := s.dirBlk; b != nil && b.mark != a.gen {
		b.mark = a.gen
		b.rc++
		a.curSet.dirs = append(a.curSet.dirs, b)
	}
	a.n++
	if a.n >= genSpan {
		set := a.curSet
		set.stop = runtime.AddCleanup(a.cur, a.onDead, deadNote[P]{set: set, gen: set.genID})
		a.cur, a.curSet, a.n = nil, nil, 0
		if set.live.Add(-1) == 0 {
			a.reportDead(set)
		}
	}
	a.runs.releasePending()
	a.dirs.releasePending()
}

// Retain adds a reference to the snapshot, for handing it to an additional
// independent owner; each owner must balance its reference with Release.
// Snapshots not backed by the publish arena (Seal, ReduceSealed) need no
// lifetime management and ignore both calls.
func (s *RelationSnapshot[P]) Retain() {
	if s != nil && s.set != nil {
		s.refs.Add(1)
	}
}

// Release drops one reference to the snapshot. Dropping the last reference
// of the last snapshot of a publish generation returns the generation's
// storage to the relation's arena at its next publish — the deterministic
// reclamation path high-rate publish loops need (see the package comment).
// Releasing is optional for correctness: unreleased snapshots are reclaimed
// by the GC backstop once unreachable. Safe from any goroutine; releasing
// more times than retained corrupts the count.
func (s *RelationSnapshot[P]) Release() {
	if s == nil || s.set == nil {
		return
	}
	if s.refs.Add(-1) != 0 {
		return
	}
	set := s.set
	if set.live.Add(-1) != 0 {
		return
	}
	set.owner.reportDead(set)
}
