package data

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Snapshot chunk arena: steady-state publishing allocates one entry-pointer
// run per dirty chunk (see patch/mergeChunk), and under a continuous update
// stream those runs are produced every epoch and die a few epochs later when
// the snapshots referencing them are dropped — a textbook arena workload.
// The arena bump-allocates runs out of fixed-size blocks and recycles a
// block onto a freelist once no snapshot references it, so steady-state
// Snapshot() publishing stops handing fresh slices to the garbage collector
// each epoch.
//
// Reclamation is reference-counted, not epoch-bounded, because snapshot
// lifetime is reader-controlled: a pinned reader may hold an old snapshot
// for arbitrarily long (see serve.Registry), and nothing ever tells the
// relation it was dropped. Each published snapshot takes one reference on
// every distinct block its chunks live in, released by a GC cleanup when
// the snapshot becomes unreachable; the writer holds one reference on the
// block it is currently filling, released at the first publish after the
// block fills up. A block whose count reaches zero is wiped (so its entry
// pointers stop retaining sealed entries) and pushed onto the freelist.
const (
	// arenaBlockCap is the block size in entry pointers (32 KiB per block).
	// Runs larger than a block — wholesale rebuilds, huge dirty ranges —
	// fall back to plain GC allocations with a nil block.
	arenaBlockCap = 4096
	// arenaFreeMax caps the freelist; blocks beyond it are dropped to the GC.
	arenaFreeMax = 8
)

// arenaBlock is one fixed-capacity allocation block. rc counts the
// snapshots whose chunks point into buf, plus one for the writer while the
// block is still being filled; mark dedupes the per-publish reference sweep
// and is only ever touched by the writer goroutine.
type arenaBlock[P any] struct {
	rc    atomic.Int32
	mark  uint64
	buf   []*Entry[P]
	owner *snapArena[P]
}

// release drops one reference; the last reference wipes the block and
// returns it to the owner's freelist. Called from the writer (retired
// blocks) and from GC cleanup goroutines (dropped snapshots).
func (b *arenaBlock[P]) release() {
	if b.rc.Add(-1) != 0 {
		return
	}
	b.buf = b.buf[:cap(b.buf)]
	clear(b.buf) // stop retaining sealed entries
	b.buf = b.buf[:0]
	a := b.owner
	a.mu.Lock()
	if len(a.free) < arenaFreeMax {
		a.free = append(a.free, b)
	}
	a.mu.Unlock()
}

// releaseBlocks is the AddCleanup hook attached to each published snapshot.
func releaseBlocks[P any](blocks []*arenaBlock[P]) {
	for _, b := range blocks {
		b.release()
	}
}

// snapArena allocates snapshot chunk runs for one relation. All methods
// except the freelist interior are writer-goroutine only.
type snapArena[P any] struct {
	cur *arenaBlock[P]
	// pending holds filled blocks whose writer reference is dropped at the
	// next publish — not before, because runs already handed out of them
	// belong to the snapshot that is still being built.
	pending []*arenaBlock[P]
	// lastBlk/lastStart remember the most recent allocation so trim can give
	// unused capacity back to the bump pointer.
	lastBlk   *arenaBlock[P]
	lastStart int
	gen       uint64 // publish sweep marker (compared against block.mark)

	mu   sync.Mutex
	free []*arenaBlock[P]
}

// alloc returns an empty run with the given strict capacity bound and the
// block it lives in (nil for oversize runs, which are plain allocations).
// Callers must never append beyond the capacity — that would silently move
// the run out of the block and break reference attribution.
func (a *snapArena[P]) alloc(capacity int) ([]*Entry[P], *arenaBlock[P]) {
	if capacity == 0 || capacity > arenaBlockCap {
		return make([]*Entry[P], 0, capacity), nil
	}
	b := a.cur
	if b == nil || len(b.buf)+capacity > cap(b.buf) {
		if b != nil {
			a.pending = append(a.pending, b)
		}
		b = a.take()
		a.cur = b
	}
	start := len(b.buf)
	b.buf = b.buf[:start+capacity]
	a.lastBlk, a.lastStart = b, start
	return b.buf[start : start : start+capacity], b
}

// trim gives the unused capacity of the most recent allocation back to the
// block, so a run that ended shorter than its bound does not waste space.
func (a *snapArena[P]) trim(run []*Entry[P], blk *arenaBlock[P]) {
	if blk != nil && blk == a.lastBlk {
		blk.buf = blk.buf[:a.lastStart+len(run)]
	}
	a.lastBlk = nil
}

// take pops a recycled block or allocates a fresh one, holding the writer
// reference.
func (a *snapArena[P]) take() *arenaBlock[P] {
	var b *arenaBlock[P]
	a.mu.Lock()
	if n := len(a.free); n > 0 {
		b = a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
	}
	a.mu.Unlock()
	if b == nil {
		b = &arenaBlock[P]{owner: a}
		b.buf = make([]*Entry[P], 0, arenaBlockCap)
	}
	b.rc.Store(1)
	return b
}

// publish pins s's blocks — one reference per distinct block among its
// chunks, released by GC cleanup when s becomes unreachable — and then
// drops the writer reference on blocks retired while building s. The order
// matters: retired blocks may hold runs that belong to s.
func (a *snapArena[P]) publish(s *RelationSnapshot[P]) {
	a.gen++
	var blocks []*arenaBlock[P]
	for i := range s.chunks {
		b := s.chunks[i].blk
		if b != nil && b.mark != a.gen {
			b.mark = a.gen
			b.rc.Add(1)
			blocks = append(blocks, b)
		}
	}
	if len(blocks) > 0 {
		runtime.AddCleanup(s, releaseBlocks[P], blocks)
	}
	for _, b := range a.pending {
		b.release()
	}
	clear(a.pending)
	a.pending = a.pending[:0]
}
