package data

import (
	"errors"
	"testing"

	"fivm/internal/ring"
)

func bsTuple(vals ...int64) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = Int(v)
	}
	return t
}

func TestBaseStoreApplyAndObserve(t *testing.T) {
	s := NewBaseStore()
	if err := s.Register("R", NewSchema("A", "B")); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("S", NewSchema("B", "C")); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("R", NewSchema("A", "B")); err == nil {
		t.Fatal("duplicate Register should fail")
	}

	var sawR, sawAll int
	s.Attach("onlyR", []string{"R"}, func(batch []BaseUpdate) error {
		for _, u := range batch {
			if u.Rel != "R" {
				t.Errorf("onlyR observer saw %q", u.Rel)
			}
			sawR += len(u.Tuples)
		}
		return nil
	})
	s.Attach("all", nil, func(batch []BaseUpdate) error {
		for _, u := range batch {
			sawAll += len(u.Tuples)
		}
		return nil
	})

	err := s.ApplyBatch([]BaseUpdate{
		{Rel: "R", Tuples: []Tuple{bsTuple(1, 2), bsTuple(3, 4), bsTuple(3, 4)}},
		{Rel: "S", Tuples: []Tuple{bsTuple(2, 5)}, Mult: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sawR != 3 || sawAll != 4 {
		t.Errorf("observers saw R=%d all=%d, want 3 and 4", sawR, sawAll)
	}
	// Base compacts the log lazily: the duplicate insert coalesced to 2.
	if got, _ := s.Base("R").Get(bsTuple(3, 4)); got != 2 {
		t.Errorf("R[3,4] = %d, want 2", got)
	}

	// Deletion drives multiplicity to zero and drops the key at compaction.
	if err := s.ApplyBatch([]BaseUpdate{
		{Rel: "R", Tuples: []Tuple{bsTuple(1, 2)}, Mult: -1},
	}); err != nil {
		t.Fatal(err)
	}
	if s.Base("R").Contains(bsTuple(1, 2)) {
		t.Error("deleted key still present")
	}
	if s.Tuples() != 2 {
		t.Errorf("Tuples() = %d, want 2", s.Tuples())
	}

	// Detach stops delivery.
	s.Detach("onlyR")
	before := sawR
	if err := s.ApplyBatch([]BaseUpdate{
		{Rel: "R", Tuples: []Tuple{bsTuple(7, 7)}},
	}); err != nil {
		t.Fatal(err)
	}
	if sawR != before {
		t.Error("detached observer still delivered")
	}
	if got := s.Observers(); len(got) != 1 || got[0] != "all" {
		t.Errorf("observers = %v", got)
	}
}

func TestBaseStoreErrors(t *testing.T) {
	s := NewBaseStore()
	if err := s.Register("R", NewSchema("A")); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyBatch([]BaseUpdate{{Rel: "Z", Tuples: []Tuple{bsTuple(1)}}}); err == nil {
		t.Error("unknown relation should fail")
	}
	if err := s.ApplyBatch([]BaseUpdate{{Rel: "R", Tuples: []Tuple{bsTuple(1, 2)}}}); err == nil {
		t.Error("arity mismatch should fail")
	}

	boom := errors.New("boom")
	s.Attach("bad", nil, func([]BaseUpdate) error { return boom })
	err := s.ApplyBatch([]BaseUpdate{{Rel: "R", Tuples: []Tuple{bsTuple(1)}}})
	if !errors.Is(err, boom) {
		t.Errorf("observer error not propagated: %v", err)
	}
}

func TestLiftFrom(t *testing.T) {
	src := NewRelation[int64](ring.Int{}, NewSchema("A"))
	src.Merge(bsTuple(1), 2)
	src.Merge(bsTuple(2), -1)
	dst := NewRelation[float64](ring.Float{}, NewSchema("A"))
	LiftFrom(dst, src, func(n int64) float64 { return float64(n) })
	if got, _ := dst.Get(bsTuple(1)); got != 2 {
		t.Errorf("dst[1] = %g", got)
	}
	if got, _ := dst.Get(bsTuple(2)); got != -1 {
		t.Errorf("dst[2] = %g", got)
	}
}
