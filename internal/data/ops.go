package data

import "fmt"

// LiftFunc maps a value of a named variable into the payload ring: the
// paper's lifting functions g_X : Dom(X) -> D. Marginalizing a variable X
// multiplies each payload by g_X applied to the key's X-value before
// aggregating X away.
type LiftFunc[P any] func(variable string, v Value) P

// Union returns a ⊎ b, the key-wise payload sum. The schemas must contain
// the same variables; the result uses a's variable order.
func Union[P any](a, b *Relation[P]) *Relation[P] {
	if !a.schema.SameSet(b.schema) {
		panic(fmt.Sprintf("data: union of incompatible schemas %v and %v", a.schema, b.schema))
	}
	out := a.Clone()
	proj := MustProjector(b.schema, a.schema)
	b.entries.all(func(e *Entry[P]) bool {
		out.MergeProjected(proj, e.Tuple, e.Payload)
		return true
	})
	return out
}

// Join returns the natural join a ⊗ b: for every pair of tuples agreeing on
// the shared variables, the concatenated key maps to the payload product
// (a's payload on the left). The result schema is a.schema followed by b's
// extra variables.
func Join[P any](a, b *Relation[P]) *Relation[P] {
	common := a.schema.Intersect(b.schema)
	outSchema := a.schema.Union(b.schema)
	out := NewRelation(a.ring, outSchema)

	// Build a hash index over b on the shared variables, then probe with a.
	// Payload order must stay a*b for non-commutative rings, so the build
	// side is always b.
	extra := b.schema.Minus(common)
	bCommon := MustProjector(b.schema, common)
	bExtra := MustProjector(b.schema, extra)
	type bucketEntry struct {
		extra   Tuple
		payload P
	}
	buckets := make(map[string][]bucketEntry, b.entries.len())
	b.entries.all(func(e *Entry[P]) bool {
		k := bCommon.Key(e.Tuple)
		buckets[k] = append(buckets[k], bucketEntry{extra: bExtra.Apply(e.Tuple), payload: e.Payload})
		return true
	})

	aCommon := MustProjector(a.schema, common)
	var buf []byte
	a.entries.all(func(e *Entry[P]) bool {
		buf = aCommon.AppendKey(buf[:0], e.Tuple)
		matches := buckets[string(buf)]
		for i := range matches {
			m := &matches[i]
			out.MergeMul(Concat(e.Tuple, m.extra), &e.Payload, &m.payload)
		}
		return true
	})
	return out
}

// JoinAll folds Join over the relations left to right. It panics on an
// empty argument list since the result schema would be undefined.
func JoinAll[P any](rels ...*Relation[P]) *Relation[P] {
	if len(rels) == 0 {
		panic("data: JoinAll of no relations")
	}
	out := rels[0]
	for _, r := range rels[1:] {
		out = Join(out, r)
	}
	return out
}

// Marginalize returns ⊕_X r: payloads are multiplied by the lifting of the
// X-value and summed per remaining key. The result schema is r's schema
// without X.
func Marginalize[P any](r *Relation[P], x string, lift LiftFunc[P]) *Relation[P] {
	return MarginalizeVars(r, Schema{x}, lift)
}

// MarginalizeVars marginalizes several variables at once, applying the
// lifting function of each: ⊕_{X1} ... ⊕_{Xk} r. Marginalizing multiple
// variables in one pass implements the paper's composition of long view
// chains into a single view.
func MarginalizeVars[P any](r *Relation[P], vars Schema, lift LiftFunc[P]) *Relation[P] {
	for _, x := range vars {
		if !r.schema.Contains(x) {
			panic(fmt.Sprintf("data: marginalized variable %q not in schema %v", x, r.schema))
		}
	}
	outSchema := r.schema.Minus(vars)
	out := NewRelation(r.ring, outSchema)
	proj := MustProjector(r.schema, outSchema)
	idx := make([]int, len(vars))
	for i, x := range vars {
		idx[i] = r.schema.IndexOf(x)
	}
	r.entries.all(func(e *Entry[P]) bool {
		// Combine the liftings first: they are small ring elements, while
		// the payload may be large, so it joins the product once — directly
		// inside the output's stored payload for mutable rings.
		if len(vars) > 0 {
			lp := lift(vars[0], e.Tuple[idx[0]])
			for i, x := range vars[1:] {
				lp = r.ring.Mul(lp, lift(x, e.Tuple[idx[i+1]]))
			}
			out.MergeMulProjected(proj, e.Tuple, &e.Payload, &lp)
		} else {
			out.MergeProjected(proj, e.Tuple, e.Payload)
		}
		return true
	})
	return out
}

// Project returns the relation keyed by the target schema with payloads of
// dropped variables summed (no lifting): ⊕ with the identity lifting.
func Project[P any](r *Relation[P], target Schema) *Relation[P] {
	out := NewRelation(r.ring, target)
	proj := MustProjector(r.schema, target)
	r.entries.all(func(e *Entry[P]) bool {
		out.MergeProjected(proj, e.Tuple, e.Payload)
		return true
	})
	return out
}

// LiftOne returns a lifting that maps every value of every variable to the
// ring's multiplicative identity; marginalizing with it computes plain
// aggregation (COUNT-style) over the payloads.
func LiftOne[P any](r interface{ One() P }) LiftFunc[P] {
	one := r.One()
	return func(string, Value) P { return one }
}
