package data

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fivm/internal/ring"
)

// --- Value / Tuple -------------------------------------------------------

func TestValueKinds(t *testing.T) {
	if Int(5).Kind() != KindInt || Float(1.5).Kind() != KindFloat || String("x").Kind() != KindString {
		t.Fatal("kind mismatch")
	}
	if Int(5).AsInt() != 5 || Int(5).AsFloat() != 5 {
		t.Error("Int conversions")
	}
	if Float(2.5).AsFloat() != 2.5 || Float(2.9).AsInt() != 2 {
		t.Error("Float conversions")
	}
	if String("ab").AsString() != "ab" || String("ab").AsFloat() != 0 {
		t.Error("String conversions")
	}
	if Int(7).String() != "7" || String("z").String() != "z" {
		t.Error("String rendering")
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Distinct tuples must have distinct keys; equal tuples equal keys.
	seen := make(map[string]Tuple)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(4)
		tup := make(Tuple, n)
		for j := range tup {
			switch rng.Intn(3) {
			case 0:
				tup[j] = Int(int64(rng.Intn(50) - 25))
			case 1:
				tup[j] = Float(float64(rng.Intn(10)) / 2)
			default:
				tup[j] = String(string(rune('a' + rng.Intn(4))))
			}
		}
		k := tup.Key()
		if prev, ok := seen[k]; ok {
			if !prev.Equal(tup) {
				t.Fatalf("key collision: %v vs %v", prev, tup)
			}
		}
		seen[k] = tup
	}
}

func TestTupleKeyDistinguishesKinds(t *testing.T) {
	// Int(1) and Float(1) are different keys; so are ("ab","c") vs ("a","bc").
	if (Tuple{Int(1)}).Key() == (Tuple{Float(1)}).Key() {
		t.Error("Int(1) and Float(1) collide")
	}
	if (Tuple{String("ab"), String("c")}).Key() == (Tuple{String("a"), String("bc")}).Key() {
		t.Error("string boundary collision")
	}
	if (Tuple{}).Key() != "" {
		t.Error("empty tuple key should be empty")
	}
}

func TestConcatAndClone(t *testing.T) {
	a, b := Ints(1, 2), Ints(3)
	c := Concat(a, b)
	if !c.Equal(Ints(1, 2, 3)) {
		t.Fatalf("Concat = %v", c)
	}
	cl := a.Clone()
	cl[0] = Int(9)
	if a[0].AsInt() != 1 {
		t.Error("Clone shares storage")
	}
}

// --- Schema / Projector --------------------------------------------------

func TestSchemaOps(t *testing.T) {
	s := NewSchema("A", "B", "C")
	o := NewSchema("B", "D")
	if !s.Union(o).Equal(NewSchema("A", "B", "C", "D")) {
		t.Errorf("Union = %v", s.Union(o))
	}
	if !s.Intersect(o).Equal(NewSchema("B")) {
		t.Errorf("Intersect = %v", s.Intersect(o))
	}
	if !s.Minus(o).Equal(NewSchema("A", "C")) {
		t.Errorf("Minus = %v", s.Minus(o))
	}
	if !s.SameSet(NewSchema("C", "A", "B")) {
		t.Error("SameSet order-insensitive")
	}
	if s.SameSet(NewSchema("A", "B")) {
		t.Error("SameSet on different sets")
	}
	if s.IndexOf("C") != 2 || s.IndexOf("Z") != -1 {
		t.Error("IndexOf")
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSchema with duplicates should panic")
		}
	}()
	NewSchema("A", "A")
}

func TestProjector(t *testing.T) {
	from := NewSchema("A", "B", "C")
	p := MustProjector(from, NewSchema("C", "A"))
	got := p.Apply(Ints(1, 2, 3))
	if !got.Equal(Ints(3, 1)) {
		t.Fatalf("Apply = %v", got)
	}
	if p.Key(Ints(1, 2, 3)) != Ints(3, 1).Key() {
		t.Error("Key mismatch with Apply().Key()")
	}
	if _, err := NewProjector(from, NewSchema("Z")); err == nil {
		t.Error("missing target should error")
	}
}

// --- Relation ------------------------------------------------------------

func intRel(schema Schema, rows ...[2]any) *Relation[int64] {
	r := NewRelation[int64](ring.Int{}, schema)
	for _, row := range rows {
		r.Merge(row[0].(Tuple), int64(row[1].(int)))
	}
	return r
}

func TestRelationMergeCancellation(t *testing.T) {
	r := NewRelation[int64](ring.Int{}, NewSchema("A"))
	r.Merge(Ints(1), 2)
	r.Merge(Ints(1), -2)
	if r.Len() != 0 {
		t.Errorf("Len = %d after cancellation, want 0", r.Len())
	}
	if r.Contains(Ints(1)) {
		t.Error("cancelled key still present")
	}
	r.Merge(Ints(1), 0)
	if r.Len() != 0 {
		t.Error("zero merge created a key")
	}
}

func TestRelationSetGetNegate(t *testing.T) {
	r := intRel(NewSchema("A", "B"), [2]any{Ints(1, 2), 3})
	if p, ok := r.Get(Ints(1, 2)); !ok || p != 3 {
		t.Fatalf("Get = %v,%v", p, ok)
	}
	n := r.Negate()
	if p, _ := n.Get(Ints(1, 2)); p != -3 {
		t.Errorf("Negate payload = %v", p)
	}
	u := Union(r, n)
	if u.Len() != 0 {
		t.Errorf("r ⊎ -r has %d keys", u.Len())
	}
	r.Set(Ints(1, 2), 0)
	if r.Len() != 0 {
		t.Error("Set zero should delete")
	}
}

// TestExample21 reproduces paper Example 2.1: union, join, and
// marginalization over an abstract ring (here Z with symbolic payloads
// encoded as distinct primes so products are distinguishable).
func TestExample21(t *testing.T) {
	rg := ring.Int{}
	r1, r2, s1, s2, t1, t2 := int64(2), int64(3), int64(5), int64(7), int64(11), int64(13)
	R := FromEntries[int64](rg, NewSchema("A", "B"),
		Entry[int64]{Tuple: Ints(1, 1), Payload: r1}, Entry[int64]{Tuple: Ints(2, 1), Payload: r2})
	S := FromEntries[int64](rg, NewSchema("A", "B"),
		Entry[int64]{Tuple: Ints(2, 1), Payload: s1}, Entry[int64]{Tuple: Ints(3, 2), Payload: s2})
	T := FromEntries[int64](rg, NewSchema("B", "C"),
		Entry[int64]{Tuple: Ints(1, 1), Payload: t1}, Entry[int64]{Tuple: Ints(2, 2), Payload: t2})

	u := Union(R, S)
	if p, _ := u.Get(Ints(2, 1)); p != r2+s1 {
		t.Errorf("(R⊎S)[a2,b1] = %v, want %v", p, r2+s1)
	}
	if u.Len() != 3 {
		t.Errorf("|R⊎S| = %d, want 3", u.Len())
	}

	j := Join(u, T)
	if p, _ := j.Get(Ints(1, 1, 1)); p != r1*t1 {
		t.Errorf("join[a1,b1,c1] = %v, want %v", p, r1*t1)
	}
	if p, _ := j.Get(Ints(2, 1, 1)); p != (r2+s1)*t1 {
		t.Errorf("join[a2,b1,c1] = %v, want %v", p, (r2+s1)*t1)
	}
	if p, _ := j.Get(Ints(3, 2, 2)); p != s2*t2 {
		t.Errorf("join[a3,b2,c2] = %v, want %v", p, s2*t2)
	}
	if j.Len() != 3 {
		t.Errorf("|join| = %d, want 3", j.Len())
	}

	// Marginalize A with lifting g_A(a) = a (so results stay distinct).
	liftA := func(v string, x Value) int64 { return x.AsInt() }
	m := Marginalize(j, "A", liftA)
	if p, _ := m.Get(Ints(1, 1)); p != r1*t1*1+(r2+s1)*t1*2 {
		t.Errorf("⊕A[b1,c1] = %v", p)
	}
	if p, _ := m.Get(Ints(2, 2)); p != s2*t2*3 {
		t.Errorf("⊕A[b2,c2] = %v", p)
	}
}

func TestJoinPayloadOrderAndSchema(t *testing.T) {
	rg := ring.Int{}
	a := FromEntries[int64](rg, NewSchema("A", "B"), Entry[int64]{Tuple: Ints(1, 2), Payload: 5})
	b := FromEntries[int64](rg, NewSchema("B", "C"), Entry[int64]{Tuple: Ints(2, 3), Payload: 7})
	j := Join(a, b)
	if !j.Schema().Equal(NewSchema("A", "B", "C")) {
		t.Errorf("schema = %v", j.Schema())
	}
	if p, _ := j.Get(Ints(1, 2, 3)); p != 35 {
		t.Errorf("payload = %v", p)
	}
	// Disjoint schemas: Cartesian product.
	c := FromEntries[int64](rg, NewSchema("D"), Entry[int64]{Tuple: Ints(9), Payload: 2}, Entry[int64]{Tuple: Ints(8), Payload: 3})
	x := Join(a, c)
	if x.Len() != 2 {
		t.Errorf("Cartesian len = %d", x.Len())
	}
}

func TestMarginalizeVarsMultiple(t *testing.T) {
	rg := ring.Int{}
	r := FromEntries[int64](rg, NewSchema("A", "B", "C"),
		Entry[int64]{Tuple: Ints(1, 2, 3), Payload: 1},
		Entry[int64]{Tuple: Ints(1, 4, 5), Payload: 1})
	lift := func(v string, x Value) int64 { return x.AsInt() }
	m := MarginalizeVars(r, NewSchema("B", "C"), lift)
	if !m.Schema().Equal(NewSchema("A")) {
		t.Fatalf("schema = %v", m.Schema())
	}
	if p, _ := m.Get(Ints(1)); p != 2*3+4*5 {
		t.Errorf("payload = %v, want 26", p)
	}
}

func TestProjectSums(t *testing.T) {
	rg := ring.Int{}
	r := FromEntries[int64](rg, NewSchema("A", "B"),
		Entry[int64]{Tuple: Ints(1, 1), Payload: 2}, Entry[int64]{Tuple: Ints(1, 2), Payload: 3})
	p := Project(r, NewSchema("A"))
	if got, _ := p.Get(Ints(1)); got != 5 {
		t.Errorf("Project sum = %v", got)
	}
}

func TestUnionQuickAssocComm(t *testing.T) {
	// Union is commutative and associative on random relations.
	rg := ring.Int{}
	schema := NewSchema("A", "B")
	gen := func(seed int64) *Relation[int64] {
		rng := rand.New(rand.NewSource(seed))
		r := NewRelation[int64](rg, schema)
		for i := 0; i < rng.Intn(20); i++ {
			r.Merge(Ints(int64(rng.Intn(5)), int64(rng.Intn(5))), int64(rng.Intn(7)-3))
		}
		return r
	}
	eq := func(a, b *Relation[int64]) bool {
		return a.Equal(b, func(x, y int64) bool { return x == y })
	}
	if err := quick.Check(func(s1, s2, s3 int64) bool {
		a, b, c := gen(s1), gen(s2), gen(s3)
		if !eq(Union(a, b), Union(b, a)) {
			return false
		}
		return eq(Union(Union(a, b), c), Union(a, Union(b, c)))
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinDistributesOverUnion(t *testing.T) {
	// (a ⊎ b) ⊗ c = (a ⊗ c) ⊎ (b ⊗ c) — the algebraic identity behind
	// the delta rules of Figure 4.
	rg := ring.Int{}
	sAB, sBC := NewSchema("A", "B"), NewSchema("B", "C")
	gen := func(seed int64, schema Schema) *Relation[int64] {
		rng := rand.New(rand.NewSource(seed))
		r := NewRelation[int64](rg, schema)
		for i := 0; i < rng.Intn(15); i++ {
			r.Merge(Ints(int64(rng.Intn(4)), int64(rng.Intn(4))), int64(rng.Intn(9)-4))
		}
		return r
	}
	eq := func(a, b *Relation[int64]) bool {
		return a.Equal(b, func(x, y int64) bool { return x == y })
	}
	if err := quick.Check(func(s1, s2, s3 int64) bool {
		a, b := gen(s1, sAB), gen(s2, sAB)
		c := gen(s3, sBC)
		return eq(Join(Union(a, b), c), Union(Join(a, c), Join(b, c)))
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMarginalizeCommutesWithUnion(t *testing.T) {
	// ⊕_X (a ⊎ b) = (⊕_X a) ⊎ (⊕_X b) — linearity of marginalization.
	rg := ring.Int{}
	schema := NewSchema("A", "B")
	lift := func(v string, x Value) int64 { return x.AsInt() + 1 }
	gen := func(seed int64) *Relation[int64] {
		rng := rand.New(rand.NewSource(seed))
		r := NewRelation[int64](rg, schema)
		for i := 0; i < rng.Intn(15); i++ {
			r.Merge(Ints(int64(rng.Intn(4)), int64(rng.Intn(4))), int64(rng.Intn(9)-4))
		}
		return r
	}
	eq := func(a, b *Relation[int64]) bool {
		return a.Equal(b, func(x, y int64) bool { return x == y })
	}
	if err := quick.Check(func(s1, s2 int64) bool {
		a, b := gen(s1), gen(s2)
		return eq(Marginalize(Union(a, b), "B", lift),
			Union(Marginalize(a, "B", lift), Marginalize(b, "B", lift)))
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// --- Index / IndexedRelation ---------------------------------------------

func TestIndexedRelationMaintainsIndexes(t *testing.T) {
	rg := ring.Int{}
	schema := NewSchema("A", "B")
	ir := NewIndexedRelation(NewRelation[int64](rg, schema))
	ir.MergeIndexed(Ints(1, 10), 1)
	ir.MergeIndexed(Ints(1, 20), 1)
	ir.MergeIndexed(Ints(2, 30), 1)

	ix := ir.EnsureIndex(NewSchema("A"))
	if got := ix.Probe(Ints(1).Key()).Len(); got != 2 {
		t.Errorf("Probe(A=1) = %d keys, want 2", got)
	}
	// Updates after index creation are reflected.
	ir.MergeIndexed(Ints(1, 40), 1)
	if got := ix.Probe(Ints(1).Key()).Len(); got != 3 {
		t.Errorf("Probe(A=1) = %d keys after insert, want 3", got)
	}
	// Deletion through cancellation removes from the index.
	ir.MergeIndexed(Ints(1, 10), -1)
	if got := ix.Probe(Ints(1).Key()).Len(); got != 2 {
		t.Errorf("Probe(A=1) = %d keys after delete, want 2", got)
	}
	// Payload updates that do not change presence keep the index stable.
	ir.MergeIndexed(Ints(1, 20), 5)
	if got := ix.Probe(Ints(1).Key()).Len(); got != 2 {
		t.Errorf("Probe(A=1) = %d keys after payload change, want 2", got)
	}
}

func TestIndexEmptySchemaActsAsScan(t *testing.T) {
	rg := ring.Int{}
	ir := NewIndexedRelation(NewRelation[int64](rg, NewSchema("A")))
	ir.MergeIndexed(Ints(1), 1)
	ir.MergeIndexed(Ints(2), 1)
	ix := ir.EnsureIndex(Schema{})
	if got := ix.Probe("").Len(); got != 2 {
		t.Errorf("empty-schema probe = %d, want 2", got)
	}
}

// --- Multiset / relational ring -------------------------------------------

func TestRelRingIdentities(t *testing.T) {
	rr := RelRing{}
	one := rr.One()
	if one.Len() != 1 || one.Mult(Tuple{}) != 1 {
		t.Fatalf("One = %v", one)
	}
	if !rr.IsZero(rr.Zero()) || !rr.IsZero(nil) {
		t.Error("Zero should be zero")
	}
	a := MultisetOf(NewSchema("X"), Ints(1), Ints(2))
	if got := rr.Mul(one, a); got.Len() != 2 || !got.Schema().SameSet(NewSchema("X")) {
		t.Errorf("1*a = %v", got)
	}
	if got := rr.Mul(a, one); got.Len() != 2 {
		t.Errorf("a*1 = %v", got)
	}
	if got := rr.Add(a, rr.Neg(a)); !rr.IsZero(got) {
		t.Errorf("a + (-a) = %v", got)
	}
}

func TestRelRingMulIsCartesianOnDisjoint(t *testing.T) {
	rr := RelRing{}
	a := MultisetOf(NewSchema("X"), Ints(1), Ints(2))
	b := MultisetOf(NewSchema("Y"), Ints(7), Ints(8), Ints(9))
	p := rr.Mul(a, b)
	if p.Len() != 6 {
		t.Errorf("|a×b| = %d, want 6", p.Len())
	}
	if !p.Schema().SameSet(NewSchema("X", "Y")) {
		t.Errorf("schema = %v", p.Schema())
	}
	if p.Mult(Ints(1, 7)) != 1 {
		t.Error("missing pair (1,7)")
	}
}

func TestRelRingMulNaturalJoin(t *testing.T) {
	rr := RelRing{}
	a := MultisetOf(NewSchema("X", "Y"), Ints(1, 1), Ints(2, 1))
	b := MultisetOf(NewSchema("Y", "Z"), Ints(1, 5))
	p := rr.Mul(a, b)
	if p.Len() != 2 {
		t.Errorf("|a⋈b| = %d, want 2", p.Len())
	}
	if p.Mult(Ints(1, 1, 5)) != 1 || p.Mult(Ints(2, 1, 5)) != 1 {
		t.Errorf("join contents wrong: %v", p)
	}
}

func TestRelRingAxiomsOnFixedSchema(t *testing.T) {
	rr := RelRing{}
	gen := func(rng *rand.Rand) *Multiset {
		if rng.Intn(5) == 0 {
			return nil
		}
		m := NewMultiset(NewSchema("X"))
		for i := 0; i < 1+rng.Intn(4); i++ {
			m.add(Ints(int64(rng.Intn(4))), int64(rng.Intn(5)-2))
		}
		if m.Len() == 0 {
			return nil
		}
		return m
	}
	eq := func(a, b *Multiset) bool {
		if a.Len() != b.Len() {
			return false
		}
		equal := true
		a.Iterate(func(t Tuple, m int64) bool {
			// Compare via projection since schemas may be ordered alike here.
			if b.Mult(t) != m {
				equal = false
				return false
			}
			return true
		})
		return equal
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		a, b, c := gen(rng), gen(rng), gen(rng)
		if !eq(rr.Add(a, b), rr.Add(b, a)) {
			t.Fatalf("Add not commutative")
		}
		if !eq(rr.Add(rr.Add(a, b), c), rr.Add(a, rr.Add(b, c))) {
			t.Fatalf("Add not associative")
		}
		if !rr.IsZero(rr.Add(a, rr.Neg(a))) {
			t.Fatalf("no additive inverse")
		}
		// Distributivity with a disjoint-schema multiplier.
		d := MultisetOf(NewSchema("Y"), Ints(9))
		if !eq2(rr.Mul(rr.Add(a, b), d), rr.Add(rr.Mul(a, d), rr.Mul(b, d))) {
			t.Fatalf("Mul does not distribute over Add")
		}
	}
}

// eq2 compares multisets over the same schema set.
func eq2(a, b *Multiset) bool {
	if a.Len() != b.Len() {
		return false
	}
	if a.Len() == 0 {
		return true
	}
	proj := MustProjector(b.Schema(), a.Schema())
	equal := true
	b.Iterate(func(t Tuple, m int64) bool {
		if a.Mult(proj.Apply(t)) != m {
			equal = false
			return false
		}
		return true
	})
	return equal
}

func TestMultisetProjectOnto(t *testing.T) {
	m := MultisetOf(NewSchema("X", "Y"), Ints(1, 1), Ints(1, 2), Ints(2, 1))
	p := m.ProjectOnto(NewSchema("X"))
	if p.Len() != 2 {
		t.Errorf("|proj| = %d, want 2", p.Len())
	}
	if p.Mult(Ints(1)) != 2 || p.Mult(Ints(2)) != 1 {
		t.Errorf("proj = %v", p)
	}
	// Projection onto the empty schema sums everything.
	e := m.ProjectOnto(Schema{})
	if e.Mult(Tuple{}) != 3 {
		t.Errorf("total = %d", e.Mult(Tuple{}))
	}
}

func TestMultisetCancellation(t *testing.T) {
	rr := RelRing{}
	a := MultisetOf(NewSchema("X"), Ints(1))
	b := rr.Neg(MultisetOf(NewSchema("X"), Ints(1)))
	if got := rr.Add(a, b); !rr.IsZero(got) {
		t.Errorf("a - a = %v", got)
	}
}
