package data

import (
	"fmt"

	"fivm/internal/ring"
)

// BaseUpdate is one relation's slice of a base-store batch: tuples applied
// with a signed multiplicity (negative = deletions). Tuple storage is shared
// with the caller and must not be mutated afterwards.
type BaseUpdate struct {
	Rel    string
	Tuples []Tuple
	// Mult is the signed multiplicity applied per tuple (never 0 inside the
	// store; callers' 0 defaults to +1 before reaching it).
	Mult int64
}

// BaseObserver receives, once per applied batch, the batch's updates
// restricted to the relations the observer registered for. Updates are
// shared and read-only; observers must not retain the slice beyond the call
// (the tuples themselves stay alive in the store's log).
type BaseObserver func(batch []BaseUpdate) error

// BaseStore is the shared base-relation store: the canonical multiplicity
// contents (the Z-ring multiset) of every registered base relation,
// advanced exactly once per applied batch, with attach/detach hooks through
// which any number of downstream consumers — maintained views, statistics
// collectors — observe each batch.
//
// This inverts the pre-DB data ownership: instead of every maintainer
// privately ingesting and copying the same update stream, the store ingests
// it once and fans it out. The stored contents are what late-registered
// consumers backfill from.
//
// Internally each relation is a lazily compacted update log: ApplyBatch
// appends the batch's tuple slices (shared, no copying or re-encoding) and
// the merged multiset is materialized only when someone asks for it (Base,
// typically a view backfill). The hot ingest path therefore does no
// per-tuple work at all — the coalescing cost is deferred to the rare
// reader that needs the merged view, and paid once.
//
// A BaseStore is single-writer: ApplyBatch, Base, and the lifecycle methods
// must come from one goroutine at a time (the maintenance goroutine).
// Observers run synchronously on that goroutine, in attach order.
type BaseStore struct {
	schemas map[string]Schema
	merged  map[string]*Relation[int64]
	pending map[string][]BaseUpdate
	names   []string // registration order

	obs []baseObserver

	// obsScratch is reused across ApplyBatch calls for per-observer
	// filtered views of the batch.
	obsScratch []BaseUpdate
}

type baseObserver struct {
	id   string
	rels map[string]bool // nil means every relation
	fn   BaseObserver
}

// NewBaseStore creates an empty store; relations are added with Register.
func NewBaseStore() *BaseStore {
	return &BaseStore{
		schemas: make(map[string]Schema),
		merged:  make(map[string]*Relation[int64]),
		pending: make(map[string][]BaseUpdate),
	}
}

// Register adds a base relation with its schema. Registering the same name
// twice is an error (schemas are canonical).
func (s *BaseStore) Register(rel string, schema Schema) error {
	if _, ok := s.schemas[rel]; ok {
		return fmt.Errorf("data: base relation %q already registered", rel)
	}
	s.schemas[rel] = schema
	s.merged[rel] = NewRelation[int64](ring.Int{}, schema)
	s.names = append(s.names, rel)
	return nil
}

// Relations returns the registered relation names in registration order.
func (s *BaseStore) Relations() []string { return s.names }

// Schema returns the canonical schema of a registered relation.
func (s *BaseStore) Schema(rel string) (Schema, bool) {
	sch, ok := s.schemas[rel]
	return sch, ok
}

// Base returns the merged multiplicity relation of a registered base
// relation (nil for unknown names), compacting the relation's pending
// update log first. It is owned by the store: callers may read it until the
// next ApplyBatch but must never mutate it. Maintenance-goroutine only.
func (s *BaseStore) Base(rel string) *Relation[int64] {
	m := s.merged[rel]
	if m == nil {
		return nil
	}
	if pend := s.pending[rel]; len(pend) > 0 {
		n := 0
		for _, u := range pend {
			n += len(u.Tuples)
		}
		m.Reserve(m.Len() + n)
		for _, u := range pend {
			for _, t := range u.Tuples {
				m.Merge(t, u.Mult)
			}
		}
		s.pending[rel] = pend[:0]
	}
	return m
}

// AdoptBase replaces the merged contents of a registered relation with r,
// discarding any pending log entries. It is the checkpoint-restore path: a
// recovery layer hands the store a freshly decoded multiplicity relation and
// the store owns it from then on. The relation's schema must equal the
// registered one.
func (s *BaseStore) AdoptBase(rel string, r *Relation[int64]) error {
	sch, ok := s.schemas[rel]
	if !ok {
		return fmt.Errorf("data: base relation %q not registered", rel)
	}
	if !sch.Equal(r.Schema()) {
		return fmt.Errorf("data: adopt %q: schema %v does not match registered %v", rel, r.Schema(), sch)
	}
	s.merged[rel] = r
	s.pending[rel] = nil
	return nil
}

// Attach registers an observer under an id for the given relations (nil or
// empty rels means all). Observers run synchronously per applied batch in
// attach order; detach by id. Attaching an id twice replaces the previous
// registration in place.
func (s *BaseStore) Attach(id string, rels []string, fn BaseObserver) {
	var set map[string]bool
	if len(rels) > 0 {
		set = make(map[string]bool, len(rels))
		for _, r := range rels {
			set[r] = true
		}
	}
	for i := range s.obs {
		if s.obs[i].id == id {
			s.obs[i] = baseObserver{id: id, rels: set, fn: fn}
			return
		}
	}
	s.obs = append(s.obs, baseObserver{id: id, rels: set, fn: fn})
}

// Detach removes the observer registered under id (a no-op for unknown ids).
func (s *BaseStore) Detach(id string) {
	for i := range s.obs {
		if s.obs[i].id == id {
			s.obs = append(s.obs[:i], s.obs[i+1:]...)
			return
		}
	}
}

// Observers returns the attached observer ids in attach order.
func (s *BaseStore) Observers() []string {
	out := make([]string, len(s.obs))
	for i, o := range s.obs {
		out[i] = o.id
	}
	return out
}

// ApplyBatch advances the store by one batch of per-relation updates —
// appended to each relation's pending log at pointer cost — and fans the
// batch out to every attached observer. Zero multiplicities default to +1;
// unknown relations and arity mismatches are errors, detected before any
// state changes. The batch slice itself may be reused by the caller after
// the call; tuple storage is adopted.
//
// Observer errors abort the fan-out and are returned; the store itself has
// already advanced, so the caller must treat the batch as torn and discard
// or rebuild the failed consumer.
func (s *BaseStore) ApplyBatch(batch []BaseUpdate) error {
	for i := range batch {
		u := &batch[i]
		sch, ok := s.schemas[u.Rel]
		if !ok {
			return fmt.Errorf("data: base relation %q not registered", u.Rel)
		}
		for _, t := range u.Tuples {
			if len(t) != len(sch) {
				return fmt.Errorf("data: %q tuple %v does not match schema %v", u.Rel, t, sch)
			}
		}
		if u.Mult == 0 {
			u.Mult = 1
		}
	}
	for _, u := range batch {
		if len(u.Tuples) == 0 {
			continue
		}
		s.pending[u.Rel] = append(s.pending[u.Rel], u)
	}
	for _, o := range s.obs {
		sub := batch
		if o.rels != nil {
			sub = s.obsScratch[:0]
			for _, u := range batch {
				if o.rels[u.Rel] && len(u.Tuples) > 0 {
					sub = append(sub, u)
				}
			}
			s.obsScratch = sub[:0]
		}
		if len(sub) == 0 {
			continue
		}
		if err := o.fn(sub); err != nil {
			return fmt.Errorf("data: base-store observer %q: %w", o.id, err)
		}
	}
	return nil
}

// LiftFrom fills dst with src's tuples, each mapped through lift from its
// multiplicity. It shares src's encoded keys and tuple storage (no
// re-encoding), which is what makes backfilling a view from a compacted
// base relation cheap; dst should be empty and share src's schema.
func LiftFrom[P any](dst *Relation[P], src *Relation[int64], lift func(n int64) P) {
	src.entries.all(func(e *Entry[int64]) bool {
		dst.MergeKey(e.key, e.Tuple, lift(e.Payload))
		return true
	})
}

// Tuples reports the total number of distinct tuples currently stored
// (compacting every pending log). Maintenance-goroutine only.
func (s *BaseStore) Tuples() int {
	n := 0
	for _, rel := range s.names {
		n += s.Base(rel).Len()
	}
	return n
}

// MemoryBytes estimates the bytes held by the stored base relations, merged
// contents and pending log alike (log tuples are shared slices; their
// backing storage is charged here as it is kept alive).
func (s *BaseStore) MemoryBytes() int {
	total := 0
	for _, r := range s.merged {
		total += 48
		r.Iterate(func(t Tuple, _ int64) bool {
			total += 48 + len(t)*24 + 8
			return true
		})
	}
	for _, pend := range s.pending {
		for _, u := range pend {
			total += 48
			for _, t := range u.Tuples {
				total += len(t) * 24
			}
		}
	}
	return total
}
