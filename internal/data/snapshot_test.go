package data

import (
	"fmt"
	"math/rand"
	"testing"

	"fivm/internal/ring"
)

// fingerprint renders a snapshot's sorted contents for equality checks.
func snapFingerprint[P any](s *RelationSnapshot[P]) string {
	out := ""
	for _, e := range s.SortedEntries() {
		out += fmt.Sprintf("%v=%v;", e.Tuple, e.Payload)
	}
	return out
}

func relFingerprint[P any](r *Relation[P]) string {
	out := ""
	for _, e := range r.SortedEntries() {
		out += fmt.Sprintf("%v=%v;", e.Tuple, e.Payload)
	}
	return out
}

// TestSnapshotMatchesRelation drives a relation through random merges and
// deletions, publishing snapshots along the way: every snapshot must equal
// the relation's state at publication, and previously pinned snapshots must
// not change as the relation keeps mutating.
func TestSnapshotMatchesRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := NewRelation[int64](ring.Int{}, NewSchema("A", "B"))

	type pinned struct {
		snap *RelationSnapshot[int64]
		fp   string
	}
	var pins []pinned
	for round := 0; round < 50; round++ {
		for i := 0; i < 40; i++ {
			tup := Ints(int64(rng.Intn(20)), int64(rng.Intn(5)))
			if rng.Intn(3) == 0 {
				if p, ok := r.Get(tup); ok {
					r.Merge(tup, -p) // cancel to zero: delete
					continue
				}
			}
			r.Merge(tup, int64(rng.Intn(5)+1))
		}
		s := r.Snapshot()
		if got, want := snapFingerprint(s), relFingerprint(r); got != want {
			t.Fatalf("round %d: snapshot diverges from relation:\n got %s\nwant %s", round, got, want)
		}
		if s.Len() != r.Len() {
			t.Fatalf("round %d: snapshot Len %d != relation Len %d", round, s.Len(), r.Len())
		}
		pins = append(pins, pinned{snap: s, fp: snapFingerprint(s)})
		// Every pinned snapshot must still read exactly as published.
		for i, p := range pins {
			if got := snapFingerprint(p.snap); got != p.fp {
				t.Fatalf("round %d: pinned snapshot %d changed", round, i)
			}
		}
	}
}

// TestSnapshotMutableRingIsolation checks that snapshots of relations with
// in-place payload accumulation (owned triples) deep-copy changed payloads:
// later merges must not bleed into a pinned snapshot.
func TestSnapshotMutableRingIsolation(t *testing.T) {
	cf := ring.Cofactor{}
	r := NewRelation[ring.Triple](cf, NewSchema("A"))
	one := ring.LiftValue(0, 2)
	r.Merge(Ints(1), one)
	s1 := r.Snapshot()
	fp1 := snapFingerprint(s1)
	for i := 0; i < 5; i++ {
		r.Merge(Ints(1), one) // AddInto mutates the live payload in place
	}
	s2 := r.Snapshot()
	if got := snapFingerprint(s1); got != fp1 {
		t.Fatalf("pinned snapshot mutated by in-place accumulation:\n got %s\nwant %s", got, fp1)
	}
	if snapFingerprint(s2) == fp1 {
		t.Fatalf("second snapshot did not observe the merges")
	}
	if got, want := snapFingerprint(s2), relFingerprint(r); got != want {
		t.Fatalf("snapshot diverges: got %s want %s", got, want)
	}
}

// TestSnapshotUnchangedIsShared verifies the no-change fast path returns the
// identical snapshot.
func TestSnapshotUnchangedIsShared(t *testing.T) {
	r := NewRelation[int64](ring.Int{}, NewSchema("A"))
	r.Merge(Ints(1), 1)
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if s1 != s2 {
		t.Fatalf("snapshot without changes should be shared")
	}
	r.Merge(Ints(2), 1)
	if s3 := r.Snapshot(); s3 == s2 {
		t.Fatalf("snapshot after a change must be fresh")
	}
}

// TestSnapshotDeleteThenReinsertOneEpoch is the regression test for dirty-
// list dedup: deleting a key and reinserting it within one publish epoch
// records the key twice (markEntry on the cancel, markInserted on the fresh
// entry), and the patch merge must see it exactly once — a duplicate key in
// the sorted dirty list would insert the entry twice into the merged chunk,
// corrupting the snapshot's sort invariant and Len.
func TestSnapshotDeleteThenReinsertOneEpoch(t *testing.T) {
	r := NewRelation[int64](ring.Int{}, NewSchema("A", "B"))
	for i := int64(0); i < 200; i++ {
		r.Merge(Ints(i, i%7), i+1)
	}
	r.Snapshot() // attach dirty tracking

	// One epoch: delete 40 keys, reinsert 25 of them with new payloads, and
	// delete-reinsert-delete a few more for odd touch counts.
	for i := int64(0); i < 40; i++ {
		tup := Ints(i*5, (i*5)%7)
		p, ok := r.Get(tup)
		if !ok {
			t.Fatalf("key %d missing before delete", i*5)
		}
		r.Merge(tup, -p)
		if i < 25 {
			r.Merge(tup, 1000+i)
		}
		if i >= 35 {
			r.Merge(tup, 7)
			if p, ok = r.Get(tup); !ok || p != 7 {
				t.Fatalf("key %d: payload %d after reinsert", i*5, p)
			}
			r.Merge(tup, -7)
		}
	}
	s := r.Snapshot()
	if got, want := snapFingerprint(s), relFingerprint(r); got != want {
		t.Fatalf("snapshot diverges after delete-then-reinsert epoch:\n got %s\nwant %s", got, want)
	}
	if s.Len() != r.Len() {
		t.Fatalf("snapshot Len %d != relation Len %d", s.Len(), r.Len())
	}
	// The sort invariant must hold: strictly increasing keys, no duplicates.
	es := s.SortedEntries()
	for i := 1; i < len(es); i++ {
		if es[i-1].key >= es[i].key {
			t.Fatalf("snapshot keys out of order or duplicated at %d: %q >= %q", i, es[i-1].key, es[i].key)
		}
	}
	// And the next epoch must still patch cleanly on top.
	r.Merge(Ints(0, 0), 3)
	if got, want := snapFingerprint(r.Snapshot()), relFingerprint(r); got != want {
		t.Fatalf("follow-up snapshot diverges:\n got %s\nwant %s", got, want)
	}
}

// TestSnapshotScanPrefix exercises prefix scans: every group of a leading
// variable must be contiguous and complete.
func TestSnapshotScanPrefix(t *testing.T) {
	r := NewRelation[int64](ring.Int{}, NewSchema("A", "B"))
	want := map[int64]int{}
	for a := int64(0); a < 30; a++ {
		for b := int64(0); b < int64(1+a%7); b++ {
			r.Merge(Ints(a, b), a*100+b+1)
			want[a]++
		}
	}
	s := r.Snapshot()
	for a := int64(-1); a <= 30; a++ {
		prefix := Tuple{Int(a)}.AppendKey(nil)
		got := 0
		s.ScanPrefix(prefix, func(e *Entry[int64]) bool {
			if e.Tuple[0].AsInt() != a {
				t.Fatalf("prefix scan for A=%d yielded tuple %v", a, e.Tuple)
			}
			got++
			return true
		})
		if got != want[a] {
			t.Fatalf("prefix scan A=%d: got %d entries, want %d", a, got, want[a])
		}
	}
	// Empty prefix scans everything, in key order.
	n := 0
	last := ""
	s.ScanPrefix(nil, func(e *Entry[int64]) bool {
		if e.Key() <= last && n > 0 {
			t.Fatalf("full scan out of order")
		}
		last = e.Key()
		n++
		return true
	})
	if n != r.Len() {
		t.Fatalf("full scan visited %d of %d entries", n, r.Len())
	}
}

// TestSnapshotAfterClear covers wholesale invalidation.
func TestSnapshotAfterClear(t *testing.T) {
	r := NewRelation[int64](ring.Int{}, NewSchema("A"))
	for i := int64(0); i < 300; i++ {
		r.Merge(Ints(i), i+1)
	}
	s1 := r.Snapshot()
	r.Clear()
	r.Merge(Ints(7), 9)
	s2 := r.Snapshot()
	if s1.Len() != 300 {
		t.Fatalf("pinned snapshot lost entries after Clear: %d", s1.Len())
	}
	if s2.Len() != 1 {
		t.Fatalf("post-Clear snapshot has %d entries, want 1", s2.Len())
	}
	if p, ok := s2.Get(Ints(7)); !ok || p != 9 {
		t.Fatalf("post-Clear snapshot Get = %d,%v", p, ok)
	}
}

// TestSealSharesEntries checks the one-shot Seal path.
func TestSealSharesEntries(t *testing.T) {
	r := NewRelation[int64](ring.Int{}, NewSchema("A", "B"))
	for i := int64(0); i < 200; i++ {
		r.Merge(Ints(i%17, i), 1)
	}
	s := r.Seal()
	if got, want := snapFingerprint(s), relFingerprint(r); got != want {
		t.Fatalf("sealed snapshot diverges")
	}
	if p, ok := s.Get(Ints(3, 3)); !ok || p != 1 {
		t.Fatalf("sealed Get = %d,%v", p, ok)
	}
}

// BenchmarkSnapshotPublish measures the incremental publish cost: a large
// relation with a small per-epoch change set.
func BenchmarkSnapshotPublish(b *testing.B) {
	r := NewRelation[int64](ring.Int{}, NewSchema("A", "B"))
	for i := int64(0); i < 100000; i++ {
		r.Merge(Ints(i, i%97), 1)
	}
	r.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := int64(i % 1000)
		for j := int64(0); j < 100; j++ {
			r.Merge(Ints(base*100+j, j%97), 1)
		}
		r.Snapshot()
	}
}
