package data

import (
	"math"
	"sort"
)

// sketchBits is the bitmap size of a VarSketch. 4096 bits (512 bytes) keeps
// linear counting within a few percent up to ~10k distinct values and
// saturates gracefully beyond — plenty for cardinality *ranking*, which is
// all the optimizer needs.
const sketchBits = 1 << 12

// VarSketch estimates the number of distinct values observed for one column
// by linear (bitmap) counting: each value sets one hash-addressed bit, and
// the distinct count is recovered from the fill fraction. Observing a value
// is one hash and one bit test — cheap enough for hot merge paths — and the
// estimate is monotone (deletions are ignored, as is standard for sketches).
type VarSketch struct {
	bits [sketchBits / 64]uint64
	set  int
}

// Observe records one value.
func (s *VarSketch) Observe(v Value) {
	h := v.Hash() & (sketchBits - 1)
	if s.bits[h>>6]&(1<<(h&63)) == 0 {
		s.bits[h>>6] |= 1 << (h & 63)
		s.set++
	}
}

// Distinct returns the linear-counting estimate of the distinct values
// observed. A saturated bitmap reports m·ln(m), the largest count the
// sketch can distinguish.
func (s *VarSketch) Distinct() float64 {
	m := float64(sketchBits)
	switch {
	case s.set == 0:
		return 0
	case s.set >= sketchBits:
		return m * math.Log(m)
	default:
		return -m * math.Log(1-float64(s.set)/m)
	}
}

// RelStats tracks one relation's statistics: its live cardinality, the
// cumulative number of delta tuples it has received (the update-rate
// signal), and one distinct-count sketch per column. A RelStats is either
// exact — attached to a Relation via CollectStats, which reports every
// insert/delete transition — or approximate, fed whole deltas where each
// entry counts as a net insert.
type RelStats struct {
	Schema Schema
	// Live is the current number of keys with non-zero payloads. Exact when
	// a Relation collects into this; otherwise an upper-bound approximation
	// (deletions encoded as negative-payload delta entries still count +1).
	Live int
	// Inserted is the cumulative number of insert transitions (or observed
	// delta entries, when approximate).
	Inserted int64
	// DeltaTuples is the cumulative number of delta entries routed at this
	// relation — the optimizer's per-relation update-rate signal.
	DeltaTuples int64

	exact    bool
	sketches []VarSketch
}

// NewRelStats creates empty statistics over a schema.
func NewRelStats(schema Schema) *RelStats {
	return &RelStats{Schema: schema, sketches: make([]VarSketch, len(schema))}
}

// Exact reports whether a Relation maintains these statistics transition-
// exactly.
func (rs *RelStats) Exact() bool { return rs.exact }

// ObserveInsert records an insert transition: a key appearing with non-zero
// payload. The tuple's values feed the per-column sketches.
func (rs *RelStats) ObserveInsert(t Tuple) {
	rs.Live++
	rs.Inserted++
	rs.observeValues(t)
}

// ObserveDelete records a delete transition: a key's payload cancelling to
// zero. Sketches are monotone and unaffected.
func (rs *RelStats) ObserveDelete() { rs.Live-- }

// ObserveRouted records one delta tuple passing through a routing path
// (Sharded.Merge): an update-rate event plus sketch observations, without a
// cardinality transition (the destination shard reports that).
func (rs *RelStats) ObserveRouted(t Tuple) {
	rs.DeltaTuples++
	rs.observeValues(t)
}

func (rs *RelStats) observeValues(t Tuple) {
	n := len(rs.sketches)
	for i, v := range t {
		if i >= n {
			break
		}
		rs.sketches[i].Observe(v)
	}
}

// Card returns the estimated current cardinality.
func (rs *RelStats) Card() float64 { return float64(rs.Live) }

// Distinct returns the estimated distinct count of a column, or 0 when the
// column is unknown or nothing was observed.
func (rs *RelStats) Distinct(v string) float64 {
	i := rs.Schema.IndexOf(v)
	if i < 0 || i >= len(rs.sketches) {
		return 0
	}
	return rs.sketches[i].Distinct()
}

// Stats is a database-wide statistics collector: one RelStats per relation.
// It is the optimizer's input — per-relation cardinalities, per-variable
// distinct counts, and observed delta rates — and is maintained incrementally
// by the relations and engines it is attached to. Not safe for concurrent
// mutation; parallel maintainers keep per-shard collectors.
type Stats struct {
	rels map[string]*RelStats
}

// NewStats creates an empty collector.
func NewStats() *Stats { return &Stats{rels: make(map[string]*RelStats)} }

// Rel returns the named relation's statistics, creating them over the given
// schema on first use.
func (st *Stats) Rel(name string, schema Schema) *RelStats {
	if rs, ok := st.rels[name]; ok {
		return rs
	}
	rs := NewRelStats(schema)
	st.rels[name] = rs
	return rs
}

// Lookup returns the named relation's statistics, or nil.
func (st *Stats) Lookup(name string) *RelStats {
	if st == nil {
		return nil
	}
	return st.rels[name]
}

// Relations returns the tracked relation names, sorted.
func (st *Stats) Relations() []string {
	out := make([]string, 0, len(st.rels))
	for name := range st.rels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TotalDeltaTuples sums the observed delta tuples across relations.
func (st *Stats) TotalDeltaTuples() int64 {
	if st == nil {
		return 0
	}
	var n int64
	for _, rs := range st.rels {
		n += rs.DeltaTuples
	}
	return n
}

// TotalCard sums the estimated cardinalities across relations.
func (st *Stats) TotalCard() float64 {
	if st == nil {
		return 0
	}
	total := 0.0
	for _, rs := range st.rels {
		total += rs.Card()
	}
	return total
}

// ObserveRelation bulk-observes a relation's current contents under the
// given name — the ANALYZE path used to seed a collector from loaded data.
func ObserveRelation[P any](st *Stats, name string, r *Relation[P]) {
	rs := st.Rel(name, r.Schema())
	r.Iterate(func(t Tuple, _ P) bool {
		rs.Live++
		rs.Inserted++
		rs.observeValues(t)
		return true
	})
}

// ObserveDeltaRelation records a delta arriving at the named relation: every
// entry counts toward the update rate, and — for relations without an exact
// transition feed — toward cardinality and the sketches too.
func ObserveDeltaRelation[P any](st *Stats, name string, schema Schema, d *Relation[P]) {
	rs := st.Rel(name, schema)
	rs.DeltaTuples += int64(d.Len())
	if rs.exact {
		return
	}
	d.Iterate(func(t Tuple, _ P) bool {
		rs.Live++
		rs.Inserted++
		rs.observeValues(t)
		return true
	})
}

// ObserveDeltaTuples is ObserveDeltaRelation for a raw (uncoalesced) tuple
// slice with a known signed multiplicity — the form the db.DB's shared
// ingest path observes, one pass for every view. Unlike coalesced deltas,
// the sign is visible here, so deletions decrement the cardinality
// approximation instead of inflating it.
func ObserveDeltaTuples(st *Stats, name string, schema Schema, tuples []Tuple, mult int64) {
	rs := st.Rel(name, schema)
	rs.DeltaTuples += int64(len(tuples))
	if rs.exact {
		return
	}
	if mult < 0 {
		rs.Live -= len(tuples)
		if rs.Live < 0 {
			rs.Live = 0
		}
		return
	}
	for _, t := range tuples {
		rs.Live++
		rs.Inserted++
		rs.observeValues(t)
	}
}

// Clone deep-copies the collector, sketches included. Clones start detached
// (not exact): each engine or shard owns and updates its own copy, so one
// ANALYZE pass can seed many concurrently running maintainers.
func (st *Stats) Clone() *Stats {
	if st == nil {
		return nil
	}
	out := NewStats()
	for name, rs := range st.rels {
		c := *rs
		c.exact = false
		c.sketches = append([]VarSketch(nil), rs.sketches...)
		out.rels[name] = &c
	}
	return out
}

// Snapshot captures the per-relation cardinalities and delta-rate shares at
// one instant, the baseline the drift test compares against.
type StatsSnapshot struct {
	Card       map[string]float64
	DeltaShare map[string]float64
}

// Snapshot captures the collector's current state.
func (st *Stats) Snapshot() StatsSnapshot {
	snap := StatsSnapshot{
		Card:       make(map[string]float64, len(st.rels)),
		DeltaShare: make(map[string]float64, len(st.rels)),
	}
	total := float64(st.TotalDeltaTuples())
	for name, rs := range st.rels {
		snap.Card[name] = rs.Card()
		if total > 0 {
			snap.DeltaShare[name] = float64(rs.DeltaTuples) / total
		}
	}
	return snap
}

// DriftFrom compares the current state against a snapshot and returns the
// largest per-relation cardinality growth/shrink factor (always >= 1) and
// the largest absolute shift in delta-rate share (in [0, 1]). The adaptive
// engine re-plans when either exceeds its threshold.
func (st *Stats) DriftFrom(snap StatsSnapshot) (cardFactor, shareDelta float64) {
	cardFactor = 1
	total := float64(st.TotalDeltaTuples())
	for name, rs := range st.rels {
		// Additive smoothing keeps tiny relations from reporting huge
		// factors on their first few tuples.
		now, then := rs.Card()+16, snap.Card[name]+16
		f := now / then
		if f < 1 {
			f = 1 / f
		}
		if f > cardFactor {
			cardFactor = f
		}
		if total > 0 {
			share := float64(rs.DeltaTuples) / total
			if d := math.Abs(share - snap.DeltaShare[name]); d > shareDelta {
				shareDelta = d
			}
		}
	}
	return cardFactor, shareDelta
}
