package data

import (
	"encoding/binary"
	"fmt"
)

// Binary value/tuple codec for persistence and wire formats (the WAL and
// checkpoint files of internal/wal, and the future epoch-shipping format).
// It is exactly the key encoding of Value.appendKey — self-delimiting,
// order-preserving per kind — so a decoded tuple re-encodes to the identical
// bytes and persisted keys compare like live ones.

// AppendValue appends the self-delimiting binary encoding of v to b. It is
// the same encoding AppendKey uses, exposed for serialization layers that
// need to decode it back (DecodeValue).
func AppendValue(b []byte, v Value) []byte { return v.appendKey(b) }

// DecodeValue decodes one value from the front of b, returning the value and
// the number of bytes consumed. Truncated or malformed input is an error,
// never a panic: persisted bytes may be torn at any offset.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Value{}, 0, fmt.Errorf("data: decode value: empty input")
	}
	switch Kind(b[0]) {
	case KindInt:
		if len(b) < 9 {
			return Value{}, 0, fmt.Errorf("data: decode int: %d of 9 bytes", len(b))
		}
		return Value{kind: KindInt, num: binary.BigEndian.Uint64(b[1:9]) ^ (1 << 63)}, 9, nil
	case KindFloat:
		if len(b) < 9 {
			return Value{}, 0, fmt.Errorf("data: decode float: %d of 9 bytes", len(b))
		}
		return Value{kind: KindFloat, num: binary.BigEndian.Uint64(b[1:9])}, 9, nil
	case KindString:
		n, used := binary.Uvarint(b[1:])
		if used <= 0 {
			return Value{}, 0, fmt.Errorf("data: decode string length")
		}
		start := 1 + used
		if n > uint64(len(b)-start) {
			return Value{}, 0, fmt.Errorf("data: decode string: %d bytes declared, %d available", n, len(b)-start)
		}
		return Value{kind: KindString, str: string(b[start : start+int(n)])}, start + int(n), nil
	default:
		return Value{}, 0, fmt.Errorf("data: decode value: unknown kind %d", b[0])
	}
}

// DecodeTuple decodes arity consecutive values from the front of b into a
// fresh tuple, returning it and the bytes consumed.
func DecodeTuple(b []byte, arity int) (Tuple, int, error) {
	t := make(Tuple, arity)
	at := 0
	for i := 0; i < arity; i++ {
		v, n, err := DecodeValue(b[at:])
		if err != nil {
			return nil, 0, fmt.Errorf("data: decode tuple value %d: %w", i, err)
		}
		t[i] = v
		at += n
	}
	return t, at, nil
}
