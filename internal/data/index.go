package data

import "fmt"

// Index is a secondary hash index over a relation: it maps the encoded
// projection of each key onto an index schema to the set of primary keys
// sharing that projection. Delta propagation probes sibling views through
// indexes to enumerate join partners without scanning.
type Index struct {
	on      Schema
	proj    Projector
	buckets map[string]map[string]struct{}
}

// NewIndex creates an empty index over the given relation schema, keyed by
// the on-variables.
func NewIndex(relSchema, on Schema) *Index {
	return &Index{
		on:      on,
		proj:    MustProjector(relSchema, on),
		buckets: make(map[string]map[string]struct{}),
	}
}

// On returns the index key schema.
func (ix *Index) On() Schema { return ix.on }

// Add records that primary key pk (whose tuple is t) is present.
func (ix *Index) Add(pk string, t Tuple) {
	k := ix.proj.Key(t)
	b := ix.buckets[k]
	if b == nil {
		b = make(map[string]struct{})
		ix.buckets[k] = b
	}
	b[pk] = struct{}{}
}

// Remove records that primary key pk (whose tuple is t) is gone.
func (ix *Index) Remove(pk string, t Tuple) {
	k := ix.proj.Key(t)
	if b := ix.buckets[k]; b != nil {
		delete(b, pk)
		if len(b) == 0 {
			delete(ix.buckets, k)
		}
	}
}

// Probe returns the primary keys whose projection matches the encoded key.
// The returned map must not be modified.
func (ix *Index) Probe(key string) map[string]struct{} { return ix.buckets[key] }

// Len returns the number of distinct index keys.
func (ix *Index) Len() int { return len(ix.buckets) }

// IndexedRelation wraps a Relation with incrementally maintained secondary
// indexes. Mutations must go through MergeIndexed (or Rebuild after bulk
// loads) so the indexes stay consistent.
type IndexedRelation[P any] struct {
	*Relation[P]
	indexes map[string]*Index
}

// NewIndexedRelation wraps an empty relation.
func NewIndexedRelation[P any](rel *Relation[P]) *IndexedRelation[P] {
	return &IndexedRelation[P]{Relation: rel, indexes: make(map[string]*Index)}
}

// EnsureIndex returns the index on the given variables, creating and
// populating it from the current contents if needed.
func (ir *IndexedRelation[P]) EnsureIndex(on Schema) *Index {
	name := on.String()
	if ix, ok := ir.indexes[name]; ok {
		return ix
	}
	ix := NewIndex(ir.Schema(), on)
	for pk, e := range ir.entries {
		ix.Add(pk, e.Tuple)
	}
	ir.indexes[name] = ix
	return ix
}

// Lookup returns the index on the given variables, or nil if absent.
func (ir *IndexedRelation[P]) Lookup(on Schema) *Index {
	return ir.indexes[on.String()]
}

// MergeIndexed merges payload p under tuple t and keeps all indexes
// consistent with key appearance and disappearance.
func (ir *IndexedRelation[P]) MergeIndexed(t Tuple, p P) {
	key := t.Key()
	_, existed := ir.entries[key]
	ir.MergeKey(key, t, p)
	_, exists := ir.entries[key]
	switch {
	case !existed && exists:
		for _, ix := range ir.indexes {
			ix.Add(key, t)
		}
	case existed && !exists:
		for _, ix := range ir.indexes {
			ix.Remove(key, t)
		}
	}
}

// MergeAllIndexed merges every entry of o, maintaining indexes.
func (ir *IndexedRelation[P]) MergeAllIndexed(o *Relation[P]) {
	if !ir.Schema().Equal(o.Schema()) && !ir.Schema().SameSet(o.Schema()) {
		panic(fmt.Sprintf("data: merge of incompatible schemas %v and %v", ir.Schema(), o.Schema()))
	}
	if ir.Schema().Equal(o.Schema()) {
		for _, e := range o.entries {
			ir.MergeIndexed(e.Tuple, e.Payload)
		}
		return
	}
	proj := MustProjector(o.Schema(), ir.Schema())
	for _, e := range o.entries {
		ir.MergeIndexed(proj.Apply(e.Tuple), e.Payload)
	}
}
