package data

import "fmt"

// Index is a secondary hash index over a relation: it maps the encoded
// projection of each key onto an index schema to the set of entries sharing
// that projection. Buckets hold the relation's entry pointers directly, so a
// probe yields tuples and payloads without a second lookup in the primary
// table. Delta propagation probes sibling views through indexes to
// enumerate join partners without scanning.
//
// The bucket directory is the same group-probed table as the primary
// storage (see swiss.go), with one directory node per distinct projected
// key whose payload is the bucket set; buckets themselves are hybrid
// slice/table EntrySets (see entryset.go).
type Index[P any] struct {
	on     Schema
	proj   Projector
	dir    entryTable[*EntrySet[P]]
	keyBuf []byte
}

// NewIndex creates an empty index over the given relation schema, keyed by
// the on-variables.
func NewIndex[P any](relSchema, on Schema) *Index[P] {
	return &Index[P]{
		on:   on,
		proj: MustProjector(relSchema, on),
	}
}

// On returns the index key schema.
func (ix *Index[P]) On() Schema { return ix.on }

// Add records that entry e is present in the relation.
func (ix *Index[P]) Add(e *Entry[P]) {
	ix.keyBuf = ix.proj.AppendKey(ix.keyBuf[:0], e.Tuple)
	h := hashBytes(ix.keyBuf)
	node := ix.dir.getBytes(h, ix.keyBuf)
	if node == nil {
		node = &Entry[*EntrySet[P]]{key: string(ix.keyBuf), hash: h, Payload: &EntrySet[P]{}}
		ix.dir.insert(node)
	}
	node.Payload.add(e)
}

// Remove records that entry e is gone from the relation.
func (ix *Index[P]) Remove(e *Entry[P]) {
	ix.keyBuf = ix.proj.AppendKey(ix.keyBuf[:0], e.Tuple)
	node := ix.dir.getBytes(hashBytes(ix.keyBuf), ix.keyBuf)
	if node == nil {
		return
	}
	node.Payload.remove(e)
	if node.Payload.Len() == 0 {
		ix.dir.del(node)
	}
}

// Probe returns the bucket of entries whose projection matches the encoded
// key; a miss returns nil, which iterates and counts as an empty set. The
// bucket is owned by the index and must not be modified.
func (ix *Index[P]) Probe(key string) *EntrySet[P] {
	if node := ix.dir.getString(hashString(key), key); node != nil {
		return node.Payload
	}
	return nil
}

// ProbeBytes is Probe for a key encoded in a caller-owned scratch buffer;
// the lookup does not allocate.
func (ix *Index[P]) ProbeBytes(key []byte) *EntrySet[P] {
	if node := ix.dir.getBytes(hashBytes(key), key); node != nil {
		return node.Payload
	}
	return nil
}

// Len returns the number of distinct index keys.
func (ix *Index[P]) Len() int { return ix.dir.len() }

// IndexedRelation wraps a Relation with incrementally maintained secondary
// indexes. Mutations must go through MergeIndexed (or Rebuild after bulk
// loads) so the indexes stay consistent.
type IndexedRelation[P any] struct {
	*Relation[P]
	indexes map[string]*Index[P]
}

// NewIndexedRelation wraps an empty relation.
func NewIndexedRelation[P any](rel *Relation[P]) *IndexedRelation[P] {
	return &IndexedRelation[P]{Relation: rel, indexes: make(map[string]*Index[P])}
}

// EnsureIndex returns the index on the given variables, creating and
// populating it from the current contents if needed.
func (ir *IndexedRelation[P]) EnsureIndex(on Schema) *Index[P] {
	name := on.String()
	if ix, ok := ir.indexes[name]; ok {
		return ix
	}
	ix := NewIndex[P](ir.Schema(), on)
	ir.entries.all(func(e *Entry[P]) bool {
		ix.Add(e)
		return true
	})
	ir.indexes[name] = ix
	return ix
}

// Lookup returns the index on the given variables, or nil if absent.
func (ir *IndexedRelation[P]) Lookup(on Schema) *Index[P] {
	return ir.indexes[on.String()]
}

// MergeIndexed merges payload p under tuple t and keeps all indexes
// consistent with key appearance and disappearance.
func (ir *IndexedRelation[P]) MergeIndexed(t Tuple, p P) {
	en, existed, exists := ir.mergeEntry(t, p)
	switch {
	case !existed && exists:
		for _, ix := range ir.indexes {
			ix.Add(en)
		}
	case existed && !exists:
		for _, ix := range ir.indexes {
			ix.Remove(en)
		}
	}
}

// mergeIndexedRef is MergeIndexed for a heap-resident source payload (another
// entry's stored payload): the source is read through its pointer, so wide
// payloads are never copied at the interface boundary. Requires ir.mut != nil.
func (ir *IndexedRelation[P]) mergeIndexedRef(t Tuple, p *P) {
	if en := ir.lookup(t); en != nil {
		ir.touchEntry(en)
		ir.addIntoEntry(en, p)
		if ir.isZeroRef(&en.Payload) {
			ir.removeEntry(en)
			for _, ix := range ir.indexes {
				ix.Remove(en)
			}
		}
		return
	}
	if ir.isZeroRef(p) {
		return
	}
	key := string(ir.keyBuf) // lookup left t's encoding in the scratch buffer
	en := ir.insertEntry(key, t)
	ir.setPayloadRef(en, p)
	for _, ix := range ir.indexes {
		ix.Add(en)
	}
}

// mergeProjectedIndexed is MergeIndexed for a projected tuple, materializing
// the projection only on insert. p must point at heap-resident storage and is
// only read.
func (ir *IndexedRelation[P]) mergeProjectedIndexed(proj Projector, t Tuple, p *P) {
	ir.keyBuf = proj.AppendKey(ir.keyBuf[:0], t)
	if en := ir.lookupScratch(); en != nil {
		var zero bool
		if ir.mut != nil {
			ir.touchEntry(en)
			ir.addIntoEntry(en, p)
			zero = ir.isZeroRef(&en.Payload)
		} else {
			s := ir.ring.Add(en.Payload, *p)
			zero = ir.ring.IsZero(s)
			if !zero {
				ir.markEntry(en)
				en.Payload = s
			}
		}
		if zero {
			ir.removeEntry(en)
			for _, ix := range ir.indexes {
				ix.Remove(en)
			}
		}
		return
	}
	if ir.isZeroRef(p) {
		return
	}
	key := string(ir.keyBuf)
	en := ir.insertEntry(key, proj.Apply(t))
	ir.setPayloadRef(en, p)
	for _, ix := range ir.indexes {
		ix.Add(en)
	}
}

// MergeAllIndexed merges every entry of o, maintaining indexes. Source
// payloads are entry-resident, so rings with pointer-source accumulation
// merge them without copying.
func (ir *IndexedRelation[P]) MergeAllIndexed(o *Relation[P]) {
	if !ir.Schema().Equal(o.Schema()) && !ir.Schema().SameSet(o.Schema()) {
		panic(fmt.Sprintf("data: merge of incompatible schemas %v and %v", ir.Schema(), o.Schema()))
	}
	if ir.Schema().Equal(o.Schema()) {
		if ir.mut != nil {
			o.entries.all(func(e *Entry[P]) bool {
				ir.mergeIndexedRef(e.Tuple, &e.Payload)
				return true
			})
			return
		}
		o.entries.all(func(e *Entry[P]) bool {
			ir.MergeIndexed(e.Tuple, e.Payload)
			return true
		})
		return
	}
	proj := MustProjector(o.Schema(), ir.Schema())
	o.entries.all(func(e *Entry[P]) bool {
		ir.mergeProjectedIndexed(proj, e.Tuple, &e.Payload)
		return true
	})
}
