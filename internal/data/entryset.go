package data

import "iter"

// setSmallMax is the bucket size up to which an EntrySet stays a plain
// slice: a linear scan of at most 16 pointers is one or two cache lines,
// faster than any hashing, and most join-key buckets never grow past it.
const setSmallMax = 16

// EntrySet is a set of relation entries sharing an index key — the bucket
// type of Index. Small sets are a dense slice; past setSmallMax entries the
// set promotes to a group-probed open-addressing table keyed by each entry's
// cached key hash (entries in one bucket share a projected key but have
// distinct full keys, so the cached hash is already a well-distributed,
// collision-checked identity). A nil *EntrySet is an empty set.
type EntrySet[P any] struct {
	small []*Entry[P] // linear mode; nil once promoted
	tab   entryTable[P]
}

// Len returns the number of entries in the set.
func (s *EntrySet[P]) Len() int {
	if s == nil {
		return 0
	}
	if s.small != nil || s.tab.ctrl == nil {
		return len(s.small)
	}
	return s.tab.len()
}

// add inserts e, which must not already be present and must have its key
// hash cached (true for every entry stored in a relation).
func (s *EntrySet[P]) add(e *Entry[P]) {
	if s.small != nil || s.tab.ctrl == nil {
		if len(s.small) < setSmallMax {
			s.small = append(s.small, e)
			return
		}
		// Promote: move the slice contents into the table.
		s.tab.reserve(2 * setSmallMax)
		for _, o := range s.small {
			s.tab.insert(o)
		}
		s.small = nil
	}
	s.tab.insert(e)
}

// remove deletes e if present.
func (s *EntrySet[P]) remove(e *Entry[P]) {
	if s.small != nil || s.tab.ctrl == nil {
		for i, o := range s.small {
			if o == e {
				last := len(s.small) - 1
				s.small[i] = s.small[last]
				s.small[last] = nil
				s.small = s.small[:last]
				return
			}
		}
		return
	}
	s.tab.del(e) // del compares pointer identity, so h2 collisions are safe
}

// All returns an iterator over the set's entries, in unspecified order. It
// is nil-safe, so probe misses range over nothing. The set must not be
// mutated during iteration.
func (s *EntrySet[P]) All() iter.Seq[*Entry[P]] {
	return func(yield func(*Entry[P]) bool) {
		if s == nil {
			return
		}
		for _, e := range s.small {
			if !yield(e) {
				return
			}
		}
		if s.small != nil {
			return
		}
		for _, e := range s.tab.slots {
			if e != nil && !yield(e) {
				return
			}
		}
	}
}
