package bench

import (
	"fivm/internal/data"
	"fivm/internal/datasets"
	"fivm/internal/ivm"
	"fivm/internal/query"
	"fivm/internal/ring"
	"fivm/internal/vorder"
)

// --- delta builders ----------------------------------------------------------

// intDelta turns a batch into a multiplicity delta.
func intDelta(q query.Query) func(b datasets.Batch) *data.Relation[int64] {
	return func(b datasets.Batch) *data.Relation[int64] {
		rd, _ := q.Rel(b.Rel)
		d := data.NewRelation[int64](ring.Int{}, rd.Schema)
		d.Reserve(len(b.Tuples))
		for _, t := range b.Tuples {
			d.Merge(t, 1)
		}
		return d
	}
}

// floatDelta turns a batch into a float multiplicity delta.
func floatDelta(q query.Query) func(b datasets.Batch) *data.Relation[float64] {
	return func(b datasets.Batch) *data.Relation[float64] {
		rd, _ := q.Rel(b.Rel)
		d := data.NewRelation[float64](ring.Float{}, rd.Schema)
		d.Reserve(len(b.Tuples))
		for _, t := range b.Tuples {
			d.Merge(t, 1)
		}
		return d
	}
}

// tripleDelta turns a batch into a cofactor-ring delta (identity payloads).
func tripleDelta(q query.Query) func(b datasets.Batch) *data.Relation[ring.Triple] {
	cf := ring.Cofactor{}
	return func(b datasets.Batch) *data.Relation[ring.Triple] {
		rd, _ := q.Rel(b.Rel)
		d := data.NewRelation[ring.Triple](cf, rd.Schema)
		d.Reserve(len(b.Tuples))
		one := cf.One()
		for _, t := range b.Tuples {
			d.Merge(t, one)
		}
		return d
	}
}

// degMapDelta turns a batch into a degree-map-ring delta.
func degMapDelta(q query.Query) func(b datasets.Batch) *data.Relation[ring.DegMap] {
	dm := ring.DegreeMap{}
	return func(b datasets.Batch) *data.Relation[ring.DegMap] {
		rd, _ := q.Rel(b.Rel)
		d := data.NewRelation[ring.DegMap](dm, rd.Schema)
		d.Reserve(len(b.Tuples))
		for _, t := range b.Tuples {
			d.Merge(t, dm.One())
		}
		return d
	}
}

// --- lifting functions ---------------------------------------------------------

// tripleLift maps every variable value to its regression lifting.
func tripleLift(vars data.Schema) data.LiftFunc[ring.Triple] {
	idx := make(map[string]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	return func(v string, x data.Value) ring.Triple {
		return ring.LiftValue(idx[v], x.AsFloat())
	}
}

// degMapLift is the SQL-OPT (degree-indexed) lifting.
func degMapLift(vars data.Schema) data.LiftFunc[ring.DegMap] {
	idx := make(map[string]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	return func(v string, x data.Value) ring.DegMap {
		return ring.LiftDegMap(idx[v], x.AsFloat())
	}
}

// oneFloatLift maps everything to 1 (COUNT in the Float ring).
func oneFloatLift(string, data.Value) float64 { return 1 }

// sumLift sums the given variable (SUM(target) in the Float ring).
func sumLift(target string) data.LiftFunc[float64] {
	return func(v string, x data.Value) float64 {
		if v == target {
			return x.AsFloat()
		}
		return 1
	}
}

// --- cofactor strategy constructors -------------------------------------------

// cofactorStrategies builds the Figure 7/12/13 competitor set for a dataset.
// Which of them are included is up to the caller; the scalar per-aggregate
// strategies (DBT, 1-IVM) are orders of magnitude slower and are usually run
// on a stream prefix with a timeout.
type cofactorStrategies struct {
	q    query.Query
	vars data.Schema
	// stats, when set, is cloned into every engine built with a nil order so
	// it can self-plan from dataset statistics (the -auto-order path). Each
	// engine gets its own clone: collectors are single-owner.
	stats *data.Stats
}

func newCofactorStrategies(q query.Query) cofactorStrategies {
	return cofactorStrategies{q: q, vars: q.Vars()}
}

// FIVM builds the F-IVM engine with the cofactor (degree-m matrix) ring.
func (c cofactorStrategies) FIVM(o *vorder.Order, updatable []string) (ivm.Maintainer[ring.Triple], error) {
	return ivm.New[ring.Triple](c.q, o, ring.Cofactor{}, tripleLift(c.vars), ivm.Options[ring.Triple]{
		Updatable:     updatable,
		ComposeChains: true,
		Stats:         c.stats.Clone(),
	})
}

// SQLOPT builds the same view tree with the degree-map encoding.
func (c cofactorStrategies) SQLOPT(o *vorder.Order, updatable []string) (ivm.Maintainer[ring.DegMap], error) {
	return ivm.New[ring.DegMap](c.q, o, ring.DegreeMap{}, degMapLift(c.vars), ivm.Options[ring.DegMap]{
		Updatable:     updatable,
		ComposeChains: true,
		Stats:         c.stats.Clone(),
	})
}

// DBTRing builds DBToaster-style recursive IVM with the cofactor ring.
func (c cofactorStrategies) DBTRing(updatable []string) (ivm.Maintainer[ring.Triple], error) {
	return ivm.NewRecursive[ring.Triple](c.q, ring.Cofactor{}, tripleLift(c.vars), updatable)
}

// DBTScalar builds recursive IVM with one scalar hierarchy per aggregate.
func (c cofactorStrategies) DBTScalar(updatable []string) (*ivm.MultiRecursive, error) {
	return ivm.NewMultiRecursive(c.q, ivm.CofactorAggSpecs(c.vars), updatable)
}

// FirstOrderScalar builds first-order IVM with one delta query per aggregate.
func (c cofactorStrategies) FirstOrderScalar(o *vorder.Order) (*ivm.MultiFirstOrder, error) {
	return ivm.NewMultiFirstOrder(c.q, o, ivm.CofactorAggSpecs(c.vars))
}

// analyze seeds a statistics collector from a dataset's generated contents
// (cardinalities, per-column distinct sketches) plus uniform delta-rate
// observations matching the round-robin stream synthesis — the ANALYZE pass
// the self-planning engines consume.
func analyze(ds *datasets.Dataset) *data.Stats {
	st := data.NewStats()
	for rel, ts := range ds.Tuples {
		rd, _ := ds.Query.Rel(rel)
		rs := st.Rel(rel, rd.Schema)
		for _, t := range ts {
			rs.ObserveInsert(t)
		}
		rs.DeltaTuples = int64(len(ts))
	}
	return st
}

// parallelize wraps a maintainer factory in a sharded parallel maintainer
// over the given worker count; workers <= 1 returns the plain maintainer.
// The caller should closeMaintainer the result after its run to stop the
// worker pool.
func parallelize[P any](q query.Query, r ring.Ring[P], workers int, factory func() (ivm.Maintainer[P], error)) (ivm.Maintainer[P], error) {
	if workers <= 1 {
		return factory()
	}
	return ivm.NewParallel[P](q, r, workers, factory)
}

// attachRouterStats hooks the ANALYZE collector into a parallel
// maintainer's routing path, so the collector's delta rates stay current
// across the run (no-op for sequential maintainers or absent stats).
func attachRouterStats[P any](m ivm.Maintainer[P], st *data.Stats) {
	if st == nil {
		return
	}
	if p, ok := m.(*ivm.Parallel[P]); ok {
		p.CollectStats(st)
	}
}

// closeMaintainer stops a parallel maintainer's worker pool; plain
// maintainers are left untouched.
func closeMaintainer(m any) {
	if c, ok := m.(interface{ Close() error }); ok {
		c.Close()
	}
}

// preload loads every relation except those in skip into the maintainer and
// runs Init — the ONE-scenario setup where only the stream relation changes.
func preload[P any](m ivm.Maintainer[P], ds *datasets.Dataset, toDelta func(b datasets.Batch) *data.Relation[P], skip map[string]bool) error {
	for rel, tuples := range ds.Tuples {
		if skip[rel] {
			continue
		}
		if err := m.Load(rel, toDelta(datasets.Batch{Rel: rel, Tuples: tuples})); err != nil {
			return err
		}
	}
	return m.Init()
}

// initEmpty runs Init with no preloaded data (the full-stream scenario).
func initEmpty[P any](m ivm.Maintainer[P]) error { return m.Init() }
