package bench

import (
	"strings"
	"testing"
	"time"

	"fivm/internal/datasets"
)

// The experiment functions are exercised at tiny scale so `go test ./...`
// regenerates every figure end to end; shape assertions check the paper's
// qualitative claims where they are robust at small scale.

func tinyFig6() Fig6Config {
	return Fig6Config{Ns: []int{8, 16}, N: 24, Ranks: []int{1, 4}, Updates: 2, Seed: 1}
}

func TestFig6Left(t *testing.T) {
	tb := Fig6Left(tinyFig6())
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if !strings.Contains(tb.Title, "Figure 6") {
		t.Error("title")
	}
}

func TestFig6Right(t *testing.T) {
	tb := Fig6Right(tinyFig6())
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func tinyRetailer() datasets.RetailerConfig {
	return datasets.RetailerConfig{Locations: 4, Dates: 8, Items: 20, ItemsPerLocDate: 4, Seed: 1}
}

func tinyHousing() datasets.HousingConfig {
	return datasets.HousingConfig{Postcodes: 30, Scale: 1, Seed: 2}
}

func tinyTwitter() datasets.TwitterConfig {
	return datasets.TwitterConfig{Users: 40, Edges: 240, Seed: 3}
}

func TestFig7RetailerShape(t *testing.T) {
	cfg := Fig7Config{
		Dataset:       "retailer",
		BatchSize:     50,
		Timeout:       2 * time.Second,
		Retailer:      tinyRetailer(),
		IncludeScalar: true,
	}
	tables := Fig7(cfg)
	if len(tables) != 3 {
		t.Fatalf("tables = %d", len(tables))
	}
	sum := tables[0]
	views := map[string]string{}
	for _, row := range sum.Rows {
		views[row[0]] = row[1]
	}
	// Paper view counts: F-IVM 9, DBT-RING 13, 1-IVM 995.
	if views["F-IVM"] != "9" {
		t.Errorf("F-IVM views = %s, want 9", views["F-IVM"])
	}
	if views["DBT-RING"] != "13" {
		t.Errorf("DBT-RING views = %s, want 13", views["DBT-RING"])
	}
	if views["1-IVM"] != "995" {
		t.Errorf("1-IVM views = %s, want 995", views["1-IVM"])
	}
}

func TestFig7Housing(t *testing.T) {
	cfg := Fig7Config{
		Dataset:       "housing",
		BatchSize:     50,
		Timeout:       2 * time.Second,
		Housing:       tinyHousing(),
		IncludeScalar: false,
	}
	tables := Fig7(cfg)
	sum := tables[0]
	views := map[string]string{}
	for _, row := range sum.Rows {
		views[row[0]] = row[1]
	}
	// Paper: 7 views for F-IVM on Housing (star join).
	if views["F-IVM"] != "7" {
		t.Errorf("F-IVM views = %s, want 7", views["F-IVM"])
	}
}

func TestFig8RetailerRuns(t *testing.T) {
	cfg := DefaultFig8("retailer")
	cfg.Retailer = tinyRetailer()
	cfg.BatchSize = 30
	cfg.Timeout = 2 * time.Second
	tables := Fig8Retailer(cfg)
	if len(tables) != 3 || len(tables[0].Rows) != 3 {
		t.Fatalf("unexpected table shape")
	}
}

func TestFig8HousingShape(t *testing.T) {
	cfg := DefaultFig8("housing")
	cfg.Housing = datasets.HousingConfig{Postcodes: 15, Scale: 1, Seed: 2}
	cfg.Scales = []int{1, 3}
	cfg.BatchSize = 30
	cfg.Timeout = 3 * time.Second
	tb := Fig8Housing(cfg)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestFig11Runs(t *testing.T) {
	cfg := Fig11Config{
		BatchSize: 50,
		Timeout:   2 * time.Second,
		Retailer:  tinyRetailer(),
		Housing:   tinyHousing(),
	}
	tb := Fig11(cfg)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestFig12Runs(t *testing.T) {
	cfg := Fig12Config{
		BatchSizes: []int{20, 100},
		Timeout:    2 * time.Second,
		Retailer:   tinyRetailer(),
		Housing:    tinyHousing(),
		Twitter:    tinyTwitter(),
	}
	tb := Fig12(cfg)
	// 3 datasets × 3 strategies.
	if len(tb.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(tb.Rows))
	}
}

func TestFig13Runs(t *testing.T) {
	cfg := Fig13Config{BatchSize: 50, Timeout: 2 * time.Second, Twitter: tinyTwitter(), IncludeScalar: true}
	tables := Fig13(cfg)
	if len(tables) != 3 {
		t.Fatalf("tables = %d", len(tables))
	}
	if len(tables[0].Rows) != 5 {
		t.Fatalf("strategies = %d, want 5", len(tables[0].Rows))
	}
}

func TestTriangleIndicatorShape(t *testing.T) {
	cfg := Fig13Config{BatchSize: 50, Timeout: 2 * time.Second, Twitter: tinyTwitter(), IncludeScalar: true}
	tb := TriangleIndicator(cfg)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Same triangle count in both variants.
	if tb.Rows[0][1] != tb.Rows[1][1] {
		t.Errorf("triangle counts differ: %s vs %s", tb.Rows[0][1], tb.Rows[1][1])
	}
}

func TestAutoOrderAblationShape(t *testing.T) {
	cfg := AutoOrderConfig{
		BatchSize: 50,
		Timeout:   2 * time.Second,
		Retailer:  tinyRetailer(),
		Housing:   tinyHousing(),
		Twitter:   tinyTwitter(),
	}
	tables := AutoOrder(cfg)
	if len(tables) != 3 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != 3 {
			t.Fatalf("%s: rows = %d, want 3", tb.Title, len(tb.Rows))
		}
		for _, row := range tb.Rows {
			if row[len(row)-1] != "ok" {
				t.Errorf("%s: %s status %s", tb.Title, row[0], row[len(row)-1])
			}
		}
	}
}

func TestFig7AutoOrderRuns(t *testing.T) {
	cfg := Fig7Config{
		Dataset:   "retailer",
		BatchSize: 50,
		Timeout:   2 * time.Second,
		Retailer:  tinyRetailer(),
		AutoOrder: true,
	}
	tables := Fig7(cfg)
	views := map[string]string{}
	for _, row := range tables[0].Rows {
		views[row[0]] = row[1]
	}
	// The optimizer reproduces the paper's 9-view order on Retailer.
	if views["F-IVM"] != "9" {
		t.Errorf("auto-order F-IVM views = %s, want 9", views["F-IVM"])
	}
}

func TestExplainReportRuns(t *testing.T) {
	ds := datasets.GenTwitter(tinyTwitter())
	for _, auto := range []bool{false, true} {
		s := ExplainReport(ds, auto)
		for _, frag := range []string{"order:", "width:", "estimated cost:", "views"} {
			if !strings.Contains(s, frag) {
				t.Errorf("explain(auto=%v) missing %q:\n%s", auto, frag, s)
			}
		}
	}
}

func TestTableFormat(t *testing.T) {
	tb := &Table{Title: "T", Note: "n", Header: []string{"a", "bb"}}
	tb.AddRow("x", 42)
	tb.AddRow(1.5, "y")
	s := tb.Format()
	for _, frag := range []string{"== T ==", "a", "bb", "42", "1.5"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Format missing %q:\n%s", frag, s)
		}
	}
}

func TestRunStreamSamplesAndTimeout(t *testing.T) {
	ds := datasets.GenHousing(tinyHousing())
	stream := datasets.RoundRobinStream(ds, ds.Query.RelNames(), 10)
	slow := loaderFunc{
		apply: func(b datasets.Batch) error { time.Sleep(2 * time.Millisecond); return nil },
	}
	res := RunStream("slow", slow, stream, RunOptions{Samples: 5, Timeout: 10 * time.Millisecond})
	if !res.TimedOut {
		t.Error("expected timeout")
	}
	if res.Tuples == 0 || res.Tuples >= ds.TotalTuples() {
		t.Errorf("partial progress expected, got %d", res.Tuples)
	}
	fast := loaderFunc{apply: func(b datasets.Batch) error { return nil }}
	res = RunStream("fast", fast, stream, RunOptions{Samples: 5})
	if res.TimedOut || res.Tuples != ds.TotalTuples() {
		t.Errorf("fast run: %+v", res)
	}
	if len(res.Points) == 0 {
		t.Error("no sample points")
	}
}

type loaderFunc struct {
	apply func(b datasets.Batch) error
}

func (l loaderFunc) ApplyBatches(bs []datasets.Batch) error {
	for _, b := range bs {
		if err := l.apply(b); err != nil {
			return err
		}
	}
	return nil
}
func (l loaderFunc) ViewCount() int   { return 0 }
func (l loaderFunc) MemoryBytes() int { return 0 }

func TestFormatHelpers(t *testing.T) {
	if fmtMem(512) != "512B" || !strings.Contains(fmtMem(2<<20), "MiB") {
		t.Error("fmtMem")
	}
	if !strings.Contains(fmtTput(2e6), "M/s") || !strings.Contains(fmtTput(50), "/s") {
		t.Error("fmtTput")
	}
	if !strings.Contains(fmtDur(2), "s") || !strings.Contains(fmtDur(2e-3), "ms") || !strings.Contains(fmtDur(2e-6), "µs") {
		t.Error("fmtDur")
	}
}

func TestFig7MixedReaders(t *testing.T) {
	cfg := Fig7Config{
		Dataset:   "retailer",
		BatchSize: 50,
		Timeout:   2 * time.Second,
		Retailer:  tinyRetailer(),
		Readers:   2,
	}
	tables := Fig7(cfg)
	if len(tables) != 4 {
		t.Fatalf("tables = %d, want 4 (summary, traces, readers)", len(tables))
	}
	readers := tables[3]
	if !strings.Contains(readers.Title, "concurrent readers") {
		t.Fatalf("reader table title = %q", readers.Title)
	}
	if len(readers.Rows) == 0 {
		t.Fatalf("reader table is empty")
	}
	for _, row := range readers.Rows {
		if row[1] != "2" {
			t.Errorf("%s: readers column = %s, want 2", row[0], row[1])
		}
		if row[2] == "0.0/s" {
			t.Errorf("%s: no reader throughput", row[0])
		}
	}
}

func TestRunMixedEpochsAdvance(t *testing.T) {
	ds := datasets.GenRetailer(tinyRetailer())
	cs := newCofactorStrategies(ds.Query)
	m, err := cs.FIVM(ds.NewOrder(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	stream := datasets.RoundRobinStream(ds, ds.Query.RelNames(), 50)
	mr := RunMixed("F-IVM", m, tripleDelta(ds.Query), stream, RunOptions{Readers: 2})
	if mr.Reader.Ops == 0 {
		t.Fatalf("readers performed no operations")
	}
	if mr.Reader.FinalEpoch == 0 {
		t.Fatalf("readers never observed a published epoch")
	}
	if mr.Err != nil {
		t.Fatalf("maintenance error: %v", mr.Err)
	}
}

// BenchmarkMultiView is the shared-ingest compile-and-run smoke for CI: one
// DB fanning a stream out to 4 concurrent views versus 4 separate engines.
func BenchmarkMultiView(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultMultiView()
		cfg.Views = 4
		cfg.BatchSize = 50
		cfg.Retailer = tinyRetailer()
		for _, tbl := range MultiView(cfg) {
			if len(tbl.Rows) == 0 {
				b.Fatalf("empty table %q", tbl.Title)
			}
		}
	}
}

// TestMultiViewRuns checks both sides complete without maintenance errors.
func TestMultiViewRuns(t *testing.T) {
	cfg := DefaultMultiView()
	cfg.Views = 3
	cfg.BatchSize = 100
	cfg.Retailer = tinyRetailer()
	tables := MultiView(cfg)
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, row := range tables[1].Rows {
		if row[len(row)-1] != "ok" {
			t.Errorf("run %q ended %q", row[0], row[len(row)-1])
		}
	}
}

// BenchmarkFig7MixedReaders is the mixed-workload compile-and-run smoke for
// CI: maintenance streaming with concurrent snapshot readers.
func BenchmarkFig7MixedReaders(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := Fig7Config{
			Dataset:   "retailer",
			BatchSize: 50,
			Timeout:   2 * time.Second,
			Retailer:  tinyRetailer(),
			Readers:   2,
		}
		Fig7(cfg)
	}
}
