package bench

import (
	"os"
	"time"

	"fivm/internal/datasets"
	"fivm/internal/db"
	"fivm/internal/ring"
	"fivm/internal/wal"
)

// WALBenchConfig sizes the durability-overhead scenario: the fig7 cofactor
// view maintained through db.DB over the retailer stream, once without a WAL
// and once appending every batch to a segmented WAL.
type WALBenchConfig struct {
	Retailer  datasets.RetailerConfig
	BatchSize int
	Workers   int
	// Dir is the parent directory for WAL files; empty uses the system temp
	// dir. Each run writes into a fresh subdirectory (recovery-on-open would
	// otherwise replay the previous run) that is removed afterwards.
	Dir string
	// Fsync is the WAL's sync policy. The committed baseline uses
	// wal.FsyncNever: it measures the append/encode path without the
	// device-dependent fsync cost, which is what a cross-machine regression
	// threshold can hold steady.
	Fsync wal.FsyncPolicy
}

// WALBench runs the scenario and returns one row without a WAL and one with.
// The pair makes the durability overhead visible within a single report, and
// both rows are compared against the committed baseline by benchdiff.
func WALBench(cfg WALBenchConfig) []RunResult {
	ds := datasets.GenRetailer(cfg.Retailer)
	stream := datasets.RoundRobinStream(ds, ds.Query.RelNames(), cfg.BatchSize)
	return []RunResult{
		walRun("db-no-wal", ds, stream, cfg, false),
		walRun("db-wal", ds, stream, cfg, true),
	}
}

// walRun drives one db.DB over the stream with the fig7 cofactor view
// registered, optionally logging every batch to a WAL in a fresh directory.
func walRun(name string, ds *datasets.Dataset, stream []datasets.Batch, cfg WALBenchConfig, durable bool) RunResult {
	res := RunResult{Name: name}

	var dur *db.DurabilityOptions
	if durable {
		dir, err := os.MkdirTemp(cfg.Dir, "fivm-walbench-*")
		if err != nil {
			res.Err = err
			return res
		}
		defer os.RemoveAll(dir)
		dur = &db.DurabilityOptions{Dir: dir, Fsync: cfg.Fsync}
	}

	cat := db.Catalog{}
	for _, rd := range ds.Query.Rels {
		cat[rd.Name] = rd.Schema
	}
	d, err := db.Open(cat, db.Options{Durability: dur})
	if err != nil {
		res.Err = err
		return res
	}
	defer d.Close()
	if _, err := db.CreateView[ring.Triple](d, "cofactor", ds.Query.Rename("cofactor"),
		ring.Cofactor{}, tripleLift(ds.Query.Vars()),
		db.ViewOptions{Workers: cfg.Workers, ComposeChains: true}); err != nil {
		res.Err = err
		return res
	}

	lats := make([]time.Duration, 0, len(stream))
	up := make([]db.Update, 1)
	start := time.Now()
	for _, b := range stream {
		up[0] = db.Update{Rel: b.Rel, Tuples: b.Tuples, Mult: 1}
		bs := time.Now()
		if err := d.Apply(up); err != nil {
			res.Err = err
			break
		}
		lats = append(lats, time.Since(bs))
		res.Tuples += len(b.Tuples)
	}
	res.Elapsed = time.Since(start)
	if s := res.Elapsed.Seconds(); s > 0 {
		res.Throughput = float64(res.Tuples) / s
	}
	res.Views = 1
	res.PeakMem = d.MemoryBytes()
	res.P50Batch = percentile(lats, 0.50)
	res.P99Batch = percentile(lats, 0.99)
	return res
}
