package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// ReportSchema identifies the BENCH JSON layout; bump on breaking changes so
// benchdiff refuses to compare incompatible files.
const ReportSchema = "fivm-bench/v1"

// Report is the machine-readable benchmark artifact (BENCH_*.json at the
// repo root): per-scenario maintenance results plus hot-path microbenchmark
// numbers, with enough environment metadata to judge comparability.
type Report struct {
	Schema    string `json:"schema"`
	CreatedAt string `json:"created_at,omitempty"`
	Go        string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`

	Scenarios []ScenarioResult `json:"scenarios"`
	Micro     []MicroResult    `json:"micro"`
}

// ScenarioResult is one (scenario, case) row: a maintenance strategy driven
// through a stream, or one side of the multiview experiment.
type ScenarioResult struct {
	// Scenario is the experiment family: fig7, fig13, mixed, multiview.
	Scenario string `json:"scenario"`
	// Case identifies the run within the scenario (strategy or mode name).
	Case    string `json:"case"`
	Batch   int    `json:"batch,omitempty"`
	Group   int    `json:"group,omitempty"`
	Workers int    `json:"workers,omitempty"`
	Readers int    `json:"readers,omitempty"`
	Views   int    `json:"views,omitempty"`

	Tuples        int     `json:"tuples"`
	ThroughputTPS float64 `json:"throughput_tps"`
	P50BatchNs    int64   `json:"p50_batch_ns,omitempty"`
	P99BatchNs    int64   `json:"p99_batch_ns,omitempty"`
	// PeakMemBytes is the maintainer's own accounting of materialized state;
	// PeakRSSBytes is the process-level high-water mark sampled from
	// runtime.ReadMemStats (Sys: bytes obtained from the OS) after the run.
	PeakMemBytes int    `json:"peak_mem_bytes,omitempty"`
	PeakRSSBytes uint64 `json:"peak_rss_bytes,omitempty"`
	// ReaderOpsPerSec is the aggregate snapshot-reader throughput of mixed
	// runs (zero elsewhere).
	ReaderOpsPerSec float64 `json:"reader_ops_per_sec,omitempty"`
	// StalenessP50Ns / StalenessP99Ns are replication-lag percentiles of the
	// serve scenario's follower: the delay between the primary publishing an
	// applied count and the follower publishing the same one (zero
	// elsewhere).
	StalenessP50Ns int64  `json:"staleness_p50_ns,omitempty"`
	StalenessP99Ns int64  `json:"staleness_p99_ns,omitempty"`
	Status         string `json:"status"`
}

// MicroResult is one hot-path microbenchmark measurement (see micro.go).
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// NewReport returns an empty report stamped with the current environment.
func NewReport() *Report {
	return &Report{
		Schema:    ReportSchema,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadReport loads and validates a BENCH JSON file.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("bench: %s: schema %q, want %q", path, r.Schema, ReportSchema)
	}
	return &r, nil
}

// DeltaSummary renders a per-row comparison of two reports as an aligned
// text table: every baseline scenario row (baseline → current tuples/s) and
// every microbenchmark (baseline → current ns/op), each with its relative
// change, followed by rows that exist only in the current report. Compare
// decides pass/fail; this is the context benchdiff prints alongside a clean
// verdict so improvements are visible, not just the absence of regressions.
func DeltaSummary(base, cur *Report) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "kind\tname\tbaseline\tcurrent\tdelta")
	delta := func(old, new float64, downIsBetter bool) string {
		if old <= 0 {
			return "n/a"
		}
		d := (new - old) / old * 100
		better := d < 0 == downIsBetter
		mark := ""
		if d != 0 && better {
			mark = " (better)"
		}
		return fmt.Sprintf("%+.1f%%%s", d, mark)
	}

	curScen := make(map[string]ScenarioResult, len(cur.Scenarios))
	for _, s := range cur.Scenarios {
		curScen[s.Scenario+"/"+s.Case] = s
	}
	seen := make(map[string]bool, len(base.Scenarios))
	for _, old := range base.Scenarios {
		key := old.Scenario + "/" + old.Case
		seen[key] = true
		now, ok := curScen[key]
		switch {
		case !ok:
			fmt.Fprintf(w, "scenario\t%s\t%.0f tps\tmissing\t\n", key, old.ThroughputTPS)
		case old.Status != "ok" || now.Status != "ok":
			fmt.Fprintf(w, "scenario\t%s\t%s\t%s\t\n", key, old.Status, now.Status)
		default:
			fmt.Fprintf(w, "scenario\t%s\t%.0f tps\t%.0f tps\t%s\n",
				key, old.ThroughputTPS, now.ThroughputTPS, delta(old.ThroughputTPS, now.ThroughputTPS, false))
		}
	}
	for _, s := range cur.Scenarios {
		if key := s.Scenario + "/" + s.Case; !seen[key] {
			fmt.Fprintf(w, "scenario\t%s\t—\t%.0f tps\tnew\n", key, s.ThroughputTPS)
		}
	}

	curMicro := make(map[string]MicroResult, len(cur.Micro))
	for _, m := range cur.Micro {
		curMicro[m.Name] = m
	}
	seenMicro := make(map[string]bool, len(base.Micro))
	for _, old := range base.Micro {
		seenMicro[old.Name] = true
		now, ok := curMicro[old.Name]
		if !ok {
			fmt.Fprintf(w, "micro\t%s\t%.2f ns/op\tmissing\t\n", old.Name, old.NsPerOp)
			continue
		}
		fmt.Fprintf(w, "micro\t%s\t%.2f ns/op\t%.2f ns/op\t%s\n",
			old.Name, old.NsPerOp, now.NsPerOp, delta(old.NsPerOp, now.NsPerOp, true))
	}
	for _, m := range cur.Micro {
		if !seenMicro[m.Name] {
			fmt.Fprintf(w, "micro\t%s\t—\t%.2f ns/op\tnew\n", m.Name, m.NsPerOp)
		}
	}

	w.Flush()
	return b.String()
}

// readersStarved reports whether a scenario row that was configured with
// concurrent readers recorded essentially no reader progress: aggregate
// reader ops/s below 1% of the write throughput, when the read path is a
// busy loop that normally sustains orders of magnitude more. On small hosts
// (CI runs on 1-2 CPUs) the scheduler sometimes never runs the readers
// before a short stream drains; such a rep measures write-only throughput,
// not the mixed workload, and its (inflated) number is only comparable to
// another run that starved the same way.
func readersStarved(r ScenarioResult) bool {
	return r.Readers > 0 && r.ReaderOpsPerSec < r.ThroughputTPS/100
}

// Regression is one comparison finding between two reports.
type Regression struct {
	Kind   string // "scenario" or "micro"
	Name   string // "scenario/case" or micro name
	Metric string // "throughput_tps", "ns_per_op", "bytes_per_op", "allocs_per_op", "missing"
	Old    float64
	New    float64
	// Ratio is new/old for cost metrics and old/new for throughput, so > 1
	// always means "worse by that factor".
	Ratio float64
}

func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s %s: present in baseline, missing in new report", r.Kind, r.Name)
	}
	return fmt.Sprintf("%s %s: %s %.4g -> %.4g (%.2fx worse)", r.Kind, r.Name, r.Metric, r.Old, r.New, r.Ratio)
}

// Compare diffs two reports and returns the regressions in cur relative to
// base: scenario throughput drops, microbenchmark ns/op and bytes/op
// increases beyond threshold (a fraction: 0.10 flags >10% changes), and any
// allocs/op increase at all — allocation counts are deterministic, so they
// get no noise allowance. Bytes/op is near-deterministic but pooled paths
// (arena block growth, map rehashes) amortize one-time costs across ops, so
// it shares the ns/op noise threshold rather than the exact-match rule.
// Entries present only in cur (new benchmarks) are fine; entries present
// only in base are reported as missing. Timed-out or errored baseline
// scenarios are skipped: their throughput is not a meaningful bar. A
// reader-configured scenario where exactly one of the two runs starved its
// readers (see readersStarved) is likewise skipped — the two numbers
// measure different workloads, so neither bounds the other.
func Compare(base, cur *Report, threshold float64) []Regression {
	var regs []Regression

	scen := make(map[string]ScenarioResult, len(cur.Scenarios))
	for _, s := range cur.Scenarios {
		scen[s.Scenario+"/"+s.Case] = s
	}
	for _, old := range base.Scenarios {
		key := old.Scenario + "/" + old.Case
		if old.Status != "ok" || old.ThroughputTPS <= 0 {
			continue
		}
		now, ok := scen[key]
		if !ok {
			regs = append(regs, Regression{Kind: "scenario", Name: key, Metric: "missing"})
			continue
		}
		if now.Status != "ok" {
			regs = append(regs, Regression{Kind: "scenario", Name: key, Metric: "throughput_tps",
				Old: old.ThroughputTPS, New: 0, Ratio: 0})
			continue
		}
		if readersStarved(old) != readersStarved(now) {
			continue
		}
		if now.ThroughputTPS < old.ThroughputTPS*(1-threshold) {
			regs = append(regs, Regression{Kind: "scenario", Name: key, Metric: "throughput_tps",
				Old: old.ThroughputTPS, New: now.ThroughputTPS, Ratio: old.ThroughputTPS / now.ThroughputTPS})
		}
	}

	micro := make(map[string]MicroResult, len(cur.Micro))
	for _, m := range cur.Micro {
		micro[m.Name] = m
	}
	for _, old := range base.Micro {
		now, ok := micro[old.Name]
		if !ok {
			regs = append(regs, Regression{Kind: "micro", Name: old.Name, Metric: "missing"})
			continue
		}
		if old.NsPerOp > 0 && now.NsPerOp > old.NsPerOp*(1+threshold) {
			regs = append(regs, Regression{Kind: "micro", Name: old.Name, Metric: "ns_per_op",
				Old: old.NsPerOp, New: now.NsPerOp, Ratio: now.NsPerOp / old.NsPerOp})
		}
		if old.BytesPerOp > 0 && float64(now.BytesPerOp) > float64(old.BytesPerOp)*(1+threshold) {
			regs = append(regs, Regression{Kind: "micro", Name: old.Name, Metric: "bytes_per_op",
				Old: float64(old.BytesPerOp), New: float64(now.BytesPerOp),
				Ratio: float64(now.BytesPerOp) / float64(old.BytesPerOp)})
		}
		if now.AllocsPerOp > old.AllocsPerOp {
			ratio := float64(now.AllocsPerOp + 1) // old may be 0
			if old.AllocsPerOp > 0 {
				ratio = float64(now.AllocsPerOp) / float64(old.AllocsPerOp)
			}
			regs = append(regs, Regression{Kind: "micro", Name: old.Name, Metric: "allocs_per_op",
				Old: float64(old.AllocsPerOp), New: float64(now.AllocsPerOp), Ratio: ratio})
		}
	}

	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Kind != regs[j].Kind {
			return regs[i].Kind < regs[j].Kind
		}
		return regs[i].Name < regs[j].Name
	})
	return regs
}
