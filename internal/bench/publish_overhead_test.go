package bench

import (
	"testing"
	"time"

	"fivm/internal/datasets"
)

// TestPublishOverheadAdHoc measures fig7 F-IVM write throughput with and
// without per-batch snapshot publication (no readers), to isolate the
// publish cost on the maintenance path. Run with -run PublishOverheadAdHoc
// -v; skipped in short mode.
func TestPublishOverheadAdHoc(t *testing.T) {
	if testing.Short() {
		t.Skip("ad hoc measurement")
	}
	cfg := DefaultFig7("retailer")
	ds := datasets.GenRetailer(cfg.Retailer)
	cs := newCofactorStrategies(ds.Query)
	stream := datasets.RoundRobinStream(ds, ds.Query.RelNames(), 1000)
	opts := RunOptions{Timeout: 10 * time.Second}
	for _, publish := range []bool{false, true} {
		var best float64
		for rep := 0; rep < 3; rep++ {
			m, err := cs.FIVM(ds.NewOrder(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Init(); err != nil {
				t.Fatal(err)
			}
			if publish {
				m.Snapshot() // enable per-batch publication
			}
			res := RunStream("F-IVM", Adapt(m, tripleDelta(ds.Query)), stream, opts)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if res.Throughput > best {
				best = res.Throughput
			}
		}
		t.Logf("publish=%v: best of 3 = %.1fK tuples/s", publish, best/1e3)
	}
}
