package bench

import (
	"fmt"
	"time"

	"fivm/internal/datasets"
	"fivm/internal/ivm"
	"fivm/internal/ring"
	"fivm/internal/vorder"
)

// AutoOrderConfig scales the optimizer ablation.
type AutoOrderConfig struct {
	BatchSize int
	Timeout   time.Duration
	Retailer  datasets.RetailerConfig
	Housing   datasets.HousingConfig
	Twitter   datasets.TwitterConfig
}

// DefaultAutoOrder is a laptop-scale configuration.
func DefaultAutoOrder() AutoOrderConfig {
	return AutoOrderConfig{
		BatchSize: 1000,
		Timeout:   10 * time.Second,
		Retailer:  datasets.DefaultRetailer(),
		Housing:   datasets.DefaultHousing(),
		Twitter:   datasets.DefaultTwitter(),
	}
}

// AutoOrder runs the optimizer ablation on the fig7/fig13 benchmark
// queries: for each dataset, the F-IVM engine under (a) the paper's
// handpicked variable order, (b) the cost-based optimizer's chosen order
// (Order: nil, dataset statistics), and (c) the optimizer's order plus
// cost-based materialization. Reported per variant: the model's estimated
// cost, view count, measured throughput, and peak memory. Expected shape:
// the optimizer reproduces the handpicked orders on the acyclic snowflake
// and star schemas (identical cost and throughput within noise), and on the
// cyclic triangle the cost policy trades the quadratic pairwise view for
// inline probes, cutting peak memory.
func AutoOrder(cfg AutoOrderConfig) []*Table {
	var tables []*Table
	for _, ds := range []*datasets.Dataset{
		datasets.GenRetailer(cfg.Retailer),
		datasets.GenHousing(cfg.Housing),
		datasets.GenTwitter(cfg.Twitter),
	} {
		tables = append(tables, autoOrderOne(cfg, ds))
	}
	return tables
}

func autoOrderOne(cfg AutoOrderConfig, ds *datasets.Dataset) *Table {
	st := analyze(ds)
	m := vorder.NewCostModel(ds.Query, st, nil)
	cs := newCofactorStrategies(ds.Query)
	cs.stats = st

	hand := ds.NewOrder()
	must(hand.Prepare(ds.Query))
	chosen, err := vorder.Choose(ds.Query, vorder.ChooseOptions{Model: m})
	must(err)
	must(chosen.Prepare(ds.Query))

	t := &Table{
		Title: "Optimizer ablation: handpicked vs chosen order, " + ds.Name,
		Note: fmt.Sprintf("handpicked %s\nchosen     %s",
			hand.String(), chosen.String()),
		Header: []string{"variant", "width", "est cost", "views", "throughput", "peak mem", "status"},
	}
	run := func(name string, o *vorder.Order, cost vorder.OrderCost, costMat bool) {
		eng, err := ivm.New[ring.Triple](ds.Query, o, ring.Cofactor{}, tripleLift(ds.Query.Vars()),
			ivm.Options[ring.Triple]{
				ComposeChains:   true,
				Stats:           st.Clone(),
				CostMaterialize: costMat,
			})
		must(err)
		must(eng.Init())
		stream := datasets.RoundRobinStream(ds, ds.Query.RelNames(), cfg.BatchSize)
		res := RunStream(name, Adapt[ring.Triple](eng, tripleDelta(ds.Query)), stream,
			RunOptions{Timeout: cfg.Timeout})
		width := eng.Order().Width(ds.Query)
		t.AddRow(name, width, fmt.Sprintf("%.2f", cost.Total()), res.Views,
			fmtTput(res.Throughput), fmtMem(res.PeakMem), res.Status())
	}
	run("handpicked", hand, m.Cost(hand), false)
	run("optimizer", nil, m.Cost(chosen), false)
	run("optimizer+costmat", nil, m.Cost(chosen), true)
	return t
}

// ExplainReport builds the F-IVM cofactor engine for a dataset — under the
// handpicked order or, with auto, the optimizer's choice — preloads the
// generated contents, and renders the engine's Explain output: chosen
// order, width, estimated cost, and per-view estimated vs actual sizes with
// materialization decisions.
func ExplainReport(ds *datasets.Dataset, auto bool) string {
	st := analyze(ds)
	var o *vorder.Order
	variant := "optimizer-chosen"
	if !auto {
		o = ds.NewOrder()
		variant = "handpicked"
	}
	eng, err := ivm.New[ring.Triple](ds.Query, o, ring.Cofactor{}, tripleLift(ds.Query.Vars()),
		ivm.Options[ring.Triple]{ComposeChains: true, Stats: st})
	must(err)
	toDelta := tripleDelta(ds.Query)
	for rel, ts := range ds.Tuples {
		must(eng.Load(rel, toDelta(datasets.Batch{Rel: rel, Tuples: ts})))
	}
	must(eng.Init())
	return fmt.Sprintf("== Explain: %s (%s order) ==\n%s", ds.Name, variant, eng.Explain())
}
