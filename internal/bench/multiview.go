package bench

import (
	"fmt"
	"time"

	"fivm/internal/data"
	"fivm/internal/datasets"
	"fivm/internal/db"
	"fivm/internal/ivm"
	"fivm/internal/query"
	"fivm/internal/ring"
)

// MultiViewConfig configures the shared-ingest experiment: N concurrent
// views over one Retailer update stream, maintained by one db.DB (ingest
// the batch once, fan out) versus N separate engines (each ingesting the
// raw stream itself).
type MultiViewConfig struct {
	// Views is how many of the workload's view definitions to register (at
	// most 8; the list cycles with fresh names beyond that).
	Views     int
	BatchSize int
	// Group applies this many stream batches per Apply/ApplyDeltas call.
	Group int
	// Workers > 1 uses the sharded parallel engine per view on both sides.
	Workers  int
	Retailer datasets.RetailerConfig
	// Reps repeats each side and keeps its best run (default 3): both sides
	// rebuild from scratch per rep, so allocator and GC noise — which on a
	// shared box dwarfs the effect under test — is largely filtered out.
	Reps int
}

// DefaultMultiView is the laptop-scale default.
func DefaultMultiView() MultiViewConfig {
	return MultiViewConfig{Views: 4, BatchSize: 1000, Group: 1, Reps: 5, Retailer: datasets.DefaultRetailer()}
}

// viewSpec is one dashboard-style view definition over the Retailer join.
type viewSpec struct {
	name string
	free []string
	sum  string // "" = COUNT, else SUM(sum)
}

// multiViewSpecs is the Retailer dashboard workload: distinct group-bys and
// aggregates over the same five-relation join, so every view shares the one
// base stream but maintains its own view tree.
var multiViewSpecs = []viewSpec{
	{name: "count_by_locn", free: []string{"locn"}},
	{name: "inv_by_locn_date", free: []string{"locn", "dateid"}, sum: "inventoryunits"},
	{name: "count_by_zip", free: []string{"zip"}},
	{name: "prize_by_category", free: []string{"category"}, sum: "prize"},
	{name: "count_by_ksn", free: []string{"ksn"}},
	{name: "inv_by_category", free: []string{"category"}, sum: "inventoryunits"},
	{name: "count_by_date", free: []string{"dateid"}},
	{name: "maxtemp_by_locn", free: []string{"locn"}, sum: "maxtemp"},
}

func (s viewSpec) query(name string) query.Query {
	return datasets.RetailerQuery(s.free...).Rename(name)
}

func (s viewSpec) lift() data.LiftFunc[float64] {
	if s.sum == "" {
		return oneFloatLift
	}
	return sumLift(s.sum)
}

// specsFor returns n view definitions, cycling the workload list with
// numbered names past its length.
func specsFor(n int) []viewSpec {
	out := make([]viewSpec, n)
	for i := 0; i < n; i++ {
		s := multiViewSpecs[i%len(multiViewSpecs)]
		if i >= len(multiViewSpecs) {
			s.name = fmt.Sprintf("%s#%d", s.name, i/len(multiViewSpecs)+1)
		}
		out[i] = s
	}
	return out
}

// MultiView runs the experiment and returns the per-view and aggregate
// tables. Both sides maintain identical view definitions with per-batch
// snapshot publication; they differ in the architecture around the engines:
// the DB ingests the stream once (one statistics pass, one log append, one
// ring conversion shared across same-ring views, per-view engines relieved
// of statistics collection via NoLiveStats), while each separate engine
// ingests the raw stream and keeps its own statistics, as self-contained
// pipelines must.
func MultiView(cfg MultiViewConfig) []*Table {
	o := multiViewRun(cfg)
	cfg, specs, total := o.cfg, o.specs, o.total
	shared, separate := o.shared, o.separate
	sharedPer, sepPer := o.sharedPer, o.sepPer
	sharedErr, sepErr := o.sharedErr, o.sepErr

	per := &Table{
		Title:  fmt.Sprintf("multiview per-view maintenance (%d views, batch %d, workers %d)", cfg.Views, cfg.BatchSize, max(1, cfg.Workers)),
		Note:   "per-view maintain time over the whole stream; shared = one DB fan-out (stats centralized, conversions shared), separate = one self-contained engine per view (own ingest + own stats)",
		Header: []string{"view", "shared", "separate", "shared tput", "separate tput"},
	}
	for i, s := range specs {
		if sharedErr != nil || sepErr != nil {
			per.AddRow(s.name, "-", "-", "-", "-")
			continue
		}
		per.AddRow(s.name,
			fmtDur(sharedPer[i].Seconds()), fmtDur(sepPer[i].Seconds()),
			fmtTput(float64(total)/sharedPer[i].Seconds()), fmtTput(float64(total)/sepPer[i].Seconds()))
	}

	agg := &Table{
		Title:  "multiview aggregate ingest",
		Note:   fmt.Sprintf("%d stream tuples applied to %d views; throughput = stream tuples / wall time (view-maintenance throughput = that × views)", total, cfg.Views),
		Header: []string{"mode", "elapsed", "tuples/s", "view-tuples/s", "status"},
	}
	addAgg := func(mode string, el time.Duration, err error) {
		status := "ok"
		if err != nil {
			status = "error: " + err.Error()
		}
		if el <= 0 {
			agg.AddRow(mode, "-", "-", "-", status)
			return
		}
		tput := float64(total) / el.Seconds()
		agg.AddRow(mode, fmtDur(el.Seconds()), fmtTput(tput), fmtTput(tput*float64(cfg.Views)), status)
	}
	addAgg("shared DB", shared, sharedErr)
	addAgg(fmt.Sprintf("%d separate engines", cfg.Views), separate, sepErr)
	if sepErr == nil && sharedErr == nil && shared > 0 {
		agg.Note += fmt.Sprintf("; shared-ingest speedup %.2fx", separate.Seconds()/shared.Seconds())
	}
	return []*Table{per, agg}
}

// multiViewOutcome is the raw result of one multi-view experiment: best-rep
// wall time and per-view maintain times for both architectures, plus the
// normalized config the run actually used.
type multiViewOutcome struct {
	cfg               MultiViewConfig
	specs             []viewSpec
	total             int // stream tuples applied per side
	shared, separate  time.Duration
	sharedPer, sepPer []time.Duration
	sharedErr, sepErr error
}

// multiViewRun executes the experiment and returns the raw outcome, shared
// by the table renderer and the machine-readable suite runner.
func multiViewRun(cfg MultiViewConfig) multiViewOutcome {
	if cfg.Views <= 0 {
		cfg.Views = 4
	}
	if cfg.Group <= 0 {
		cfg.Group = 1
	}
	ds := datasets.GenRetailer(cfg.Retailer)
	stream := datasets.RoundRobinStream(ds, ds.Query.RelNames(), cfg.BatchSize)
	o := multiViewOutcome{cfg: cfg, specs: specsFor(cfg.Views)}
	for _, b := range stream {
		o.total += len(b.Tuples)
	}

	reps := cfg.Reps
	if reps <= 0 {
		reps = 1
	}
	for r := 0; r < reps; r++ {
		el, per, err := runMultiViewShared(ds, o.specs, stream, cfg)
		if err != nil {
			o.sharedErr = err
			break
		}
		if r == 0 || el < o.shared {
			o.shared, o.sharedPer = el, per
		}
		el, per, err = runMultiViewSeparate(ds, o.specs, stream, cfg)
		if err != nil {
			o.sepErr = err
			break
		}
		if r == 0 || el < o.separate {
			o.separate, o.sepPer = el, per
		}
	}
	if o.sharedErr != nil || o.sepErr != nil {
		if o.sharedPer == nil {
			o.sharedPer = make([]time.Duration, len(o.specs))
		}
		if o.sepPer == nil {
			o.sepPer = make([]time.Duration, len(o.specs))
		}
	}
	return o
}

// runMultiViewShared drives one DB with every view registered.
func runMultiViewShared(ds *datasets.Dataset, specs []viewSpec, stream []datasets.Batch, cfg MultiViewConfig) (time.Duration, []time.Duration, error) {
	per := make([]time.Duration, len(specs))
	cat := db.Catalog{}
	for _, rd := range ds.Query.Rels {
		cat[rd.Name] = rd.Schema
	}
	// The DB keeps its (single, shared) statistics collector on — that one
	// pass replaces the N per-engine collectors of the separate baseline.
	d, err := db.Open(cat, db.Options{})
	if err != nil {
		return 0, per, err
	}
	defer d.Close()
	for _, s := range specs {
		if _, err := db.CreateView[float64](d, s.name, s.query(s.name), ring.Float{}, s.lift(),
			db.ViewOptions{Workers: cfg.Workers, ComposeChains: true}); err != nil {
			return 0, per, err
		}
	}

	ups := make([]db.Update, 0, cfg.Group)
	start := time.Now()
	for at := 0; at < len(stream); at += cfg.Group {
		ups = ups[:0]
		for _, b := range stream[at:min(at+cfg.Group, len(stream))] {
			ups = append(ups, db.Update{Rel: b.Rel, Tuples: b.Tuples, Mult: 1})
		}
		if err := d.Apply(ups); err != nil {
			return time.Since(start), per, err
		}
	}
	el := time.Since(start)
	for i, s := range specs {
		per[i] = d.ViewStatsOf(s.name).Maintain
	}
	return el, per, nil
}

// runMultiViewSeparate drives one independent engine per view; each engine
// ingests the raw stream itself (the pre-DB architecture).
func runMultiViewSeparate(ds *datasets.Dataset, specs []viewSpec, stream []datasets.Batch, cfg MultiViewConfig) (time.Duration, []time.Duration, error) {
	per := make([]time.Duration, len(specs))
	engines := make([]ivm.Maintainer[float64], len(specs))
	toDeltas := make([]func(b datasets.Batch) *data.Relation[float64], len(specs))
	for i, s := range specs {
		q := s.query(s.name)
		lift := s.lift()
		factory := func() (ivm.Maintainer[float64], error) {
			// The baseline is the pre-DB architecture: N self-contained
			// pipelines. A self-planning engine with no central collector to
			// lean on owns and maintains its own statistics (the default for
			// a nil order) — centralizing that observation, once for all
			// views, is one of the shared design's wins and is charged here.
			return ivm.New[float64](q, nil, ring.Float{}, lift, ivm.Options[float64]{ComposeChains: true})
		}
		m, err := parallelize[float64](q, ring.Float{}, cfg.Workers, factory)
		if err != nil {
			return 0, per, err
		}
		defer closeMaintainer(m)
		if err := m.Init(); err != nil {
			return 0, per, err
		}
		m.Snapshot() // publication on, as the DB side has it
		engines[i] = m
		toDeltas[i] = floatDelta(q)
	}

	grouped := make(map[string][]data.Tuple)
	var order []string
	scratch := make([]ivm.NamedDelta[float64], 0, 8)
	start := time.Now()
	for at := 0; at < len(stream); at += cfg.Group {
		g := stream[at:min(at+cfg.Group, len(stream))]
		order = order[:0]
		for _, b := range g {
			if len(grouped[b.Rel]) == 0 && len(b.Tuples) > 0 {
				order = append(order, b.Rel)
			}
			grouped[b.Rel] = append(grouped[b.Rel], b.Tuples...)
		}
		for i, m := range engines {
			es := time.Now()
			scratch = scratch[:0]
			for _, rel := range order {
				scratch = append(scratch, ivm.NamedDelta[float64]{
					Rel:   rel,
					Delta: toDeltas[i](datasets.Batch{Rel: rel, Tuples: grouped[rel]}),
				})
			}
			if err := m.ApplyDeltas(scratch); err != nil {
				return time.Since(start), per, err
			}
			per[i] += time.Since(es)
		}
		for _, rel := range order {
			grouped[rel] = grouped[rel][:0]
		}
	}
	return time.Since(start), per, nil
}
