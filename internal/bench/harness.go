// Package bench is the experiment harness: it drives maintenance strategies
// through synthesized update streams, measures throughput and memory per
// stream fraction, and regenerates every table and figure of the paper's
// evaluation (Section 7 and Appendix C). Each FigXXX function returns
// formatted tables so the CLI and the testing.B benchmarks share one
// implementation.
package bench

import (
	"fmt"
	"math"
	"sort"
	"time"

	"fivm/internal/data"
	"fivm/internal/datasets"
	"fivm/internal/ivm"
)

// Point is one throughput/memory sample at a stream fraction.
type Point struct {
	Fraction   float64
	TuplesSec  float64
	MemBytes   int
	ElapsedSec float64
}

// RunResult summarizes one strategy's run over a stream.
type RunResult struct {
	Name       string
	Points     []Point
	Tuples     int
	Elapsed    time.Duration
	Throughput float64 // tuples/sec over the processed prefix
	Views      int
	PeakMem    int
	TimedOut   bool
	// P50Batch and P99Batch are per-ApplyBatches-call latency percentiles
	// (nearest-rank over every call of the run). Aggregate throughput hides
	// tail behaviour — a parallel engine can raise the mean while stragglers
	// stretch the p99 — so both are reported alongside it.
	P50Batch time.Duration
	P99Batch time.Duration
	// Err is the maintenance error that aborted the run, if any; the stats
	// cover the prefix processed before the failure.
	Err error
}

// Status renders the run's terminal state for summary tables.
func (r RunResult) Status() string {
	switch {
	case r.Err != nil:
		return "error: " + r.Err.Error()
	case r.TimedOut:
		return "timeout"
	default:
		return "ok"
	}
}

// RunOptions configures a stream run.
type RunOptions struct {
	// Samples is the number of evenly spaced measurement points (default 10).
	Samples int
	// Timeout aborts the run (strategy keeps its partial stats); zero means
	// no timeout. The paper uses a one-hour timeout; scaled-down runs use
	// seconds.
	Timeout time.Duration
	// Group is the number of consecutive stream batches handed to the
	// maintainer per ApplyBatches call (default 1). Larger groups exercise
	// the batched ApplyDeltas path: deltas to the same relation coalesce and
	// each maintenance plan runs once per group.
	Group int
	// Workers records the shard/worker count the driven maintainer was
	// built with (informational — parallelism is a property of the
	// maintainer, constructed via ivm.NewParallel, not of the stream loop).
	Workers int
	// Readers is the number of concurrent snapshot-reader goroutines to run
	// against the maintainer while it streams (RunMixed); zero keeps the
	// run write-only with snapshot publication disabled.
	Readers int
}

// Loader abstracts the subset of a maintenance strategy the harness drives.
// ivm.Maintainer[P] satisfies it for every payload type via maintainerAdapter.
type Loader interface {
	// ApplyBatches applies a group of stream batches as one batched update.
	ApplyBatches(bs []datasets.Batch) error
	ViewCount() int
	MemoryBytes() int
}

// maintainerAdapter adapts an ivm.Maintainer[P] plus a payload constructor
// into a Loader, reusing its NamedDelta scratch across calls.
type maintainerAdapter[P any] struct {
	m       ivm.Maintainer[P]
	toDelta func(b datasets.Batch) *data.Relation[P]
	scratch []ivm.NamedDelta[P]
	tuples  map[string][]data.Tuple
	order   []string
}

// ApplyBatches concatenates the group's tuples per relation before building
// deltas, so the maintainer receives at most one delta per relation and its
// coalescing never has to copy. Pre-merging across the group's interleaving
// is exact because the maintained state depends only on the final database.
func (a *maintainerAdapter[P]) ApplyBatches(bs []datasets.Batch) error {
	a.scratch = a.scratch[:0]
	if len(bs) == 1 {
		a.scratch = append(a.scratch, ivm.NamedDelta[P]{Rel: bs[0].Rel, Delta: a.toDelta(bs[0])})
		return a.m.ApplyDeltas(a.scratch)
	}
	if a.tuples == nil {
		a.tuples = make(map[string][]data.Tuple)
	}
	a.order = a.order[:0]
	for _, b := range bs {
		// Accumulated slices are reset to length 0 (keeping capacity) after
		// every call, so an empty slice marks a relation not yet seen in
		// this group.
		ts := a.tuples[b.Rel]
		if len(ts) == 0 && len(b.Tuples) > 0 {
			a.order = append(a.order, b.Rel)
		}
		a.tuples[b.Rel] = append(ts, b.Tuples...)
	}
	for _, rel := range a.order {
		a.scratch = append(a.scratch, ivm.NamedDelta[P]{
			Rel:   rel,
			Delta: a.toDelta(datasets.Batch{Rel: rel, Tuples: a.tuples[rel]}),
		})
		a.tuples[rel] = a.tuples[rel][:0]
	}
	return a.m.ApplyDeltas(a.scratch)
}
func (a *maintainerAdapter[P]) ViewCount() int   { return a.m.ViewCount() }
func (a *maintainerAdapter[P]) MemoryBytes() int { return a.m.MemoryBytes() }

// Adapt wraps a maintainer and a delta builder into a Loader.
func Adapt[P any](m ivm.Maintainer[P], toDelta func(b datasets.Batch) *data.Relation[P]) Loader {
	return &maintainerAdapter[P]{m: m, toDelta: toDelta}
}

// RunStream drives the loader through the stream in groups of opts.Group
// batches, sampling throughput and memory at evenly spaced fractions.
// Maintenance errors abort the run and are reported in RunResult.Err rather
// than panicking, so CLI runs degrade gracefully.
func RunStream(name string, l Loader, stream []datasets.Batch, opts RunOptions) RunResult {
	samples := opts.Samples
	if samples <= 0 {
		samples = 10
	}
	group := opts.Group
	if group <= 0 {
		group = 1
	}
	total := 0
	for _, b := range stream {
		total += len(b.Tuples)
	}
	res := RunResult{Name: name}
	if total == 0 {
		res.Views = l.ViewCount()
		return res
	}

	start := time.Now()
	processed := 0
	nextSample := total / samples
	if nextSample == 0 {
		nextSample = 1
	}
	threshold := nextSample
	lats := make([]time.Duration, 0, (len(stream)+group-1)/group)
	for at := 0; at < len(stream); at += group {
		g := stream[at:min(at+group, len(stream))]
		callStart := time.Now()
		err := l.ApplyBatches(g)
		lats = append(lats, time.Since(callStart))
		if err != nil {
			res.Err = fmt.Errorf("bench: %s: %w", name, err)
			break
		}
		for _, b := range g {
			processed += len(b.Tuples)
		}
		if processed >= threshold || processed == total {
			el := time.Since(start)
			mem := l.MemoryBytes()
			if mem > res.PeakMem {
				res.PeakMem = mem
			}
			res.Points = append(res.Points, Point{
				Fraction:   float64(processed) / float64(total),
				TuplesSec:  float64(processed) / el.Seconds(),
				MemBytes:   mem,
				ElapsedSec: el.Seconds(),
			})
			for threshold <= processed {
				threshold += nextSample
			}
		}
		if opts.Timeout > 0 && time.Since(start) > opts.Timeout {
			res.TimedOut = true
			break
		}
	}
	res.Tuples = processed
	res.Elapsed = time.Since(start)
	if s := res.Elapsed.Seconds(); s > 0 {
		res.Throughput = float64(processed) / s
	}
	res.Views = l.ViewCount()
	if mem := l.MemoryBytes(); mem > res.PeakMem {
		res.PeakMem = mem
	}
	res.P50Batch = percentile(lats, 0.50)
	res.P99Batch = percentile(lats, 0.99)
	return res
}

// percentile returns the nearest-rank q-th percentile of the latencies
// (sorting a copy; the caller's order is preserved).
func percentile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := make([]time.Duration, len(lats))
	copy(s, lats)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// fmtMem renders bytes with a binary unit.
func fmtMem(b int) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// fmtTputRes renders a run's throughput with the harness's standard
// markers: "*" for a timeout, "!" for a run aborted by a maintenance error
// (stats then cover the processed prefix only).
func fmtTputRes(r RunResult) string {
	s := fmtTput(r.Throughput)
	if r.TimedOut {
		s += "*"
	}
	if r.Err != nil {
		s += "!"
	}
	return s
}

// fmtTput renders a throughput figure compactly.
func fmtTput(t float64) string {
	switch {
	case t >= 1e6:
		return fmt.Sprintf("%.2fM/s", t/1e6)
	case t >= 1e3:
		return fmt.Sprintf("%.1fK/s", t/1e3)
	default:
		return fmt.Sprintf("%.1f/s", t)
	}
}

// fmtDur renders seconds compactly.
func fmtDur(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.1fµs", s*1e6)
	}
}
