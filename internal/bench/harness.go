// Package bench is the experiment harness: it drives maintenance strategies
// through synthesized update streams, measures throughput and memory per
// stream fraction, and regenerates every table and figure of the paper's
// evaluation (Section 7 and Appendix C). Each FigXXX function returns
// formatted tables so the CLI and the testing.B benchmarks share one
// implementation.
package bench

import (
	"fmt"
	"time"

	"fivm/internal/data"
	"fivm/internal/datasets"
	"fivm/internal/ivm"
)

// Point is one throughput/memory sample at a stream fraction.
type Point struct {
	Fraction   float64
	TuplesSec  float64
	MemBytes   int
	ElapsedSec float64
}

// RunResult summarizes one strategy's run over a stream.
type RunResult struct {
	Name       string
	Points     []Point
	Tuples     int
	Elapsed    time.Duration
	Throughput float64 // tuples/sec over the processed prefix
	Views      int
	PeakMem    int
	TimedOut   bool
}

// RunOptions configures a stream run.
type RunOptions struct {
	// Samples is the number of evenly spaced measurement points (default 10).
	Samples int
	// Timeout aborts the run (strategy keeps its partial stats); zero means
	// no timeout. The paper uses a one-hour timeout; scaled-down runs use
	// seconds.
	Timeout time.Duration
}

// Loader abstracts the subset of a maintenance strategy the harness drives.
// ivm.Maintainer[P] satisfies it for every payload type via maintainerAdapter.
type Loader interface {
	ApplyBatch(b datasets.Batch) error
	ViewCount() int
	MemoryBytes() int
}

// maintainerAdapter adapts an ivm.Maintainer[P] plus a payload constructor
// into a Loader.
type maintainerAdapter[P any] struct {
	m       ivm.Maintainer[P]
	toDelta func(b datasets.Batch) *data.Relation[P]
}

func (a maintainerAdapter[P]) ApplyBatch(b datasets.Batch) error {
	return a.m.ApplyDelta(b.Rel, a.toDelta(b))
}
func (a maintainerAdapter[P]) ViewCount() int   { return a.m.ViewCount() }
func (a maintainerAdapter[P]) MemoryBytes() int { return a.m.MemoryBytes() }

// Adapt wraps a maintainer and a delta builder into a Loader.
func Adapt[P any](m ivm.Maintainer[P], toDelta func(b datasets.Batch) *data.Relation[P]) Loader {
	return maintainerAdapter[P]{m: m, toDelta: toDelta}
}

// RunStream drives the loader through the stream, sampling throughput and
// memory at evenly spaced fractions.
func RunStream(name string, l Loader, stream []datasets.Batch, opts RunOptions) RunResult {
	samples := opts.Samples
	if samples <= 0 {
		samples = 10
	}
	total := 0
	for _, b := range stream {
		total += len(b.Tuples)
	}
	res := RunResult{Name: name}
	if total == 0 {
		res.Views = l.ViewCount()
		return res
	}

	start := time.Now()
	processed := 0
	nextSample := total / samples
	if nextSample == 0 {
		nextSample = 1
	}
	threshold := nextSample
	for _, b := range stream {
		if err := l.ApplyBatch(b); err != nil {
			panic(fmt.Sprintf("bench: %s: %v", name, err))
		}
		processed += len(b.Tuples)
		if processed >= threshold || processed == total {
			el := time.Since(start)
			mem := l.MemoryBytes()
			if mem > res.PeakMem {
				res.PeakMem = mem
			}
			res.Points = append(res.Points, Point{
				Fraction:   float64(processed) / float64(total),
				TuplesSec:  float64(processed) / el.Seconds(),
				MemBytes:   mem,
				ElapsedSec: el.Seconds(),
			})
			threshold += nextSample
		}
		if opts.Timeout > 0 && time.Since(start) > opts.Timeout {
			res.TimedOut = true
			break
		}
	}
	res.Tuples = processed
	res.Elapsed = time.Since(start)
	if s := res.Elapsed.Seconds(); s > 0 {
		res.Throughput = float64(processed) / s
	}
	res.Views = l.ViewCount()
	if mem := l.MemoryBytes(); mem > res.PeakMem {
		res.PeakMem = mem
	}
	return res
}

// fmtMem renders bytes with a binary unit.
func fmtMem(b int) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// fmtTput renders a throughput figure compactly.
func fmtTput(t float64) string {
	switch {
	case t >= 1e6:
		return fmt.Sprintf("%.2fM/s", t/1e6)
	case t >= 1e3:
		return fmt.Sprintf("%.1fK/s", t/1e3)
	default:
		return fmt.Sprintf("%.1f/s", t)
	}
}

// fmtDur renders seconds compactly.
func fmtDur(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.1fµs", s*1e6)
	}
}
