package bench

import (
	"time"

	"fivm/internal/data"
	"fivm/internal/datasets"
	"fivm/internal/ivm"
	"fivm/internal/ring"
	"fivm/internal/viewtree"
	"fivm/internal/vorder"
)

// Fig13Config scales the triangle-query cofactor experiment (Figure 13).
type Fig13Config struct {
	BatchSize int
	Timeout   time.Duration
	// Workers is the shard/worker count for parallel maintenance (default
	// 1, sequential); the triangle shards on one edge variable with the
	// third relation broadcast.
	Workers int
	// Readers runs N concurrent snapshot-reader goroutines against every
	// strategy while it streams (the -readers CLI flag).
	Readers int
	Twitter datasets.TwitterConfig
	// AutoOrder replaces the handpicked A-B-C order with an
	// optimizer-chosen one (engines self-plan from dataset statistics).
	AutoOrder bool
	// IncludeScalar adds the per-aggregate DBT and 1-IVM competitors
	// (very slow by design — that is the result).
	IncludeScalar bool
}

// DefaultFig13 is a laptop-scale configuration.
func DefaultFig13() Fig13Config {
	return Fig13Config{
		BatchSize:     1000,
		Timeout:       10 * time.Second,
		Twitter:       datasets.DefaultTwitter(),
		IncludeScalar: true,
	}
}

// Fig13 regenerates Figure 13: cofactor maintenance over the triangle query
// on the Twitter graph. Expected shape: throughput of the strategies that
// materialize quadratic-size pairwise joins (F-IVM with one S⋈T view,
// DBT-RING with all three) declines sharply as the stream progresses; the
// scalar DBT is worst; 1-IVM declines linearly; F-IVM-ONE (updates to R
// only) is orders of magnitude faster at the cost of the stored join view.
func Fig13(cfg Fig13Config) []*Table {
	results, served := fig13Run(cfg)
	title := "Figure 13: cofactor over the triangle query (Twitter)"
	if cfg.AutoOrder {
		title += ", auto-order"
	}
	opts := RunOptions{Workers: cfg.Workers}
	tables := fig7Tables(workersTitle(title, opts), results)
	if len(served) > 0 {
		tables = append(tables, mixedTable(workersTitle(title, opts), served))
	}
	return tables
}

// fig13Run executes the Figure 13 strategy runs and returns the raw results,
// shared by the table renderer and the machine-readable suite runner.
func fig13Run(cfg Fig13Config) ([]RunResult, []MixedResult) {
	ds := datasets.GenTwitter(cfg.Twitter)
	cs := newCofactorStrategies(ds.Query)
	ord := ds.NewOrder
	if cfg.AutoOrder {
		cs.stats = analyze(ds)
		ord = func() *vorder.Order { return nil }
	}
	stream := datasets.RoundRobinStream(ds, ds.Query.RelNames(), cfg.BatchSize)
	oneStream := datasets.SingleRelationStream(ds, "R", cfg.BatchSize)
	opts := RunOptions{Timeout: cfg.Timeout, Workers: cfg.Workers, Readers: cfg.Readers}

	var results []RunResult
	var served []MixedResult

	{
		m, err := parallelize[ring.Triple](ds.Query, ring.Cofactor{}, cfg.Workers,
			func() (ivm.Maintainer[ring.Triple], error) { return cs.FIVM(ord(), nil) })
		must(err)
		attachRouterStats(m, cs.stats)
		must(m.Init())
		runServed(&results, &served, "F-IVM", m, tripleDelta(ds.Query), stream, opts)
		closeMaintainer(m)
	}
	{
		m, err := parallelize[ring.Triple](ds.Query, ring.Cofactor{}, cfg.Workers,
			func() (ivm.Maintainer[ring.Triple], error) { return cs.DBTRing(nil) })
		must(err)
		must(m.Init())
		runServed(&results, &served, "DBT-RING", m, tripleDelta(ds.Query), stream, opts)
		closeMaintainer(m)
	}
	if cfg.IncludeScalar {
		{
			m, err := cs.DBTScalar(nil)
			must(err)
			must(m.Init())
			runServed(&results, &served, "DBT", m, floatDelta(ds.Query), stream, opts)
		}
		{
			m, err := cs.FirstOrderScalar(ord())
			must(err)
			must(m.Init())
			runServed(&results, &served, "1-IVM", m, floatDelta(ds.Query), stream, opts)
		}
	}
	{
		m, err := cs.FIVM(ord(), []string{"R"})
		must(err)
		must(preload(m, ds, tripleDelta(ds.Query), map[string]bool{"R": true}))
		runServed(&results, &served, "F-IVM ONE", m, tripleDelta(ds.Query), oneStream, opts)
	}
	return results, served
}

// TriangleIndicator demonstrates Appendix B: the indicator projection
// ∃_{A,B} R below the view at C bounds that view by |R| instead of the
// O(N²) pairs of S ⋈ T, while maintaining the same result.
func TriangleIndicator(cfg Fig13Config) *Table {
	ds := datasets.GenTwitter(cfg.Twitter)
	countLift := func(string, data.Value) int64 { return 1 }

	build := func(ind bool) (*ivm.Engine[int64], RunResult) {
		e, err := ivm.New[int64](ds.Query, ds.NewOrder(), ring.Int{}, countLift,
			ivm.Options[int64]{Indicators: ind})
		must(err)
		must(e.Init())
		stream := datasets.RoundRobinStream(ds, ds.Query.RelNames(), cfg.BatchSize)
		res := RunStream("triangle", Adapt[int64](e, intDelta(ds.Query)), stream, RunOptions{Timeout: cfg.Timeout})
		return e, res
	}

	vcSize := func(e *ivm.Engine[int64]) int {
		size := -1
		e.Tree().Walk(func(n *viewtree.Node) {
			if n.Var == "C" {
				if v := e.ViewOf(n); v != nil {
					size = v.Len()
				}
			}
		})
		return size
	}

	t := &Table{
		Title:  "Appendix B: triangle count with and without indicator projections",
		Header: []string{"variant", "triangles", "|V@C|", "throughput", "peak mem"},
	}
	for _, ind := range []bool{false, true} {
		e, res := build(ind)
		count, _ := e.Snapshot().Result().Get(data.Tuple{})
		name := "plain"
		if ind {
			name = "with ∃_{A,B}R"
		}
		t.AddRow(name, count, vcSize(e), fmtTputRes(res), fmtMem(res.PeakMem))
	}
	return t
}
