package bench

import (
	"time"

	"fivm/internal/datasets"
	"fivm/internal/ivm"
	"fivm/internal/ring"
	"fivm/internal/viewtree"
)

// AblationConfig scales the design-choice ablations.
type AblationConfig struct {
	Timeout  time.Duration
	Retailer datasets.RetailerConfig
}

// DefaultAblation is a laptop-scale configuration.
func DefaultAblation() AblationConfig {
	return AblationConfig{Timeout: 10 * time.Second, Retailer: datasets.DefaultRetailer()}
}

// Ablations quantifies the engine's individual design choices on the
// Retailer cofactor workload:
//
//   - chain composition (one view per wide relation vs one view per
//     variable), the paper's Section 3 practical optimization;
//   - the materialization rule µ(τ, U) (only the views the workload needs)
//     vs materializing every view, when only the largest relation changes;
//   - the sparse block representation of cofactor triples vs the explicit
//     degree-map encoding (the F-IVM vs SQL-OPT gap isolated on one tree).
func Ablations(cfg AblationConfig) *Table {
	ds := datasets.GenRetailer(cfg.Retailer)
	cs := newCofactorStrategies(ds.Query)
	stream := datasets.RoundRobinStream(ds, ds.Query.RelNames(), 1000)
	oneStream := datasets.SingleRelationStream(ds, ds.Largest, 1000)
	opts := RunOptions{Timeout: cfg.Timeout}

	t := &Table{
		Title:  "Ablations: engine design choices on Retailer cofactor maintenance",
		Header: []string{"variant", "views", "throughput", "peak mem"},
	}
	add := func(name string, r RunResult) {
		t.AddRow(name, r.Views, fmtTputRes(r), fmtMem(r.PeakMem))
	}

	// Chain composition on vs off.
	{
		m, err := ivm.New[ring.Triple](ds.Query, ds.NewOrder(), ring.Cofactor{}, tripleLift(cs.vars),
			ivm.Options[ring.Triple]{ComposeChains: true})
		must(err)
		must(m.Init())
		add("composed chains (default)", RunStream("composed", Adapt(m, tripleDelta(ds.Query)), stream, opts))
	}
	{
		m, err := ivm.New[ring.Triple](ds.Query, ds.NewOrder(), ring.Cofactor{}, tripleLift(cs.vars),
			ivm.Options[ring.Triple]{ComposeChains: false})
		must(err)
		must(m.Init())
		add("one view per variable", RunStream("per-var", Adapt(m, tripleDelta(ds.Query)), stream, opts))
	}

	// Materialization rule vs materialize-everything, ONE workload.
	skip := map[string]bool{ds.Largest: true}
	{
		m, err := cs.FIVM(ds.NewOrder(), []string{ds.Largest})
		must(err)
		must(preload(m, ds, tripleDelta(ds.Query), skip))
		add("µ(τ,{Inventory})", RunStream("mu", Adapt(m, tripleDelta(ds.Query)), oneStream, opts))
	}
	{
		m, err := cs.FIVM(ds.NewOrder(), nil) // U = all: every view materialized
		must(err)
		must(preload(m, ds, tripleDelta(ds.Query), skip))
		add("materialize everything", RunStream("all", Adapt(m, tripleDelta(ds.Query)), oneStream, opts))
	}

	// Payload encoding: sparse triples vs degree maps on the same tree.
	{
		m, err := cs.SQLOPT(ds.NewOrder(), nil)
		must(err)
		must(m.Init())
		add("degree-map payloads (SQL-OPT)", RunStream("degmap", Adapt(m, degMapDelta(ds.Query)), stream, opts))
	}
	return t
}

// ViewTreeReport renders a dataset's view tree with the materialization
// decision per updatable set — the `fivm views` inspection tool.
func ViewTreeReport(ds *datasets.Dataset, updatable []string) *Table {
	if len(updatable) == 0 {
		updatable = ds.Query.RelNames()
	}
	o := ds.NewOrder()
	must(o.Prepare(ds.Query))
	root, err := viewtree.Build(o, ds.Query)
	must(err)
	root = viewtree.CollapseIdentical(root)
	root = viewtree.ComposeChains(root)
	mat := viewtree.Materialize(root, updatable)

	t := &Table{
		Title:  "View tree for " + ds.Name + " (updatable: " + join(updatable, ",") + ")",
		Header: []string{"view", "keys", "marginalizes", "relations", "materialized"},
	}
	root.Walk(func(n *viewtree.Node) {
		t.AddRow(n.Name(), n.Keys.String(), margOf(n), join(n.Rels, ","), mat[n])
	})
	return t
}

func join(ss []string, sep string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += sep
		}
		out += s
	}
	if out == "" {
		return "(all)"
	}
	return out
}

func margOf(n *viewtree.Node) string {
	if len(n.Marg) == 0 {
		return "-"
	}
	return n.Marg.String()
}
