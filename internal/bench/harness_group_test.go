package bench

import (
	"errors"
	"testing"

	"fivm/internal/data"
	"fivm/internal/datasets"
	"fivm/internal/ivm"
	"fivm/internal/ring"
)

func countLiftInt(string, data.Value) int64 { return 1 }

// TestAdaptGroupedMatchesSequential drives the same stream through the
// adapter with group sizes 1, 3, and 7 (multiple ApplyBatches calls each, so
// adapter scratch state carries across calls) and demands identical final
// results. Regression test: a stale per-relation scratch entry once caused
// every group after the first call to be dropped silently.
func TestAdaptGroupedMatchesSequential(t *testing.T) {
	ds := datasets.GenRetailer(tinyRetailer())
	stream := datasets.RoundRobinStream(ds, ds.Query.RelNames(), 10)
	if len(stream) < 8 {
		t.Fatalf("stream too short (%d batches) to exercise grouping", len(stream))
	}

	results := map[int]string{}
	tuples := map[int]int{}
	for _, group := range []int{1, 3, 7} {
		m, err := ivm.New[int64](ds.Query, ds.NewOrder(), ring.Int{}, countLiftInt, ivm.Options[int64]{})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Init(); err != nil {
			t.Fatal(err)
		}
		l := Adapt[int64](m, intDelta(ds.Query))
		res := RunStream("group", l, stream, RunOptions{Group: group})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		results[group] = m.Result().String()
		tuples[group] = res.Tuples
	}
	for _, group := range []int{3, 7} {
		if results[group] != results[1] {
			t.Errorf("group=%d result diverged:\n  %s\nvs\n  %s", group, results[group], results[1])
		}
		if tuples[group] != tuples[1] {
			t.Errorf("group=%d processed %d tuples, sequential %d", group, tuples[group], tuples[1])
		}
	}
}

// TestRunStreamPropagatesError checks that a failing maintainer surfaces the
// error in RunResult instead of panicking.
func TestRunStreamPropagatesError(t *testing.T) {
	ds := datasets.GenRetailer(tinyRetailer())
	stream := datasets.RoundRobinStream(ds, ds.Query.RelNames(), 10)
	boom := errors.New("boom")
	calls := 0
	l := loaderFunc{apply: func(b datasets.Batch) error {
		calls++
		if calls > 2 {
			return boom
		}
		return nil
	}}
	res := RunStream("failing", l, stream, RunOptions{})
	if res.Err == nil || !errors.Is(res.Err, boom) {
		t.Fatalf("Err = %v, want wrapped boom", res.Err)
	}
	if res.Status() == "ok" {
		t.Error("Status should reflect the failure")
	}
	if res.Tuples == 0 {
		t.Error("prefix stats should be kept")
	}
}
