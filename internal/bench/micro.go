package bench

import (
	"math/rand"
	"testing"

	"fivm/internal/data"
	"fivm/internal/datasets"
	"fivm/internal/ring"
)

// Hot-path microbenchmarks, defined here (not in a _test.go file) so both
// `go test -bench` wrappers and the `fivm bench` suite runner can execute
// them via testing.Benchmark and put the numbers in the BENCH report. Each
// body measures one operation the storage campaign optimizes; the alloc
// counts double as regression guards (see Compare and the alloc tests in
// internal/data).

// MicroBench couples a stable report name with a benchmark body.
type MicroBench struct {
	Name string
	Fn   func(b *testing.B)
}

// MicroBenches returns the hot-path microbenchmark set. Names are part of
// the BENCH schema surface: renaming one makes benchdiff report the old one
// missing.
func MicroBenches() []MicroBench {
	return []MicroBench{
		{"TupleAppendKey", microTupleAppendKey},
		{"RelationGet", microRelationGet},
		{"RelationMerge", microRelationMerge},
		{"RelationMergeTripleSteady", microRelationMergeTripleSteady},
		{"TripleAddInto", microTripleAddInto},
		{"CofactorAxpy", microCofactorAxpy},
		{"Rank1SymUpdate", microRank1SymUpdate},
		{"ApplyDeltaSteady", microApplyDeltaSteady},
		{"IndexProbe", microIndexProbe},
		{"RadixSortKeys", microRadixSortKeys},
		{"SnapshotPublish", microSnapshotPublish},
	}
}

// RunMicro executes every microbenchmark through the testing harness and
// returns the measurements.
func RunMicro() []MicroResult {
	out := make([]MicroResult, 0, len(MicroBenches()))
	for _, mb := range MicroBenches() {
		r := testing.Benchmark(mb.Fn)
		out = append(out, MicroResult{
			Name:        mb.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out
}

const microKeys = 4096

// microRelation builds an int-payload relation over (A, B) with microKeys
// entries, plus the tuples used to probe it.
func microRelation() (*data.Relation[int64], []data.Tuple) {
	r := data.NewRelation[int64](ring.Int{}, data.NewSchema("A", "B"))
	r.Reserve(microKeys)
	tups := make([]data.Tuple, microKeys)
	for i := 0; i < microKeys; i++ {
		tups[i] = data.Ints(int64(i), int64(i%251))
		r.Merge(tups[i], int64(i)+1)
	}
	return r, tups
}

func microTupleAppendKey(b *testing.B) {
	t := data.Tuple{data.Int(123456), data.Float(3.5), data.String("key"), data.Int(-9)}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = t.AppendKey(buf[:0])
	}
	_ = buf
}

func microRelationGet(b *testing.B) {
	r, tups := microRelation()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Get(tups[i%microKeys]); !ok {
			b.Fatal("missing key")
		}
	}
}

func microRelationMerge(b *testing.B) {
	r, tups := microRelation()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Merge(tups[i%microKeys], 1) // steady state: every key exists
	}
}

func microRelationMergeTripleSteady(b *testing.B) {
	cf := ring.Cofactor{}
	r := data.NewRelation[ring.Triple](cf, data.NewSchema("A"))
	tup := data.Ints(1)
	d := cf.Mul(ring.LiftValue(0, 2), cf.Mul(ring.LiftValue(1, 3), ring.LiftValue(2, 4)))
	r.Merge(tup, d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Merge(tup, d)
	}
}

func microTripleAddInto(b *testing.B) {
	cf := ring.Cofactor{}
	acc := cf.Mul(ring.LiftValue(0, 2), cf.Mul(ring.LiftValue(1, 3), ring.LiftValue(2, 4)))
	d := acc
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.AddInto(&d)
	}
}

// microCofactorAxpy measures the dense scaled-accumulate path of the
// cofactor ring: d += c*b for a constant c and a width-16 triple b whose
// variables d already covers, which is one axpy over the 16-entry sum vector
// and one over the 256-entry cofactor matrix (the scaleScatterAdd fast path
// behind every scalar-weighted payload merge).
func microCofactorAxpy(b *testing.B) {
	cf := ring.Cofactor{}
	w := cf.One()
	for j := 0; j < 16; j++ {
		w = cf.Mul(w, ring.LiftValue(j, float64(j)+0.5))
	}
	scalar := ring.Triple{C: 2}
	var d ring.Triple
	cf.MulInto(&d, &scalar, &w) // d now covers w's variables
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cf.MulAddInto(&d, &scalar, &w)
	}
}

// microRank1SymUpdate measures the symmetric rank-1 outer-product kernel:
// d += x*y for two width-16 triples over the same variables as d, whose
// dominant cost is the sa·sbᵀ + sb·saᵀ update of the 16×16 cofactor matrix
// (the inner loop of every pairwise view product in regression maintenance).
func microRank1SymUpdate(b *testing.B) {
	cf := ring.Cofactor{}
	mk := func(off float64) ring.Triple {
		t := cf.One()
		for j := 0; j < 16; j++ {
			t = cf.Mul(t, ring.LiftValue(j, off+float64(j)))
		}
		return t
	}
	x, y := mk(0.5), mk(1.25)
	var d ring.Triple
	cf.MulInto(&d, &x, &y)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cf.MulAddInto(&d, &x, &y)
	}
}

// microApplyDeltaSteady measures steady-state F-IVM delta application end to
// end on a small retailer instance: the full stream is applied once to warm
// the view tree, then each iteration applies one pre-built insert batch
// followed by its negation, so every touched key already exists (payloads
// oscillate between their warm value and warm+delta, never cancelling to
// zero) and the measured work is pure delta propagation at constant state
// size. One op covers the two ApplyDelta calls.
func microApplyDeltaSteady(b *testing.B) {
	ds := datasets.GenRetailer(datasets.RetailerConfig{
		Locations: 6, Dates: 12, Items: 48, ItemsPerLocDate: 6, Seed: 9,
	})
	cs := newCofactorStrategies(ds.Query)
	m, err := cs.FIVM(ds.NewOrder(), nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Init(); err != nil {
		b.Fatal(err)
	}
	toDelta := tripleDelta(ds.Query)
	stream := datasets.RoundRobinStream(ds, ds.Query.RelNames(), 200)
	for _, batch := range stream {
		if err := m.ApplyDelta(batch.Rel, toDelta(batch)); err != nil {
			b.Fatal(err)
		}
	}
	d := toDelta(stream[0])
	nd := d.Negate()
	rel := stream[0].Rel
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.ApplyDelta(rel, d); err != nil {
			b.Fatal(err)
		}
		if err := m.ApplyDelta(rel, nd); err != nil {
			b.Fatal(err)
		}
	}
}

func microIndexProbe(b *testing.B) {
	ir := data.NewIndexedRelation(data.NewRelation[int64](ring.Int{}, data.NewSchema("A", "B")))
	for i := 0; i < microKeys; i++ {
		ir.MergeIndexed(data.Ints(int64(i%509), int64(i)), 1) // ~8 entries per bucket
	}
	ix := ir.EnsureIndex(data.NewSchema("A"))
	var buf []byte
	probe := make([]data.Tuple, 509)
	for i := range probe {
		probe[i] = data.Ints(int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	sum := int64(0)
	for i := 0; i < b.N; i++ {
		buf = probe[i%len(probe)].AppendKey(buf[:0])
		for e := range ix.ProbeBytes(buf).All() {
			sum += e.Payload
		}
	}
	_ = sum
}

// microRadixSortKeys measures the MSD radix sort on encoded tuple keys —
// the comparison-free sort every snapshot path (dirty lists, full builds,
// shard reduction) runs on. The workload is microKeys encoded (A, B) keys
// in a fixed shuffled order, re-copied into a reusable scratch each
// iteration; the copy is a flat memmove dwarfed by the sort.
func microRadixSortKeys(b *testing.B) {
	_, tups := microRelation()
	base := make([]string, len(tups))
	for i, t := range tups {
		base[i] = string(t.AppendKey(nil))
	}
	rng := rand.New(rand.NewSource(8))
	rng.Shuffle(len(base), func(i, j int) { base[i], base[j] = base[j], base[i] })
	scratch := make([]string, len(base))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, base)
		data.RadixSortKeys(scratch)
	}
}

// microSnapshotPublish measures the steady-state epoch publish loop: one
// key dirtied, one snapshot published and released. The release is part of
// the contract being measured — it is what lets the snapshot arena recycle
// chunk storage deterministically instead of waiting on GC cycles (see
// internal/data/snaparena.go) — and the alloc count doubles as the
// zero-alloc-publish regression guard.
func microSnapshotPublish(b *testing.B) {
	r, tups := microRelation()
	r.Snapshot().Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Merge(tups[i%microKeys], 1)
		r.Snapshot().Release()
	}
}
