package bench

import (
	"sync"
	"sync/atomic"
	"time"

	"fivm/internal/data"
	"fivm/internal/datasets"
	"fivm/internal/ivm"
	"fivm/internal/serve"
)

// ReaderStats summarizes the serving side of one mixed-workload run: N
// reader goroutines issuing point lookups and prefix scans against the
// latest published snapshot while maintenance streams.
type ReaderStats struct {
	// Readers is the number of concurrent reader goroutines.
	Readers int
	// Ops counts completed read operations (lookups + scans) across all
	// readers; OpsPerSec is the aggregate reader throughput over the run.
	Ops       int64
	OpsPerSec float64
	// Lookups and Scans break Ops down by kind.
	Lookups int64
	Scans   int64
	// LagP50 and LagP99 are percentiles of the freshness lag readers
	// observed at each refresh: the age of the freshest available snapshot
	// (time since its publication) when the reader re-pinned. It bounds how
	// stale served reads were.
	LagP50 time.Duration
	LagP99 time.Duration
	// FinalEpoch is the last epoch any reader observed.
	FinalEpoch uint64
}

// MixedResult couples one strategy's maintenance stats with the stats of
// the readers that ran against it.
type MixedResult struct {
	RunResult
	Reader ReaderStats
}

// readerState aggregates one reader goroutine's counters without sharing
// cache lines with its siblings.
type readerState struct {
	ops, lookups, scans int64
	lags                []time.Duration
	epoch               uint64
	_                   [32]byte
}

// RunMixed drives the maintainer through the stream exactly like RunStream
// while opts.Readers goroutines serve reads from the published snapshots:
// each reader pins the latest epoch, issues point lookups on sampled
// group-by keys and leading-variable prefix scans, and periodically
// refreshes its pin, recording the freshness lag. Snapshot publication is
// enabled before the stream starts (so the maintenance loop pays the
// per-batch publish cost — the quantity under test); with opts.Readers == 0
// publication stays off and the result equals a plain RunStream.
func RunMixed[P any](name string, m ivm.Maintainer[P], toDelta func(b datasets.Batch) *data.Relation[P], stream []datasets.Batch, opts RunOptions) MixedResult {
	if opts.Readers <= 0 {
		return MixedResult{RunResult: RunStream(name, Adapt(m, toDelta), stream, opts)}
	}
	m.Snapshot() // enable publication from the maintenance goroutine

	var (
		stop   atomic.Bool
		wg     sync.WaitGroup
		states = make([]readerState, opts.Readers)
	)
	for i := 0; i < opts.Readers; i++ {
		wg.Add(1)
		go func(st *readerState) {
			defer wg.Done()
			rd := serve.NewReader[P](m)
			st.lags = append(st.lags, rd.Lag())
			keys := sampleKeys(rd, nil)
			for n := int64(0); ; n++ {
				if n%256 == 0 && n > 0 {
					if rd.Refresh() {
						st.lags = append(st.lags, rd.Lag())
						keys = sampleKeys(rd, keys)
					}
				}
				if len(keys) == 0 {
					// Empty result (e.g. cold start): full scans only.
					rd.Scan(nil, func(data.Tuple, P) bool { return true })
					st.scans++
				} else if k := keys[n%int64(len(keys))]; n%16 == 0 {
					// Prefix scan over the group's leading variable.
					rd.Scan(k[:min(1, len(k))], func(data.Tuple, P) bool { return true })
					st.scans++
				} else {
					rd.Lookup(k)
					st.lookups++
				}
				st.ops++
				// Check after the op, so even a stream that drains instantly
				// leaves every reader with at least one completed operation.
				if stop.Load() {
					break
				}
			}
			rd.Refresh()
			st.epoch = rd.Epoch()
		}(&states[i])
	}

	res := RunStream(name, Adapt(m, toDelta), stream, opts)
	stop.Store(true)
	wg.Wait()

	out := MixedResult{RunResult: res}
	out.Reader.Readers = opts.Readers
	var lags []time.Duration
	for i := range states {
		st := &states[i]
		out.Reader.Ops += st.ops
		out.Reader.Lookups += st.lookups
		out.Reader.Scans += st.scans
		lags = append(lags, st.lags...)
		if st.epoch > out.Reader.FinalEpoch {
			out.Reader.FinalEpoch = st.epoch
		}
	}
	if s := res.Elapsed.Seconds(); s > 0 {
		out.Reader.OpsPerSec = float64(out.Reader.Ops) / s
	}
	out.Reader.LagP50 = percentile(lags, 0.50)
	out.Reader.LagP99 = percentile(lags, 0.99)
	return out
}

// sampleKeys collects up to 64 group-by key tuples from the reader's pinned
// result, reusing the previous sample's backing slice. Snapshot tuples are
// immutable, so retaining them across epochs is safe.
func sampleKeys[P any](rd *serve.Reader[P], prev []data.Tuple) []data.Tuple {
	keys := prev[:0]
	rd.Scan(nil, func(t data.Tuple, _ P) bool {
		keys = append(keys, t)
		return len(keys) < 64
	})
	return keys
}

// runServed appends a strategy's run to results, and — when opts.Readers is
// set — runs it as a mixed read/write workload and also records the reader
// stats. Figure drivers use it so `-readers N` turns any maintenance
// experiment into a serving experiment.
func runServed[P any](results *[]RunResult, served *[]MixedResult, name string, m ivm.Maintainer[P],
	toDelta func(b datasets.Batch) *data.Relation[P], stream []datasets.Batch, opts RunOptions) {
	if opts.Readers > 0 {
		mr := RunMixed(name, m, toDelta, stream, opts)
		*results = append(*results, mr.RunResult)
		*served = append(*served, mr)
		return
	}
	*results = append(*results, RunStream(name, Adapt(m, toDelta), stream, opts))
}

// mixedTable renders the serving-side stats of a mixed-workload run
// alongside the write throughput the readers ran against.
func mixedTable(title string, served []MixedResult) *Table {
	t := &Table{
		Title: title + " — concurrent readers",
		Note:  "lag: age of the freshest snapshot at each reader refresh",
		Header: []string{"strategy", "readers", "reader ops/s", "lookups", "scans",
			"lag p50", "lag p99", "epochs", "write tput"},
	}
	for _, mr := range served {
		t.AddRow(mr.Name, mr.Reader.Readers, fmtTput(mr.Reader.OpsPerSec),
			mr.Reader.Lookups, mr.Reader.Scans,
			fmtDur(mr.Reader.LagP50.Seconds()), fmtDur(mr.Reader.LagP99.Seconds()),
			mr.Reader.FinalEpoch, fmtTputRes(mr.RunResult))
	}
	return t
}
