package bench

import (
	"testing"
	"time"

	"fivm/internal/datasets"
)

// TestServeBenchRows runs the serve scenario at tiny scale and checks the
// report rows: all four cases present, ok, with positive throughput, and a
// measured staleness distribution.
func TestServeBenchRows(t *testing.T) {
	rows := ServeBench(ServeBenchConfig{
		Retailer:   datasets.RetailerConfig{Locations: 3, Dates: 6, Items: 12, ItemsPerLocDate: 3, Seed: 7},
		BatchSize:  50,
		Readers:    2,
		ReadWindow: 50 * time.Millisecond,
	})
	want := map[string]bool{"ingest": false, "http-lookup": false, "http-scan": false, "follower-staleness": false}
	for _, r := range rows {
		if r.Scenario != "serve" {
			t.Fatalf("scenario = %q, want serve", r.Scenario)
		}
		if _, ok := want[r.Case]; !ok {
			t.Fatalf("unexpected case %q", r.Case)
		}
		want[r.Case] = true
		if r.Status != "ok" {
			t.Fatalf("case %s status = %q", r.Case, r.Status)
		}
		if r.ThroughputTPS <= 0 {
			t.Fatalf("case %s throughput = %v, want > 0", r.Case, r.ThroughputTPS)
		}
		if r.Tuples <= 0 {
			t.Fatalf("case %s tuples = %d, want > 0", r.Case, r.Tuples)
		}
	}
	for c, seen := range want {
		if !seen {
			t.Fatalf("missing case %q", c)
		}
	}
	for _, r := range rows {
		if r.Case == "follower-staleness" && r.StalenessP99Ns <= 0 {
			t.Fatalf("staleness p99 = %d, want > 0", r.StalenessP99Ns)
		}
	}
}
