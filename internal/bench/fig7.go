package bench

import (
	"fmt"
	"time"

	"fivm/internal/datasets"
	"fivm/internal/ivm"
	"fivm/internal/ring"
	"fivm/internal/vorder"
)

// Fig7Config scales the cofactor maintenance experiments (Figure 7).
type Fig7Config struct {
	Dataset   string // "retailer" or "housing"
	BatchSize int
	// Timeout bounds each strategy's run (the paper's one-hour limit,
	// scaled down); the scalar per-aggregate strategies are expected to
	// hit it.
	Timeout time.Duration
	// Group is the number of stream batches applied per ApplyDeltas call
	// (default 1); see RunOptions.Group.
	Group int
	// Workers is the shard/worker count for parallel maintenance (default 1,
	// sequential). Strategies are wrapped in ivm.NewParallel, partitioning
	// the database by the best-covered join variable.
	Workers int
	// Readers runs N concurrent snapshot-reader goroutines against every
	// strategy while it streams (the -readers CLI flag): maintenance
	// publishes an epoch per batch and readers issue lookups and prefix
	// scans against it, reported in an extra serving table.
	Readers  int
	Retailer datasets.RetailerConfig
	Housing  datasets.HousingConfig
	// IncludeScalar adds the per-aggregate DBT and 1-IVM competitors
	// (very slow by design — that is the result).
	IncludeScalar bool
	// AutoOrder replaces the handpicked variable orders with
	// optimizer-chosen ones: engines receive a nil order plus dataset
	// statistics and self-plan (the -auto-order CLI flag).
	AutoOrder bool
}

// DefaultFig7 is a laptop-scale configuration.
func DefaultFig7(dataset string) Fig7Config {
	return Fig7Config{
		Dataset:       dataset,
		BatchSize:     1000,
		Timeout:       5 * time.Second,
		Retailer:      datasets.DefaultRetailer(),
		Housing:       datasets.DefaultHousing(),
		IncludeScalar: true,
	}
}

func fig7Dataset(cfg Fig7Config) *datasets.Dataset {
	if cfg.Dataset == "housing" {
		return datasets.GenHousing(cfg.Housing)
	}
	return datasets.GenRetailer(cfg.Retailer)
}

// Fig7 regenerates Figure 7: incremental maintenance of the cofactor matrix
// under batched updates to all relations, plus the ONE variants (updates to
// the largest relation only, all others preloaded). Expected shape: F-IVM
// has the highest throughput and lowest memory; SQL-OPT trails by a
// constant factor; DBT-RING pays for extra views; the scalar-payload DBT
// and 1-IVM are orders of magnitude slower (timing out on scaled streams
// just as they time out at one hour in the paper).
func Fig7(cfg Fig7Config) []*Table {
	ds, results, served := fig7Run(cfg)
	title := fmt.Sprintf("Figure 7: cofactor maintenance, %s, batches of %d", ds.Name, cfg.BatchSize)
	if cfg.AutoOrder {
		title += ", auto-order"
	}
	opts := RunOptions{Workers: cfg.Workers}
	tables := fig7Tables(workersTitle(title, opts), results)
	if len(served) > 0 {
		tables = append(tables, mixedTable(workersTitle(title, opts), served))
	}
	return tables
}

// fig7Run executes the Figure 7 strategy runs and returns the raw results
// (one RunResult per strategy, plus reader-side stats when cfg.Readers > 0),
// shared by the table renderer above and the machine-readable suite runner
// (see suite.go).
func fig7Run(cfg Fig7Config) (*datasets.Dataset, []RunResult, []MixedResult) {
	ds := fig7Dataset(cfg)
	cs := newCofactorStrategies(ds.Query)
	ord := ds.NewOrder
	if cfg.AutoOrder {
		cs.stats = analyze(ds)
		ord = func() *vorder.Order { return nil }
	}
	stream := datasets.RoundRobinStream(ds, ds.Query.RelNames(), cfg.BatchSize)
	oneStream := datasets.SingleRelationStream(ds, ds.Largest, cfg.BatchSize)
	opts := RunOptions{Timeout: cfg.Timeout, Group: cfg.Group, Workers: cfg.Workers, Readers: cfg.Readers}

	var results []RunResult
	var served []MixedResult

	// F-IVM: one view tree, cofactor-ring payloads.
	{
		m, err := parallelize[ring.Triple](ds.Query, ring.Cofactor{}, cfg.Workers,
			func() (ivm.Maintainer[ring.Triple], error) { return cs.FIVM(ord(), nil) })
		if err != nil {
			panic(err)
		}
		attachRouterStats(m, cs.stats)
		must(m.Init())
		runServed(&results, &served, "F-IVM", m, tripleDelta(ds.Query), stream, opts)
		closeMaintainer(m)
	}
	// SQL-OPT: same views, degree-indexed aggregate encoding.
	{
		m, err := parallelize[ring.DegMap](ds.Query, ring.DegreeMap{}, cfg.Workers,
			func() (ivm.Maintainer[ring.DegMap], error) { return cs.SQLOPT(ord(), nil) })
		if err != nil {
			panic(err)
		}
		must(m.Init())
		runServed(&results, &served, "SQL-OPT", m, degMapDelta(ds.Query), stream, opts)
		closeMaintainer(m)
	}
	// DBT-RING: recursive hierarchies, cofactor-ring payloads.
	{
		m, err := parallelize[ring.Triple](ds.Query, ring.Cofactor{}, cfg.Workers,
			func() (ivm.Maintainer[ring.Triple], error) { return cs.DBTRing(nil) })
		if err != nil {
			panic(err)
		}
		must(m.Init())
		runServed(&results, &served, "DBT-RING", m, tripleDelta(ds.Query), stream, opts)
		closeMaintainer(m)
	}
	if cfg.IncludeScalar {
		// DBT: one scalar hierarchy per aggregate, no sharing.
		m, err := parallelize[float64](ds.Query, ring.Float{}, cfg.Workers,
			func() (ivm.Maintainer[float64], error) { return cs.DBTScalar(nil) })
		if err != nil {
			panic(err)
		}
		must(m.Init())
		runServed(&results, &served, "DBT", m, floatDelta(ds.Query), stream, opts)
		closeMaintainer(m)

		// 1-IVM: one delta query per aggregate per update.
		fo, err := parallelize[float64](ds.Query, ring.Float{}, cfg.Workers,
			func() (ivm.Maintainer[float64], error) { return cs.FirstOrderScalar(ord()) })
		if err != nil {
			panic(err)
		}
		must(fo.Init())
		runServed(&results, &served, "1-IVM", fo, floatDelta(ds.Query), stream, opts)
		closeMaintainer(fo)
	}
	// ONE variants: updates to the largest relation only.
	skip := map[string]bool{ds.Largest: true}
	{
		m, err := parallelize[ring.Triple](ds.Query, ring.Cofactor{}, cfg.Workers,
			func() (ivm.Maintainer[ring.Triple], error) { return cs.FIVM(ord(), []string{ds.Largest}) })
		if err != nil {
			panic(err)
		}
		must(preload(m, ds, tripleDelta(ds.Query), skip))
		runServed(&results, &served, "F-IVM ONE", m, tripleDelta(ds.Query), oneStream, opts)
		closeMaintainer(m)
	}
	{
		m, err := parallelize[ring.DegMap](ds.Query, ring.DegreeMap{}, cfg.Workers,
			func() (ivm.Maintainer[ring.DegMap], error) { return cs.SQLOPT(ord(), []string{ds.Largest}) })
		if err != nil {
			panic(err)
		}
		must(preload(m, ds, degMapDelta(ds.Query), skip))
		runServed(&results, &served, "SQL-OPT ONE", m, degMapDelta(ds.Query), oneStream, opts)
		closeMaintainer(m)
	}
	{
		m, err := parallelize[ring.Triple](ds.Query, ring.Cofactor{}, cfg.Workers,
			func() (ivm.Maintainer[ring.Triple], error) { return cs.DBTRing([]string{ds.Largest}) })
		if err != nil {
			panic(err)
		}
		must(preload(m, ds, tripleDelta(ds.Query), skip))
		runServed(&results, &served, "DBT-RING ONE", m, tripleDelta(ds.Query), oneStream, opts)
		closeMaintainer(m)
	}
	return ds, results, served
}

// workersTitle annotates a figure title with the run's worker count.
func workersTitle(title string, opts RunOptions) string {
	if opts.Workers > 1 {
		title += fmt.Sprintf(", %d workers", opts.Workers)
	}
	return title
}

// fig7Tables renders a summary plus throughput/memory traces.
func fig7Tables(title string, results []RunResult) []*Table {
	sum := &Table{
		Title:  title,
		Header: []string{"strategy", "views", "tuples", "elapsed", "throughput", "p50 batch", "p99 batch", "peak mem", "status"},
	}
	for _, r := range results {
		sum.AddRow(r.Name, r.Views, r.Tuples, fmtDur(r.Elapsed.Seconds()), fmtTput(r.Throughput),
			fmtDur(r.P50Batch.Seconds()), fmtDur(r.P99Batch.Seconds()), fmtMem(r.PeakMem), r.Status())
	}

	trace := &Table{
		Title:  title + " — throughput per stream fraction",
		Header: []string{"fraction"},
	}
	memTrace := &Table{
		Title:  title + " — memory per stream fraction",
		Header: []string{"fraction"},
	}
	for _, r := range results {
		trace.Header = append(trace.Header, r.Name)
		memTrace.Header = append(memTrace.Header, r.Name)
	}
	maxPts := 0
	for _, r := range results {
		if len(r.Points) > maxPts {
			maxPts = len(r.Points)
		}
	}
	for i := 0; i < maxPts; i++ {
		row := make([]string, 0, len(results)+1)
		memRow := make([]string, 0, len(results)+1)
		frac := ""
		for _, r := range results {
			if i < len(r.Points) {
				if frac == "" {
					frac = fmt.Sprintf("%.1f", r.Points[i].Fraction)
				}
				row = append(row, fmtTput(r.Points[i].TuplesSec))
				memRow = append(memRow, fmtMem(r.Points[i].MemBytes))
			} else {
				row = append(row, "-")
				memRow = append(memRow, "-")
			}
		}
		trace.Rows = append(trace.Rows, append([]string{frac}, row...))
		memTrace.Rows = append(memTrace.Rows, append([]string{frac}, memRow...))
	}
	return []*Table{sum, trace, memTrace}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
