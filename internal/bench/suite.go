package bench

import (
	"runtime"
	"time"

	"fivm/internal/datasets"
	"fivm/internal/wal"
)

// SuiteConfig sizes the continuous-benchmark suite (`fivm bench`). The
// committed baseline (BENCH_6.json) and every CI run must use the same
// config — benchdiff compares absolute numbers, so differing scales would
// read as regressions. DefaultSuite is therefore deliberately small: the
// suite exists to catch relative slowdowns on every change, not to
// reproduce the paper's figures (use the individual experiments for that).
type SuiteConfig struct {
	Retailer  datasets.RetailerConfig
	Twitter   datasets.TwitterConfig
	BatchSize int
	// Timeout bounds each strategy run; a timed-out entry is recorded with
	// status "timeout" and skipped as a comparison baseline.
	Timeout time.Duration
	// Workers is the shard count for parallel maintenance (default 1).
	Workers int
	// Readers is the snapshot-reader count for the mixed scenario.
	Readers int
	// Views is the view count for the multiview scenario.
	Views int
	// WALDir is the parent directory for the fig7wal scenario's WAL files;
	// empty (the committed-baseline setting) uses the system temp dir. The
	// scenario always runs — a baseline row missing from a run reads as a
	// regression to benchdiff.
	WALDir string
	// WALFsync is the fig7wal sync policy. The committed baseline leaves it
	// zero only notionally: DefaultSuite pins wal.FsyncNever so the scenario
	// measures the append/encode path, not device fsync latency.
	WALFsync wal.FsyncPolicy
	// Micro includes the hot-path microbenchmarks (see micro.go).
	Micro bool
	// Reps repeats the fig7/fig13/mixed sweeps and keeps each case's best
	// rep (default 3). The CI-scale runs are short enough that one GC pause
	// or scheduler hiccup halves a measured throughput; best-of-N filters
	// those slow-side outliers, which is what makes a regression threshold
	// meaningful (the multiview runner applies the same policy internally).
	Reps int
}

// DefaultSuite is the CI-scale configuration the committed baseline uses.
func DefaultSuite() SuiteConfig {
	return SuiteConfig{
		Retailer:  datasets.RetailerConfig{Locations: 8, Dates: 24, Items: 60, ItemsPerLocDate: 8, Seed: 1},
		Twitter:   datasets.TwitterConfig{Users: 200, Edges: 3000, Seed: 3},
		BatchSize: 200,
		Timeout:   30 * time.Second,
		Readers:   2,
		Views:     4,
		WALFsync:  wal.FsyncNever,
		Micro:     true,
		Reps:      3,
	}
}

// bestOf merges repeated sweeps of the same scenario, keeping each case's
// best-throughput rep (row order follows the first rep). Preference is
// lexicographic: an ok rep beats a failed one, a rep whose readers actually
// ran beats one that starved them (a starved mixed rep measures write-only
// throughput — committing its inflated number as a baseline would make
// every honest future run read as a regression), and throughput breaks the
// remaining ties.
func bestOf(runs [][]ScenarioResult) []ScenarioResult {
	if len(runs) == 1 {
		return runs[0]
	}
	better := func(row, best ScenarioResult) bool {
		if okNow, okBest := row.Status == "ok", best.Status == "ok"; okNow != okBest {
			return okNow
		}
		if stNow, stBest := readersStarved(row), readersStarved(best); stNow != stBest {
			return !stNow
		}
		return row.ThroughputTPS > best.ThroughputTPS
	}
	out := append([]ScenarioResult(nil), runs[0]...)
	for _, rows := range runs[1:] {
		for _, row := range rows {
			found := false
			for i := range out {
				if out[i].Case != row.Case {
					continue
				}
				found = true
				if better(row, out[i]) {
					out[i] = row
				}
				break
			}
			if !found {
				out = append(out, row)
			}
		}
	}
	return out
}

// suiteScenario converts one strategy run into a report row.
func suiteScenario(scenario string, r RunResult, cfg SuiteConfig, readers int) ScenarioResult {
	return ScenarioResult{
		Scenario:      scenario,
		Case:          r.Name,
		Batch:         cfg.BatchSize,
		Workers:       max(1, cfg.Workers),
		Readers:       readers,
		Tuples:        r.Tuples,
		ThroughputTPS: r.Throughput,
		P50BatchNs:    r.P50Batch.Nanoseconds(),
		P99BatchNs:    r.P99Batch.Nanoseconds(),
		PeakMemBytes:  r.PeakMem,
		Status:        r.Status(),
	}
}

// RunSuite executes the benchmark suite — the fig7 and fig13 strategy
// sweeps (ring-payload strategies only; the scalar competitors are slow by
// design and tested elsewhere), the mixed maintenance+serving scenario, and
// the multiview shared-vs-separate comparison — plus the hot-path
// microbenchmarks, and returns the machine-readable report.
func RunSuite(cfg SuiteConfig) *Report {
	rep := NewReport()

	// add stamps every row of the scenario just finished with the current
	// process high-water mark (MemStats.Sys only grows, so later scenarios
	// include earlier ones' footprint; rows within one report are still
	// comparable to the same rows in another report, which is what benchdiff
	// needs).
	add := func(rows []ScenarioResult) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		for i := range rows {
			rows[i].PeakRSSBytes = ms.Sys
		}
		rep.Scenarios = append(rep.Scenarios, rows...)
	}

	reps := max(1, cfg.Reps)
	sweep := func(one func() []ScenarioResult) {
		runs := make([][]ScenarioResult, reps)
		for i := range runs {
			runs[i] = one()
		}
		add(bestOf(runs))
	}

	f7 := Fig7Config{
		Dataset:   "retailer",
		BatchSize: cfg.BatchSize,
		Timeout:   cfg.Timeout,
		Workers:   cfg.Workers,
		Retailer:  cfg.Retailer,
	}
	sweep(func() []ScenarioResult {
		_, res7, _ := fig7Run(f7)
		rows := make([]ScenarioResult, 0, len(res7))
		for _, r := range res7 {
			rows = append(rows, suiteScenario("fig7", r, cfg, 0))
		}
		return rows
	})

	f13 := Fig13Config{
		BatchSize: cfg.BatchSize,
		Timeout:   cfg.Timeout,
		Workers:   cfg.Workers,
		Twitter:   cfg.Twitter,
	}
	sweep(func() []ScenarioResult {
		res13, _ := fig13Run(f13)
		rows := make([]ScenarioResult, 0, len(res13))
		for _, r := range res13 {
			rows = append(rows, suiteScenario("fig13", r, cfg, 0))
		}
		return rows
	})

	f7m := f7
	f7m.Readers = max(1, cfg.Readers)
	sweep(func() []ScenarioResult {
		_, _, served := fig7Run(f7m)
		rows := make([]ScenarioResult, 0, len(served))
		for _, mr := range served {
			row := suiteScenario("mixed", mr.RunResult, cfg, f7m.Readers)
			row.ReaderOpsPerSec = mr.Reader.OpsPerSec
			rows = append(rows, row)
		}
		return rows
	})

	// Durability overhead: the fig7 cofactor view through db.DB, without a
	// WAL vs appending every batch to a segmented one (fsync per WALFsync).
	wb := WALBenchConfig{
		Retailer:  cfg.Retailer,
		BatchSize: cfg.BatchSize,
		Workers:   cfg.Workers,
		Dir:       cfg.WALDir,
		Fsync:     cfg.WALFsync,
	}
	sweep(func() []ScenarioResult {
		resW := WALBench(wb)
		rows := make([]ScenarioResult, 0, len(resW))
		for _, r := range resW {
			rows = append(rows, suiteScenario("fig7wal", r, cfg, 0))
		}
		return rows
	})

	// Network serving + replication: HTTP ingest/lookup/scan throughput over
	// real loopback TCP plus the follower's replication staleness.
	sb := ServeBenchConfig{
		Retailer:  cfg.Retailer,
		BatchSize: cfg.BatchSize,
		Workers:   cfg.Workers,
		Readers:   max(1, cfg.Readers),
		Dir:       cfg.WALDir,
	}
	sweep(func() []ScenarioResult { return ServeBench(sb) })

	mv := multiViewRun(MultiViewConfig{
		Views:     cfg.Views,
		BatchSize: cfg.BatchSize,
		Workers:   cfg.Workers,
		Retailer:  cfg.Retailer,
		Reps:      2,
	})
	mvRow := func(mode string, el time.Duration, err error) ScenarioResult {
		row := ScenarioResult{
			Scenario: "multiview",
			Case:     mode,
			Batch:    cfg.BatchSize,
			Workers:  max(1, cfg.Workers),
			Views:    mv.cfg.Views,
			Tuples:   mv.total,
			Status:   "ok",
		}
		if err != nil {
			row.Status = "error: " + err.Error()
		} else if el > 0 {
			row.ThroughputTPS = float64(mv.total) / el.Seconds()
		}
		return row
	}
	add([]ScenarioResult{
		mvRow("shared-db", mv.shared, mv.sharedErr),
		mvRow("separate-engines", mv.separate, mv.sepErr),
	})

	if cfg.Micro {
		rep.Micro = RunMicro()
	}
	return rep
}
