package bench

import (
	"fmt"
	"time"

	"fivm/internal/datasets"
)

// Fig12Config scales the batch-size sweep (Figure 12).
type Fig12Config struct {
	BatchSizes []int
	Timeout    time.Duration
	Retailer   datasets.RetailerConfig
	Housing    datasets.HousingConfig
	Twitter    datasets.TwitterConfig
}

// DefaultFig12 is a laptop-scale configuration (the paper sweeps 100 to
// 100,000 on streams of tens of millions; the scaled sweep keeps the same
// ratios to the stream length).
func DefaultFig12() Fig12Config {
	return Fig12Config{
		BatchSizes: []int{10, 100, 1000, 10000},
		Timeout:    5 * time.Second,
		Retailer:   datasets.DefaultRetailer(),
		Housing:    datasets.DefaultHousing(),
		Twitter:    datasets.DefaultTwitter(),
	}
}

// Fig12 regenerates Figure 12: cofactor maintenance throughput across batch
// sizes for the best three strategies per dataset. Expected shape: both very
// small and very large batches lose to mid-sized ones (per-batch overhead vs
// cache effects), with the sweet spot around 1,000–10,000 tuples.
func Fig12(cfg Fig12Config) *Table {
	t := &Table{
		Title:  "Figure 12: cofactor maintenance throughput vs batch size (tuples/sec)",
		Header: []string{"dataset", "strategy"},
	}
	for _, bs := range cfg.BatchSizes {
		t.Header = append(t.Header, fmt.Sprintf("BS=%d", bs))
	}

	type strat struct {
		name string
		mk   func(ds *datasets.Dataset) Loader
	}
	mkFIVM := func(ds *datasets.Dataset) Loader {
		cs := newCofactorStrategies(ds.Query)
		m, err := cs.FIVM(ds.NewOrder(), nil)
		must(err)
		must(m.Init())
		return Adapt(m, tripleDelta(ds.Query))
	}
	mkSQLOPT := func(ds *datasets.Dataset) Loader {
		cs := newCofactorStrategies(ds.Query)
		m, err := cs.SQLOPT(ds.NewOrder(), nil)
		must(err)
		must(m.Init())
		return Adapt(m, degMapDelta(ds.Query))
	}
	mkDBTRing := func(ds *datasets.Dataset) Loader {
		cs := newCofactorStrategies(ds.Query)
		m, err := cs.DBTRing(nil)
		must(err)
		must(m.Init())
		return Adapt(m, tripleDelta(ds.Query))
	}
	mk1IVMScalar := func(ds *datasets.Dataset) Loader {
		cs := newCofactorStrategies(ds.Query)
		m, err := cs.FirstOrderScalar(ds.NewOrder())
		must(err)
		must(m.Init())
		return Adapt[float64](m, floatDelta(ds.Query))
	}

	gens := []struct {
		name   string
		gen    func() *datasets.Dataset
		strats []strat
	}{
		{"retailer", func() *datasets.Dataset { return datasets.GenRetailer(cfg.Retailer) },
			[]strat{{"F-IVM", mkFIVM}, {"SQL-OPT", mkSQLOPT}, {"DBT-RING", mkDBTRing}}},
		{"housing", func() *datasets.Dataset { return datasets.GenHousing(cfg.Housing) },
			[]strat{{"F-IVM", mkFIVM}, {"SQL-OPT", mkSQLOPT}, {"DBT-RING", mkDBTRing}}},
		{"twitter", func() *datasets.Dataset { return datasets.GenTwitter(cfg.Twitter) },
			[]strat{{"F-IVM", mkFIVM}, {"1-IVM", mk1IVMScalar}, {"DBT-RING", mkDBTRing}}},
	}

	for _, g := range gens {
		for _, s := range g.strats {
			row := []string{g.name, s.name}
			for _, bs := range cfg.BatchSizes {
				ds := g.gen()
				stream := datasets.RoundRobinStream(ds, ds.Query.RelNames(), bs)
				res := RunStream(s.name, s.mk(ds), stream, RunOptions{Timeout: cfg.Timeout})
				row = append(row, fmtTputRes(res))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}
