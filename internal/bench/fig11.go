package bench

import (
	"fmt"
	"time"

	"fivm/internal/datasets"
	"fivm/internal/ivm"
	"fivm/internal/ring"
)

// Fig11Config scales the sum-aggregate table (Appendix C, Figure 11).
type Fig11Config struct {
	BatchSize int
	Timeout   time.Duration
	Retailer  datasets.RetailerConfig
	Housing   datasets.HousingConfig
}

// DefaultFig11 is a laptop-scale configuration.
func DefaultFig11() Fig11Config {
	return Fig11Config{
		BatchSize: 1000,
		Timeout:   5 * time.Second,
		Retailer:  datasets.DefaultRetailer(),
		Housing:   datasets.DefaultHousing(),
	}
}

// Fig11 regenerates the Appendix C table: average throughput of maintaining
// a SUM aggregate over the natural join, for F-IVM, DBT, 1-IVM, F-RE
// (factorized re-evaluation), and DBT-RE (unfactorized re-evaluation), with
// updates to all relations. Expected shape: F-IVM highest; DBT close behind
// (same pre-aggregated views on Housing's star join); 1-IVM slower; both
// re-evaluation strategies orders of magnitude behind, with DBT-RE worst
// (timeouts marked *).
func Fig11(cfg Fig11Config) *Table {
	t := &Table{
		Title:  "Figure 11 (Appendix C): SUM-aggregate maintenance throughput (tuples/sec)",
		Note:   "* = hit the scaled-down timeout; ! = aborted by a maintenance error; throughput over the processed prefix",
		Header: []string{"dataset", "F-IVM", "DBT", "1-IVM", "F-RE", "DBT-RE"},
	}
	for _, name := range []string{"retailer", "housing"} {
		var ds *datasets.Dataset
		var sumVar string
		if name == "retailer" {
			ds = datasets.GenRetailer(cfg.Retailer)
			sumVar = "inventoryunits"
		} else {
			ds = datasets.GenHousing(cfg.Housing)
			sumVar = "postcode"
		}
		lift := sumLift(sumVar)
		stream := datasets.RoundRobinStream(ds, ds.Query.RelNames(), cfg.BatchSize)
		opts := RunOptions{Timeout: cfg.Timeout}
		cell := fmtTputRes

		fivm, err := ivm.New[float64](ds.Query, ds.NewOrder(), ring.Float{}, lift,
			ivm.Options[float64]{ComposeChains: true})
		must(err)
		must(fivm.Init())
		rFIVM := RunStream("F-IVM", Adapt[float64](fivm, floatDelta(ds.Query)), stream, opts)

		dbt, err := ivm.NewRecursive[float64](ds.Query, ring.Float{}, lift, nil)
		must(err)
		must(dbt.Init())
		rDBT := RunStream("DBT", Adapt[float64](dbt, floatDelta(ds.Query)), stream, opts)

		first, err := ivm.NewFirstOrder[float64](ds.Query, ds.NewOrder(), ring.Float{}, lift)
		must(err)
		must(first.Init())
		r1 := RunStream("1-IVM", Adapt[float64](first, floatDelta(ds.Query)), stream, opts)

		fre, err := ivm.NewReEval[float64](ds.Query, ds.NewOrder(), ring.Float{}, lift)
		must(err)
		must(fre.Init())
		rFRE := RunStream("F-RE", Adapt[float64](fre, floatDelta(ds.Query)), stream, opts)

		dre := ivm.NewNaiveReEval[float64](ds.Query, ring.Float{}, lift)
		must(dre.Init())
		rDRE := RunStream("DBT-RE", Adapt[float64](dre, floatDelta(ds.Query)), stream, opts)

		t.AddRow(fmt.Sprintf("%s (SUM(%s))", name, sumVar),
			cell(rFIVM), cell(rDBT), cell(r1), cell(rFRE), cell(rDRE))
	}
	return t
}
