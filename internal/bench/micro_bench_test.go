package bench

import "testing"

// BenchmarkMicro exposes the suite's microbenchmarks to the standard
// harness, so `go test -bench Micro ./internal/bench/` measures exactly
// what `fivm bench` puts in the report.
func BenchmarkMicro(b *testing.B) {
	for _, mb := range MicroBenches() {
		b.Run(mb.Name, mb.Fn)
	}
}
