package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fivm/internal/datasets"
	"fivm/internal/db"
	"fivm/internal/netserve"
	"fivm/internal/replica"
	"fivm/internal/ring"
	"fivm/internal/wal"
)

// ServeBenchConfig sizes the network-serving scenario: a durable primary
// maintaining the fig7 cofactor view plus a SQL aggregate view, ingesting
// the retailer stream through the bounded ApplyQueue behind a netserve HTTP
// server, with HTTP readers hitting the lookup and scan paths over real
// loopback TCP and an in-memory replication follower streaming the WAL.
type ServeBenchConfig struct {
	Retailer  datasets.RetailerConfig
	BatchSize int
	Workers   int
	// Readers is the number of HTTP lookup goroutines (default 2); one
	// additional goroutine drives scans.
	Readers int
	// ReadWindow extends the read measurement past the end of ingest so
	// short CI-scale streams still produce stable ops/s (default 200ms).
	ReadWindow time.Duration
	// Dir is the parent directory for the primary's WAL (empty: temp dir).
	Dir string
}

// ServeBench runs the scenario and returns the serve/* report rows:
// ingest throughput through the HTTP write stack, lookup and scan ops/s
// against live maintenance, and the follower's replication staleness.
func ServeBench(cfg ServeBenchConfig) []ScenarioResult {
	readers := max(1, cfg.Readers)
	window := cfg.ReadWindow
	if window <= 0 {
		window = 200 * time.Millisecond
	}
	fail := func(err error) []ScenarioResult {
		return []ScenarioResult{{Scenario: "serve", Case: "ingest", Batch: cfg.BatchSize,
			Workers: max(1, cfg.Workers), Status: "error: " + err.Error()}}
	}

	ds := datasets.GenRetailer(cfg.Retailer)
	stream := datasets.RoundRobinStream(ds, ds.Query.RelNames(), cfg.BatchSize)
	cat := db.Catalog{}
	for _, rd := range ds.Query.Rels {
		cat[rd.Name] = rd.Schema
	}

	dir, err := os.MkdirTemp(cfg.Dir, "fivm-servebench-*")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(dir)
	d, err := db.Open(cat, db.Options{Durability: &db.DurabilityOptions{Dir: dir, Fsync: wal.FsyncNever}})
	if err != nil {
		return fail(err)
	}
	defer d.Close()

	// The fig7 cofactor view (typed, maintenance load) plus a SQL aggregate
	// view: the latter is what HTTP readers query and what replicates to
	// the follower (typed views are not WAL-persisted).
	if _, err := db.CreateView[ring.Triple](d, "cofactor", ds.Query.Rename("cofactor"),
		ring.Cofactor{}, tripleLift(ds.Query.Vars()),
		db.ViewOptions{Workers: cfg.Workers, ComposeChains: true}); err != nil {
		return fail(err)
	}
	keyAttr := cat[ds.Largest][0]
	sql := fmt.Sprintf("CREATE VIEW served AS SELECT %s, SUM(1) FROM %s GROUP BY %s",
		keyAttr, ds.Largest, keyAttr)
	if _, err := d.Exec(sql); err != nil {
		return fail(err)
	}

	// HTTP front end over loopback TCP (exercising the per-connection
	// reader cache, not just the handler).
	q := db.NewApplyQueue(d, 256)
	defer q.Close()
	srv, err := netserve.New(netserve.Config{DB: func() *db.DB { return d }, Queue: q})
	if err != nil {
		return fail(err)
	}
	hl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	go srv.Serve(hl)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	base := "http://" + hl.Addr().String()

	// Replication: an in-memory follower over loopback.
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	prim, err := replica.NewPrimary(d, rl)
	if err != nil {
		return fail(err)
	}
	go prim.Serve()
	defer prim.Close()
	fol, err := replica.NewFollower(replica.FollowerConfig{Primary: rl.Addr().String(), Catalog: cat})
	if err != nil {
		return fail(err)
	}
	folCtx, folCancel := context.WithCancel(context.Background())
	folDone := make(chan struct{})
	go func() { defer close(folDone); fol.Run(folCtx) }()
	defer func() { folCancel(); fol.Close(); <-folDone }()

	// Lookup keys observed in the stream for the served view's group-by.
	var keys []string
	seen := map[string]bool{}
	for _, b := range stream {
		if b.Rel != ds.Largest {
			continue
		}
		for _, t := range b.Tuples {
			if k := t[0].String(); !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	if len(keys) == 0 {
		return fail(fmt.Errorf("no lookup keys in stream"))
	}

	// Staleness sampler: first-seen publication times per applied count on
	// both sides; the difference is the follower's lag for that batch.
	sampler := newStalenessSampler(d, fol)
	go sampler.run()

	// Readers: lookups and scans over keep-alive connections, running
	// through ingest plus a fixed tail window.
	stopRead := make(chan struct{})
	var lookupOps, scanOps atomic.Int64
	var readWG sync.WaitGroup
	readStart := time.Now()
	for i := 0; i < readers; i++ {
		readWG.Add(1)
		go func(i int) {
			defer readWG.Done()
			client := &http.Client{}
			for j := i; ; j++ {
				select {
				case <-stopRead:
					return
				default:
				}
				if httpGet(client, base+"/view/served/lookup?key="+keys[j%len(keys)]) {
					lookupOps.Add(1)
				}
			}
		}(i)
	}
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		client := &http.Client{}
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			if httpGet(client, base+"/view/served/scan?limit=64") {
				scanOps.Add(1)
			}
		}
	}()

	// Ingest through the queue (the single maintenance goroutine).
	lats := make([]time.Duration, 0, len(stream))
	tuples := 0
	var ingestErr error
	ingestStart := time.Now()
	for _, b := range stream {
		bs := time.Now()
		if err := q.Apply([]db.Update{{Rel: b.Rel, Tuples: b.Tuples, Mult: 1}}); err != nil {
			ingestErr = err
			break
		}
		lats = append(lats, time.Since(bs))
		tuples += len(b.Tuples)
	}
	ingestElapsed := time.Since(ingestStart)

	// Let the follower fully converge, then stop the samplers and readers.
	wantApplied := d.Epoch().Applied
	convergeErr := waitFollowerApplied(fol, wantApplied, 10*time.Second)
	replElapsed := time.Since(ingestStart)
	time.Sleep(window)
	close(stopRead)
	readWG.Wait()
	readElapsed := time.Since(readStart)
	p50, p99 := sampler.stop()

	var peakMem int
	_ = q.Do(func(d *db.DB) error { peakMem = d.MemoryBytes(); return nil })

	status := func(err error) string {
		if err != nil {
			return "error: " + err.Error()
		}
		return "ok"
	}
	ingest := ScenarioResult{
		Scenario: "serve", Case: "ingest",
		Batch: cfg.BatchSize, Workers: max(1, cfg.Workers),
		Tuples:        tuples,
		ThroughputTPS: float64(tuples) / ingestElapsed.Seconds(),
		P50BatchNs:    percentile(lats, 0.50).Nanoseconds(),
		P99BatchNs:    percentile(lats, 0.99).Nanoseconds(),
		PeakMemBytes:  peakMem,
		Status:        status(ingestErr),
	}
	lookup := ScenarioResult{
		Scenario: "serve", Case: "http-lookup",
		Batch: cfg.BatchSize, Workers: max(1, cfg.Workers), Readers: readers,
		Tuples:          int(lookupOps.Load()),
		ThroughputTPS:   float64(lookupOps.Load()) / readElapsed.Seconds(),
		ReaderOpsPerSec: float64(lookupOps.Load()) / readElapsed.Seconds(),
		Status:          "ok",
	}
	scan := ScenarioResult{
		Scenario: "serve", Case: "http-scan",
		Batch: cfg.BatchSize, Workers: max(1, cfg.Workers), Readers: 1,
		Tuples:          int(scanOps.Load()),
		ThroughputTPS:   float64(scanOps.Load()) / readElapsed.Seconds(),
		ReaderOpsPerSec: float64(scanOps.Load()) / readElapsed.Seconds(),
		Status:          "ok",
	}
	staleness := ScenarioResult{
		Scenario: "serve", Case: "follower-staleness",
		Batch: cfg.BatchSize, Workers: max(1, cfg.Workers),
		Tuples:         tuples,
		ThroughputTPS:  float64(tuples) / replElapsed.Seconds(),
		StalenessP50Ns: p50.Nanoseconds(),
		StalenessP99Ns: p99.Nanoseconds(),
		Status:         status(convergeErr),
	}
	return []ScenarioResult{ingest, lookup, scan, staleness}
}

func httpGet(c *http.Client, url string) bool {
	resp, err := c.Get(url)
	if err != nil {
		return false
	}
	var sink json.RawMessage
	ok := json.NewDecoder(resp.Body).Decode(&sink) == nil && resp.StatusCode == http.StatusOK
	resp.Body.Close()
	return ok
}

func waitFollowerApplied(f *replica.Follower, want uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if f.DB().Epoch().Applied >= want {
			return nil
		}
		time.Sleep(200 * time.Microsecond)
	}
	return fmt.Errorf("follower stuck at applied=%d, want %d", f.DB().Epoch().Applied, want)
}

// stalenessSampler polls both epoch pointers and records when each applied
// count was first observed on each side; the per-count difference is the
// replication staleness distribution.
type stalenessSampler struct {
	p      *db.DB
	f      *replica.Follower
	done   chan struct{}
	mu     sync.Mutex
	pSeen  map[uint64]time.Time
	fSeen  map[uint64]time.Time
	closed bool
}

func newStalenessSampler(p *db.DB, f *replica.Follower) *stalenessSampler {
	return &stalenessSampler{
		p: p, f: f,
		done:  make(chan struct{}),
		pSeen: map[uint64]time.Time{},
		fSeen: map[uint64]time.Time{},
	}
}

func (s *stalenessSampler) run() {
	tick := time.NewTicker(200 * time.Microsecond)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-tick.C:
			now := time.Now()
			pa := s.p.Epoch().Applied
			fa := s.f.DB().Epoch().Applied
			s.mu.Lock()
			if _, ok := s.pSeen[pa]; !ok {
				s.pSeen[pa] = now
			}
			if _, ok := s.fSeen[fa]; !ok {
				s.fSeen[fa] = now
			}
			s.mu.Unlock()
		}
	}
}

// stop ends sampling and returns the p50/p99 staleness over every applied
// count observed on both sides.
func (s *stalenessSampler) stop() (p50, p99 time.Duration) {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.done)
	}
	var lags []time.Duration
	for a, ft := range s.fSeen {
		if pt, ok := s.pSeen[a]; ok && ft.After(pt) {
			lags = append(lags, ft.Sub(pt))
		}
	}
	s.mu.Unlock()
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	return percentile(lags, 0.50), percentile(lags, 0.99)
}
