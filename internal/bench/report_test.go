package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func sampleReport() *Report {
	r := NewReport()
	r.Scenarios = []ScenarioResult{
		{Scenario: "fig7", Case: "F-IVM", Tuples: 1000, ThroughputTPS: 100000, Status: "ok"},
		{Scenario: "fig7", Case: "DBT-RING", Tuples: 1000, ThroughputTPS: 20000, Status: "ok"},
		{Scenario: "fig7", Case: "1-IVM", Tuples: 100, ThroughputTPS: 50, Status: "timeout"},
		{Scenario: "multiview", Case: "shared-db", Tuples: 4000, ThroughputTPS: 80000, Status: "ok"},
	}
	r.Micro = []MicroResult{
		{Name: "RelationGet", NsPerOp: 40, AllocsPerOp: 0},
		{Name: "SnapshotPublish", NsPerOp: 9000, AllocsPerOp: 14, BytesPerOp: 3800},
	}
	return r
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	r := sampleReport()
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ReportSchema || len(got.Scenarios) != 4 || len(got.Micro) != 2 {
		t.Fatalf("round trip mangled report: %+v", got)
	}
	if got.Scenarios[0].ThroughputTPS != 100000 || got.Micro[1].AllocsPerOp != 14 {
		t.Fatalf("round trip mangled values: %+v", got)
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_bad.json")
	r := sampleReport()
	r.Schema = "fivm-bench/v0"
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

func TestCompareIdenticalIsClean(t *testing.T) {
	if regs := Compare(sampleReport(), sampleReport(), 0.10); len(regs) != 0 {
		t.Fatalf("identical reports flagged: %v", regs)
	}
}

func TestCompareWithinThresholdIsClean(t *testing.T) {
	cur := sampleReport()
	cur.Scenarios[0].ThroughputTPS *= 0.95 // -5% < 10% threshold
	cur.Micro[0].NsPerOp *= 1.08           // +8% < 10% threshold
	cur.Micro[1].BytesPerOp = 4100         // +8% < 10% threshold
	if regs := Compare(sampleReport(), cur, 0.10); len(regs) != 0 {
		t.Fatalf("within-threshold noise flagged: %v", regs)
	}
}

func TestCompareFlagsInjectedRegressions(t *testing.T) {
	cur := sampleReport()
	cur.Scenarios[0].ThroughputTPS *= 0.8 // -20% throughput: regression
	cur.Micro[0].NsPerOp *= 1.5           // +50% ns/op: regression
	cur.Micro[0].AllocsPerOp = 1          // any alloc increase: regression
	cur.Micro[1].BytesPerOp = 7600        // +100% bytes/op: regression
	regs := Compare(sampleReport(), cur, 0.10)
	want := map[string]bool{
		"scenario fig7/F-IVM throughput_tps": false,
		"micro RelationGet ns_per_op":        false,
		"micro RelationGet allocs_per_op":    false,
		"micro SnapshotPublish bytes_per_op": false,
	}
	for _, r := range regs {
		key := r.Kind + " " + r.Name + " " + r.Metric
		if _, ok := want[key]; !ok {
			t.Errorf("unexpected regression %s", r)
			continue
		}
		want[key] = true
		if r.Ratio <= 1 {
			t.Errorf("%s: ratio %.2f, want > 1", key, r.Ratio)
		}
		if r.Metric == "bytes_per_op" && (r.Old != 3800 || r.New != 7600) {
			t.Errorf("%s: baseline/current values %.0f -> %.0f, want 3800 -> 7600", key, r.Old, r.New)
		}
	}
	for key, seen := range want {
		if !seen {
			t.Errorf("regression %s not flagged", key)
		}
	}
}

func TestCompareSkipsNonOKBaseline(t *testing.T) {
	cur := sampleReport()
	// The timed-out baseline row regressing further must not fire: its
	// throughput is an artifact of where the timeout cut the stream.
	cur.Scenarios[2].ThroughputTPS = 1
	if regs := Compare(sampleReport(), cur, 0.10); len(regs) != 0 {
		t.Fatalf("timed-out baseline used as a bar: %v", regs)
	}
}

func TestCompareFlagsMissingAndErrored(t *testing.T) {
	cur := sampleReport()
	cur.Scenarios = cur.Scenarios[:1]                     // drop DBT-RING and shared-db rows
	cur.Scenarios[0].Status = "error: engine fell over"   // and break the survivor
	cur.Micro = []MicroResult{{Name: "SnapshotPublish"}}  // drop RelationGet
	cur.Micro[0].NsPerOp, cur.Micro[0].AllocsPerOp = 1, 0 // improvements are fine
	regs := Compare(sampleReport(), cur, 0.10)
	metrics := map[string]string{}
	for _, r := range regs {
		metrics[r.Kind+" "+r.Name] = r.Metric
	}
	if metrics["scenario fig7/DBT-RING"] != "missing" ||
		metrics["scenario multiview/shared-db"] != "missing" ||
		metrics["micro RelationGet"] != "missing" {
		t.Errorf("missing entries not flagged: %v", regs)
	}
	if metrics["scenario fig7/F-IVM"] != "throughput_tps" {
		t.Errorf("errored current row not flagged: %v", regs)
	}
}

func TestMicroBenchNamesStable(t *testing.T) {
	// The names are the BENCH schema surface benchdiff keys on; this test
	// pins them so a rename is a conscious baseline-refreshing change.
	want := []string{
		"TupleAppendKey", "RelationGet", "RelationMerge",
		"RelationMergeTripleSteady", "TripleAddInto",
		"CofactorAxpy", "Rank1SymUpdate", "ApplyDeltaSteady",
		"IndexProbe", "RadixSortKeys", "SnapshotPublish",
	}
	got := MicroBenches()
	if len(got) != len(want) {
		t.Fatalf("got %d microbenchmarks, want %d", len(got), len(want))
	}
	for i, mb := range got {
		if mb.Name != want[i] {
			t.Errorf("micro[%d] = %q, want %q", i, mb.Name, want[i])
		}
		if mb.Fn == nil {
			t.Errorf("micro %q has nil body", mb.Name)
		}
	}
}

func TestBestOfKeepsBestRep(t *testing.T) {
	mk := func(tput float64, status string) ScenarioResult {
		return ScenarioResult{Scenario: "fig7", Case: "F-IVM", ThroughputTPS: tput, Status: status}
	}
	runs := [][]ScenarioResult{
		{mk(100, "ok"), {Scenario: "fig7", Case: "DBT-RING", ThroughputTPS: 50, Status: "timeout"}},
		{mk(140, "ok"), {Scenario: "fig7", Case: "DBT-RING", ThroughputTPS: 40, Status: "ok"}},
		{mk(120, "ok")},
	}
	got := bestOf(runs)
	if len(got) != 2 {
		t.Fatalf("got %d rows, want 2", len(got))
	}
	if got[0].ThroughputTPS != 140 {
		t.Errorf("F-IVM best rep %v, want 140", got[0].ThroughputTPS)
	}
	// An ok rep beats a faster timed-out one.
	if got[1].Status != "ok" || got[1].ThroughputTPS != 40 {
		t.Errorf("DBT-RING kept %v/%s, want 40/ok", got[1].ThroughputTPS, got[1].Status)
	}
}

func TestCompareSkipsStarvationMismatch(t *testing.T) {
	mixed := func(tput, readerOps float64) ScenarioResult {
		return ScenarioResult{Scenario: "mixed", Case: "DBT-RING", Readers: 2,
			ThroughputTPS: tput, ReaderOpsPerSec: readerOps, Status: "ok"}
	}
	base, cur := NewReport(), NewReport()
	// Baseline rep starved its readers (inflated write-only throughput);
	// the current run served reads — different workloads, no comparison.
	base.Scenarios = []ScenarioResult{mixed(100000, 100)}
	cur.Scenarios = []ScenarioResult{mixed(30000, 20e6)}
	if regs := Compare(base, cur, 0.10); len(regs) != 0 {
		t.Fatalf("starvation mismatch used as a bar: %v", regs)
	}
	// Both starved: the numbers measure the same condition, so a real drop
	// still fires.
	cur.Scenarios = []ScenarioResult{mixed(30000, 100)}
	if regs := Compare(base, cur, 0.10); len(regs) != 1 {
		t.Fatalf("both-starved drop not flagged: %v", regs)
	}
	// Neither starved: ordinary comparison.
	base.Scenarios = []ScenarioResult{mixed(100000, 30e6)}
	cur.Scenarios = []ScenarioResult{mixed(30000, 20e6)}
	if regs := Compare(base, cur, 0.10); len(regs) != 1 {
		t.Fatalf("healthy drop not flagged: %v", regs)
	}
}

func TestBestOfPrefersUnstarvedRep(t *testing.T) {
	mk := func(tput, readerOps float64) ScenarioResult {
		return ScenarioResult{Scenario: "mixed", Case: "DBT-RING", Readers: 2,
			ThroughputTPS: tput, ReaderOpsPerSec: readerOps, Status: "ok"}
	}
	// The starved rep's 100k is write-only throughput; the 30k rep is the
	// real mixed measurement and must win despite the lower number.
	got := bestOf([][]ScenarioResult{{mk(100000, 50)}, {mk(30000, 20e6)}, {mk(25000, 18e6)}})
	if len(got) != 1 || got[0].ThroughputTPS != 30000 {
		t.Fatalf("kept %+v, want the 30000 tps unstarved rep", got)
	}
}

func TestDeltaSummary(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Scenarios[0].ThroughputTPS = 120000 // F-IVM +20%
	cur.Micro[0].NsPerOp = 30               // RelationGet -25% (better)
	cur.Micro = append(cur.Micro, MicroResult{Name: "CofactorAxpy", NsPerOp: 150})

	got := DeltaSummary(base, cur)
	for _, want := range []string{
		"fig7/F-IVM", "100000 tps", "120000 tps", "+20.0%",
		"RelationGet", "40.00 ns/op", "30.00 ns/op", "-25.0% (better)",
		"CofactorAxpy", "new",
		"timeout", // non-ok baseline rows show status, not tps
	} {
		if !strings.Contains(got, want) {
			t.Errorf("DeltaSummary missing %q in:\n%s", want, got)
		}
	}
}
