package bench

import (
	"math/rand"
	"time"

	"fivm/internal/data"
	"fivm/internal/ivm"
	"fivm/internal/matrix"
	"fivm/internal/mcm"
	"fivm/internal/ring"
)

// Fig6Config scales the matrix chain experiments (Figure 6).
type Fig6Config struct {
	// Ns are the matrix dimensions for the row-update sweep (paper: 256 to
	// 16384; scaled default: 16 to 128).
	Ns []int
	// N is the dimension for the rank-r sweep (paper: 4096).
	N int
	// Ranks are the tensor ranks for the rank-r sweep (paper: 1 to 256).
	Ranks []int
	// Updates is the number of timed updates per configuration.
	Updates int
	Seed    int64
}

// DefaultFig6 is a laptop-scale configuration.
func DefaultFig6() Fig6Config {
	return Fig6Config{
		Ns:      []int{16, 32, 64, 128},
		N:       96,
		Ranks:   []int{1, 2, 4, 8, 16, 32, 64},
		Updates: 3,
		Seed:    1,
	}
}

// timeIt runs f n times and returns the average seconds per run.
func timeIt(n int, f func()) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		f()
	}
	return time.Since(start).Seconds() / float64(n)
}

// randomRow draws a random row index and row values.
func randomRow(rng *rand.Rand, n int) (int, []float64) {
	i := rng.Intn(n)
	row := make([]float64, n)
	for j := range row {
		row[j] = rng.Float64()*2 - 1
	}
	return i, row
}

// hashChainBaseline builds a 1-IVM or RE-EVAL maintainer over the 3-chain
// query with the matrices loaded as relations.
func hashChainBaseline(kind string, ms []*matrix.Dense) ivm.Maintainer[float64] {
	q := mcm.ChainQuery(3)
	var m ivm.Maintainer[float64]
	var err error
	lift := func(string, data.Value) float64 { return 1 }
	switch kind {
	case "1-IVM":
		m, err = ivm.NewFirstOrder[float64](q, mcm.ChainOrder(3), ring.Float{}, lift)
	case "RE-EVAL":
		m, err = ivm.NewReEval[float64](q, mcm.ChainOrder(3), ring.Float{}, lift)
	}
	if err != nil {
		panic(err)
	}
	for i := 1; i <= 3; i++ {
		rel := mcm.MatrixToRelation(ms[i-1], mcm.VarName(i), mcm.VarName(i+1))
		if err := m.Load(mcm.MatName(i), rel); err != nil {
			panic(err)
		}
	}
	if err := m.Init(); err != nil {
		panic(err)
	}
	return m
}

// Fig6Left regenerates Figure 6 (left): average time per one-row update to
// A2 in A = A1·A2·A3, for the hash (DBToaster-style) and dense (Octave
// stand-in) backends and the three strategies. Expected shape: F-IVM's
// advantage over 1-IVM and RE-EVAL grows with n (O(n²) vs O(n³)).
func Fig6Left(cfg Fig6Config) *Table {
	t := &Table{
		Title:  "Figure 6 (left): matrix chain, one-row updates to A2",
		Note:   "seconds per update; lower is better",
		Header: []string{"n", "F-IVM", "1-IVM", "RE-EVAL", "dense F-IVM", "dense 1-IVM", "dense RE-EVAL"},
	}
	for _, n := range cfg.Ns {
		rng := rand.New(rand.NewSource(cfg.Seed))
		ms := []*matrix.Dense{matrix.Random(n, n, rng), matrix.Random(n, n, rng), matrix.Random(n, n, rng)}

		hc, err := mcm.NewHashChain(3, 2, ms)
		if err != nil {
			panic(err)
		}
		first := hashChainBaseline("1-IVM", ms)
		re := hashChainBaseline("RE-EVAL", ms)
		dfivm, _ := mcm.NewDenseChain(2, ms)
		dfirst, _ := mcm.NewDenseChain(2, ms)
		dre, _ := mcm.NewDenseChain(2, ms)

		tFIVM := timeIt(cfg.Updates, func() {
			i, row := randomRow(rng, n)
			_, r1 := mcm.RowUpdate(n, i, row)
			if err := hc.ApplyRank1(r1.U, r1.V); err != nil {
				panic(err)
			}
		})
		rowDelta := func() ivm.NamedDelta[float64] {
			i, row := randomRow(rng, n)
			d, _ := mcm.RowUpdate(n, i, row)
			return ivm.NamedDelta[float64]{
				Rel:   mcm.MatName(2),
				Delta: mcm.MatrixToRelation(d, mcm.VarName(2), mcm.VarName(3)),
			}
		}
		t1IVM := timeIt(cfg.Updates, func() {
			if err := first.ApplyDeltas([]ivm.NamedDelta[float64]{rowDelta()}); err != nil {
				panic(err)
			}
		})
		tRE := timeIt(cfg.Updates, func() {
			if err := re.ApplyDeltas([]ivm.NamedDelta[float64]{rowDelta()}); err != nil {
				panic(err)
			}
		})
		tDF := timeIt(cfg.Updates, func() {
			i, row := randomRow(rng, n)
			_, r1 := mcm.RowUpdate(n, i, row)
			dfivm.ApplyRank1FIVM(r1.U, r1.V)
		})
		tD1 := timeIt(cfg.Updates, func() {
			i, row := randomRow(rng, n)
			d, _ := mcm.RowUpdate(n, i, row)
			dfirst.ApplyFirstOrder(d)
		})
		tDR := timeIt(cfg.Updates, func() {
			i, row := randomRow(rng, n)
			d, _ := mcm.RowUpdate(n, i, row)
			dre.ApplyReEval(d)
		})
		t.AddRow(n, fmtDur(tFIVM), fmtDur(t1IVM), fmtDur(tRE), fmtDur(tDF), fmtDur(tD1), fmtDur(tDR))
	}
	return t
}

// Fig6Right regenerates Figure 6 (right): average time per rank-r update to
// A2 for growing tensor rank r, against re-evaluation (whose cost is
// rank-independent). Expected shape: F-IVM grows linearly in r and crosses
// re-evaluation at some rank (paper: r ≈ 96 at n = 4096).
func Fig6Right(cfg Fig6Config) *Table {
	n := cfg.N
	t := &Table{
		Title:  "Figure 6 (right): matrix chain, rank-r updates to A2",
		Note:   "seconds per rank-r update; RE-EVAL is rank-independent",
		Header: []string{"rank", "F-IVM", "RE-EVAL", "dense F-IVM", "dense RE-EVAL"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ms := []*matrix.Dense{matrix.Random(n, n, rng), matrix.Random(n, n, rng), matrix.Random(n, n, rng)}

	for _, r := range cfg.Ranks {
		hc, err := mcm.NewHashChain(3, 2, ms)
		if err != nil {
			panic(err)
		}
		re := hashChainBaseline("RE-EVAL", ms)
		dfivm, _ := mcm.NewDenseChain(2, ms)
		dre, _ := mcm.NewDenseChain(2, ms)

		tF := timeIt(cfg.Updates, func() {
			_, terms := matrix.RandomRank(n, n, r, rng)
			if err := hc.ApplyRankR(terms); err != nil {
				panic(err)
			}
		})
		tR := timeIt(cfg.Updates, func() {
			d, _ := matrix.RandomRank(n, n, r, rng)
			batch := []ivm.NamedDelta[float64]{{
				Rel:   mcm.MatName(2),
				Delta: mcm.MatrixToRelation(d, mcm.VarName(2), mcm.VarName(3)),
			}}
			if err := re.ApplyDeltas(batch); err != nil {
				panic(err)
			}
		})
		tDF := timeIt(cfg.Updates, func() {
			_, terms := matrix.RandomRank(n, n, r, rng)
			dfivm.ApplyRankRFIVM(terms)
		})
		tDR := timeIt(cfg.Updates, func() {
			d, _ := matrix.RandomRank(n, n, r, rng)
			dre.ApplyReEval(d)
		})
		t.AddRow(r, fmtDur(tF), fmtDur(tR), fmtDur(tDF), fmtDur(tDR))
	}
	return t
}
