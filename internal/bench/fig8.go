package bench

import (
	"fmt"
	"time"

	"fivm/internal/data"
	"fivm/internal/datasets"
	"fivm/internal/factorized"
	"fivm/internal/query"
)

// Fig8Config scales the result-representation experiments (Figure 8).
type Fig8Config struct {
	Dataset   string // "retailer" or "housing"
	BatchSize int
	Timeout   time.Duration
	Retailer  datasets.RetailerConfig
	Housing   datasets.HousingConfig
	// Scales is the Housing scale sweep (paper: 1..20).
	Scales []int
}

// DefaultFig8 is a laptop-scale configuration.
func DefaultFig8(dataset string) Fig8Config {
	return Fig8Config{
		Dataset:   dataset,
		BatchSize: 1000,
		Timeout:   10 * time.Second,
		Retailer:  datasets.DefaultRetailer(),
		Housing:   datasets.HousingConfig{Postcodes: 200, Scale: 1, Seed: 2},
		Scales:    []int{1, 2, 3, 4, 5, 6, 8, 10},
	}
}

// fullJoinQuery returns the dataset's natural join with every variable in
// the output (the conjunctive query whose result Figure 8 maintains).
func fullJoinQuery(q query.Query) query.Query {
	return query.MustNew(q.Name+"_join", q.Vars(), q.Rels...)
}

// resultLoader adapts factorized.Result to the harness Loader.
type resultLoader struct {
	r  *factorized.Result
	to func(b datasets.Batch) *data.Relation[int64]
}

func (l resultLoader) ApplyBatches(bs []datasets.Batch) error {
	for _, b := range bs {
		if err := l.r.ApplyDelta(b.Rel, l.to(b)); err != nil {
			return err
		}
	}
	return nil
}
func (l resultLoader) ViewCount() int   { return l.r.ViewCount() }
func (l resultLoader) MemoryBytes() int { return l.r.MemoryBytes() }

// Fig8Retailer regenerates Figure 8 (left): maintaining the Retailer
// natural join under updates to the largest relation, with the three result
// representations. Expected shape: factorized payloads beat both listing
// encodings in throughput and memory by significant factors.
func Fig8Retailer(cfg Fig8Config) []*Table {
	ds := datasets.GenRetailer(cfg.Retailer)
	jq := fullJoinQuery(ds.Query)
	stream := datasets.SingleRelationStream(ds, ds.Largest, cfg.BatchSize)
	skip := map[string]bool{ds.Largest: true}

	var results []RunResult
	for _, mode := range []factorized.Mode{factorized.FactPayloads, factorized.ListPayloads, factorized.ListKeys} {
		r, err := factorized.New(mode, jq, ds.NewOrder(), []string{ds.Largest})
		if err != nil {
			panic(err)
		}
		for rel, tuples := range ds.Tuples {
			if skip[rel] {
				continue
			}
			must(r.Load(rel, intBatch(jq, rel, tuples)))
		}
		must(r.Init())
		results = append(results, RunStream(mode.String(), resultLoader{r: r, to: intDelta(jq)}, stream, RunOptions{Timeout: cfg.Timeout}))
	}
	return fig7Tables(fmt.Sprintf("Figure 8 (left): %s natural join, updates to %s, batches of %d", ds.Name, ds.Largest, cfg.BatchSize), results)
}

// Fig8Housing regenerates Figure 8 (right): the Housing natural join across
// scale factors, updates to all relations. Expected shape: listing time and
// memory grow cubically with the scale (three relations grow linearly each),
// factorized stays near-linear, with orders-of-magnitude gaps at the top of
// the sweep.
func Fig8Housing(cfg Fig8Config) *Table {
	t := &Table{
		Title:  "Figure 8 (right): Housing natural join across scale factors",
		Note:   "total maintenance time and final memory per representation; * = timeout, ! = error",
		Header: []string{"scale", "Fact time", "List-payload time", "List-key time", "Fact mem", "List-payload mem", "List-key mem"},
	}
	for _, scale := range cfg.Scales {
		h := cfg.Housing
		h.Scale = scale
		ds := datasets.GenHousing(h)
		jq := fullJoinQuery(ds.Query)
		stream := datasets.RoundRobinStream(ds, ds.Query.RelNames(), cfg.BatchSize)

		times := make(map[factorized.Mode]float64)
		mems := make(map[factorized.Mode]int)
		failed := make(map[factorized.Mode]bool)
		for _, mode := range []factorized.Mode{factorized.FactPayloads, factorized.ListPayloads, factorized.ListKeys} {
			r, err := factorized.New(mode, jq, ds.NewOrder(), nil)
			if err != nil {
				panic(err)
			}
			must(r.Init())
			res := RunStream(mode.String(), resultLoader{r: r, to: intDelta(jq)}, stream, RunOptions{Timeout: cfg.Timeout})
			times[mode] = res.Elapsed.Seconds()
			mems[mode] = res.PeakMem
			failed[mode] = res.Err != nil
			if res.TimedOut {
				times[mode] = -times[mode] // mark timeouts with a sign
			}
		}
		fmtT := func(m factorized.Mode) string {
			s := times[m]
			out := fmtDur(s)
			if s < 0 {
				out = fmtDur(-s) + "*"
			}
			if failed[m] {
				out += "!"
			}
			return out
		}
		t.AddRow(scale, fmtT(factorized.FactPayloads), fmtT(factorized.ListPayloads), fmtT(factorized.ListKeys),
			fmtMem(mems[factorized.FactPayloads]), fmtMem(mems[factorized.ListPayloads]), fmtMem(mems[factorized.ListKeys]))
	}
	return t
}

// intBatch builds a multiplicity relation for a relation's tuples.
func intBatch(q query.Query, rel string, tuples []data.Tuple) *data.Relation[int64] {
	return intDelta(q)(datasets.Batch{Rel: rel, Tuples: tuples})
}
