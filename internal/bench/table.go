package bench

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result: a titled grid of cells.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table with aligned columns.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}
