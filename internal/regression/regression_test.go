package regression

import (
	"math"
	"math/rand"
	"testing"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/vorder"
)

// twoRelQuery joins R1(id, x1) with R2(id, x2, y) on id.
func twoRelQuery() query.Query {
	return query.MustNew("train", nil,
		query.RelDef{Name: "R1", Schema: data.NewSchema("id", "x1")},
		query.RelDef{Name: "R2", Schema: data.NewSchema("id", "x2", "y")},
	)
}

func twoRelOrder() *vorder.Order {
	return vorder.MustNew(vorder.V("id", vorder.V("x1"), vorder.V("x2", vorder.V("y"))))
}

// bruteCofactor computes count/sums/quadratics of the join by enumeration.
func bruteCofactor(rows [][]float64, m int) (c float64, s []float64, q []float64) {
	s = make([]float64, m)
	q = make([]float64, m*m)
	for _, r := range rows {
		c++
		for i := 0; i < m; i++ {
			s[i] += r[i]
			for j := 0; j < m; j++ {
				q[i*m+j] += r[i] * r[j]
			}
		}
	}
	return c, s, q
}

func TestCofactorMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := twoRelQuery()
	m, err := NewCofactorModel(q, twoRelOrder(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Build random data and the corresponding joined rows.
	nIDs := 6
	var r1, r2 []data.Tuple
	x1ByID := make(map[int64][]int64)
	x2yByID := make(map[int64][][2]int64)
	for i := 0; i < 15; i++ {
		id, x1 := int64(rng.Intn(nIDs)), int64(rng.Intn(9)-4)
		r1 = append(r1, data.Ints(id, x1))
		x1ByID[id] = append(x1ByID[id], x1)
	}
	for i := 0; i < 15; i++ {
		id, x2, y := int64(rng.Intn(nIDs)), int64(rng.Intn(9)-4), int64(rng.Intn(9)-4)
		r2 = append(r2, data.Ints(id, x2, y))
		x2yByID[id] = append(x2yByID[id], [2]int64{x2, y})
	}
	if err := m.Load("R1", r1); err != nil {
		t.Fatal(err)
	}
	if err := m.Load("R2", r2); err != nil {
		t.Fatal(err)
	}
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}

	// Joined design-matrix rows over (id, x1, x2, y) in m.Vars order.
	var rows [][]float64
	for id, x1s := range x1ByID {
		for _, x1 := range x1s {
			for _, xy := range x2yByID[id] {
				row := make([]float64, 4)
				row[m.VarIndex("id")] = float64(id)
				row[m.VarIndex("x1")] = float64(x1)
				row[m.VarIndex("x2")] = float64(xy[0])
				row[m.VarIndex("y")] = float64(xy[1])
				rows = append(rows, row)
			}
		}
	}
	wantC, wantS, wantQ := bruteCofactor(rows, 4)

	gotQ, gotS, gotC := m.Cofactor()
	if gotC != wantC {
		t.Fatalf("count = %v, want %v", gotC, wantC)
	}
	for i := range wantS {
		if math.Abs(gotS[i]-wantS[i]) > 1e-9 {
			t.Fatalf("sum[%d] = %v, want %v", i, gotS[i], wantS[i])
		}
	}
	for i := range wantQ {
		if math.Abs(gotQ[i]-wantQ[i]) > 1e-9 {
			t.Fatalf("Q[%d] = %v, want %v", i, gotQ[i], wantQ[i])
		}
	}
}

func TestCofactorIncrementalMatchesReload(t *testing.T) {
	q := twoRelQuery()
	rng := rand.New(rand.NewSource(2))

	inc, err := NewCofactorModel(q, twoRelOrder(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Init(); err != nil {
		t.Fatal(err)
	}

	var allR1, allR2 []data.Tuple
	for step := 0; step < 15; step++ {
		t1 := data.Ints(int64(rng.Intn(4)), int64(rng.Intn(7)-3))
		t2 := data.Ints(int64(rng.Intn(4)), int64(rng.Intn(7)-3), int64(rng.Intn(7)-3))
		if err := inc.Insert("R1", []data.Tuple{t1}); err != nil {
			t.Fatal(err)
		}
		if err := inc.Insert("R2", []data.Tuple{t2}); err != nil {
			t.Fatal(err)
		}
		allR1 = append(allR1, t1)
		allR2 = append(allR2, t2)

		fresh, _ := NewCofactorModel(q, twoRelOrder(), nil)
		fresh.Load("R1", allR1)
		fresh.Load("R2", allR2)
		if err := fresh.Init(); err != nil {
			t.Fatal(err)
		}
		a, b := inc.Aggregate(), fresh.Aggregate()
		if math.Abs(a.Count()-b.Count()) > 1e-9 {
			t.Fatalf("step %d: count %v vs %v", step, a.Count(), b.Count())
		}
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if math.Abs(a.QuadOf(i, j)-b.QuadOf(i, j)) > 1e-6 {
					t.Fatalf("step %d: Q(%d,%d) %v vs %v", step, i, j, a.QuadOf(i, j), b.QuadOf(i, j))
				}
			}
		}
	}

	// Deletions: removing everything returns the aggregate to zero.
	if err := inc.Delete("R1", allR1); err != nil {
		t.Fatal(err)
	}
	if inc.Aggregate().Count() != 0 {
		t.Errorf("count after deleting R1 = %v, want 0 (empty join)", inc.Aggregate().Count())
	}
}

func TestTrainRecoversExactModel(t *testing.T) {
	// y = 3 + 2*x1 - x2 exactly; training must recover the coefficients.
	q := twoRelQuery()
	m, err := NewCofactorModel(q, twoRelOrder(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var r1, r2 []data.Tuple
	id := int64(0)
	for x1 := int64(-2); x1 <= 2; x1++ {
		for x2 := int64(-2); x2 <= 2; x2++ {
			y := 3 + 2*x1 - x2
			r1 = append(r1, data.Ints(id, x1))
			r2 = append(r2, data.Ints(id, x2, y))
			id++
		}
	}
	m.Load("R1", r1)
	m.Load("R2", r2)
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	model, err := m.Train("y", []string{"x1", "x2"}, TrainOptions{MaxIters: 200000, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -1}
	for i, w := range want {
		if math.Abs(model.Theta[i]-w) > 1e-4 {
			t.Fatalf("theta = %v, want %v (grad %g after %d iters)", model.Theta, want, model.GradNorm, model.Iters)
		}
	}
	// Predict on a fresh point.
	if got := model.Predict(map[string]float64{"x1": 5, "x2": 1}); math.Abs(got-12) > 1e-3 {
		t.Errorf("Predict = %v, want 12", got)
	}
}

func TestTrainModelsOverSubsets(t *testing.T) {
	// The paper computes one cofactor matrix over all variables and learns
	// models for any label/feature subset from it (Section 7). Check that a
	// sub-model ignoring x2 still trains and differs from the full model.
	q := twoRelQuery()
	m, _ := NewCofactorModel(q, twoRelOrder(), nil)
	rng := rand.New(rand.NewSource(3))
	var r1, r2 []data.Tuple
	for i := int64(0); i < 40; i++ {
		x1 := int64(rng.Intn(11) - 5)
		x2 := int64(rng.Intn(11) - 5)
		y := 1 + x1 + 2*x2
		r1 = append(r1, data.Ints(i, x1))
		r2 = append(r2, data.Ints(i, x2, y))
	}
	m.Load("R1", r1)
	m.Load("R2", r2)
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	full, err := m.Train("y", []string{"x1", "x2"}, TrainOptions{MaxIters: 100000})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := m.Train("y", []string{"x1"}, TrainOptions{MaxIters: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Theta) != 2 || len(full.Theta) != 3 {
		t.Fatalf("theta sizes %d/%d", len(sub.Theta), len(full.Theta))
	}
	if math.Abs(full.Theta[2]-2) > 1e-3 {
		t.Errorf("full model x2 coefficient = %v, want 2", full.Theta[2])
	}
}

func TestTrainErrors(t *testing.T) {
	q := twoRelQuery()
	m, _ := NewCofactorModel(q, twoRelOrder(), nil)
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train("y", []string{"x1"}, TrainOptions{}); err == nil {
		t.Error("training on empty data should fail")
	}
	m.Insert("R1", []data.Tuple{data.Ints(0, 1)})
	m.Insert("R2", []data.Tuple{data.Ints(0, 1, 1)})
	if _, err := m.Train("nope", []string{"x1"}, TrainOptions{}); err == nil {
		t.Error("unknown label should fail")
	}
	if _, err := m.Train("y", []string{"nope"}, TrainOptions{}); err == nil {
		t.Error("unknown feature should fail")
	}
	if _, err := m.Train("y", []string{"y"}, TrainOptions{}); err == nil {
		t.Error("label as feature should fail")
	}
}

// TestGroupByModels checks one model per group (paper Example 1.1's
// one-model-per-(A,C) scenario) via AggregateFor.
func TestGroupByModels(t *testing.T) {
	q := query.MustNew("grp", data.NewSchema("g"),
		query.RelDef{Name: "R1", Schema: data.NewSchema("g", "x")},
		query.RelDef{Name: "R2", Schema: data.NewSchema("g", "y")},
	)
	o := vorder.MustNew(vorder.V("g", vorder.V("x"), vorder.V("y")))
	m, err := NewCofactorModel(q, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	var r1, r2 []data.Tuple
	// Group 0: y = 2x; group 1: y = -x.
	for x := int64(1); x <= 5; x++ {
		r1 = append(r1, data.Ints(0, x), data.Ints(1, x))
		r2 = append(r2, data.Ints(0, 2*x), data.Ints(1, -x))
	}
	m.Load("R1", r1)
	m.Load("R2", r2)
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	for g, want := range map[int64]float64{0: 2, 1: -1} {
		tr, ok := m.AggregateFor(data.Ints(g))
		if !ok {
			t.Fatalf("no aggregate for group %d", g)
		}
		// With the engine grouped by g, each group's triple covers x and y
		// only; cross-join within the group pairs every x with every y, so
		// fit y over x from the group's quadratic aggregates directly:
		// slope = Q(x,y)/Q(x,x) for data generated through the origin and a
		// full cross product of matched pairs is not meaningful — instead
		// train on the group's triple and check the sign and rough scale.
		model, err := TrainFromTriple(tr, map[string]int{"g": m.VarIndex("g"), "x": m.VarIndex("x"), "y": m.VarIndex("y")},
			"y", []string{"x"}, TrainOptions{MaxIters: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if (want > 0) != (model.Theta[1] > 0) {
			t.Errorf("group %d slope sign = %v, want sign of %v", g, model.Theta[1], want)
		}
	}
}
