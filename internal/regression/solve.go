package regression

import (
	"fmt"
	"math"

	"fivm/internal/ring"
)

// SolveExact computes the least-squares parameters in closed form by
// solving the normal equations restricted to [intercept, features] against
// the label, using Gaussian elimination with partial pivoting over the
// maintained cofactor matrix. It is the direct alternative to batch
// gradient descent: O(f³) once, no step-size tuning, and a useful oracle
// for testing Train's convergence. An optional ridge term stabilizes
// singular systems (collinear features).
func (m *CofactorModel) SolveExact(label string, features []string, l2 float64) (*Model, error) {
	return SolveExactFromTriple(m.Aggregate(), m.varIdx, label, features, l2)
}

// SolveExactFromTriple solves the normal equations on an explicit compound
// aggregate.
func SolveExactFromTriple(t ring.Triple, varIdx map[string]int, label string, features []string, l2 float64) (*Model, error) {
	li, ok := varIdx[label]
	if !ok {
		return nil, fmt.Errorf("regression: unknown label %q", label)
	}
	idx := make([]int, 0, len(features))
	for _, f := range features {
		fi, ok := varIdx[f]
		if !ok {
			return nil, fmt.Errorf("regression: unknown feature %q", f)
		}
		if fi == li {
			return nil, fmt.Errorf("regression: label %q used as feature", f)
		}
		idx = append(idx, fi)
	}
	c := t.Count()
	if c <= 0 {
		return nil, fmt.Errorf("regression: empty training set")
	}

	// Normal equations A θ = b over [intercept, features]:
	// A[a][b] = Σ X_a X_b, b[a] = Σ X_a y — all entries read off the triple.
	f := len(idx)
	dim := f + 1
	cof := func(a, b int) float64 {
		// a, b index [0 = intercept, 1..f = features]; -1 denotes the label.
		toVar := func(k int) int {
			switch {
			case k == -1:
				return li
			case k == 0:
				return -1 // intercept
			default:
				return idx[k-1]
			}
		}
		va, vb := toVar(a), toVar(b)
		switch {
		case va < 0 && vb < 0:
			return c
		case va < 0:
			return t.SumOf(vb)
		case vb < 0:
			return t.SumOf(va)
		default:
			return t.QuadOf(va, vb)
		}
	}
	a := make([][]float64, dim)
	b := make([]float64, dim)
	for i := 0; i < dim; i++ {
		a[i] = make([]float64, dim)
		for j := 0; j < dim; j++ {
			a[i][j] = cof(i, j)
		}
		a[i][i] += l2
		b[i] = cof(i, -1)
	}

	theta, err := solveLinear(a, b)
	if err != nil {
		return nil, err
	}
	names := append([]string{""}, features...)
	return &Model{Label: label, Features: names, Theta: theta, Iters: 0, GradNorm: 0}, nil
}

// solveLinear solves a dense linear system by Gaussian elimination with
// partial pivoting; a and b are consumed.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("regression: singular normal equations (collinear features?); add an L2 term")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			factor := a[r][col] / a[col][col]
			if factor == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[r][k] -= factor * a[col][k]
			}
			b[r] -= factor * b[col]
		}
	}
	// Back substitution.
	out := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for k := r + 1; k < n; k++ {
			s -= a[r][k] * out[k]
		}
		out[r] = s / a[r][r]
	}
	return out, nil
}
