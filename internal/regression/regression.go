// Package regression implements in-database learning of linear regression
// models over joins (paper Section 6.2): the cofactor matrix of the join
// result is maintained incrementally as a single compound aggregate in the
// degree-m matrix ring, and models for any choice of label and feature
// subset are then trained by batch gradient descent over the cofactor
// matrix alone — without touching the training data again.
package regression

import (
	"fmt"
	"math"

	"fivm/internal/data"
	"fivm/internal/ivm"
	"fivm/internal/query"
	"fivm/internal/ring"
	"fivm/internal/vorder"
)

// CofactorModel maintains the compound aggregate (c, s, Q) — count, sums,
// and cofactor matrix — over all variables of a join query.
type CofactorModel struct {
	Query  query.Query
	Vars   data.Schema // all query variables, in index order
	varIdx map[string]int
	engine *ivm.Engine[ring.Triple]
}

// NewCofactorModel builds the maintenance engine over the given variable
// order. Every query variable becomes a feature dimension; the lifting of
// variable j's value x is g_j(x) = (1, s_j = x, Q_jj = x²). Updatable
// bounds the update workload as in the engine's Options.
func NewCofactorModel(q query.Query, o *vorder.Order, updatable []string) (*CofactorModel, error) {
	vars := q.Vars()
	varIdx := make(map[string]int, len(vars))
	for i, v := range vars {
		varIdx[v] = i
	}
	lift := func(v string, x data.Value) ring.Triple {
		return ring.LiftValue(varIdx[v], x.AsFloat())
	}
	e, err := ivm.New[ring.Triple](q, o, ring.Cofactor{}, lift, ivm.Options[ring.Triple]{
		Updatable:     updatable,
		ComposeChains: true,
	})
	if err != nil {
		return nil, err
	}
	return &CofactorModel{Query: q, Vars: vars, varIdx: varIdx, engine: e}, nil
}

// Engine exposes the underlying F-IVM engine.
func (m *CofactorModel) Engine() *ivm.Engine[ring.Triple] { return m.engine }

// Load installs initial relation contents: each tuple gets the ring's
// multiplicative identity as payload (multiplicity 1 triples are summed by
// Merge for duplicates).
func (m *CofactorModel) Load(rel string, tuples []data.Tuple) error {
	rd, ok := m.Query.Rel(rel)
	if !ok {
		return fmt.Errorf("regression: unknown relation %q", rel)
	}
	cf := ring.Cofactor{}
	r := data.NewRelation[ring.Triple](cf, rd.Schema)
	for _, t := range tuples {
		r.Merge(t, cf.One())
	}
	return m.engine.Load(rel, r)
}

// Init evaluates the initial views.
func (m *CofactorModel) Init() error { return m.engine.Init() }

// Insert applies a batch of tuple insertions to one relation.
func (m *CofactorModel) Insert(rel string, tuples []data.Tuple) error {
	return m.apply(rel, tuples, false)
}

// Delete applies a batch of tuple deletions to one relation.
func (m *CofactorModel) Delete(rel string, tuples []data.Tuple) error {
	return m.apply(rel, tuples, true)
}

func (m *CofactorModel) apply(rel string, tuples []data.Tuple, negate bool) error {
	rd, ok := m.Query.Rel(rel)
	if !ok {
		return fmt.Errorf("regression: unknown relation %q", rel)
	}
	cf := ring.Cofactor{}
	p := cf.One()
	if negate {
		p = cf.Neg(p)
	}
	d := data.NewRelation[ring.Triple](cf, rd.Schema)
	for _, t := range tuples {
		d.Merge(t, p)
	}
	return m.engine.ApplyDelta(rel, d)
}

// Aggregate returns the maintained compound aggregate. For queries without
// group-by variables this is the payload of the empty key.
func (m *CofactorModel) Aggregate() ring.Triple {
	p, _ := m.engine.Result().Get(data.Tuple{})
	return p
}

// AggregateFor returns the compound aggregate of one group (for queries
// with group-by variables).
func (m *CofactorModel) AggregateFor(key data.Tuple) (ring.Triple, bool) {
	return m.engine.Result().Get(key)
}

// VarIndex returns the feature index of a variable.
func (m *CofactorModel) VarIndex(v string) int { return m.varIdx[v] }

// Cofactor returns the dense m×m cofactor matrix, the m-vector of sums, and
// the tuple count.
func (m *CofactorModel) Cofactor() (Q []float64, s []float64, count float64) {
	t := m.Aggregate()
	k := len(m.Vars)
	return t.ExpandQ(k), t.ExpandSum(k), t.Count()
}

// TrainOptions configures batch gradient descent.
type TrainOptions struct {
	// Step is the learning rate α; 0 selects an automatic step from the
	// cofactor scale.
	Step float64
	// MaxIters bounds the convergence loop (default 10000).
	MaxIters int
	// Tol stops when the gradient's infinity norm falls below it
	// (default 1e-9 relative to the count).
	Tol float64
	// L2 is an optional ridge penalty, stabilizing ill-conditioned
	// cofactor matrices.
	L2 float64
}

// Model is a trained linear regression model over a subset of variables.
type Model struct {
	Label    string
	Features []string // includes the intercept as ""
	Theta    []float64
	Iters    int
	GradNorm float64
}

// Train learns θ for predicting label from features by batch gradient
// descent on the maintained cofactor matrix: each step costs O(f²) for f
// features and never touches the training data (paper Section 6.2). An
// intercept is always included.
func (m *CofactorModel) Train(label string, features []string, opts TrainOptions) (*Model, error) {
	t := m.Aggregate()
	return TrainFromTriple(t, m.varIdx, label, features, opts)
}

// TrainFromTriple trains on an explicit compound aggregate; exported so
// per-group models (one model per group-by key) reuse the same code path.
func TrainFromTriple(t ring.Triple, varIdx map[string]int, label string, features []string, opts TrainOptions) (*Model, error) {
	li, ok := varIdx[label]
	if !ok {
		return nil, fmt.Errorf("regression: unknown label %q", label)
	}
	idx := make([]int, 0, len(features))
	for _, f := range features {
		fi, ok := varIdx[f]
		if !ok {
			return nil, fmt.Errorf("regression: unknown feature %q", f)
		}
		if fi == li {
			return nil, fmt.Errorf("regression: label %q used as feature", f)
		}
		idx = append(idx, fi)
	}
	c := t.Count()
	if c <= 0 {
		return nil, fmt.Errorf("regression: empty training set")
	}

	// Build the restricted cofactor system over [intercept, features, label]:
	// the intercept behaves as a synthetic variable X_0 = 1, whose cofactor
	// entries are the count (with itself), the sums (with variables).
	f := len(idx)
	dim := f + 2 // intercept + features + label
	cof := func(a, b int) float64 {
		// a,b index into [0=intercept, 1..f=features, f+1=label].
		ai, bi := -1, -1
		if a >= 1 && a <= f {
			ai = idx[a-1]
		} else if a == f+1 {
			ai = li
		}
		if b >= 1 && b <= f {
			bi = idx[b-1]
		} else if b == f+1 {
			bi = li
		}
		switch {
		case ai < 0 && bi < 0:
			return c
		case ai < 0:
			return t.SumOf(bi)
		case bi < 0:
			return t.SumOf(ai)
		default:
			return t.QuadOf(ai, bi)
		}
	}

	maxIters := opts.MaxIters
	if maxIters == 0 {
		maxIters = 10000
	}
	tol := opts.Tol
	if tol == 0 {
		tol = 1e-9
	}
	step := opts.Step
	if step == 0 {
		// Normalize by the largest diagonal entry of the scaled cofactor
		// matrix so the descent contracts.
		maxDiag := 1.0
		for a := 0; a <= f; a++ {
			if d := cof(a, a) / c; d > maxDiag {
				maxDiag = d
			}
		}
		step = 1 / (maxDiag * float64(f+1))
	}

	// θ over [intercept, features]; θ_label fixed to -1 (paper footnote 1).
	theta := make([]float64, f+1)
	grad := make([]float64, f+1)
	gnorm := math.Inf(1)
	iters := 0
	for ; iters < maxIters; iters++ {
		gnorm = 0
		for a := 0; a <= f; a++ {
			g := -cof(a, f+1) // label contribution with θ_label = -1
			for b := 0; b <= f; b++ {
				g += cof(a, b) * theta[b]
			}
			g /= c
			g += opts.L2 * theta[a]
			grad[a] = g
			if ag := math.Abs(g); ag > gnorm {
				gnorm = ag
			}
		}
		if gnorm < tol {
			break
		}
		for a := range theta {
			theta[a] -= step * grad[a]
		}
		_ = dim
	}
	names := append([]string{""}, features...)
	return &Model{Label: label, Features: names, Theta: theta, Iters: iters, GradNorm: gnorm}, nil
}

// Predict evaluates the model on a feature assignment (missing features
// default to 0); the intercept is Theta[0].
func (mo *Model) Predict(assign map[string]float64) float64 {
	y := mo.Theta[0]
	for i, f := range mo.Features[1:] {
		y += mo.Theta[i+1] * assign[f]
	}
	return y
}
