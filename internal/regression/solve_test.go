package regression

import (
	"math"
	"math/rand"
	"testing"

	"fivm/internal/data"
)

func TestSolveExactRecoversModel(t *testing.T) {
	q := twoRelQuery()
	m, err := NewCofactorModel(q, twoRelOrder(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var r1, r2 []data.Tuple
	id := int64(0)
	for x1 := int64(-3); x1 <= 3; x1++ {
		for x2 := int64(-3); x2 <= 3; x2++ {
			y := 4 - 2*x1 + 5*x2
			r1 = append(r1, data.Ints(id, x1))
			r2 = append(r2, data.Ints(id, x2, y))
			id++
		}
	}
	m.Load("R1", r1)
	m.Load("R2", r2)
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	model, err := m.SolveExact("y", []string{"x1", "x2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, -2, 5}
	for i, w := range want {
		if math.Abs(model.Theta[i]-w) > 1e-9 {
			t.Fatalf("theta = %v, want %v", model.Theta, want)
		}
	}
}

// TestSolveExactMatchesGradientDescent uses the closed-form solution as an
// oracle for Train's convergence on noisy data.
func TestSolveExactMatchesGradientDescent(t *testing.T) {
	q := twoRelQuery()
	m, _ := NewCofactorModel(q, twoRelOrder(), nil)
	rng := rand.New(rand.NewSource(11))
	var r1, r2 []data.Tuple
	for i := int64(0); i < 60; i++ {
		x1 := int64(rng.Intn(13) - 6)
		x2 := int64(rng.Intn(13) - 6)
		y := 2 + 3*x1 - x2 + int64(rng.Intn(3)-1) // small integer noise
		r1 = append(r1, data.Ints(i, x1))
		r2 = append(r2, data.Ints(i, x2, y))
	}
	m.Load("R1", r1)
	m.Load("R2", r2)
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	exact, err := m.SolveExact("y", []string{"x1", "x2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	gd, err := m.Train("y", []string{"x1", "x2"}, TrainOptions{MaxIters: 500000, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact.Theta {
		if math.Abs(exact.Theta[i]-gd.Theta[i]) > 1e-4 {
			t.Fatalf("GD %v vs exact %v", gd.Theta, exact.Theta)
		}
	}
}

func TestSolveExactSingular(t *testing.T) {
	// A constant feature (x1 always 0) makes the system singular together
	// with the intercept; ridge fixes it.
	q := twoRelQuery()
	m, _ := NewCofactorModel(q, twoRelOrder(), nil)
	var r1, r2 []data.Tuple
	for i := int64(0); i < 10; i++ {
		r1 = append(r1, data.Ints(i, 0))
		r2 = append(r2, data.Ints(i, i, 2*i))
	}
	m.Load("R1", r1)
	m.Load("R2", r2)
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SolveExact("y", []string{"x1"}, 0); err == nil {
		t.Error("singular system should fail without ridge")
	}
	if _, err := m.SolveExact("y", []string{"x1"}, 1e-6); err != nil {
		t.Errorf("ridge-stabilized solve failed: %v", err)
	}
}

func TestSolveExactErrors(t *testing.T) {
	q := twoRelQuery()
	m, _ := NewCofactorModel(q, twoRelOrder(), nil)
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SolveExact("y", []string{"x1"}, 0); err == nil {
		t.Error("empty data should fail")
	}
	m.Insert("R1", []data.Tuple{data.Ints(0, 1)})
	m.Insert("R2", []data.Tuple{data.Ints(0, 1, 1)})
	if _, err := m.SolveExact("nope", []string{"x1"}, 0); err == nil {
		t.Error("unknown label should fail")
	}
	if _, err := m.SolveExact("y", []string{"nope"}, 0); err == nil {
		t.Error("unknown feature should fail")
	}
	if _, err := m.SolveExact("y", []string{"y"}, 0); err == nil {
		t.Error("label as feature should fail")
	}
}

// TestCofactorOverSlidingWindow drives the cofactor model with a windowed
// insert/delete stream and checks the final aggregate equals a fresh build
// over the surviving window.
func TestCofactorOverSlidingWindow(t *testing.T) {
	q := twoRelQuery()
	inc, err := NewCofactorModel(q, twoRelOrder(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Init(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))

	const window = 12
	var liveR1, liveR2 []data.Tuple
	for step := 0; step < 80; step++ {
		t1 := data.Ints(int64(rng.Intn(5)), int64(rng.Intn(9)-4))
		t2 := data.Ints(int64(rng.Intn(5)), int64(rng.Intn(9)-4), int64(rng.Intn(9)-4))
		if err := inc.Insert("R1", []data.Tuple{t1}); err != nil {
			t.Fatal(err)
		}
		if err := inc.Insert("R2", []data.Tuple{t2}); err != nil {
			t.Fatal(err)
		}
		liveR1 = append(liveR1, t1)
		liveR2 = append(liveR2, t2)
		if len(liveR1) > window {
			if err := inc.Delete("R1", liveR1[:1]); err != nil {
				t.Fatal(err)
			}
			if err := inc.Delete("R2", liveR2[:1]); err != nil {
				t.Fatal(err)
			}
			liveR1, liveR2 = liveR1[1:], liveR2[1:]
		}
	}

	fresh, _ := NewCofactorModel(q, twoRelOrder(), nil)
	fresh.Load("R1", liveR1)
	fresh.Load("R2", liveR2)
	if err := fresh.Init(); err != nil {
		t.Fatal(err)
	}
	a, b := inc.Aggregate(), fresh.Aggregate()
	if math.Abs(a.Count()-b.Count()) > 1e-9 {
		t.Fatalf("windowed count %v vs fresh %v", a.Count(), b.Count())
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(a.QuadOf(i, j)-b.QuadOf(i, j)) > 1e-6 {
				t.Fatalf("Q(%d,%d): windowed %v vs fresh %v", i, j, a.QuadOf(i, j), b.QuadOf(i, j))
			}
		}
	}
}
