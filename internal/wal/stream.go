package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path"
	"sort"
	"strings"
	"sync/atomic"
)

// WAL streaming: the primary side of replication follows its own log live.
//
// Two complementary paths cover a follower's catch-up-then-tail lifecycle:
//
//   - ScanFramesAfter reads the on-disk segments and re-emits every already
//     durable frame after a given LSN — the catch-up path;
//   - Log.SubscribeFrames delivers each newly appended frame to a bounded
//     channel — the live tail. A subscriber that falls behind is dropped
//     (overflow), and its consumer re-enters the disk path; appends never
//     block on a slow follower.
//
// Frames are the exact length+CRC byte framing of record.go, so the wire
// format of replication IS the WAL format: a follower can verify, decode,
// and even re-log shipped bytes with the machinery it already has.

// Frame is one appended record in its on-the-wire framing (length + CRC +
// body). Bytes is an immutable copy owned by the subscriber.
type Frame struct {
	LSN   uint64
	Bytes []byte
}

// FrameSub is one live subscription to a Log's appends.
type FrameSub struct {
	log        *Log
	ch         chan Frame
	overflowed atomic.Bool
	closed     atomic.Bool
}

// C is the delivery channel. It is closed when the subscription overflows
// (a consumer too slow for its buffer — check Overflowed and fall back to
// ScanFramesAfter) or when the log closes.
func (s *FrameSub) C() <-chan Frame { return s.ch }

// Overflowed reports whether the subscription was dropped because its buffer
// filled.
func (s *FrameSub) Overflowed() bool { return s.overflowed.Load() }

// Close detaches the subscription. Idempotent; safe from any goroutine.
func (s *FrameSub) Close() {
	s.log.unsubscribe(s)
}

// SubscribeFrames registers a live subscriber receiving every subsequently
// appended frame on a channel buffered to `buf` frames (minimum 1). Safe
// from any goroutine; delivery happens on the appender's goroutine and never
// blocks it.
func (l *Log) SubscribeFrames(buf int) *FrameSub {
	if buf < 1 {
		buf = 1
	}
	s := &FrameSub{log: l, ch: make(chan Frame, buf)}
	l.subMu.Lock()
	if l.subsClosed {
		l.subMu.Unlock()
		s.closed.Store(true)
		close(s.ch)
		return s
	}
	l.subs = append(l.subs, s)
	l.subMu.Unlock()
	return s
}

// notify fans one just-appended frame out to the live subscribers. Called by
// the Append* methods after the LSN advances; the reused frame scratch is
// copied once, shared by every subscriber. A subscriber whose buffer is full
// is marked overflowed and dropped — its consumer rescans from disk.
func (l *Log) notify(lsn uint64) {
	l.subMu.Lock()
	defer l.subMu.Unlock()
	if len(l.subs) == 0 {
		return
	}
	bytes := append([]byte(nil), l.frame...)
	f := Frame{LSN: lsn, Bytes: bytes}
	kept := l.subs[:0]
	for _, s := range l.subs {
		select {
		case s.ch <- f:
			kept = append(kept, s)
		default:
			s.overflowed.Store(true)
			s.closed.Store(true)
			close(s.ch)
		}
	}
	for i := len(kept); i < len(l.subs); i++ {
		l.subs[i] = nil
	}
	l.subs = kept
}

// unsubscribe removes one subscription and closes its channel.
func (l *Log) unsubscribe(s *FrameSub) {
	l.subMu.Lock()
	defer l.subMu.Unlock()
	for i, cur := range l.subs {
		if cur == s {
			l.subs = append(l.subs[:i], l.subs[i+1:]...)
			break
		}
	}
	if s.closed.CompareAndSwap(false, true) {
		close(s.ch)
	}
}

// closeSubs drops every live subscription (Log.Close).
func (l *Log) closeSubs() {
	l.subMu.Lock()
	defer l.subMu.Unlock()
	l.subsClosed = true
	for _, s := range l.subs {
		if s.closed.CompareAndSwap(false, true) {
			close(s.ch)
		}
	}
	l.subs = nil
}

// FS returns the filesystem the log writes through (the replication sender
// reads segments back through it).
func (l *Log) FS() VFS { return l.opts.FS }

// peekFrame validates one frame at the front of b — length plausibility and
// body CRC — and returns its LSN and total framed length without decoding
// the payload.
func peekFrame(b []byte) (lsn uint64, n int, err error) {
	if len(b) < 8 {
		return 0, 0, errTorn
	}
	ln := binary.LittleEndian.Uint32(b[0:4])
	crc := binary.LittleEndian.Uint32(b[4:8])
	if ln == 0 || ln > maxRecordBytes {
		return 0, 0, fmt.Errorf("wal: implausible record length %d", ln)
	}
	if uint32(len(b)-8) < ln {
		return 0, 0, errTorn
	}
	body := b[8 : 8+ln]
	if crc32.Checksum(body, castagnoli) != crc {
		return 0, 0, errBadCRC
	}
	if len(body) < 2 {
		return 0, 0, errBadCRC
	}
	lsn, vn := binary.Uvarint(body[1:])
	if vn <= 0 {
		return 0, 0, fmt.Errorf("wal: truncated record LSN")
	}
	return lsn, 8 + int(ln), nil
}

// ScanFramesAfter reads the WAL directory's segments in order and calls fn
// with each durable frame whose LSN exceeds afterLSN, in LSN order. It
// returns the last LSN emitted (afterLSN when nothing was) and whether a gap
// was hit: the next available LSN did not directly follow — the records in
// between were pruned by a checkpoint, so the caller must restart from a
// checkpoint instead.
//
// The scan tolerates the races of reading a live log: a torn or partially
// written frame at the tail simply ends the scan (those bytes arrive later,
// via the subscription), and a segment deleted between ReadDir and ReadFile
// is skipped (its absence surfaces as a gap if it mattered). Frame bytes
// passed to fn are only valid during the call.
func ScanFramesAfter(fs VFS, dir string, afterLSN uint64, fn func(lsn uint64, frame []byte) error) (last uint64, gap bool, err error) {
	last = afterLSN
	names, err := fs.ReadDir(dir)
	if err != nil {
		if isNotExist(err) {
			return last, false, nil
		}
		return last, false, err
	}
	var segs []string
	for _, n := range names {
		if strings.HasPrefix(n, "wal-") && strings.HasSuffix(n, ".seg") {
			segs = append(segs, n)
		}
	}
	sort.Strings(segs)
	for _, name := range segs {
		b, err := fs.ReadFile(path.Join(dir, name))
		if err != nil {
			if isNotExist(err) {
				continue // pruned between ReadDir and ReadFile
			}
			return last, false, err
		}
		if len(b) < segHdrLen || string(b[:8]) != segMagic {
			continue // header still being written
		}
		at := segHdrLen
		for at < len(b) {
			lsn, n, err := peekFrame(b[at:])
			if err != nil {
				// Torn tail of the active segment (or bytes not yet fully
				// visible through the VFS): stop here; the rest arrives live.
				return last, false, nil
			}
			if lsn > last {
				if lsn != last+1 {
					return last, true, nil
				}
				if err := fn(lsn, b[at:at+n]); err != nil {
					return last, false, err
				}
				last = lsn
			}
			at += n
		}
	}
	return last, false, nil
}

// DecodeFrame decodes one framed record from the front of b, returning the
// record and the bytes consumed. It is the exported face of the WAL's record
// codec for replication followers decoding shipped frames.
func DecodeFrame(b []byte) (Record, int, error) {
	return decodeRecord(b)
}

// LatestCheckpointBytes returns the newest valid checkpoint's raw file bytes
// and decoded form, or (nil, nil, nil) when the directory holds none. The
// raw bytes are what a primary ships to a follower that is too far behind
// for frame catch-up.
func LatestCheckpointBytes(fs VFS, dir string) ([]byte, *Checkpoint, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		if isNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	var cks []string
	for _, n := range names {
		if strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ".ck") {
			cks = append(cks, n)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(cks)))
	for _, n := range cks {
		b, err := fs.ReadFile(path.Join(dir, n))
		if err != nil {
			continue
		}
		ck, err := decodeCheckpoint(b)
		if err != nil {
			continue
		}
		return b, ck, nil
	}
	return nil, nil, nil
}

// DecodeCheckpointBytes decodes a checkpoint file's contents (as shipped by
// checkpoint transfer).
func DecodeCheckpointBytes(b []byte) (*Checkpoint, error) {
	return decodeCheckpoint(b)
}

// CheckpointFileName returns the canonical file name of a checkpoint
// covering lsn, for a follower materializing a shipped checkpoint into its
// own WAL directory.
func CheckpointFileName(lsn uint64) string { return ckptFileName(lsn) }
