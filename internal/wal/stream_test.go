package wal

import (
	"path"
	"testing"

	"fivm/internal/data"
)

func streamBatch(n int) []data.BaseUpdate {
	return []data.BaseUpdate{{
		Rel:    "R",
		Tuples: []data.Tuple{{data.Int(int64(n)), data.Int(int64(n * 10))}},
		Mult:   1,
	}}
}

// Live subscribers receive every appended frame, in order, decodable with
// the record codec, and the bytes are stable copies (the log's scratch is
// reused across appends).
func TestSubscribeFramesDeliversAppends(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(Options{Dir: "w", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	sub := l.SubscribeFrames(16)
	defer sub.Close()

	const n = 5
	for i := 1; i <= n; i++ {
		if err := l.AppendBatch(uint64(i), streamBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	var frames []Frame
	for i := 0; i < n; i++ {
		frames = append(frames, <-sub.C())
	}
	for i, f := range frames {
		if f.LSN != uint64(i+1) {
			t.Fatalf("frame %d: lsn %d, want %d", i, f.LSN, i+1)
		}
		rec, used, err := DecodeFrame(f.Bytes)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if used != len(f.Bytes) {
			t.Fatalf("frame %d: decoded %d of %d bytes", i, used, len(f.Bytes))
		}
		if rec.LSN != f.LSN || rec.Applied != uint64(i+1) {
			t.Fatalf("frame %d: record lsn=%d applied=%d", i, rec.LSN, rec.Applied)
		}
		if got := rec.Batch[0].Tuples[0][0].AsInt(); got != int64(i+1) {
			t.Fatalf("frame %d: tuple value %d, want %d", i, got, i+1)
		}
	}
}

// A subscriber whose buffer fills is dropped: its channel closes and
// Overflowed reports true, while the log keeps appending unbothered.
func TestSubscribeFramesOverflowDrops(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(Options{Dir: "w", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	sub := l.SubscribeFrames(2)
	for i := 1; i <= 4; i++ {
		if err := l.AppendBatch(uint64(i), streamBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	for range sub.C() {
		got++
	}
	if got != 2 {
		t.Fatalf("received %d frames before overflow, want 2", got)
	}
	if !sub.Overflowed() {
		t.Fatal("sub not marked overflowed")
	}
	// The log is still healthy and a fresh subscriber works.
	sub2 := l.SubscribeFrames(4)
	defer sub2.Close()
	if err := l.AppendBatch(5, streamBatch(5)); err != nil {
		t.Fatal(err)
	}
	if f := <-sub2.C(); f.LSN != 5 {
		t.Fatalf("fresh sub got lsn %d, want 5", f.LSN)
	}
}

// Closing the log closes all live subscriptions without marking overflow.
func TestSubscribeFramesClosedOnLogClose(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(Options{Dir: "w", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	sub := l.SubscribeFrames(4)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.C(); ok {
		t.Fatal("channel not closed after log close")
	}
	if sub.Overflowed() {
		t.Fatal("log close must not mark overflow")
	}
	// Subscribing after close yields an already-closed subscription.
	late := l.SubscribeFrames(1)
	if _, ok := <-late.C(); ok {
		t.Fatal("late subscription not closed")
	}
}

// ScanFramesAfter re-emits the durable frames after a given LSN, across
// segment rotations, and stops cleanly at a torn tail.
func TestScanFramesAfter(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(Options{Dir: "w", FS: fs, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 1; i <= n; i++ {
		if err := l.AppendBatch(uint64(i), streamBatch(i)); err != nil {
			t.Fatal(err)
		}
	}

	var got []uint64
	last, gap, err := ScanFramesAfter(fs, "w", 3, func(lsn uint64, frame []byte) error {
		rec, _, err := DecodeFrame(frame)
		if err != nil {
			return err
		}
		if rec.LSN != lsn {
			t.Fatalf("frame lsn %d decodes to %d", lsn, rec.LSN)
		}
		got = append(got, lsn)
		return nil
	})
	if err != nil || gap {
		t.Fatalf("scan: err=%v gap=%v", err, gap)
	}
	if last != n || len(got) != n-3 {
		t.Fatalf("scan after 3: last=%d frames=%v", last, got)
	}
	for i, lsn := range got {
		if lsn != uint64(4+i) {
			t.Fatalf("frame order: %v", got)
		}
	}

	// Tear the tail of the last segment holding frames (rotation may have
	// left a fresh empty one after it): the scan stops before the torn frame
	// without error (it would arrive via the live path).
	var segName string
	var b []byte
	for seq := l.segSeq; seq > 0; seq-- {
		name := path.Join("w", segFileName(seq))
		data, err := fs.ReadFile(name)
		if err == nil && len(data) > segHdrLen {
			segName, b = name, data
			break
		}
	}
	if segName == "" {
		t.Fatal("no segment with frames")
	}
	if err := fs.Truncate(segName, int64(len(b)-3)); err != nil {
		t.Fatal(err)
	}
	last, gap, err = ScanFramesAfter(fs, "w", 0, func(uint64, []byte) error { return nil })
	if err != nil || gap {
		t.Fatalf("torn scan: err=%v gap=%v", err, gap)
	}
	if last >= n {
		t.Fatalf("torn scan reached lsn %d; the torn frame must be dropped", last)
	}
	l.Close()
}

// A checkpoint prunes older segments; scanning from an LSN the prune removed
// reports a gap, and LatestCheckpointBytes returns the shipped bytes that
// bridge it.
func TestScanFramesAfterGapAndCheckpoint(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(Options{Dir: "w", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 3; i++ {
		if err := l.AppendBatch(uint64(i), streamBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteCheckpoint(&Checkpoint{Applied: 3}); err != nil {
		t.Fatal(err)
	}
	for i := 4; i <= 5; i++ {
		if err := l.AppendBatch(uint64(i), streamBatch(i)); err != nil {
			t.Fatal(err)
		}
	}

	// A follower at LSN 1 finds LSNs 2..3 pruned: gap.
	_, gap, err := ScanFramesAfter(fs, "w", 1, func(uint64, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !gap {
		t.Fatal("pruned prefix should report a gap")
	}

	raw, ck, err := LatestCheckpointBytes(fs, "w")
	if err != nil || ck == nil {
		t.Fatalf("latest checkpoint: %v %v", ck, err)
	}
	if ck.LSN != 3 || ck.Applied != 3 {
		t.Fatalf("checkpoint lsn=%d applied=%d", ck.LSN, ck.Applied)
	}
	ck2, err := DecodeCheckpointBytes(raw)
	if err != nil || ck2.LSN != ck.LSN {
		t.Fatalf("re-decode: %v %v", ck2, err)
	}

	// From the checkpoint's LSN the tail scan is gap-free.
	var got []uint64
	last, gap, err := ScanFramesAfter(fs, "w", ck.LSN, func(lsn uint64, _ []byte) error {
		got = append(got, lsn)
		return nil
	})
	if err != nil || gap {
		t.Fatalf("tail scan: err=%v gap=%v", err, gap)
	}
	if last != 5 || len(got) != 2 {
		t.Fatalf("tail scan: last=%d frames=%v", last, got)
	}
}
