//go:build race

package wal

// raceEnabled reports whether the race detector instruments this build; its
// instrumentation allocates, so allocation-count guards skip under it.
const raceEnabled = true
