package wal

import (
	"fmt"
	"io/fs"
	"sort"
	"strings"
	"sync"
)

// MemVFS is an in-memory VFS that models the durability boundary explicitly:
// every file tracks both its written length and its synced length, and
// Crash() rolls every file back to what had been synced — exactly the state
// a machine reboot leaves behind. Recovery tests write through a MemVFS,
// crash it, and re-open the WAL against the survivor bytes.
type MemVFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool

	// syncs counts File.Sync calls across all files — fsync-policy tests
	// assert on it.
	syncs int
}

type memFile struct {
	fs     *MemVFS
	name   string
	data   []byte
	synced int // bytes guaranteed to survive Crash
	closed bool
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemVFS {
	return &MemVFS{files: make(map[string]*memFile), dirs: make(map[string]bool)}
}

// Crash simulates a machine crash: every file is truncated back to its last
// synced length. Unsynced bytes — and files created but never synced — are
// lost wholesale. (Real filesystems may keep more than this; keeping only
// the synced prefix is the adversarial model recovery must survive.)
func (m *MemVFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, f := range m.files {
		if f.synced == 0 {
			delete(m.files, name)
			continue
		}
		f.data = f.data[:f.synced]
		f.closed = true
	}
}

// SyncCount returns the total number of Sync calls observed.
func (m *MemVFS) SyncCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.syncs
}

// FileSize returns the current written size of a file (for tests that
// compute crash boundaries), or -1 if it does not exist.
func (m *MemVFS) FileSize(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return -1
	}
	return int64(len(f.data))
}

func (m *MemVFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[dir] = true
	return nil
}

func (m *MemVFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[dir] {
		// Mirror os.ReadDir on a missing directory.
		return nil, fs.ErrNotExist
	}
	prefix := dir + "/"
	var names []string
	for name := range m.files {
		if strings.HasPrefix(name, prefix) && !strings.Contains(name[len(prefix):], "/") {
			names = append(names, name[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemVFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, fs.ErrNotExist
	}
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

func (m *MemVFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Preallocate generous capacity so steady-state appends never grow the
	// slice — keeps the WAL append path's zero-allocation guarantee intact
	// when benchmarked over a MemVFS.
	f := &memFile{fs: m, name: name, data: make([]byte, 0, 1<<20)}
	m.files[name] = f
	return f, nil
}

func (m *MemVFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fs.ErrNotExist
	}
	delete(m.files, name)
	return nil
}

func (m *MemVFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return fs.ErrNotExist
	}
	delete(m.files, oldname)
	f.name = newname
	m.files[newname] = f
	return nil
}

func (m *MemVFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return fs.ErrNotExist
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("wal: truncate %q to %d (size %d)", name, size, len(f.data))
	}
	f.data = f.data[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("wal: write to closed file %q", f.name)
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return fmt.Errorf("wal: sync closed file %q", f.name)
	}
	f.synced = len(f.data)
	f.fs.syncs++
	return nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}
