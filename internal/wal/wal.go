package wal

import (
	"errors"
	"fmt"
	"path"
	"strings"
	"sync"
	"time"

	"fivm/internal/data"
)

// Segment files are named wal-%08d.seg (the number is the segment sequence,
// not an LSN) and start with a 16-byte header: 8-byte magic, version byte,
// 7 reserved zero bytes. Records follow back to back in the framing of
// record.go. A fresh segment is started on every Open and after every
// checkpoint, so only the last segment can legitimately have a torn tail.

const (
	segMagic   = "FIVMWAL1"
	segVersion = 1
	segHdrLen  = 16

	// maxRecordBytes bounds a single record frame; larger lengths are
	// treated as corruption rather than allocated.
	maxRecordBytes = 1 << 30
)

var (
	errTorn   = errors.New("wal: torn record")
	errBadCRC = errors.New("wal: record CRC mismatch")

	// ErrClosed is returned by appends after Close or after a prior append
	// failure poisoned the log (the on-disk tail is no longer trusted).
	ErrClosed = errors.New("wal: log closed")
)

// FsyncPolicy controls when appended records are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every appended record: an acknowledged batch
	// survives any crash.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs at most once per SyncInterval, amortizing the
	// sync cost; a crash can lose up to one interval of acknowledged
	// batches (but never tears one — recovery truncates to a record
	// boundary).
	FsyncInterval
	// FsyncNever leaves syncing to the OS; a crash may lose any batch not
	// yet flushed. Contents remain consistent — recovery still replays a
	// clean prefix.
	FsyncNever
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsync parses a policy name as accepted by the -fsync flag.
func ParseFsync(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never", "":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

// Options configures a Log.
type Options struct {
	// Dir is the WAL directory (segments and checkpoints live flat in it).
	Dir string
	// FS is the filesystem to write through; nil means the real one (OSFS).
	FS VFS
	// Fsync is the sync policy for appended records.
	Fsync FsyncPolicy
	// SyncInterval is the minimum spacing between syncs under
	// FsyncInterval (default 50ms).
	SyncInterval time.Duration
	// SegmentBytes rotates to a new segment once the current one exceeds
	// this size (default 64 MiB). Rotation happens between records.
	SegmentBytes int64
	// now is injectable for interval-policy tests.
	now func() time.Time
}

func (o *Options) fill() {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 50 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.now == nil {
		o.now = time.Now
	}
}

// Recovery is what Open found on disk: the latest valid checkpoint (nil if
// none) and the WAL records after it, in LSN order, ready to replay.
type Recovery struct {
	Checkpoint *Checkpoint
	// Records are the surviving log records with LSN greater than the
	// checkpoint's (all of them when Checkpoint is nil).
	Records []Record
	// Truncated reports how many torn tail bytes were discarded on open.
	Truncated int64
}

// Log is a segmented write-ahead log. Single-writer: the DB's maintenance
// goroutine appends; Open-time recovery happens before any appends.
type Log struct {
	opts     Options
	dir      string
	seg      File
	segSeq   uint64
	segSize  int64
	lsn      uint64 // last assigned LSN
	frame    []byte // reused frame scratch (header + body copy)
	body     []byte // reused body-encoding scratch
	lastSync time.Time
	failed   error // sticky append failure
	closed   bool

	// Live frame subscribers (stream.go). subMu alone guards them: Subscribe
	// and Close may race with the appender's notify.
	subMu      sync.Mutex
	subs       []*FrameSub
	subsClosed bool
}

// Open opens (creating if needed) the WAL in opts.Dir, scans all segments —
// validating CRCs, truncating a torn tail in the final segment only — loads
// the latest valid checkpoint, and returns the log (positioned on a fresh
// segment) plus everything recovery needs to replay.
func Open(opts Options) (*Log, *Recovery, error) {
	opts.fill()
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("wal: empty directory")
	}
	if err := opts.FS.MkdirAll(opts.Dir); err != nil {
		return nil, nil, fmt.Errorf("wal: create dir: %w", err)
	}
	names, err := opts.FS.ReadDir(opts.Dir)
	if err != nil && !isNotExist(err) {
		return nil, nil, fmt.Errorf("wal: read dir: %w", err)
	}

	var segs []string
	for _, n := range names {
		if strings.HasPrefix(n, "wal-") && strings.HasSuffix(n, ".seg") {
			segs = append(segs, n)
		}
	}
	// ReadDir returns sorted names and segment numbers are zero-padded, so
	// segs is already in sequence order.

	rec := &Recovery{}
	ck, err := loadLatestCheckpoint(opts.FS, opts.Dir, names)
	if err != nil {
		return nil, nil, err
	}
	rec.Checkpoint = ck
	afterLSN := uint64(0)
	if ck != nil {
		afterLSN = ck.LSN
	}

	maxSeq := uint64(0)
	lastLSN := afterLSN
	for i, name := range segs {
		seq, ok := parseSegName(name)
		if !ok {
			return nil, nil, fmt.Errorf("wal: malformed segment name %q", name)
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		final := i == len(segs)-1
		recs, truncated, err := scanSegment(opts.FS, path.Join(opts.Dir, name), final)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: segment %s: %w", name, err)
		}
		rec.Truncated += truncated
		for _, r := range recs {
			if r.LSN <= afterLSN {
				continue // covered by the checkpoint
			}
			if r.LSN <= lastLSN {
				return nil, nil, fmt.Errorf("wal: segment %s: LSN %d out of order (last %d)", name, r.LSN, lastLSN)
			}
			lastLSN = r.LSN
			rec.Records = append(rec.Records, r)
		}
	}

	l := &Log{
		opts:   opts,
		dir:    opts.Dir,
		segSeq: maxSeq,
		lsn:    lastLSN,
		frame:  make([]byte, 0, 64<<10),
		body:   make([]byte, 0, 64<<10),
	}
	if ck != nil && ck.LSN > l.lsn {
		l.lsn = ck.LSN
	}
	// Fresh segment per open: no appending to a possibly-torn tail.
	if err := l.rotate(); err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

func segFileName(seq uint64) string { return fmt.Sprintf("wal-%08d.seg", seq) }

func parseSegName(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "wal-%d.seg", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// scanSegment reads and validates one segment. In the final segment a torn
// tail (incomplete frame, or a CRC mismatch from a half-written record) is
// truncated away; anywhere else it is corruption and an error.
func scanSegment(fs VFS, name string, final bool) ([]Record, int64, error) {
	b, err := fs.ReadFile(name)
	if err != nil {
		return nil, 0, err
	}
	if len(b) < segHdrLen {
		if final {
			// A segment header torn mid-write: nothing recoverable here.
			return nil, int64(len(b)), nil
		}
		return nil, 0, fmt.Errorf("truncated header (%d bytes)", len(b))
	}
	if string(b[:8]) != segMagic {
		return nil, 0, fmt.Errorf("bad magic %q", b[:8])
	}
	var recs []Record
	at := segHdrLen
	for at < len(b) {
		r, n, err := decodeRecord(b[at:])
		if err != nil {
			if final && (errors.Is(err, errTorn) || errors.Is(err, errBadCRC)) {
				// Torn tail: discard it on disk so the file is clean.
				torn := int64(len(b) - at)
				if terr := fs.Truncate(name, int64(at)); terr != nil {
					return nil, 0, fmt.Errorf("truncate torn tail: %w", terr)
				}
				return recs, torn, nil
			}
			return nil, 0, fmt.Errorf("record at offset %d: %w", at, err)
		}
		recs = append(recs, r)
		at += n
	}
	return recs, 0, nil
}

// rotate closes the current segment (if any) and starts a fresh one.
func (l *Log) rotate() error {
	if l.seg != nil {
		if err := l.seg.Sync(); err != nil {
			return fmt.Errorf("wal: sync on rotate: %w", err)
		}
		if err := l.seg.Close(); err != nil {
			return fmt.Errorf("wal: close on rotate: %w", err)
		}
		l.seg = nil
	}
	l.segSeq++
	f, err := l.opts.FS.Create(path.Join(l.dir, segFileName(l.segSeq)))
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	var hdr [segHdrLen]byte
	copy(hdr[:8], segMagic)
	hdr[8] = segVersion
	if _, err := f.Write(hdr[:]); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	l.seg = f
	l.segSize = segHdrLen
	return nil
}

// LSN returns the last assigned log sequence number.
func (l *Log) LSN() uint64 { return l.lsn }

// Dir returns the WAL directory.
func (l *Log) Dir() string { return l.dir }

// append frames and writes one record body, applying the fsync policy. On
// any write error the log is poisoned: the tail may hold torn bytes, so
// further appends fail with ErrClosed wrapping the original failure.
func (l *Log) append(body []byte) error {
	l.frame = appendFrame(l.frame[:0], body)
	if _, err := l.seg.Write(l.frame); err != nil {
		l.failed = err
		return fmt.Errorf("wal: append: %w", err)
	}
	l.segSize += int64(len(l.frame))
	switch l.opts.Fsync {
	case FsyncAlways:
		if err := l.seg.Sync(); err != nil {
			l.failed = err
			return fmt.Errorf("wal: sync: %w", err)
		}
	case FsyncInterval:
		if now := l.opts.now(); now.Sub(l.lastSync) >= l.opts.SyncInterval {
			if err := l.seg.Sync(); err != nil {
				l.failed = err
				return fmt.Errorf("wal: sync: %w", err)
			}
			l.lastSync = now
		}
	}
	if l.segSize >= l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			l.failed = err
			return err
		}
	}
	return nil
}

// usable reports whether the log accepts appends.
func (l *Log) usable() error {
	if l.closed {
		return ErrClosed
	}
	if l.failed != nil {
		return fmt.Errorf("%w (after earlier failure: %v)", ErrClosed, l.failed)
	}
	return nil
}

// AppendBatch logs one applied batch. The record is durable per the fsync
// policy when this returns nil; on error nothing was acknowledged and the
// log refuses further appends.
func (l *Log) AppendBatch(applied uint64, batch []data.BaseUpdate) error {
	if err := l.usable(); err != nil {
		return err
	}
	lsn := l.lsn + 1
	l.body = encodeBatchBody(l.body[:0], lsn, applied, batch)
	if err := l.append(l.body); err != nil {
		return err
	}
	l.lsn = lsn
	l.notify(lsn)
	return nil
}

// AppendCreateView logs a view-catalog addition.
func (l *Log) AppendCreateView(def ViewDef) error {
	if err := l.usable(); err != nil {
		return err
	}
	lsn := l.lsn + 1
	l.body = encodeCreateViewBody(l.body[:0], lsn, def)
	if err := l.append(l.body); err != nil {
		return err
	}
	l.lsn = lsn
	l.notify(lsn)
	return nil
}

// AppendDropView logs a view-catalog removal.
func (l *Log) AppendDropView(name string) error {
	if err := l.usable(); err != nil {
		return err
	}
	lsn := l.lsn + 1
	l.body = encodeDropViewBody(l.body[:0], lsn, name)
	if err := l.append(l.body); err != nil {
		return err
	}
	l.lsn = lsn
	l.notify(lsn)
	return nil
}

// Sync forces buffered records to stable storage regardless of policy.
func (l *Log) Sync() error {
	if err := l.usable(); err != nil {
		return err
	}
	if err := l.seg.Sync(); err != nil {
		l.failed = err
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.lastSync = l.opts.now()
	return nil
}

// Close syncs (skipped once poisoned) and closes the current segment. The
// log cannot be used afterwards.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	l.closeSubs()
	if l.seg == nil {
		return nil
	}
	var err error
	if l.failed == nil {
		err = l.seg.Sync()
	}
	if cerr := l.seg.Close(); err == nil {
		err = cerr
	}
	l.seg = nil
	return err
}
