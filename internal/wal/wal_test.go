package wal

import (
	"errors"
	"testing"
	"time"

	"fivm/internal/data"
)

func testBatch(n int64) []data.BaseUpdate {
	return []data.BaseUpdate{
		{Rel: "R", Tuples: []data.Tuple{data.Ints(n, n+1), data.Ints(-n, 7)}, Mult: 1},
		{Rel: "S", Tuples: []data.Tuple{{data.String("k"), data.Float(2.5)}}, Mult: -2},
	}
}

func openMem(t *testing.T, fs VFS, policy FsyncPolicy) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(Options{Dir: "wal", FS: fs, Fsync: policy})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func TestAppendAndReplayRoundTrip(t *testing.T) {
	fs := NewMemFS()
	l, rec := openMem(t, fs, FsyncAlways)
	if rec.Checkpoint != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh log reported recovery state: %+v", rec)
	}
	if err := l.AppendCreateView(ViewDef{Name: "v", SQL: "SELECT ...", Workers: 3, AutoReoptimize: true}); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		if err := l.AppendBatch(uint64(i), testBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AppendDropView("v"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2 := openMem(t, fs, FsyncAlways)
	defer l2.Close()
	if len(rec2.Records) != 7 {
		t.Fatalf("recovered %d records, want 7", len(rec2.Records))
	}
	if rec2.Records[0].Type != recCreateView || rec2.Records[0].Create.Name != "v" ||
		rec2.Records[0].Create.Workers != 3 || !rec2.Records[0].Create.AutoReoptimize ||
		rec2.Records[0].Create.ComposeChains {
		t.Errorf("create record mismatch: %+v", rec2.Records[0].Create)
	}
	for i := 1; i <= 5; i++ {
		r := rec2.Records[i]
		if r.Type != recBatch || r.Applied != uint64(i) {
			t.Fatalf("record %d: type %d applied %d", i, r.Type, r.Applied)
		}
		want := testBatch(int64(i))
		if len(r.Batch) != len(want) {
			t.Fatalf("record %d: %d updates, want %d", i, len(r.Batch), len(want))
		}
		for j, u := range r.Batch {
			w := want[j]
			if u.Rel != w.Rel || u.Mult != w.Mult || len(u.Tuples) != len(w.Tuples) {
				t.Fatalf("record %d update %d: %+v want %+v", i, j, u, w)
			}
			for k := range u.Tuples {
				if !u.Tuples[k].Equal(w.Tuples[k]) {
					t.Errorf("record %d update %d tuple %d: %v want %v", i, j, k, u.Tuples[k], w.Tuples[k])
				}
			}
		}
	}
	if rec2.Records[6].Type != recDropView || rec2.Records[6].Drop != "v" {
		t.Errorf("drop record mismatch: %+v", rec2.Records[6])
	}
	// LSNs strictly increase and the reopened log continues past them.
	for i := 1; i < len(rec2.Records); i++ {
		if rec2.Records[i].LSN <= rec2.Records[i-1].LSN {
			t.Fatal("LSNs not strictly increasing")
		}
	}
	if l2.LSN() != rec2.Records[6].LSN {
		t.Errorf("reopened LSN %d, want %d", l2.LSN(), rec2.Records[6].LSN)
	}
}

// Torn tails at every possible byte offset must truncate cleanly to the
// preceding record boundary, never error, never resurrect partial records.
func TestTornTailTruncationEveryOffset(t *testing.T) {
	// Build a reference log and remember the full segment bytes.
	build := func(fs VFS) *Log {
		l, _, err := Open(Options{Dir: "wal", FS: fs, Fsync: FsyncNever})
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(1); i <= 3; i++ {
			if err := l.AppendBatch(uint64(i), testBatch(i)); err != nil {
				t.Fatal(err)
			}
		}
		return l
	}
	ref := NewMemFS()
	build(ref)
	full, err := ref.ReadFile("wal/" + segFileName(1))
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries: decode to find where each record ends.
	var bounds []int
	at := segHdrLen
	for at < len(full) {
		_, n, err := decodeRecord(full[at:])
		if err != nil {
			t.Fatal(err)
		}
		at += n
		bounds = append(bounds, at)
	}
	if len(bounds) != 3 {
		t.Fatalf("expected 3 records, got %d", len(bounds))
	}

	for cut := 0; cut <= len(full); cut++ {
		fs := NewMemFS()
		build(fs)
		name := "wal/" + segFileName(1)
		if err := fs.Truncate(name, int64(cut)); err != nil {
			t.Fatal(err)
		}
		l, rec := openMem(t, fs, FsyncNever)
		l.Close()
		// Count how many full records survive the cut.
		want := 0
		for _, b := range bounds {
			if cut >= b {
				want++
			}
		}
		if len(rec.Records) != want {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(rec.Records), want)
		}
		wantTorn := int64(0)
		if cut < segHdrLen {
			// The segment header itself is torn: the whole prefix goes.
			wantTorn = int64(cut)
		} else if want < len(bounds) {
			start := segHdrLen
			if want > 0 {
				start = bounds[want-1]
			}
			if cut > start {
				wantTorn = int64(cut - start)
			}
		}
		if rec.Truncated != wantTorn {
			t.Errorf("cut at %d: truncated %d bytes, want %d", cut, rec.Truncated, wantTorn)
		}
	}
}

// A CRC error in a non-final segment is corruption, not a torn tail.
func TestMidLogCorruptionIsError(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(Options{Dir: "wal", FS: fs, Fsync: FsyncNever, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// SegmentBytes=1 rotates after every record: three records, three
	// segments (plus the freshly rotated empty one).
	for i := int64(1); i <= 3; i++ {
		if err := l.AppendBatch(uint64(i), testBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Flip a payload byte in the FIRST segment.
	name := "wal/" + segFileName(1)
	b, err := fs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	b[segHdrLen+10] ^= 0xff
	f, _ := fs.Create(name)
	f.Write(b)
	f.Close()

	if _, _, err := Open(Options{Dir: "wal", FS: fs, Fsync: FsyncNever}); err == nil {
		t.Fatal("corrupted non-final segment opened without error")
	}
}

func TestSegmentRotationAndOrder(t *testing.T) {
	fs := NewMemFS()
	l, _, err := Open(Options{Dir: "wal", FS: fs, Fsync: FsyncNever, SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := int64(1); i <= n; i++ {
		if err := l.AppendBatch(uint64(i), testBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	names, _ := fs.ReadDir("wal")
	if len(names) < 3 {
		t.Fatalf("expected multiple segments, got %v", names)
	}
	l2, rec := openMem(t, fs, FsyncNever)
	l2.Close()
	if len(rec.Records) != n {
		t.Fatalf("recovered %d records across segments, want %d", len(rec.Records), n)
	}
	for i, r := range rec.Records {
		if r.Applied != uint64(i+1) {
			t.Fatalf("record %d applied %d", i, r.Applied)
		}
	}
}

func TestFsyncPolicies(t *testing.T) {
	// always: one sync per append.
	fs := NewMemFS()
	l, _ := openMem(t, fs, FsyncAlways)
	base := fs.SyncCount()
	for i := int64(1); i <= 4; i++ {
		l.AppendBatch(uint64(i), testBatch(i))
	}
	if got := fs.SyncCount() - base; got != 4 {
		t.Errorf("fsync=always: %d syncs for 4 appends", got)
	}
	l.Close()

	// never: appends alone never sync.
	fs = NewMemFS()
	l, _ = openMem(t, fs, FsyncNever)
	base = fs.SyncCount()
	for i := int64(1); i <= 4; i++ {
		l.AppendBatch(uint64(i), testBatch(i))
	}
	if got := fs.SyncCount() - base; got != 0 {
		t.Errorf("fsync=never: %d syncs for 4 appends", got)
	}
	l.Close()

	// interval: syncs only once the injected clock passes the interval.
	fs = NewMemFS()
	now := time.Unix(1000, 0)
	l, _, err := Open(Options{
		Dir: "wal", FS: fs, Fsync: FsyncInterval, SyncInterval: time.Second,
		now: func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	// First append: lastSync is zero, so the elapsed check fires once,
	// then holds until the clock advances.
	l.AppendBatch(1, testBatch(1))
	base = fs.SyncCount()
	l.AppendBatch(2, testBatch(2))
	l.AppendBatch(3, testBatch(3))
	if got := fs.SyncCount() - base; got != 0 {
		t.Errorf("fsync=interval within interval: %d syncs", got)
	}
	now = now.Add(2 * time.Second)
	l.AppendBatch(4, testBatch(4))
	if got := fs.SyncCount() - base; got != 1 {
		t.Errorf("fsync=interval after interval: %d syncs, want 1", got)
	}
	l.Close()
}

// Unsynced appends under fsync=never are lost on crash but never torn:
// recovery sees a clean prefix.
func TestCrashLosesOnlyUnsyncedTail(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, FsyncNever)
	for i := int64(1); i <= 3; i++ {
		l.AppendBatch(uint64(i), testBatch(i))
	}
	if err := l.Sync(); err != nil { // acknowledge the first three
		t.Fatal(err)
	}
	for i := int64(4); i <= 6; i++ {
		l.AppendBatch(uint64(i), testBatch(i))
	}
	fs.Crash() // unsynced records 4-6 vanish

	l2, rec := openMem(t, fs, FsyncNever)
	l2.Close()
	if len(rec.Records) != 3 {
		t.Fatalf("recovered %d records, want the 3 synced ones", len(rec.Records))
	}
	for i, r := range rec.Records {
		if r.Applied != uint64(i+1) {
			t.Errorf("record %d applied %d", i, r.Applied)
		}
	}
}

func TestInjectedWriteFailurePoisonsLog(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	l, _, err := Open(Options{Dir: "wal", FS: ffs, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(1, testBatch(1)); err != nil {
		t.Fatal(err)
	}
	ffs.CrashAfterBytes(10) // next append tears mid-record
	if err := l.AppendBatch(2, testBatch(2)); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn append returned %v", err)
	}
	// The log is poisoned: further appends refuse.
	if err := l.AppendBatch(3, testBatch(3)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after failure returned %v", err)
	}
	l.Close()

	// The torn 10 bytes are on "disk"; recovery truncates them away.
	l2, rec, err := Open(Options{Dir: "wal", FS: mem, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if len(rec.Records) != 1 || rec.Records[0].Applied != 1 {
		t.Fatalf("recovered %+v, want just batch 1", rec.Records)
	}
	if rec.Truncated != 10 {
		t.Errorf("truncated %d bytes, want 10", rec.Truncated)
	}
}

func TestInjectedSyncFailure(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	l, _, err := Open(Options{Dir: "wal", FS: ffs, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ffs.FailNthSync(1)
	if err := l.AppendBatch(1, testBatch(1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("append with failing sync returned %v", err)
	}
	if err := l.AppendBatch(2, testBatch(2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after sync failure returned %v", err)
	}
	l.Close()
}

func TestInjectedCreateFailure(t *testing.T) {
	ffs := NewFaultFS(NewMemFS())
	ffs.FailNthCreate(1)
	if _, _, err := Open(Options{Dir: "wal", FS: ffs, Fsync: FsyncNever}); !errors.Is(err, ErrInjected) {
		t.Fatalf("Open with failing create returned %v", err)
	}
}

func TestCheckpointRoundTripAndPruning(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, FsyncNever)
	for i := int64(1); i <= 3; i++ {
		l.AppendBatch(uint64(i), testBatch(i))
	}
	ck := &Checkpoint{
		Applied: 3,
		Seq:     9,
		Views: []ViewDef{
			{Name: "v1", SQL: "SELECT A, SUM(B) FROM R GROUP BY A", Workers: 2, ComposeChains: true},
			{Name: "v2", SQL: "SELECT SUM(B) FROM R", CostMaterialize: true},
		},
		Bases: []BaseTable{
			{Rel: "R", Schema: data.NewSchema("A", "B"),
				Rows:  []data.Tuple{data.Ints(1, 2), data.Ints(3, 4)},
				Mults: []int64{5, -1}},
			{Rel: "S", Schema: data.NewSchema("A", "C"),
				Rows:  []data.Tuple{{data.Int(1), data.String("x")}},
				Mults: []int64{1}},
		},
	}
	if err := l.WriteCheckpoint(ck); err != nil {
		t.Fatal(err)
	}
	// Records after the checkpoint.
	for i := int64(4); i <= 5; i++ {
		l.AppendBatch(uint64(i), testBatch(i))
	}
	l.Close()

	// The pre-checkpoint segment is pruned.
	names, _ := fs.ReadDir("wal")
	for _, n := range names {
		if n == segFileName(1) {
			t.Errorf("pre-checkpoint segment survived pruning: %v", names)
		}
	}

	l2, rec := openMem(t, fs, FsyncNever)
	l2.Close()
	got := rec.Checkpoint
	if got == nil {
		t.Fatal("no checkpoint recovered")
	}
	if got.Applied != 3 || got.Seq != 9 || got.LSN != 3 {
		t.Errorf("checkpoint header %+v", got)
	}
	if len(got.Views) != 2 || got.Views[0] != ck.Views[0] || got.Views[1] != ck.Views[1] {
		t.Errorf("views %+v", got.Views)
	}
	if len(got.Bases) != 2 || got.Bases[0].Rel != "R" || !got.Bases[0].Schema.Equal(ck.Bases[0].Schema) {
		t.Fatalf("bases %+v", got.Bases)
	}
	for i, row := range got.Bases[0].Rows {
		if !row.Equal(ck.Bases[0].Rows[i]) || got.Bases[0].Mults[i] != ck.Bases[0].Mults[i] {
			t.Errorf("base R row %d: %v/%d", i, row, got.Bases[0].Mults[i])
		}
	}
	// Only the tail after the checkpoint replays.
	if len(rec.Records) != 2 || rec.Records[0].Applied != 4 || rec.Records[1].Applied != 5 {
		t.Fatalf("replay tail %+v, want batches 4 and 5", rec.Records)
	}
}

func TestCheckpointSupersedesOlder(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, FsyncNever)
	l.AppendBatch(1, testBatch(1))
	if err := l.WriteCheckpoint(&Checkpoint{Applied: 1, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	l.AppendBatch(2, testBatch(2))
	if err := l.WriteCheckpoint(&Checkpoint{Applied: 2, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	names, _ := fs.ReadDir("wal")
	ckpts := 0
	for _, n := range names {
		if len(n) > 5 && n[:5] == "ckpt-" {
			ckpts++
		}
	}
	if ckpts != 1 {
		t.Errorf("%d checkpoint files after pruning, want 1 (%v)", ckpts, names)
	}
	l2, rec := openMem(t, fs, FsyncNever)
	l2.Close()
	if rec.Checkpoint == nil || rec.Checkpoint.Applied != 2 {
		t.Fatalf("recovered checkpoint %+v, want applied=2", rec.Checkpoint)
	}
	if len(rec.Records) != 0 {
		t.Errorf("replay tail %+v, want empty", rec.Records)
	}
}

// A corrupt newest checkpoint must fall back to the older valid one.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, FsyncNever)
	l.AppendBatch(1, testBatch(1))
	if err := l.WriteCheckpoint(&Checkpoint{Applied: 1, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Plant a corrupt "newer" checkpoint (higher LSN in the name).
	f, _ := fs.Create("wal/" + ckptFileName(99))
	f.Write([]byte("garbage"))
	f.Close()

	l2, rec := openMem(t, fs, FsyncNever)
	l2.Close()
	if rec.Checkpoint == nil || rec.Checkpoint.Applied != 1 {
		t.Fatalf("recovered %+v, want fallback to applied=1", rec.Checkpoint)
	}
}

// The steady-state append path must not allocate: encoding reuses the body
// scratch, framing reuses the frame scratch, and MemVFS preallocates.
func TestAllocGuardAppendBatch(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc guards run in the non-race pass")
	}
	l, _, err := Open(Options{Dir: "wal", FS: NewMemFS(), Fsync: FsyncNever, SegmentBytes: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	batch := testBatch(42)
	applied := uint64(0)
	// Warm up so scratch buffers reach steady size.
	for i := 0; i < 4; i++ {
		applied++
		if err := l.AppendBatch(applied, batch); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(200, func() {
		applied++
		if err := l.AppendBatch(applied, batch); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("AppendBatch: %.1f allocs/op, want 0", allocs)
	}
}
