package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path"
	"sort"
	"strings"

	"fivm/internal/data"
)

// Checkpoint files serialize one consistent prefix of the database — the
// base-relation contents at an applied batch boundary plus the persisted
// view catalog — so recovery replays only the WAL tail after the covered
// LSN. Files are named ckpt-%016x.ck (hex LSN), written to a temp name and
// renamed into place, so a checkpoint either exists completely or not at
// all. Layout: 8-byte magic, version byte, 7 reserved bytes, payload,
// trailing u32le CRC-32C of everything before it.
const (
	ckptMagic  = "FIVMCKP1"
	ckptHdrLen = 16
)

// BaseTable is one base relation's serialized contents: rows with signed
// multiplicities, ordered by encoded key so identical states produce
// identical files.
type BaseTable struct {
	Rel    string
	Schema data.Schema
	Rows   []data.Tuple
	Mults  []int64
}

// Checkpoint is the decoded (or to-be-written) checkpoint state.
type Checkpoint struct {
	// LSN is the last log sequence number the checkpoint covers: recovery
	// replays only records with greater LSNs.
	LSN uint64
	// Applied is the DB's applied-batch counter at the checkpoint.
	Applied uint64
	// Seq is the DB's published epoch sequence at the checkpoint.
	Seq uint64
	// Views is the persisted view catalog, in registration order.
	Views []ViewDef
	// Bases are the base relations, in registration order.
	Bases []BaseTable
}

func ckptFileName(lsn uint64) string { return fmt.Sprintf("ckpt-%016x.ck", lsn) }

func encodeCheckpoint(ck *Checkpoint) []byte {
	b := make([]byte, 0, 4096)
	var hdr [ckptHdrLen]byte
	copy(hdr[:8], ckptMagic)
	hdr[8] = segVersion
	b = append(b, hdr[:]...)
	b = appendUvarint(b, ck.LSN)
	b = appendUvarint(b, ck.Applied)
	b = appendUvarint(b, ck.Seq)
	b = appendUvarint(b, uint64(len(ck.Views)))
	for _, def := range ck.Views {
		// Reuse the record body encoding (type byte + dummy LSN included)
		// so the two formats cannot drift apart.
		b = appendFrame(b, encodeCreateViewBody(nil, 0, def))
	}
	b = appendUvarint(b, uint64(len(ck.Bases)))
	for _, t := range ck.Bases {
		b = appendString(b, t.Rel)
		b = appendUvarint(b, uint64(len(t.Schema)))
		for _, attr := range t.Schema {
			b = appendString(b, attr)
		}
		b = appendUvarint(b, uint64(len(t.Rows)))
		for i, row := range t.Rows {
			b = appendVarint(b, t.Mults[i])
			for _, v := range row {
				b = data.AppendValue(b, v)
			}
		}
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(b, castagnoli))
	return append(b, crc[:]...)
}

func decodeCheckpoint(b []byte) (*Checkpoint, error) {
	if len(b) < ckptHdrLen+4 {
		return nil, fmt.Errorf("wal: checkpoint too short (%d bytes)", len(b))
	}
	body, crcBytes := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(crcBytes) {
		return nil, fmt.Errorf("wal: checkpoint CRC mismatch")
	}
	if string(body[:8]) != ckptMagic {
		return nil, fmt.Errorf("wal: bad checkpoint magic %q", body[:8])
	}
	ck := &Checkpoint{}
	r := recordReader{b: body, at: ckptHdrLen}
	var err error
	if ck.LSN, err = r.uvarint(); err != nil {
		return nil, err
	}
	if ck.Applied, err = r.uvarint(); err != nil {
		return nil, err
	}
	if ck.Seq, err = r.uvarint(); err != nil {
		return nil, err
	}
	nViews, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nViews > uint64(len(body)) {
		return nil, fmt.Errorf("wal: implausible view count %d", nViews)
	}
	for i := uint64(0); i < nViews; i++ {
		rec, n, err := decodeRecord(r.b[r.at:])
		if err != nil {
			return nil, fmt.Errorf("wal: checkpoint view %d: %w", i, err)
		}
		if rec.Type != recCreateView {
			return nil, fmt.Errorf("wal: checkpoint view %d: record type %d", i, rec.Type)
		}
		ck.Views = append(ck.Views, *rec.Create)
		r.at += n
	}
	nRels, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nRels > uint64(len(body)) {
		return nil, fmt.Errorf("wal: implausible relation count %d", nRels)
	}
	for i := uint64(0); i < nRels; i++ {
		var t BaseTable
		if t.Rel, err = r.str(); err != nil {
			return nil, err
		}
		arity, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if arity > 1<<16 {
			return nil, fmt.Errorf("wal: implausible arity %d", arity)
		}
		t.Schema = make(data.Schema, arity)
		for j := range t.Schema {
			if t.Schema[j], err = r.str(); err != nil {
				return nil, err
			}
		}
		nRows, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nRows > uint64(len(body)) {
			return nil, fmt.Errorf("wal: implausible row count %d", nRows)
		}
		t.Rows = make([]data.Tuple, 0, nRows)
		t.Mults = make([]int64, 0, nRows)
		for j := uint64(0); j < nRows; j++ {
			m, err := r.varint()
			if err != nil {
				return nil, err
			}
			row, err := r.tuple(int(arity))
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
			t.Mults = append(t.Mults, m)
		}
		ck.Bases = append(ck.Bases, t)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return ck, nil
}

// WriteCheckpoint persists ck (stamping it with the log's current LSN),
// publishes it atomically via temp-file rename, then rotates to a fresh
// segment and prunes everything the checkpoint makes redundant: older
// segments and older checkpoints. The log must be healthy.
func (l *Log) WriteCheckpoint(ck *Checkpoint) error {
	if err := l.usable(); err != nil {
		return err
	}
	ck.LSN = l.lsn
	// Everything covered must be durable before the checkpoint claims it.
	if err := l.Sync(); err != nil {
		return err
	}

	enc := encodeCheckpoint(ck)
	tmp := path.Join(l.dir, "ckpt.tmp")
	f, err := l.opts.FS.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: create checkpoint: %w", err)
	}
	if _, err := f.Write(enc); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: write checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: sync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close checkpoint: %w", err)
	}
	final := path.Join(l.dir, ckptFileName(ck.LSN))
	if err := l.opts.FS.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: publish checkpoint: %w", err)
	}

	// Start a fresh segment so every earlier one holds only covered
	// records, then prune them along with superseded checkpoints.
	if err := l.rotate(); err != nil {
		l.failed = err
		return err
	}
	l.prune(ck.LSN)
	return nil
}

// prune removes segments older than the current one and checkpoints older
// than the one covering lsn. Best-effort: pruning failures leave garbage,
// not incorrectness.
func (l *Log) prune(lsn uint64) {
	names, err := l.opts.FS.ReadDir(l.dir)
	if err != nil {
		return
	}
	for _, n := range names {
		switch {
		case strings.HasPrefix(n, "wal-") && strings.HasSuffix(n, ".seg"):
			if seq, ok := parseSegName(n); ok && seq < l.segSeq {
				_ = l.opts.FS.Remove(path.Join(l.dir, n))
			}
		case strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ".ck"):
			if ckLSN, ok := parseCkptName(n); ok && ckLSN < lsn {
				_ = l.opts.FS.Remove(path.Join(l.dir, n))
			}
		}
	}
}

func parseCkptName(name string) (uint64, bool) {
	var lsn uint64
	if _, err := fmt.Sscanf(name, "ckpt-%x.ck", &lsn); err != nil {
		return 0, false
	}
	return lsn, true
}

// loadLatestCheckpoint returns the newest readable checkpoint among names
// (nil if none exists). Unreadable or corrupt candidates are skipped in
// favor of older ones — a torn temp file must never block recovery.
func loadLatestCheckpoint(fs VFS, dir string, names []string) (*Checkpoint, error) {
	var cks []string
	for _, n := range names {
		if strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ".ck") {
			cks = append(cks, n)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(cks)))
	for _, n := range cks {
		b, err := fs.ReadFile(path.Join(dir, n))
		if err != nil {
			continue
		}
		ck, err := decodeCheckpoint(b)
		if err != nil {
			continue
		}
		return ck, nil
	}
	return nil, nil
}
