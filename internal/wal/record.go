package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"fivm/internal/data"
)

// Record framing, shared by segments and checkpoints:
//
//	u32le length  — length of body (type byte + payload)
//	u32le crc32c  — CRC-32 (Castagnoli) of body
//	body          — 1 type byte, then the type-specific payload
//
// Every record's payload begins with its uvarint LSN (log sequence number,
// strictly increasing across the whole log, segments included), so replay
// and checkpoint coverage compare on a single monotonic axis regardless of
// record type.
//
// Batch payload:
//
//	uvarint lsn | uvarint applied | uvarint nUpdates
//	per update: uvarint len(rel) rel | varint mult | uvarint arity |
//	            uvarint nTuples | tuples (data value codec, back to back)
//
// CreateView payload: uvarint lsn | str name | str sql | uvarint workers |
// flags byte (bit0 ComposeChains, bit1 CostMaterialize, bit2 AutoReoptimize).
// DropView payload: uvarint lsn | str name.

const (
	recBatch      = 1
	recCreateView = 2
	recDropView   = 3
)

// recordOverhead is the framing bytes before the payload: length, CRC, type.
const recordOverhead = 4 + 4 + 1

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one decoded WAL record, replayed in LSN order during recovery.
// Exactly one of Batch / Create / Drop is meaningful, per Type.
type Record struct {
	LSN  uint64
	Type byte
	// Applied is the DB's applied-batch counter after this batch (recBatch).
	Applied uint64
	Batch   []data.BaseUpdate
	Create  *ViewDef
	Drop    string
}

// ViewDef is the persisted catalog entry of a SQL-defined view: enough to
// re-create it through the ordinary CreateViewSQL path during recovery.
type ViewDef struct {
	Name            string
	SQL             string
	Workers         int
	ComposeChains   bool
	CostMaterialize bool
	AutoReoptimize  bool
}

// appendFrame wraps body (type byte already included) in the length+CRC
// frame, appending to b.
func appendFrame(b, body []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, castagnoli))
	b = append(b, hdr[:]...)
	return append(b, body...)
}

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(b, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

func appendVarint(b []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(b, tmp[:binary.PutVarint(tmp[:], v)]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// encodeBatchBody appends the recBatch body (type byte + payload) to b.
// Allocation-free in steady state given a reused buffer.
func encodeBatchBody(b []byte, lsn, applied uint64, batch []data.BaseUpdate) []byte {
	b = append(b, recBatch)
	b = appendUvarint(b, lsn)
	b = appendUvarint(b, applied)
	b = appendUvarint(b, uint64(len(batch)))
	for _, u := range batch {
		b = appendString(b, u.Rel)
		mult := u.Mult
		if mult == 0 {
			mult = 1
		}
		b = appendVarint(b, mult)
		arity := 0
		if len(u.Tuples) > 0 {
			arity = len(u.Tuples[0])
		}
		b = appendUvarint(b, uint64(arity))
		b = appendUvarint(b, uint64(len(u.Tuples)))
		for _, t := range u.Tuples {
			for _, v := range t {
				b = data.AppendValue(b, v)
			}
		}
	}
	return b
}

func encodeCreateViewBody(b []byte, lsn uint64, def ViewDef) []byte {
	b = append(b, recCreateView)
	b = appendUvarint(b, lsn)
	b = appendString(b, def.Name)
	b = appendString(b, def.SQL)
	b = appendUvarint(b, uint64(def.Workers))
	var flags byte
	if def.ComposeChains {
		flags |= 1
	}
	if def.CostMaterialize {
		flags |= 2
	}
	if def.AutoReoptimize {
		flags |= 4
	}
	return append(b, flags)
}

func encodeDropViewBody(b []byte, lsn uint64, name string) []byte {
	b = append(b, recDropView)
	b = appendUvarint(b, lsn)
	return appendString(b, name)
}

// RecordBoundaries returns the file offset at which each complete record of
// a segment ends, in order. Crash tests use it to aim byte-budget faults at
// exact record boundaries. Scanning stops at the first torn or corrupt
// frame.
func RecordBoundaries(seg []byte) []int64 {
	if len(seg) < segHdrLen || string(seg[:8]) != segMagic {
		return nil
	}
	var bounds []int64
	at := segHdrLen
	for at < len(seg) {
		_, n, err := decodeRecord(seg[at:])
		if err != nil {
			break
		}
		at += n
		bounds = append(bounds, int64(at))
	}
	return bounds
}

// recordReader decodes sequential fields from a record payload.
type recordReader struct {
	b  []byte
	at int
}

func (r *recordReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.at:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: truncated uvarint at offset %d", r.at)
	}
	r.at += n
	return v, nil
}

func (r *recordReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.at:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: truncated varint at offset %d", r.at)
	}
	r.at += n
	return v, nil
}

func (r *recordReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.b)-r.at) {
		return "", fmt.Errorf("wal: string of %d bytes with %d remaining", n, len(r.b)-r.at)
	}
	s := string(r.b[r.at : r.at+int(n)])
	r.at += int(n)
	return s, nil
}

func (r *recordReader) tuple(arity int) (data.Tuple, error) {
	t, n, err := data.DecodeTuple(r.b[r.at:], arity)
	if err != nil {
		return nil, err
	}
	r.at += n
	return t, nil
}

func (r *recordReader) done() error {
	if r.at != len(r.b) {
		return fmt.Errorf("wal: %d trailing bytes in record", len(r.b)-r.at)
	}
	return nil
}

// decodeRecord decodes one framed record from the front of b. It returns the
// record, the total bytes consumed, and an error. A frame that extends past
// the end of b (or an incomplete header) reports errTorn — the caller decides
// whether that is a legitimate torn tail or mid-log corruption.
func decodeRecord(b []byte) (Record, int, error) {
	if len(b) < 8 {
		return Record{}, 0, errTorn
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	crc := binary.LittleEndian.Uint32(b[4:8])
	if n == 0 || n > maxRecordBytes {
		return Record{}, 0, fmt.Errorf("wal: implausible record length %d", n)
	}
	if uint32(len(b)-8) < n {
		return Record{}, 0, errTorn
	}
	body := b[8 : 8+n]
	if crc32.Checksum(body, castagnoli) != crc {
		return Record{}, 0, errBadCRC
	}
	rec := Record{Type: body[0]}
	r := recordReader{b: body, at: 1}
	var err error
	if rec.LSN, err = r.uvarint(); err != nil {
		return Record{}, 0, err
	}
	switch rec.Type {
	case recBatch:
		if rec.Applied, err = r.uvarint(); err != nil {
			return Record{}, 0, err
		}
		nUpd, err := r.uvarint()
		if err != nil {
			return Record{}, 0, err
		}
		if nUpd > uint64(len(body)) {
			return Record{}, 0, fmt.Errorf("wal: implausible update count %d", nUpd)
		}
		rec.Batch = make([]data.BaseUpdate, 0, nUpd)
		for i := uint64(0); i < nUpd; i++ {
			var u data.BaseUpdate
			if u.Rel, err = r.str(); err != nil {
				return Record{}, 0, err
			}
			if u.Mult, err = r.varint(); err != nil {
				return Record{}, 0, err
			}
			arity, err := r.uvarint()
			if err != nil {
				return Record{}, 0, err
			}
			nTup, err := r.uvarint()
			if err != nil {
				return Record{}, 0, err
			}
			if arity > 1<<16 || nTup > uint64(len(body)) {
				return Record{}, 0, fmt.Errorf("wal: implausible tuple shape %d x %d", nTup, arity)
			}
			u.Tuples = make([]data.Tuple, 0, nTup)
			for j := uint64(0); j < nTup; j++ {
				t, err := r.tuple(int(arity))
				if err != nil {
					return Record{}, 0, err
				}
				u.Tuples = append(u.Tuples, t)
			}
			rec.Batch = append(rec.Batch, u)
		}
	case recCreateView:
		def := &ViewDef{}
		if def.Name, err = r.str(); err != nil {
			return Record{}, 0, err
		}
		if def.SQL, err = r.str(); err != nil {
			return Record{}, 0, err
		}
		w, err := r.uvarint()
		if err != nil {
			return Record{}, 0, err
		}
		def.Workers = int(w)
		if r.at >= len(r.b) {
			return Record{}, 0, fmt.Errorf("wal: create-view record missing flags")
		}
		flags := r.b[r.at]
		r.at++
		def.ComposeChains = flags&1 != 0
		def.CostMaterialize = flags&2 != 0
		def.AutoReoptimize = flags&4 != 0
		rec.Create = def
	case recDropView:
		if rec.Drop, err = r.str(); err != nil {
			return Record{}, 0, err
		}
	default:
		return Record{}, 0, fmt.Errorf("wal: unknown record type %d", rec.Type)
	}
	if err := r.done(); err != nil {
		return Record{}, 0, err
	}
	return rec, 8 + int(n), nil
}
