package wal

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// VFS is the small filesystem surface the WAL writes through. Wrapping all
// file I/O behind it is what makes crash recovery testable: the in-memory
// implementation (NewMemFS) gives byte-exact control over what "survived",
// and the fault-injecting wrapper (NewFaultFS) turns write/sync/close errors
// and torn writes into deterministic unit tests. Production uses OSFS.
//
// Path semantics are the host's (the WAL only ever joins a directory with
// flat file names). Implementations must be safe for the WAL's single-writer
// discipline; they need not support concurrent writers to one file.
type VFS interface {
	// MkdirAll creates the directory (and parents) if missing.
	MkdirAll(dir string) error
	// ReadDir returns the names (not paths) of the directory's entries in
	// sorted order.
	ReadDir(dir string) ([]string, error)
	// ReadFile returns the file's full contents.
	ReadFile(name string) ([]byte, error)
	// Create creates or truncates a file for writing.
	Create(name string) (File, error)
	// Remove deletes a file.
	Remove(name string) error
	// Rename atomically replaces newname with oldname (the checkpoint
	// publish step).
	Rename(oldname, newname string) error
	// Truncate cuts the named file to size bytes (torn-tail repair).
	Truncate(name string, size int64) error
}

// File is a writable log file: sequential writes, explicit sync, close.
type File interface {
	Write(p []byte) (int, error)
	// Sync forces written bytes to stable storage; a record is durable (and
	// a batch acknowledgeable under FsyncAlways) only after Sync returns.
	Sync() error
	Close() error
}

// OSFS is the production VFS over the real filesystem. Create and Rename
// sync the parent directory so newly created segments and published
// checkpoints survive a crash of the directory metadata too (best-effort:
// platforms that cannot fsync directories are tolerated).
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	syncDir(filepath.Dir(name))
	return f, nil
}

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) Rename(oldname, newname string) error {
	if err := os.Rename(oldname, newname); err != nil {
		return err
	}
	syncDir(filepath.Dir(newname))
	return nil
}

func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// syncDir fsyncs a directory so entry creation/rename is durable.
// Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// isNotExist reports whether err means a missing file/directory, across VFS
// implementations.
func isNotExist(err error) bool {
	return err != nil && (os.IsNotExist(err) || err == fs.ErrNotExist)
}
