package wal

import (
	"errors"
	"sync"
)

// ErrInjected is the error returned by FaultFS for every injected failure,
// and stickily after a simulated crash. Tests assert with errors.Is.
var ErrInjected = errors.New("wal: injected fault")

// FaultFS wraps another VFS and injects failures deterministically:
//
//   - CrashAfterBytes(n): after n more bytes have been written (across all
//     files), the filesystem "crashes" — the write that crosses the budget is
//     a partial write (the first bytes up to the budget still reach the inner
//     FS, modelling a torn write), and every operation afterwards fails with
//     ErrInjected. Combined with MemVFS.Crash this reproduces a power cut at
//     an exact byte offset, which is how the recovery property test visits
//     every record boundary and mid-record offset.
//   - FailNthSync(n): the n-th Sync call (1-based) fails.
//   - FailNthCreate(n): the n-th Create call fails.
//   - FailNextClose(): the next Close call fails.
type FaultFS struct {
	inner VFS

	mu         sync.Mutex
	crashAt    int64 // remaining write budget; <0 = unlimited
	crashed    bool
	failSync   int // countdown; fails when it reaches 0 on a Sync
	failCreate int
	failClose  bool
}

// NewFaultFS wraps inner with no faults armed.
func NewFaultFS(inner VFS) *FaultFS {
	return &FaultFS{inner: inner, crashAt: -1, failSync: -1, failCreate: -1}
}

// CrashAfterBytes arms a crash after n more written bytes. n = 0 crashes on
// the next write.
func (f *FaultFS) CrashAfterBytes(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = n
}

// Crashed reports whether the armed crash has triggered.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// FailNthSync arms the n-th (1-based) subsequent Sync call to fail.
func (f *FaultFS) FailNthSync(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSync = n
}

// FailNthCreate arms the n-th (1-based) subsequent Create call to fail.
func (f *FaultFS) FailNthCreate(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failCreate = n
}

// FailNextClose arms the next Close call to fail.
func (f *FaultFS) FailNextClose() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failClose = true
}

func (f *FaultFS) gate() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrInjected
	}
	return nil
}

func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) Create(name string) (File, error) {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return nil, ErrInjected
	}
	if f.failCreate > 0 {
		f.failCreate--
		if f.failCreate == 0 {
			f.failCreate = -1
			f.mu.Unlock()
			return nil, ErrInjected
		}
	}
	f.mu.Unlock()
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) Remove(name string) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) Rename(oldname, newname string) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.fs
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return 0, ErrInjected
	}
	if f.crashAt >= 0 && int64(len(p)) > f.crashAt {
		// Torn write: the prefix within budget reaches the inner FS, then
		// the crash triggers.
		keep := int(f.crashAt)
		f.crashAt = 0
		f.crashed = true
		f.mu.Unlock()
		if keep > 0 {
			_, _ = ff.inner.Write(p[:keep])
		}
		return keep, ErrInjected
	}
	if f.crashAt >= 0 {
		f.crashAt -= int64(len(p))
	}
	f.mu.Unlock()
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	f := ff.fs
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrInjected
	}
	if f.failSync > 0 {
		f.failSync--
		if f.failSync == 0 {
			f.failSync = -1
			f.mu.Unlock()
			return ErrInjected
		}
	}
	f.mu.Unlock()
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error {
	f := ff.fs
	f.mu.Lock()
	if f.failClose {
		f.failClose = false
		f.mu.Unlock()
		return ErrInjected
	}
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		// Still close the inner file so resources are released, but report
		// the sticky failure.
		_ = ff.inner.Close()
		return ErrInjected
	}
	return ff.inner.Close()
}
