package mcm

import (
	"fmt"

	"fivm/internal/matrix"
)

// DenseChain maintains A = A1 · A2 · ... · Ak over dense arrays — the
// Octave stand-in backend of Figure 6 — under updates to one designated
// matrix. It implements the three strategies the paper compares:
//
//   - F-IVM: factored rank-1 propagation in O(k n²) per rank-1 update
//     (O(n² log k) with the balanced product tree; for the experiments'
//     3-chains the two coincide),
//   - 1-IVM: recompute δA = L · δA_u · R with full matrix products, and
//   - RE-EVAL: recompute the whole chain product.
type DenseChain struct {
	Ms        []*matrix.Dense // the k matrices, 1-based conceptually
	Updatable int             // 1-based index of the updated matrix
	A         *matrix.Dense   // the maintained product
}

// NewDenseChain clones the inputs and computes the initial product.
func NewDenseChain(upd int, ms []*matrix.Dense) (*DenseChain, error) {
	if upd < 1 || upd > len(ms) {
		return nil, fmt.Errorf("mcm: updatable index %d out of range", upd)
	}
	cp := make([]*matrix.Dense, len(ms))
	for i, m := range ms {
		cp[i] = m.Clone()
	}
	return &DenseChain{Ms: cp, Updatable: upd, A: matrix.MulChainOptimal(cp...)}, nil
}

// left returns the product of the matrices before the updated one (nil if
// none), and right the product after it.
func (c *DenseChain) left() *matrix.Dense {
	if c.Updatable == 1 {
		return nil
	}
	return matrix.MulChainOptimal(c.Ms[:c.Updatable-1]...)
}

func (c *DenseChain) right() *matrix.Dense {
	if c.Updatable == len(c.Ms) {
		return nil
	}
	return matrix.MulChainOptimal(c.Ms[c.Updatable:]...)
}

// ApplyRank1FIVM is the factorized strategy: δA = (L·u)(vᵀ·R) computed with
// matrix-vector products only.
func (c *DenseChain) ApplyRank1FIVM(u, v []float64) {
	// Propagate u through the left factors and v through the right ones.
	u1 := append([]float64(nil), u...)
	for i := c.Updatable - 2; i >= 0; i-- {
		u1 = c.Ms[i].MulVec(u1)
	}
	v1 := append([]float64(nil), v...)
	for i := c.Updatable; i < len(c.Ms); i++ {
		v1 = c.Ms[i].VecMul(v1)
	}
	c.A.AddOuterInPlace(u1, v1)
	c.Ms[c.Updatable-1].AddOuterInPlace(u, v)
}

// ApplyRankRFIVM processes a rank-r update as r rank-1 propagations.
func (c *DenseChain) ApplyRankRFIVM(terms []matrix.RankOne) {
	for _, t := range terms {
		c.ApplyRank1FIVM(t.U, t.V)
	}
}

// ApplyFirstOrder is 1-IVM: δA = L · δ · R with δ materialized, costing a
// full matrix-matrix multiplication (the paper's one-GEMM strategy; the
// outer product L·δ for a one-row δ is cheap, the product with R is not).
func (c *DenseChain) ApplyFirstOrder(delta *matrix.Dense) {
	d := delta
	if l := c.left(); l != nil {
		d = l.Mul(d)
	}
	if r := c.right(); r != nil {
		d = d.Mul(r)
	}
	c.A.AddInPlace(d)
	c.Ms[c.Updatable-1].AddInPlace(delta)
}

// ApplyReEval is full re-evaluation: merge the update, then recompute the
// chain product from scratch.
func (c *DenseChain) ApplyReEval(delta *matrix.Dense) {
	c.Ms[c.Updatable-1].AddInPlace(delta)
	c.A = matrix.MulChainOptimal(c.Ms...)
}

// RowUpdate builds the one-row update matrix (row i set to row) together
// with its rank-1 factorization e_i ⊗ row.
func RowUpdate(n, i int, row []float64) (*matrix.Dense, matrix.RankOne) {
	d := matrix.NewDense(n, n)
	copy(d.Data[i*n:(i+1)*n], row)
	u := make([]float64, n)
	u[i] = 1
	v := append([]float64(nil), row...)
	return d, matrix.RankOne{U: u, V: v}
}
