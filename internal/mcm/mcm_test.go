package mcm

import (
	"math/rand"
	"testing"

	"fivm/internal/matrix"
)

// TestHashChainMatchesDense checks that the F-IVM hash backend, driven with
// factored rank-1 updates, tracks the true chain product.
func TestHashChainMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 8
	ms := []*matrix.Dense{matrix.Random(n, n, rng), matrix.Random(n, n, rng), matrix.Random(n, n, rng)}
	hc, err := NewHashChain(3, 2, ms)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := NewDenseChain(2, ms)
	if err != nil {
		t.Fatal(err)
	}
	if got := hc.ResultMatrix(n, n); !got.EqualApprox(dense.A, 1e-9) {
		t.Fatalf("initial products differ by %g", got.MaxAbsDiff(dense.A))
	}

	for step := 0; step < 10; step++ {
		i := rng.Intn(n)
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.Float64()*2 - 1
		}
		delta, r1 := RowUpdate(n, i, row)
		if err := hc.ApplyRank1(r1.U, r1.V); err != nil {
			t.Fatal(err)
		}
		dense.ApplyReEval(delta)
		if got := hc.ResultMatrix(n, n); !got.EqualApprox(dense.A, 1e-8) {
			t.Fatalf("step %d: products differ by %g", step, got.MaxAbsDiff(dense.A))
		}
	}
}

// TestDenseStrategiesAgree drives F-IVM, 1-IVM, and RE-EVAL over the dense
// backend through the same row updates and checks they agree.
func TestDenseStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 12
	ms := []*matrix.Dense{matrix.Random(n, n, rng), matrix.Random(n, n, rng), matrix.Random(n, n, rng)}
	fivm, _ := NewDenseChain(2, ms)
	first, _ := NewDenseChain(2, ms)
	re, _ := NewDenseChain(2, ms)

	for step := 0; step < 8; step++ {
		i := rng.Intn(n)
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.Float64()*2 - 1
		}
		delta, r1 := RowUpdate(n, i, row)
		fivm.ApplyRank1FIVM(r1.U, r1.V)
		first.ApplyFirstOrder(delta)
		re.ApplyReEval(delta)

		if !fivm.A.EqualApprox(re.A, 1e-8) {
			t.Fatalf("step %d: F-IVM diff %g", step, fivm.A.MaxAbsDiff(re.A))
		}
		if !first.A.EqualApprox(re.A, 1e-8) {
			t.Fatalf("step %d: 1-IVM diff %g", step, first.A.MaxAbsDiff(re.A))
		}
	}
}

// TestDenseRankR checks rank-r updates: F-IVM's sequence of r rank-1
// propagations matches re-evaluation with the full update matrix.
func TestDenseRankR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 10
	ms := []*matrix.Dense{matrix.Random(n, n, rng), matrix.Random(n, n, rng), matrix.Random(n, n, rng)}
	fivm, _ := NewDenseChain(2, ms)
	re, _ := NewDenseChain(2, ms)
	for _, r := range []int{1, 3, 5} {
		delta, terms := matrix.RandomRank(n, n, r, rng)
		fivm.ApplyRankRFIVM(terms)
		re.ApplyReEval(delta)
		if !fivm.A.EqualApprox(re.A, 1e-8) {
			t.Fatalf("rank-%d: diff %g", r, fivm.A.MaxAbsDiff(re.A))
		}
	}
}

// TestLongerChains exercises 4- and 5-matrix chains end to end (Example
// 6.1 uses 4), updating an interior matrix in each.
func TestLongerChains(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 6
	for _, k := range []int{4, 5} {
		ms := make([]*matrix.Dense, k)
		for i := range ms {
			ms[i] = matrix.Random(n, n, rng)
		}
		upd := k / 2
		hc, err := NewHashChain(k, upd, ms)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		re, _ := NewDenseChain(upd, ms)
		for step := 0; step < 5; step++ {
			delta, terms := matrix.RandomRank(n, n, 1, rng)
			if err := hc.ApplyRank1(terms[0].U, terms[0].V); err != nil {
				t.Fatal(err)
			}
			re.ApplyReEval(delta)
			if got := hc.ResultMatrix(n, n); !got.EqualApprox(re.A, 1e-7) {
				t.Fatalf("k=%d step %d: diff %g", k, step, got.MaxAbsDiff(re.A))
			}
		}
	}
}

// TestHashChainDenseDelta exercises the unfactored (listing) update path.
func TestHashChainDenseDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 7
	ms := []*matrix.Dense{matrix.Random(n, n, rng), matrix.Random(n, n, rng), matrix.Random(n, n, rng)}
	hc, err := NewHashChain(3, 2, ms)
	if err != nil {
		t.Fatal(err)
	}
	re, _ := NewDenseChain(2, ms)
	delta := matrix.Random(n, n, rng)
	if err := hc.ApplyDense(delta); err != nil {
		t.Fatal(err)
	}
	re.ApplyReEval(delta)
	if got := hc.ResultMatrix(n, n); !got.EqualApprox(re.A, 1e-8) {
		t.Fatalf("dense delta diff %g", got.MaxAbsDiff(re.A))
	}
}

// TestChainOrderViewCount checks the engine materializes only the views the
// paper's analysis requires for updates to the middle matrix: for a 3-chain
// the root plus the two flanking base relations (Example 6.1's analysis).
func TestChainOrderViewCount(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 4
	ms := []*matrix.Dense{matrix.Random(n, n, rng), matrix.Random(n, n, rng), matrix.Random(n, n, rng)}
	hc, err := NewHashChain(3, 2, ms)
	if err != nil {
		t.Fatal(err)
	}
	// Root + A1 + A3 leaves = 3 materialized views; intermediate views on
	// A2's path are not stored.
	if got := hc.Engine().ViewCount(); got != 3 {
		t.Errorf("ViewCount = %d, want 3", got)
	}
}

func TestRowUpdate(t *testing.T) {
	d, r1 := RowUpdate(4, 2, []float64{1, 2, 3, 4})
	if d.At(2, 3) != 4 || d.At(0, 0) != 0 {
		t.Error("delta matrix wrong")
	}
	back := matrix.Recompose([]matrix.RankOne{r1}, 4, 4)
	if !back.EqualApprox(d, 0) {
		t.Error("rank-1 factorization of row update wrong")
	}
}

func TestChainQueryShape(t *testing.T) {
	q := ChainQuery(4)
	if len(q.Rels) != 4 {
		t.Errorf("rels = %d", len(q.Rels))
	}
	if !q.Free.SameSet([]string{"X1", "X5"}) {
		t.Errorf("free = %v", q.Free)
	}
	o := ChainOrder(4)
	if err := o.Prepare(q); err != nil {
		t.Fatalf("ChainOrder invalid: %v", err)
	}
}
