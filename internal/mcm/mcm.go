// Package mcm implements incremental matrix chain multiplication on top of
// F-IVM (paper Section 6.1), recovering LINVIEW's factorized maintenance of
// linear-algebra programs as a special case of the general framework.
//
// A matrix A_i of size p×p is a relation A_i[X_i, X_{i+1}] whose payloads
// carry the matrix values; the chain product is the group-by aggregate query
//
//	A[X_1, X_{n+1}] = ⊕_{X_2} ... ⊕_{X_n} ⊗_i A_i[X_i, X_{i+1}]
//
// over the Float ring with all lifting functions mapping to 1. Rank-1
// changes δA_i = u vᵀ propagate as factored deltas in O(p²) time, versus
// O(p³) for first-order IVM and re-evaluation.
//
// The package offers two backends mirroring the paper's Figure 6 setup: the
// hash backend drives the generic F-IVM engine over hash-map relations, and
// the dense backend (the Octave stand-in) implements the same three
// strategies over dense arrays.
package mcm

import (
	"fmt"

	"fivm/internal/data"
	"fivm/internal/ivm"
	"fivm/internal/matrix"
	"fivm/internal/query"
	"fivm/internal/ring"
	"fivm/internal/vorder"
)

// VarName returns the canonical name of chain variable X_i (1-based).
func VarName(i int) string { return fmt.Sprintf("X%d", i) }

// MatName returns the canonical name of chain matrix A_i (1-based).
func MatName(i int) string { return fmt.Sprintf("A%d", i) }

// ChainQuery builds the matrix chain query for k matrices:
// A1(X1,X2) ⋈ ... ⋈ Ak(Xk,Xk+1) with free variables X1 and Xk+1.
func ChainQuery(k int) query.Query {
	rels := make([]query.RelDef, k)
	for i := 1; i <= k; i++ {
		rels[i-1] = query.RelDef{
			Name:   MatName(i),
			Schema: data.NewSchema(VarName(i), VarName(i+1)),
		}
	}
	return query.MustNew(fmt.Sprintf("chain%d", k), data.NewSchema(VarName(1), VarName(k+1)), rels...)
}

// ChainOrder builds the balanced variable order of Example 6.1: the free
// endpoint variables on top, then recursive bisection of the interior join
// variables (X1 − Xk+1 − Xmid − {...}), which gives a view tree of depth
// O(log k) and the O(p² log k) factorized update bound.
func ChainOrder(k int) *vorder.Order {
	var bisect func(lo, hi int) []*vorder.Node
	bisect = func(lo, hi int) []*vorder.Node {
		if hi-lo <= 1 {
			return nil
		}
		mid := (lo + hi) / 2
		n := vorder.V(VarName(mid))
		n.Children = append(n.Children, bisect(lo, mid)...)
		n.Children = append(n.Children, bisect(mid, hi)...)
		return []*vorder.Node{n}
	}
	top := vorder.V(VarName(1))
	second := vorder.V(VarName(k + 1))
	top.Children = []*vorder.Node{second}
	second.Children = bisect(1, k+1)
	return vorder.MustNew(top)
}

// oneLift is the lifting for matrix chain queries: every join variable value
// maps to 1; the matrix values live in the payloads.
func oneLift(string, data.Value) float64 { return 1 }

// MatrixToRelation converts a dense matrix into a relation over (row, col)
// keys with value payloads, skipping zeros.
func MatrixToRelation(m *matrix.Dense, rowVar, colVar string) *data.Relation[float64] {
	rel := data.NewRelation[float64](ring.Float{}, data.NewSchema(rowVar, colVar))
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if v := m.At(i, j); v != 0 {
				rel.Set(data.Ints(int64(i), int64(j)), v)
			}
		}
	}
	return rel
}

// RelationToMatrix converts a (row, col) keyed relation back to dense form.
func RelationToMatrix(rel *data.Relation[float64], rows, cols int) *matrix.Dense {
	out := matrix.NewDense(rows, cols)
	rowIdx := 0
	colIdx := 1
	rel.Iterate(func(t data.Tuple, p float64) bool {
		out.Set(int(t[rowIdx].AsInt()), int(t[colIdx].AsInt()), p)
		return true
	})
	return out
}

// VectorToRelation converts a vector into a unary relation over variable v.
func VectorToRelation(u []float64, v string) *data.Relation[float64] {
	rel := data.NewRelation[float64](ring.Float{}, data.NewSchema(v))
	for i, x := range u {
		if x != 0 {
			rel.Set(data.Ints(int64(i)), x)
		}
	}
	return rel
}

// HashChain maintains a k-matrix chain with the generic F-IVM engine over
// hash relations, processing updates to a designated matrix as factored
// (rank-1) deltas.
type HashChain struct {
	K         int
	Updatable int // index of the matrix receiving updates (1-based)
	engine    *ivm.Engine[float64]
}

// NewHashChain builds the engine for k matrices with updates targeted at
// matrix upd (1-based) and loads the initial matrices.
func NewHashChain(k, upd int, ms []*matrix.Dense) (*HashChain, error) {
	if len(ms) != k {
		return nil, fmt.Errorf("mcm: got %d matrices for a %d-chain", len(ms), k)
	}
	q := ChainQuery(k)
	e, err := ivm.New[float64](q, ChainOrder(k), ring.Float{}, oneLift, ivm.Options[float64]{
		Updatable: []string{MatName(upd)},
	})
	if err != nil {
		return nil, err
	}
	for i := 1; i <= k; i++ {
		rel := MatrixToRelation(ms[i-1], VarName(i), VarName(i+1))
		if err := e.Load(MatName(i), rel); err != nil {
			return nil, err
		}
	}
	if err := e.Init(); err != nil {
		return nil, err
	}
	return &HashChain{K: k, Updatable: upd, engine: e}, nil
}

// ApplyRank1 applies the factored update δA_upd = u vᵀ.
func (c *HashChain) ApplyRank1(u, v []float64) error {
	fu := VectorToRelation(u, VarName(c.Updatable))
	fv := VectorToRelation(v, VarName(c.Updatable+1))
	return c.engine.ApplyFactoredDelta(MatName(c.Updatable), ivm.FactoredDelta[float64]{
		Factors: []*data.Relation[float64]{fu, fv},
	})
}

// ApplyRankR applies a rank-r update as a sequence of rank-1 factored
// deltas, the paper's O(r n²) strategy for Figure 6 (right).
func (c *HashChain) ApplyRankR(terms []matrix.RankOne) error {
	for _, t := range terms {
		if err := c.ApplyRank1(t.U, t.V); err != nil {
			return err
		}
	}
	return nil
}

// ApplyDense applies an arbitrary update matrix as a plain (listing) delta.
func (c *HashChain) ApplyDense(delta *matrix.Dense) error {
	rel := MatrixToRelation(delta, VarName(c.Updatable), VarName(c.Updatable+1))
	return c.engine.ApplyDelta(MatName(c.Updatable), rel)
}

// Result returns the maintained product as a relation.
func (c *HashChain) Result() *data.Relation[float64] { return c.engine.Result() }

// ResultMatrix returns the maintained product in dense form.
func (c *HashChain) ResultMatrix(rows, cols int) *matrix.Dense {
	return RelationToMatrix(c.engine.Result(), rows, cols)
}

// Engine exposes the underlying engine (for benchmarks and inspection).
func (c *HashChain) Engine() *ivm.Engine[float64] { return c.engine }
