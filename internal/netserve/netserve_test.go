package netserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fivm/internal/data"
	"fivm/internal/db"
)

func testCatalog() db.Catalog {
	return db.Catalog{
		"R": data.NewSchema("A", "B"),
		"S": data.NewSchema("A", "C"),
	}
}

// newTestServer returns a primary DB behind a netserve handler plus its
// ingest queue, all torn down with the test.
func newTestServer(t *testing.T, depth int) (*db.DB, *db.ApplyQueue, *httptest.Server) {
	t.Helper()
	d, err := db.Open(testCatalog(), db.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := db.NewApplyQueue(d, depth)
	s, err := New(Config{DB: func() *db.DB { return d }, Queue: q, RetryAfter: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); q.Close(); d.Close() })
	return d, q, ts
}

func getJSON(t *testing.T, url string, wantStatus int) (map[string]any, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m, resp.Header
}

func postJSON(t *testing.T, url string, body any, wantStatus int) (map[string]any, http.Header) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m, resp.Header
}

func applyBody(rel string, mult int64, tuples ...[]any) map[string]any {
	return map[string]any{"updates": []map[string]any{
		{"rel": rel, "mult": mult, "tuples": tuples},
	}}
}

func TestServeLookupScanHeaders(t *testing.T) {
	_, _, ts := newTestServer(t, 8)

	if m, _ := postJSON(t, ts.URL+"/exec",
		map[string]string{"sql": "CREATE VIEW sums AS SELECT A, SUM(B * C) FROM R NATURAL JOIN S GROUP BY A"},
		http.StatusOK); m["status"] != "created view sums" {
		t.Fatalf("exec: %v", m)
	}
	postJSON(t, ts.URL+"/apply", applyBody("R", 1, []any{1, 2}, []any{2, 3}), http.StatusOK)
	m, h := postJSON(t, ts.URL+"/apply", applyBody("S", 1, []any{1, 10}, []any{2, 20}), http.StatusOK)
	if m["applied"].(float64) != 2 {
		t.Fatalf("applied: %v", m)
	}
	if h.Get("X-Fivm-Epoch") == "" || h.Get("X-Fivm-Applied") != "2" {
		t.Fatalf("write headers: %v", h)
	}

	// Point lookup: A=1 → SUM(B*C) = 2*10 = 20.
	m, h = getJSON(t, ts.URL+"/view/sums/lookup?key=1", http.StatusOK)
	if m["found"] != true || m["value"].(float64) != 20 {
		t.Fatalf("lookup: %v", m)
	}
	if h.Get("X-Fivm-Epoch") == "" || h.Get("X-Fivm-Lag") == "" {
		t.Fatalf("read headers missing: %v", h)
	}
	if _, err := time.ParseDuration(h.Get("X-Fivm-Lag")); err != nil {
		t.Fatalf("X-Fivm-Lag not a duration: %v", err)
	}
	m, _ = getJSON(t, ts.URL+"/view/sums/lookup?key=99", http.StatusOK)
	if m["found"] != false {
		t.Fatalf("missing key found: %v", m)
	}

	// Whole-view scan, then limited scan with truncation.
	m, _ = getJSON(t, ts.URL+"/view/sums/scan", http.StatusOK)
	if m["count"].(float64) != 2 || m["truncated"] != false {
		t.Fatalf("scan: %v", m)
	}
	m, _ = getJSON(t, ts.URL+"/view/sums/scan?limit=1", http.StatusOK)
	if m["count"].(float64) != 1 || m["truncated"] != true {
		t.Fatalf("limited scan: %v", m)
	}
	// Prefix scan pins A=2.
	m, _ = getJSON(t, ts.URL+"/view/sums/scan?key=2", http.StatusOK)
	if m["count"].(float64) != 1 {
		t.Fatalf("prefix scan: %v", m)
	}
	rows := m["rows"].([]any)
	r0 := rows[0].(map[string]any)
	if r0["value"].(float64) != 60 { // 3*20
		t.Fatalf("prefix row: %v", r0)
	}

	getJSON(t, ts.URL+"/view/nosuch/lookup?key=1", http.StatusNotFound)
	getJSON(t, ts.URL+"/view/sums/lookup?key=i:notanint", http.StatusBadRequest)
}

func TestServeMinEpoch(t *testing.T) {
	_, _, ts := newTestServer(t, 8)
	postJSON(t, ts.URL+"/apply", applyBody("R", 1, []any{1, 1}), http.StatusOK)

	m, _ := getJSON(t, ts.URL+"/stats?min_epoch=1", http.StatusOK)
	cur := uint64(m["epoch"].(float64))
	getJSON(t, fmt.Sprintf("%s/stats?min_epoch=%d", ts.URL, cur), http.StatusOK)
	getJSON(t, fmt.Sprintf("%s/stats?min_epoch=%d", ts.URL, cur+5), http.StatusPreconditionFailed)
}

func TestServeSelectOneShot(t *testing.T) {
	d, _, ts := newTestServer(t, 8)
	postJSON(t, ts.URL+"/apply", applyBody("R", 1, []any{1, 2}, []any{2, 3}), http.StatusOK)
	postJSON(t, ts.URL+"/apply", applyBody("S", 1, []any{1, 10}), http.StatusOK)

	m, _ := postJSON(t, ts.URL+"/select",
		map[string]any{"sql": "SELECT A, SUM(B * C) FROM R NATURAL JOIN S GROUP BY A"},
		http.StatusOK)
	if m["count"].(float64) != 1 {
		t.Fatalf("select: %v", m)
	}
	r0 := m["rows"].([]any)[0].(map[string]any)
	if r0["value"].(float64) != 20 {
		t.Fatalf("select row: %v", r0)
	}
	// The temporary view is gone.
	for _, v := range d.Views() {
		if strings.HasPrefix(v, "__select_") {
			t.Fatalf("temp view leaked: %v", d.Views())
		}
	}
	// Non-SELECT text through /select is rejected.
	postJSON(t, ts.URL+"/select", map[string]any{"sql": "CREATE VIEW x AS SELECT A, SUM(B) FROM R GROUP BY A"},
		http.StatusUnprocessableEntity)
}

// A full ingest queue turns into 429 + Retry-After instead of blocking.
func TestServeApplyBackpressure(t *testing.T) {
	_, q, ts := newTestServer(t, 1)

	release := make(chan struct{})
	started := make(chan struct{})
	stallDone := make(chan error, 1)
	go func() {
		stallDone <- q.Do(func(*db.DB) error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started
	fillDone := make(chan error, 1)
	go func() { fillDone <- q.TryApply([]db.Update{db.Insert("R", data.Tuple{data.Int(1), data.Int(1)})}) }()
	for q.Len() < q.Cap() {
		time.Sleep(time.Millisecond)
	}

	m, h := postJSON(t, ts.URL+"/apply", applyBody("R", 1, []any{2, 2}), http.StatusTooManyRequests)
	if h.Get("Retry-After") != "2" {
		t.Fatalf("Retry-After %q, want 2 (headers %v, body %v)", h.Get("Retry-After"), h, m)
	}
	close(release)
	if err := <-stallDone; err != nil {
		t.Fatal(err)
	}
	if err := <-fillDone; err != nil {
		t.Fatal(err)
	}
}

// A server without an ingest queue (the follower shape) is read-only.
func TestServeReadOnly(t *testing.T) {
	d, err := db.Open(testCatalog(), db.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Apply([]db.Update{db.Insert("R", data.Tuple{data.Int(1), data.Int(7)})}); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{DB: func() *db.DB { return d }})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJSON(t, ts.URL+"/apply", applyBody("R", 1, []any{2, 2}), http.StatusForbidden)
	postJSON(t, ts.URL+"/exec", map[string]string{"sql": "DROP VIEW x"}, http.StatusForbidden)
	postJSON(t, ts.URL+"/select", map[string]any{"sql": "SELECT A, SUM(B) FROM R GROUP BY A"}, http.StatusForbidden)
	m, _ := getJSON(t, ts.URL+"/stats", http.StatusOK)
	if m["applied"].(float64) != 1 {
		t.Fatalf("stats on read-only: %v", m)
	}
}

// Serve over a real listener exercises ConnContext reader reuse and the
// graceful Shutdown path.
func TestServeRealListenerAndShutdown(t *testing.T) {
	d, err := db.Open(testCatalog(), db.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	q := db.NewApplyQueue(d, 8)
	defer q.Close()
	s, err := New(Config{DB: func() *db.DB { return d }, Queue: q})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	postJSON(t, base+"/exec", map[string]string{"sql": "CREATE VIEW sums AS SELECT A, SUM(B * C) FROM R NATURAL JOIN S GROUP BY A"}, http.StatusOK)
	postJSON(t, base+"/apply", applyBody("R", 1, []any{1, 2}), http.StatusOK)
	postJSON(t, base+"/apply", applyBody("S", 1, []any{1, 5}), http.StatusOK)

	// Several lookups on one keep-alive connection share the pinned reader.
	client := &http.Client{}
	for i := 0; i < 5; i++ {
		resp, err := client.Get(base + "/view/sums/lookup?key=1")
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if m["value"].(float64) != 10 {
			t.Fatalf("lookup %d: %v", i, m)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v", err)
	}
}
