// Package netserve is the network read/write surface over a db.DB: a
// dependency-free HTTP server exposing the epoch-pinned read path (point
// lookups, ordered prefix scans), one-shot SELECT, view DDL, and a
// backpressured write path.
//
// Consistency contract: every request pins exactly one published Epoch and
// answers entirely from it, so a response is never torn across batches. The
// pinned epoch is reported on every response via the X-Fivm-Epoch (epoch
// sequence number), X-Fivm-Applied (batches reflected), and X-Fivm-Lag
// (age of the epoch's publication) headers; a client that must not read
// backwards passes ?min_epoch=N and gets 412 Precondition Failed when the
// serving epoch is older (e.g. on a lagging read replica).
//
// Backpressure: writes go through a bounded db.ApplyQueue. When the queue
// is full, POST /apply fails fast with 429 Too Many Requests and a
// Retry-After header instead of queueing unbounded work.
//
// Connections are stateful only as an optimization: each accepted
// connection carries reusable serve.Reader handles (key-encoding scratch
// kept warm across requests) re-pinned to the request's epoch, so
// steady-state lookups do not allocate on the read path itself.
package netserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fivm/internal/data"
	"fivm/internal/db"
	"fivm/internal/serve"
)

// Config configures a Server.
type Config struct {
	// DB returns the database to serve. It is a function, not a pointer,
	// because a replication follower atomically swaps its DB on checkpoint
	// re-bootstrap; each request calls DB once and works on that instance.
	DB func() *db.DB

	// Queue is the bounded ingest queue feeding the DB's maintenance
	// goroutine. nil makes the server read-only (the follower shape):
	// POST /apply, /exec, and /select answer 403.
	Queue *db.ApplyQueue

	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration

	// MaxScan caps rows returned by one scan or SELECT (default 10000).
	MaxScan int
}

// Server is the HTTP server. Create with New, start with Serve, stop with
// Shutdown (which drains in-flight requests before returning).
type Server struct {
	cfg    Config
	hs     *http.Server
	selSeq atomic.Uint64
}

// New builds a Server over the given configuration.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("netserve: Config.DB is required")
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.MaxScan <= 0 {
		cfg.MaxScan = 10000
	}
	s := &Server{cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /views", s.handleViews)
	mux.HandleFunc("GET /view/{name}/lookup", s.handleLookup)
	mux.HandleFunc("GET /view/{name}/scan", s.handleScan)
	mux.HandleFunc("POST /exec", s.handleExec)
	mux.HandleFunc("POST /select", s.handleSelect)
	mux.HandleFunc("POST /apply", s.handleApply)
	s.hs = &http.Server{
		Handler: mux,
		// Each accepted connection gets its own reader cache; see readersOf.
		ConnContext: func(ctx context.Context, _ net.Conn) context.Context {
			return context.WithValue(ctx, readersKey{}, &connReaders{})
		},
	}
	return s, nil
}

// Handler exposes the route table (tests and in-process embedding).
// Served this way, requests lack the per-connection reader cache and fall
// back to per-request readers.
func (s *Server) Handler() http.Handler { return s.hs.Handler }

// Serve accepts connections on l until Shutdown. Like http.Server.Serve it
// always returns a non-nil error; after Shutdown it is http.ErrServerClosed.
func (s *Server) Serve(l net.Listener) error { return s.hs.Serve(l) }

// Shutdown gracefully drains the server: it stops accepting connections and
// waits for in-flight requests to finish (bounded by ctx).
func (s *Server) Shutdown(ctx context.Context) error { return s.hs.Shutdown(ctx) }

// connReaders is the per-connection serve.Reader cache: one pinned reader
// per payload type, re-pinned to each request's epoch. The mutex is for the
// HTTP/2 case where one connection multiplexes concurrent requests.
type connReaders struct {
	mu sync.Mutex
	f  *serve.Reader[float64]
	i  *serve.Reader[int64]
}

type readersKey struct{}

func readersOf(r *http.Request) *connReaders {
	if cr, ok := r.Context().Value(readersKey{}).(*connReaders); ok {
		return cr
	}
	return &connReaders{} // no ConnContext (embedded handler): per-request
}

// --- request plumbing -----------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func setEpochHeaders(w http.ResponseWriter, e *db.Epoch) {
	h := w.Header()
	h.Set("X-Fivm-Epoch", strconv.FormatUint(e.Seq, 10))
	h.Set("X-Fivm-Applied", strconv.FormatUint(e.Applied, 10))
	h.Set("X-Fivm-Lag", time.Since(e.At).String())
}

// pinEpoch loads the current epoch, stamps the consistency headers, and
// enforces ?min_epoch. A false return means the response is already written.
func (s *Server) pinEpoch(w http.ResponseWriter, r *http.Request) (*db.Epoch, bool) {
	e := s.cfg.DB().Epoch()
	setEpochHeaders(w, e)
	if me := r.URL.Query().Get("min_epoch"); me != "" {
		min, err := strconv.ParseUint(me, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad min_epoch %q", me)
			return nil, false
		}
		if e.Seq < min {
			httpError(w, http.StatusPreconditionFailed,
				"serving epoch %d is behind requested min_epoch %d", e.Seq, min)
			return nil, false
		}
	}
	return e, true
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, 32<<20))
	dec.UseNumber()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// --- read path ------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	e, ok := s.pinEpoch(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "epoch": e.Seq})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	e, ok := s.pinEpoch(w, r)
	if !ok {
		return
	}
	d := s.cfg.DB()
	resp := map[string]any{
		"epoch":    e.Seq,
		"applied":  e.Applied,
		"lag":      time.Since(e.At).String(),
		"views":    e.Views(),
		"follower": d.Follower(),
	}
	if d.Follower() {
		resp["repl_lsn"] = d.ReplLSN()
	}
	if l := d.WAL(); l != nil {
		resp["wal_lsn"] = l.LSN()
	}
	if q := s.cfg.Queue; q != nil {
		resp["queue_len"] = q.Len()
		resp["queue_cap"] = q.Cap()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleViews(w http.ResponseWriter, r *http.Request) {
	e, ok := s.pinEpoch(w, r)
	if !ok {
		return
	}
	type viewInfo struct {
		Name    string `json:"name"`
		Payload string `json:"payload"`
		Groups  int    `json:"groups"`
	}
	views := []viewInfo{}
	for _, name := range e.Views() {
		vi := viewInfo{Name: name, Payload: "other", Groups: -1}
		if sf := db.SnapshotOf[float64](e, name); sf != nil {
			vi.Payload, vi.Groups = "float64", sf.Result().Len()
		} else if si := db.SnapshotOf[int64](e, name); si != nil {
			vi.Payload, vi.Groups = "int64", si.Result().Len()
		}
		views = append(views, vi)
	}
	writeJSON(w, http.StatusOK, map[string]any{"views": views})
}

type row struct {
	Key   []any `json:"key"`
	Value any   `json:"value"`
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	e, ok := s.pinEpoch(w, r)
	if !ok {
		return
	}
	name := r.PathValue("name")
	key, err := tupleFromQuery(r.URL.Query()["key"])
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cr := readersOf(r)
	cr.mu.Lock()
	defer cr.mu.Unlock()
	var value any
	var found bool
	if sf := db.SnapshotOf[float64](e, name); sf != nil {
		if cr.f == nil {
			cr.f = serve.NewPinned(sf)
		} else {
			cr.f.PinAt(sf)
		}
		value, found = cr.f.Lookup(key)
	} else if si := db.SnapshotOf[int64](e, name); si != nil {
		if cr.i == nil {
			cr.i = serve.NewPinned(si)
		} else {
			cr.i.PinAt(si)
		}
		value, found = cr.i.Lookup(key)
	} else if e.Has(name) {
		httpError(w, http.StatusNotImplemented, "view %q has a non-scalar payload", name)
		return
	} else {
		httpError(w, http.StatusNotFound, "unknown view %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"view": name, "key": jsonTuple(key), "found": found, "value": value,
	})
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	e, ok := s.pinEpoch(w, r)
	if !ok {
		return
	}
	name := r.PathValue("name")
	q := r.URL.Query()
	prefix, err := tupleFromQuery(q["key"])
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	limit := s.cfg.MaxScan
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad limit %q", ls)
			return
		}
		if n < limit {
			limit = n
		}
	}
	rows := []row{}
	truncated := false
	visit := func(t data.Tuple, p any) bool {
		if len(rows) == limit {
			truncated = true
			return false
		}
		rows = append(rows, row{Key: jsonTuple(t), Value: p})
		return true
	}
	cr := readersOf(r)
	cr.mu.Lock()
	defer cr.mu.Unlock()
	if sf := db.SnapshotOf[float64](e, name); sf != nil {
		if cr.f == nil {
			cr.f = serve.NewPinned(sf)
		} else {
			cr.f.PinAt(sf)
		}
		cr.f.Scan(prefix, func(t data.Tuple, p float64) bool { return visit(t, p) })
	} else if si := db.SnapshotOf[int64](e, name); si != nil {
		if cr.i == nil {
			cr.i = serve.NewPinned(si)
		} else {
			cr.i.PinAt(si)
		}
		cr.i.Scan(prefix, func(t data.Tuple, p int64) bool { return visit(t, p) })
	} else if e.Has(name) {
		httpError(w, http.StatusNotImplemented, "view %q has a non-scalar payload", name)
		return
	} else {
		httpError(w, http.StatusNotFound, "unknown view %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"view": name, "prefix": jsonTuple(prefix),
		"rows": rows, "count": len(rows), "truncated": truncated,
	})
}

// --- write path -----------------------------------------------------------

// requireQueue rejects writes on a read-only server (no ingest queue).
func (s *Server) requireQueue(w http.ResponseWriter) bool {
	if s.cfg.Queue == nil {
		httpError(w, http.StatusForbidden, "server is read-only (no ingest queue; writes go to the primary)")
		return false
	}
	return true
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, db.ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(max(1, s.cfg.RetryAfter/time.Second))))
		httpError(w, http.StatusTooManyRequests, "ingest queue full, retry later")
	case errors.Is(err, db.ErrFollower):
		httpError(w, http.StatusForbidden, "%v", err)
	case errors.Is(err, db.ErrQueueClosed):
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
	default:
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
	}
}

func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	if !s.requireQueue(w) {
		return
	}
	var req struct {
		Updates []struct {
			Rel    string  `json:"rel"`
			Mult   int64   `json:"mult"`
			Tuples [][]any `json:"tuples"`
		} `json:"updates"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Updates) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	batch := make([]db.Update, 0, len(req.Updates))
	tuples := 0
	for _, u := range req.Updates {
		up := db.Update{Rel: u.Rel, Mult: u.Mult}
		for _, tv := range u.Tuples {
			t, err := tupleFromJSON(tv)
			if err != nil {
				httpError(w, http.StatusBadRequest, "relation %s: %v", u.Rel, err)
				return
			}
			up.Tuples = append(up.Tuples, t)
		}
		tuples += len(up.Tuples)
		batch = append(batch, up)
	}
	if err := s.cfg.Queue.TryApply(batch); err != nil {
		s.writeError(w, err)
		return
	}
	e := s.cfg.DB().Epoch()
	setEpochHeaders(w, e)
	writeJSON(w, http.StatusOK, map[string]any{
		"applied": e.Applied, "epoch": e.Seq, "tuples": tuples,
	})
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	if !s.requireQueue(w) {
		return
	}
	var req struct {
		SQL string `json:"sql"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if req.SQL == "" {
		httpError(w, http.StatusBadRequest, "missing sql")
		return
	}
	var status string
	err := s.cfg.Queue.Do(func(d *db.DB) error {
		var err error
		status, err = d.Exec(req.SQL)
		return err
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	e := s.cfg.DB().Epoch()
	setEpochHeaders(w, e)
	writeJSON(w, http.StatusOK, map[string]any{"status": status, "epoch": e.Seq})
}

// handleSelect answers a one-shot SELECT: the query is registered as a
// short-lived view on the maintenance goroutine (computing its result
// through the normal backfill path), its first snapshot is captured, and
// the view is dropped — all before other queued writes interleave. The
// rows come from that single consistent snapshot.
func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	if !s.requireQueue(w) {
		return
	}
	var req struct {
		SQL   string `json:"sql"`
		Limit int    `json:"limit"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if req.SQL == "" {
		httpError(w, http.StatusBadRequest, "missing sql")
		return
	}
	limit := s.cfg.MaxScan
	if req.Limit > 0 && req.Limit < limit {
		limit = req.Limit
	}
	tmp := fmt.Sprintf("__select_%d", s.selSeq.Add(1))
	var snap *db.Epoch
	err := s.cfg.Queue.Do(func(d *db.DB) error {
		if _, err := db.CreateViewSQL(d, tmp, req.SQL, db.ViewOptions{}); err != nil {
			return err
		}
		snap = d.Epoch()
		return d.DropView(tmp)
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	setEpochHeaders(w, snap)
	sf := db.SnapshotOf[float64](snap, tmp)
	if sf == nil {
		httpError(w, http.StatusInternalServerError, "select result snapshot missing")
		return
	}
	rows := []row{}
	truncated := false
	rd := serve.NewPinned(sf)
	rd.Scan(nil, func(t data.Tuple, p float64) bool {
		if len(rows) == limit {
			truncated = true
			return false
		}
		rows = append(rows, row{Key: jsonTuple(t), Value: p})
		return true
	})
	writeJSON(w, http.StatusOK, map[string]any{
		"rows": rows, "count": len(rows), "truncated": truncated,
	})
}
