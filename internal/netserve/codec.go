package netserve

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"fivm/internal/data"
)

// Key values travel in two shapes: as repeated ?key= query parameters on
// the read path, and as JSON arrays on the write path. Both map onto the
// three key kinds of the data model (int64, float64, string).

// parseValue decodes one query-parameter value. An explicit kind prefix —
// "i:", "f:", or "s:" — forces the type; without one the value is sniffed
// int-first, then float, then string, which matches how the repl's .play
// loader reads CSV fields.
func parseValue(s string) (data.Value, error) {
	switch {
	case strings.HasPrefix(s, "i:"):
		n, err := strconv.ParseInt(s[2:], 10, 64)
		if err != nil {
			return data.Value{}, fmt.Errorf("bad int key %q: %w", s, err)
		}
		return data.Int(n), nil
	case strings.HasPrefix(s, "f:"):
		f, err := strconv.ParseFloat(s[2:], 64)
		if err != nil {
			return data.Value{}, fmt.Errorf("bad float key %q: %w", s, err)
		}
		return data.Float(f), nil
	case strings.HasPrefix(s, "s:"):
		return data.String(s[2:]), nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return data.Int(n), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return data.Float(f), nil
	}
	return data.String(s), nil
}

// tupleFromQuery assembles the repeated ?key= parameters, in order, into a
// key tuple.
func tupleFromQuery(keys []string) (data.Tuple, error) {
	t := make(data.Tuple, 0, len(keys))
	for _, k := range keys {
		v, err := parseValue(k)
		if err != nil {
			return nil, err
		}
		t = append(t, v)
	}
	return t, nil
}

// valueFromJSON decodes one JSON array element (decoded with UseNumber) as
// a key value: numbers become int64 when they parse exactly, float64
// otherwise; strings stay strings.
func valueFromJSON(v any) (data.Value, error) {
	switch x := v.(type) {
	case json.Number:
		if n, err := strconv.ParseInt(x.String(), 10, 64); err == nil {
			return data.Int(n), nil
		}
		f, err := x.Float64()
		if err != nil {
			return data.Value{}, fmt.Errorf("bad number %q: %w", x.String(), err)
		}
		return data.Float(f), nil
	case string:
		return data.String(x), nil
	default:
		return data.Value{}, fmt.Errorf("unsupported key value %T (want number or string)", v)
	}
}

// tupleFromJSON decodes one JSON tuple (an array of numbers/strings).
func tupleFromJSON(vals []any) (data.Tuple, error) {
	t := make(data.Tuple, 0, len(vals))
	for _, v := range vals {
		dv, err := valueFromJSON(v)
		if err != nil {
			return nil, err
		}
		t = append(t, dv)
	}
	return t, nil
}

// jsonTuple renders a key tuple as a JSON-encodable array, preserving the
// value kinds (ints stay integral, floats stay floats, strings strings).
func jsonTuple(t data.Tuple) []any {
	out := make([]any, len(t))
	for i, v := range t {
		switch v.Kind() {
		case data.KindInt:
			out[i] = v.AsInt()
		case data.KindFloat:
			out[i] = v.AsFloat()
		default:
			out[i] = v.AsString()
		}
	}
	return out
}
