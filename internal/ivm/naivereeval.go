package ivm

import (
	"fmt"

	"fivm/internal/data"
	"fivm/internal/query"
	"fivm/internal/ring"
)

// NaiveReEval is unfactorized re-evaluation (the paper's DBT-RE competitor
// in the Appendix C table): on every update it joins all base relations into
// the full listing result and only then aggregates, without pushing
// marginalization past joins. Against ReEval (factorized re-evaluation) it
// isolates the benefit of factorized computation alone.
type NaiveReEval[P any] struct {
	q      query.Query
	ring   ring.Ring[P]
	lift   data.LiftFunc[P]
	bases  map[string]*data.Relation[P]
	result *data.Relation[P]
	pub    publisher[P]
	// seal caches the snapshot of the current result relation, which is
	// replaced (never mutated) by each recomputation.
	seal sealCache[P]
}

// NewNaiveReEval builds the naive re-evaluation maintainer.
func NewNaiveReEval[P any](q query.Query, r ring.Ring[P], lift data.LiftFunc[P]) *NaiveReEval[P] {
	return &NaiveReEval[P]{q: q, ring: r, lift: lift, bases: make(map[string]*data.Relation[P])}
}

// Load installs the initial contents of a relation.
func (m *NaiveReEval[P]) Load(rel string, r *data.Relation[P]) error {
	if _, ok := m.q.Rel(rel); !ok {
		return fmt.Errorf("ivm: unknown relation %q", rel)
	}
	m.bases[rel] = r.Clone()
	return nil
}

// Init computes the initial result.
func (m *NaiveReEval[P]) Init() error {
	m.result = m.recompute()
	return nil
}

func (m *NaiveReEval[P]) recompute() *data.Relation[P] {
	rels := make([]*data.Relation[P], 0, len(m.q.Rels))
	for _, rd := range m.q.Rels {
		b := m.bases[rd.Name]
		if b == nil {
			b = data.NewRelation(m.ring, rd.Schema)
		}
		rels = append(rels, b)
	}
	joined := data.JoinAll(rels...)
	agg := data.MarginalizeVars(joined, joined.Schema().Minus(m.q.Free), m.lift)
	return data.Project(agg, m.q.Free)
}

// absorb merges an update into the stored base relation.
func (m *NaiveReEval[P]) absorb(rel string, delta *data.Relation[P]) error {
	rd, ok := m.q.Rel(rel)
	if !ok {
		return fmt.Errorf("ivm: unknown relation %q", rel)
	}
	base := m.bases[rel]
	if base == nil {
		base = data.NewRelation(m.ring, rd.Schema)
		m.bases[rel] = base
	}
	if base.Schema().Equal(delta.Schema()) {
		base.MergeAll(delta)
	} else {
		base.MergeAll(data.Project(delta, base.Schema()))
	}
	return nil
}

// ApplyDelta merges the update and recomputes the result from the full join.
func (m *NaiveReEval[P]) ApplyDelta(rel string, delta *data.Relation[P]) error {
	if err := m.absorb(rel, delta); err != nil {
		return err
	}
	m.result = m.recompute()
	m.maybePublish()
	return nil
}

// Result returns the last computed result as a live handle; see the
// Maintainer contract — concurrent readers must go through Snapshot.
func (m *NaiveReEval[P]) Result() *data.Relation[P] {
	if m.result == nil {
		return data.NewRelation(m.ring, m.q.Free)
	}
	return m.result
}

// ViewCount reports the stored relations plus the result.
func (m *NaiveReEval[P]) ViewCount() int { return len(m.bases) + 1 }

// MemoryBytes estimates the footprint of bases and result.
func (m *NaiveReEval[P]) MemoryBytes() int {
	total := 0
	for _, b := range m.bases {
		total += relationBytes(b)
	}
	if m.result != nil {
		total += relationBytes(m.result)
	}
	return total
}
