package ivm

import (
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"fivm/internal/data"
	"fivm/internal/viewtree"
)

// ViewSnapshot is one published epoch of a maintainer's state: an immutable,
// mutually consistent set of relation snapshots — the query result plus a
// named catalog of the materialized views — taken after some whole applied
// batch, never mid-batch. Snapshots are published with a single atomic
// pointer swap, so any number of reader goroutines can pin an epoch and read
// it lock-free while maintenance keeps streaming; see internal/serve for
// reader handles.
type ViewSnapshot[P any] struct {
	// Epoch counts published snapshots: 0 at enablement, +1 per applied
	// batch. Within one maintainer it is strictly monotonic.
	Epoch uint64
	// At is the publication wall time, the reference point of the
	// freshness-lag metric (time.Since(s.At) bounds a reader's staleness).
	At time.Time

	result *data.RelationSnapshot[P]
	views  map[string]*data.RelationSnapshot[P]
	byNode map[*viewtree.Node]*data.RelationSnapshot[P]
	names  []string
}

// Result returns the snapshot of the maintained query result.
func (s *ViewSnapshot[P]) Result() *data.RelationSnapshot[P] { return s.result }

// View returns the snapshot of the named materialized view, or nil. Names
// come from the maintainer's catalog (ViewNames).
func (s *ViewSnapshot[P]) View(name string) *data.RelationSnapshot[P] { return s.views[name] }

// Views returns the sorted catalog of view names in this snapshot.
func (s *ViewSnapshot[P]) Views() []string { return s.names }

// ViewOf returns the snapshot of a view-tree node's materialization, or nil.
// Only engine-published snapshots carry the node catalog; the factorized
// result representation enumerates through it.
func (s *ViewSnapshot[P]) ViewOf(n *viewtree.Node) *data.RelationSnapshot[P] { return s.byNode[n] }

// publisher is the epoch machinery every maintainer embeds: an atomic
// pointer to the latest published snapshot. A nil pointer means publication
// is not enabled; the first Snapshot call on a maintainer enables it.
//
// The publication contract, shared by every maintainer:
//
//   - The first Snapshot call must not race ApplyDelta/ApplyDeltas: call it
//     once from the maintenance goroutine (typically right after Init) to
//     enable publication.
//   - Once enabled, the maintainer publishes a fresh epoch at the end of
//     every ApplyDelta/ApplyDeltas call, and Snapshot may be called from any
//     goroutine: it is a single atomic load.
//   - Maintainers that were never asked for a Snapshot pay nothing on the
//     maintenance path beyond one atomic load per applied batch.
type publisher[P any] struct {
	cur atomic.Pointer[ViewSnapshot[P]]
	// names caches the sorted catalog across epochs (the catalog only
	// changes when views appear or a replan renames them); maintainers
	// whose catalog changed call invalidateNames, and a length mismatch
	// invalidates automatically.
	names []string
}

// enabled reports whether publication has been switched on.
func (p *publisher[P]) enabled() bool { return p.cur.Load() != nil }

// invalidateNames drops the cached catalog, forcing the next publish to
// rebuild it (engine replans rename views without changing their count).
func (p *publisher[P]) invalidateNames() { p.names = nil }

// publish installs the next epoch and returns it.
func (p *publisher[P]) publish(result *data.RelationSnapshot[P], views map[string]*data.RelationSnapshot[P], byNode map[*viewtree.Node]*data.RelationSnapshot[P]) *ViewSnapshot[P] {
	var epoch uint64
	if prev := p.cur.Load(); prev != nil {
		epoch = prev.Epoch + 1
	}
	if len(p.names) != len(views) {
		names := make([]string, 0, len(views))
		for name := range views {
			names = append(names, name)
		}
		sort.Strings(names)
		p.names = names
	}
	s := &ViewSnapshot[P]{Epoch: epoch, At: time.Now(), result: result, views: views, byNode: byNode, names: p.names}
	p.cur.Store(s)
	return s
}

// basesViews snapshots every stored base relation into a fresh catalog map
// with room for the result view.
func basesViews[P any](bases map[string]*data.Relation[P]) map[string]*data.RelationSnapshot[P] {
	views := make(map[string]*data.RelationSnapshot[P], len(bases)+1)
	for rel, b := range bases {
		views[rel] = b.Snapshot()
	}
	return views
}

// putResult adds the result snapshot to the catalog under the query's name,
// suffixing "#result" when a base relation already claims that name (a
// query may legally share its name with one of its relations).
func putResult[P any](views map[string]*data.RelationSnapshot[P], name string, res *data.RelationSnapshot[P]) {
	for {
		if _, taken := views[name]; !taken {
			views[name] = res
			return
		}
		name += "#result"
	}
}

// sealCache memoizes the sealed snapshot of a result relation that is
// replaced (never mutated) per recomputation, keyed by relation identity.
type sealCache[P any] struct {
	from *data.Relation[P]
	snap *data.RelationSnapshot[P]
}

func (c *sealCache[P]) of(r *data.Relation[P]) *data.RelationSnapshot[P] {
	if c.from != r {
		c.snap = r.Seal()
		c.from = r
	}
	return c.snap
}

// --- engine ------------------------------------------------------------------

// Snapshot returns the latest published consistent snapshot of the engine's
// materialized views, enabling publication on first use (see publisher for
// the concurrency contract).
func (e *Engine[P]) Snapshot() *ViewSnapshot[P] {
	if s := e.pub.cur.Load(); s != nil {
		return s
	}
	return e.publishSnapshot()
}

// maybePublish publishes a fresh epoch if serving is enabled; maintainers
// call it exactly once at the end of every applied batch.
func (e *Engine[P]) maybePublish() {
	if e.pub.enabled() {
		e.publishSnapshot()
	}
}

// publishSnapshot snapshots every materialized view (O(changed keys) per
// view via relation dirty tracking) and swaps in the new epoch.
func (e *Engine[P]) publishSnapshot() *ViewSnapshot[P] {
	views := make(map[string]*data.RelationSnapshot[P], len(e.views))
	byNode := make(map[*viewtree.Node]*data.RelationSnapshot[P], len(e.views))
	for node, ir := range e.views {
		s := ir.Snapshot()
		views[e.names[node]] = s
		byNode[node] = s
	}
	result := byNode[e.root]
	if result == nil {
		// Snapshot before Init (or of an engine whose root was never built):
		// an empty result, so readers see a well-formed epoch.
		result = data.NewRelation(e.ring, e.root.Keys).Seal()
	}
	return e.pub.publish(result, views, byNode)
}

// nameViews assigns every view-tree node its catalog name — Node.Name, made
// unique with a numeric suffix in the (not expected) event of a collision —
// and records the reverse map for ViewByName.
func (e *Engine[P]) nameViews() {
	e.names = make(map[*viewtree.Node]string)
	e.byName = make(map[string]*viewtree.Node)
	e.root.Walk(func(n *viewtree.Node) {
		name := n.Name()
		if _, taken := e.byName[name]; taken {
			base := name
			for i := 2; ; i++ {
				name = base + "#" + strconv.Itoa(i)
				if _, taken := e.byName[name]; !taken {
					break
				}
			}
		}
		e.names[n] = name
		e.byName[name] = n
	})
}

// ViewNames returns the catalog of view names the engine materializes, in
// sorted order. Every name resolves through ViewByName and appears in every
// published ViewSnapshot.
func (e *Engine[P]) ViewNames() []string {
	out := make([]string, 0, len(e.views))
	for node := range e.views {
		out = append(out, e.names[node])
	}
	sort.Strings(out)
	return out
}

// ViewByName returns the live materialized relation of the named view
// (Node.Name form, e.g. "V@C[A,B]" or a leaf's relation name), or nil if
// the name is unknown or the view is not materialized. Like Result and
// ViewOf, the returned relation is a live handle — use Snapshot().View(name)
// for a consistent, concurrency-safe read.
func (e *Engine[P]) ViewByName(name string) *data.Relation[P] {
	node, ok := e.byName[name]
	if !ok {
		return nil
	}
	return e.ViewOf(node)
}

// --- first-order -------------------------------------------------------------

// Snapshot returns the latest published snapshot: the maintained result
// under the query's name plus the stored base relations under theirs. See
// publisher for the concurrency contract.
func (m *FirstOrder[P]) Snapshot() *ViewSnapshot[P] {
	if s := m.pub.cur.Load(); s != nil {
		return s
	}
	return m.publishSnapshot()
}

func (m *FirstOrder[P]) maybePublish() {
	if m.pub.enabled() {
		m.publishSnapshot()
	}
}

func (m *FirstOrder[P]) publishSnapshot() *ViewSnapshot[P] {
	views := basesViews(m.bases)
	var res *data.RelationSnapshot[P]
	if m.result != nil {
		res = m.result.Snapshot()
	} else {
		res = data.NewRelation(m.ring, m.root.Keys).Seal()
	}
	putResult(views, m.q.Name, res)
	return m.pub.publish(res, views, nil)
}

// --- recursive ---------------------------------------------------------------

// Snapshot returns the latest published snapshot: every view of the
// recursive hierarchy under its signature name, the root as the result. See
// publisher for the concurrency contract.
func (m *Recursive[P]) Snapshot() *ViewSnapshot[P] {
	if s := m.pub.cur.Load(); s != nil {
		return s
	}
	return m.publishSnapshot()
}

func (m *Recursive[P]) maybePublish() {
	if m.pub.enabled() {
		m.publishSnapshot()
	}
}

func (m *Recursive[P]) publishSnapshot() *ViewSnapshot[P] {
	views := make(map[string]*data.RelationSnapshot[P], len(m.order))
	for _, v := range m.order {
		views[v.sig] = v.rel.Snapshot()
	}
	return m.pub.publish(views[m.root.sig], views, nil)
}

// --- re-evaluation -----------------------------------------------------------

// Snapshot returns the latest published snapshot. The result is recomputed
// wholesale per batch, so its snapshot is sealed from each fresh result
// relation; the stored bases snapshot incrementally. See publisher for the
// concurrency contract.
func (m *ReEval[P]) Snapshot() *ViewSnapshot[P] {
	if s := m.pub.cur.Load(); s != nil {
		return s
	}
	return m.publishSnapshot()
}

func (m *ReEval[P]) maybePublish() {
	if m.pub.enabled() {
		m.publishSnapshot()
	}
}

func (m *ReEval[P]) publishSnapshot() *ViewSnapshot[P] {
	views := basesViews(m.bases)
	var res *data.RelationSnapshot[P]
	if m.result != nil {
		// The result relation is replaced (never mutated) per batch, so the
		// snapshot can share its entries; sealCache memoizes per pointer.
		res = m.seal.of(m.result)
	} else {
		res = data.NewRelation(m.ring, m.root.Keys).Seal()
	}
	putResult(views, m.q.Name, res)
	return m.pub.publish(res, views, nil)
}

// Snapshot returns the latest published snapshot; like ReEval, the result is
// sealed per recomputation. See publisher for the concurrency contract.
func (m *NaiveReEval[P]) Snapshot() *ViewSnapshot[P] {
	if s := m.pub.cur.Load(); s != nil {
		return s
	}
	return m.publishSnapshot()
}

func (m *NaiveReEval[P]) maybePublish() {
	if m.pub.enabled() {
		m.publishSnapshot()
	}
}

func (m *NaiveReEval[P]) publishSnapshot() *ViewSnapshot[P] {
	views := basesViews(m.bases)
	var res *data.RelationSnapshot[P]
	if m.result != nil {
		res = m.seal.of(m.result)
	} else {
		res = data.NewRelation(m.ring, m.q.Free).Seal()
	}
	putResult(views, m.q.Name, res)
	return m.pub.publish(res, views, nil)
}

// --- scalar multi-aggregate maintainers --------------------------------------

// aggName names the i-th scalar aggregate view in multi-aggregate catalogs.
func aggName(i int) string { return "agg" + strconv.Itoa(i) }

// Snapshot returns the latest published snapshot: one view per scalar
// aggregate ("agg0", "agg1", ...) plus the shared bases, with the count
// aggregate as the result. See publisher for the concurrency contract.
func (m *MultiFirstOrder) Snapshot() *ViewSnapshot[float64] {
	if s := m.pub.cur.Load(); s != nil {
		return s
	}
	return m.publishSnapshot()
}

func (m *MultiFirstOrder) maybePublish() {
	if m.pub.enabled() {
		m.publishSnapshot()
	}
}

func (m *MultiFirstOrder) publishSnapshot() *ViewSnapshot[float64] {
	views := make(map[string]*data.RelationSnapshot[float64], len(m.results)+len(m.bases))
	for rel, b := range m.bases {
		views[rel] = b.Snapshot()
	}
	for i, r := range m.results {
		views[aggName(i)] = r.Snapshot()
	}
	res := views[aggName(0)]
	if res == nil {
		res = m.Result().Seal()
	}
	return m.pub.publish(res, views, nil)
}

// Snapshot returns the latest published snapshot: one view per scalar
// aggregate hierarchy root. See publisher for the concurrency contract.
func (m *MultiRecursive) Snapshot() *ViewSnapshot[float64] {
	if s := m.pub.cur.Load(); s != nil {
		return s
	}
	return m.publishSnapshot()
}

func (m *MultiRecursive) maybePublish() {
	if m.pub.enabled() {
		m.publishSnapshot()
	}
}

func (m *MultiRecursive) publishSnapshot() *ViewSnapshot[float64] {
	views := make(map[string]*data.RelationSnapshot[float64], len(m.instances))
	for i, inst := range m.instances {
		views[aggName(i)] = inst.root.rel.Snapshot()
	}
	return m.pub.publish(views[aggName(0)], views, nil)
}

// --- parallel ----------------------------------------------------------------

// Snapshot returns the latest published snapshot. A sharded maintainer
// reduces the shard results key-wise after each batch and seals the reduced
// relation — shard-local views are per-shard state and are not cataloged;
// the sequential fallback delegates to its inner maintainer. See publisher
// for the concurrency contract.
func (p *Parallel[P]) Snapshot() *ViewSnapshot[P] {
	if !p.Sharded() {
		return p.shards[0].Snapshot()
	}
	if s := p.pub.cur.Load(); s != nil {
		return s
	}
	return p.publishSnapshot()
}

func (p *Parallel[P]) maybePublish() {
	if p.pub.enabled() {
		p.publishSnapshot()
	}
}

func (p *Parallel[P]) publishSnapshot() *ViewSnapshot[P] {
	// Reduce straight into a sealed snapshot: one radix sort over the
	// gathered shard entries instead of a merge through a fresh hash
	// relation (payloads are copied, so the live shard results stay free to
	// mutate in later batches).
	p.reduceParts = p.reduceParts[:0]
	for _, m := range p.shards {
		p.reduceParts = append(p.reduceParts, m.Result())
	}
	res := data.ReduceSealed(p.ring, p.reduceParts[0].Schema(), p.reduceParts)
	views := map[string]*data.RelationSnapshot[P]{p.q.Name: res}
	return p.pub.publish(res, views, nil)
}
