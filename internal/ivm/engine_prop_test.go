package ivm

import (
	"math"
	"math/rand"
	"testing"

	"fivm/internal/data"
	"fivm/internal/ring"
	"fivm/internal/viewtree"
)

// TestInsertDeleteRoundtrip checks that applying a delta followed by its
// additive inverse restores every materialized view exactly — the
// ring-theoretic foundation of uniform insert/delete handling (Section 2).
func TestInsertDeleteRoundtrip(t *testing.T) {
	q := paperQuery()
	rng := rand.New(rand.NewSource(21))
	e, err := New[int64](q, paperOrder(), ring.Int{}, countLift, Options[int64]{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rd := range q.Rels {
		e.Load(rd.Name, randomDelta(rng, rd.Schema, 4, 10))
	}
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}

	snapshot := func() map[string]string {
		out := map[string]string{}
		e.Tree().Walk(func(n *viewtree.Node) {
			if v := e.ViewOf(n); v != nil {
				out[n.Name()] = v.String()
			}
		})
		return out
	}
	before := snapshot()

	for step := 0; step < 20; step++ {
		rel := q.RelNames()[rng.Intn(3)]
		rd, _ := q.Rel(rel)
		delta := randomDelta(rng, rd.Schema, 4, 1+rng.Intn(4))
		if err := e.ApplyDelta(rel, delta); err != nil {
			t.Fatal(err)
		}
		if err := e.ApplyDelta(rel, delta.Negate()); err != nil {
			t.Fatal(err)
		}
		after := snapshot()
		if len(after) != len(before) {
			t.Fatalf("step %d: view count changed", step)
		}
		for name, s := range before {
			if after[name] != s {
				t.Fatalf("step %d: view %s changed:\n before %s\n after  %s", step, name, s, after[name])
			}
		}
	}
}

// TestBatchEqualsSingleTuple checks that one batched delta equals the same
// tuples applied one at a time.
func TestBatchEqualsSingleTuple(t *testing.T) {
	q := paperQuery("A")
	rng := rand.New(rand.NewSource(22))
	mk := func() *Engine[int64] {
		e, err := New[int64](q, paperOrder(), ring.Int{}, valueLift, Options[int64]{})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Init(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	batched, single := mk(), mk()
	for step := 0; step < 15; step++ {
		rel := q.RelNames()[rng.Intn(3)]
		rd, _ := q.Rel(rel)
		delta := randomDelta(rng, rd.Schema, 4, 1+rng.Intn(5))
		if err := batched.ApplyDelta(rel, delta); err != nil {
			t.Fatal(err)
		}
		delta.Iterate(func(tup data.Tuple, p int64) bool {
			one := data.NewRelation[int64](ring.Int{}, rd.Schema)
			one.Merge(tup, p)
			if err := single.ApplyDelta(rel, one); err != nil {
				t.Fatal(err)
			}
			return true
		})
		if !batched.Result().Equal(single.Result(), eqInt) {
			t.Fatalf("step %d: batch and single-tuple application diverged", step)
		}
	}
}

// TestUpdateOrderInvariance checks that the final state depends only on the
// final database, not on the interleaving of updates across relations.
func TestUpdateOrderInvariance(t *testing.T) {
	q := paperQuery()
	rng := rand.New(rand.NewSource(23))

	type upd struct {
		rel   string
		delta *data.Relation[int64]
	}
	var updates []upd
	for i := 0; i < 30; i++ {
		rel := q.RelNames()[rng.Intn(3)]
		rd, _ := q.Rel(rel)
		updates = append(updates, upd{rel: rel, delta: randomDelta(rng, rd.Schema, 4, 1+rng.Intn(3))})
	}
	apply := func(order []int) *data.Relation[int64] {
		e, err := New[int64](q, paperOrder(), ring.Int{}, countLift, Options[int64]{})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Init(); err != nil {
			t.Fatal(err)
		}
		for _, i := range order {
			if err := e.ApplyDelta(updates[i].rel, updates[i].delta.Clone()); err != nil {
				t.Fatal(err)
			}
		}
		return e.Result()
	}
	base := make([]int, len(updates))
	for i := range base {
		base[i] = i
	}
	want := apply(base)
	for trial := 0; trial < 3; trial++ {
		perm := rng.Perm(len(updates))
		if got := apply(perm); !got.Equal(want, eqInt) {
			t.Fatalf("permutation %d changed the final result", trial)
		}
	}
}

// TestCofactorSharesNineAggregates checks the Example 1.1 claim: one
// compound cofactor payload maintains the same values as nine independently
// maintained scalar aggregates over the same views.
func TestCofactorSharesNineAggregates(t *testing.T) {
	q := paperQuery()
	rng := rand.New(rand.NewSource(24))
	vars := q.Vars() // A, B, C, E, D order as discovered
	idx := make(map[string]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}

	compound, err := New[ring.Triple](q, paperOrder(), ring.Cofactor{},
		func(v string, x data.Value) ring.Triple { return ring.LiftValue(idx[v], x.AsFloat()) },
		Options[ring.Triple]{})
	if err != nil {
		t.Fatal(err)
	}
	if err := compound.Init(); err != nil {
		t.Fatal(err)
	}

	specs := CofactorAggSpecs(vars)
	scalars := make([]*Engine[float64], len(specs))
	for i, s := range specs {
		sc, err := New[float64](q, paperOrder(), ring.Float{}, s.Lift, Options[float64]{})
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.Init(); err != nil {
			t.Fatal(err)
		}
		scalars[i] = sc
	}

	toTriple := func(d *data.Relation[int64]) *data.Relation[ring.Triple] {
		cf := ring.Cofactor{}
		out := data.NewRelation[ring.Triple](cf, d.Schema())
		d.Iterate(func(tup data.Tuple, m int64) bool {
			p := cf.Zero()
			for k := int64(0); k < m; k++ {
				p = cf.Add(p, cf.One())
			}
			if m < 0 {
				p = cf.Neg(cf.Zero())
				for k := int64(0); k < -m; k++ {
					p = cf.Add(p, cf.Neg(cf.One()))
				}
			}
			out.Merge(tup, p)
			return true
		})
		return out
	}
	toFloat := func(d *data.Relation[int64]) *data.Relation[float64] {
		out := data.NewRelation[float64](ring.Float{}, d.Schema())
		d.Iterate(func(tup data.Tuple, m int64) bool {
			out.Merge(tup, float64(m))
			return true
		})
		return out
	}

	for step := 0; step < 15; step++ {
		rel := q.RelNames()[rng.Intn(3)]
		rd, _ := q.Rel(rel)
		delta := randomDelta(rng, rd.Schema, 3, 1+rng.Intn(3))
		if err := compound.ApplyDelta(rel, toTriple(delta)); err != nil {
			t.Fatal(err)
		}
		for _, sc := range scalars {
			if err := sc.ApplyDelta(rel, toFloat(delta)); err != nil {
				t.Fatal(err)
			}
		}

		tr, _ := compound.Result().Get(data.Tuple{})
		for i, s := range specs {
			want, _ := scalars[i].Result().Get(data.Tuple{})
			var got float64
			var degVars []string
			for v, d := range s.Degrees {
				for k := 0; k < d; k++ {
					degVars = append(degVars, v)
				}
			}
			switch len(degVars) {
			case 0:
				got = tr.Count()
			case 1:
				got = tr.SumOf(idx[degVars[0]])
			case 2:
				got = tr.QuadOf(idx[degVars[0]], idx[degVars[1]])
			}
			if math.Abs(got-want) > 1e-6 {
				t.Fatalf("step %d agg %v: compound %v vs scalar %v", step, s.Degrees, got, want)
			}
		}
	}
}

// TestSQLOPTMatchesCofactorEngine drives the degree-map (SQL-OPT) and
// cofactor-ring engines through the same stream: same views, same
// aggregates, different encodings.
func TestSQLOPTMatchesCofactorEngine(t *testing.T) {
	q := paperQuery()
	rng := rand.New(rand.NewSource(25))
	vars := q.Vars()
	idx := make(map[string]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	cf, err := New[ring.Triple](q, paperOrder(), ring.Cofactor{},
		func(v string, x data.Value) ring.Triple { return ring.LiftValue(idx[v], x.AsFloat()) },
		Options[ring.Triple]{})
	if err != nil {
		t.Fatal(err)
	}
	must := func(e error) {
		if e != nil {
			t.Fatal(e)
		}
	}
	must(cf.Init())
	dm, err := New[ring.DegMap](q, paperOrder(), ring.DegreeMap{},
		func(v string, x data.Value) ring.DegMap { return ring.LiftDegMap(idx[v], x.AsFloat()) },
		Options[ring.DegMap]{})
	must(err)
	must(dm.Init())

	for step := 0; step < 20; step++ {
		rel := q.RelNames()[rng.Intn(3)]
		rd, _ := q.Rel(rel)
		n := 1 + rng.Intn(3)
		dTriple := data.NewRelation[ring.Triple](ring.Cofactor{}, rd.Schema)
		dDeg := data.NewRelation[ring.DegMap](ring.DegreeMap{}, rd.Schema)
		for i := 0; i < n; i++ {
			tup := make(data.Tuple, len(rd.Schema))
			for j := range tup {
				tup[j] = data.Int(int64(rng.Intn(3)))
			}
			dTriple.Merge(tup, ring.Cofactor{}.One())
			dDeg.Merge(tup, ring.DegreeMap{}.One())
		}
		must(cf.ApplyDelta(rel, dTriple))
		must(dm.ApplyDelta(rel, dDeg))

		tr, _ := cf.Result().Get(data.Tuple{})
		mp, _ := dm.Result().Get(data.Tuple{})
		if got, want := mp[ring.CountDeg], tr.Count(); math.Abs(got-want) > 1e-6 {
			t.Fatalf("step %d: count %v vs %v", step, got, want)
		}
		for i := range vars {
			if got, want := mp[ring.LinDeg(i)], tr.SumOf(i); math.Abs(got-want) > 1e-6 {
				t.Fatalf("step %d: lin(%d) %v vs %v", step, i, got, want)
			}
			for j := i; j < len(vars); j++ {
				if got, want := mp[ring.QuadDeg(i, j)], tr.QuadOf(i, j); math.Abs(got-want) > 1e-6 {
					t.Fatalf("step %d: quad(%d,%d) %v vs %v", step, i, j, got, want)
				}
			}
		}
	}
}

// TestFactoredDeltaGeneralQuery checks Example 5.2: a factorizable update
// δS = δS_A ⊗ δS_C ⊗ δS_E to the paper query propagates identically to its
// expansion.
func TestFactoredDeltaGeneralQuery(t *testing.T) {
	q := paperQuery()
	rng := rand.New(rand.NewSource(26))
	e, err := New[int64](q, paperOrder(), ring.Int{}, countLift, Options[int64]{Updatable: []string{"S"}})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewReEval[int64](q, paperOrder(), ring.Int{}, countLift)
	if err != nil {
		t.Fatal(err)
	}
	for _, rd := range q.Rels {
		base := randomDelta(rng, rd.Schema, 4, 12)
		e.Load(rd.Name, base.Clone())
		ref.Load(rd.Name, base.Clone())
	}
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Init(); err != nil {
		t.Fatal(err)
	}

	unary := func(v string, n int) *data.Relation[int64] {
		r := data.NewRelation[int64](ring.Int{}, data.NewSchema(v))
		for i := 0; i < n; i++ {
			r.Merge(data.Ints(int64(rng.Intn(4))), int64(1+rng.Intn(2)))
		}
		return r
	}
	for step := 0; step < 15; step++ {
		fd := FactoredDelta[int64]{Factors: []*data.Relation[int64]{
			unary("A", 1+rng.Intn(2)),
			unary("C", 1+rng.Intn(2)),
			unary("E", 1+rng.Intn(2)),
		}}
		if err := e.ApplyFactoredDelta("S", fd); err != nil {
			t.Fatal(err)
		}
		if err := ref.ApplyDelta("S", fd.Expand(data.NewSchema("A", "C", "E"))); err != nil {
			t.Fatal(err)
		}
		if !e.Result().Equal(ref.Result(), eqInt) {
			t.Fatalf("step %d: factored delta diverged: %v vs %v", step, e.Result(), ref.Result())
		}
	}
}

// TestEmptyDeltaIsNoOp applies an empty delta and checks nothing changes.
func TestEmptyDeltaIsNoOp(t *testing.T) {
	q := paperQuery()
	e, err := New[int64](q, paperOrder(), ring.Int{}, countLift, Options[int64]{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(27))
	for _, rd := range q.Rels {
		e.Load(rd.Name, randomDelta(rng, rd.Schema, 3, 5))
	}
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}
	before := e.Result().String()
	empty := data.NewRelation[int64](ring.Int{}, data.NewSchema("C", "D"))
	if err := e.ApplyDelta("T", empty); err != nil {
		t.Fatal(err)
	}
	if got := e.Result().String(); got != before {
		t.Errorf("empty delta changed the result: %s vs %s", got, before)
	}
}

// TestDeltaSchemaReorder checks that deltas given in a permuted column
// order are normalized correctly.
func TestDeltaSchemaReorder(t *testing.T) {
	q := paperQuery()
	e, err := New[int64](q, paperOrder(), ring.Int{}, countLift, Options[int64]{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}
	// S has schema (A, C, E); send a delta over (E, A, C).
	d := data.NewRelation[int64](ring.Int{}, data.NewSchema("E", "A", "C"))
	d.Merge(data.Ints(9, 1, 2), 1)
	if err := e.ApplyDelta("S", d); err != nil {
		t.Fatal(err)
	}
	// Confirm via the materialized S-view (keys A, C after ⊕E).
	found := false
	e.Tree().Walk(func(n *viewtree.Node) {
		if n.Var == "E" {
			if v := e.ViewOf(n); v != nil {
				if p, ok := v.Get(data.Ints(1, 2)); ok && p == 1 {
					found = true
				}
			}
		}
	})
	if !found {
		t.Error("permuted delta was not normalized into the view")
	}
}

// TestMemoryBytesGrowsWithData sanity-checks the memory accounting.
func TestMemoryBytesGrowsWithData(t *testing.T) {
	q := paperQuery()
	e, err := New[int64](q, paperOrder(), ring.Int{}, countLift, Options[int64]{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Init(); err != nil {
		t.Fatal(err)
	}
	m0 := e.MemoryBytes()
	rng := rand.New(rand.NewSource(28))
	for i := 0; i < 20; i++ {
		e.ApplyDelta("S", randomDelta(rng, data.NewSchema("A", "C", "E"), 10, 5))
	}
	if m1 := e.MemoryBytes(); m1 <= m0 {
		t.Errorf("MemoryBytes did not grow: %d -> %d", m0, m1)
	}
}
